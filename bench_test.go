// Benchmark harness: one benchmark per experiment of DESIGN.md's
// experiment index. The paper is a methodology paper whose "evaluation" is
// its worked figures, so the quantitative benches here measure (a) the
// cost of every pipeline stage the figures describe — transformation
// (FIG5), traversal (FIG6), persistence, checking — and (b) the
// simulation-side experiments (EXTRA-SIM / EXTRA-SCALE), plus the
// ablations called out in DESIGN.md Section 6.
//
// Run with: go test -bench=. -benchmem
package prophet_test

import (
	"fmt"
	"strings"
	"testing"

	"prophet/internal/checker"
	"prophet/internal/cppgen"
	"prophet/internal/dot"
	"prophet/internal/estimator"
	"prophet/internal/expr"
	"prophet/internal/gogen"
	"prophet/internal/interp"
	"prophet/internal/lfk"
	"prophet/internal/machine"
	"prophet/internal/mdgen"
	"prophet/internal/obs"
	"prophet/internal/samples"
	"prophet/internal/sim"
	"prophet/internal/trace"
	"prophet/internal/traverse"
	"prophet/internal/uml"
	"prophet/internal/xmi"
)

// --- FIG5: the transformation algorithm, scaling with model size --------

func BenchmarkFig5Transform(b *testing.B) {
	for _, size := range []struct{ d, a int }{{1, 10}, {2, 50}, {4, 250}, {8, 1250}} {
		m := samples.Synthetic(size.d, size.a)
		elements := size.d * size.a
		gen := cppgen.New()
		b.Run(fmt.Sprintf("elements-%d", elements), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gen.Generate(m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Pipeline measures the full Teuta-side pipeline of the
// sample model: XML decode -> model check -> C++ generation.
func BenchmarkFig8Pipeline(b *testing.B) {
	xml, err := xmi.EncodeString(samples.Sample())
	if err != nil {
		b.Fatal(err)
	}
	chk := checker.New()
	gen := cppgen.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := xmi.DecodeString(xml)
		if err != nil {
			b.Fatal(err)
		}
		if rep := chk.Check(m); rep.HasErrors() {
			b.Fatal("sample model failed checking")
		}
		if _, err := gen.Generate(m); err != nil {
			b.Fatal(err)
		}
	}
}

// --- FIG6 ablation: recursive vs explicit-stack navigator ---------------

func BenchmarkNavigator(b *testing.B) {
	m := samples.Synthetic(8, 500)
	trav := traverse.NewTraverser()
	count := func(nav traverse.Navigator) int {
		n := 0
		h := traverse.FuncHandler(func(traverse.Event) error { n++; return nil })
		if err := trav.Traverse(m, nav, h); err != nil {
			b.Fatal(err)
		}
		return n
	}
	b.Run("recursive", func(b *testing.B) {
		b.ReportAllocs()
		nav := traverse.NewRecursiveNavigator()
		for i := 0; i < b.N; i++ {
			count(nav)
		}
	})
	b.Run("stack", func(b *testing.B) {
		b.ReportAllocs()
		nav := traverse.NewStackNavigator()
		for i := 0; i < b.N; i++ {
			count(nav)
		}
	})
}

// --- Ablation: interpreted AST vs compiled closures for cost functions --

func BenchmarkExpr(b *testing.B) {
	src := "M * (N-1) * N / 2 * c + sqrt(P) / (1 + pid)"
	env := expr.NewMapEnv()
	env.Set("M", 10)
	env.Set("N", 1000)
	env.Set("c", 1e-9)
	env.Set("P", 16)
	env.Set("pid", 3)
	full := expr.Chain{env, expr.Builtins}
	node := expr.MustParse(src)
	compiled := expr.Compile(node)
	folded := expr.Compile(expr.Fold(node))
	b.Run("interpreted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := node.Eval(full); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := compiled.Eval(full); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled-folded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := folded.Eval(full); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse+eval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := expr.Eval(src, full); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- EXTRA-SIM: simulation engine throughput -----------------------------

func BenchmarkSim(b *testing.B) {
	for _, procs := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("hold-procs-%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			holdsPer := 100
			for i := 0; i < b.N; i++ {
				e := sim.New()
				for p := 0; p < procs; p++ {
					e.Spawn(fmt.Sprint(p), func(pr *sim.Process) {
						for h := 0; h < holdsPer; h++ {
							pr.Hold(1)
						}
					})
				}
				if _, err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(procs*holdsPer), "events/op")
		})
	}
	b.Run("facility-contention", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := sim.New()
			f := e.NewFacility("cpu", 2)
			for p := 0; p < 20; p++ {
				e.Spawn(fmt.Sprint(p), func(pr *sim.Process) {
					for j := 0; j < 10; j++ {
						f.Use(pr, 1)
					}
				})
			}
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("mailbox-pingpong", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := sim.New()
			a, c := e.NewMailbox("a"), e.NewMailbox("b")
			const rounds = 100
			e.Spawn("ping", func(p *sim.Process) {
				for r := 0; r < rounds; r++ {
					c.Send(r)
					a.Receive(p)
				}
			})
			e.Spawn("pong", func(p *sim.Process) {
				for r := 0; r < rounds; r++ {
					c.Receive(p)
					a.Send(r)
				}
			})
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- EXTRA-SIM: estimator end-to-end across system sizes ----------------

func BenchmarkEstimator(b *testing.B) {
	est := estimator.New()
	pr, err := est.Compile(samples.Kernel6Detailed())
	if err != nil {
		b.Fatal(err)
	}
	globals := map[string]float64{"N": 40, "M": 2, "c": 1e-6}
	for _, procs := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("kernel6-detailed-procs-%d", procs), func(b *testing.B) {
			b.ReportAllocs()
			req := estimator.Request{
				Params:  machine.SystemParams{Nodes: (procs + 3) / 4, ProcessorsPerNode: 4, Processes: procs, Threads: 1},
				Globals: globals,
			}
			for i := 0; i < b.N; i++ {
				if _, err := est.EstimateCompiled(pr, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("sample-model", func(b *testing.B) {
		b.ReportAllocs()
		spr, err := est.Compile(samples.Sample())
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := est.EstimateCompiled(spr, estimator.Request{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEstimateWithMetrics measures the cost of observability around
// one compiled estimate. "baseline" runs with no observer installed —
// compare it against BenchmarkEstimator (pre-instrumentation cost is the
// same code path) to see that the disabled hooks stay within noise (<5%).
// "metrics" and "telemetry" show the enabled price.
func BenchmarkEstimateWithMetrics(b *testing.B) {
	est := estimator.New()
	pr, err := est.Compile(samples.Kernel6Detailed())
	if err != nil {
		b.Fatal(err)
	}
	base := estimator.Request{
		Params:  machine.SystemParams{Nodes: 1, ProcessorsPerNode: 4, Processes: 4, Threads: 1},
		Globals: map[string]float64{"N": 40, "M": 2, "c": 1e-6},
	}
	b.Run("baseline", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := est.EstimateCompiled(pr, base); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("metrics", func(b *testing.B) {
		b.ReportAllocs()
		req := base
		req.Metrics = obs.NewRegistry()
		for i := 0; i < b.N; i++ {
			if _, err := est.EstimateCompiled(pr, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("telemetry", func(b *testing.B) {
		b.ReportAllocs()
		req := base
		req.Telemetry = true
		for i := 0; i < b.N; i++ {
			if _, err := est.EstimateCompiled(pr, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- EXTRA-SCALE: persistence and checking throughput -------------------

func BenchmarkXMI(b *testing.B) {
	m := samples.Synthetic(4, 250)
	xml, err := xmi.EncodeString(m)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xmi.EncodeString(m); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(xml)))
	})
	b.Run("decode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := xmi.DecodeString(xml); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(xml)))
	})
}

func BenchmarkChecker(b *testing.B) {
	for _, size := range []struct{ d, a int }{{1, 50}, {4, 250}} {
		m := samples.Synthetic(size.d, size.a)
		chk := checker.New()
		b.Run(fmt.Sprintf("elements-%d", size.d*size.a), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if rep := chk.Check(m); rep.HasErrors() {
					b.Fatal("synthetic model failed checking")
				}
			}
		})
	}
}

// --- Alternative representations (FIG6 extension point) -----------------

func BenchmarkContentHandlers(b *testing.B) {
	m := samples.Sample()
	b.Run("cpp", func(b *testing.B) {
		gen := cppgen.New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gen.Generate(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dot.Render(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("go", func(b *testing.B) {
		gen := gogen.New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gen.Generate(m); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("markdown", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mdgen.Render(m); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- FIG3 / EXTRA-PRED: the real kernel 6 vs its simulated model ---------

func BenchmarkFig3Kernel6(b *testing.B) {
	k6, _ := lfk.ByID(6)
	const n, m = 200, 2
	b.Run("real-kernel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = k6.Run(n, m)
		}
	})
	b.Run("model-eval-collapsed", func(b *testing.B) {
		b.ReportAllocs()
		pr, err := interp.Compile(samples.Kernel6(), nil)
		if err != nil {
			b.Fatal(err)
		}
		cfg := interp.Config{Globals: map[string]float64{"N": n, "M": m, "c": 1e-8}}
		for i := 0; i < b.N; i++ {
			if _, err := pr.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Trace machinery ------------------------------------------------------

func BenchmarkTrace(b *testing.B) {
	tr := &trace.Trace{Model: "bench"}
	for i := 0; i < 5000; i++ {
		t := float64(i)
		tr.Append(trace.Event{T: t, PID: i % 8, Kind: trace.Enter, Elem: "e", Name: "E"})
		tr.Append(trace.Event{T: t + 0.5, PID: i % 8, Kind: trace.Leave, Elem: "e", Name: "E"})
	}
	b.Run("write", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sb strings.Builder
			if err := trace.Write(&sb, tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	var sb strings.Builder
	trace.Write(&sb, tr)
	text := sb.String()
	b.Run("read", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(text)))
		for i := 0; i < b.N; i++ {
			if _, err := trace.Read(strings.NewReader(text)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("summarize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := trace.Summarize(tr); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gantt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = trace.Gantt(tr, 80)
		}
	})
}

// --- Ablation: FCFS vs processor-sharing contention ----------------------

// BenchmarkContention compares the two processor-contention disciplines of
// the machine model on an oversubscribed node (8 processes, 2 processors).
func BenchmarkContention(b *testing.B) {
	est := estimator.New()
	pr, err := est.Compile(samples.Kernel6())
	if err != nil {
		b.Fatal(err)
	}
	base := estimator.Request{
		Params:  machine.SystemParams{Nodes: 1, ProcessorsPerNode: 2, Processes: 8, Threads: 1},
		Globals: map[string]float64{"N": 100, "M": 2, "c": 1e-6},
	}
	for _, pol := range []machine.Policy{machine.PolicyFCFS, machine.PolicyPS} {
		req := base
		req.Policy = pol
		b.Run(pol.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := est.EstimateCompiled(pr, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablation: process-oriented vs callback-chain event handling --------

// BenchmarkSimStyle compares the goroutine-backed process model (Hold in a
// loop) against pure scheduler callbacks (After chains) for the same event
// count: the cost of the process abstraction is the two channel handoffs
// per event.
func BenchmarkSimStyle(b *testing.B) {
	const events = 1000
	b.Run("process-hold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := sim.New()
			e.Spawn("p", func(p *sim.Process) {
				for j := 0; j < events; j++ {
					p.Hold(1)
				}
			})
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("callback-chain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := sim.New()
			remaining := events
			var step func()
			step = func() {
				remaining--
				if remaining > 0 {
					e.After(1, step)
				}
			}
			e.After(1, step)
			if _, err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: string emission strategy in the generator ----------------

// BenchmarkEmitStrategy documents why the generator uses strings.Builder:
// naive string concatenation is quadratic in the number of emitted lines.
func BenchmarkEmitStrategy(b *testing.B) {
	const lines = 2000
	b.Run("concat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := ""
			for l := 0; l < lines; l++ {
				out += "    a1.execute(uid, pid, tid, FA1());\n"
			}
			_ = out
		}
	})
	b.Run("builder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sb strings.Builder
			for l := 0; l < lines; l++ {
				sb.WriteString("    a1.execute(uid, pid, tid, FA1());\n")
			}
			_ = sb.String()
		}
	})
}

// --- Model construction and cloning --------------------------------------

func BenchmarkModel(b *testing.B) {
	b.Run("build-synthetic-1000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = samples.Synthetic(4, 250)
		}
	})
	m := samples.Synthetic(4, 250)
	b.Run("clone-1000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = uml.Clone(m)
		}
	})
}
