package testutil

import (
	"math"
	"testing"
)

func TestCloseTimes(t *testing.T) {
	cases := []struct {
		name     string
		got, want float64
		close    bool
	}{
		{"exact", 1.3, 1.3, true},
		{"accumulated error", 0.1 + 0.2, 0.3, true},
		{"relative at scale", 1e6 + 1e-4, 1e6, true},
		{"clearly different", 1.0, 1.1, false},
		{"small absolute slack near zero", 1e-12, 0, true},
		{"zero exact", 0, 0, true},
		{"nan never agrees", math.NaN(), math.NaN(), false},
		{"inf equal", math.Inf(1), math.Inf(1), true},
		{"inf vs finite", math.Inf(1), 1, false},
	}
	for _, c := range cases {
		if got := CloseTimes(c.got, c.want); got != c.close {
			t.Errorf("%s: CloseTimes(%v, %v) = %v, want %v", c.name, c.got, c.want, got, c.close)
		}
	}
}
