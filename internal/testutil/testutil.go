// Package testutil holds small helpers shared across the repo's test
// suites. Its main job is a single, consistent tolerance for comparing
// simulated times: independently derived expectations (hand-computed
// makespans, analytic formulas) accumulate floating-point error along a
// different operation order than the simulator, so exact equality is the
// wrong contract for them. Bit-identity contracts — the same computation
// run twice, sequential vs parallel evaluation, trace round-trips — must
// NOT use these helpers; for those, exact comparison is the point.
package testutil

import (
	"math"
	"testing"
)

// TimeTolerance is the relative tolerance used when comparing simulated
// times against independently computed expectations. It matches the
// conformance harness's differential-oracle tolerance.
const TimeTolerance = 1e-9

// CloseTimes reports whether two simulated times agree within
// TimeTolerance, relative to the larger magnitude (absolute near zero).
// NaN never agrees with anything; equal infinities agree.
func CloseTimes(got, want float64) bool {
	if got == want {
		return true
	}
	if math.IsNaN(got) || math.IsNaN(want) || math.IsInf(got, 0) || math.IsInf(want, 0) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(got), math.Abs(want)))
	return math.Abs(got-want) <= TimeTolerance*scale
}

// AssertTime fails the test when a simulated time does not agree with its
// expectation within TimeTolerance. The name identifies the quantity in
// the failure message.
func AssertTime(t testing.TB, name string, got, want float64) {
	t.Helper()
	if !CloseTimes(got, want) {
		t.Errorf("%s = %v, want %v (±%g relative)", name, got, want, TimeTolerance)
	}
}
