package cppgen

import (
	"fmt"

	"prophet/internal/traverse"
	"prophet/internal/uml"
)

// Handler adapts the generator to the ContentHandler interface of the
// Figure 6 traversal machinery, so C++ generation plugs into the same
// Traverser/Navigator pipeline as every other model representation
// ("the extension of Performance Prophet for the generation of a specific
// model representation involves only a specific implementation of the
// ContentHandler interface", paper Section 3).
//
// The handler captures the model at EnterModel and produces the C++ text
// at LeaveModel; retrieve it with Output.
type Handler struct {
	gen    *Generator
	model  *uml.Model
	output string
	done   bool
}

// NewHandler returns a ContentHandler that generates C++ with gen (nil
// means a default generator).
func NewHandler(gen *Generator) *Handler {
	if gen == nil {
		gen = New()
	}
	return &Handler{gen: gen}
}

// Visit implements traverse.ContentHandler.
func (h *Handler) Visit(ev traverse.Event) error {
	switch ev.Phase {
	case traverse.EnterModel:
		m, ok := ev.Element.(*uml.Model)
		if !ok {
			return fmt.Errorf("cppgen: EnterModel with %T element", ev.Element)
		}
		h.model = m
		h.done = false
	case traverse.LeaveModel:
		if h.model == nil {
			return fmt.Errorf("cppgen: LeaveModel before EnterModel")
		}
		out, err := h.gen.Generate(h.model)
		if err != nil {
			return err
		}
		h.output = out
		h.done = true
	}
	return nil
}

// Output returns the generated C++ and whether generation has completed.
func (h *Handler) Output() (string, bool) { return h.output, h.done }
