package cppgen

import (
	"fmt"

	"prophet/internal/profile"
	"prophet/internal/uml"
)

// emitFlow is phase 6 of the Figure 5 algorithm (lines 29-35): it walks
// the main diagram's control flow and emits, for each performance modeling
// element, the C++ code that invokes its execute() method, in the order
// specified by the UML model. Branch control flow maps to if/else-if
// statements (paper, Figure 8b) and the content of activities and loops is
// nested in place.
func (g *Generator) emitFlow(w *writer, m *uml.Model, names map[string]string) error {
	main := m.Main()
	if main == nil {
		w.line("// -- Execution flow --")
		return nil
	}
	f := &flowEmitter{gen: g, model: m, names: names, w: w}
	w.line("// -- Execution flow --")
	return f.emitDiagram(main)
}

// flowEmitter carries the state of one flow walk.
type flowEmitter struct {
	gen   *Generator
	model *uml.Model
	names map[string]string
	w     *writer
	// flowIdx caches one dense flow index per diagram so every decision
	// and fork convergence query is integer BFS, not a string-keyed
	// re-walk (quadratic per diagram before).
	flowIdx map[*uml.Diagram]*uml.FlowIndex
	// loopSeq numbers synthetic loop variables.
	loopSeq int
	// active guards against cyclic diagram nesting at emission time (the
	// checker also rejects it, but the generator must not recurse forever
	// on unchecked input).
	active []string
}

// emitDiagram emits the statements of a whole diagram, from its initial
// node to its final node(s).
func (f *flowEmitter) emitDiagram(d *uml.Diagram) error {
	for _, name := range f.active {
		if name == d.Name() {
			return fmt.Errorf("cppgen: cyclic activity nesting through diagram %q", d.Name())
		}
	}
	f.active = append(f.active, d.Name())
	defer func() { f.active = f.active[:len(f.active)-1] }()

	ini := d.Initial()
	if ini == nil {
		if len(d.Nodes()) == 0 {
			return nil
		}
		return fmt.Errorf("cppgen: diagram %q has no initial node", d.Name())
	}
	start, err := f.successor(d, ini)
	if err != nil {
		return err
	}
	return f.emitSeq(d, start, nil, map[string]bool{})
}

// emitSeq emits the statement sequence starting at cur and ending when the
// walk reaches stop (exclusive) or a final node. onPath detects
// unstructured cycles.
func (f *flowEmitter) emitSeq(d *uml.Diagram, cur uml.Node, stop uml.Node, onPath map[string]bool) error {
	for cur != nil {
		if stop != nil && cur.ID() == stop.ID() {
			return nil
		}
		if onPath[cur.ID()] {
			return fmt.Errorf("cppgen: diagram %q: unstructured cycle through node %q; model loops with <<loop+>> elements",
				d.Name(), cur.Name())
		}
		onPath[cur.ID()] = true

		var err error
		switch n := cur.(type) {
		case *uml.ControlNode:
			switch n.Kind() {
			case uml.KindFinal:
				return nil
			case uml.KindMerge:
				cur, err = f.successor(d, n)
			case uml.KindDecision:
				cur, err = f.emitDecision(d, n, onPath)
			case uml.KindFork:
				cur, err = f.emitFork(d, n, onPath)
			case uml.KindJoin:
				cur, err = f.successor(d, n)
			default:
				return fmt.Errorf("cppgen: diagram %q: unexpected %v mid-flow", d.Name(), n.Kind())
			}
		case *uml.ActionNode:
			if err := f.emitAction(n); err != nil {
				return err
			}
			cur, err = f.successor(d, n)
		case *uml.ActivityNode:
			if err := f.emitActivity(n); err != nil {
				return err
			}
			cur, err = f.successor(d, n)
		case *uml.LoopNode:
			if err := f.emitLoop(n); err != nil {
				return err
			}
			cur, err = f.successor(d, n)
		default:
			return fmt.Errorf("cppgen: unknown node type %T", cur)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// successor returns the unique next node, or nil at the end of the flow.
func (f *flowEmitter) successor(d *uml.Diagram, n uml.Node) (uml.Node, error) {
	out := d.Outgoing(n.ID())
	switch len(out) {
	case 0:
		return nil, nil
	case 1:
		next := d.Node(out[0].To())
		if next == nil {
			return nil, fmt.Errorf("cppgen: diagram %q: dangling edge from %q", d.Name(), n.Name())
		}
		return next, nil
	}
	return nil, fmt.Errorf("cppgen: diagram %q: %v %q has %d successors",
		d.Name(), n.Kind(), n.Name(), len(out))
}

// emitAction emits one element execution: the associated code fragment
// (paper, Figure 7b) followed by the execute() invocation with the
// element's cost function as argument (paper, Figure 8b line 76).
func (f *flowEmitter) emitAction(n *uml.ActionNode) error {
	if n.Stereotype() == "" {
		// Unstereotyped actions carry no performance semantics; the
		// checker reports them at Info severity and the generator skips
		// them (Figure 5 only includes selected perf_elements).
		return nil
	}
	if n.Code != "" {
		f.w.line("// code associated with %s", n.Name())
		f.w.lines(n.Code)
	}
	ident, ok := f.names[n.ID()]
	if !ok {
		return fmt.Errorf("cppgen: element %q was not declared", n.Name())
	}
	args, err := f.executeArgs(n)
	if err != nil {
		return err
	}
	f.w.line("%s.execute(%s);", ident, args)
	return nil
}

// executeArgs builds the execute() argument list for an action-like
// element. All variants start with the context triple (uid, pid, tid); the
// remaining arguments depend on the stereotype.
func (f *flowEmitter) executeArgs(n *uml.ActionNode) (string, error) {
	renderTag := func(tag string) (string, error) {
		raw, ok := n.Tag(tag)
		if !ok {
			return "", fmt.Errorf("cppgen: element %q: required tag %q unset", n.Name(), tag)
		}
		cpp, err := RenderExpr(raw)
		if err != nil {
			return "", fmt.Errorf("cppgen: element %q tag %q: %w", n.Name(), tag, err)
		}
		return cpp, nil
	}
	switch n.Stereotype() {
	case profile.ActionPlus, profile.OMPCritical:
		// The cost function wins; the `time` tagged value is the
		// fallback (Figure 1b's measured execution time).
		src := n.CostFunc
		if src == "" {
			if raw, ok := n.Tag(profile.TagTime); ok {
				src = raw
			}
		}
		cost := "0"
		if src != "" {
			c, err := RenderExpr(src)
			if err != nil {
				return "", fmt.Errorf("cppgen: element %q cost function: %w", n.Name(), err)
			}
			cost = c
		}
		return "uid, pid, tid, " + cost, nil
	case profile.MPISend:
		dest, err := renderTag(profile.TagDest)
		if err != nil {
			return "", err
		}
		size, err := renderTag(profile.TagSize)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("uid, pid, tid, /*dest*/ %s, /*size*/ %s", dest, size), nil
	case profile.MPIRecv:
		src, err := renderTag(profile.TagSrc)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("uid, pid, tid, /*src*/ %s", src), nil
	case profile.MPISendrecv:
		dest, err := renderTag(profile.TagDest)
		if err != nil {
			return "", err
		}
		src, err := renderTag(profile.TagSrc)
		if err != nil {
			return "", err
		}
		size, err := renderTag(profile.TagSize)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("uid, pid, tid, /*dest*/ %s, /*src*/ %s, /*size*/ %s", dest, src, size), nil
	case profile.MPIBarrier:
		return "uid, pid, tid", nil
	case profile.MPIBroadcast, profile.MPIReduce:
		root, err := renderTag(profile.TagRoot)
		if err != nil {
			return "", err
		}
		size, err := renderTag(profile.TagSize)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("uid, pid, tid, /*root*/ %s, /*size*/ %s", root, size), nil
	}
	return "", fmt.Errorf("cppgen: element %q: unsupported stereotype <<%s>>", n.Name(), n.Stereotype())
}

// emitActivity nests the activity's content in place (paper: "the C++ code
// that represents activity SA is nested within the C++ code of the main
// activity"). If the activity carries its own cost function, an execute()
// call models that aggregate cost before the content.
func (f *flowEmitter) emitActivity(n *uml.ActivityNode) error {
	f.w.line("// activity %s", n.Name())
	if n.Code != "" {
		f.w.line("// code associated with %s", n.Name())
		f.w.lines(n.Code)
	}
	if n.CostFunc != "" {
		ident, ok := f.names[n.ID()]
		if !ok {
			return fmt.Errorf("cppgen: activity %q was not declared", n.Name())
		}
		cost, err := RenderExpr(n.CostFunc)
		if err != nil {
			return fmt.Errorf("cppgen: activity %q cost function: %w", n.Name(), err)
		}
		f.w.line("%s.execute(uid, pid, tid, %s);", ident, cost)
	}
	if n.Stereotype() == profile.OMPParallel {
		return f.emitParallelRegion(n)
	}
	body := f.model.DiagramByName(n.Body)
	if body == nil {
		return fmt.Errorf("cppgen: activity %q references unknown diagram %q", n.Name(), n.Body)
	}
	return f.emitDiagram(body)
}

// emitParallelRegion emits an OpenMP-style fork/join region: the body runs
// once per team thread, with the thread id rebound.
func (f *flowEmitter) emitParallelRegion(n *uml.ActivityNode) error {
	count := "threads"
	if raw, ok := n.Tag(profile.TagCount); ok {
		c, err := RenderExpr(raw)
		if err != nil {
			return fmt.Errorf("cppgen: parallel region %q count: %w", n.Name(), err)
		}
		count = c
	}
	body := f.model.DiagramByName(n.Body)
	if body == nil {
		return fmt.Errorf("cppgen: parallel region %q references unknown diagram %q", n.Name(), n.Body)
	}
	f.w.line("PARALLEL_FOR_THREADS(tid, (int)(%s)) {", count)
	f.w.in()
	if err := f.emitDiagram(body); err != nil {
		return err
	}
	f.w.out()
	f.w.line("} // join %s", n.Name())
	return nil
}

// emitLoop emits a counted for statement around the loop body diagram.
func (f *flowEmitter) emitLoop(n *uml.LoopNode) error {
	count, err := RenderExpr(n.Count)
	if err != nil {
		return fmt.Errorf("cppgen: loop %q count: %w", n.Name(), err)
	}
	v := n.Var
	if v == "" {
		f.loopSeq++
		v = fmt.Sprintf("it%d", f.loopSeq)
	}
	body := f.model.DiagramByName(n.Body)
	if body == nil {
		return fmt.Errorf("cppgen: loop %q references unknown diagram %q", n.Name(), n.Body)
	}
	f.w.line("for (int %s = 0; %s < (int)(%s); ++%s) { // loop %s", v, v, count, v, n.Name())
	f.w.in()
	if err := f.emitDiagram(body); err != nil {
		return err
	}
	f.w.out()
	f.w.line("}")
	return nil
}

// emitDecision maps a decision node's branches onto an if/else-if chain
// (paper, Figure 8b lines 77-87) and returns the node where the branches
// converge, from which the sequence continues. Probabilistic decisions
// (weighted, unguarded branches) draw from the runtime's pmp_rand().
func (f *flowEmitter) emitDecision(d *uml.Diagram, n *uml.ControlNode, onPath map[string]bool) (uml.Node, error) {
	out := d.Outgoing(n.ID())
	if len(out) < 2 {
		return nil, fmt.Errorf("cppgen: diagram %q: decision %q has %d branch(es)", d.Name(), n.Name(), len(out))
	}
	if out[0].Guard == "" && out[0].Weight > 0 {
		return f.emitWeightedDecision(d, n, out, onPath)
	}
	// Guarded branches in model order; the else branch last.
	var guarded []*uml.Edge
	var elseEdge *uml.Edge
	for _, e := range out {
		if e.IsElse() {
			if elseEdge != nil {
				return nil, fmt.Errorf("cppgen: diagram %q: decision %q has two else branches", d.Name(), n.Name())
			}
			elseEdge = e
			continue
		}
		if e.Guard == "" {
			return nil, fmt.Errorf("cppgen: diagram %q: unguarded branch out of decision %q", d.Name(), n.Name())
		}
		guarded = append(guarded, e)
	}
	if len(guarded) == 0 {
		return nil, fmt.Errorf("cppgen: diagram %q: decision %q has only an else branch", d.Name(), n.Name())
	}

	conv := f.convergenceOf(d, out)
	emitBranch := func(head string) error {
		node := d.Node(head)
		if node == nil {
			return fmt.Errorf("cppgen: diagram %q: dangling branch edge", d.Name())
		}
		f.w.in()
		// Branch-local path set: the same node may legally appear on
		// several alternative branches.
		branchPath := make(map[string]bool, len(onPath))
		for id := range onPath {
			branchPath[id] = true
		}
		err := f.emitSeq(d, node, conv, branchPath)
		f.w.out()
		return err
	}

	for i, e := range guarded {
		guard, err := RenderExpr(e.Guard)
		if err != nil {
			return nil, fmt.Errorf("cppgen: diagram %q: guard %q: %w", d.Name(), e.Guard, err)
		}
		if i == 0 {
			f.w.line("if (%s) {", guard)
		} else {
			f.w.line("} else if (%s) {", guard)
		}
		if err := emitBranch(e.To()); err != nil {
			return nil, err
		}
	}
	if elseEdge != nil {
		f.w.line("} else {")
		if err := emitBranch(elseEdge.To()); err != nil {
			return nil, err
		}
	}
	f.w.line("}")
	return conv, nil
}

// emitWeightedDecision renders a probabilistic branch: one draw from
// pmp_rand(), compared against the cumulative branch probabilities.
func (f *flowEmitter) emitWeightedDecision(d *uml.Diagram, n *uml.ControlNode, out []*uml.Edge, onPath map[string]bool) (uml.Node, error) {
	var total float64
	for _, e := range out {
		if e.Guard != "" || e.Weight <= 0 {
			return nil, fmt.Errorf("cppgen: diagram %q: decision %q mixes weighted and guarded branches",
				d.Name(), n.Name())
		}
		total += e.Weight
	}
	conv := f.convergenceOf(d, out)
	emitBranch := func(head string) error {
		node := d.Node(head)
		if node == nil {
			return fmt.Errorf("cppgen: diagram %q: dangling branch edge", d.Name())
		}
		f.w.in()
		branchPath := make(map[string]bool, len(onPath))
		for id := range onPath {
			branchPath[id] = true
		}
		err := f.emitSeq(d, node, conv, branchPath)
		f.w.out()
		return err
	}
	f.w.line("{")
	f.w.in()
	f.w.line("double pmp_r = pmp_rand() * %g; // weighted branch", total)
	acc := 0.0
	for i, e := range out {
		acc += e.Weight
		switch {
		case i == 0:
			f.w.line("if (pmp_r < %g) {", acc)
		case i == len(out)-1:
			f.w.line("} else {")
		default:
			f.w.line("} else if (pmp_r < %g) {", acc)
		}
		if err := emitBranch(e.To()); err != nil {
			return nil, err
		}
	}
	f.w.line("}")
	f.w.out()
	f.w.line("}")
	return conv, nil
}

// emitFork emits a fork/join parallel section; each outgoing branch is a
// parallel activity that runs until the common join node.
func (f *flowEmitter) emitFork(d *uml.Diagram, n *uml.ControlNode, onPath map[string]bool) (uml.Node, error) {
	out := d.Outgoing(n.ID())
	if len(out) < 2 {
		return nil, fmt.Errorf("cppgen: diagram %q: fork %q has %d branch(es)", d.Name(), n.Name(), len(out))
	}
	conv := f.convergenceOf(d, out)
	f.w.line("PAR_BEGIN // fork")
	for _, e := range out {
		node := d.Node(e.To())
		if node == nil {
			return nil, fmt.Errorf("cppgen: diagram %q: dangling fork edge", d.Name())
		}
		f.w.line("PAR_BRANCH {")
		f.w.in()
		branchPath := make(map[string]bool, len(onPath))
		for id := range onPath {
			branchPath[id] = true
		}
		if err := f.emitSeq(d, node, conv, branchPath); err != nil {
			return nil, err
		}
		f.w.out()
		f.w.line("}")
	}
	f.w.line("PAR_END // join")
	// Skip past the join node itself.
	if conv != nil && conv.Kind() == uml.KindJoin {
		return f.successor(d, conv)
	}
	return conv, nil
}

// convergenceOf finds where the branches out of a decision or fork meet
// again (nil when they all run to final nodes without converging).
func (f *flowEmitter) convergenceOf(d *uml.Diagram, branches []*uml.Edge) uml.Node {
	if f.flowIdx == nil {
		f.flowIdx = map[*uml.Diagram]*uml.FlowIndex{}
	}
	ix, ok := f.flowIdx[d]
	if !ok {
		ix = uml.NewFlowIndex(d)
		f.flowIdx[d] = ix
	}
	heads := make([]string, len(branches))
	for i, e := range branches {
		heads[i] = e.To()
	}
	return ix.Convergence(heads)
}
