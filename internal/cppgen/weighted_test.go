package cppgen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"prophet/internal/builder"
	"prophet/internal/uml"
)

func weightedModel(t *testing.T) *uml.Model {
	t.Helper()
	b := builder.New("weighted")
	b.Function("FFast", nil, "1").Function("FSlow", nil, "10")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("dec")
	d.Action("Fast").Cost("FFast()")
	d.Action("Slow").Cost("FSlow()")
	d.Merge("mrg")
	d.Action("After").Cost("2")
	d.Final()
	d.Flow("initial", "dec")
	d.FlowWeighted("dec", "Fast", 0.7)
	d.FlowWeighted("dec", "Slow", 0.3)
	d.Flow("Fast", "mrg")
	d.Flow("Slow", "mrg")
	d.Chain("mrg", "After", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWeightedDecisionCpp(t *testing.T) {
	out, err := New().Generate(weightedModel(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"double pmp_r = pmp_rand() * 1; // weighted branch",
		"if (pmp_r < 0.7) {",
		"} else {",
		"fast.execute(uid, pid, tid, FFast());",
		"slow.execute(uid, pid, tid, FSlow());",
		"after.execute(uid, pid, tid, 2);",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	if err := ValidateStructure(out); err != nil {
		t.Errorf("structure: %v", err)
	}
	// Continuation after the merge appears after the branch.
	if strings.Index(out, "after.execute") < strings.Index(out, "pmp_rand") {
		t.Errorf("continuation emitted before branch")
	}
}

func TestWeightedDecisionThreeWayCpp(t *testing.T) {
	b := builder.New("w3")
	b.Function("F", nil, "1")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("dec")
	d.Action("A").Cost("F()")
	d.Action("B").Cost("F()")
	d.Action("C").Cost("F()")
	d.Merge("mrg")
	d.Final()
	d.Flow("initial", "dec")
	d.FlowWeighted("dec", "A", 1)
	d.FlowWeighted("dec", "B", 1)
	d.FlowWeighted("dec", "C", 2)
	d.Chain("A", "mrg")
	d.Chain("B", "mrg")
	d.Chain("C", "mrg", "final")
	m, _ := b.Build()
	out, err := New().Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pmp_rand() * 4",
		"if (pmp_r < 1) {",
		"} else if (pmp_r < 2) {",
		"} else {",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestWeightedDecisionCppCompiles(t *testing.T) {
	cxx, err := exec.LookPath("g++")
	if err != nil {
		t.Skip("no C++ compiler on PATH")
	}
	dir := t.TempDir()
	model, err := New().Generate(weightedModel(t))
	if err != nil {
		t.Fatal(err)
	}
	src := StandaloneProgram(model, "model_program")
	if err := os.WriteFile(filepath.Join(dir, "pmp_runtime.h"), []byte(RuntimeHeader()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "model.cpp"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "pmp")
	cmd := exec.Command(cxx, "-std=c++11", "-I", dir, "-o", bin, filepath.Join(dir, "model.cpp"))
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("compile failed: %v\n%s\n%s", err, out, src)
	}
	out, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out)
	}
	// Either path yields 3 (fast) or 12 (slow) total.
	s := string(out)
	if !strings.Contains(s, "predicted execution time: 3") &&
		!strings.Contains(s, "predicted execution time: 12") {
		t.Errorf("unexpected runtime output: %s", s)
	}
}
