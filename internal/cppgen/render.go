package cppgen

import (
	"fmt"
	"strconv"
	"strings"

	"prophet/internal/expr"
)

// RenderExpr translates a cost-function / guard expression to C++ source
// text. The expression language is deliberately C-like, so the translation
// is close to the identity; the two differences are the remainder operator
// (C++ '%' is integral only, so 'a % b' becomes 'fmod(a, b)') and fully
// parenthesized composite operands, which makes the emitted text
// precedence-proof.
func RenderExpr(src string) (string, error) {
	n, err := expr.Parse(src)
	if err != nil {
		return "", fmt.Errorf("cppgen: %w", err)
	}
	return renderNode(n), nil
}

func renderNode(n expr.Node) string {
	switch x := n.(type) {
	case *expr.Num:
		return strconv.FormatFloat(x.Value, 'g', -1, 64)
	case *expr.Var:
		return x.Name
	case *expr.Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = renderNode(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *expr.Unary:
		return x.Op + renderOperand(x.X)
	case *expr.Binary:
		if x.Op == "%" {
			return "fmod(" + renderNode(x.L) + ", " + renderNode(x.R) + ")"
		}
		return renderOperand(x.L) + " " + x.Op + " " + renderOperand(x.R)
	case *expr.Cond:
		return renderOperand(x.C) + " ? " + renderOperand(x.A) + " : " + renderOperand(x.B)
	default:
		panic(fmt.Sprintf("cppgen: unknown expression node %T", n))
	}
}

func renderOperand(n expr.Node) string {
	switch n.(type) {
	case *expr.Num, *expr.Var, *expr.Call:
		return renderNode(n)
	}
	return "(" + renderNode(n) + ")"
}

// Identifier sanitizes a modeling-element name into a valid C++ identifier
// and applies the paper's instance-naming rule (Figure 4: the element
// Kernel6 maps to the class instance kernel6 — the first letter is
// lowercased). Characters that cannot appear in an identifier become '_'.
func Identifier(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			(i > 0 && r >= '0' && r <= '9')
		switch {
		case !ok:
			sb.WriteByte('_')
		case i == 0 && r >= 'A' && r <= 'Z':
			sb.WriteRune(r - 'A' + 'a')
		default:
			sb.WriteRune(r)
		}
	}
	if sb.Len() == 0 {
		return "_"
	}
	return sb.String()
}
