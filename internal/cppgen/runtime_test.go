package cppgen

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"prophet/internal/samples"
	"prophet/internal/uml"
)

func TestRuntimeHeaderShape(t *testing.T) {
	h := RuntimeHeader()
	for _, want := range []string{
		"#ifndef PMP_RUNTIME_H",
		"class ActionPlus",
		"class ActivityPlus",
		"class MpiSend",
		"class MpiRecv",
		"class MpiBarrier",
		"class MpiBcast",
		"class MpiReduce",
		"class OmpCritical",
		"#define PAR_BEGIN",
		"#define PARALLEL_FOR_THREADS",
		"#endif",
	} {
		if !strings.Contains(h, want) {
			t.Errorf("runtime header missing %q", want)
		}
	}
	if err := ValidateStructure(h); err != nil {
		t.Errorf("runtime header fails structural validation: %v", err)
	}
}

func TestGeneratedOutputsStructurallyValid(t *testing.T) {
	models := map[string]*uml.Model{
		"sample":           samples.Sample(),
		"kernel6":          samples.Kernel6(),
		"kernel6-detailed": samples.Kernel6Detailed(),
		"pipeline":         samples.Pipeline(4),
		"synthetic":        samples.Synthetic(3, 40),
	}
	g := New()
	for name, m := range models {
		out, err := g.Generate(m)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := ValidateStructure(out); err != nil {
			t.Errorf("%s: %v\n%s", name, err, out)
		}
	}
}

func TestValidateStructureCatchesErrors(t *testing.T) {
	cases := map[string]string{
		"unclosed brace":  "int f() {",
		"extra brace":     "int f() {}}",
		"unclosed paren":  "f(1, 2;",
		"extra paren":     "f(1))",
		"string newline":  "char* s = \"abc\n\";",
		"unclosed string": `char* s = "abc`,
	}
	for name, src := range cases {
		if err := ValidateStructure(src); err == nil {
			t.Errorf("%s: should fail", name)
		}
	}
	// Comments and escapes must not confuse the scanner.
	fine := `
// a comment with } and ) and "quote
char* s = "brace { and paren ( inside string";
char c = '{';
char q = '\'';
int f() { return (1 + 2); }
`
	if err := ValidateStructure(fine); err != nil {
		t.Errorf("valid snippet rejected: %v", err)
	}
}

func TestStandaloneProgram(t *testing.T) {
	out, err := New().Generate(samples.Sample())
	if err != nil {
		t.Fatal(err)
	}
	prog := StandaloneProgram(out, "model_program")
	if !strings.Contains(prog, "int main() {") ||
		!strings.Contains(prog, "model_program(0, 0, 0);") {
		t.Errorf("standalone wrapper wrong:\n%s", prog)
	}
	if err := ValidateStructure(prog); err != nil {
		t.Errorf("standalone program invalid: %v", err)
	}
}

// TestGeneratedCppCompiles is the end-to-end proof that the generated
// Performance Model of Program is real C++: it compiles the sample
// model against pmp_runtime.h and runs it. Skipped when no C++ compiler
// is installed.
func TestGeneratedCppCompiles(t *testing.T) {
	cxx, err := exec.LookPath("g++")
	if err != nil {
		if cxx, err = exec.LookPath("clang++"); err != nil {
			t.Skip("no C++ compiler on PATH")
		}
	}
	dir := t.TempDir()
	model, err := New().Generate(samples.Sample())
	if err != nil {
		t.Fatal(err)
	}
	src := StandaloneProgram(model, "model_program")
	if err := os.WriteFile(filepath.Join(dir, "pmp_runtime.h"), []byte(RuntimeHeader()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "model.cpp"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "pmp")
	cmd := exec.Command(cxx, "-std=c++11", "-I", dir, "-o", bin, filepath.Join(dir, "model.cpp"))
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("compile failed: %v\n%s\n--- source ---\n%s", err, out, src)
	}
	out, err := exec.Command(bin).CombinedOutput()
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out)
	}
	// The sequential C++ runtime predicts the same 18.6 units the Go
	// estimator computes for the single-process sample model.
	if !strings.Contains(string(out), "predicted execution time: 18.6") {
		t.Errorf("C++ runtime prediction differs from estimator:\n%s", out)
	}
}
