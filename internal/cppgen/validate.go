package cppgen

import (
	"fmt"
	"strings"
)

// ValidateStructure performs a lightweight structural check of generated
// C++ text: braces, parentheses and string literals must balance, and no
// statement line may end inside an unterminated string. It is not a C++
// parser — the compile test against pmp_runtime.h is the real check — but
// it catches generator regressions cheaply and without a toolchain.
func ValidateStructure(src string) error {
	var braces, parens int
	line := 1
	inString := false
	inChar := false
	inLineComment := false
	prev := byte(0)
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case c == '\n':
			if inString {
				return fmt.Errorf("cppgen: line %d: newline inside string literal", line)
			}
			inLineComment = false
			line++
		case inLineComment:
		case inString:
			if c == '"' && prev != '\\' {
				inString = false
			}
		case inChar:
			if c == '\'' && prev != '\\' {
				inChar = false
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			inLineComment = true
		case c == '"':
			inString = true
		case c == '\'':
			inChar = true
		case c == '{':
			braces++
		case c == '}':
			braces--
			if braces < 0 {
				return fmt.Errorf("cppgen: line %d: unbalanced '}'", line)
			}
		case c == '(':
			parens++
		case c == ')':
			parens--
			if parens < 0 {
				return fmt.Errorf("cppgen: line %d: unbalanced ')'", line)
			}
		}
		prev = c
	}
	if braces != 0 {
		return fmt.Errorf("cppgen: %d unclosed brace(s)", braces)
	}
	if parens != 0 {
		return fmt.Errorf("cppgen: %d unclosed parenthesis(es)", parens)
	}
	if inString {
		return fmt.Errorf("cppgen: unterminated string literal")
	}
	return nil
}

// StandaloneProgram wraps generated model code with a main() that invokes
// the model program once and prints the predicted time, producing a
// self-contained translation unit that compiles against pmp_runtime.h:
//
//	g++ -DPMP_TRACE -o pmp model.cpp && ./pmp
func StandaloneProgram(modelCpp, functionName string) string {
	var sb strings.Builder
	sb.WriteString(modelCpp)
	sb.WriteString("\n")
	sb.WriteString("int main() {\n")
	sb.WriteString("    " + functionName + "(0, 0, 0);\n")
	sb.WriteString("    std::printf(\"predicted execution time: %.9f\\n\", pmp::now());\n")
	sb.WriteString("    return 0;\n")
	sb.WriteString("}\n")
	return sb.String()
}
