package cppgen

// RuntimeHeader returns the pmp_runtime.h that the generated C++ includes.
// The paper evaluates the generated model by linking it against CSIM; for
// users without CSIM this self-contained header implements the same
// execute() protocol over a trivial sequential virtual clock, so the
// generated Performance Model of Program compiles with any C++ compiler
// and, when run, prints the model's trace and predicted makespan.
//
// The class names match the mapping of elementClass: ActionPlus,
// ActivityPlus, MpiSend, MpiRecv, MpiBarrier, MpiBcast, MpiReduce,
// OmpCritical. Emit the header next to the generated file:
//
//	teuta cpp model.xml > model.cpp
//	teuta runtime > pmp_runtime.h
//	g++ -o pmp model.cpp main.cpp && ./pmp
func RuntimeHeader() string { return runtimeHeader }

const runtimeHeader = `// pmp_runtime.h - single-process evaluation runtime for generated
// performance models (stand-in for the CSIM-backed runtime of the paper).
// The execute() protocol matches the generated code exactly:
//   element.execute(uid, pid, tid, <cost>);   // action-like elements
//   send.execute(uid, pid, tid, dest, size);  // point-to-point
// Simulated time accumulates on a global clock; define PMP_TRACE to print
// one line per element execution.
#ifndef PMP_RUNTIME_H
#define PMP_RUNTIME_H

#include <cmath>
#include <cstdio>
#include <string>

namespace pmp {

// The virtual clock (one process; the Go estimator in this repository is
// the full multi-process evaluator).
inline double& clock_ref() {
    static double t = 0.0;
    return t;
}

inline void advance(double dt) {
    if (dt > 0) clock_ref() += dt;
}

inline double now() { return clock_ref(); }

// System parameters; override before invoking the model program.
inline int& param(const char* which) {
    static int nodes = 1, processors = 1, processes = 1, threads = 1;
    switch (which[0]) {
        case 'n': return nodes;
        case 'r': return processors;
        case 't': return threads;
        default:  return processes;
    }
}

class Element {
  public:
    Element(const char* name, int id) : name_(name), id_(id) {}
    const std::string& name() const { return name_; }
    int id() const { return id_; }

  protected:
    void trace(double dt) const {
#ifdef PMP_TRACE
        std::printf("%.9f\t%s\t%d\t%.9f\n", now(), name_.c_str(), id_, dt);
#else
        (void)dt;
#endif
    }
    std::string name_;
    int id_;
};

} // namespace pmp

// pmp_rand drives probabilistic (weighted) branches: a small LCG so the
// generated model is reproducible without seeding ceremony.
inline double pmp_rand() {
    static unsigned long long s = 0x9E3779B97F4A7C15ull;
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return (double)((s >> 11) & ((1ull << 53) - 1)) / (double)(1ull << 53);
}

// Interconnect parameters used by the communication elements.
static double pmp_latency = 50e-6;     // seconds per message
static double pmp_bandwidth = 1e9;     // bytes per second

// Globals mirrored from the generated model's environment.
static int processes = 1;
static int threads = 1;

class ActionPlus : public pmp::Element {
  public:
    ActionPlus(const char* name, int id) : Element(name, id) {}
    void execute(int uid, int pid, int tid, double cost) {
        (void)uid; (void)pid; (void)tid;
        trace(cost);
        pmp::advance(cost);
    }
};

class ActivityPlus : public pmp::Element {
  public:
    ActivityPlus(const char* name, int id) : Element(name, id) {}
    void execute(int uid, int pid, int tid, double cost) {
        (void)uid; (void)pid; (void)tid;
        trace(cost);
        pmp::advance(cost);
    }
};

class OmpCritical : public ActionPlus {
  public:
    OmpCritical(const char* name, int id) : ActionPlus(name, id) {}
};

class MpiSend : public pmp::Element {
  public:
    MpiSend(const char* name, int id) : Element(name, id) {}
    void execute(int uid, int pid, int tid, double dest, double size) {
        (void)uid; (void)pid; (void)tid; (void)dest;
        double dt = pmp_latency + size / pmp_bandwidth;
        trace(dt);
        pmp::advance(dt);
    }
};

class MpiRecv : public pmp::Element {
  public:
    MpiRecv(const char* name, int id) : Element(name, id) {}
    void execute(int uid, int pid, int tid, double src) {
        (void)uid; (void)pid; (void)tid; (void)src;
        trace(pmp_latency);
        pmp::advance(pmp_latency);
    }
};

class MpiSendrecv : public pmp::Element {
  public:
    MpiSendrecv(const char* name, int id) : Element(name, id) {}
    void execute(int uid, int pid, int tid, double dest, double src, double size) {
        (void)uid; (void)pid; (void)tid; (void)dest; (void)src;
        // Send and receive overlap; the single-clock runtime charges one
        // transfer (the Go estimator models both directions explicitly).
        double dt = pmp_latency + size / pmp_bandwidth;
        trace(dt);
        pmp::advance(dt);
    }
};

class MpiBarrier : public pmp::Element {
  public:
    MpiBarrier(const char* name, int id) : Element(name, id) {}
    void execute(int uid, int pid, int tid) {
        (void)uid; (void)pid; (void)tid;
        double dt = pmp_latency * std::ceil(std::log2(processes > 1 ? processes : 2));
        trace(dt);
        pmp::advance(dt);
    }
};

class MpiBcast : public pmp::Element {
  public:
    MpiBcast(const char* name, int id) : Element(name, id) {}
    void execute(int uid, int pid, int tid, double root, double size) {
        (void)uid; (void)pid; (void)tid; (void)root;
        double rounds = std::ceil(std::log2(processes > 1 ? processes : 2));
        double dt = rounds * (pmp_latency + size / pmp_bandwidth);
        trace(dt);
        pmp::advance(dt);
    }
};

class MpiReduce : public MpiBcast {
  public:
    MpiReduce(const char* name, int id) : MpiBcast(name, id) {}
};

// Fork/join and parallel-region markers: the single-clock runtime runs
// branches sequentially; the Go estimator models true parallelism.
#define PAR_BEGIN {
#define PAR_BRANCH
#define PAR_END }
#define PARALLEL_FOR_THREADS(tid, n) for (int tid = 0; tid < (n); ++tid)

#endif // PMP_RUNTIME_H
`
