package interp

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"prophet/internal/builder"
	"prophet/internal/profile"
	"prophet/internal/sim"
	"prophet/internal/uml"
)

// longModel builds a model that executes `iters` hold events — big
// enough to outlive any short deadline, small enough to finish promptly
// once interrupted.
func longModel(t *testing.T, iters int) *uml.Model {
	t.Helper()
	b := builder.New("long")
	b.Function("F", nil, "0.001")
	d := b.Diagram("main") // first diagram added is the main one
	d.Initial()
	d.Loop("L", itoa(iters), "body")
	d.Final()
	d.Chain("initial", "L", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("W").Cost("F()")
	body.Final()
	body.Chain("initial", "W", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func compileOrDie(t *testing.T, m *uml.Model) *Program {
	t.Helper()
	pr, err := Compile(m, profile.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func TestRunPreCancelledContext(t *testing.T) {
	pr := compileOrDie(t, longModel(t, 1_000_000))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := pr.Run(Config{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("pre-cancelled run took %v, want immediate return", d)
	}
}

func TestRunDeadlineMidSimulation(t *testing.T) {
	pr := compileOrDie(t, longModel(t, 20_000_000))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := pr.Run(Config{Context: ctx, MaxSteps: 100_000_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded through the chain, got %v", err)
	}
	var ie *sim.InterruptError
	if !errors.As(err, &ie) {
		t.Fatalf("want the typed *sim.InterruptError in the chain, got %v", err)
	}
	// "Promptly" = within event granularity plus scheduling slack, far
	// below the seconds the full run would take.
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("deadline expiry took %v to surface", d)
	}
}

func TestRunNilContextUnchanged(t *testing.T) {
	pr := compileOrDie(t, longModel(t, 10))
	res, err := pr.Run(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Errorf("makespan = %g", res.Makespan)
	}
}

// A flow error (here: a decision whose only guard is false, with no else
// branch) must surface as a typed *sim.ProcessError wrapping the flow
// error — not as an opaque "process panicked" string.
func TestFlowErrorIsTyped(t *testing.T) {
	b := builder.New("flowerr")
	b.Global("GV", "double")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("dec")
	d.Action("A")
	d.Final()
	d.Flow("initial", "dec").
		FlowIf("dec", "A", "GV > 0"). // GV stays 0: no branch is viable
		Flow("A", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := compileOrDie(t, m)
	_, err = pr.Run(Config{})
	if err == nil {
		t.Fatal("flow error did not fail the run")
	}
	var pe *sim.ProcessError
	if !errors.As(err, &pe) {
		t.Fatalf("want *sim.ProcessError, got %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "no guard") {
		t.Errorf("flow error text lost: %v", err)
	}
	if strings.Contains(err.Error(), "panicked") {
		t.Errorf("flow error still reported as a panic: %v", err)
	}
	// A deadlock stays distinguishable from a flow error by type.
	var de *sim.DeadlockError
	if errors.As(err, &de) {
		t.Error("flow error must not match DeadlockError")
	}
}

// MaxSteps exhaustion travels the same typed path.
func TestRunawayGuardErrorIsTyped(t *testing.T) {
	pr := compileOrDie(t, longModel(t, 10_000))
	_, err := pr.Run(Config{MaxSteps: 100})
	var pe *sim.ProcessError
	if !errors.As(err, &pe) {
		t.Fatalf("want *sim.ProcessError for the step guard, got %v", err)
	}
	if !strings.Contains(err.Error(), "element executions") {
		t.Errorf("step-guard message lost: %v", err)
	}
}
