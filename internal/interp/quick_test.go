package interp

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"prophet/internal/builder"
	"prophet/internal/machine"
	"prophet/internal/testutil"
)

// TestQuickChainMakespan: for an arbitrary chain of constant-cost actions
// on one processor, the predicted makespan equals the sum of the costs —
// simulation conserves modeled work.
func TestQuickChainMakespan(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 24 {
			return true
		}
		b := builder.New("chain")
		d := b.Diagram("main")
		d.Initial()
		prev := "initial"
		var want float64
		for i, c := range raw {
			cost := float64(c%50) / 4
			want += cost
			name := fmt.Sprintf("A%d", i)
			d.Action(name).Cost(fmt.Sprintf("%g", cost))
			d.Flow(prev, name)
			prev = name
		}
		d.Final()
		d.Flow(prev, "final")
		m, err := b.Build()
		if err != nil {
			return false
		}
		pr, err := Compile(m, nil)
		if err != nil {
			return false
		}
		res, err := pr.Run(Config{})
		if err != nil {
			return false
		}
		return math.Abs(res.Makespan-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickLoopMultiplication: for arbitrary loop counts and body costs,
// the makespan equals count * cost.
func TestQuickLoopMultiplication(t *testing.T) {
	f := func(countRaw, costRaw uint8) bool {
		count := int(countRaw % 40)
		cost := float64(costRaw%20) + 1
		b := builder.New("loop")
		d := b.Diagram("main")
		d.Initial()
		d.Loop("L", fmt.Sprintf("%d", count), "body")
		d.Final()
		d.Chain("initial", "L", "final")
		body := b.Diagram("body")
		body.Initial()
		body.Action("W").Cost(fmt.Sprintf("%g", cost))
		body.Final()
		body.Chain("initial", "W", "final")
		m, err := b.Build()
		if err != nil {
			return false
		}
		pr, err := Compile(m, nil)
		if err != nil {
			return false
		}
		res, err := pr.Run(Config{})
		if err != nil {
			return false
		}
		return math.Abs(res.Makespan-float64(count)*cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickWorkConservation: replicating a serial model across P
// processes on a single processor multiplies the makespan by exactly P,
// for arbitrary P and work, under both contention policies.
func TestQuickWorkConservation(t *testing.T) {
	f := func(procsRaw, workRaw uint8) bool {
		procs := 1 + int(procsRaw%6)
		work := float64(workRaw%30) + 1
		b := builder.New("wc")
		d := b.Diagram("main")
		d.Initial()
		d.Action("W").Cost(fmt.Sprintf("%g", work))
		d.Final()
		d.Chain("initial", "W", "final")
		m, err := b.Build()
		if err != nil {
			return false
		}
		pr, err := Compile(m, nil)
		if err != nil {
			return false
		}
		for _, pol := range []machine.Policy{machine.PolicyFCFS, machine.PolicyPS} {
			res, err := pr.Run(Config{
				Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 1, Processes: procs, Threads: 1},
				Policy: pol,
			})
			if err != nil {
				return false
			}
			if math.Abs(res.Makespan-float64(procs)*work) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickBranchExclusivity: exactly one branch of a decision executes,
// whatever the guard outcome.
func TestQuickBranchExclusivity(t *testing.T) {
	f := func(gv int8) bool {
		b := builder.New("br")
		b.Global("GV", "double")
		d := b.Diagram("main")
		d.Initial()
		d.Decision("dec")
		d.Action("Yes").Cost("3")
		d.Action("No").Cost("7")
		d.Merge("mrg")
		d.Final()
		d.Flow("initial", "dec")
		d.FlowIf("dec", "Yes", "GV > 0")
		d.FlowIf("dec", "No", "else")
		d.Chain("Yes", "mrg")
		d.Chain("No", "mrg", "final")
		m, err := b.Build()
		if err != nil {
			return false
		}
		pr, err := Compile(m, nil)
		if err != nil {
			return false
		}
		res, err := pr.Run(Config{Globals: map[string]float64{"GV": float64(gv)}})
		if err != nil {
			return false
		}
		if gv > 0 {
			return testutil.CloseTimes(res.Makespan, 3)
		}
		return testutil.CloseTimes(res.Makespan, 7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
