package interp

import (
	"math"
	"strings"
	"testing"

	"prophet/internal/builder"
	"prophet/internal/machine"
	"prophet/internal/profile"
	"prophet/internal/samples"
	"prophet/internal/testutil"
	"prophet/internal/trace"
	"prophet/internal/uml"
)

func compile(t *testing.T, m *uml.Model) *Program {
	t.Helper()
	pr, err := Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pr
}

func run(t *testing.T, m *uml.Model, cfg Config) *Result {
	t.Helper()
	res, err := compile(t, m).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSampleModelSemantics executes the paper's sample model exactly as the
// generated C++ would: A1's code fragment sets GV=10 and P=4, so the
// branch takes activity SA, and the makespan is
// FA1 + FSA1 + FSA2(0) + FA4 = 8.5 + 5 + 0.1 + 6 ... computed from the
// cost functions with P = 4.
func TestSampleModelSemantics(t *testing.T) {
	res := run(t, samples.Sample(), Config{})
	// FA1 = 0.5 + 2*4 = 8.5; FSA1 = 5; FSA2(0) = 0.1; FA4 = 1 + 4 = 5.
	want := 8.5 + 5 + 0.1 + 5
	if math.Abs(res.Makespan-want) > 1e-12 {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
	if res.Globals["GV"] != 10 || res.Globals["P"] != 4 {
		t.Errorf("globals = %v", res.Globals)
	}
	sum, err := trace.Summarize(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	// A2 must not appear: the branch took SA.
	if _, ok := sum.Elements["A2"]; ok {
		t.Error("A2 executed despite GV > 0")
	}
	for _, name := range []string{"A1", "SA", "SA1", "SA2", "A4"} {
		if _, ok := sum.Elements[name]; !ok {
			t.Errorf("element %s missing from trace", name)
		}
	}
	if sum.Elements["A1"].Total != 8.5 {
		t.Errorf("A1 time = %v, want 8.5", sum.Elements["A1"].Total)
	}
	// SA's inclusive time covers SA1 + SA2.
	if math.Abs(sum.Elements["SA"].Total-5.1) > 1e-12 {
		t.Errorf("SA inclusive = %v, want 5.1", sum.Elements["SA"].Total)
	}
}

func TestSampleElseBranch(t *testing.T) {
	// Force GV <= 0: strip A1's code fragment so the override survives.
	m := samples.Sample()
	a1 := m.Main().NodeByName("A1").(*uml.ActionNode)
	a1.Code = "P = 4;" // keep P but do not touch GV
	res := run(t, m, Config{Globals: map[string]float64{"GV": -1}})
	sum, err := trace.Summarize(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sum.Elements["SA1"]; ok {
		t.Error("SA executed despite GV <= 0")
	}
	if _, ok := sum.Elements["A2"]; !ok {
		t.Error("A2 missing: else branch not taken")
	}
	// FA1 + FA2 + FA4 = 8.5 + 12 + 5
	want := 8.5 + 12 + 5.0
	if math.Abs(res.Makespan-want) > 1e-12 {
		t.Errorf("makespan = %v, want %v", res.Makespan, want)
	}
}

// TestKernel6Equivalence verifies the paper's Figure 3 claim: the
// collapsed single-action model (Figure 3c) and the detailed loop-nest
// model (Figure 3b) predict the same execution time.
func TestKernel6Equivalence(t *testing.T) {
	globals := map[string]float64{"N": 10, "M": 3, "c": 0.5}
	collapsed := run(t, samples.Kernel6(), Config{Globals: globals})
	detailed := run(t, samples.Kernel6Detailed(), Config{Globals: globals})
	want := 3 * (10 - 1) * 10 / 2 * 0.5 // M * (N-1)*N/2 * c = 67.5
	if math.Abs(collapsed.Makespan-want) > 1e-9 {
		t.Errorf("collapsed = %v, want %v", collapsed.Makespan, want)
	}
	if math.Abs(detailed.Makespan-collapsed.Makespan) > 1e-9 {
		t.Errorf("detailed (%v) != collapsed (%v)", detailed.Makespan, collapsed.Makespan)
	}
	// The detailed model executed the W statement M * (N-1)*N/2 times.
	sum, err := trace.Summarize(detailed.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Elements["W"].Count; got != 135 {
		t.Errorf("W executions = %d, want 135", got)
	}
}

// TestTimeTagFallback reproduces Figure 1(b)'s usage: an <<action+>> with
// `time = 10` and no cost function charges 10 time units.
func TestTimeTagFallback(t *testing.T) {
	b := builder.New("m")
	b.Function("F", nil, "3")
	d := b.Diagram("main")
	d.Initial()
	d.Action("SampleAction").Tag("id", "1").Tag("type", "SAMPLE").Tag("time", "10")
	// An explicit cost function still wins over the time tag.
	d.Action("Both").Cost("F()").Tag("time", "99")
	d.Final()
	d.Chain("initial", "SampleAction", "Both", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, Config{})
	if math.Abs(res.Makespan-13) > 1e-12 {
		t.Errorf("makespan = %v, want 13 (time tag 10 + cost function 3)", res.Makespan)
	}
	sum, _ := trace.Summarize(res.Trace)
	if sum.Elements["SampleAction"].Total != 10 {
		t.Errorf("time tag not charged: %v", sum.Elements["SampleAction"].Total)
	}
	if sum.Elements["Both"].Total != 3 {
		t.Errorf("cost function should win over time tag: %v", sum.Elements["Both"].Total)
	}
}

func TestLoopVariableScoping(t *testing.T) {
	// The loop variable is visible in the body and restored afterwards.
	b := builder.New("m")
	b.Global("acc", "double")
	b.Function("F", nil, "i + 1")
	d := b.Diagram("main")
	d.Initial()
	d.Loop("L", "4", "body").Var("i")
	d.Final()
	d.Chain("initial", "L", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("W").Cost("F()").Code("acc = acc + i;")
	body.Final()
	body.Chain("initial", "W", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, m, Config{})
	// cost sum: (0+1)+(1+1)+(2+1)+(3+1) = 10; acc = 0+1+2+3 = 6.
	testutil.AssertTime(t, "makespan", res.Makespan, 10)
	if res.Globals["acc"] != 6 {
		t.Errorf("acc = %v, want 6", res.Globals["acc"])
	}
}

func TestProcessesContendForProcessors(t *testing.T) {
	// kernel6 with 4 processes on 1 node / 1 processor: 4x serial time.
	globals := map[string]float64{"N": 10, "M": 2, "c": 0.1}
	serial := 2 * (10 - 1) * 10 / 2 * 0.1 // 9
	cfg := Config{
		Params:  machine.SystemParams{Nodes: 1, ProcessorsPerNode: 1, Processes: 4, Threads: 1},
		Globals: globals,
	}
	res := run(t, samples.Kernel6(), cfg)
	if math.Abs(res.Makespan-4*serial) > 1e-9 {
		t.Errorf("makespan = %v, want %v (serialized)", res.Makespan, 4*serial)
	}
	if len(res.CPUUtilization) != 1 || math.Abs(res.CPUUtilization[0]-1) > 1e-9 {
		t.Errorf("cpu utilization = %v, want [1]", res.CPUUtilization)
	}

	// Same load on 4 processors: no stretch.
	cfg.Params.ProcessorsPerNode = 4
	res = run(t, samples.Kernel6(), cfg)
	if math.Abs(res.Makespan-serial) > 1e-9 {
		t.Errorf("makespan = %v, want %v (parallel)", res.Makespan, serial)
	}
}

func TestContentionPolicyChoice(t *testing.T) {
	// Under both policies total throughput is conserved; the makespan of
	// identical jobs is the same, but PS makes partial progress visible.
	globals := map[string]float64{"N": 10, "M": 2, "c": 0.1}
	cfg := Config{
		Params:  machine.SystemParams{Nodes: 1, ProcessorsPerNode: 1, Processes: 4, Threads: 1},
		Globals: globals,
	}
	fcfs := run(t, samples.Kernel6(), cfg)
	cfg.Policy = machine.PolicyPS
	ps := run(t, samples.Kernel6(), cfg)
	if math.Abs(fcfs.Makespan-ps.Makespan) > 1e-9 {
		t.Errorf("same-size jobs: makespans should agree: fcfs %v, ps %v", fcfs.Makespan, ps.Makespan)
	}
	// With heterogeneous jobs the two policies differ: give each process
	// work proportional to pid+1.
	b := builder.New("hetero")
	b.Function("F", nil, "(pid + 1) * 10")
	d := b.Diagram("main")
	d.Initial()
	d.Action("Work").Cost("F()")
	d.Final()
	d.Chain("initial", "Work", "final")
	m, _ := b.Build()
	cfg2 := Config{Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 1, Processes: 2, Threads: 1}}
	fc := run(t, m, cfg2)
	cfg2.Policy = machine.PolicyPS
	pss := run(t, m, cfg2)
	// Total work 10+20=30 on one processor: both end at 30.
	if math.Abs(fc.Makespan-30) > 1e-9 || math.Abs(pss.Makespan-30) > 1e-9 {
		t.Fatalf("makespans = %v / %v, want 30", fc.Makespan, pss.Makespan)
	}
	// But the short job's completion differs: FCFS at 10, PS at 20
	// (shares until the short job's 10 units are done at rate 1/2).
	sumF, _ := trace.Summarize(fc.Trace)
	sumP, _ := trace.Summarize(pss.Trace)
	if sumF.Elements["Work"].Min != 10 {
		t.Errorf("FCFS short job time = %v, want 10", sumF.Elements["Work"].Min)
	}
	if math.Abs(sumP.Elements["Work"].Min-20) > 1e-9 {
		t.Errorf("PS short job time = %v, want 20", sumP.Elements["Work"].Min)
	}
}

func TestMessagePassingRing(t *testing.T) {
	// Rank 0 sends to rank 1; every other rank receives from its left
	// neighbor and forwards, closing back to 0. Models a token ring.
	b := builder.New("ring")
	b.Global("sz", "double")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("who")
	d.MPI("Send0", profile.MPISend).Tag("dest", "1").Tag("size", "sz")
	d.MPI("RecvBack", profile.MPIRecv).Tag("src", "processes - 1")
	d.MPI("RecvLeft", profile.MPIRecv).Tag("src", "pid - 1")
	d.MPI("Forward", profile.MPISend).Tag("dest", "(pid + 1) % processes").Tag("size", "sz")
	d.Merge("done")
	d.Final()
	d.Flow("initial", "who")
	d.FlowIf("who", "Send0", "pid == 0")
	d.FlowIf("who", "RecvLeft", "else")
	d.Flow("Send0", "RecvBack")
	d.Flow("RecvBack", "done")
	d.Flow("RecvLeft", "Forward")
	d.Flow("Forward", "done")
	d.Flow("done", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net := machine.NetParams{LatencyIntra: 1, BandwidthIntra: 0, LatencyInter: 1, BandwidthInter: 0}
	cfg := Config{
		Params:  machine.SystemParams{Nodes: 1, ProcessorsPerNode: 8, Processes: 4, Threads: 1},
		Net:     &net,
		Globals: map[string]float64{"sz": 8},
	}
	res := run(t, m, cfg)
	// 4 hops of latency 1.
	if math.Abs(res.Makespan-4) > 1e-9 {
		t.Errorf("ring makespan = %v, want 4", res.Makespan)
	}
}

func TestSendrecvRingShift(t *testing.T) {
	// Every rank simultaneously sends right and receives from the left —
	// the classic ring shift that deadlocks with naive blocking sends but
	// is safe with MPI_Sendrecv semantics.
	b := builder.New("shift")
	d := b.Diagram("main")
	d.Initial()
	d.MPI("Shift", profile.MPISendrecv).
		Tag("dest", "(pid + 1) % processes").
		Tag("src", "(pid + processes - 1) % processes").
		Tag("size", "1024")
	d.Final()
	d.Chain("initial", "Shift", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	net := machine.NetParams{LatencyIntra: 1, LatencyInter: 1}
	cfg := Config{
		Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 8, Processes: 8, Threads: 1},
		Net:    &net,
	}
	res := run(t, m, cfg)
	// One hop of latency 1 for everyone, all overlapped.
	if math.Abs(res.Makespan-1) > 1e-9 {
		t.Errorf("ring shift makespan = %v, want 1", res.Makespan)
	}
	sum, _ := trace.Summarize(res.Trace)
	if sum.Elements["Shift"].Count != 8 {
		t.Errorf("Shift count = %d, want 8", sum.Elements["Shift"].Count)
	}
}

func TestBarrierElement(t *testing.T) {
	b := builder.New("m")
	b.Function("F", nil, "pid * 10")
	d := b.Diagram("main")
	d.Initial()
	d.Action("Work").Cost("F()")
	d.MPI("Bar", profile.MPIBarrier)
	d.Action("After").Cost("1")
	d.Final()
	d.Chain("initial", "Work", "Bar", "After", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 8, Processes: 3, Threads: 1}}
	res := run(t, m, cfg)
	// Slowest rank works 20; everyone leaves the barrier at 20, then +1.
	if math.Abs(res.Makespan-21) > 1e-9 {
		t.Errorf("makespan = %v, want 21", res.Makespan)
	}
}

func TestBroadcastAndReduceElements(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	d.MPI("Bc", profile.MPIBroadcast).Tag("size", "1e6")
	d.MPI("Rd", profile.MPIReduce).Tag("size", "8")
	d.Final()
	d.Chain("initial", "Bc", "Rd", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Params: machine.SystemParams{Nodes: 2, ProcessorsPerNode: 4, Processes: 8, Threads: 1}}
	res := run(t, m, cfg)
	if res.Makespan <= 0 {
		t.Errorf("collectives should cost time, makespan = %v", res.Makespan)
	}
	sum, _ := trace.Summarize(res.Trace)
	if sum.Elements["Bc"].Count != 8 || sum.Elements["Rd"].Count != 8 {
		t.Errorf("collective participation wrong: %+v", sum.Elements)
	}
}

func TestForkJoinParallelBranches(t *testing.T) {
	b := builder.New("m")
	b.Function("F", nil, "10")
	b.Function("G", nil, "4")
	d := b.Diagram("main")
	d.Initial()
	d.Fork("fork")
	d.Action("Slow").Cost("F()")
	d.Action("Fast").Cost("G()")
	d.Join("join")
	d.Action("After").Cost("1")
	d.Final()
	d.Flow("initial", "fork")
	d.Flow("fork", "Slow")
	d.Flow("fork", "Fast")
	d.Flow("Slow", "join")
	d.Flow("Fast", "join")
	d.Chain("join", "After", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 4, Processes: 1, Threads: 1}}
	res := run(t, m, cfg)
	// Parallel branches: max(10, 4) + 1.
	if math.Abs(res.Makespan-11) > 1e-9 {
		t.Errorf("makespan = %v, want 11", res.Makespan)
	}
}

func TestOmpParallelRegion(t *testing.T) {
	b := builder.New("m")
	b.Function("F", nil, "10")
	d := b.Diagram("main")
	d.Initial()
	par := d.Activity("Par", "body")
	par.Node().SetStereotype(profile.OMPParallel)
	d.Final()
	d.Chain("initial", "Par", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("Work").Cost("F()")
	body.Final()
	body.Chain("initial", "Work", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// 4 threads of 10s work on 2 processors: 20s.
	cfg := Config{Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 2, Processes: 1, Threads: 4}}
	res := run(t, m, cfg)
	if math.Abs(res.Makespan-20) > 1e-9 {
		t.Errorf("parallel region makespan = %v, want 20", res.Makespan)
	}
	// With 4 processors it collapses to 10s.
	cfg.Params.ProcessorsPerNode = 4
	res = run(t, m, cfg)
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Errorf("parallel region makespan = %v, want 10", res.Makespan)
	}
	sum, _ := trace.Summarize(res.Trace)
	if sum.Elements["Work"].Count != 4 {
		t.Errorf("team executed Work %d times, want 4", sum.Elements["Work"].Count)
	}
}

func TestOmpCriticalSerializes(t *testing.T) {
	// 4 threads each needing a 10-unit critical section with ample
	// processors: the sections serialize, makespan = 40.
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	par := d.Activity("Par", "body")
	par.Node().SetStereotype(profile.OMPParallel)
	d.Final()
	d.Chain("initial", "Par", "final")
	body := b.Diagram("body")
	body.Initial()
	crit := body.MPI("Crit", profile.OMPCritical)
	crit.Cost("10")
	body.Final()
	body.Chain("initial", "Crit", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 16, Processes: 1, Threads: 4}}
	res := run(t, m, cfg)
	if math.Abs(res.Makespan-40) > 1e-9 {
		t.Errorf("critical sections should serialize: makespan = %v, want 40", res.Makespan)
	}
	// Critical sections in different processes are independent: with 2
	// processes the makespan stays 40, not 80.
	cfg.Params.Processes = 2
	res = run(t, m, cfg)
	if math.Abs(res.Makespan-40) > 1e-9 {
		t.Errorf("per-process critical independence broken: makespan = %v, want 40", res.Makespan)
	}
}

func TestOmpParallelExplicitCount(t *testing.T) {
	b := builder.New("m")
	b.Function("F", nil, "10")
	d := b.Diagram("main")
	d.Initial()
	par := d.Activity("Par", "body")
	par.Node().SetStereotype(profile.OMPParallel)
	par.Tag("count", "3")
	d.Final()
	d.Chain("initial", "Par", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("Work").Cost("F()")
	body.Final()
	body.Chain("initial", "Work", "final")
	m, _ := b.Build()
	cfg := Config{Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 8, Processes: 1, Threads: 1}}
	res := run(t, m, cfg)
	sum, _ := trace.Summarize(res.Trace)
	if sum.Elements["Work"].Count != 3 {
		t.Errorf("explicit count ignored: %d executions", sum.Elements["Work"].Count)
	}
}

func TestGlobalInitializers(t *testing.T) {
	b := builder.New("m")
	b.GlobalInit("base", "double", "2")
	b.GlobalInit("derived", "double", "base * processes")
	b.Function("F", nil, "derived")
	d := b.Diagram("main")
	d.Initial()
	d.Action("A").Cost("F()")
	d.Final()
	d.Chain("initial", "A", "final")
	m, _ := b.Build()
	cfg := Config{Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 8, Processes: 3, Threads: 1}}
	res := run(t, m, cfg)
	if res.Globals["derived"] != 6 {
		t.Errorf("derived = %v, want 6", res.Globals["derived"])
	}
	// 3 parallel processes at cost 6 on 8 cpus.
	testutil.AssertTime(t, "makespan", res.Makespan, 6)
	// Config overrides win over initializers.
	cfg.Globals = map[string]float64{"derived": 1}
	res = run(t, m, cfg)
	// 3 parallel processes at cost 1 on 8 cpus.
	if !testutil.CloseTimes(res.Makespan, 1) {
		t.Errorf("override not applied: makespan %v", res.Makespan)
	}
}

func TestNoTraceMode(t *testing.T) {
	globals := map[string]float64{"N": 10, "M": 3, "c": 0.5}
	full := run(t, samples.Kernel6Detailed(), Config{Globals: globals})
	fast := run(t, samples.Kernel6Detailed(), Config{Globals: globals, NoTrace: true})
	if fast.Makespan != full.Makespan {
		t.Errorf("NoTrace changed the prediction: %v vs %v", fast.Makespan, full.Makespan)
	}
	if len(fast.Trace.Events) != 0 {
		t.Errorf("NoTrace should collect no events, got %d", len(fast.Trace.Events))
	}
	if len(full.Trace.Events) == 0 {
		t.Errorf("traced run should collect events")
	}
}

func TestTraceMetadata(t *testing.T) {
	cfg := Config{Params: machine.SystemParams{Nodes: 2, ProcessorsPerNode: 3, Processes: 4, Threads: 5}}
	res := run(t, samples.Kernel6(), Config{Params: cfg.Params, Globals: map[string]float64{"N": 2, "M": 1, "c": 1}})
	for k, want := range map[string]string{"nodes": "2", "processors": "3", "processes": "4", "threads": "5"} {
		if v, ok := res.Trace.GetMeta(k); !ok || v != want {
			t.Errorf("meta %s = %q, want %q", k, v, want)
		}
	}
	if res.Trace.Model != "kernel6" {
		t.Errorf("trace model = %q", res.Trace.Model)
	}
}

func TestRuntimeErrors(t *testing.T) {
	t.Run("no guard true", func(t *testing.T) {
		b := builder.New("m")
		b.Global("GV", "double")
		d := b.Diagram("main")
		d.Initial()
		d.Decision("dec")
		d.Action("A")
		d.Action("B")
		d.Final()
		d.Flow("initial", "dec")
		d.FlowIf("dec", "A", "GV > 0")
		d.FlowIf("dec", "B", "GV > 100")
		d.Chain("A", "final")
		d.Chain("B", "final")
		m, _ := b.Build()
		if _, err := compile(t, m).Run(Config{}); err == nil ||
			!strings.Contains(err.Error(), "no guard") {
			t.Errorf("expected no-guard error, got %v", err)
		}
	})
	t.Run("undefined variable in cost", func(t *testing.T) {
		b := builder.New("m")
		d := b.Diagram("main")
		d.Initial()
		d.Action("A").Cost("mystery * 2")
		d.Final()
		d.Chain("initial", "A", "final")
		m, _ := b.Build()
		if _, err := compile(t, m).Run(Config{}); err == nil {
			t.Error("undefined variable should fail at run time")
		}
	})
	t.Run("runaway loop guard", func(t *testing.T) {
		b := builder.New("m")
		d := b.Diagram("main")
		d.Initial()
		d.Loop("L", "1e18", "body")
		d.Final()
		d.Chain("initial", "L", "final")
		body := b.Diagram("body")
		body.Initial()
		body.Action("W").Cost("1")
		body.Final()
		body.Chain("initial", "W", "final")
		m, _ := b.Build()
		pr := compile(t, m)
		if _, err := pr.Run(Config{MaxSteps: 1000}); err == nil ||
			!strings.Contains(err.Error(), "exceeded") {
			t.Errorf("runaway loop should trip MaxSteps: %v", err)
		}
	})
	t.Run("recv deadlock", func(t *testing.T) {
		b := builder.New("m")
		d := b.Diagram("main")
		d.Initial()
		d.MPI("R", profile.MPIRecv).Tag("src", "0")
		d.Final()
		d.Chain("initial", "R", "final")
		m, _ := b.Build()
		pr := compile(t, m)
		_, err := pr.Run(Config{Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 1, Processes: 2, Threads: 1}})
		if err == nil || !strings.Contains(err.Error(), "deadlock") {
			t.Errorf("recv without send should deadlock: %v", err)
		}
	})
}

func TestCompileErrors(t *testing.T) {
	t.Run("bad guard", func(t *testing.T) {
		m := uml.NewModel("m")
		d, _ := m.AddDiagram("main")
		a, _ := m.AddAction(d, "", "A")
		bn, _ := m.AddAction(d, "", "B")
		d.Connect(a.ID(), bn.ID(), "GV >")
		if _, err := Compile(m, nil); err == nil {
			t.Error("malformed guard should fail")
		}
	})
	t.Run("missing mpi tag", func(t *testing.T) {
		b := builder.New("m")
		d := b.Diagram("main")
		d.Initial()
		d.MPI("S", profile.MPISend).Tag("size", "8") // dest missing
		d.Final()
		d.Chain("initial", "S", "final")
		m, _ := b.Build()
		if _, err := Compile(m, nil); err == nil {
			t.Error("mpi_send without dest should fail to compile")
		}
	})
	t.Run("bad function body", func(t *testing.T) {
		m := uml.NewModel("m")
		m.AddFunction(uml.Function{Name: "F", Body: "("})
		if _, err := Compile(m, nil); err == nil {
			t.Error("malformed function should fail")
		}
	})
	t.Run("unknown loop body", func(t *testing.T) {
		m := uml.NewModel("m")
		d, _ := m.AddDiagram("main")
		m.AddLoop(d, "", "L", "3", "ghost")
		if _, err := Compile(m, nil); err == nil {
			t.Error("unknown loop body should fail")
		}
	})
	t.Run("unknown activity body", func(t *testing.T) {
		m := uml.NewModel("m")
		d, _ := m.AddDiagram("main")
		m.AddActivity(d, "", "SA", "ghost")
		if _, err := Compile(m, nil); err == nil {
			t.Error("unknown activity body should fail")
		}
	})
}

func TestParseAssignments(t *testing.T) {
	as := parseAssignments("GV = 10;\nP = 4;")
	if len(as) != 2 || as[0].name != "GV" || as[1].name != "P" {
		t.Errorf("assignments = %+v", as)
	}
	// Opaque statements are skipped, not errors.
	as = parseAssignments("W(i) = W(i) + B(i,k) * W(i-k)")
	if len(as) != 0 {
		t.Errorf("Fortran statement should be opaque: %+v", as)
	}
	as = parseAssignments("// comment\nx = 1; junk !!; y = x + 1")
	if len(as) != 2 {
		t.Errorf("mixed fragment: %+v", as)
	}
	if parseAssignments("") != nil {
		t.Error("empty fragment should yield nil")
	}
	// Comparisons are not assignments.
	if as := parseAssignments("x == 1"); len(as) != 0 {
		t.Errorf("equality treated as assignment: %+v", as)
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := Config{
		Params:  machine.SystemParams{Nodes: 2, ProcessorsPerNode: 2, Processes: 6, Threads: 2},
		Globals: map[string]float64{"N": 50, "M": 3, "c": 1e-3},
	}
	pr := compile(t, samples.Kernel6Detailed())
	a, err := pr.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pr.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || len(a.Trace.Events) != len(b.Trace.Events) {
		t.Error("repeated runs diverged")
	}
	for i := range a.Trace.Events {
		if a.Trace.Events[i] != b.Trace.Events[i] {
			t.Fatalf("trace event %d differs", i)
		}
	}
}

func TestPipelineModelRuns(t *testing.T) {
	cfg := Config{
		Params:  machine.SystemParams{Nodes: 2, ProcessorsPerNode: 2, Processes: 4, Threads: 1},
		Globals: map[string]float64{"work": 2},
	}
	res := run(t, samples.Pipeline(3), cfg)
	if res.Makespan < 6 {
		t.Errorf("pipeline makespan = %v, want >= 6 (3 stages of 2)", res.Makespan)
	}
	sum, err := trace.Summarize(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Elements["Compute0"].Count != 4 {
		t.Errorf("Compute0 count = %d, want 4", sum.Elements["Compute0"].Count)
	}
}
