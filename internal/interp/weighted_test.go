package interp

import (
	"fmt"
	"math"
	"testing"

	"prophet/internal/builder"
	"prophet/internal/trace"
	"prophet/internal/uml"
)

// weightedModel: a loop over a probabilistic branch — 70% fast path,
// 30% slow path.
func weightedModel(t *testing.T, iters int) *uml.Model {
	t.Helper()
	b := builder.New("weighted")
	d := b.Diagram("main")
	d.Initial()
	d.Loop("L", fmt.Sprint(iters), "body")
	d.Final()
	d.Chain("initial", "L", "final")

	body := b.Diagram("body")
	body.Initial()
	body.Decision("dec")
	body.Action("Fast").Cost("1")
	body.Action("Slow").Cost("10")
	body.Merge("mrg")
	body.Final()
	body.Flow("initial", "dec")
	body.FlowWeighted("dec", "Fast", 0.7)
	body.FlowWeighted("dec", "Slow", 0.3)
	body.Flow("Fast", "mrg")
	body.Flow("Slow", "mrg")
	body.Flow("mrg", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestWeightedBranchDistribution(t *testing.T) {
	m := weightedModel(t, 2000)
	res := run(t, m, Config{Seed: 42})
	sum, err := trace.Summarize(res.Trace)
	if err != nil {
		t.Fatal(err)
	}
	fast := sum.Elements["Fast"].Count
	slow := sum.Elements["Slow"].Count
	if fast+slow != 2000 {
		t.Fatalf("executions = %d, want 2000", fast+slow)
	}
	ratio := float64(fast) / 2000
	if math.Abs(ratio-0.7) > 0.05 {
		t.Errorf("fast fraction = %v, want ~0.7", ratio)
	}
	// Expected makespan ~ 2000 * (0.7*1 + 0.3*10) = 7400.
	if res.Makespan < 6500 || res.Makespan > 8500 {
		t.Errorf("makespan = %v, want ~7400", res.Makespan)
	}
}

func TestWeightedBranchSeedDeterminism(t *testing.T) {
	m := weightedModel(t, 100)
	a := run(t, m, Config{Seed: 7})
	b := run(t, m, Config{Seed: 7})
	if a.Makespan != b.Makespan {
		t.Errorf("same seed should reproduce: %v vs %v", a.Makespan, b.Makespan)
	}
	c := run(t, m, Config{Seed: 8})
	if a.Makespan == c.Makespan {
		t.Logf("different seeds produced equal makespans (possible but unlikely)")
	}
	// Default seed (0) also deterministic.
	d1 := run(t, m, Config{})
	d2 := run(t, m, Config{})
	if d1.Makespan != d2.Makespan {
		t.Errorf("default seed should reproduce")
	}
}

func TestWeightedBranchThreeWay(t *testing.T) {
	b := builder.New("w3")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("dec")
	d.Action("A").Cost("1")
	d.Action("B").Cost("2")
	d.Action("C").Cost("3")
	d.Merge("mrg")
	d.Final()
	d.Flow("initial", "dec")
	d.FlowWeighted("dec", "A", 1)
	d.FlowWeighted("dec", "B", 1)
	d.FlowWeighted("dec", "C", 2)
	d.Chain("A", "mrg")
	d.Chain("B", "mrg")
	d.Chain("C", "mrg", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Any single run takes exactly one branch.
	res := run(t, m, Config{Seed: 3})
	if res.Makespan != 1 && res.Makespan != 2 && res.Makespan != 3 {
		t.Errorf("makespan = %v, want one of {1,2,3}", res.Makespan)
	}
}

func TestMixedWeightedGuardedRejected(t *testing.T) {
	m := uml.NewModel("bad")
	d, _ := m.AddDiagram("main")
	ini, _ := m.AddControl(d, "", uml.KindInitial)
	dec, _ := m.AddControl(d, "", uml.KindDecision)
	a, _ := m.AddAction(d, "", "A")
	a.SetStereotype("action+")
	bn, _ := m.AddAction(d, "", "B")
	bn.SetStereotype("action+")
	fin, _ := m.AddControl(d, "", uml.KindFinal)
	d.Connect(ini.ID(), dec.ID(), "")
	e1, _ := d.Connect(dec.ID(), a.ID(), "")
	e1.Weight = 0.5
	d.Connect(dec.ID(), bn.ID(), "GV > 0") // guarded: mixed!
	d.Connect(a.ID(), fin.ID(), "")
	d.Connect(bn.ID(), fin.ID(), "")
	m.AddVariable(uml.Variable{Name: "GV", Type: "double", Scope: uml.ScopeGlobal})
	pr, err := Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.Run(Config{}); err == nil {
		t.Error("mixed weighted/guarded decision should fail at run time")
	}
}

func TestBuilderFlowWeightedValidation(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Action("A")
	d.Action("B")
	d.FlowWeighted("A", "B", 0)
	if _, err := b.Build(); err == nil {
		t.Error("zero weight should be rejected")
	}
	b2 := builder.New("m")
	d2 := b2.Diagram("main")
	d2.Action("A")
	d2.FlowWeighted("A", "ghost", 1)
	if _, err := b2.Build(); err == nil {
		t.Error("unknown target should be rejected")
	}
	b3 := builder.New("m")
	d3 := b3.Diagram("main")
	d3.Action("B")
	d3.FlowWeighted("ghost", "B", 1)
	if _, err := b3.Build(); err == nil {
		t.Error("unknown source should be rejected")
	}
}
