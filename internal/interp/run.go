package interp

import (
	"context"
	"fmt"
	"strconv"

	"prophet/internal/expr"
	"prophet/internal/machine"
	"prophet/internal/obs"
	"prophet/internal/profile"
	"prophet/internal/sim"
	"prophet/internal/trace"
	"prophet/internal/uml"
)

// Run simulates the program under the given configuration and returns the
// trace and summary metrics. It is the "evaluates it by simulation" step
// of the paper's abstract.
func (pr *Program) Run(cfg Config) (*Result, error) {
	sp := cfg.Params
	if sp == (machine.SystemParams{}) {
		sp = machine.DefaultParams()
	}
	net := machine.DefaultNet()
	if cfg.Net != nil {
		net = *cfg.Net
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 50_000_000
	}

	eng := sim.New()
	if cfg.Observer != nil {
		eng.SetObserver(cfg.Observer, cfg.SampleInterval)
	}
	if ctx := cfg.Context; ctx != nil {
		// Cooperative cancellation: refuse to start on an already-done
		// context, then watch it for the duration of the run. The watcher
		// interrupts the engine, which checks between simulation events,
		// so the run unwinds at event granularity. The watcher is always
		// joined before Run returns — no goroutine outlives the call.
		if ctx.Err() != nil {
			return nil, fmt.Errorf("interp: %w", context.Cause(ctx))
		}
		stop := make(chan struct{})
		watched := make(chan struct{})
		go func() {
			defer close(watched)
			select {
			case <-ctx.Done():
				eng.Interrupt(context.Cause(ctx))
			case <-stop:
			}
		}()
		defer func() { close(stop); <-watched }()
	}
	mach, err := machine.NewWithPolicy(eng, sp, net, cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}

	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rs := &runState{
		pr:       pr,
		eng:      eng,
		mach:     mach,
		sp:       sp.Env(),
		globals:  map[string]float64{},
		trace:    &trace.Trace{Model: pr.model.Name()},
		noTrace:  cfg.NoTrace,
		maxSteps: maxSteps,
		crits:    map[string]*sim.Facility{},
		rng:      sim.NewStream(seed),
	}
	rs.trace.SetMeta("nodes", fmt.Sprint(sp.Nodes))
	rs.trace.SetMeta("processors", fmt.Sprint(sp.ProcessorsPerNode))
	rs.trace.SetMeta("processes", fmt.Sprint(sp.Processes))
	rs.trace.SetMeta("threads", fmt.Sprint(sp.Threads))

	// Initialize globals: declared initializers first (in declaration
	// order, able to reference earlier globals and system parameters),
	// then config overrides.
	for _, v := range pr.model.VariablesIn(uml.ScopeGlobal) {
		rs.globals[v.Name] = 0
		if init, ok := pr.inits[v.Name]; ok {
			val, err := init.Eval(rs.envFor(map[string]float64{}))
			if err != nil {
				return nil, fmt.Errorf("interp: initialize %s: %w", v.Name, err)
			}
			rs.globals[v.Name] = val
		}
	}
	for k, v := range cfg.Globals {
		rs.globals[k] = v
	}

	main := pr.model.Main()
	if main == nil {
		return nil, fmt.Errorf("interp: model %q has no main diagram", pr.model.Name())
	}

	for pid := 0; pid < sp.Processes; pid++ {
		pid := pid
		eng.Spawn(fmt.Sprintf("p%d", pid), func(p *sim.Process) {
			fc := rs.newFlowCtx(p, pid, 0)
			if err := fc.runDiagram(main); err != nil {
				// Fail, not panic: the engine wraps this as a typed
				// *sim.ProcessError, keeping the flow error's chain
				// intact for errors.Is/As. True panics still surface as
				// "process panicked".
				p.Fail(err)
			}
			// Program completion = when the last process finishes; late
			// in-flight message deliveries do not extend the makespan.
			if now := eng.Now(); now > rs.finished {
				rs.finished = now
			}
		})
	}

	// When the request carries a trace (obs.StartSpan no-ops otherwise),
	// the engine run gets its own span under the estimator's "simulate"
	// stage, annotated with the work the simulation actually did — the
	// deepest level of the request's span tree.
	_, span := obs.StartSpan(cfg.Context, "sim")
	annotate := func() {
		span.Annotate("events", strconv.FormatInt(eng.EventsExecuted(), 10))
		span.Annotate("sim_time", strconv.FormatFloat(eng.Now(), 'g', -1, 64))
		span.Annotate("processes", strconv.Itoa(sp.Processes))
		span.Annotate("backend", "interp")
		span.End()
	}
	if cfg.RunLimit > 0 {
		if _, err := eng.RunUntil(cfg.RunLimit); err != nil {
			annotate()
			return nil, fmt.Errorf("interp: %w", err)
		}
	} else if _, err := eng.Run(); err != nil {
		annotate()
		return nil, fmt.Errorf("interp: %w", err)
	}
	annotate()

	res := &Result{
		Trace:    rs.trace,
		Makespan: rs.finished,
		Globals:  rs.globals,
	}
	for n := 0; n < sp.Nodes; n++ {
		res.CPUUtilization = append(res.CPUUtilization, mach.CPUUtilization(n))
	}
	return res, nil
}

// runState is the state shared by all processes of one run.
type runState struct {
	pr       *Program
	eng      *sim.Engine
	mach     *machine.Machine
	sp       map[string]float64
	globals  map[string]float64
	trace    *trace.Trace
	uid      int
	maxSteps int
	// crits holds the mutual-exclusion facility of each omp_critical
	// element, one per (process, element): a critical section serializes
	// the threads of its process but is independent across processes.
	crits map[string]*sim.Facility
	// rng drives weighted-branch selection, seeded from Config.Seed.
	rng *sim.Stream
	// noTrace suppresses event collection (makespan-only runs).
	noTrace bool
	// finished records the time the last process completed.
	finished float64
}

// critical returns (creating on first use) the 1-server facility guarding
// an omp_critical element within one process.
func (rs *runState) critical(pid int, elemID string) *sim.Facility {
	key := fmt.Sprintf("%d/%s", pid, elemID)
	if f, ok := rs.crits[key]; ok {
		return f
	}
	f := rs.eng.NewFacility("critical:"+key, 1)
	rs.crits[key] = f
	return f
}

// envFor layers a locals frame over globals, system parameters and the
// model's cost-function library.
func (rs *runState) envFor(locals map[string]float64) expr.Env {
	vars := &varsEnv{locals: locals, globals: rs.globals, sp: rs.sp}
	return rs.pr.lib.Bind(vars)
}

// varsEnv resolves variables: locals (incl. loop vars and pid/tid/uid)
// shadow globals shadow system parameters.
type varsEnv struct {
	locals  map[string]float64
	globals map[string]float64
	sp      map[string]float64
}

func (v *varsEnv) Var(name string) (float64, bool) {
	if val, ok := v.locals[name]; ok {
		return val, true
	}
	if val, ok := v.globals[name]; ok {
		return val, true
	}
	val, ok := v.sp[name]
	return val, ok
}

func (v *varsEnv) Func(string) (expr.Func, bool) { return nil, false }

// flowCtx is the per-(process, thread) execution context.
type flowCtx struct {
	rs     *runState
	p      *sim.Process
	pid    int
	tid    int
	locals map[string]float64
	env    expr.Env
	steps  int
}

func (rs *runState) newFlowCtx(p *sim.Process, pid, tid int) *flowCtx {
	fc := &flowCtx{rs: rs, p: p, pid: pid, tid: tid, locals: map[string]float64{}}
	fc.locals["pid"] = float64(pid)
	fc.locals["tid"] = float64(tid)
	fc.locals["uid"] = 0
	for _, v := range rs.pr.model.VariablesIn(uml.ScopeLocal) {
		fc.locals[v.Name] = 0
		if init, ok := rs.pr.inits[v.Name]; ok {
			val, err := init.Eval(rs.envFor(fc.locals))
			if err == nil {
				fc.locals[v.Name] = val
			}
		}
	}
	fc.env = rs.envFor(fc.locals)
	return fc
}

// child clones the context for a forked branch or parallel-region thread.
func (fc *flowCtx) child(tid int) *flowCtx {
	locals := make(map[string]float64, len(fc.locals))
	for k, v := range fc.locals {
		locals[k] = v
	}
	nc := &flowCtx{rs: fc.rs, pid: fc.pid, tid: tid, locals: locals}
	nc.locals["tid"] = float64(tid)
	nc.env = fc.rs.envFor(locals)
	return nc
}

// assign writes a variable: globals if declared global, else the locals
// frame (mirroring C++ scoping of the generated program).
func (fc *flowCtx) assign(name string, val float64) {
	if _, ok := fc.rs.globals[name]; ok {
		fc.rs.globals[name] = val
		return
	}
	fc.locals[name] = val
}

// eval evaluates a compiled expression in this context.
func (fc *flowCtx) eval(c *expr.Compiled) (float64, error) {
	return c.Eval(fc.env)
}

// costValue resolves an element's cost: a deterministic expression
// evaluation, or — for a distribution-literal cost — one draw from the
// run's seed stream. ok is false when the element carries no cost.
func (fc *flowCtx) costValue(id string) (v float64, ok bool, err error) {
	if d, has := fc.rs.pr.distCosts[id]; has {
		v, err = d.Sample(fc.env, fc.rs.rng)
		return v, true, err
	}
	if c, has := fc.rs.pr.costs[id]; has {
		v, err = fc.eval(c)
		return v, true, err
	}
	return 0, false, nil
}

// nextUID allocates the unique execution id passed as the uid parameter of
// execute().
func (fc *flowCtx) nextUID() int {
	fc.rs.uid++
	fc.locals["uid"] = float64(fc.rs.uid)
	return fc.rs.uid
}

func (fc *flowCtx) emit(kind trace.Kind, n uml.Node) {
	if fc.rs.noTrace {
		return
	}
	fc.rs.trace.Append(trace.Event{
		T: fc.rs.eng.Now(), PID: fc.pid, TID: fc.tid,
		Kind: kind, Elem: n.ID(), Name: n.Name(),
	})
}

// step counts an element execution against the runaway guard.
func (fc *flowCtx) step(n uml.Node) error {
	fc.steps++
	if fc.steps > fc.rs.maxSteps {
		return fmt.Errorf("interp: process %d exceeded %d element executions at %q (unbounded loop?)",
			fc.pid, fc.rs.maxSteps, n.Name())
	}
	return nil
}

// runDiagram executes a diagram from its initial node.
func (fc *flowCtx) runDiagram(d *uml.Diagram) error {
	ini := d.Initial()
	if ini == nil {
		if len(d.Nodes()) == 0 {
			return nil
		}
		return fmt.Errorf("interp: diagram %q has no initial node", d.Name())
	}
	next, err := fc.successor(d, ini)
	if err != nil {
		return err
	}
	return fc.runSeq(d, next, nil)
}

// runSeq executes nodes until reaching stop (exclusive) or a final node.
func (fc *flowCtx) runSeq(d *uml.Diagram, cur uml.Node, stop uml.Node) error {
	for cur != nil {
		if stop != nil && cur.ID() == stop.ID() {
			return nil
		}
		var err error
		switch n := cur.(type) {
		case *uml.ControlNode:
			switch n.Kind() {
			case uml.KindFinal:
				return nil
			case uml.KindMerge, uml.KindJoin:
				cur, err = fc.successor(d, n)
			case uml.KindDecision:
				cur, err = fc.branch(d, n)
			case uml.KindFork:
				cur, err = fc.fork(d, n)
			default:
				return fmt.Errorf("interp: diagram %q: unexpected %v mid-flow", d.Name(), n.Kind())
			}
		case *uml.ActionNode:
			if err := fc.step(n); err != nil {
				return err
			}
			if err := fc.execAction(n); err != nil {
				return err
			}
			cur, err = fc.successor(d, n)
		case *uml.ActivityNode:
			if err := fc.step(n); err != nil {
				return err
			}
			if err := fc.execActivity(n); err != nil {
				return err
			}
			cur, err = fc.successor(d, n)
		case *uml.LoopNode:
			if err := fc.step(n); err != nil {
				return err
			}
			if err := fc.execLoop(n); err != nil {
				return err
			}
			cur, err = fc.successor(d, n)
		default:
			return fmt.Errorf("interp: unknown node type %T", cur)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (fc *flowCtx) successor(d *uml.Diagram, n uml.Node) (uml.Node, error) {
	out := d.Outgoing(n.ID())
	switch len(out) {
	case 0:
		return nil, nil
	case 1:
		next := d.Node(out[0].To())
		if next == nil {
			return nil, fmt.Errorf("interp: diagram %q: dangling edge from %q", d.Name(), n.Name())
		}
		return next, nil
	}
	return nil, fmt.Errorf("interp: diagram %q: %v %q has %d successors",
		d.Name(), n.Kind(), n.Name(), len(out))
}

// branch picks the decision's successor: guard evaluation in model order
// for guarded decisions, or a weighted random draw for probabilistic
// decisions (no guards, positive weights).
func (fc *flowCtx) branch(d *uml.Diagram, n *uml.ControlNode) (uml.Node, error) {
	out := d.Outgoing(n.ID())
	if len(out) > 0 && out[0].Guard == "" && out[0].Weight > 0 {
		return fc.weightedBranch(d, n, out)
	}
	var elseEdge *uml.Edge
	for _, e := range out {
		if e.IsElse() {
			elseEdge = e
			continue
		}
		g, ok := fc.rs.pr.guards[e.ID()]
		if !ok {
			return nil, fmt.Errorf("interp: diagram %q: unguarded branch out of decision", d.Name())
		}
		v, err := fc.eval(g)
		if err != nil {
			return nil, fmt.Errorf("interp: guard %q: %w", e.Guard, err)
		}
		if expr.Truthy(v) {
			return d.Node(e.To()), nil
		}
	}
	if elseEdge != nil {
		return d.Node(elseEdge.To()), nil
	}
	return nil, fmt.Errorf("interp: diagram %q: no guard of decision %q is true and there is no else branch",
		d.Name(), n.Name())
}

// weightedBranch samples a branch with probability weight/sum(weights).
func (fc *flowCtx) weightedBranch(d *uml.Diagram, n *uml.ControlNode, out []*uml.Edge) (uml.Node, error) {
	var total float64
	for _, e := range out {
		if e.Guard != "" || e.Weight <= 0 {
			return nil, fmt.Errorf("interp: diagram %q: decision %q mixes weighted and guarded branches",
				d.Name(), n.Name())
		}
		total += e.Weight
	}
	r := fc.rs.rng.Float64() * total
	var acc float64
	for _, e := range out {
		acc += e.Weight
		if r < acc {
			return d.Node(e.To()), nil
		}
	}
	return d.Node(out[len(out)-1].To()), nil
}

// fork runs every outgoing branch as a parallel simulation process up to
// the common join, then continues after the join.
func (fc *flowCtx) fork(d *uml.Diagram, n *uml.ControlNode) (uml.Node, error) {
	out := d.Outgoing(n.ID())
	if len(out) < 2 {
		return nil, fmt.Errorf("interp: diagram %q: fork %q has %d branch(es)", d.Name(), n.Name(), len(out))
	}
	heads := make([]string, len(out))
	for i, e := range out {
		heads[i] = e.To()
	}
	conv := uml.Convergence(d, heads)
	join := fc.rs.eng.NewCounter("join:"+n.ID(), len(out))
	var firstErr error
	for i, e := range out {
		head := d.Node(e.To())
		if head == nil {
			return nil, fmt.Errorf("interp: diagram %q: dangling fork edge", d.Name())
		}
		branch := fc.child(fc.tid)
		fc.rs.eng.Spawn(fmt.Sprintf("p%d.fork%s.%d", fc.pid, n.ID(), i), func(p *sim.Process) {
			branch.p = p
			defer join.Done()
			if err := branch.runSeq(d, head, conv); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	join.Wait(fc.p)
	if firstErr != nil {
		return nil, firstErr
	}
	if conv != nil && conv.Kind() == uml.KindJoin {
		return fc.successor(d, conv)
	}
	return conv, nil
}

// execAction executes one action-like element.
func (fc *flowCtx) execAction(n *uml.ActionNode) error {
	if n.Stereotype() == "" {
		return nil // not a performance modeling element
	}
	// Associated code fragment runs before execute(), as in the generated
	// C++ (Figure 8b lines 72-76).
	for _, a := range fc.rs.pr.code[n.ID()] {
		v, err := a.value.Eval(fc.env)
		if err != nil {
			return fmt.Errorf("interp: code of %q: %w", n.Name(), err)
		}
		fc.assign(a.name, v)
	}
	fc.nextUID()
	fc.emit(trace.Enter, n)
	defer fc.emit(trace.Leave, n)

	tagVal := func(tag string, dflt float64) (float64, error) {
		c, ok := fc.rs.pr.tags[n.ID()][tag]
		if !ok {
			return dflt, nil
		}
		return fc.eval(c)
	}

	switch n.Stereotype() {
	case profile.ActionPlus:
		cost, _, err := fc.costValue(n.ID())
		if err != nil {
			return fmt.Errorf("interp: cost of %q: %w", n.Name(), err)
		}
		fc.rs.mach.Compute(fc.p, fc.pid, cost)
	case profile.OMPCritical:
		// Mutually exclusive region: the threads of this process
		// serialize on the element's facility (queue time is visible in
		// the trace as part of the element's inclusive time).
		cost, _, err := fc.costValue(n.ID())
		if err != nil {
			return fmt.Errorf("interp: cost of %q: %w", n.Name(), err)
		}
		fc.rs.critical(fc.pid, n.ID()).Use(fc.p, cost)
	case profile.MPISend:
		dest, err := tagVal(profile.TagDest, 0)
		if err != nil {
			return fmt.Errorf("interp: %q dest: %w", n.Name(), err)
		}
		size, err := tagVal(profile.TagSize, 0)
		if err != nil {
			return fmt.Errorf("interp: %q size: %w", n.Name(), err)
		}
		if err := fc.rs.mach.Send(fc.p, fc.pid, int(dest), size); err != nil {
			return fmt.Errorf("interp: %q: %w", n.Name(), err)
		}
		fc.emit(trace.Send, n)
	case profile.MPIRecv:
		src, err := tagVal(profile.TagSrc, -1)
		if err != nil {
			return fmt.Errorf("interp: %q src: %w", n.Name(), err)
		}
		if _, err := fc.rs.mach.Recv(fc.p, fc.pid, int(src)); err != nil {
			return fmt.Errorf("interp: %q: %w", n.Name(), err)
		}
		fc.emit(trace.Recv, n)
	case profile.MPISendrecv:
		dest, err := tagVal(profile.TagDest, 0)
		if err != nil {
			return fmt.Errorf("interp: %q dest: %w", n.Name(), err)
		}
		src, err := tagVal(profile.TagSrc, -1)
		if err != nil {
			return fmt.Errorf("interp: %q src: %w", n.Name(), err)
		}
		size, err := tagVal(profile.TagSize, 0)
		if err != nil {
			return fmt.Errorf("interp: %q size: %w", n.Name(), err)
		}
		// Send first (non-blocking past the NIC), then receive: every
		// rank pushes its outgoing message before waiting, so a ring of
		// sendrecvs cannot deadlock — MPI_Sendrecv semantics.
		if err := fc.rs.mach.Send(fc.p, fc.pid, int(dest), size); err != nil {
			return fmt.Errorf("interp: %q: %w", n.Name(), err)
		}
		if _, err := fc.rs.mach.Recv(fc.p, fc.pid, int(src)); err != nil {
			return fmt.Errorf("interp: %q: %w", n.Name(), err)
		}
	case profile.MPIBarrier:
		fc.rs.mach.Barrier(fc.p)
	case profile.MPIBroadcast:
		size, err := tagVal(profile.TagSize, 0)
		if err != nil {
			return fmt.Errorf("interp: %q size: %w", n.Name(), err)
		}
		fc.rs.mach.Broadcast(fc.p, size)
	case profile.MPIReduce:
		size, err := tagVal(profile.TagSize, 0)
		if err != nil {
			return fmt.Errorf("interp: %q size: %w", n.Name(), err)
		}
		fc.rs.mach.Reduce(fc.p, size)
	default:
		return fmt.Errorf("interp: element %q: unsupported stereotype <<%s>>", n.Name(), n.Stereotype())
	}
	return nil
}

// execActivity nests the activity's content, charging its aggregate cost
// first if one is attached.
func (fc *flowCtx) execActivity(n *uml.ActivityNode) error {
	fc.nextUID()
	fc.emit(trace.Enter, n)
	defer fc.emit(trace.Leave, n)
	for _, a := range fc.rs.pr.code[n.ID()] {
		v, err := a.value.Eval(fc.env)
		if err != nil {
			return fmt.Errorf("interp: code of %q: %w", n.Name(), err)
		}
		fc.assign(a.name, v)
	}
	if v, ok, err := fc.costValue(n.ID()); err != nil {
		return fmt.Errorf("interp: cost of %q: %w", n.Name(), err)
	} else if ok {
		fc.rs.mach.Compute(fc.p, fc.pid, v)
	}
	if n.Stereotype() == profile.OMPParallel {
		return fc.parallelRegion(n)
	}
	body := fc.rs.pr.model.DiagramByName(n.Body)
	if body == nil {
		return fmt.Errorf("interp: activity %q references unknown diagram %q", n.Name(), n.Body)
	}
	return fc.runDiagram(body)
}

// parallelRegion runs the body once per team thread in parallel; the team
// size defaults to the system parameter `threads`.
func (fc *flowCtx) parallelRegion(n *uml.ActivityNode) error {
	team := fc.rs.sp["threads"]
	if c, ok := fc.rs.pr.tags[n.ID()][profile.TagCount]; ok {
		v, err := fc.eval(c)
		if err != nil {
			return fmt.Errorf("interp: parallel region %q count: %w", n.Name(), err)
		}
		team = v
	}
	t := int(team)
	if t < 1 {
		t = 1
	}
	body := fc.rs.pr.model.DiagramByName(n.Body)
	if body == nil {
		return fmt.Errorf("interp: parallel region %q references unknown diagram %q", n.Name(), n.Body)
	}
	join := fc.rs.eng.NewCounter("omp:"+n.ID(), t)
	var firstErr error
	for tid := 0; tid < t; tid++ {
		worker := fc.child(tid)
		fc.rs.eng.Spawn(fmt.Sprintf("p%d.omp%s.t%d", fc.pid, n.ID(), tid), func(p *sim.Process) {
			worker.p = p
			defer join.Done()
			if err := worker.runDiagram(body); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	join.Wait(fc.p)
	return firstErr
}

// execLoop repeats the body diagram count times, exposing the iteration
// index through the loop variable.
func (fc *flowCtx) execLoop(n *uml.LoopNode) error {
	var v float64
	var err error
	if d, ok := fc.rs.pr.distCounts[n.ID()]; ok {
		// Stochastic repetition count: one draw per loop entry, rounded
		// down to an integer.
		v, err = d.Sample(fc.env, fc.rs.rng)
	} else {
		v, err = fc.eval(fc.rs.pr.counts[n.ID()])
	}
	if err != nil {
		return fmt.Errorf("interp: loop %q count: %w", n.Name(), err)
	}
	count := int(v)
	body := fc.rs.pr.model.DiagramByName(n.Body)
	if body == nil {
		return fmt.Errorf("interp: loop %q references unknown diagram %q", n.Name(), n.Body)
	}
	varName := n.Var
	var saved float64
	var hadSaved bool
	if varName != "" {
		saved, hadSaved = fc.locals[varName]
	}
	for i := 0; i < count; i++ {
		if err := fc.step(n); err != nil {
			return err
		}
		if varName != "" {
			fc.locals[varName] = float64(i)
		}
		if err := fc.runDiagram(body); err != nil {
			return err
		}
	}
	if varName != "" {
		if hadSaved {
			fc.locals[varName] = saved
		} else {
			delete(fc.locals, varName)
		}
	}
	return nil
}
