// Package interp executes a performance model by simulation: it implements
// the Workload Elements of the Performance Estimator (paper, Figure 2) and
// plays exactly the role of the generated C++ running on the CSIM engine.
//
// The correspondence to the generated code is one-to-one:
//
//   - each model process is one simulation process that executes the main
//     diagram's flow, like the generated model_program(uid, pid, tid)
//   - an <<action+>> element's execute() charges its cost-function value
//     to the machine model (Compute on the node's processors)
//   - the code fragment associated with an element runs before its
//     execute() call; assignment statements (`GV = 10;`) take effect on
//     the model variables, so branch guards see them, exactly as the
//     inlined fragment of the generated C++ would behave
//   - decision nodes evaluate their guards in order and follow the first
//     true branch (the generated if/else-if chain)
//   - <<loop+>> elements repeat their body diagram, <<activity+>> elements
//     nest theirs, fork/join and <<omp_parallel>> regions spawn parallel
//     simulation processes, and the MPI stereotypes map onto the machine
//     model's messaging primitives
//
// Compile validates and pre-compiles every expression once; Run is then
// cheap to invoke for parameter sweeps.
package interp

import (
	"context"
	"fmt"
	"strings"

	"prophet/internal/expr"
	"prophet/internal/machine"
	"prophet/internal/profile"
	"prophet/internal/sim"
	"prophet/internal/trace"
	"prophet/internal/uml"
)

// assignment is one parsed statement of an element's code fragment.
type assignment struct {
	name  string
	value *expr.Compiled
}

// Program is a compiled, executable performance model.
type Program struct {
	model      *uml.Model
	registry   *profile.Registry
	lib        *expr.Library
	guards     map[string]*expr.Compiled            // edge ID -> guard
	costs      map[string]*expr.Compiled            // node ID -> cost expression
	counts     map[string]*expr.Compiled            // loop node ID -> count
	distCosts  map[string]*expr.Dist                // node ID -> stochastic cost
	distCounts map[string]*expr.Dist                // loop node ID -> stochastic count
	tags       map[string]map[string]*expr.Compiled // node ID -> tag -> expr
	code       map[string][]assignment              // node ID -> effective statements
	inits      map[string]*expr.Compiled            // variable name -> initializer
}

// Compile prepares a model for simulation. The model should already have
// passed the checker; Compile reports expression-level problems it finds
// while lowering.
func Compile(m *uml.Model, reg *profile.Registry) (*Program, error) {
	if reg == nil {
		reg = profile.NewRegistry()
	}
	pr := &Program{
		model:      m,
		registry:   reg,
		guards:     map[string]*expr.Compiled{},
		costs:      map[string]*expr.Compiled{},
		counts:     map[string]*expr.Compiled{},
		distCosts:  map[string]*expr.Dist{},
		distCounts: map[string]*expr.Dist{},
		tags:       map[string]map[string]*expr.Compiled{},
		code:       map[string][]assignment{},
		inits:      map[string]*expr.Compiled{},
	}

	defs := make([]expr.Def, 0, len(m.Functions()))
	for _, f := range m.Functions() {
		d := expr.Def{Name: f.Name, Body: f.Body}
		for _, p := range f.Params {
			d.Params = append(d.Params, p.Name)
		}
		defs = append(defs, d)
	}
	lib, err := expr.NewLibrary(defs)
	if err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	pr.lib = lib

	// Models repeat the same handful of guard/cost/count strings across
	// thousands of elements; compile each distinct source once. Compiled
	// expressions are immutable, so sharing one instance is safe.
	cache := map[string]*expr.Compiled{}
	compileSrc := func(src string) (*expr.Compiled, error) {
		if c, ok := cache[src]; ok {
			return c, nil
		}
		c, err := expr.CompileStringFolded(src)
		if err != nil {
			return nil, err
		}
		cache[src] = c
		return c, nil
	}

	// parseDist recognizes a cost/count source as a distribution literal
	// (whole-source exp/normal/uniform/empirical call). A model-defined
	// function of the same name shadows the distribution reading, so
	// existing models keep their deterministic semantics (NewLibrary above
	// already rejected any model function named after a builtin like exp).
	distCache := map[string]*expr.Dist{}
	parseDist := func(src string) (*expr.Dist, bool) {
		if d, ok := distCache[src]; ok {
			return d, d != nil
		}
		d, ok := expr.ParseDist(src)
		if ok {
			if _, defined := m.Function(d.Kind.String()); defined {
				d, ok = nil, false
			}
		}
		distCache[src] = d
		return d, ok
	}

	for _, v := range m.Variables() {
		if v.Init == "" {
			continue
		}
		c, err := compileSrc(v.Init)
		if err != nil {
			return nil, fmt.Errorf("interp: variable %s initializer: %w", v.Name, err)
		}
		pr.inits[v.Name] = c
	}

	compileTag := func(n uml.Node, tag string, required bool) error {
		raw, ok := n.Tag(tag)
		if !ok {
			if required {
				return fmt.Errorf("interp: element %q: required tag %q unset", n.Name(), tag)
			}
			return nil
		}
		c, err := compileSrc(raw)
		if err != nil {
			return fmt.Errorf("interp: element %q tag %q: %w", n.Name(), tag, err)
		}
		if pr.tags[n.ID()] == nil {
			pr.tags[n.ID()] = map[string]*expr.Compiled{}
		}
		pr.tags[n.ID()][tag] = c
		return nil
	}

	for _, d := range m.Diagrams() {
		for _, e := range d.Edges() {
			if e.Guard == "" || e.IsElse() {
				continue
			}
			c, err := compileSrc(e.Guard)
			if err != nil {
				return nil, fmt.Errorf("interp: guard %q: %w", e.Guard, err)
			}
			pr.guards[e.ID()] = c
		}
		for _, n := range d.Nodes() {
			switch x := n.(type) {
			case *uml.ActionNode:
				if src := costSource(x.CostFunc, x); src != "" {
					if d, ok := parseDist(src); ok {
						pr.distCosts[x.ID()] = d
					} else {
						c, err := compileSrc(src)
						if err != nil {
							return nil, fmt.Errorf("interp: element %q cost: %w", x.Name(), err)
						}
						pr.costs[x.ID()] = c
					}
				}
				pr.code[x.ID()] = parseAssignments(x.Code)
				switch x.Stereotype() {
				case profile.MPISend:
					if err := compileTag(x, profile.TagDest, true); err != nil {
						return nil, err
					}
					if err := compileTag(x, profile.TagSize, true); err != nil {
						return nil, err
					}
				case profile.MPIRecv:
					if err := compileTag(x, profile.TagSrc, true); err != nil {
						return nil, err
					}
				case profile.MPISendrecv:
					if err := compileTag(x, profile.TagDest, true); err != nil {
						return nil, err
					}
					if err := compileTag(x, profile.TagSrc, true); err != nil {
						return nil, err
					}
					if err := compileTag(x, profile.TagSize, true); err != nil {
						return nil, err
					}
				case profile.MPIBroadcast, profile.MPIReduce:
					if err := compileTag(x, profile.TagRoot, false); err != nil {
						return nil, err
					}
					if err := compileTag(x, profile.TagSize, true); err != nil {
						return nil, err
					}
				}
			case *uml.ActivityNode:
				if src := costSource(x.CostFunc, x); src != "" {
					if d, ok := parseDist(src); ok {
						pr.distCosts[x.ID()] = d
					} else {
						c, err := compileSrc(src)
						if err != nil {
							return nil, fmt.Errorf("interp: element %q cost: %w", x.Name(), err)
						}
						pr.costs[x.ID()] = c
					}
				}
				pr.code[x.ID()] = parseAssignments(x.Code)
				if x.Stereotype() == profile.OMPParallel {
					if err := compileTag(x, profile.TagCount, false); err != nil {
						return nil, err
					}
				}
				if x.Body != "" && m.DiagramByName(x.Body) == nil {
					return nil, fmt.Errorf("interp: activity %q references unknown diagram %q", x.Name(), x.Body)
				}
			case *uml.LoopNode:
				if d, ok := parseDist(x.Count); ok {
					pr.distCounts[x.ID()] = d
				} else {
					c, err := compileSrc(x.Count)
					if err != nil {
						return nil, fmt.Errorf("interp: loop %q count: %w", x.Name(), err)
					}
					pr.counts[x.ID()] = c
				}
				if m.DiagramByName(x.Body) == nil {
					return nil, fmt.Errorf("interp: loop %q references unknown diagram %q", x.Name(), x.Body)
				}
			}
		}
	}
	return pr, nil
}

// Model returns the model the program was compiled from.
func (pr *Program) Model() *uml.Model { return pr.model }

// Assignment is one parsed statement of an element's code fragment, as
// exposed through Parts.
type Assignment struct {
	Name  string
	Value *expr.Compiled
}

// Parts exposes the compiled program's pre-compiled expression tables so
// alternative execution backends (internal/lower) can re-lower them
// without re-parsing the model. The maps are shared, not copied: treat
// them as read-only.
type Parts struct {
	Model      *uml.Model
	Lib        *expr.Library
	Guards     map[string]*expr.Compiled            // edge ID -> guard
	Costs      map[string]*expr.Compiled            // node ID -> cost expression
	Counts     map[string]*expr.Compiled            // loop node ID -> count
	DistCosts  map[string]*expr.Dist                // node ID -> stochastic cost
	DistCounts map[string]*expr.Dist                // loop node ID -> stochastic count
	Tags       map[string]map[string]*expr.Compiled // node ID -> tag -> expr
	Code       map[string][]Assignment              // node ID -> effective statements
	Inits      map[string]*expr.Compiled            // variable name -> initializer
}

// Parts returns the program's compiled constituents.
func (pr *Program) Parts() Parts {
	code := make(map[string][]Assignment, len(pr.code))
	for id, as := range pr.code {
		out := make([]Assignment, len(as))
		for i, a := range as {
			out[i] = Assignment{Name: a.name, Value: a.value}
		}
		code[id] = out
	}
	return Parts{
		Model:      pr.model,
		Lib:        pr.lib,
		Guards:     pr.guards,
		Costs:      pr.costs,
		Counts:     pr.counts,
		DistCosts:  pr.distCosts,
		DistCounts: pr.distCounts,
		Tags:       pr.tags,
		Code:       code,
		Inits:      pr.inits,
	}
}

// Stochastic reports whether the program draws any cost or count from a
// distribution literal (beyond weighted-branch selection).
func (pr *Program) Stochastic() bool {
	return len(pr.distCosts) > 0 || len(pr.distCounts) > 0
}

// costSource picks the expression that models an element's execution
// time: an attached cost function wins; otherwise the `time` tagged value
// (paper, Figure 1b: `time = 10` carries "the estimated or the measured
// execution time").
func costSource(costFunc string, e uml.Element) string {
	if costFunc != "" {
		return costFunc
	}
	if raw, ok := e.Tag(profile.TagTime); ok {
		return raw
	}
	return ""
}

// parseAssignments extracts the executable subset of a code fragment: a
// sequence of `name = expression` statements separated by ';' or
// newlines. Anything else (Fortran snippets, arbitrary C++) is opaque
// documentation: it is carried into the generated C++ verbatim but has no
// effect on the simulation.
func parseAssignments(code string) []assignment {
	if code == "" {
		return nil
	}
	var out []assignment
	for _, stmt := range strings.FieldsFunc(code, func(r rune) bool { return r == ';' || r == '\n' }) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" || strings.HasPrefix(stmt, "//") {
			continue
		}
		eq := strings.IndexByte(stmt, '=')
		if eq <= 0 || eq+1 < len(stmt) && (stmt[eq+1] == '=') || stmt[eq-1] == '!' ||
			stmt[eq-1] == '<' || stmt[eq-1] == '>' {
			continue
		}
		name := strings.TrimSpace(stmt[:eq])
		if !isIdent(name) {
			continue
		}
		c, err := expr.CompileStringFolded(strings.TrimSpace(stmt[eq+1:]))
		if err != nil {
			continue
		}
		out = append(out, assignment{name: name, value: c})
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// Config parameterizes one simulation run.
type Config struct {
	// Params are the System Parameters (SP) of the paper's Figure 2.
	Params machine.SystemParams
	// Net parameterizes the interconnect; the zero value means
	// machine.DefaultNet().
	Net *machine.NetParams
	// Globals overrides/provides values for global model variables.
	Globals map[string]float64
	// Policy selects the processor-contention discipline (FCFS default,
	// or processor sharing).
	Policy machine.Policy
	// Seed drives probabilistic (weighted) branch selection; runs with
	// equal seeds are identical. 0 means seed 1.
	Seed int64
	// NoTrace skips trace-event collection: parameter sweeps that only
	// need the makespan run faster and allocate less. Result.Trace is
	// empty (metadata only).
	NoTrace bool
	// MaxSteps bounds the number of element executions per process
	// (0 = 50e6 default), guarding against models that loop forever.
	MaxSteps int
	// RunLimit, when positive, runs the simulation through
	// sim.Engine.RunUntil(RunLimit) instead of sim.Engine.Run: events past
	// the limit stay queued and no deadlock detection happens at the end.
	// Use math.Inf(1) to drain every event through the RunUntil path — the
	// conformance harness asserts that this produces a trace identical to
	// Run's.
	RunLimit float64
	// Context, when non-nil, cancels the run cooperatively: the engine
	// checks for cancellation between simulation events, so a run whose
	// context is cancelled (or whose deadline expires) mid-simulation
	// returns promptly with an error wrapping context.Cause — at event
	// granularity, not only at run boundaries. nil runs to completion.
	Context context.Context
	// Observer, when non-nil, receives the engine's telemetry during the
	// run: process lifecycle events and simulated-time samples of
	// facility utilization, queue lengths, mailbox depths and scheduler
	// pressure.
	Observer sim.Observer
	// SampleInterval is the simulated-time spacing between telemetry
	// samples (0 = sample whenever simulated time advances). Only
	// meaningful when Observer is set.
	SampleInterval float64
}

// Result is the outcome of one run.
type Result struct {
	// Trace is the trace file content (TF of Figure 2).
	Trace *trace.Trace
	// Makespan is the simulated completion time.
	Makespan float64
	// CPUUtilization per node at the end of the run.
	CPUUtilization []float64
	// Globals holds the final values of the global model variables.
	Globals map[string]float64
}
