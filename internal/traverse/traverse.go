// Package traverse implements the model traversing procedure of the paper's
// Figure 6: three decoupled roles that communicate only via well-defined
// interfaces.
//
//   - The Navigator knows how to walk the model tree. On each navigation
//     command it advances to the next traversal event and exposes the
//     current element.
//   - The ContentHandler consumes traversal events and produces some model
//     representation (C++, XML, DOT, statistics, ...).
//   - The Traverser drives the interaction: it sends the navigation command
//     to the Navigator, obtains the current element, and asks the
//     ContentHandler to visit it.
//
// "Each implementation of one of these components can be combined with any
// implementation of the other two components" (paper, Section 3); the
// package ships two navigators (recursive pre-order and explicit-stack) and
// any number of handlers live in sibling packages (cppgen, dot, gogen, ...).
package traverse

import (
	"fmt"

	"prophet/internal/uml"
)

// Phase tells a ContentHandler where in the tree walk an event occurred.
type Phase int

const (
	// EnterModel is emitted once, before anything else.
	EnterModel Phase = iota
	// EnterDiagram is emitted when a diagram's subtree begins.
	EnterDiagram
	// VisitNode is emitted for each node of the current diagram.
	VisitNode
	// VisitEdge is emitted for each edge of the current diagram, after its
	// nodes.
	VisitEdge
	// LeaveDiagram closes the diagram opened by the matching EnterDiagram.
	LeaveDiagram
	// LeaveModel is emitted once, after everything else.
	LeaveModel
)

// String names the phase for diagnostics.
func (p Phase) String() string {
	switch p {
	case EnterModel:
		return "EnterModel"
	case EnterDiagram:
		return "EnterDiagram"
	case VisitNode:
		return "VisitNode"
	case VisitEdge:
		return "VisitEdge"
	case LeaveDiagram:
		return "LeaveDiagram"
	case LeaveModel:
		return "LeaveModel"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Event is one step of the traversal: a phase plus the current element.
type Event struct {
	Phase   Phase
	Element uml.Element
}

// Navigator walks a model and yields traversal events one at a time.
//
// The protocol mirrors the paper's communication diagram: Advance is the
// navigationCommand(), Current is getCurrentElement().
type Navigator interface {
	// Start resets the navigator onto a model.
	Start(m *uml.Model)
	// Advance moves to the next event. It returns false when the walk is
	// exhausted.
	Advance() bool
	// Current returns the event the navigator is positioned on. It is only
	// valid after Advance returned true.
	Current() Event
}

// ContentHandler consumes traversal events and builds a representation.
type ContentHandler interface {
	// Visit is called once per event, in traversal order.
	Visit(Event) error
}

// Traverser drives a Navigator/ContentHandler pair over a model.
type Traverser interface {
	Traverse(m *uml.Model, nav Navigator, h ContentHandler) error
}

// defaultTraverser is the straightforward loop of Figure 6:
// navigationCommand -> getCurrentElement -> visitElement.
type defaultTraverser struct{}

// NewTraverser returns the default Traverser implementation.
func NewTraverser() Traverser { return defaultTraverser{} }

// Traverse implements Traverser.
func (defaultTraverser) Traverse(m *uml.Model, nav Navigator, h ContentHandler) error {
	nav.Start(m)
	for nav.Advance() {
		ev := nav.Current()
		if err := h.Visit(ev); err != nil {
			return fmt.Errorf("traverse: %s %s: %w", ev.Phase, describe(ev.Element), err)
		}
	}
	return nil
}

// Run is shorthand for traversing m with the default traverser and the
// default (recursive) navigator.
func Run(m *uml.Model, h ContentHandler) error {
	return NewTraverser().Traverse(m, NewRecursiveNavigator(), h)
}

func describe(e uml.Element) string {
	if e == nil {
		return "<nil>"
	}
	if e.Name() != "" {
		return fmt.Sprintf("%s %q", e.Kind(), e.Name())
	}
	return fmt.Sprintf("%s %q", e.Kind(), e.ID())
}
