package traverse

import (
	"prophet/internal/uml"
)

// CollectHandler records every event it sees. It is the simplest possible
// ContentHandler, used by tests and by consumers that want the raw walk.
type CollectHandler struct {
	Events []Event
}

// Visit implements ContentHandler.
func (c *CollectHandler) Visit(ev Event) error {
	c.Events = append(c.Events, ev)
	return nil
}

// SelectHandler collects the performance-relevant modeling elements of the
// model: the first phase of the transformation algorithm (paper, Figure 5
// lines 1-8, "IF element is performance modeling element THEN add element
// to perf_elements"). An element qualifies when Matches returns true; the
// typical predicate checks the stereotype name against the profile.
type SelectHandler struct {
	// Matches decides whether a node is performance-relevant.
	Matches func(uml.Element) bool
	// Selected accumulates matching nodes in traversal order.
	Selected []uml.Element
}

// Visit implements ContentHandler.
func (s *SelectHandler) Visit(ev Event) error {
	if ev.Phase != VisitNode {
		return nil
	}
	if s.Matches != nil && s.Matches(ev.Element) {
		s.Selected = append(s.Selected, ev.Element)
	}
	return nil
}

// FuncHandler adapts a function to the ContentHandler interface.
type FuncHandler func(Event) error

// Visit implements ContentHandler.
func (f FuncHandler) Visit(ev Event) error { return f(ev) }

// MultiHandler fans every event out to several handlers, so one traversal
// can build several representations in a single pass.
type MultiHandler []ContentHandler

// Visit implements ContentHandler.
func (m MultiHandler) Visit(ev Event) error {
	for _, h := range m {
		if err := h.Visit(ev); err != nil {
			return err
		}
	}
	return nil
}
