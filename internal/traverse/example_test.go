package traverse_test

import (
	"fmt"

	"prophet/internal/samples"
	"prophet/internal/traverse"
	"prophet/internal/uml"
)

// Example shows the Figure 6 pattern: a Traverser drives a Navigator and
// hands each element to a ContentHandler. Here the handler counts the
// performance modeling elements — the first phase of the transformation
// algorithm.
func Example() {
	m := samples.Sample()
	sel := &traverse.SelectHandler{
		Matches: func(e uml.Element) bool { return e.Stereotype() == "action+" },
	}
	if err := traverse.NewTraverser().Traverse(m, traverse.NewStackNavigator(), sel); err != nil {
		panic(err)
	}
	for _, e := range sel.Selected {
		fmt.Println(e.Name())
	}
	// Output:
	// A1
	// A2
	// A4
	// SA1
	// SA2
}

// Example_multiHandler builds two representations in one pass.
func Example_multiHandler() {
	m := samples.Kernel6()
	var nodes, edges int
	counter := traverse.FuncHandler(func(ev traverse.Event) error {
		switch ev.Phase {
		case traverse.VisitNode:
			nodes++
		case traverse.VisitEdge:
			edges++
		}
		return nil
	})
	var collect traverse.CollectHandler
	if err := traverse.Run(m, traverse.MultiHandler{counter, &collect}); err != nil {
		panic(err)
	}
	fmt.Printf("nodes=%d edges=%d events=%d\n", nodes, edges, len(collect.Events))
	// Output: nodes=3 edges=2 events=9
}
