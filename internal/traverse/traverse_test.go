package traverse

import (
	"errors"
	"fmt"
	"testing"

	"prophet/internal/uml"
)

func buildModel(t *testing.T, diagrams, nodesPer int) *uml.Model {
	t.Helper()
	m := uml.NewModel("m")
	for di := 0; di < diagrams; di++ {
		d, err := m.AddDiagram(fmt.Sprintf("d%d", di))
		if err != nil {
			t.Fatal(err)
		}
		var prev uml.Node
		for ni := 0; ni < nodesPer; ni++ {
			a, err := m.AddAction(d, "", fmt.Sprintf("A%d_%d", di, ni))
			if err != nil {
				t.Fatal(err)
			}
			if ni%2 == 0 {
				a.SetStereotype("action+")
			}
			if prev != nil {
				if _, err := d.Connect(prev.ID(), a.ID(), ""); err != nil {
					t.Fatal(err)
				}
			}
			prev = a
		}
	}
	return m
}

func eventSignature(evs []Event) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = ev.Phase.String() + ":" + ev.Element.ID()
	}
	return out
}

func TestDefaultTraversalOrder(t *testing.T) {
	m := buildModel(t, 2, 2)
	var c CollectHandler
	if err := Run(m, &c); err != nil {
		t.Fatal(err)
	}
	// model, d0(enter,2 nodes,1 edge,leave), d1(same), model leave
	want := 1 + 2*(1+2+1+1) + 1
	if len(c.Events) != want {
		t.Fatalf("event count = %d, want %d", len(c.Events), want)
	}
	if c.Events[0].Phase != EnterModel || c.Events[len(c.Events)-1].Phase != LeaveModel {
		t.Errorf("walk should be bracketed by EnterModel/LeaveModel")
	}
	// Within a diagram: enter, nodes, edges, leave.
	if c.Events[1].Phase != EnterDiagram {
		t.Errorf("second event should enter first diagram, got %v", c.Events[1].Phase)
	}
	if c.Events[2].Phase != VisitNode || c.Events[3].Phase != VisitNode {
		t.Errorf("nodes should be visited before edges")
	}
	if c.Events[4].Phase != VisitEdge {
		t.Errorf("edges should follow nodes")
	}
	if c.Events[5].Phase != LeaveDiagram {
		t.Errorf("diagram should close after its edges")
	}
}

// TestNavigatorsAgree asserts that both Navigator implementations produce
// the identical event sequence, which is what makes them interchangeable
// behind the Figure 6 interfaces.
func TestNavigatorsAgree(t *testing.T) {
	for _, size := range []struct{ d, n int }{{1, 1}, {2, 3}, {5, 10}, {1, 0}, {0, 0}} {
		m := buildModel(t, size.d, size.n)
		var a, b CollectHandler
		if err := NewTraverser().Traverse(m, NewRecursiveNavigator(), &a); err != nil {
			t.Fatal(err)
		}
		if err := NewTraverser().Traverse(m, NewStackNavigator(), &b); err != nil {
			t.Fatal(err)
		}
		sa, sb := eventSignature(a.Events), eventSignature(b.Events)
		if len(sa) != len(sb) {
			t.Fatalf("d=%d n=%d: lengths differ %d vs %d", size.d, size.n, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("d=%d n=%d: event %d differs: %s vs %s", size.d, size.n, i, sa[i], sb[i])
			}
		}
	}
}

// TestCrossPairing exercises the decoupling claim of Figure 6: every
// navigator works with every handler through the same Traverser.
func TestCrossPairing(t *testing.T) {
	m := buildModel(t, 3, 4)
	navs := map[string]func() Navigator{
		"recursive": func() Navigator { return NewRecursiveNavigator() },
		"stack":     func() Navigator { return NewStackNavigator() },
	}
	for name, mk := range navs {
		t.Run(name+"/collect", func(t *testing.T) {
			var c CollectHandler
			if err := NewTraverser().Traverse(m, mk(), &c); err != nil {
				t.Fatal(err)
			}
			if len(c.Events) == 0 {
				t.Error("no events")
			}
		})
		t.Run(name+"/select", func(t *testing.T) {
			s := &SelectHandler{Matches: func(e uml.Element) bool { return e.Stereotype() == "action+" }}
			if err := NewTraverser().Traverse(m, mk(), s); err != nil {
				t.Fatal(err)
			}
			if len(s.Selected) != 3*2 { // nodes 0 and 2 of each of 3 diagrams
				t.Errorf("selected %d elements, want 6", len(s.Selected))
			}
		})
	}
}

func TestSelectHandlerIgnoresNonNodes(t *testing.T) {
	m := buildModel(t, 1, 3)
	s := &SelectHandler{Matches: func(uml.Element) bool { return true }}
	if err := Run(m, s); err != nil {
		t.Fatal(err)
	}
	for _, e := range s.Selected {
		if !e.Kind().IsNode() {
			t.Errorf("selected non-node %v", e.Kind())
		}
	}
	if len(s.Selected) != 3 {
		t.Errorf("selected %d, want 3", len(s.Selected))
	}
}

func TestHandlerErrorStopsTraversal(t *testing.T) {
	m := buildModel(t, 2, 2)
	sentinel := errors.New("boom")
	count := 0
	h := FuncHandler(func(ev Event) error {
		count++
		if count == 4 {
			return sentinel
		}
		return nil
	})
	err := Run(m, h)
	if !errors.Is(err, sentinel) {
		t.Fatalf("want wrapped sentinel, got %v", err)
	}
	if count != 4 {
		t.Errorf("traversal continued after error: %d visits", count)
	}
}

func TestMultiHandler(t *testing.T) {
	m := buildModel(t, 1, 2)
	var a, b CollectHandler
	if err := Run(m, MultiHandler{&a, &b}); err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) || len(a.Events) == 0 {
		t.Errorf("multi handler should fan out equally: %d vs %d", len(a.Events), len(b.Events))
	}
}

func TestNavigatorRestart(t *testing.T) {
	m1 := buildModel(t, 1, 1)
	m2 := buildModel(t, 2, 2)
	for _, nav := range []Navigator{NewRecursiveNavigator(), NewStackNavigator()} {
		var c1 CollectHandler
		if err := NewTraverser().Traverse(m1, nav, &c1); err != nil {
			t.Fatal(err)
		}
		var c2 CollectHandler
		if err := NewTraverser().Traverse(m2, nav, &c2); err != nil {
			t.Fatal(err)
		}
		if len(c2.Events) <= len(c1.Events) {
			t.Errorf("navigator not restartable: %d then %d events", len(c1.Events), len(c2.Events))
		}
	}
}

func TestStackNavigatorCurrentBeforeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Current before Advance should panic")
		}
	}()
	n := NewStackNavigator()
	n.Start(uml.NewModel("m"))
	n.Current()
}

func TestAdvancePastEnd(t *testing.T) {
	m := buildModel(t, 0, 0)
	for _, nav := range []Navigator{NewRecursiveNavigator(), NewStackNavigator()} {
		nav.Start(m)
		for nav.Advance() {
		}
		if nav.Advance() {
			t.Errorf("%T: Advance after exhaustion should keep returning false", nav)
		}
	}
}

func TestPhaseString(t *testing.T) {
	phases := []Phase{EnterModel, EnterDiagram, VisitNode, VisitEdge, LeaveDiagram, LeaveModel}
	seen := map[string]bool{}
	for _, p := range phases {
		s := p.String()
		if seen[s] {
			t.Errorf("duplicate phase name %q", s)
		}
		seen[s] = true
	}
	if Phase(42).String() != "Phase(42)" {
		t.Errorf("unknown phase string wrong")
	}
}
