package traverse

import (
	"testing"

	"prophet/internal/modelgen"
)

// TestNavigatorsAgreeOnGeneratedModels is the property test locking the
// streaming RecursiveNavigator rewrite: over a spread of randomly shaped
// generated models, RecursiveNavigator and StackNavigator must emit
// identical event streams, element for element.
func TestNavigatorsAgreeOnGeneratedModels(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		nodes := 20 + int(seed)*37
		m, err := modelgen.Generate(modelgen.Params{Seed: seed, Nodes: nodes})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rec := NewRecursiveNavigator()
		stk := NewStackNavigator()
		rec.Start(m)
		stk.Start(m)
		step := 0
		for {
			rOK := rec.Advance()
			sOK := stk.Advance()
			if rOK != sOK {
				t.Fatalf("seed %d step %d: recursive=%v stack=%v (streams end at different lengths)",
					seed, step, rOK, sOK)
			}
			if !rOK {
				break
			}
			re, se := rec.Current(), stk.Current()
			if re.Phase != se.Phase || re.Element != se.Element {
				t.Fatalf("seed %d step %d: recursive {%v %s} != stack {%v %s}",
					seed, step, re.Phase, re.Element.ID(), se.Phase, se.Element.ID())
			}
			step++
		}
		if step == 0 {
			t.Fatalf("seed %d: empty event stream", seed)
		}
	}
}
