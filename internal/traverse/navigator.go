package traverse

import "prophet/internal/uml"

// RecursiveNavigator streams the recursive-descent event sequence from a
// cursor over the model tree: EnterModel, then per diagram its nodes and
// edges bracketed by Enter/LeaveDiagram, then LeaveModel. It holds O(1)
// state — a position, not an event buffer — so traversing a million-node
// model allocates nothing beyond the navigator itself. (It historically
// materialized the full event slice in Start, which made traversal memory
// O(nodes); the streaming rewrite is locked to the same event sequence by
// the cross-implementation and property tests.)
type RecursiveNavigator struct {
	model *uml.Model
	state recState
	di    int // index into model.Diagrams()
	ci    int // index into the current diagram's nodes or edges
	cur   Event
	valid bool
}

// recState names the next event the cursor will emit.
type recState int

const (
	recEnterModel recState = iota
	recEnterDiagram
	recNodes
	recEdges
	recLeaveDiagram
	recLeaveModel
	recDone
)

// NewRecursiveNavigator returns a streaming recursive-descent navigator.
func NewRecursiveNavigator() *RecursiveNavigator { return &RecursiveNavigator{} }

// Start implements Navigator.
func (n *RecursiveNavigator) Start(m *uml.Model) {
	n.model = m
	n.state = recEnterModel
	n.di, n.ci = 0, 0
	n.valid = false
}

// Advance implements Navigator.
func (n *RecursiveNavigator) Advance() bool {
	switch n.state {
	case recEnterModel:
		n.cur = Event{EnterModel, n.model}
		n.di = 0
		if len(n.model.Diagrams()) > 0 {
			n.state = recEnterDiagram
		} else {
			n.state = recLeaveModel
		}
	case recEnterDiagram:
		d := n.model.Diagrams()[n.di]
		n.cur = Event{EnterDiagram, d}
		n.ci = 0
		n.state = nextInDiagram(d, 0, 0)
	case recNodes:
		d := n.model.Diagrams()[n.di]
		n.cur = Event{VisitNode, d.Nodes()[n.ci]}
		n.ci++
		if n.ci >= len(d.Nodes()) {
			n.state = nextInDiagram(d, len(d.Nodes()), 0)
			n.ci = 0
		}
	case recEdges:
		d := n.model.Diagrams()[n.di]
		n.cur = Event{VisitEdge, d.Edges()[n.ci]}
		n.ci++
		if n.ci >= len(d.Edges()) {
			n.state = recLeaveDiagram
			n.ci = 0
		}
	case recLeaveDiagram:
		n.cur = Event{LeaveDiagram, n.model.Diagrams()[n.di]}
		n.di++
		if n.di < len(n.model.Diagrams()) {
			n.state = recEnterDiagram
		} else {
			n.state = recLeaveModel
		}
	case recLeaveModel:
		n.cur = Event{LeaveModel, n.model}
		n.state = recDone
	default: // recDone
		n.valid = false
		return false
	}
	n.valid = true
	return true
}

// nextInDiagram picks the state that yields diagram d's next event given
// how many of its nodes and edges have already been emitted.
func nextInDiagram(d *uml.Diagram, nodesDone, edgesDone int) recState {
	switch {
	case nodesDone < len(d.Nodes()):
		return recNodes
	case edgesDone < len(d.Edges()):
		return recEdges
	default:
		return recLeaveDiagram
	}
}

// Current implements Navigator.
func (n *RecursiveNavigator) Current() Event {
	if !n.valid {
		panic("traverse: Current called before Advance")
	}
	return n.cur
}

// StackNavigator walks the model lazily with an explicit work stack: O(1)
// setup and O(depth) memory, at the cost of a little bookkeeping per step.
// It yields exactly the same event sequence as RecursiveNavigator (asserted
// by the cross-implementation tests); the ablation benchmark
// BenchmarkNavigator compares the two.
type StackNavigator struct {
	stack []frame
	cur   Event
	valid bool
}

type frame struct {
	ev     Event
	expand bool // expand the element's children after yielding
}

// NewStackNavigator returns a lazily-walking navigator.
func NewStackNavigator() *StackNavigator { return &StackNavigator{} }

// Start implements Navigator.
func (n *StackNavigator) Start(m *uml.Model) {
	n.stack = n.stack[:0]
	n.valid = false
	// Push in reverse so pops come out in walk order.
	n.stack = append(n.stack, frame{Event{LeaveModel, m}, false})
	diagrams := m.Diagrams()
	for i := len(diagrams) - 1; i >= 0; i-- {
		n.stack = append(n.stack, frame{Event{EnterDiagram, diagrams[i]}, true})
	}
	n.stack = append(n.stack, frame{Event{EnterModel, m}, false})
}

// Advance implements Navigator.
func (n *StackNavigator) Advance() bool {
	if len(n.stack) == 0 {
		n.valid = false
		return false
	}
	f := n.stack[len(n.stack)-1]
	n.stack = n.stack[:len(n.stack)-1]
	if f.expand {
		d := f.ev.Element.(*uml.Diagram)
		// Children execute between this EnterDiagram and its LeaveDiagram.
		n.stack = append(n.stack, frame{Event{LeaveDiagram, d}, false})
		edges := d.Edges()
		for i := len(edges) - 1; i >= 0; i-- {
			n.stack = append(n.stack, frame{Event{VisitEdge, edges[i]}, false})
		}
		nodes := d.Nodes()
		for i := len(nodes) - 1; i >= 0; i-- {
			n.stack = append(n.stack, frame{Event{VisitNode, nodes[i]}, false})
		}
	}
	n.cur = f.ev
	n.valid = true
	return true
}

// Current implements Navigator.
func (n *StackNavigator) Current() Event {
	if !n.valid {
		panic("traverse: Current called before Advance")
	}
	return n.cur
}
