package traverse

import "prophet/internal/uml"

// RecursiveNavigator materializes the full event sequence up front by a
// recursive descent over the model tree, then replays it. Simple and cache
// friendly for small models; costs O(model) memory.
type RecursiveNavigator struct {
	events []Event
	pos    int
}

// NewRecursiveNavigator returns a navigator that precomputes the walk.
func NewRecursiveNavigator() *RecursiveNavigator { return &RecursiveNavigator{} }

// Start implements Navigator.
func (n *RecursiveNavigator) Start(m *uml.Model) {
	n.events = n.events[:0]
	n.pos = -1
	n.emit(Event{EnterModel, m})
	for _, d := range m.Diagrams() {
		n.descend(d)
	}
	n.emit(Event{LeaveModel, m})
}

func (n *RecursiveNavigator) descend(d *uml.Diagram) {
	n.emit(Event{EnterDiagram, d})
	for _, node := range d.Nodes() {
		n.emit(Event{VisitNode, node})
	}
	for _, e := range d.Edges() {
		n.emit(Event{VisitEdge, e})
	}
	n.emit(Event{LeaveDiagram, d})
}

func (n *RecursiveNavigator) emit(ev Event) { n.events = append(n.events, ev) }

// Advance implements Navigator.
func (n *RecursiveNavigator) Advance() bool {
	if n.pos+1 >= len(n.events) {
		return false
	}
	n.pos++
	return true
}

// Current implements Navigator.
func (n *RecursiveNavigator) Current() Event { return n.events[n.pos] }

// StackNavigator walks the model lazily with an explicit work stack: O(1)
// setup and O(depth) memory, at the cost of a little bookkeeping per step.
// It yields exactly the same event sequence as RecursiveNavigator (asserted
// by the cross-implementation tests); the ablation benchmark
// BenchmarkNavigator compares the two.
type StackNavigator struct {
	stack []frame
	cur   Event
	valid bool
}

type frame struct {
	ev     Event
	expand bool // expand the element's children after yielding
}

// NewStackNavigator returns a lazily-walking navigator.
func NewStackNavigator() *StackNavigator { return &StackNavigator{} }

// Start implements Navigator.
func (n *StackNavigator) Start(m *uml.Model) {
	n.stack = n.stack[:0]
	n.valid = false
	// Push in reverse so pops come out in walk order.
	n.stack = append(n.stack, frame{Event{LeaveModel, m}, false})
	diagrams := m.Diagrams()
	for i := len(diagrams) - 1; i >= 0; i-- {
		n.stack = append(n.stack, frame{Event{EnterDiagram, diagrams[i]}, true})
	}
	n.stack = append(n.stack, frame{Event{EnterModel, m}, false})
}

// Advance implements Navigator.
func (n *StackNavigator) Advance() bool {
	if len(n.stack) == 0 {
		n.valid = false
		return false
	}
	f := n.stack[len(n.stack)-1]
	n.stack = n.stack[:len(n.stack)-1]
	if f.expand {
		d := f.ev.Element.(*uml.Diagram)
		// Children execute between this EnterDiagram and its LeaveDiagram.
		n.stack = append(n.stack, frame{Event{LeaveDiagram, d}, false})
		edges := d.Edges()
		for i := len(edges) - 1; i >= 0; i-- {
			n.stack = append(n.stack, frame{Event{VisitEdge, edges[i]}, false})
		}
		nodes := d.Nodes()
		for i := len(nodes) - 1; i >= 0; i-- {
			n.stack = append(n.stack, frame{Event{VisitNode, nodes[i]}, false})
		}
	}
	n.cur = f.ev
	n.valid = true
	return true
}

// Current implements Navigator.
func (n *StackNavigator) Current() Event {
	if !n.valid {
		panic("traverse: Current called before Advance")
	}
	return n.cur
}
