package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"prophet/internal/obs"
)

// startWorkers spins up n independent prophetd workers (each with its
// own estimator, model store, and result cache — exactly what a separate
// process would have) and returns their base URLs.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		ts := httptest.NewServer(New(Config{ResultCache: 64}).Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// startCoordinator spins up a prophetd fronting the given workers.
func startCoordinator(t *testing.T, workers []string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(Config{ResultCache: 64, Workers: workers}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// A process sweep fanned across 1, 2, and 4 workers returns the exact
// bytes a single node produces: same points, same speedup/efficiency
// derivation, same JSON. The workers start empty, so this also exercises
// the 404 → model re-upload → retry path.
func TestShardedProcessSweepBitIdentical(t *testing.T) {
	req := SweepRequest{
		EstimateRequest: EstimateRequest{ModelRef: ModelRef{ModelXMI: sampleXMI(t)}, Seed: 5},
		Processes:       []int{1, 2, 3, 4, 6, 8},
	}
	single := httptest.NewServer(New(Config{ResultCache: 64}).Handler())
	defer single.Close()
	code, _, want := postJSON(t, single.URL+"/v1/sweep", req)
	if code != http.StatusOK {
		t.Fatalf("single-node sweep: status %d: %s", code, want)
	}
	for _, shards := range []int{1, 2, 4} {
		coord := startCoordinator(t, startWorkers(t, shards))
		code, _, got := postJSON(t, coord.URL+"/v1/sweep", req)
		if code != http.StatusOK {
			t.Fatalf("%d-shard sweep: status %d: %s", shards, code, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%d-shard sweep differs from single node:\n%s\nvs\n%s", shards, got, want)
		}
	}
}

// A global-variable sweep shards bit-identically too.
func TestShardedGlobalSweepBitIdentical(t *testing.T) {
	req := SweepRequest{
		EstimateRequest: EstimateRequest{ModelRef: ModelRef{ModelXMI: sampleXMI(t)}},
		Global:          &GlobalSweep{Name: "N", Values: []float64{1, 2, 4, 8, 16}},
	}
	single := httptest.NewServer(New(Config{ResultCache: 64}).Handler())
	defer single.Close()
	code, _, want := postJSON(t, single.URL+"/v1/sweep", req)
	if code != http.StatusOK {
		t.Fatalf("single-node sweep: status %d: %s", code, want)
	}
	for _, shards := range []int{1, 2, 4} {
		coord := startCoordinator(t, startWorkers(t, shards))
		code, _, got := postJSON(t, coord.URL+"/v1/sweep", req)
		if code != http.StatusOK {
			t.Fatalf("%d-shard sweep: status %d: %s", shards, code, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%d-shard global sweep differs from single node:\n%s\nvs\n%s", shards, got, want)
		}
	}
}

// Monte Carlo decomposition reproduces the single-node seed sequence:
// shard i runs seeds SubSeed(base, lo)…, the coordinator concatenates in
// range order and folds once, so mean/std/min/max and the raw makespans
// are bit-identical at every shard count.
func TestShardedMonteCarloBitIdentical(t *testing.T) {
	req := MonteCarloRequest{
		ModelRef:         ModelRef{ModelXMI: sampleXMI(t)},
		Runs:             10,
		Seed:             3,
		IncludeMakespans: true,
	}
	single := httptest.NewServer(New(Config{ResultCache: 64}).Handler())
	defer single.Close()
	code, _, want := postJSON(t, single.URL+"/v1/montecarlo", req)
	if code != http.StatusOK {
		t.Fatalf("single-node montecarlo: status %d: %s", code, want)
	}
	for _, shards := range []int{1, 2, 4} {
		coord := startCoordinator(t, startWorkers(t, shards))
		code, _, got := postJSON(t, coord.URL+"/v1/montecarlo", req)
		if code != http.StatusOK {
			t.Fatalf("%d-shard montecarlo: status %d: %s", shards, code, got)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%d-shard montecarlo differs from single node:\n%s\nvs\n%s", shards, got, want)
		}
	}
}

// A worker that fails its shard surfaces as 502 at the coordinator;
// a model the workers reject deterministically keeps its client status.
func TestShardWorkerFailureMapsTo502(t *testing.T) {
	// The only worker answers 500 to everything, so every sub-range fails.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()
	coord := startCoordinator(t, []string{dead.URL})

	req := SweepRequest{
		EstimateRequest: EstimateRequest{ModelRef: ModelRef{ModelXMI: sampleXMI(t)}},
		Processes:       []int{1, 2, 3, 4},
	}
	code, _, body := postJSON(t, coord.URL+"/v1/sweep", req)
	if code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502: %s", code, body)
	}
}

// Shard sub-jobs carry the X-Prophet-Local header and therefore always
// evaluate in-process on the worker: a coordinator whose workers are
// themselves coordinators cannot recurse.
func TestShardJobsExecuteLocally(t *testing.T) {
	reg := obs.NewRegistry()
	// "Worker" is itself configured with a (bogus) pool; if the shard
	// header were ignored it would try to fan out to the unreachable
	// address and fail.
	worker := httptest.NewServer(New(Config{
		Registry: reg,
		Workers:  []string{"http://127.0.0.1:1"},
	}).Handler())
	defer worker.Close()
	coord := startCoordinator(t, []string{worker.URL})

	req := SweepRequest{
		EstimateRequest: EstimateRequest{ModelRef: ModelRef{ModelXMI: sampleXMI(t)}},
		Processes:       []int{1, 2, 4},
	}
	code, _, body := postJSON(t, coord.URL+"/v1/sweep", req)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if got := reg.CounterVec("server_shard_jobs_total", "worker").With("http://127.0.0.1:1").Value(); got != 0 {
		t.Errorf("worker re-sharded a shard sub-job %d times", got)
	}
}
