package server

import (
	"sync"

	"prophet/internal/obs"
	"prophet/internal/uml"
)

// modelStore is the content-addressed model store behind POST /v1/models:
// models are keyed by their canonical-XMI content hash (xmi.Hash), the
// same key the estimator's compiled-program cache uses, so "the model I
// uploaded" and "the program the estimator cached" can never disagree.
// Registration is idempotent — re-uploading a model is a no-op — and the
// store is bounded, evicting oldest-first; a client whose model was
// evicted gets 404 and simply re-uploads (the id never changes).
type modelStore struct {
	mu     sync.Mutex
	max    int
	models map[string]*uml.Model
	order  []string // insertion order, for oldest-first eviction
	size   *obs.Gauge
}

func newModelStore(max int, size *obs.Gauge) *modelStore {
	return &modelStore{max: max, models: map[string]*uml.Model{}, size: size}
}

// put registers m under its content address. Models are treated as
// immutable once stored: every reader shares the same instance.
func (s *modelStore) put(id string, m *uml.Model) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.models[id]; ok {
		return
	}
	s.models[id] = m
	s.order = append(s.order, id)
	for len(s.order) > s.max {
		delete(s.models, s.order[0])
		s.order = s.order[1:]
	}
	s.size.Set(float64(len(s.models)))
}

// get returns the model stored under id.
func (s *modelStore) get(id string) (*uml.Model, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.models[id]
	return m, ok
}
