package server

import (
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

// keyOf decodes a JSON request body of the given kind and computes its
// canonical key, exactly the way the handlers do (decode, then key the
// struct). Going through JSON is deliberate: it proves field order in the
// wire document cannot influence the key.
func keyOf(t *testing.T, kind, body string) string {
	t.Helper()
	const modelA = "sha256:aaaa"
	const modelB = "sha256:bbbb"
	switch kind {
	case "estimate":
		var er EstimateRequest
		if err := json.Unmarshal([]byte(body), &er); err != nil {
			t.Fatalf("bad %s body %q: %v", kind, body, err)
		}
		return estimateKey(modelA, &er)
	case "sweep":
		var sr SweepRequest
		if err := json.Unmarshal([]byte(body), &sr); err != nil {
			t.Fatalf("bad %s body %q: %v", kind, body, err)
		}
		return sweepKey(modelA, &sr)
	case "montecarlo":
		var mr MonteCarloRequest
		if err := json.Unmarshal([]byte(body), &mr); err != nil {
			t.Fatalf("bad %s body %q: %v", kind, body, err)
		}
		return monteCarloKey(modelA, &mr)
	case "compare":
		var cr CompareRequest
		if err := json.Unmarshal([]byte(body), &cr); err != nil {
			t.Fatalf("bad %s body %q: %v", kind, body, err)
		}
		return compareKey(modelA, modelB, &cr)
	}
	t.Fatalf("unknown kind %q", kind)
	return ""
}

// The canonical-key property, table-driven over all four request kinds:
// requests that differ only syntactically — field order, default-filled
// values, semantically-identical seed specs, backend spelled "" vs "auto"
// vs the default's explicit name — hash identically; any semantic
// difference hashes differently.
func TestCanonicalRequestKeys(t *testing.T) {
	equal := []struct {
		name string
		kind string
		a, b string
	}{
		{"field order", "estimate",
			`{"seed": 7, "globals": {"n": 64}, "params": {"processes": 4}}`,
			`{"params": {"processes": 4}, "globals": {"n": 64}, "seed": 7}`},
		{"default params filled", "estimate",
			`{}`,
			`{"params": {"nodes": 1, "processors_per_node": 1, "processes": 1, "threads": 1}}`},
		{"partial params filled", "estimate",
			`{"params": {"processes": 4}}`,
			`{"params": {"nodes": 1, "processors_per_node": 1, "processes": 4, "threads": 1}}`},
		{"seed zero means one", "estimate", `{}`, `{"seed": 1}`},
		{"default policy named", "estimate", `{}`, `{"policy": "fcfs"}`},
		{"backend auto resolves", "estimate", `{}`, `{"backend": "auto"}`},
		{"backend default named", "estimate", `{"backend": "auto"}`, `{"backend": "lowered"}`},
		{"timeout is not semantic", "estimate", `{}`, `{"timeout_ms": 5000}`},
		{"mode default named", "estimate", `{}`, `{"mode": "simulate"}`},
		{"empty globals map", "estimate", `{}`, `{"globals": {}}`},
		{"sweep field order", "sweep",
			`{"processes": [1, 2, 4], "seed": 3}`,
			`{"seed": 3, "processes": [1, 2, 4]}`},
		{"sweep seed zero means one", "sweep",
			`{"processes": [1, 2]}`, `{"processes": [1, 2], "seed": 1}`},
		{"sweep timeout is not semantic", "sweep",
			`{"global": {"name": "n", "values": [1, 2]}}`,
			`{"global": {"name": "n", "values": [1, 2]}, "timeout_ms": 99}`},
		{"mc seed zero means one", "montecarlo", `{"runs": 8}`, `{"runs": 8, "seed": 1}`},
		{"mc field order", "montecarlo",
			`{"runs": 8, "globals": {"x": 0.5}}`, `{"globals": {"x": 0.5}, "runs": 8}`},
		{"compare default params", "compare",
			`{"processes": [1, 2]}`,
			`{"processes": [1, 2], "params": {"nodes": 1, "processors_per_node": 1, "processes": 1, "threads": 1}, "policy": "fcfs", "seed": 1}`},
	}
	for _, tc := range equal {
		t.Run("equal/"+tc.name, func(t *testing.T) {
			ka, kb := keyOf(t, tc.kind, tc.a), keyOf(t, tc.kind, tc.b)
			if ka != kb {
				t.Errorf("%s keys differ:\n  %s -> %s\n  %s -> %s", tc.kind, tc.a, ka, tc.b, kb)
			}
		})
	}

	differ := []struct {
		name string
		kind string
		a, b string
	}{
		{"different seed", "estimate", `{"seed": 7}`, `{"seed": 8}`},
		{"different processes", "estimate",
			`{"params": {"processes": 4}}`, `{"params": {"processes": 8}}`},
		{"different global value", "estimate",
			`{"globals": {"n": 64}}`, `{"globals": {"n": 128}}`},
		{"different global name", "estimate",
			`{"globals": {"n": 64}}`, `{"globals": {"m": 64}}`},
		{"different policy", "estimate", `{}`, `{"policy": "ps"}`},
		{"different backend", "estimate", `{}`, `{"backend": "interp"}`},
		{"different max_steps", "estimate", `{}`, `{"max_steps": 100}`},
		{"summary shapes the body", "estimate", `{}`, `{"summary": true}`},
		{"mode analytic differs", "estimate", `{}`, `{"mode": "analytic"}`},
		{"mode auto differs", "estimate", `{}`, `{"mode": "auto"}`},
		{"mode analytic vs auto", "estimate", `{"mode": "analytic"}`, `{"mode": "auto"}`},
		{"telemetry shapes the body", "estimate", `{}`, `{"telemetry": true}`},
		{"sweep range differs", "sweep",
			`{"processes": [1, 2, 4]}`, `{"processes": [1, 2, 8]}`},
		{"sweep range order differs", "sweep",
			`{"processes": [1, 2]}`, `{"processes": [2, 1]}`},
		{"sweep kind differs", "sweep",
			`{"processes": [1, 2]}`, `{"global": {"name": "p", "values": [1, 2]}}`},
		{"sweep global name differs", "sweep",
			`{"global": {"name": "n", "values": [1]}}`, `{"global": {"name": "m", "values": [1]}}`},
		{"mc runs differ", "montecarlo", `{"runs": 8}`, `{"runs": 16}`},
		{"mc makespans shape the body", "montecarlo",
			`{"runs": 8}`, `{"runs": 8, "include_makespans": true}`},
		{"compare processes differ", "compare",
			`{"processes": [1, 2]}`, `{"processes": [1, 4]}`},
		{"compare seed differs", "compare",
			`{"processes": [1]}`, `{"processes": [1], "seed": 9}`},
	}
	for _, tc := range differ {
		t.Run("differ/"+tc.name, func(t *testing.T) {
			ka, kb := keyOf(t, tc.kind, tc.a), keyOf(t, tc.kind, tc.b)
			if ka == kb {
				t.Errorf("%s keys collide for %s vs %s: %s", tc.kind, tc.a, tc.b, ka)
			}
		})
	}
}

// TestSeedZeroMeansSeedOne pins the seed convention the whole system
// shares — the sim engine, runner.Seeds, the wire API docs, and the
// request-key normalizer: seed 0 and seed 1 are the same evaluation;
// every other seed is its own. Property-style over a seed range and all
// request kinds, so a drive-by edit to normalizeSeed cannot survive.
func TestSeedZeroMeansSeedOne(t *testing.T) {
	for _, kind := range []string{"estimate", "sweep", "montecarlo", "compare"} {
		base := keyOf(t, kind, `{"seed": 1}`)
		for seed := int64(-2); seed <= 3; seed++ {
			body := `{"seed": ` + strconv.FormatInt(seed, 10) + `}`
			k := keyOf(t, kind, body)
			if wantEqual := seed == 0 || seed == 1; (k == base) != wantEqual {
				t.Errorf("%s seed %d: key equality with seed 1 = %v, want %v",
					kind, seed, k == base, wantEqual)
			}
		}
		if keyOf(t, kind, `{}`) != keyOf(t, kind, `{"seed": 0}`) {
			t.Errorf("%s: omitted seed and seed 0 differ", kind)
		}
	}
}

// Keys are namespaced by kind and by model: the same parameters under a
// different kind or model content must never collide, and the compare
// kind must distinguish (A, B) from (B, A).
func TestKeyNamespaces(t *testing.T) {
	var er EstimateRequest
	var mr MonteCarloRequest
	if estimateKey("sha256:aaaa", &er) == estimateKey("sha256:bbbb", &er) {
		t.Error("different model hashes collide")
	}
	if estimateKey("sha256:aaaa", &er) == monteCarloKey("sha256:aaaa", &mr) {
		t.Error("estimate and montecarlo kinds collide")
	}
	var cr CompareRequest
	if compareKey("sha256:aaaa", "sha256:bbbb", &cr) == compareKey("sha256:bbbb", "sha256:aaaa", &cr) {
		t.Error("compare (A,B) and (B,A) collide")
	}
	// Adjacent fields must not collude through concatenation.
	a := EstimateRequest{Globals: map[string]float64{"ab": 1, "c": 2}}
	b := EstimateRequest{Globals: map[string]float64{"a": 1, "bc": 2}}
	if estimateKey("sha256:aaaa", &a) == estimateKey("sha256:aaaa", &b) {
		t.Error("global name boundaries collide")
	}
	for _, k := range []string{estimateKey("sha256:aaaa", &er), monteCarloKey("sha256:aaaa", &mr)} {
		if !strings.HasPrefix(k, "rk:") || len(k) != len("rk:")+64 {
			t.Errorf("malformed key %q", k)
		}
	}
}
