package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"

	"prophet/internal/estimator"
)

// Canonical request keys.
//
// prophetd's evaluations are deterministic functions of (model content,
// normalized request parameters): two requests that mean the same thing
// produce bit-identical responses. The request key makes that identity
// explicit — a stable hash over the model's content address (xmi.Hash)
// and the request's semantic fields, normalized so syntactic variation
// disappears:
//
//   - JSON field order never matters (keys are computed from the decoded
//     struct, field by field, in a fixed order)
//   - omitted fields hash like their defaults (params fill to 1s, policy
//     "" ≡ "fcfs", backend "" ≡ "auto" ≡ its effective backend, seed 0 ≡
//     seed 1 — the normalization the sim engine and runner.Seeds apply)
//   - fields that cannot change the result body are excluded (timeout_ms
//     bounds the evaluation, it does not parameterize it)
//
// Anything semantic — model hash, params, globals, policy, the effective
// backend, seed, sweep ranges, run counts, response-shaping flags — feeds
// the hash, so any difference that could change a single response byte
// yields a different key. The key is what the result cache, the
// singleflight table, and the shard router all index on.

// keyWriter accumulates canonical (field, value) pairs into a hash. Field
// names are written alongside values, with unambiguous separators, so
// adjacent fields can never collude ("ab"+"c" vs "a"+"bc").
type keyWriter struct {
	h interface{ Write(p []byte) (int, error) }
}

func newKeyWriter(kind string) (*keyWriter, func() string) {
	h := sha256.New()
	k := &keyWriter{h: h}
	k.field("kind", kind)
	return k, func() string { return "rk:" + hex.EncodeToString(h.Sum(nil)) }
}

func (k *keyWriter) field(name, value string) {
	fmt.Fprintf(k.h, "%d:%s=%d:%s;", len(name), name, len(value), value)
}

func (k *keyWriter) intField(name string, v int64) {
	k.field(name, strconv.FormatInt(v, 10))
}

func (k *keyWriter) floatField(name string, v float64) {
	k.field(name, strconv.FormatFloat(v, 'g', -1, 64))
}

func (k *keyWriter) boolField(name string, v bool) {
	if v {
		k.field(name, "1")
	} else {
		k.field(name, "0")
	}
}

// normalizeSeed applies the one seed convention shared by the sim
// engine, runner.Seeds, and the wire API docs: seed 0 means seed 1.
// TestSeedZeroMeansSeedOne pins the convention end to end.
func normalizeSeed(seed int64) int64 {
	if seed == 0 {
		return 1
	}
	return seed
}

// commonFields writes the fields every evaluation kind shares: the system
// parameters (defaults filled via the same toMachine conversion the
// evaluation uses), globals in sorted key order, the normalized seed and
// policy. Callers must have validated policy already; an unknown policy
// never reaches keying because handlers reject it with 400 first.
func (k *keyWriter) commonFields(params *Params, globals map[string]float64, seed int64, policy string) {
	sp := params.toMachine()
	k.intField("nodes", int64(sp.Nodes))
	k.intField("ppn", int64(sp.ProcessorsPerNode))
	k.intField("procs", int64(sp.Processes))
	k.intField("threads", int64(sp.Threads))
	names := make([]string, 0, len(globals))
	for name := range globals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		k.field("g:"+name, strconv.FormatFloat(globals[name], 'g', -1, 64))
	}
	k.intField("seed", normalizeSeed(seed))
	if policy == "" {
		policy = "fcfs"
	}
	k.field("policy", policy)
}

// backendField writes the effective backend: "" and "auto" resolve to the
// backend actually used (estimator.Backend.String resolves Auto), so a
// request that says nothing, one that says "auto", and one that names the
// default backend explicitly all share a key — they run the same engine
// on the same inputs.
func (k *keyWriter) backendField(backend string) {
	b, err := estimator.ParseBackend(backend)
	if err != nil {
		// Handlers validate before keying; key the raw string defensively.
		k.field("backend", backend)
		return
	}
	k.field("backend", b.String())
}

// modeField writes the normalized evaluation mode: "" and "simulate"
// share a key (they run the same engine), while "analytic" and "auto"
// key distinctly — auto may resolve to either answer shape, so it can
// never share a cache entry with a forced mode.
func (k *keyWriter) modeField(mode string) {
	m, err := estimator.ParseMode(mode)
	if err != nil {
		// Handlers validate before keying; key the raw string defensively.
		k.field("mode", mode)
		return
	}
	k.field("mode", m.String())
}

// estimateKey is the canonical key of a POST /v1/estimate request
// evaluating the model stored under modelID.
func estimateKey(modelID string, er *EstimateRequest) string {
	k, sum := newKeyWriter("estimate")
	k.field("model", modelID)
	k.commonFields(er.Params, er.Globals, er.Seed, er.Policy)
	k.intField("max_steps", int64(er.MaxSteps))
	k.backendField(er.Backend)
	k.modeField(er.Mode)
	k.boolField("summary", er.Summary)
	k.boolField("telemetry", er.Telemetry)
	return sum()
}

// sweepKey is the canonical key of a POST /v1/sweep request. The sweep
// range — the process counts or the global's (name, values) — is part of
// the key; summary/telemetry are not, because sweep responses carry
// neither.
func sweepKey(modelID string, sr *SweepRequest) string {
	k, sum := newKeyWriter("sweep")
	k.field("model", modelID)
	k.commonFields(sr.Params, sr.Globals, sr.Seed, sr.Policy)
	k.intField("max_steps", int64(sr.MaxSteps))
	k.backendField(sr.Backend)
	if len(sr.Processes) > 0 {
		k.intField("points", int64(len(sr.Processes)))
		for _, p := range sr.Processes {
			k.intField("p", int64(p))
		}
	} else if sr.Global != nil {
		k.field("global", sr.Global.Name)
		k.intField("points", int64(len(sr.Global.Values)))
		for _, v := range sr.Global.Values {
			k.floatField("v", v)
		}
	}
	return sum()
}

// monteCarloKey is the canonical key of a POST /v1/montecarlo request.
func monteCarloKey(modelID string, mr *MonteCarloRequest) string {
	k, sum := newKeyWriter("montecarlo")
	k.field("model", modelID)
	k.commonFields(mr.Params, mr.Globals, mr.Seed, mr.Policy)
	k.intField("max_steps", int64(mr.MaxSteps))
	k.backendField(mr.Backend)
	k.intField("runs", int64(mr.Runs))
	k.boolField("makespans", mr.IncludeMakespans)
	return sum()
}

// compareKey is the canonical key of a POST /v1/compare request. The two
// model ids are written to distinct fields, so comparing (A, B) and
// comparing (B, A) — different responses — key differently.
func compareKey(idA, idB string, cr *CompareRequest) string {
	k, sum := newKeyWriter("compare")
	k.field("model_a", idA)
	k.field("model_b", idB)
	k.commonFields(cr.Params, cr.Globals, cr.Seed, cr.Policy)
	k.intField("points", int64(len(cr.Processes)))
	for _, p := range cr.Processes {
		k.intField("p", int64(p))
	}
	return sum()
}
