package server

import (
	"fmt"

	"prophet/internal/estimator"
	"prophet/internal/machine"
	"prophet/internal/obs"
	"prophet/internal/trace"
)

// ModelRef names the model a request evaluates: either a content address
// previously returned by POST /v1/models (or any earlier response), or
// the XMI document itself inline. Exactly one must be set; an inline
// model is stored on arrival, and every response echoes the content
// address so follow-up requests can switch to model_id.
type ModelRef struct {
	ModelID  string `json:"model_id,omitempty"`
	ModelXMI string `json:"model_xmi,omitempty"`
}

// Params mirrors machine.SystemParams on the wire. Omitted or
// non-positive fields default to 1, matching the estimator's "one
// process on one single-processor node" zero value.
type Params struct {
	Nodes             int `json:"nodes,omitempty"`
	ProcessorsPerNode int `json:"processors_per_node,omitempty"`
	Processes         int `json:"processes,omitempty"`
	Threads           int `json:"threads,omitempty"`
}

// toMachine converts to machine.SystemParams, defaulting omitted fields.
func (p *Params) toMachine() machine.SystemParams {
	sp := machine.DefaultParams()
	if p == nil {
		return sp
	}
	if p.Nodes > 0 {
		sp.Nodes = p.Nodes
	}
	if p.ProcessorsPerNode > 0 {
		sp.ProcessorsPerNode = p.ProcessorsPerNode
	}
	if p.Processes > 0 {
		sp.Processes = p.Processes
	}
	if p.Threads > 0 {
		sp.Threads = p.Threads
	}
	return sp
}

// EstimateRequest is the body of POST /v1/estimate.
type EstimateRequest struct {
	ModelRef
	Params  *Params            `json:"params,omitempty"`
	Globals map[string]float64 `json:"globals,omitempty"`
	// Seed drives probabilistic branch selection and distribution
	// sampling. Seed 0 means seed 1 — the one normalization shared by
	// the sim engine, runner.Seeds, and the request key, so seed 0 and
	// seed 1 are the same request.
	Seed int64 `json:"seed,omitempty"`
	// Policy is "fcfs" (default) or "ps" (processor sharing).
	Policy string `json:"policy,omitempty"`
	// MaxSteps bounds element executions per process (0 = default).
	MaxSteps int `json:"max_steps,omitempty"`
	// Backend is "auto" (default), "lowered" (flat lowered program) or
	// "interp" (tree-walking interpreter). Results are bit-identical.
	Backend string `json:"backend,omitempty"`
	// Mode is "simulate" (default), "analytic" (closed-form solver: mean
	// and variance in microseconds, no trace or telemetry) or "auto"
	// (analytic when the model is eligible, simulation otherwise). The
	// mode is part of the request key, so analytic and simulated results
	// never share a cache entry.
	Mode string `json:"mode,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds. 0 means the
	// server's default; values above the server's maximum are clamped.
	// The deadline covers the whole evaluation and is enforced
	// cooperatively inside the simulation, at event granularity.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Summary additionally collects the trace and returns its per-element
	// summary (slower; off by default).
	Summary bool `json:"summary,omitempty"`
	// Telemetry returns simulated-time event counts sampled during the
	// run.
	Telemetry bool `json:"telemetry,omitempty"`
}

// StageSpan is one pipeline stage's wall-clock share of an evaluation.
type StageSpan struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// EstimateResponse is the body of a successful POST /v1/estimate.
// TraceID names the request's span tree (also in the X-Trace-Id header),
// fetchable from GET /v1/traces/{id}; Trace inlines a snapshot of it when
// the request was made with ?trace=1.
type EstimateResponse struct {
	ModelID  string  `json:"model_id"`
	Makespan float64 `json:"makespan"`
	// Analytic marks a closed-form answer (mode "analytic", or "auto"
	// resolved analytically); Variance is its exact makespan variance
	// (0 for deterministic models, omitted for simulated answers).
	Analytic       bool               `json:"analytic,omitempty"`
	Variance       float64            `json:"variance,omitempty"`
	CPUUtilization []float64          `json:"cpu_utilization,omitempty"`
	Globals        map[string]float64 `json:"globals,omitempty"`
	Stages         []StageSpan        `json:"stages,omitempty"`
	Summary        *trace.Summary     `json:"summary,omitempty"`
	EventCounts    map[string]int64   `json:"event_counts,omitempty"`
	TraceID        string             `json:"trace_id,omitempty"`
	Trace          *obs.TraceTree     `json:"trace,omitempty"`
}

// GlobalSweep selects a global-variable sweep: evaluate the model once
// per value of the named global.
type GlobalSweep struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

// SweepRequest is the body of POST /v1/sweep. Exactly one of Processes
// (a process-count scalability sweep) or Global must be set.
type SweepRequest struct {
	EstimateRequest
	Processes []int        `json:"processes,omitempty"`
	Global    *GlobalSweep `json:"global,omitempty"`
}

// SweepPoint is one sample of a process-count sweep.
type SweepPoint struct {
	Processes  int     `json:"processes"`
	Nodes      int     `json:"nodes"`
	Makespan   float64 `json:"makespan"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// GlobalPoint is one sample of a global-variable sweep.
type GlobalPoint struct {
	Value    float64 `json:"value"`
	Makespan float64 `json:"makespan"`
}

// SweepResponse is the body of a successful POST /v1/sweep; exactly one
// of Points or GlobalPoints is populated, matching the request.
type SweepResponse struct {
	ModelID      string         `json:"model_id"`
	Points       []SweepPoint   `json:"points,omitempty"`
	GlobalPoints []GlobalPoint  `json:"global_points,omitempty"`
	TraceID      string         `json:"trace_id,omitempty"`
	Trace        *obs.TraceTree `json:"trace,omitempty"`
}

// MonteCarloRequest is the body of POST /v1/montecarlo: evaluate the
// model across `runs` seeds (derived from seed, seed+1, …, seed 0
// meaning 1) and summarize the makespan distribution.
type MonteCarloRequest struct {
	ModelRef
	Runs    int                `json:"runs"`
	Params  *Params            `json:"params,omitempty"`
	Globals map[string]float64 `json:"globals,omitempty"`
	// Seed is the base of the per-run seed sequence. Seed 0 means seed 1
	// — the one normalization shared by the sim engine, runner.Seeds,
	// and the request key.
	Seed int64 `json:"seed,omitempty"`
	// Policy is "fcfs" (default) or "ps" (processor sharing).
	Policy string `json:"policy,omitempty"`
	// MaxSteps bounds element executions per process (0 = default).
	MaxSteps int `json:"max_steps,omitempty"`
	// Backend is "auto" (default), "lowered" or "interp".
	Backend string `json:"backend,omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds (0 = server
	// default, clamped to the server maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IncludeMakespans additionally returns the raw per-run makespans in
	// run order. This is what the shard fan-out uses to merge sub-ranges
	// deterministically; it is also useful for client-side histograms.
	IncludeMakespans bool `json:"include_makespans,omitempty"`
}

// MonteCarloResponse is the body of a successful POST /v1/montecarlo.
type MonteCarloResponse struct {
	ModelID   string         `json:"model_id"`
	Runs      int            `json:"runs"`
	Mean      float64        `json:"mean"`
	Std       float64        `json:"std"`
	Min       float64        `json:"min"`
	Max       float64        `json:"max"`
	Makespans []float64      `json:"makespans,omitempty"`
	TraceID   string         `json:"trace_id,omitempty"`
	Trace     *obs.TraceTree `json:"trace,omitempty"`
}

// CompareRequest is the body of POST /v1/compare: evaluate two
// alternative designs across process counts and report who wins where.
type CompareRequest struct {
	ModelA    ModelRef           `json:"model_a"`
	ModelB    ModelRef           `json:"model_b"`
	Processes []int              `json:"processes"`
	Params    *Params            `json:"params,omitempty"`
	Globals   map[string]float64 `json:"globals,omitempty"`
	Seed      int64              `json:"seed,omitempty"`
	Policy    string             `json:"policy,omitempty"`
	TimeoutMS int64              `json:"timeout_ms,omitempty"`
}

// ComparePoint is one process count's verdict.
type ComparePoint struct {
	Processes int     `json:"processes"`
	MakespanA float64 `json:"makespan_a"`
	MakespanB float64 `json:"makespan_b"`
	Winner    string  `json:"winner"`
}

// CompareResponse is the body of a successful POST /v1/compare.
type CompareResponse struct {
	ModelAID   string         `json:"model_a_id"`
	ModelBID   string         `json:"model_b_id"`
	NameA      string         `json:"name_a"`
	NameB      string         `json:"name_b"`
	Points     []ComparePoint `json:"points"`
	Crossovers []int          `json:"crossovers,omitempty"`
	TraceID    string         `json:"trace_id,omitempty"`
	Trace      *obs.TraceTree `json:"trace,omitempty"`
}

// ModelResponse is the body of a successful POST /v1/models.
type ModelResponse struct {
	ID   string `json:"id"`
	Name string `json:"name"`
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// traceFields implements evalResponse for the evaluation response
// bodies; the pointers let the bypass path attach trace_id/trace in
// place while cached paths leave both empty.
func (r *EstimateResponse) traceFields() (*string, **obs.TraceTree)   { return &r.TraceID, &r.Trace }
func (r *SweepResponse) traceFields() (*string, **obs.TraceTree)      { return &r.TraceID, &r.Trace }
func (r *MonteCarloResponse) traceFields() (*string, **obs.TraceTree) { return &r.TraceID, &r.Trace }
func (r *CompareResponse) traceFields() (*string, **obs.TraceTree)    { return &r.TraceID, &r.Trace }

// policyOf parses the wire policy name.
func policyOf(s string) (machine.Policy, error) {
	switch s {
	case "", "fcfs":
		return machine.PolicyFCFS, nil
	case "ps":
		return machine.PolicyPS, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want \"fcfs\" or \"ps\")", s)
}

// stagesOf converts recorded spans to wire form.
func stagesOf(est *estimator.Estimate) []StageSpan {
	out := make([]StageSpan, 0, len(est.Stages))
	for _, s := range est.Stages {
		out = append(out, StageSpan{Name: s.Name, Seconds: s.Seconds})
	}
	return out
}
