package server

import (
	"container/list"
	"context"
	"sync"

	"prophet/internal/obs"
)

// cachedResult is one finished evaluation as the wire sees it: the HTTP
// status and the exact response body bytes. Serving a cached result is a
// header write plus one body write — the estimator is never invoked.
type cachedResult struct {
	status int
	body   []byte
}

// resultOutcome labels how the result cache handled a request; it is the
// value of the X-Result-Cache response header and the "outcome" label of
// server_result_cache_total.
const (
	outcomeHit      = "hit"      // served from the stored result
	outcomeMiss     = "miss"     // this request executed the evaluation
	outcomeInflight = "inflight" // coalesced onto an identical in-flight evaluation
	outcomeBypass   = "bypass"   // not cacheable (?trace=1) or cache disabled
)

// flight is one in-flight evaluation that identical concurrent requests
// coalesce onto. The leader closes done exactly once; res is non-nil only
// when the leader finished with a shareable outcome. A nil res tells
// waiters to retry — the leader's failure was its own (its client went
// away, its deadline expired), not a property of the request.
type flight struct {
	done chan struct{}
	res  *cachedResult
	refs int // waiters currently coalesced on this flight (guarded by resultCache.mu)
}

// resultCache is a bounded LRU of canonical-request-key → response plus a
// singleflight table deduplicating identical in-flight work.
//
// The contract:
//
//   - get/store: plain LRU. Only results the evaluation completed (HTTP
//     200) are stored; deterministic client errors (422) are shared with
//     concurrent waiters but never stored, and cancelled or errored
//     evaluations (499/504/5xx) are neither stored nor shared — a dead
//     client's timeout must not poison the cache for a healthy one.
//   - do: at most one evaluation per key runs at a time. The first
//     caller (leader) executes; identical concurrent callers wait —
//     without holding an admission slot — and receive the leader's bytes.
//     One simulation serves N concurrent identical requests.
type resultCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // key → *cacheEntry element
	lru     *list.List               // front = most recently used
	flights map[string]*flight

	outcomes *obs.CounterVec // server_result_cache_total{outcome}
	size     *obs.Gauge      // server_result_cache_entries
}

type cacheEntry struct {
	key string
	res *cachedResult
}

// newResultCache builds a cache bounded to max entries, registering its
// metrics. max must be positive; a Server with caching disabled has a nil
// *resultCache (all methods on which are never called).
func newResultCache(max int, reg *obs.Registry) *resultCache {
	c := &resultCache{
		max:      max,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		flights:  map[string]*flight{},
		outcomes: reg.CounterVec("server_result_cache_total", "outcome"),
		size:     reg.Gauge("server_result_cache_entries"),
	}
	// Materialize every outcome series at 0 so dashboards and hit-rate
	// queries see the counters before the first request.
	for _, o := range []string{outcomeHit, outcomeMiss, outcomeInflight, outcomeBypass} {
		c.outcomes.With(o)
	}
	return c
}

// get returns the stored result for key, refreshing its recency.
func (c *resultCache) get(key string) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// store inserts res under key, evicting the least recently used entry
// beyond the bound. Callers only store complete 200 results.
func (c *resultCache) store(key string, res *cachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, res: res})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.size.Set(float64(c.lru.Len()))
}

// invalidate drops every stored result and lets in-flight evaluations
// finish unshared-from-cache. It exists for operational use (a test
// hook today); content-hash keys mean it is never needed for correctness.
func (c *resultCache) invalidate() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.lru.Init()
	c.size.Set(0)
}

// waiters reports how many requests are currently coalesced behind the
// in-flight evaluation of key, not counting the leader. Test seam.
func (c *resultCache) waiters(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f.refs
	}
	return 0
}

// do serves key through the cache: a stored result returns immediately
// ("hit"); an identical in-flight evaluation is joined ("inflight"); and
// otherwise the calling goroutine runs eval itself ("miss").
//
// eval returns (result, storable, err). A nil error publishes result to
// every waiter — storable additionally stores it for future requests. A
// non-nil error is private to the leader: waiters wake and retry (one
// becomes the next leader), so a leader whose client disconnected or
// deadline expired cannot fail, or poison, anyone else's request. A
// waiter whose own ctx ends while waiting returns ctx's cancellation
// cause with outcome "inflight".
func (c *resultCache) do(ctx context.Context, key string, eval func() (*cachedResult, bool, error)) (*cachedResult, string, error) {
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.lru.MoveToFront(el)
			res := el.Value.(*cacheEntry).res
			c.mu.Unlock()
			c.outcomes.With(outcomeHit).Inc()
			return res, outcomeHit, nil
		}
		if f, ok := c.flights[key]; ok {
			f.refs++
			c.mu.Unlock()
			select {
			case <-f.done:
				c.dropRef(key, f)
				if f.res != nil {
					c.outcomes.With(outcomeInflight).Inc()
					return f.res, outcomeInflight, nil
				}
				// The leader failed privately; try again (next iteration
				// either finds a new flight, the stored result, or leads).
				continue
			case <-ctx.Done():
				c.dropRef(key, f)
				c.outcomes.With(outcomeInflight).Inc()
				return nil, outcomeInflight, context.Cause(ctx)
			}
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.mu.Unlock()

		res, storable, err := eval()
		if err == nil {
			f.res = res
			if storable {
				c.store(key, res)
			}
		}
		c.mu.Lock()
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
		c.outcomes.With(outcomeMiss).Inc()
		return res, outcomeMiss, err
	}
}

// dropRef unregisters a waiter from a flight (which may already be
// resolved and removed from the table).
func (c *resultCache) dropRef(key string, f *flight) {
	c.mu.Lock()
	f.refs--
	c.mu.Unlock()
}

// bypass counts a request the cache could not serve (?trace=1 inline
// trace requests, unhashable models).
func (c *resultCache) bypass() {
	c.outcomes.With(outcomeBypass).Inc()
}
