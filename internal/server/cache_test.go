package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"prophet/internal/obs"
)

// registerModel uploads XMI and returns its content address.
func registerModel(t *testing.T, base, xml string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/models", "application/xml", strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register model: status %d: %s", resp.StatusCode, raw)
	}
	var mr ModelResponse
	decodeInto(t, raw, &mr)
	return mr.ID
}

// estimatorRuns reads the estimator's evaluation counter — the ground
// truth for "the hit path never invokes the estimator".
func estimatorRuns(reg *obs.Registry) int64 {
	return reg.Counter("estimator_runs_total").Value()
}

// A repeated identical request is served from the result cache: same
// bytes, no estimator invocation, X-Result-Cache flipping miss → hit.
func TestResultCacheHitSkipsEstimator(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg, ResultCache: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := EstimateRequest{ModelRef: ModelRef{ModelXMI: sampleXMI(t)}, Seed: 7}
	code, hdr, body := postJSON(t, ts.URL+"/v1/estimate", req)
	if code != http.StatusOK {
		t.Fatalf("cold: status %d: %s", code, body)
	}
	if got := hdr.Get(resultCacheHeader); got != outcomeMiss {
		t.Errorf("cold X-Result-Cache = %q, want %q", got, outcomeMiss)
	}
	runsAfterCold := estimatorRuns(reg)
	if runsAfterCold < 1 {
		t.Fatalf("estimator_runs_total = %d after a cold request", runsAfterCold)
	}

	code2, hdr2, body2 := postJSON(t, ts.URL+"/v1/estimate", req)
	if code2 != http.StatusOK {
		t.Fatalf("hot: status %d: %s", code2, body2)
	}
	if got := hdr2.Get(resultCacheHeader); got != outcomeHit {
		t.Errorf("hot X-Result-Cache = %q, want %q", got, outcomeHit)
	}
	if got := estimatorRuns(reg); got != runsAfterCold {
		t.Errorf("hit path invoked the estimator: runs %d -> %d", runsAfterCold, got)
	}
	if !bytes.Equal(body, body2) {
		t.Errorf("cached body differs from original:\n%s\nvs\n%s", body, body2)
	}
	// Cached bodies must not embed per-request trace ids — the trace id
	// lives in the per-request X-Trace-Id header instead.
	if bytes.Contains(body, []byte("trace_id")) {
		t.Errorf("cacheable body embeds a trace_id: %s", body)
	}
	if hdr.Get("X-Trace-Id") == "" || hdr.Get("X-Trace-Id") == hdr2.Get("X-Trace-Id") {
		t.Error("X-Trace-Id should be present and unique per request")
	}
	// A syntactically different but semantically identical request hits
	// the same entry.
	code3, hdr3, body3 := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		ModelRef: ModelRef{ModelXMI: sampleXMI(t)}, Seed: 7,
		Params: &Params{Nodes: 1, ProcessorsPerNode: 1, Processes: 1, Threads: 1},
		Policy: "fcfs", Backend: "auto", TimeoutMS: 60_000,
	})
	if code3 != http.StatusOK || hdr3.Get(resultCacheHeader) != outcomeHit {
		t.Errorf("normalized request: status %d, X-Result-Cache %q, want 200 hit", code3, hdr3.Get(resultCacheHeader))
	}
	if !bytes.Equal(body, body3) {
		t.Error("normalized request body differs from cached body")
	}
}

// N concurrent identical requests run exactly one simulation: one leader
// misses and evaluates while every other request coalesces onto its
// flight, and all N receive bit-identical bodies.
func TestSingleflightCoalescesIdenticalRequests(t *testing.T) {
	const n = 8
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg, ResultCache: 64, MaxInFlight: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := registerModel(t, ts.URL, sampleXMI(t))
	req := EstimateRequest{ModelRef: ModelRef{ModelID: id}, Seed: 3}
	key := estimateKey(id, &req)

	// The leader parks after taking its admission slot until the other
	// n-1 requests are coalesced behind its flight, guaranteeing true
	// concurrency rather than a lucky sequential schedule.
	s.hookAdmitted = func() {
		deadline := time.Now().Add(10 * time.Second)
		for s.cache.waiters(key) < n-1 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}

	type result struct {
		code    int
		outcome string
		body    []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, hdr, body := postJSON(t, ts.URL+"/v1/estimate", req)
			results[i] = result{code: code, outcome: hdr.Get(resultCacheHeader), body: body}
		}(i)
	}
	wg.Wait()

	outcomes := map[string]int{}
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.code, r.body)
		}
		outcomes[r.outcome]++
		if !bytes.Equal(r.body, results[0].body) {
			t.Errorf("request %d body differs from request 0", i)
		}
	}
	if outcomes[outcomeMiss] != 1 || outcomes[outcomeInflight] != n-1 {
		t.Errorf("outcomes = %v, want 1 %s + %d %s", outcomes, outcomeMiss, n-1, outcomeInflight)
	}
	if got := estimatorRuns(reg); got != 1 {
		t.Errorf("estimator_runs_total = %d for %d concurrent identical requests, want 1", got, n)
	}
}

// InvalidateCache drops stored results: the next identical request
// re-evaluates instead of serving stale bytes.
func TestInvalidateCacheForcesReevaluation(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg, ResultCache: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := EstimateRequest{ModelRef: ModelRef{ModelXMI: sampleXMI(t)}}
	for i, want := range []string{outcomeMiss, outcomeHit} {
		code, hdr, body := postJSON(t, ts.URL+"/v1/estimate", req)
		if code != http.StatusOK || hdr.Get(resultCacheHeader) != want {
			t.Fatalf("request %d: status %d outcome %q, want 200 %s: %s", i, code, hdr.Get(resultCacheHeader), want, body)
		}
	}
	runsBefore := estimatorRuns(reg)

	s.InvalidateCache()
	if got := reg.Gauge("server_result_cache_entries").Value(); got != 0 {
		t.Errorf("server_result_cache_entries = %g after InvalidateCache, want 0", got)
	}
	code, hdr, body := postJSON(t, ts.URL+"/v1/estimate", req)
	if code != http.StatusOK || hdr.Get(resultCacheHeader) != outcomeMiss {
		t.Fatalf("post-invalidate: status %d outcome %q, want 200 miss: %s", code, hdr.Get(resultCacheHeader), body)
	}
	if got := estimatorRuns(reg); got != runsBefore+1 {
		t.Errorf("post-invalidate runs = %d, want %d (a fresh evaluation)", got, runsBefore+1)
	}
}

// Failed evaluations never poison the cache: a request that dies on its
// deadline (504) or whose client disconnects (499) stores nothing, and
// the next identical request evaluates fresh and succeeds.
func TestFailedEvaluationsDoNotPoisonCache(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{Registry: reg, ResultCache: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Slow enough to blow a 1ms deadline, fast enough to finish promptly
	// without one. timeout_ms is not part of the canonical key, so all
	// three requests share one cache entry — which is exactly the hazard.
	xml := slowModelXMI(t, 500_000)
	id := registerModel(t, ts.URL, xml)
	req := EstimateRequest{ModelRef: ModelRef{ModelID: id}, MaxSteps: 20_000_000, TimeoutMS: 1}

	code, _, body := postJSON(t, ts.URL+"/v1/estimate", req)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline request: status %d, want 504: %s", code, body)
	}
	if got := reg.Gauge("server_result_cache_entries").Value(); got != 0 {
		t.Fatalf("a 504 was stored in the result cache (%g entries)", got)
	}

	// Client disconnect mid-evaluation: the server observes 499
	// internally; nothing may be stored or shared.
	cctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	full := req
	full.TimeoutMS = 0
	buf := marshalBody(full)
	hr, err := http.NewRequestWithContext(cctx, http.MethodPost, ts.URL+"/v1/estimate", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(hr); err == nil {
		resp.Body.Close()
		t.Log("client-cancel request completed before the cancel; scenario degraded to a plain success")
	}
	cancel()
	time.Sleep(100 * time.Millisecond) // let the server-side evaluation unwind

	code, hdr, body := postJSON(t, ts.URL+"/v1/estimate", full)
	if code != http.StatusOK {
		t.Fatalf("follow-up request: status %d, want 200: %s", code, body)
	}
	if got := hdr.Get(resultCacheHeader); got == outcomeHit {
		t.Errorf("follow-up served outcome %q from a failed predecessor", got)
	}
}

// Deterministic model errors (422) are shared with concurrent waiters
// but never stored: a later identical request re-fails fresh.
func TestModelErrorsSharedNotStored(t *testing.T) {
	s := New(Config{ResultCache: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A model that exceeds max_steps deterministically fails with 422.
	req := EstimateRequest{ModelRef: ModelRef{ModelXMI: slowModelXMI(t, 1000)}, MaxSteps: 10}
	for i := 0; i < 2; i++ {
		code, hdr, body := postJSON(t, ts.URL+"/v1/estimate", req)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("request %d: status %d, want 422: %s", i, code, body)
		}
		if got := hdr.Get(resultCacheHeader); got != outcomeMiss {
			t.Errorf("request %d: outcome %q, want %s (errors are never stored)", i, got, outcomeMiss)
		}
	}
	if got := cacheEntryCount(s); got != 0 {
		t.Errorf("result cache holds %d entries after only failures", got)
	}
}

func cacheEntryCount(s *Server) int {
	s.cache.mu.Lock()
	defer s.cache.mu.Unlock()
	return len(s.cache.entries)
}

// ?trace=1 responses embed a per-request span tree and therefore bypass
// the cache entirely, even when the same request is already cached.
func TestInlineTraceBypassesCache(t *testing.T) {
	s := New(Config{ResultCache: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := EstimateRequest{ModelRef: ModelRef{ModelXMI: sampleXMI(t)}}
	if code, _, body := postJSON(t, ts.URL+"/v1/estimate", req); code != http.StatusOK {
		t.Fatalf("warm-up: status %d: %s", code, body)
	}
	code, hdr, body := postJSON(t, ts.URL+"/v1/estimate?trace=1", req)
	if code != http.StatusOK {
		t.Fatalf("traced: status %d: %s", code, body)
	}
	if got := hdr.Get(resultCacheHeader); got != outcomeBypass {
		t.Errorf("traced request outcome %q, want %s", got, outcomeBypass)
	}
	if !bytes.Contains(body, []byte("trace_id")) {
		t.Errorf("traced body lacks trace_id: %s", body)
	}
}

// The LRU bound holds: max+1 distinct requests leave max entries, and
// the evicted (oldest) key misses while a recent one still hits.
func TestResultCacheLRUEviction(t *testing.T) {
	const max = 4
	s := New(Config{ResultCache: max})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	xml := sampleXMI(t)
	post := func(seed int64) string {
		t.Helper()
		code, hdr, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
			ModelRef: ModelRef{ModelXMI: xml}, Seed: seed,
		})
		if code != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, code, body)
		}
		return hdr.Get(resultCacheHeader)
	}
	for seed := int64(1); seed <= max+1; seed++ {
		if got := post(seed); got != outcomeMiss {
			t.Fatalf("seed %d first request: outcome %q, want miss", seed, got)
		}
	}
	if got := cacheEntryCount(s); got != max {
		t.Errorf("cache holds %d entries, want %d", got, max)
	}
	if got := post(1); got != outcomeMiss {
		t.Errorf("evicted seed 1: outcome %q, want miss", got)
	}
	if got := post(max + 1); got != outcomeHit {
		t.Errorf("recent seed %d: outcome %q, want hit", max+1, got)
	}
}
