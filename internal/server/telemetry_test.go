package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"prophet/internal/obs"
)

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// spanNames flattens a span tree into its set of span names.
func spanNames(n *obs.SpanNode, into map[string]int) {
	if n == nil {
		return
	}
	into[n.Name]++
	for _, c := range n.Children {
		spanNames(c, into)
	}
}

func TestRequestTraceEndToEnd(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	code, hdr, body := postJSON(t, ts.URL+"/v1/estimate?trace=1", EstimateRequest{
		ModelRef: ModelRef{ModelXMI: sampleXMI(t)},
	})
	if code != http.StatusOK {
		t.Fatalf("estimate: status %d: %s", code, body)
	}
	var er EstimateResponse
	decodeInto(t, body, &er)
	if er.TraceID == "" {
		t.Fatal("response has no trace_id")
	}
	if hdr.Get("X-Trace-Id") != er.TraceID {
		t.Fatalf("X-Trace-Id = %q, body trace_id = %q", hdr.Get("X-Trace-Id"), er.TraceID)
	}
	if er.Trace == nil || er.Trace.Root == nil {
		t.Fatal("?trace=1 returned no inline span tree")
	}
	if er.Trace.Root.Name != "request" {
		t.Fatalf("inline root = %q", er.Trace.Root.Name)
	}

	// The completed tree is fetchable by ID after the response.
	code, body = getBody(t, ts.URL+"/v1/traces/"+er.TraceID)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/traces/{id}: status %d: %s", code, body)
	}
	var tree obs.TraceTree
	decodeInto(t, body, &tree)
	if tree.TraceID != er.TraceID {
		t.Fatalf("fetched trace %q, want %q", tree.TraceID, er.TraceID)
	}
	root := tree.Root
	if root.Unfinished {
		t.Fatal("fetched root span still unfinished")
	}
	if root.Attrs["route"] != "estimate" || root.Attrs["status"] != "200" {
		t.Fatalf("root attrs = %v", root.Attrs)
	}

	// Every pipeline stage shows up, and direct children sum within the
	// request wall time.
	names := map[string]int{}
	spanNames(root, names)
	for _, want := range []string{"parse", "admission", "check", "compile", "simulate", "sim"} {
		if names[want] == 0 {
			t.Errorf("span %q missing from tree %v", want, names)
		}
	}
	var sum float64
	for _, c := range root.Children {
		sum += c.Seconds
	}
	if sum > root.Seconds {
		t.Errorf("children sum %g exceeds root wall time %g", sum, root.Seconds)
	}
}

func TestTraceCacheAnnotations(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	xml := sampleXMI(t)
	var ids [2]string
	for i := range ids {
		code, hdr, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
			ModelRef: ModelRef{ModelXMI: xml},
		})
		if code != http.StatusOK {
			t.Fatalf("estimate %d: status %d: %s", i, code, body)
		}
		ids[i] = hdr.Get("X-Trace-Id")
	}
	// First request compiled (cache=miss), second hit the program cache.
	want := [2]string{"miss", "hit"}
	for i, id := range ids {
		_, body := getBody(t, ts.URL+"/v1/traces/"+id)
		var tree obs.TraceTree
		decodeInto(t, body, &tree)
		found := ""
		for _, c := range tree.Root.Children {
			if c.Name == "compile" {
				found = c.Attrs["cache"]
			}
		}
		if found != want[i] {
			t.Errorf("request %d compile cache = %q, want %q", i, found, want[i])
		}
	}
}

func TestTracesListAndNotFound(t *testing.T) {
	srv := New(Config{TraceRingSize: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, body := getBody(t, ts.URL+"/v1/traces/deadbeef")
	if code != http.StatusNotFound {
		t.Fatalf("unknown trace: status %d: %s", code, body)
	}

	xml := sampleXMI(t)
	var last string
	for i := 0; i < 3; i++ {
		_, hdr, _ := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{ModelRef: ModelRef{ModelXMI: xml}})
		last = hdr.Get("X-Trace-Id")
	}
	code, body = getBody(t, ts.URL+"/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	var list TracesResponse
	decodeInto(t, body, &list)
	// Ring size 2: the oldest of the three was evicted; newest first.
	if len(list.Traces) != 2 {
		t.Fatalf("listed %d traces, want 2", len(list.Traces))
	}
	if list.Traces[0].TraceID != last {
		t.Fatalf("newest trace = %q, want %q", list.Traces[0].TraceID, last)
	}
	if list.Traces[0].Route != "estimate" || list.Traces[0].Spans == 0 {
		t.Fatalf("bad summary: %+v", list.Traces[0])
	}
}

func TestTraceChromeExport(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	_, hdr, _ := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{ModelRef: ModelRef{ModelXMI: sampleXMI(t)}})
	id := hdr.Get("X-Trace-Id")

	code, body := getBody(t, ts.URL+"/v1/traces/"+id+"?format=chrome")
	if code != http.StatusOK {
		t.Fatalf("chrome export: status %d: %s", code, body)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	decodeInto(t, body, &doc)
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	if code, _ := getBody(t, ts.URL+"/v1/traces/"+id+"?format=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus format: status %d, want 400", code)
	}
}

func TestMetricsPrometheusFormat(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{ModelRef: ModelRef{ModelXMI: sampleXMI(t)}})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE http_request_seconds histogram",
		`http_request_seconds_bucket{route="estimate",le="+Inf"} 1`,
		`http_request_seconds_count{route="estimate"} 1`,
		"# TYPE estimate_stage_seconds histogram",
		`estimate_stage_seconds_bucket{stage="simulate",le="+Inf"} 1`,
		"# HELP server_rejected_total",
		`server_rejected_total{reason="queue_full"} 0`,
		`server_rejected_total{reason="queue_timeout"} 0`,
		"# TYPE go_goroutines gauge",
		"go_heap_alloc_bytes",
		"go_gc_pause_seconds_total",
		"server_uptime_seconds",
		"server_traces_stored 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Family headers must not repeat per labeled child.
	if n := strings.Count(text, "# TYPE http_requests_total "); n != 1 {
		t.Errorf("http_requests_total TYPE header appears %d times", n)
	}
}

func TestStructuredRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	ts := httptest.NewServer(New(Config{Logger: logger}).Handler())
	defer ts.Close()

	_, hdr, _ := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{ModelRef: ModelRef{ModelXMI: sampleXMI(t)}})
	id := hdr.Get("X-Trace-Id")

	var line map[string]any
	found := false
	for _, raw := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if len(raw) == 0 {
			continue
		}
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("log line is not JSON: %s", raw)
		}
		if line["route"] == "estimate" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no estimate request line in log: %s", buf.String())
	}
	if line["trace_id"] != id {
		t.Errorf("log trace_id = %v, want %q", line["trace_id"], id)
	}
	if line["status"] != float64(200) || line["method"] != "POST" {
		t.Errorf("bad log line: %v", line)
	}
	if _, ok := line["seconds"]; !ok {
		t.Errorf("log line has no duration: %v", line)
	}
}

// Healthz polls log at Debug only: an Info-level logger stays quiet.
func TestQuietRoutesNotLoggedAtInfo(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil)) // Info level
	ts := httptest.NewServer(New(Config{Logger: logger}).Handler())
	defer ts.Close()
	getBody(t, ts.URL+"/healthz")
	getBody(t, ts.URL+"/metrics")
	if buf.Len() != 0 {
		t.Fatalf("quiet routes logged at info: %s", buf.String())
	}
}
