package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"prophet/internal/estimator"
	"prophet/internal/obs"
	"prophet/internal/runner"
	"prophet/internal/uml"
	"prophet/internal/xmi"
)

// localShardHeader marks a request as a shard sub-job: the receiving
// prophetd executes it in-process, never re-decomposing it across its own
// worker pool, so a mesh of mutually-configured coordinators cannot
// recurse.
const localShardHeader = "X-Prophet-Local"

// upstreamError is a shard sub-job failure reported by a worker. Client
// errors (4xx) are reproduced verbatim at the coordinator — the model is
// as broken on one node as on eight — while worker/transport failures
// surface as 502, naming the worker.
type upstreamError struct {
	Worker string
	Status int // 0 for transport errors
	Msg    string
}

func (u *upstreamError) Error() string {
	if u.Status == 0 {
		return fmt.Sprintf("worker %s: %s", u.Worker, u.Msg)
	}
	return fmt.Sprintf("worker %s: %d: %s", u.Worker, u.Status, u.Msg)
}

// hashRing is a consistent-hash ring over the worker pool. Each worker
// owns ringVnodes points on a uint64 circle; a job key hashes to a point
// and is routed to the next worker clockwise. Routing is a pure function
// of (worker set, key): every coordinator with the same -workers list
// routes the same sub-range of the same model to the same worker, which
// is what gives workers result-cache and compile-cache affinity for the
// shards they own.
type hashRing struct {
	points []ringPoint
}

type ringPoint struct {
	hash   uint64
	worker int
}

const ringVnodes = 64

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

func newHashRing(workers []string) *hashRing {
	r := &hashRing{points: make([]ringPoint, 0, len(workers)*ringVnodes)}
	for wi, w := range workers {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(w + "#" + strconv.Itoa(v)), worker: wi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker
	})
	return r
}

// pick routes a job key to a worker index.
func (r *hashRing) pick(key string) int {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].worker
}

// shardPool fans sweep and Monte Carlo sub-ranges out across a set of
// prophetd workers. The coordinator decomposes the range with
// runner.Split, routes each sub-range by consistent hash on (model hash,
// sub-range index), executes the sub-jobs concurrently through
// runner.Map — whose index-ordered merge and lowest-index error rule keep
// the fan-out deterministic — and re-derives any cross-point statistics
// over the merged slice. Workers evaluate sub-jobs with their local
// estimator (the localShardHeader pins them to in-process execution), so
// results are bit-identical to a single node evaluating the whole range:
// the same seeds, in the same order, folded by the same code.
type shardPool struct {
	workers []string
	ring    *hashRing
	client  *http.Client
	jobs    *obs.CounterVec // server_shard_jobs_total{worker}
	errs    *obs.CounterVec // server_shard_errors_total{worker}
}

func newShardPool(workers []string, reg *obs.Registry) *shardPool {
	p := &shardPool{
		workers: workers,
		ring:    newHashRing(workers),
		// Transport-level sanity timeouts; the per-job deadline rides the
		// request context.
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}},
		jobs: reg.CounterVec("server_shard_jobs_total", "worker"),
		errs: reg.CounterVec("server_shard_errors_total", "worker"),
	}
	reg.Gauge("server_shard_workers").Set(float64(len(workers)))
	return p
}

// parts is how many sub-ranges an n-point range decomposes into: one per
// worker, capped at n (Split never returns empty ranges).
func (p *shardPool) parts(n int) int {
	if len(p.workers) < n {
		return len(p.workers)
	}
	return n
}

// timeoutMSLeft converts ctx's remaining deadline budget to the
// timeout_ms a sub-request carries, so a worker never keeps evaluating a
// shard whose coordinator has already given up.
func timeoutMSLeft(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// post sends one JSON sub-request to a worker and decodes the response
// into out. A 404 — the worker does not have the model yet — uploads the
// model's XMI (lazily encoded once per fan-out by the caller) and retries
// once; routing affinity makes re-uploads rare after warm-up.
func (p *shardPool) post(ctx context.Context, worker int, path string, body any, xmiOf func() (string, error), out any) error {
	w := p.workers[worker]
	p.jobs.With(w).Inc()
	status, raw, err := p.roundTrip(ctx, w, path, body)
	if err != nil {
		p.errs.With(w).Inc()
		return &upstreamError{Worker: w, Msg: err.Error()}
	}
	if status == http.StatusNotFound && xmiOf != nil {
		xml, err := xmiOf()
		if err != nil {
			return fmt.Errorf("server: encode model for shard upload: %w", err)
		}
		if err := p.uploadModel(ctx, w, xml); err != nil {
			p.errs.With(w).Inc()
			return err
		}
		status, raw, err = p.roundTrip(ctx, w, path, body)
		if err != nil {
			p.errs.With(w).Inc()
			return &upstreamError{Worker: w, Msg: err.Error()}
		}
	}
	if status != http.StatusOK {
		p.errs.With(w).Inc()
		var er ErrorResponse
		msg := string(raw)
		if json.Unmarshal(raw, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &upstreamError{Worker: w, Status: status, Msg: msg}
	}
	if err := json.Unmarshal(raw, out); err != nil {
		p.errs.With(w).Inc()
		return &upstreamError{Worker: w, Msg: fmt.Sprintf("bad response: %v", err)}
	}
	return nil
}

func (p *shardPool) roundTrip(ctx context.Context, worker, path string, body any) (int, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+path, bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(localShardHeader, "1")
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, raw, nil
}

func (p *shardPool) uploadModel(ctx context.Context, worker, xml string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/models", strings.NewReader(xml))
	if err != nil {
		return &upstreamError{Worker: worker, Msg: err.Error()}
	}
	req.Header.Set("Content-Type", "application/xml")
	resp, err := p.client.Do(req)
	if err != nil {
		return &upstreamError{Worker: worker, Msg: err.Error()}
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return &upstreamError{Worker: worker, Status: resp.StatusCode, Msg: "model upload: " + string(raw)}
	}
	return nil
}

// shardOpts builds the runner options of one fan-out: every sub-job in
// flight at once (they are I/O-bound HTTP calls), merged in index order.
func shardOpts(n int) runner.Options {
	return runner.Options{Workers: n, Label: "shard"}
}

// jobKey is the consistent-hash routing key of one sub-range: the model's
// content hash plus the sub-range index.
func jobKey(modelID string, index int) string {
	return modelID + "#" + strconv.Itoa(index)
}

// isShardJob reports whether the request is a sub-job dispatched by
// another prophetd's shard coordinator; such requests always evaluate
// locally.
func isShardJob(r *http.Request) bool {
	return r.Header.Get(localShardHeader) != ""
}

// lazyXMI encodes a model back to canonical XMI at most once per
// fan-out, and only if some worker turns out not to have it.
func lazyXMI(m *uml.Model) func() (string, error) {
	var once sync.Once
	var xml string
	var err error
	return func() (string, error) {
		once.Do(func() { xml, err = xmi.EncodeString(m) })
		return xml, err
	}
}

// shardSweep evaluates a sweep by decomposing its point range across the
// worker pool and merging the sub-range results in range order. Shard-
// local speedup/efficiency are relative to the wrong first point, so the
// coordinator re-derives them over the merged slice with the estimator's
// own derivation — the same float operations a single node applies.
func (s *Server) shardSweep(ctx context.Context, id string, m *uml.Model, sr *SweepRequest) (*SweepResponse, error) {
	xmiOf := lazyXMI(m)
	timeout := timeoutMSLeft(ctx)
	resp := &SweepResponse{ModelID: id}
	if len(sr.Processes) > 0 {
		ranges := runner.Split(len(sr.Processes), s.pool.parts(len(sr.Processes)))
		subs, err := runner.Map(ctx, len(ranges), shardOpts(len(ranges)),
			func(ctx context.Context, i int) ([]SweepPoint, error) {
				sub := *sr
				sub.ModelRef = ModelRef{ModelID: id}
				sub.TimeoutMS = timeout
				sub.Processes = sr.Processes[ranges[i].Lo:ranges[i].Hi]
				var sresp SweepResponse
				err := s.pool.post(ctx, s.pool.ring.pick(jobKey(id, i)), "/v1/sweep", &sub, xmiOf, &sresp)
				return sresp.Points, err
			})
		if err != nil {
			return nil, err
		}
		merged := make([]estimator.SweepPoint, 0, len(sr.Processes))
		for _, pts := range subs {
			for _, p := range pts {
				merged = append(merged, estimator.SweepPoint(p))
			}
		}
		estimator.DeriveSweepStats(merged)
		for _, p := range merged {
			resp.Points = append(resp.Points, SweepPoint(p))
		}
		return resp, nil
	}
	ranges := runner.Split(len(sr.Global.Values), s.pool.parts(len(sr.Global.Values)))
	subs, err := runner.Map(ctx, len(ranges), shardOpts(len(ranges)),
		func(ctx context.Context, i int) ([]GlobalPoint, error) {
			sub := *sr
			sub.ModelRef = ModelRef{ModelID: id}
			sub.TimeoutMS = timeout
			sub.Global = &GlobalSweep{Name: sr.Global.Name, Values: sr.Global.Values[ranges[i].Lo:ranges[i].Hi]}
			var sresp SweepResponse
			err := s.pool.post(ctx, s.pool.ring.pick(jobKey(id, i)), "/v1/sweep", &sub, xmiOf, &sresp)
			return sresp.GlobalPoints, err
		})
	if err != nil {
		return nil, err
	}
	for _, pts := range subs {
		resp.GlobalPoints = append(resp.GlobalPoints, pts...)
	}
	return resp, nil
}

// shardMonteCarlo evaluates a Monte Carlo batch by decomposing the run
// range across the worker pool: shard i evaluates ranges[i].Len() runs
// with seed base runner.SubSeed(seed, ranges[i].Lo) and returns its raw
// makespans, which the coordinator concatenates in range order — exactly
// the seed-to-run mapping of a single node, ready for one shared
// SummarizeMakespans fold.
func (s *Server) shardMonteCarlo(ctx context.Context, id string, m *uml.Model, mr *MonteCarloRequest) ([]float64, error) {
	xmiOf := lazyXMI(m)
	timeout := timeoutMSLeft(ctx)
	ranges := runner.Split(mr.Runs, s.pool.parts(mr.Runs))
	subs, err := runner.Map(ctx, len(ranges), shardOpts(len(ranges)),
		func(ctx context.Context, i int) ([]float64, error) {
			sub := *mr
			sub.ModelRef = ModelRef{ModelID: id}
			sub.TimeoutMS = timeout
			sub.Runs = ranges[i].Len()
			sub.Seed = runner.SubSeed(mr.Seed, ranges[i].Lo)
			sub.IncludeMakespans = true
			wi := s.pool.ring.pick(jobKey(id, i))
			var sresp MonteCarloResponse
			if err := s.pool.post(ctx, wi, "/v1/montecarlo", &sub, xmiOf, &sresp); err != nil {
				return nil, err
			}
			if len(sresp.Makespans) != sub.Runs {
				return nil, &upstreamError{Worker: s.pool.workers[wi],
					Msg: fmt.Sprintf("shard returned %d makespans, want %d", len(sresp.Makespans), sub.Runs)}
			}
			return sresp.Makespans, nil
		})
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, mr.Runs)
	for _, ms := range subs {
		out = append(out, ms...)
	}
	return out, nil
}
