package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"prophet/internal/builder"
	"prophet/internal/estimator"
	"prophet/internal/machine"
	"prophet/internal/samples"
	"prophet/internal/xmi"
)

func sampleXMI(t *testing.T) string {
	t.Helper()
	s, err := xmi.EncodeString(samples.Sample())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// slowModelXMI encodes a model that runs `iters` tiny hold events —
// slow enough to outlive a short deadline.
func slowModelXMI(t *testing.T, iters int) string {
	t.Helper()
	b := builder.New("slow")
	b.Function("F", nil, "0.001")
	d := b.Diagram("main") // first diagram added becomes the main one
	d.Initial()
	d.Loop("L", strconv.Itoa(iters), "body")
	d.Final()
	d.Chain("initial", "L", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("W").Cost("F()")
	body.Final()
	body.Chain("initial", "W", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s, err := xmi.EncodeString(m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

func decodeInto(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("bad response %q: %v", data, err)
	}
}

func TestEstimateInlineXMI(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		ModelRef: ModelRef{ModelXMI: sampleXMI(t)},
		Params:   &Params{Nodes: 1, ProcessorsPerNode: 2, Processes: 4},
		Summary:  true,
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var er EstimateResponse
	decodeInto(t, body, &er)
	if !strings.HasPrefix(er.ModelID, xmi.HashPrefix) {
		t.Errorf("model_id %q is not a content address", er.ModelID)
	}
	// The service must agree exactly with a direct estimator run.
	want, err := estimator.New().Estimate(estimator.Request{
		Model:  samples.Sample(),
		Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 2, Processes: 4, Threads: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if er.Makespan != want.Makespan {
		t.Errorf("makespan over HTTP %g, direct %g", er.Makespan, want.Makespan)
	}
	if er.Summary == nil {
		t.Error("summary requested but absent")
	}
}

func TestModelStoreFlow(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/models", "application/xml",
		strings.NewReader(sampleXMI(t)))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: status %d: %s", resp.StatusCode, raw)
	}
	var mr ModelResponse
	decodeInto(t, raw, &mr)
	if !strings.HasPrefix(mr.ID, xmi.HashPrefix) || mr.Name != "sample" {
		t.Fatalf("unexpected registration %+v", mr)
	}

	code, _, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		ModelRef: ModelRef{ModelID: mr.ID},
	})
	if code != http.StatusOK {
		t.Fatalf("estimate by id: status %d: %s", code, body)
	}
	var er EstimateResponse
	decodeInto(t, body, &er)
	if er.ModelID != mr.ID {
		t.Errorf("response echoes %q, want %q", er.ModelID, mr.ID)
	}
	if er.Makespan <= 0 || math.IsNaN(er.Makespan) {
		t.Errorf("makespan = %g", er.Makespan)
	}

	code, _, body = postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		ModelRef: ModelRef{ModelID: "sha256:deadbeef"},
	})
	if code != http.StatusNotFound {
		t.Errorf("unknown model: status %d, want 404: %s", code, body)
	}
}

// mode=analytic over the wire: the response carries the analytic flag
// and the same makespan a simulate request computes for a deterministic
// model, and the two modes occupy distinct cache keys.
func TestEstimateModeAnalytic(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	xml := sampleXMI(t)
	code, _, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		ModelRef: ModelRef{ModelXMI: xml},
		Mode:     "analytic",
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var ar EstimateResponse
	decodeInto(t, body, &ar)
	if !ar.Analytic {
		t.Error("analytic flag absent from response")
	}
	code, _, body = postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		ModelRef: ModelRef{ModelXMI: xml},
	})
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var sr EstimateResponse
	decodeInto(t, body, &sr)
	if sr.Analytic {
		t.Error("simulate response wrongly flagged analytic")
	}
	if ar.Makespan != sr.Makespan {
		t.Errorf("analytic %g != simulated %g on a deterministic model", ar.Makespan, sr.Makespan)
	}
	// Out of the closed-form class (multi-process) under strict analytic
	// mode: the model/mode combination is the client's problem, 422.
	code, _, body = postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		ModelRef: ModelRef{ModelXMI: xml},
		Mode:     "analytic",
		Params:   &Params{Processes: 4},
	})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("out-of-class analytic request: status %d, want 422: %s", code, body)
	}
}

func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	xml := sampleXMI(t)
	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed json", `{"model_xmi": `, 400},
		{"unknown field", `{"modelxmi": "x"}`, 400},
		{"no model", `{}`, 400},
		{"both refs", `{"model_id": "sha256:x", "model_xmi": "<xml/>"}`, 400},
		{"bad xmi", `{"model_xmi": "not xml"}`, 400},
		{"bad policy", `{"model_xmi": ` + strconv.Quote(xml) + `, "policy": "lifo"}`, 400},
		{"bad mode", `{"model_xmi": ` + strconv.Quote(xml) + `, "mode": "quantum"}`, 400},
		{"trailing garbage", `{"model_xmi": ` + strconv.Quote(xml) + `} {}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/estimate", "application/json",
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			var er ErrorResponse
			decodeInto(t, body, &er)
			if er.Error == "" {
				t.Error("error response has no error message")
			}
		})
	}
}

func TestSweepValidation(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	xml := sampleXMI(t)
	// Neither processes nor global.
	code, _, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		EstimateRequest: EstimateRequest{ModelRef: ModelRef{ModelXMI: xml}},
	})
	if code != http.StatusBadRequest {
		t.Errorf("empty sweep: status %d, want 400: %s", code, body)
	}
	// A real process sweep works and returns one point per count.
	code, _, body = postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		EstimateRequest: EstimateRequest{ModelRef: ModelRef{ModelXMI: xml}},
		Processes:       []int{1, 2, 4},
	})
	if code != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", code, body)
	}
	var sr SweepResponse
	decodeInto(t, body, &sr)
	if len(sr.Points) != 3 {
		t.Errorf("%d points, want 3", len(sr.Points))
	}
}

func TestCompareEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	a, err := xmi.EncodeString(samples.Kernel6())
	if err != nil {
		t.Fatal(err)
	}
	b, err := xmi.EncodeString(samples.Kernel6Detailed())
	if err != nil {
		t.Fatal(err)
	}
	code, _, body := postJSON(t, ts.URL+"/v1/compare", CompareRequest{
		ModelA:    ModelRef{ModelXMI: a},
		ModelB:    ModelRef{ModelXMI: b},
		Processes: []int{1, 2},
		Globals:   map[string]float64{"N": 100, "M": 4, "c": 1e-9},
	})
	if code != http.StatusOK {
		t.Fatalf("compare: status %d: %s", code, body)
	}
	var cr CompareResponse
	decodeInto(t, body, &cr)
	if len(cr.Points) != 2 || cr.NameA == "" || cr.NameB == "" {
		t.Errorf("unexpected compare response %+v", cr)
	}
}

// A saturating burst must be shed with 503 + Retry-After, not queued
// unboundedly: with one slot, no queue, and the slot held open, the
// next request is rejected immediately.
func TestSaturationSheds503(t *testing.T) {
	srv := New(Config{MaxInFlight: 1, MaxQueue: -1, QueueWait: 50 * time.Millisecond})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.hookAdmitted = func() {
		select {
		case entered <- struct{}{}:
			<-release // first admitted request parks here, slot held
		default:
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	xml := sampleXMI(t)

	done := make(chan int, 1)
	go func() {
		code, _, _ := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
			ModelRef: ModelRef{ModelXMI: xml},
		})
		done <- code
	}()
	<-entered // the slot is now held

	code, hdr, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		ModelRef: ModelRef{ModelXMI: xml},
	})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated: status %d, want 503: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	close(release)
	if got := <-done; got != http.StatusOK {
		t.Errorf("held request finished with %d, want 200", got)
	}
}

// With a queue, a waiter that cannot get a slot within QueueWait is shed
// — and the queue bound itself is strict.
func TestQueueWaitTimeout(t *testing.T) {
	srv := New(Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 50 * time.Millisecond})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.hookAdmitted = func() {
		select {
		case entered <- struct{}{}:
			<-release
		default:
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	xml := sampleXMI(t)

	done := make(chan int, 1)
	go func() {
		code, _, _ := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
			ModelRef: ModelRef{ModelXMI: xml},
		})
		done <- code
	}()
	<-entered

	start := time.Now()
	code, hdr, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		ModelRef: ModelRef{ModelXMI: xml},
	})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("queued past QueueWait: status %d: %s", code, body)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("queue timeout took %v", d)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	close(release)
	<-done
}

// A deadline that expires mid-simulation surfaces as 504, promptly —
// the simulation is interrupted at event granularity, it does not run
// to completion first.
func TestDeadlineMidSimulation504(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	start := time.Now()
	code, _, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		ModelRef:  ModelRef{ModelXMI: slowModelXMI(t, 20_000_000)},
		TimeoutMS: 50,
		MaxSteps:  200_000_000,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, body)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("deadline surfaced after %v; the run was not interrupted", d)
	}
	var er ErrorResponse
	decodeInto(t, body, &er)
	if !strings.Contains(er.Error, "deadline") {
		t.Errorf("504 body does not name the deadline: %q", er.Error)
	}
}

// A model that fails checking or flow-errors at runtime is the client's
// problem: 422, not 500.
func TestUnprocessableModel(t *testing.T) {
	b := builder.New("flowerr")
	b.Global("GV", "double")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("dec")
	d.Action("A")
	d.Final()
	d.Flow("initial", "dec").
		FlowIf("dec", "A", "GV > 0"). // GV stays 0: no viable branch
		Flow("A", "final")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	xml, err := xmi.EncodeString(m)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	code, _, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		ModelRef: ModelRef{ModelXMI: xml},
	})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("flow error: status %d, want 422: %s", code, body)
	}
}

func TestDrainShedsAndFlipsHealth(t *testing.T) {
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy server reports %d", resp.StatusCode)
	}

	srv.Drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: status %d, want 503: %s", resp.StatusCode, body)
	}

	code, hdr, body2 := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
		ModelRef: ModelRef{ModelXMI: sampleXMI(t)},
	})
	if code != http.StatusServiceUnavailable {
		t.Errorf("draining estimate: status %d, want 503: %s", code, body2)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("drain shed without Retry-After")
	}
}

// SIGTERM handling in prophetd is http.Server.Shutdown after Drain: new
// work is shed but admitted evaluations run to completion.
func TestGracefulShutdownCompletesInflight(t *testing.T) {
	srv := New(Config{})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	srv.hookAdmitted = func() {
		select {
		case entered <- struct{}{}:
			<-release
		default:
		}
	}
	ts := httptest.NewServer(srv.Handler())
	xml := sampleXMI(t)

	done := make(chan int, 1)
	go func() {
		code, _, _ := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
			ModelRef: ModelRef{ModelXMI: xml},
		})
		done <- code
	}()
	<-entered

	shutdown := make(chan error, 1)
	go func() {
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdown <- ts.Config.Shutdown(ctx)
	}()

	// Let the drain begin, then release the in-flight evaluation.
	time.Sleep(50 * time.Millisecond)
	close(release)

	if got := <-done; got != http.StatusOK {
		t.Errorf("in-flight request finished with %d during shutdown, want 200", got)
	}
	if err := <-shutdown; err != nil {
		t.Errorf("shutdown did not complete cleanly: %v", err)
	}
}

func TestMetricsExposed(t *testing.T) {
	ts := httptest.NewServer(New(Config{}).Handler())
	defer ts.Close()
	xml := sampleXMI(t)
	for i := 0; i < 2; i++ { // miss then hit
		code, _, body := postJSON(t, ts.URL+"/v1/estimate", EstimateRequest{
			ModelRef: ModelRef{ModelXMI: xml},
		})
		if code != http.StatusOK {
			t.Fatalf("estimate %d: status %d: %s", i, code, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"estimator_cache_hits_total 1",
		"estimator_cache_misses_total 1",
		"server_queue_depth",
		"server_inflight",
		"model_store_models 1",
		`http_requests_total{route="estimate",code="200"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// The zero Config is fully defaulted — a smoke check that New(Config{})
// is safe to serve.
func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.MaxInFlight <= 0 || cfg.MaxQueue <= 0 || cfg.QueueWait <= 0 ||
		cfg.DefaultTimeout <= 0 || cfg.MaxTimeout <= 0 || cfg.MaxBodyBytes <= 0 ||
		cfg.MaxModels <= 0 || cfg.Registry == nil || cfg.Estimator == nil {
		t.Errorf("withDefaults left zero fields: %+v", cfg)
	}
	if cfg2 := (Config{MaxQueue: -1}).withDefaults(); cfg2.MaxQueue != 0 {
		t.Errorf("MaxQueue -1 should mean no queue, got %d", cfg2.MaxQueue)
	}
}
