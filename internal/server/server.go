// Package server is prophetd's HTTP serving layer: a hardened front-end
// over the Performance Estimator that turns one-shot batch evaluation
// into a long-running estimation service.
//
// The contract it adds on top of the estimator:
//
//   - per-request deadlines, enforced cooperatively inside the simulation
//     at event granularity (interp.Config.Context), so a request whose
//     deadline expires mid-run returns promptly with a context error
//   - admission control: a bounded number of in-flight evaluations plus a
//     bounded wait queue; beyond that, requests are shed with
//     503 + Retry-After instead of queueing unboundedly
//   - a content-addressed model store (POST /v1/models) whose ids are
//     canonical-XMI content hashes — the same keys the estimator's
//     compiled-program cache uses, so repeated requests for the same
//     model content compile once
//   - graceful drain: Drain() flips /healthz to 503 and rejects new
//     evaluations while in-flight work completes (cmd/prophetd wires
//     this to SIGTERM via http.Server.Shutdown)
//   - observability: request counters, latency histograms, queue-depth
//     and in-flight gauges, and the estimator's cache hit/miss counters,
//     all served from /metrics in the obs text format
//
// See docs/SERVING.md for the full API reference.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"prophet/internal/estimator"
	"prophet/internal/obs"
	"prophet/internal/sim"
	"prophet/internal/uml"
	"prophet/internal/xmi"
)

// Config parameterizes a Server. The zero value serves with sensible
// defaults (see withDefaults).
type Config struct {
	// MaxInFlight bounds concurrently running evaluations
	// (0 = GOMAXPROCS). Each evaluation is single-threaded, so this is
	// also the CPU bound.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an evaluation slot
	// (0 = 2*MaxInFlight). Negative means no queue: saturation rejects
	// immediately.
	MaxQueue int
	// QueueWait bounds how long a request may wait for a slot before
	// being shed (0 = 2s).
	QueueWait time.Duration
	// DefaultTimeout is the per-request evaluation deadline applied when
	// the request doesn't carry timeout_ms (0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested deadlines (0 = 5m).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// MaxModels bounds the content-addressed model store; beyond it the
	// oldest models are evicted (0 = 1024).
	MaxModels int
	// Registry receives the server's metrics (nil = a fresh registry).
	Registry *obs.Registry
	// Estimator evaluates requests (nil = estimator.New()).
	Estimator *estimator.Estimator
	// Logger receives one structured line per request, each carrying the
	// request's trace ID (nil = discard).
	Logger *slog.Logger
	// TraceRingSize bounds the recent request traces retained for
	// GET /v1/traces/{id} (0 = 256).
	TraceRingSize int
	// ResultCache bounds the canonical-request-key result cache, in
	// entries. 0 (the zero value) disables the cache and the singleflight
	// dedup with it; cmd/prophetd enables it by default (-result-cache).
	ResultCache int
	// Workers lists prophetd base URLs ("http://host:port") to fan sweep
	// and Monte Carlo sub-ranges across. Empty means every evaluation
	// runs in-process.
	Workers []string
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	switch {
	case c.MaxQueue == 0:
		c.MaxQueue = 2 * c.MaxInFlight
	case c.MaxQueue < 0:
		c.MaxQueue = 0
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxModels <= 0 {
		c.MaxModels = 1024
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	if c.Estimator == nil {
		c.Estimator = estimator.New()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the estimation service. Create with New, mount via Handler.
type Server struct {
	cfg      Config
	est      *estimator.Estimator
	reg      *obs.Registry
	store    *modelStore
	adm      *admission
	cache    *resultCache // nil when Config.ResultCache is 0
	pool     *shardPool   // nil when Config.Workers is empty
	mux      *http.ServeMux
	log      *slog.Logger
	traces   *obs.TraceRing
	start    time.Time
	draining atomic.Bool

	// requests/latency instrument every route.
	requests *obs.CounterVec
	latency  *obs.HistogramVec

	// hookAdmitted, when non-nil, runs after a request is admitted and
	// before it evaluates — a test seam for holding a slot open.
	hookAdmitted func()
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:    cfg,
		est:    cfg.Estimator,
		reg:    cfg.Registry,
		store:  newModelStore(cfg.MaxModels, cfg.Registry.Gauge("model_store_models")),
		adm:    newAdmission(cfg.MaxInFlight, cfg.MaxQueue, cfg.QueueWait, cfg.Registry),
		mux:    http.NewServeMux(),
		log:    cfg.Logger,
		traces: obs.NewTraceRing(cfg.TraceRingSize),
		start:  time.Now(),
	}
	if cfg.ResultCache > 0 {
		s.cache = newResultCache(cfg.ResultCache, cfg.Registry)
	}
	if len(cfg.Workers) > 0 {
		s.pool = newShardPool(cfg.Workers, cfg.Registry)
	}
	s.est.SetMetrics(s.reg)
	s.requests = s.reg.CounterVec("http_requests_total", "route", "code")
	s.latency = s.reg.HistogramVec("http_request_seconds",
		[]float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10, 60}, "route")
	// Materialize every shed-reason series at 0 so dashboards and the
	// smoke harness see the counters before the first rejection.
	for _, reason := range []string{"queue_full", "queue_timeout", "client_gone"} {
		s.adm.rejected.With(reason)
	}
	s.registerHelp()
	s.mux.HandleFunc("POST /v1/models", s.route("models", s.handleModels))
	s.mux.HandleFunc("POST /v1/estimate", s.route("estimate", s.handleEstimate))
	s.mux.HandleFunc("POST /v1/sweep", s.route("sweep", s.handleSweep))
	s.mux.HandleFunc("POST /v1/montecarlo", s.route("montecarlo", s.handleMonteCarlo))
	s.mux.HandleFunc("POST /v1/compare", s.route("compare", s.handleCompare))
	s.mux.HandleFunc("GET /v1/traces", s.route("traces", s.handleTraces))
	s.mux.HandleFunc("GET /v1/traces/{id}", s.route("trace", s.handleTrace))
	s.mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain puts the server into drain mode: /healthz turns 503 so load
// balancers stop routing here, and new evaluations are shed, while
// in-flight work keeps running. cmd/prophetd calls this on SIGTERM just
// before http.Server.Shutdown, which then waits for in-flight requests.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// statusWriter captures the response code for instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// route instruments a handler: the body-size bound, the request counter
// and latency histogram, the per-request trace (on evaluation routes) and
// one structured log line.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		}
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		tr, r := s.startTrace(name, sw, r)
		start := time.Now()
		h(sw, r)
		d := time.Since(start)
		s.finishTrace(tr, sw.code)
		s.latency.With(name).Observe(d.Seconds())
		s.requests.With(name, fmt.Sprint(sw.code)).Inc()
		s.logRequest(r, name, sw.code, d, tr.ID())
	}
}

// resultCacheHeader annotates every evaluation response with how the
// result cache handled it: hit, miss, inflight, or bypass.
const resultCacheHeader = "X-Result-Cache"

// evalResponse is implemented by every evaluation response body. The
// trace fields are attached only on bypass paths: cached bodies must be
// bit-identical regardless of which request produced them, so they omit
// trace_id/trace and clients use the per-request X-Trace-Id header.
type evalResponse interface {
	traceFields() (*string, **obs.TraceTree)
}

// runAdmitted runs one evaluation under admission control and the
// request deadline: it waits (boundedly) for an evaluation slot, applies
// the request's clamped deadline, and calls run. It writes nothing to
// the response — every failure, from saturation to cancellation while
// queued to evaluation errors, comes back as an error for the caller (or
// the singleflight leader) to map.
func (s *Server) runAdmitted(r *http.Request, timeoutMS int64, run func(ctx context.Context) (evalResponse, error)) (evalResponse, error) {
	// The admission span measures slot wait; a request that never queues
	// closes it in microseconds, a shed one records why.
	qs := obs.SpanFromContext(r.Context()).StartChild("admission")
	err := s.adm.acquire(r.Context())
	if err != nil {
		qs.Annotate("outcome", "shed")
		qs.Annotate("error", err.Error())
	}
	qs.End()
	if err != nil {
		return nil, err
	}
	defer s.adm.release()
	if s.hookAdmitted != nil {
		s.hookAdmitted()
	}
	ctx, cancel := s.evalContext(r, timeoutMS)
	defer cancel()
	return run(ctx)
}

// writeRunError maps an evaluation-path failure to its response:
// saturation to 503 + Retry-After (shedding, not failing), everything
// else through the evaluation-error table. A 499 for a client that went
// away while queued falls out of the context-cancellation case.
func (s *Server) writeRunError(w http.ResponseWriter, err error) {
	if errors.Is(err, errSaturated) {
		s.unavailable(w, "server saturated: in-flight and queue limits reached")
		return
	}
	writeEvalError(w, err)
}

// serveEval is the execution phase shared by every evaluation route:
// through the result cache and singleflight when enabled, always under
// admission control and the request deadline. key is the request's
// canonical key; run performs the evaluation and returns the response
// body value.
//
// Cache hits are served without touching admission — they are a map
// lookup and two writes, and shedding them would protect nothing. A
// singleflight leader holds one slot on behalf of every coalesced
// waiter, so N concurrent identical requests cost one slot and one
// simulation.
func (s *Server) serveEval(w http.ResponseWriter, r *http.Request, key string, timeoutMS int64, run func(ctx context.Context) (evalResponse, error)) {
	// Bypass path: cache disabled, or the client asked for an inline span
	// tree (?trace=1) — a per-request body that must never be shared.
	if s.cache == nil || wantTrace(r) {
		if s.cache != nil {
			s.cache.bypass()
			w.Header().Set(resultCacheHeader, outcomeBypass)
		}
		resp, err := s.runAdmitted(r, timeoutMS, run)
		if err != nil {
			s.writeRunError(w, err)
			return
		}
		id, tree := resp.traceFields()
		s.attachTrace(r, id, tree)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	res, outcome, err := s.cache.do(r.Context(), key, func() (*cachedResult, bool, error) {
		resp, err := s.runAdmitted(r, timeoutMS, run)
		if err != nil {
			if st := evalStatus(err); st == http.StatusUnprocessableEntity || st == http.StatusNotFound {
				// A model error is deterministic — every identical request
				// fails identically — so concurrent waiters share it. It is
				// still not stored: a fixed model uploads under a new
				// content hash anyway, and the failure is cheap to redo.
				return &cachedResult{status: st, body: marshalBody(ErrorResponse{Error: err.Error()})}, false, nil
			}
			// Saturation, cancellation, deadline expiry: the leader's
			// private outcome. Waiters wake and retry rather than inherit
			// a failure that says nothing about their own request.
			return nil, false, err
		}
		// Cached bodies omit trace_id/trace so every request served from
		// this key — leader, coalesced waiter, later hit — reads identical
		// bytes. X-Trace-Id stays per-request in the response header.
		return &cachedResult{status: http.StatusOK, body: marshalBody(resp)}, true, nil
	})
	obs.SpanFromContext(r.Context()).Annotate("result_cache", outcome)
	w.Header().Set(resultCacheHeader, outcome)
	if err != nil {
		s.writeRunError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// marshalBody encodes v exactly as writeJSON does (two-space indent,
// trailing newline), so cached bytes and directly-written bytes are
// byte-for-byte interchangeable.
func marshalBody(v any) []byte {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return buf.Bytes()
}

// InvalidateCache drops every stored result-cache entry (a no-op when
// caching is disabled). In-flight singleflight evaluations are
// unaffected: they complete, publish to their coalesced waiters, and —
// if storable — repopulate the cache.
func (s *Server) InvalidateCache() {
	if s.cache != nil {
		s.cache.invalidate()
	}
}

// unavailable sheds a request with 503 and a Retry-After hint.
func (s *Server) unavailable(w http.ResponseWriter, msg string) {
	w.Header().Set("Retry-After", fmt.Sprint(s.adm.retryAfter()))
	writeError(w, http.StatusServiceUnavailable, msg)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}

// decodeJSON parses the request body into v, rejecting unknown fields so
// typos ("modelid") fail loudly instead of evaluating defaults.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// Trailing garbage after the document is a malformed request too.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errors.New("request body must be a single JSON document")
	}
	return nil
}

// resolveModel materializes a ModelRef: inline XMI is decoded (under a
// "parse" span on the request trace), content-addressed and stored; ids
// are looked up in the store. The returned status is the HTTP code to
// report on error.
func (s *Server) resolveModel(ctx context.Context, ref ModelRef) (*uml.Model, string, int, error) {
	switch {
	case ref.ModelXMI != "" && ref.ModelID != "":
		return nil, "", http.StatusBadRequest, errors.New("set model_id or model_xmi, not both")
	case ref.ModelXMI != "":
		_, sp := obs.StartSpan(ctx, "parse")
		sp.Annotate("bytes", fmt.Sprint(len(ref.ModelXMI)))
		m, err := xmi.DecodeString(ref.ModelXMI)
		sp.End()
		if err != nil {
			return nil, "", http.StatusBadRequest, fmt.Errorf("model_xmi: %v", err)
		}
		id, err := xmi.Hash(m)
		if err != nil {
			return nil, "", http.StatusBadRequest, fmt.Errorf("model_xmi: %v", err)
		}
		s.store.put(id, m)
		return m, id, 0, nil
	case ref.ModelID != "":
		_, sp := obs.StartSpan(ctx, "parse")
		m, ok := s.store.get(ref.ModelID)
		sp.Annotate("cache", boolAttr(ok, "hit", "miss"))
		sp.End()
		if !ok {
			return nil, "", http.StatusNotFound, fmt.Errorf("unknown model %q (upload it via POST /v1/models)", ref.ModelID)
		}
		return m, ref.ModelID, 0, nil
	}
	return nil, "", http.StatusBadRequest, errors.New("request needs model_id or model_xmi")
}

// boolAttr picks a span attribute value from a condition.
func boolAttr(ok bool, yes, no string) string {
	if ok {
		return yes
	}
	return no
}

// evalContext derives the evaluation context: the client's connection
// context bounded by the request's (clamped) or the server's default
// deadline.
func (s *Server) evalContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// evalStatus maps an evaluation failure to its HTTP status: model errors
// are the client's (422 — the model failed checking, a flow error
// surfaced at runtime, the simulated program deadlocked, or a
// mode=analytic model fell outside the closed-form class), deadline
// expiry is 504, client cancellation 499, shard sub-job failures
// reproduce the worker's client errors and turn worker/transport
// failures into 502, and anything else is 500.
func evalStatus(err error) int {
	var ce *estimator.CheckError
	var ae *estimator.AnalyticError
	var pe *sim.ProcessError
	var de *sim.DeadlockError
	var ue *upstreamError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499
	case errors.As(err, &ce), errors.As(err, &ae), errors.As(err, &pe), errors.As(err, &de):
		return http.StatusUnprocessableEntity
	case errors.As(err, &ue):
		if ue.Status >= 400 && ue.Status < 500 {
			return ue.Status
		}
		return http.StatusBadGateway
	}
	return http.StatusInternalServerError
}

func writeEvalError(w http.ResponseWriter, err error) {
	writeError(w, evalStatus(err), err.Error())
}

// buildRequest converts the wire request to an estimator.Request bound
// to ctx and the server's metrics registry, so every evaluation feeds the
// per-stage latency histograms /metrics serves.
func (s *Server) buildRequest(ctx context.Context, m *uml.Model, er *EstimateRequest) (estimator.Request, error) {
	pol, err := policyOf(er.Policy)
	if err != nil {
		return estimator.Request{}, err
	}
	backend, err := estimator.ParseBackend(er.Backend)
	if err != nil {
		return estimator.Request{}, err
	}
	mode, err := estimator.ParseMode(er.Mode)
	if err != nil {
		return estimator.Request{}, err
	}
	sp := er.Params.toMachine()
	if err := sp.Validate(); err != nil {
		return estimator.Request{}, err
	}
	return estimator.Request{
		Model:     m,
		Params:    sp,
		Globals:   er.Globals,
		Seed:      er.Seed,
		Policy:    pol,
		MaxSteps:  er.MaxSteps,
		Backend:   backend,
		Mode:      mode,
		Telemetry: er.Telemetry,
		Context:   ctx,
		Metrics:   s.reg,
	}, nil
}

// handleModels registers a model: the body is the XMI document itself
// (no JSON envelope), the response its content address.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	_, sp := obs.StartSpan(r.Context(), "parse")
	sp.Annotate("bytes", fmt.Sprint(len(body)))
	m, err := xmi.DecodeString(string(body))
	sp.End()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decode model: %v", err))
		return
	}
	id, err := xmi.Hash(m)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("hash model: %v", err))
		return
	}
	s.store.put(id, m)
	writeJSON(w, http.StatusOK, ModelResponse{ID: id, Name: m.Name()})
}

// validateEval rejects the statically-invalid parts of an evaluation
// request — unknown policy, unknown backend, bad machine params — before
// the request is keyed or admitted, so 400s never consume an admission
// slot or a singleflight flight.
func validateEval(policy, backend string, params *Params) error {
	if _, err := policyOf(policy); err != nil {
		return err
	}
	if _, err := estimator.ParseBackend(backend); err != nil {
		return err
	}
	return params.toMachine().Validate()
}

// validateMode rejects an unknown evaluation mode with the same 400
// treatment; only /v1/estimate carries a mode.
func validateMode(mode string) error {
	_, err := estimator.ParseMode(mode)
	return err
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.unavailable(w, "server is draining")
		return
	}
	var er EstimateRequest
	if err := decodeJSON(r, &er); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	m, id, code, err := s.resolveModel(r.Context(), er.ModelRef)
	if err != nil {
		writeError(w, code, err.Error())
		return
	}
	if err := validateEval(er.Policy, er.Backend, er.Params); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := validateMode(er.Mode); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveEval(w, r, estimateKey(id, &er), er.TimeoutMS, func(ctx context.Context) (evalResponse, error) {
		req, err := s.buildRequest(ctx, m, &er)
		if err != nil {
			return nil, err
		}
		pr, err := s.est.CompileCachedCtx(ctx, m)
		if err != nil {
			return nil, err
		}
		var est *estimator.Estimate
		if er.Summary {
			est, err = s.est.EstimateCompiled(pr, req)
		} else {
			est, err = s.est.EstimateCompiledFast(pr, req)
		}
		if err != nil {
			return nil, err
		}
		resp := &EstimateResponse{
			ModelID:        id,
			Makespan:       est.Makespan,
			Analytic:       est.Analytic,
			Variance:       est.Variance,
			CPUUtilization: est.CPUUtilization,
			Globals:        est.Globals,
			Stages:         stagesOf(est),
			Summary:        est.Summary,
		}
		if est.Telemetry != nil {
			resp.EventCounts = est.Telemetry.EventCounts
		}
		return resp, nil
	})
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.unavailable(w, "server is draining")
		return
	}
	var sr SweepRequest
	if err := decodeJSON(r, &sr); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if (len(sr.Processes) == 0) == (sr.Global == nil) {
		writeError(w, http.StatusBadRequest, "set exactly one of processes or global")
		return
	}
	if sr.Global != nil && (sr.Global.Name == "" || len(sr.Global.Values) == 0) {
		writeError(w, http.StatusBadRequest, "global sweep needs name and values")
		return
	}
	m, id, code, err := s.resolveModel(r.Context(), sr.ModelRef)
	if err != nil {
		writeError(w, code, err.Error())
		return
	}
	if err := validateEval(sr.Policy, sr.Backend, sr.Params); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sharded := s.pool != nil && !isShardJob(r)
	s.serveEval(w, r, sweepKey(id, &sr), sr.TimeoutMS, func(ctx context.Context) (evalResponse, error) {
		if sharded {
			return s.shardSweep(ctx, id, m, &sr)
		}
		req, err := s.buildRequest(ctx, m, &sr.EstimateRequest)
		if err != nil {
			return nil, err
		}
		// The sweep fans out on the runner inside one admission slot; keep
		// it sequential so a single sweep cannot monopolize every core.
		req.Parallel = 1
		resp := &SweepResponse{ModelID: id}
		if len(sr.Processes) > 0 {
			pts, err := s.est.SweepProcesses(req, sr.Processes)
			if err != nil {
				return nil, err
			}
			for _, p := range pts {
				resp.Points = append(resp.Points, SweepPoint(p))
			}
		} else {
			pts, err := s.est.SweepGlobal(req, sr.Global.Name, sr.Global.Values)
			if err != nil {
				return nil, err
			}
			for _, p := range pts {
				resp.GlobalPoints = append(resp.GlobalPoints, GlobalPoint(p))
			}
		}
		return resp, nil
	})
}

func (s *Server) handleMonteCarlo(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.unavailable(w, "server is draining")
		return
	}
	var mr MonteCarloRequest
	if err := decodeJSON(r, &mr); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if mr.Runs < 1 {
		writeError(w, http.StatusBadRequest, "monte carlo needs runs >= 1")
		return
	}
	m, id, code, err := s.resolveModel(r.Context(), mr.ModelRef)
	if err != nil {
		writeError(w, code, err.Error())
		return
	}
	if err := validateEval(mr.Policy, mr.Backend, mr.Params); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sharded := s.pool != nil && !isShardJob(r)
	s.serveEval(w, r, monteCarloKey(id, &mr), mr.TimeoutMS, func(ctx context.Context) (evalResponse, error) {
		var makespans []float64
		if sharded {
			makespans, err = s.shardMonteCarlo(ctx, id, m, &mr)
		} else {
			req, err2 := s.buildRequest(ctx, m, &EstimateRequest{
				Params: mr.Params, Globals: mr.Globals, Seed: mr.Seed,
				Policy: mr.Policy, MaxSteps: mr.MaxSteps, Backend: mr.Backend,
			})
			if err2 != nil {
				return nil, err2
			}
			req.Parallel = 1
			makespans, err = s.est.MonteCarloMakespans(req, mr.Runs)
		}
		if err != nil {
			return nil, err
		}
		sum := estimator.SummarizeMakespans(makespans)
		resp := &MonteCarloResponse{
			ModelID: id, Runs: sum.Runs,
			Mean: sum.Mean, Std: sum.Std, Min: sum.Min, Max: sum.Max,
		}
		if mr.IncludeMakespans {
			resp.Makespans = makespans
		}
		return resp, nil
	})
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.unavailable(w, "server is draining")
		return
	}
	var cr CompareRequest
	if err := decodeJSON(r, &cr); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(cr.Processes) == 0 {
		writeError(w, http.StatusBadRequest, "compare needs a non-empty processes list")
		return
	}
	ma, ida, code, err := s.resolveModel(r.Context(), cr.ModelA)
	if err != nil {
		writeError(w, code, fmt.Sprintf("model_a: %v", err))
		return
	}
	mb, idb, code, err := s.resolveModel(r.Context(), cr.ModelB)
	if err != nil {
		writeError(w, code, fmt.Sprintf("model_b: %v", err))
		return
	}
	if err := validateEval(cr.Policy, "", cr.Params); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveEval(w, r, compareKey(ida, idb, &cr), cr.TimeoutMS, func(ctx context.Context) (evalResponse, error) {
		req, err := s.buildRequest(ctx, ma, &EstimateRequest{
			Params: cr.Params, Globals: cr.Globals, Seed: cr.Seed, Policy: cr.Policy,
		})
		if err != nil {
			return nil, err
		}
		req.Parallel = 1
		cmp, err := s.est.CompareModels(ma, mb, req, cr.Processes)
		if err != nil {
			return nil, err
		}
		resp := &CompareResponse{
			ModelAID:   ida,
			ModelBID:   idb,
			NameA:      cmp.NameA,
			NameB:      cmp.NameB,
			Crossovers: cmp.Crossovers,
		}
		for _, p := range cmp.Points {
			resp.Points = append(resp.Points, ComparePoint{
				Processes: p.Processes, MakespanA: p.MakespanA, MakespanB: p.MakespanB, Winner: p.Winner,
			})
		}
		return resp, nil
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

