package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"prophet/internal/obs"
)

// errSaturated is returned by admission.acquire when the request cannot
// be admitted: every evaluation slot is busy and the wait queue is full
// (or the wait timed out). Handlers translate it to 503 + Retry-After —
// shedding load early instead of queueing unboundedly is what keeps tail
// latency bounded under a saturating burst.
var errSaturated = errors.New("server: saturated")

// admission bounds the evaluation work a server accepts: at most
// maxInFlight evaluations run concurrently, at most maxQueue requests
// wait for a slot, and no request waits longer than queueWait.
type admission struct {
	slots     chan struct{} // buffered; a held token = one in-flight evaluation
	maxQueue  int64
	queueWait time.Duration

	waiting  atomic.Int64 // current queue depth; the strict admission bound
	inflight *obs.Gauge
	depth    *obs.Gauge
	rejected *obs.CounterVec
}

func newAdmission(maxInFlight, maxQueue int, queueWait time.Duration, reg *obs.Registry) *admission {
	a := &admission{
		slots:     make(chan struct{}, maxInFlight),
		maxQueue:  int64(maxQueue),
		queueWait: queueWait,
		inflight:  reg.Gauge("server_inflight"),
		depth:     reg.Gauge("server_queue_depth"),
		rejected:  reg.CounterVec("server_rejected_total", "reason"),
	}
	reg.Gauge("server_max_inflight").Set(float64(maxInFlight))
	reg.Gauge("server_max_queue").Set(float64(maxQueue))
	return a
}

// acquire admits the request or reports why it cannot run: errSaturated
// when capacity is exhausted, or the context's cancellation cause when
// the client gave up while queued. On success the caller must release().
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	default:
	}
	// No free slot: join the bounded wait queue. The atomic add-then-check
	// keeps the bound strict under concurrent arrivals.
	if a.waiting.Add(1) > a.maxQueue {
		a.waiting.Add(-1)
		a.rejected.With("queue_full").Inc()
		return errSaturated
	}
	a.depth.Set(float64(a.waiting.Load()))
	defer func() {
		a.waiting.Add(-1)
		a.depth.Set(float64(a.waiting.Load()))
	}()
	timer := time.NewTimer(a.queueWait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return nil
	case <-timer.C:
		a.rejected.With("queue_timeout").Inc()
		return errSaturated
	case <-ctx.Done():
		a.rejected.With("client_gone").Inc()
		return context.Cause(ctx)
	}
}

// release returns the caller's evaluation slot.
func (a *admission) release() {
	<-a.slots
	a.inflight.Add(-1)
}

// retryAfter suggests how long a rejected client should back off: the
// queue-wait bound, rounded up to whole seconds (minimum 1).
func (a *admission) retryAfter() int {
	s := int(a.queueWait / time.Second)
	if time.Duration(s)*time.Second < a.queueWait || s < 1 {
		s++
	}
	if s < 1 {
		s = 1
	}
	return s
}
