package server

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"time"

	"prophet/internal/obs"
	"prophet/internal/trace"
)

// tracedRoutes names the routes that get a per-request trace: the
// evaluation pipeline. Read-only routes (healthz, metrics, trace fetches)
// produce no spans of their own and would only churn the ring.
var tracedRoutes = map[string]bool{
	"estimate":   true,
	"sweep":      true,
	"montecarlo": true,
	"compare":    true,
	"models":     true,
}

// quietRoutes log at Debug instead of Info: load balancers poll healthz
// and Prometheus scrapes metrics every few seconds, and neither should
// drown the request log.
var quietRoutes = map[string]bool{
	"healthz": true,
	"metrics": true,
}

// startTrace opens a per-request trace when the route is traced: the root
// span ("request") is annotated with the route and method, rides the
// request context into the pipeline, and the trace ID is echoed in the
// X-Trace-Id response header so clients can fetch the span tree from
// GET /v1/traces/{id} afterwards.
func (s *Server) startTrace(route string, w http.ResponseWriter, r *http.Request) (*obs.Trace, *http.Request) {
	if !tracedRoutes[route] {
		return nil, r
	}
	tr, root := obs.NewTrace("request")
	root.Annotate("route", route)
	root.Annotate("method", r.Method)
	w.Header().Set("X-Trace-Id", tr.ID())
	return tr, r.WithContext(obs.ContextWithSpan(r.Context(), root))
}

// finishTrace closes the request's root span with the response status and
// publishes the trace to the ring, making it fetchable.
func (s *Server) finishTrace(tr *obs.Trace, code int) {
	if tr == nil {
		return
	}
	root := tr.Root()
	root.Annotate("status", fmt.Sprint(code))
	root.End()
	s.traces.Add(tr)
}

// logRequest emits one structured line per request. Every line carries
// the route, status and duration; traced requests carry their trace_id,
// which is the join key against GET /v1/traces/{id} and the metrics.
func (s *Server) logRequest(r *http.Request, route string, code int, d time.Duration, traceID string) {
	level := slog.LevelInfo
	if quietRoutes[route] {
		level = slog.LevelDebug
	}
	attrs := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.String("route", route),
		slog.Int("status", code),
		slog.Float64("seconds", d.Seconds()),
	}
	if traceID != "" {
		attrs = append(attrs, slog.String("trace_id", traceID))
	}
	s.log.LogAttrs(r.Context(), level, "request", attrs...)
}

// wantTrace reports whether the client asked for the span tree inline
// (?trace=1) in the response body.
func wantTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// attachTrace fills a response's trace fields: the trace ID whenever the
// request is traced, and — with ?trace=1 — an inline span-tree snapshot.
// The snapshot is taken before the root span ends (the response body is
// written inside it), so the root reports its duration so far and is
// marked unfinished; fetch GET /v1/traces/{id} afterwards for the closed
// tree.
func (s *Server) attachTrace(r *http.Request, id *string, tree **obs.TraceTree) {
	tr := obs.SpanFromContext(r.Context()).Trace()
	if tr == nil {
		return
	}
	*id = tr.ID()
	if wantTrace(r) {
		tt := tr.Tree()
		*tree = &tt
	}
}

// TraceSummary is one entry of GET /v1/traces: enough to pick a trace
// worth fetching in full.
type TraceSummary struct {
	TraceID string  `json:"trace_id"`
	Route   string  `json:"route,omitempty"`
	Status  string  `json:"status,omitempty"`
	Seconds float64 `json:"seconds"`
	Spans   int     `json:"spans"`
}

// TracesResponse is the body of GET /v1/traces, newest first.
type TracesResponse struct {
	Traces []TraceSummary `json:"traces"`
}

// handleTraces lists the most recent request traces, newest first.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	resp := TracesResponse{Traces: []TraceSummary{}}
	for _, tr := range s.traces.Recent(0) {
		tt := tr.Tree()
		ts := TraceSummary{TraceID: tt.TraceID, Spans: tt.Spans}
		if tt.Root != nil {
			ts.Seconds = tt.Root.Seconds
			ts.Route = tt.Root.Attrs["route"]
			ts.Status = tt.Root.Attrs["status"]
		}
		resp.Traces = append(resp.Traces, ts)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTrace serves one trace's span tree by ID. The default form is the
// obs.TraceTree JSON that traceview -spans reads; ?format=chrome converts
// it through the trace package so the same request can be opened in
// chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr, ok := s.traces.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Sprintf("unknown trace %q (only the most recent traces are retained)", id))
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, tr.Tree())
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		_ = trace.WriteChrome(w, trace.FromSpanTree(tr.Tree()))
	default:
		writeError(w, http.StatusBadRequest, "unknown format (want json or chrome)")
	}
}

// handleMetrics serves the registry in the Prometheus text exposition
// format. Go runtime stats and uptime are sampled at scrape time, so a
// scrape always sees the current process state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.runtimeStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w, s.reg)
}

// runtimeStats refreshes the process-level gauges: goroutines, heap, GC.
func (s *Server) runtimeStats() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge("go_goroutines").Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge("go_heap_alloc_bytes").Set(float64(ms.HeapAlloc))
	s.reg.Gauge("go_heap_objects").Set(float64(ms.HeapObjects))
	s.reg.Gauge("go_gc_cycles_total").Set(float64(ms.NumGC))
	s.reg.Gauge("go_gc_pause_seconds_total").Set(float64(ms.PauseTotalNs) / 1e9)
	s.reg.Gauge("server_uptime_seconds").Set(time.Since(s.start).Seconds())
	s.reg.Gauge("server_traces_stored").Set(float64(s.traces.Len()))
}

// registerHelp attaches Prometheus # HELP text to the metrics the server
// and its pipeline publish.
func (s *Server) registerHelp() {
	for name, help := range map[string]string{
		"http_requests_total":          "HTTP requests served, by route and status code.",
		"http_request_seconds":         "HTTP request latency in seconds, by route.",
		"estimate_stage_seconds":       "Evaluation pipeline stage latency in seconds, by stage.",
		"estimator_runs_total":         "Evaluations executed by the estimator.",
		"estimator_cache_hits_total":   "CompileCached calls served from the compiled-program cache.",
		"estimator_cache_misses_total": "CompileCached calls that had to compile.",
		"server_inflight":              "Evaluations currently holding an admission slot.",
		"server_queue_depth":           "Requests currently waiting for an admission slot.",
		"server_rejected_total":        "Requests shed by admission control, by reason.",
		"server_result_cache_total":    "Evaluation requests by result-cache outcome (hit, miss, inflight, bypass).",
		"server_result_cache_entries":  "Results currently stored in the result cache.",
		"server_shard_jobs_total":      "Shard sub-jobs dispatched to pool workers, by worker.",
		"server_shard_errors_total":    "Shard sub-jobs that failed, by worker.",
		"server_shard_workers":         "Workers configured in the shard pool.",
		"server_uptime_seconds":        "Seconds since the server was constructed.",
		"server_traces_stored":         "Request traces currently held in the ring buffer.",
		"model_store_models":           "Models resident in the content-addressed store.",
		"go_goroutines":                "Goroutines currently live in the process.",
		"go_heap_alloc_bytes":          "Bytes of allocated heap objects.",
		"go_gc_pause_seconds_total":    "Cumulative GC stop-the-world pause time in seconds.",
	} {
		s.reg.Help(name, help)
	}
}
