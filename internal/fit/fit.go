// Package fit estimates cost-function coefficients from measurements:
// general linear least squares over arbitrary feature terms. Where
// lfk.Calibrate fits the single constant of a one-term model, this package
// fits models like
//
//	time = c0 + c1*n + c2*n*n
//
// from (parameters, measured time) samples — the step that turns profiled
// timings into the parameterized cost functions the paper's models carry
// ("the estimated or the measured execution time", Section 2.1). Terms
// can be given directly as expression-language sources, so the fitted
// model pastes straight into a model's cost function.
package fit

import (
	"fmt"
	"math"
	"strings"

	"prophet/internal/expr"
)

// Term is one feature of a linear model.
type Term struct {
	// Name labels the term (e.g. "n*n").
	Name string
	// Eval computes the feature value at a parameter point.
	Eval func(params map[string]float64) (float64, error)
}

// TermExpr builds a term from a cost-expression source; the expression's
// variables resolve against the sample's parameters.
func TermExpr(src string) (Term, error) {
	c, err := expr.CompileStringFolded(src)
	if err != nil {
		return Term{}, fmt.Errorf("fit: term %q: %w", src, err)
	}
	return Term{
		Name: src,
		Eval: func(params map[string]float64) (float64, error) {
			env := expr.Chain{&mapEnv{params}, expr.Builtins}
			return c.Eval(env)
		},
	}, nil
}

// MustTerms builds terms from expression sources, panicking on malformed
// input (intended for literal term lists).
func MustTerms(srcs ...string) []Term {
	out := make([]Term, len(srcs))
	for i, s := range srcs {
		t, err := TermExpr(s)
		if err != nil {
			panic(err)
		}
		out[i] = t
	}
	return out
}

type mapEnv struct{ m map[string]float64 }

func (e *mapEnv) Var(name string) (float64, bool) {
	v, ok := e.m[name]
	return v, ok
}
func (e *mapEnv) Func(string) (expr.Func, bool) { return nil, false }

// Sample is one measurement.
type Sample struct {
	// Params are the independent variables (problem size, process count…).
	Params map[string]float64
	// Value is the measured quantity (seconds).
	Value float64
}

// Model is a fitted linear model.
type Model struct {
	Terms []Term
	Coef  []float64
}

// Fit solves the least-squares problem min ||A c - b||² where A's columns
// are the terms evaluated at each sample. It requires at least as many
// samples as terms and a full-rank design matrix.
func Fit(terms []Term, samples []Sample) (*Model, error) {
	n, k := len(samples), len(terms)
	if k == 0 {
		return nil, fmt.Errorf("fit: no terms")
	}
	if n < k {
		return nil, fmt.Errorf("fit: %d sample(s) for %d term(s); need at least as many samples as terms", n, k)
	}
	// Build the design matrix and response vector.
	a := make([][]float64, n)
	b := make([]float64, n)
	for i, s := range samples {
		a[i] = make([]float64, k)
		for j, t := range terms {
			v, err := t.Eval(s.Params)
			if err != nil {
				return nil, fmt.Errorf("fit: term %q at sample %d: %w", t.Name, i, err)
			}
			a[i][j] = v
		}
		b[i] = s.Value
	}
	// Normal equations: (AᵀA) c = Aᵀb.
	ata := make([][]float64, k)
	atb := make([]float64, k)
	for i := 0; i < k; i++ {
		ata[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			var s float64
			for r := 0; r < n; r++ {
				s += a[r][i] * a[r][j]
			}
			ata[i][j] = s
		}
		var s float64
		for r := 0; r < n; r++ {
			s += a[r][i] * b[r]
		}
		atb[i] = s
	}
	coef, err := solve(ata, atb)
	if err != nil {
		return nil, err
	}
	return &Model{Terms: terms, Coef: coef}, nil
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// the inputs.
func solve(m [][]float64, v []float64) ([]float64, error) {
	k := len(v)
	a := make([][]float64, k)
	for i := range a {
		a[i] = append([]float64(nil), m[i]...)
		a[i] = append(a[i], v[i])
	}
	for col := 0; col < k; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("fit: design matrix is rank deficient (collinear terms?)")
		}
		a[col], a[pivot] = a[pivot], a[col]
		// Eliminate below.
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= k; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	// Back substitution.
	out := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		s := a[i][k]
		for j := i + 1; j < k; j++ {
			s -= a[i][j] * out[j]
		}
		out[i] = s / a[i][i]
	}
	return out, nil
}

// Predict evaluates the fitted model at a parameter point.
func (m *Model) Predict(params map[string]float64) (float64, error) {
	var s float64
	for i, t := range m.Terms {
		v, err := t.Eval(params)
		if err != nil {
			return 0, err
		}
		s += m.Coef[i] * v
	}
	return s, nil
}

// R2 returns the coefficient of determination over the samples (1 = the
// model explains all variance).
func (m *Model) R2(samples []Sample) (float64, error) {
	var mean float64
	for _, s := range samples {
		mean += s.Value
	}
	mean /= float64(len(samples))
	var ssRes, ssTot float64
	for _, s := range samples {
		p, err := m.Predict(s.Params)
		if err != nil {
			return 0, err
		}
		ssRes += (s.Value - p) * (s.Value - p)
		ssTot += (s.Value - mean) * (s.Value - mean)
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}

// CostFunction renders the fitted model as a cost-expression source,
// ready to paste into a model's function body:
// "1.2e-09*(n*n) + 3.4e-06*(n)".
func (m *Model) CostFunction() string {
	parts := make([]string, 0, len(m.Terms))
	for i, t := range m.Terms {
		if m.Coef[i] == 0 {
			continue
		}
		if t.Name == "1" {
			parts = append(parts, fmt.Sprintf("%g", m.Coef[i]))
			continue
		}
		parts = append(parts, fmt.Sprintf("%g*(%s)", m.Coef[i], t.Name))
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " + ")
}
