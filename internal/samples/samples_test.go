package samples

import (
	"testing"

	"prophet/internal/uml"
)

func TestSampleShape(t *testing.T) {
	m := Sample()
	s := m.Stats()
	if s.Diagrams != 2 {
		t.Errorf("diagrams = %d, want 2", s.Diagrams)
	}
	if s.Actions != 5 { // A1, A2, A4, SA1, SA2
		t.Errorf("actions = %d, want 5", s.Actions)
	}
	if s.Functions != 5 {
		t.Errorf("functions = %d, want 5", s.Functions)
	}
	if m.MainName() != "main" {
		t.Errorf("main = %q", m.MainName())
	}
	for _, name := range []string{"FA1", "FA2", "FA4", "FSA1", "FSA2"} {
		if _, ok := m.Function(name); !ok {
			t.Errorf("missing function %s", name)
		}
	}
	a1 := m.Main().NodeByName("A1").(*uml.ActionNode)
	if a1.Code == "" {
		t.Error("A1 should carry the Figure 7b code fragment")
	}
	sa := m.Main().NodeByName("SA").(*uml.ActivityNode)
	if sa.Body != "SA" {
		t.Errorf("SA body = %q", sa.Body)
	}
	// Branch structure: decision with GV > 0 and else.
	dec := m.Main().NodeByName("decision")
	out := m.Main().Outgoing(dec.ID())
	if len(out) != 2 || out[0].Guard != "GV > 0" || !out[1].IsElse() {
		t.Errorf("branch structure wrong")
	}
}

func TestKernel6Shape(t *testing.T) {
	m := Kernel6()
	if m.Stats().Actions != 1 {
		t.Errorf("collapsed kernel6 should have one action")
	}
	k := m.Main().NodeByName("Kernel6").(*uml.ActionNode)
	if k.CostFunc != "FK6()" {
		t.Errorf("cost = %q", k.CostFunc)
	}
	if _, ok := m.Function("FK6"); !ok {
		t.Error("FK6 missing")
	}
}

func TestKernel6DetailedShape(t *testing.T) {
	m := Kernel6Detailed()
	if len(m.Diagrams()) != 4 { // main, outer, inner, body
		t.Errorf("diagrams = %d, want 4", len(m.Diagrams()))
	}
	var loops int
	for _, d := range m.Diagrams() {
		for _, n := range d.Nodes() {
			if n.Kind() == uml.KindLoop {
				loops++
			}
		}
	}
	if loops != 3 {
		t.Errorf("loop nodes = %d, want 3 (L, i, k)", loops)
	}
	w := m.DiagramByName("body").NodeByName("W").(*uml.ActionNode)
	if w.Code == "" {
		t.Error("W should carry the kernel statement as code fragment")
	}
}

func TestSyntheticScales(t *testing.T) {
	m := Synthetic(3, 10)
	s := m.Stats()
	if s.Diagrams != 3 || s.Actions != 30 {
		t.Errorf("stats = %+v", s)
	}
	// Node names are globally unique, so the checker's perf-element-names
	// rule passes.
	seen := map[string]bool{}
	for _, d := range m.Diagrams() {
		for _, n := range d.Nodes() {
			if n.Kind() == uml.KindAction {
				if seen[n.Name()] {
					t.Fatalf("duplicate action name %q", n.Name())
				}
				seen[n.Name()] = true
			}
		}
	}
}

func TestJacobiShape(t *testing.T) {
	m := Jacobi()
	if len(m.Diagrams()) != 2 {
		t.Errorf("diagrams = %d, want 2 (main + step)", len(m.Diagrams()))
	}
	step := m.DiagramByName("step")
	if step == nil {
		t.Fatal("step diagram missing")
	}
	// Four guarded halo operations plus compute, residual, converge.
	wantStereo := map[string]string{
		"SendLeft": "mpi_send", "SendRight": "mpi_send",
		"RecvLeft": "mpi_recv", "RecvRight": "mpi_recv",
		"Converge": "mpi_reduce",
	}
	for name, st := range wantStereo {
		n := step.NodeByName(name)
		if n == nil || n.Stereotype() != st {
			t.Errorf("node %s: %v", name, n)
		}
	}
	lp := m.Main().NodeByName("Iterate").(*uml.LoopNode)
	if lp.Count != "iters" || lp.Body != "step" {
		t.Errorf("iterate loop wrong: %+v", lp)
	}
	for _, fn := range []string{"FCompute", "FResidual"} {
		if _, ok := m.Function(fn); !ok {
			t.Errorf("missing function %s", fn)
		}
	}
}

func TestOmpRegionShape(t *testing.T) {
	m := OmpRegion()
	par := m.Main().NodeByName("Par")
	if par == nil || par.Stereotype() != "omp_parallel" {
		t.Fatalf("Par node wrong: %v", par)
	}
	body := m.DiagramByName("body")
	if body == nil {
		t.Fatal("body diagram missing")
	}
	crit := body.NodeByName("Update")
	if crit == nil || crit.Stereotype() != "omp_critical" {
		t.Errorf("critical node wrong: %v", crit)
	}
	if crit.(*uml.ActionNode).CostFunc != "critical" {
		t.Errorf("critical cost = %q", crit.(*uml.ActionNode).CostFunc)
	}
}

func TestPipelineShape(t *testing.T) {
	m := Pipeline(4)
	s := m.Stats()
	if s.Actions != 8 { // compute+send per stage
		t.Errorf("actions = %d, want 8", s.Actions)
	}
	send := m.Main().NodeByName("Send0")
	if send.Stereotype() != "mpi_send" {
		t.Errorf("Send0 stereotype = %q", send.Stereotype())
	}
	if v, ok := send.Tag("dest"); !ok || v == "" {
		t.Errorf("Send0 dest tag missing")
	}
}
