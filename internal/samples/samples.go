// Package samples constructs the models used throughout the paper and this
// repository's examples, tests and benchmarks:
//
//   - Sample: the hypothetical program of the paper's Section 4 (Figures 7
//     and 8) — main activity with A1, a branch on GV into activity SA or
//     action A2, then A4.
//   - Kernel6: the Livermore kernel 6 model of Figure 3, both the collapsed
//     single-action form (Figure 3c) and the detailed loop-nest form
//     (Figure 3b).
//   - Synthetic: parameterized model generators for scalability benchmarks.
package samples

import (
	"fmt"

	"prophet/internal/builder"
	"prophet/internal/profile"
	"prophet/internal/uml"
)

// Sample builds the paper's sample performance model (Figure 7a):
//
//	initial -> A1 -> decision --[GV > 0]--> SA -> merge -> A4 -> final
//	                          --[else]----> A2 --^
//
// with activity SA containing SA1 -> SA2, globals GV and P, the code
// fragment of Figure 7(b) attached to A1, and one cost function per
// performance modeling element (FA1, FA2, FA4, FSA1, FSA2) as in
// Figure 8(a). FSA2 takes the process ID pid as a parameter, as in the
// paper.
func Sample() *uml.Model {
	b := builder.New("sample")
	b.Global("GV", "double").
		Global("P", "double").
		Function("FA1", nil, "0.5 + 2*P").
		Function("FA2", nil, "3*P").
		Function("FA4", nil, "1 + P").
		Function("FSA1", nil, "5").
		Function("FSA2", []string{"pid"}, "0.1*(pid+1)")

	main := b.Diagram("main")
	main.Initial()
	main.Action("A1").
		Cost("FA1()").
		Code("GV = 10;\nP = 4;").
		Tag("id", "1")
	main.Decision("decision")
	main.Activity("SA", "SA").Tag("id", "2")
	main.Action("A2").Cost("FA2()").Tag("id", "3")
	main.Merge("merge")
	main.Action("A4").Cost("FA4()").Tag("id", "4")
	main.Final()
	main.Flow("initial", "A1").
		Flow("A1", "decision").
		FlowIf("decision", "SA", "GV > 0").
		FlowIf("decision", "A2", "else").
		Flow("SA", "merge").
		Flow("A2", "merge").
		Flow("merge", "A4").
		Flow("A4", "final")

	sa := b.Diagram("SA")
	sa.Initial()
	sa.Action("SA1").Cost("FSA1()").Tag("id", "5")
	sa.Action("SA2").Cost("FSA2(pid)").Tag("id", "6")
	sa.Final()
	sa.Chain("initial", "SA1", "SA2", "final")

	return builder.MustBuild(b)
}

// Kernel6 builds the collapsed performance model of Livermore kernel 6
// (paper, Figure 3c): a single <<action+>> named Kernel6 whose cost
// function FK6 models the execution time T_K6 of the triply nested loop
//
//	DO L = 1, M / DO i = 2, N / DO k = 1, i-1
//	  W(i) = W(i) + B(i,k) * W(i-k)
//
// The kernel's inner statement executes M * (N-1)*N/2 times; FK6 charges
// cost c per innermost iteration. N, M and c are model globals so the same
// model serves for parameter sweeps; calibrate c against measurements of
// the real kernel (internal/lfk).
func Kernel6() *uml.Model {
	b := builder.New("kernel6")
	b.Global("N", "double").
		Global("M", "double").
		Global("c", "double").
		Function("FK6", nil, "M * (N-1) * N / 2 * c")
	d := b.Diagram("main")
	d.Initial()
	d.Action("Kernel6").Cost("FK6()").Tag("id", "1").Tag("type", "LOOP")
	d.Final()
	d.Chain("initial", "Kernel6", "final")
	return builder.MustBuild(b)
}

// Kernel6Detailed builds the detailed loop-nest model of Figure 3b: three
// nested <<loop+>> elements around the innermost statement W. The
// innermost body charges c per execution, so the simulated total equals
// FK6 of the collapsed model — the tests assert this equivalence, which is
// the paper's justification for collapsing the kernel into one action.
//
// The middle loop runs i from 2 to N (N-1 iterations) and the inner loop
// body executes i-1 times; the loop variable i is exposed to the inner
// count expression.
func Kernel6Detailed() *uml.Model {
	b := builder.New("kernel6-detailed")
	b.Global("N", "double").
		Global("M", "double").
		Global("c", "double").
		Function("FW", nil, "c")

	d := b.Diagram("main")
	d.Initial()
	d.Loop("LoopL", "M", "outer").Var("L").Tag("id", "1")
	d.Final()
	d.Chain("initial", "LoopL", "final")

	outer := b.Diagram("outer")
	outer.Initial()
	// i runs 2..N: N-1 iterations; expose i with offset so the inner count
	// i-1 is correct (iteration index starts at 0, so i = index + 2).
	outer.Loop("LoopI", "N - 1", "inner").Var("iIdx").Tag("id", "2")
	outer.Final()
	outer.Chain("initial", "LoopI", "final")

	inner := b.Diagram("inner")
	inner.Initial()
	// k runs 1..i-1: i-1 iterations, with i = iIdx + 2.
	inner.Loop("LoopK", "iIdx + 1", "body").Var("k").Tag("id", "3")
	inner.Final()
	inner.Chain("initial", "LoopK", "final")

	body := b.Diagram("body")
	body.Initial()
	body.Action("W").Cost("FW()").Code("W(i) = W(i) + B(i,k) * W(i-k)").Tag("id", "4")
	body.Final()
	body.Chain("initial", "W", "final")

	return builder.MustBuild(b)
}

// Synthetic builds a linear model with the given number of diagrams and
// actions per diagram; every action carries a constant-cost function. It
// is used by the transformation scalability benchmarks (experiment FIG5).
func Synthetic(diagrams, actionsPer int) *uml.Model {
	b := builder.New(fmt.Sprintf("synthetic-%dx%d", diagrams, actionsPer))
	b.Global("P", "double")
	b.Function("FC", nil, "1 + 0*P")
	for di := 0; di < diagrams; di++ {
		name := "main"
		if di > 0 {
			name = fmt.Sprintf("sub%d", di)
		}
		d := b.Diagram(name)
		d.Initial()
		prev := "initial"
		for ai := 0; ai < actionsPer; ai++ {
			an := fmt.Sprintf("A%d_%d", di, ai)
			d.Action(an).Cost("FC()").Tag("id", fmt.Sprint(di*actionsPer+ai+1))
			d.Flow(prev, an)
			prev = an
		}
		d.Final()
		d.Flow(prev, "final")
	}
	return builder.MustBuild(b)
}

// Jacobi builds the distributed-memory iterative stencil model of
// examples/jacobi: per iteration each process computes its slab of an
// n x n grid, exchanges halo rows with its neighbors (guarded sends and
// receives so the boundary ranks skip the missing side), and joins a
// global reduction for the convergence test. Globals: n (grid dimension),
// iters (iteration count), flop (seconds per grid-point update).
func Jacobi() *uml.Model {
	b := builder.New("jacobi")
	b.Global("n", "double").
		Global("iters", "double").
		Global("flop", "double").
		Function("FCompute", nil, "n * n / processes * flop").
		Function("FResidual", nil, "n * n / processes * flop * 0.1")

	d := b.Diagram("main")
	d.Initial()
	d.Action("Setup").Cost("n * flop").Tag("id", "1")
	d.Loop("Iterate", "iters", "step").Var("it").Tag("id", "2")
	d.Final()
	d.Chain("initial", "Setup", "Iterate", "final")

	s := b.Diagram("step")
	s.Initial()
	s.Action("Compute").Cost("FCompute()").Tag("id", "3")
	s.Decision("hasLeft")
	s.MPI("SendLeft", profile.MPISend).
		Tag(profile.TagDest, "pid - 1").Tag(profile.TagSize, "8 * n").Tag("id", "4")
	s.Merge("mL")
	s.Decision("hasRight")
	s.MPI("SendRight", profile.MPISend).
		Tag(profile.TagDest, "pid + 1").Tag(profile.TagSize, "8 * n").Tag("id", "5")
	s.Merge("mR")
	s.Decision("hasLeft2")
	s.MPI("RecvLeft", profile.MPIRecv).Tag(profile.TagSrc, "pid - 1").Tag("id", "6")
	s.Merge("mL2")
	s.Decision("hasRight2")
	s.MPI("RecvRight", profile.MPIRecv).Tag(profile.TagSrc, "pid + 1").Tag("id", "7")
	s.Merge("mR2")
	s.Action("Residual").Cost("FResidual()").Tag("id", "8")
	s.MPI("Converge", profile.MPIReduce).Tag(profile.TagSize, "8").Tag("id", "9")
	s.Final()

	s.Flow("initial", "Compute")
	s.Flow("Compute", "hasLeft")
	s.FlowIf("hasLeft", "SendLeft", "pid > 0")
	s.FlowIf("hasLeft", "mL", "else")
	s.Flow("SendLeft", "mL")
	s.Flow("mL", "hasRight")
	s.FlowIf("hasRight", "SendRight", "pid < processes - 1")
	s.FlowIf("hasRight", "mR", "else")
	s.Flow("SendRight", "mR")
	s.Flow("mR", "hasLeft2")
	s.FlowIf("hasLeft2", "RecvLeft", "pid > 0")
	s.FlowIf("hasLeft2", "mL2", "else")
	s.Flow("RecvLeft", "mL2")
	s.Flow("mL2", "hasRight2")
	s.FlowIf("hasRight2", "RecvRight", "pid < processes - 1")
	s.FlowIf("hasRight2", "mR2", "else")
	s.Flow("RecvRight", "mR2")
	s.Flow("mR2", "Residual")
	s.Flow("Residual", "Converge")
	s.Flow("Converge", "final")

	return builder.MustBuild(b)
}

// OmpRegion builds the shared-memory model of examples/openmp: a parallel
// region whose team splits `work` seconds of computation, each thread then
// entering a `critical`-second mutually exclusive section.
func OmpRegion() *uml.Model {
	b := builder.New("omp-region")
	b.Global("work", "double").
		Global("critical", "double").
		Function("FSlice", nil, "work / threads")

	d := b.Diagram("main")
	d.Initial()
	par := d.Activity("Par", "body")
	par.Node().SetStereotype(profile.OMPParallel)
	d.Final()
	d.Chain("initial", "Par", "final")

	body := b.Diagram("body")
	body.Initial()
	body.Action("Slice").Cost("FSlice()").Tag("id", "1")
	crit := body.MPI("Update", profile.OMPCritical)
	crit.Cost("critical").Tag("id", "2")
	body.Final()
	body.Chain("initial", "Slice", "Update", "final")

	return builder.MustBuild(b)
}

// Pipeline builds a message-passing model: `stages` pipeline stages where
// each process computes then sends to its right neighbor. It exercises the
// MPI stereotypes of the profile and the point-to-point machinery of the
// estimator.
func Pipeline(stages int) *uml.Model {
	b := builder.New(fmt.Sprintf("pipeline-%d", stages))
	b.Global("work", "double")
	b.Function("FCompute", nil, "work")
	d := b.Diagram("main")
	d.Initial()
	prev := "initial"
	for s := 0; s < stages; s++ {
		comp := fmt.Sprintf("Compute%d", s)
		d.Action(comp).Cost("FCompute()").Tag("id", fmt.Sprint(2*s+1))
		send := fmt.Sprintf("Send%d", s)
		d.MPI(send, profile.MPISend).
			Tag(profile.TagDest, "(pid + 1) % processes").
			Tag(profile.TagSize, "1024").
			Tag("id", fmt.Sprint(2*s+2))
		d.Chain(prev, comp, send)
		prev = send
	}
	d.Final()
	d.Flow(prev, "final")
	return builder.MustBuild(b)
}
