package checker

import (
	"strings"
	"testing"

	"prophet/internal/builder"
	"prophet/internal/profile"
	"prophet/internal/samples"
	"prophet/internal/uml"
)

func checkModel(t *testing.T, m *uml.Model) *Report {
	t.Helper()
	return New().Check(m)
}

func diagnosticsFor(rep *Report, rule string) []Diagnostic { return rep.ByRule(rule) }

func TestSampleModelIsClean(t *testing.T) {
	rep := checkModel(t, samples.Sample())
	if rep.HasErrors() {
		t.Fatalf("paper sample model should check clean, got:\n%v", rep.Diagnostics)
	}
}

func TestKernel6ModelsAreClean(t *testing.T) {
	for _, m := range []*uml.Model{samples.Kernel6(), samples.Kernel6Detailed()} {
		rep := checkModel(t, m)
		if rep.HasErrors() {
			t.Errorf("%s should check clean, got:\n%v", m.Name(), rep.Diagnostics)
		}
	}
}

func TestPipelineModelIsClean(t *testing.T) {
	rep := checkModel(t, samples.Pipeline(3))
	if rep.HasErrors() {
		t.Fatalf("pipeline model should check clean, got:\n%v", rep.Diagnostics)
	}
}

func TestMissingInitial(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Action("A")
	d.Final()
	d.Flow("A", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	if len(diagnosticsFor(rep, "single-initial")) != 1 {
		t.Errorf("missing initial not reported: %v", rep.Diagnostics)
	}
}

func TestMultipleInitials(t *testing.T) {
	m := uml.NewModel("m")
	d, _ := m.AddDiagram("main")
	m.AddControl(d, "", uml.KindInitial)
	m.AddControl(d, "", uml.KindInitial)
	m.AddControl(d, "", uml.KindFinal)
	rep := checkModel(t, m)
	found := diagnosticsFor(rep, "single-initial")
	if len(found) != 1 || !strings.Contains(found[0].Message, "2 initial") {
		t.Errorf("multiple initials not reported: %v", rep.Diagnostics)
	}
}

func TestMissingFinal(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	d.Action("A")
	d.Flow("initial", "A")
	m, _ := b.Build()
	rep := checkModel(t, m)
	if len(diagnosticsFor(rep, "has-final")) != 1 {
		t.Errorf("missing final not reported")
	}
}

func TestEmptyDiagramAllowed(t *testing.T) {
	m := uml.NewModel("m")
	m.AddDiagram("main")
	rep := checkModel(t, m)
	if rep.HasErrors() {
		t.Errorf("empty diagram should not error: %v", rep.Diagnostics)
	}
}

func TestInitialEdgeViolations(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	d.Action("A")
	d.Final()
	d.Chain("initial", "A", "final")
	d.Flow("A", "initial") // incoming edge into initial
	m, _ := b.Build()
	rep := checkModel(t, m)
	if len(diagnosticsFor(rep, "initial-edges")) == 0 {
		t.Errorf("incoming edge into initial not reported")
	}
}

func TestFinalOutgoingViolation(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	d.Action("A")
	d.Final()
	d.Chain("initial", "A", "final")
	d.Flow("final", "A")
	m, _ := b.Build()
	rep := checkModel(t, m)
	if len(diagnosticsFor(rep, "final-edges")) == 0 {
		t.Errorf("outgoing edge from final not reported")
	}
}

func TestDecisionGuardViolations(t *testing.T) {
	b := builder.New("m")
	b.Global("GV", "double")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("dec")
	d.Action("A")
	d.Action("B")
	d.Action("C")
	d.Merge("mrg")
	d.Final()
	d.Flow("initial", "dec")
	d.FlowIf("dec", "A", "")     // missing guard
	d.FlowIf("dec", "B", "else") // ok
	d.FlowIf("dec", "C", "else") // second else
	d.Chain("A", "mrg")
	d.Chain("B", "mrg")
	d.Chain("C", "mrg", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	found := diagnosticsFor(rep, "decision-guards")
	if len(found) != 2 {
		t.Errorf("want 2 decision-guard findings (unguarded + double else), got %v", found)
	}
}

func TestDecisionTooFewBranches(t *testing.T) {
	b := builder.New("m")
	b.Global("GV", "double")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("dec")
	d.Action("A")
	d.Final()
	d.Flow("initial", "dec")
	d.FlowIf("dec", "A", "GV > 0")
	d.Chain("A", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	if len(diagnosticsFor(rep, "decision-guards")) == 0 {
		t.Errorf("single-branch decision not reported")
	}
}

func TestSingleSuccessorViolation(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	d.Action("A")
	d.Action("B")
	d.Action("C")
	d.Final()
	d.Chain("initial", "A", "B")
	d.Flow("A", "C") // A now branches without a decision node
	d.Chain("B", "final")
	d.Chain("C", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	if len(diagnosticsFor(rep, "single-successor")) == 0 {
		t.Errorf("implicit branching not reported")
	}
}

func TestForkJoinArity(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	d.Fork("fork")
	d.Action("A")
	d.Join("join")
	d.Final()
	d.Chain("initial", "fork", "A", "join", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	found := diagnosticsFor(rep, "fork-join-arity")
	if len(found) != 2 {
		t.Errorf("fork with 1 out and join with 1 in should both report: %v", found)
	}
}

func TestUnreachableWarning(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	d.Action("A")
	d.Action("Island")
	d.Final()
	d.Chain("initial", "A", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	found := diagnosticsFor(rep, "reachable")
	if len(found) != 1 || found[0].Severity != Warning {
		t.Errorf("unreachable node should warn: %v", found)
	}
	if rep.HasErrors() {
		t.Errorf("reachable is a warning by default; report should have no errors")
	}
}

func TestBodyExists(t *testing.T) {
	m := uml.NewModel("m")
	d, _ := m.AddDiagram("main")
	ini, _ := m.AddControl(d, "", uml.KindInitial)
	sa, _ := m.AddActivity(d, "", "SA", "ghost")
	fin, _ := m.AddControl(d, "", uml.KindFinal)
	d.Connect(ini.ID(), sa.ID(), "")
	d.Connect(sa.ID(), fin.ID(), "")
	rep := checkModel(t, m)
	if len(diagnosticsFor(rep, "body-exists")) != 1 {
		t.Errorf("dangling activity body not reported: %v", rep.Diagnostics)
	}
}

func TestActivityCycleDetected(t *testing.T) {
	m := uml.NewModel("m")
	d1, _ := m.AddDiagram("main")
	d2, _ := m.AddDiagram("sub")
	// main contains sub, sub contains main: cycle.
	i1, _ := m.AddControl(d1, "", uml.KindInitial)
	a1, _ := m.AddActivity(d1, "", "GoSub", "sub")
	f1, _ := m.AddControl(d1, "", uml.KindFinal)
	d1.Connect(i1.ID(), a1.ID(), "")
	d1.Connect(a1.ID(), f1.ID(), "")
	i2, _ := m.AddControl(d2, "", uml.KindInitial)
	a2, _ := m.AddActivity(d2, "", "GoMain", "main")
	f2, _ := m.AddControl(d2, "", uml.KindFinal)
	d2.Connect(i2.ID(), a2.ID(), "")
	d2.Connect(a2.ID(), f2.ID(), "")
	rep := checkModel(t, m)
	if len(diagnosticsFor(rep, "no-activity-cycles")) == 0 {
		t.Errorf("activity nesting cycle not reported")
	}
}

func TestGuardErrors(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("dec")
	d.Action("A")
	d.Action("B")
	d.Final()
	d.Flow("initial", "dec")
	d.FlowIf("dec", "A", "GV >") // malformed
	d.FlowIf("dec", "B", "mystery > 0")
	d.Chain("A", "final")
	d.Chain("B", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	found := diagnosticsFor(rep, "guards-parse")
	if len(found) != 2 {
		t.Errorf("want malformed-guard + undeclared-variable findings, got %v", found)
	}
}

func TestCostFunctionErrors(t *testing.T) {
	b := builder.New("m")
	b.Function("F", nil, "1")
	d := b.Diagram("main")
	d.Initial()
	d.Action("A").Cost("Missing()")
	d.Action("B").Cost("F(")
	d.Action("C").Cost("F() + mystery")
	d.Final()
	d.Chain("initial", "A", "B", "C", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	found := diagnosticsFor(rep, "cost-functions")
	if len(found) != 3 {
		t.Errorf("want 3 cost-function findings, got %d: %v", len(found), found)
	}
}

func TestFunctionBodyChecked(t *testing.T) {
	b := builder.New("m")
	b.Function("F", []string{"x"}, "x + y") // y undeclared
	d := b.Diagram("main")
	d.Initial()
	d.Action("A").Cost("F(1)")
	d.Final()
	d.Chain("initial", "A", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	found := diagnosticsFor(rep, "cost-functions")
	if len(found) != 1 || !strings.Contains(found[0].Message, `"y"`) {
		t.Errorf("undeclared variable in function body not reported: %v", found)
	}
}

func TestWellKnownVarsAllowed(t *testing.T) {
	b := builder.New("m")
	b.Function("F", nil, "pid + tid + uid + processes + threads + nodes + processors")
	d := b.Diagram("main")
	d.Initial()
	d.Action("A").Cost("F()")
	d.Final()
	d.Chain("initial", "A", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	if len(diagnosticsFor(rep, "cost-functions")) != 0 {
		t.Errorf("well-known names should be allowed: %v", rep.Diagnostics)
	}
}

func TestLoopVarVisible(t *testing.T) {
	m := samples.Kernel6Detailed()
	rep := checkModel(t, m)
	if rep.HasErrors() {
		t.Errorf("loop variables should be visible to inner counts: %v", rep.Diagnostics)
	}
}

func TestProfileConformanceRule(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	d.Action("A").Tag("id", "NaN") // id must be Integer
	d.Final()
	d.Chain("initial", "A", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	if len(diagnosticsFor(rep, "profile-conformance")) != 1 {
		t.Errorf("tag type violation not reported: %v", rep.Diagnostics)
	}
}

func TestPerfElementNameCollision(t *testing.T) {
	// Same action name in two different diagrams collides in generated C++.
	b := builder.New("m")
	d1 := b.Diagram("main")
	d1.Initial()
	d1.Action("A")
	d1.Final()
	d1.Chain("initial", "A", "final")
	d2 := b.Diagram("sub")
	d2.Initial()
	d2.Action("A")
	d2.Final()
	d2.Chain("initial", "A", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	if len(diagnosticsFor(rep, "perf-element-names")) != 1 {
		t.Errorf("cross-diagram name collision not reported: %v", rep.Diagnostics)
	}
}

func TestWeightedDecisionRules(t *testing.T) {
	mk := func(w1, w2 float64) *uml.Model {
		b := builder.New("m")
		d := b.Diagram("main")
		d.Initial()
		d.Decision("dec")
		d.Action("A")
		d.Action("B")
		d.Merge("mrg")
		d.Final()
		d.Flow("initial", "dec")
		d.FlowWeighted("dec", "A", w1)
		d.FlowWeighted("dec", "B", w2)
		d.Chain("A", "mrg")
		d.Chain("B", "mrg", "final")
		m, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// Weights summing to 1: clean under decision-guards and weights-sum.
	rep := checkModel(t, mk(0.7, 0.3))
	if len(rep.ByRule("decision-guards")) != 0 {
		t.Errorf("all-weighted decision should satisfy decision-guards: %v", rep.Diagnostics)
	}
	if len(rep.ByRule("weights-sum")) != 0 {
		t.Errorf("unit-sum weights should not warn: %v", rep.Diagnostics)
	}
	// Off-unit sum: Info note.
	rep = checkModel(t, mk(2, 3))
	found := rep.ByRule("weights-sum")
	if len(found) != 1 || found[0].Severity != Info {
		t.Errorf("off-unit weights should produce one Info: %v", found)
	}
	// Mixed guarded/weighted: error.
	m := mk(0.5, 0.5)
	for _, e := range m.Main().Edges() {
		if e.Weight == 0.5 {
			e.Guard = "GV > 0"
			e.Weight = 0
			break
		}
	}
	m.AddVariable(uml.Variable{Name: "GV", Type: "double", Scope: uml.ScopeGlobal})
	rep = checkModel(t, m)
	if len(rep.ByRule("decision-guards")) == 0 {
		t.Errorf("mixed decision should error: %v", rep.Diagnostics)
	}
}

func TestMPIPairingRule(t *testing.T) {
	// Receives without sends.
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	d.MPI("R", profile.MPIRecv).Tag("src", "0")
	d.Final()
	d.Chain("initial", "R", "final")
	m, _ := b.Build()
	rep := checkModel(t, m)
	found := diagnosticsFor(rep, "mpi-pairing")
	if len(found) != 1 || found[0].Severity != Warning {
		t.Errorf("recv-without-send should warn: %v", found)
	}

	// Sends without receives (the pipeline sample is the canonical case).
	rep = checkModel(t, samples.Pipeline(2))
	if len(diagnosticsFor(rep, "mpi-pairing")) != 1 {
		t.Errorf("send-without-recv should warn")
	}
	if rep.HasErrors() {
		t.Errorf("pairing warnings must not block transformation")
	}

	// Balanced models stay quiet.
	b2 := builder.New("m2")
	d2 := b2.Diagram("main")
	d2.Initial()
	d2.MPI("S", profile.MPISend).Tag("dest", "1").Tag("size", "8")
	d2.MPI("R", profile.MPIRecv).Tag("src", "0")
	d2.Final()
	d2.Chain("initial", "S", "R", "final")
	m2, _ := b2.Build()
	if got := diagnosticsFor(checkModel(t, m2), "mpi-pairing"); len(got) != 0 {
		t.Errorf("balanced model should not warn: %v", got)
	}
}

func TestUnannotatedActionInfo(t *testing.T) {
	m := uml.NewModel("m")
	d, _ := m.AddDiagram("main")
	i, _ := m.AddControl(d, "", uml.KindInitial)
	a, _ := m.AddAction(d, "", "plain") // no stereotype
	f, _ := m.AddControl(d, "", uml.KindFinal)
	d.Connect(i.ID(), a.ID(), "")
	d.Connect(a.ID(), f.ID(), "")
	rep := checkModel(t, m)
	found := diagnosticsFor(rep, "unannotated-actions")
	if len(found) != 1 || found[0].Severity != Info {
		t.Errorf("unannotated action should be Info: %v", found)
	}
}

func TestConfigDisableAndOverride(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	d.Action("A")
	d.Action("Island")
	d.Final()
	d.Chain("initial", "A", "final")
	m, _ := b.Build()

	cfg := Config{
		Disabled:   map[string]bool{"unannotated-actions": true},
		Severities: map[string]Severity{"reachable": Error},
	}
	rep := NewWith(profile.NewRegistry(), cfg).Check(m)
	if len(rep.ByRule("unannotated-actions")) != 0 {
		t.Errorf("disabled rule still ran")
	}
	found := rep.ByRule("reachable")
	if len(found) != 1 || found[0].Severity != Error {
		t.Errorf("severity override not applied: %v", found)
	}
	if !rep.HasErrors() {
		t.Errorf("escalated warning should count as error")
	}
}

func TestReportCounting(t *testing.T) {
	rep := &Report{Diagnostics: []Diagnostic{
		{Rule: "a", Severity: Error},
		{Rule: "b", Severity: Warning},
		{Rule: "b", Severity: Warning},
		{Rule: "c", Severity: Info},
	}}
	if !rep.HasErrors() || rep.Count(Error) != 1 || rep.Count(Warning) != 2 || rep.Count(Info) != 1 {
		t.Errorf("counting wrong")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Rule: "r", Severity: Error, ElementID: "e3", Message: "boom"}
	s := d.String()
	for _, part := range []string{"error", "[r]", "e3", "boom"} {
		if !strings.Contains(s, part) {
			t.Errorf("diagnostic string %q missing %q", s, part)
		}
	}
	d2 := Diagnostic{Rule: "r", Severity: Info, Message: "m"}
	if strings.Contains(d2.String(), "element") {
		t.Errorf("model-level diagnostic should not mention an element")
	}
}

func TestRulesListAndDocs(t *testing.T) {
	rules := Rules()
	if len(rules) != len(allRules) {
		t.Errorf("Rules() = %d entries, want %d", len(rules), len(allRules))
	}
	for _, name := range rules {
		doc, ok := RuleDoc(name)
		if !ok || doc == "" {
			t.Errorf("rule %q lacks documentation", name)
		}
	}
	if _, ok := RuleDoc("no-such-rule"); ok {
		t.Errorf("unknown rule should not have docs")
	}
}

func TestSeverityStrings(t *testing.T) {
	if Error.String() != "error" || Warning.String() != "warning" || Info.String() != "info" {
		t.Errorf("severity names wrong")
	}
}
