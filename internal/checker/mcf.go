package checker

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"
)

// The Model Checking File (MCF) is the XML document that configures the
// Model Checker (paper, Figure 2: "Element MCF indicates the XML file,
// which is used for the model checking"). Example:
//
//	<modelchecking>
//	  <rule name="reachable" severity="error"/>
//	  <rule name="unannotated-actions" enabled="false"/>
//	</modelchecking>
//
// Unlisted rules run at their default severity.

type mcfDoc struct {
	XMLName xml.Name  `xml:"modelchecking"`
	Rules   []mcfRule `xml:"rule"`
}

type mcfRule struct {
	Name     string `xml:"name,attr"`
	Severity string `xml:"severity,attr,omitempty"`
	Enabled  string `xml:"enabled,attr,omitempty"`
}

// ParseMCF reads a Model Checking File from r into a Config.
func ParseMCF(r io.Reader) (Config, error) {
	var doc mcfDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return Config{}, fmt.Errorf("checker: parse MCF: %w", err)
	}
	cfg := Config{Disabled: map[string]bool{}, Severities: map[string]Severity{}}
	known := map[string]bool{}
	for _, r := range allRules {
		known[r.name] = true
	}
	for _, xr := range doc.Rules {
		if !known[xr.Name] {
			return Config{}, fmt.Errorf("checker: MCF references unknown rule %q (known: %s)",
				xr.Name, strings.Join(Rules(), ", "))
		}
		switch xr.Enabled {
		case "", "true":
		case "false":
			cfg.Disabled[xr.Name] = true
		default:
			return Config{}, fmt.Errorf("checker: MCF rule %q: enabled must be true or false, got %q",
				xr.Name, xr.Enabled)
		}
		if xr.Severity != "" {
			sev, ok := severityFromString(xr.Severity)
			if !ok {
				return Config{}, fmt.Errorf("checker: MCF rule %q: unknown severity %q", xr.Name, xr.Severity)
			}
			cfg.Severities[xr.Name] = sev
		}
	}
	return cfg, nil
}

// LoadMCF reads a Model Checking File from disk.
func LoadMCF(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, fmt.Errorf("checker: %w", err)
	}
	defer f.Close()
	cfg, err := ParseMCF(f)
	if err != nil {
		return Config{}, fmt.Errorf("checker: %s: %w", path, err)
	}
	return cfg, nil
}

// WriteMCF renders a Config back to MCF XML, covering every known rule
// explicitly. Useful for bootstrapping a project's checking file.
func WriteMCF(w io.Writer, cfg Config) error {
	doc := mcfDoc{}
	for _, r := range allRules {
		xr := mcfRule{Name: r.name}
		sev := r.defaultSeverity
		if s, ok := cfg.Severities[r.name]; ok {
			sev = s
		}
		xr.Severity = sev.String()
		if cfg.Disabled[r.name] {
			xr.Enabled = "false"
		}
		doc.Rules = append(doc.Rules, xr)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("checker: write MCF: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}
