package checker

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseMCF(t *testing.T) {
	src := `<?xml version="1.0"?>
<modelchecking>
  <rule name="reachable" severity="error"/>
  <rule name="unannotated-actions" enabled="false"/>
  <rule name="single-initial"/>
</modelchecking>`
	cfg, err := ParseMCF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Severities["reachable"] != Error {
		t.Errorf("severity override not parsed")
	}
	if !cfg.Disabled["unannotated-actions"] {
		t.Errorf("enabled=false not parsed")
	}
	if cfg.Disabled["single-initial"] {
		t.Errorf("default-enabled rule marked disabled")
	}
}

func TestParseMCFErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":      "nope",
		"unknown rule": `<modelchecking><rule name="martian"/></modelchecking>`,
		"bad severity": `<modelchecking><rule name="reachable" severity="fatal"/></modelchecking>`,
		"bad enabled":  `<modelchecking><rule name="reachable" enabled="maybe"/></modelchecking>`,
	}
	for name, src := range cases {
		if _, err := ParseMCF(strings.NewReader(src)); err == nil {
			t.Errorf("%s: should fail", name)
		}
	}
}

func TestMCFRoundTripThroughFile(t *testing.T) {
	cfg := Config{
		Disabled:   map[string]bool{"unannotated-actions": true},
		Severities: map[string]Severity{"reachable": Error},
	}
	path := filepath.Join(t.TempDir(), "mcf.xml")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMCF(f, cfg); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, err := LoadMCF(path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Disabled["unannotated-actions"] {
		t.Errorf("disabled flag lost in round trip")
	}
	if got.Severities["reachable"] != Error {
		t.Errorf("severity lost in round trip")
	}
	// WriteMCF covers every rule explicitly.
	data, _ := os.ReadFile(path)
	for _, rule := range Rules() {
		if !strings.Contains(string(data), `name="`+rule+`"`) {
			t.Errorf("WriteMCF should list rule %q", rule)
		}
	}
}

func TestLoadMCFMissing(t *testing.T) {
	if _, err := LoadMCF(filepath.Join(t.TempDir(), "nope.xml")); err == nil {
		t.Error("missing MCF should fail")
	}
}
