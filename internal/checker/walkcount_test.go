package checker

import (
	"testing"

	"prophet/internal/builder"
)

// TestSingleWalkAllRules pins the fused-engine property demanded by the
// scalability work: with every rule enabled, checking a model performs
// exactly one traversal of the model tree, not one per rule.
func TestSingleWalkAllRules(t *testing.T) {
	mb := builder.New("walkcount")
	mb.Global("x", "double")
	d := mb.Diagram("main")
	d.Initial()
	d.Decision("branch")
	d.Action("Fast").Cost("x")
	d.Action("Slow").Cost("2*x")
	d.Merge("done")
	d.Loop("Spin", "3", "body").Var("i")
	d.Final()
	d.Flow("initial", "branch")
	d.FlowIf("branch", "Fast", "x < 1")
	d.FlowIf("branch", "Slow", "else")
	d.Flow("Fast", "done")
	d.Flow("Slow", "done")
	d.Flow("done", "Spin")
	d.Flow("Spin", "final")
	body := mb.Diagram("body")
	body.Initial()
	body.Action("Work").Cost("x*i")
	body.Final()
	body.Chain("initial", "Work", "final")
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}

	c := New()
	rep, walks := c.CheckCounted(m)
	if walks != 1 {
		t.Fatalf("CheckCounted performed %d model walks, want exactly 1", walks)
	}
	if rep.HasErrors() {
		for _, diag := range rep.Diagnostics {
			t.Log(diag)
		}
		t.Fatal("fixture model unexpectedly has errors")
	}
	// The count must be honest: the report must match the plain Check path.
	plain := c.Check(m)
	if len(plain.Diagnostics) != len(rep.Diagnostics) {
		t.Fatalf("Check and CheckCounted disagree: %d vs %d diagnostics",
			len(plain.Diagnostics), len(rep.Diagnostics))
	}
}

// TestSingleWalkWithDisabledRules ensures disabling rules does not change
// the traversal count (the walk is shared, not per rule).
func TestSingleWalkWithDisabledRules(t *testing.T) {
	mb := builder.New("walkcount-disabled")
	d := mb.Diagram("main")
	d.Initial()
	d.Action("A").Cost("1")
	d.Final()
	d.Chain("initial", "A", "final")
	m, err := mb.Build()
	if err != nil {
		t.Fatal(err)
	}

	c := NewWith(nil, Config{Disabled: map[string]bool{
		"profile-conformance": true,
		"perf-element-names":  true,
	}})
	// nil registry is tolerated here because the registry-dependent rules
	// are the ones disabled.
	if _, walks := c.CheckCounted(m); walks != 1 {
		t.Fatalf("walks = %d, want 1", walks)
	}
}
