// Package checker implements Teuta's Model Checker: it verifies that a
// performance model conforms to the UML activity-diagram well-formedness
// rules and to the performance profile before the model is transformed
// (paper, Section 2.2: "The Model Checker is used to verify whether the
// model conforms to the UML specification").
//
// Which rules run, and with what severity, is configured by a Model
// Checking File (MCF) — an XML document, matching the MCF element of the
// paper's Figure 2 architecture. Without an MCF every rule runs at its
// default severity.
package checker

import (
	"fmt"
	"sort"

	"prophet/internal/profile"
	"prophet/internal/uml"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Info diagnostics are advisory.
	Info Severity = iota
	// Warning diagnostics indicate likely mistakes that do not block
	// transformation.
	Warning
	// Error diagnostics block transformation.
	Error
)

// String returns "info", "warning" or "error".
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// severityFromString parses a severity name; it reports false for unknown
// names.
func severityFromString(s string) (Severity, bool) {
	switch s {
	case "info":
		return Info, true
	case "warning":
		return Warning, true
	case "error":
		return Error, true
	}
	return Info, false
}

// Diagnostic is one finding of the checker.
type Diagnostic struct {
	Rule     string
	Severity Severity
	// ElementID locates the offending element; empty for model-level
	// findings.
	ElementID string
	Message   string
}

// String renders the diagnostic in compiler style:
// "error [rule-name] element e3: message".
func (d Diagnostic) String() string {
	loc := ""
	if d.ElementID != "" {
		loc = " element " + d.ElementID + ":"
	}
	return fmt.Sprintf("%s [%s]%s %s", d.Severity, d.Rule, loc, d.Message)
}

// Report is the outcome of checking one model.
type Report struct {
	Diagnostics []Diagnostic
}

// HasErrors reports whether any diagnostic is an Error.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Count returns the number of diagnostics at the given severity.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// ByRule returns the diagnostics produced by one rule.
func (r *Report) ByRule(rule string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Rule == rule {
			out = append(out, d)
		}
	}
	return out
}

// Checker runs a configured set of rules over models.
type Checker struct {
	registry *profile.Registry
	config   Config
}

// Config selects and grades rules. The zero value means "all rules at
// default severity".
type Config struct {
	// Disabled lists rule names to skip.
	Disabled map[string]bool
	// Severities overrides the default severity per rule name.
	Severities map[string]Severity
}

// New returns a checker using the standard profile registry and default
// configuration.
func New() *Checker {
	return NewWith(profile.NewRegistry(), Config{})
}

// NewWith returns a checker with an explicit profile registry and
// configuration.
func NewWith(reg *profile.Registry, cfg Config) *Checker {
	return &Checker{registry: reg, config: cfg}
}

// Rules returns the names of all known rules, sorted.
func Rules() []string {
	out := make([]string, 0, len(allRules))
	for _, r := range allRules {
		out = append(out, r.name)
	}
	sort.Strings(out)
	return out
}

// RuleDoc returns the one-line documentation of a rule.
func RuleDoc(name string) (string, bool) {
	for _, r := range allRules {
		if r.name == name {
			return r.doc, true
		}
	}
	return "", false
}

// Check runs every enabled rule over the model and returns the combined
// report. Diagnostics appear grouped by rule, in rule registration order.
func (c *Checker) Check(m *uml.Model) *Report {
	rep, _ := c.check(m)
	return rep
}

// CheckCounted is Check plus the number of full model traversals the
// checker performed. The fused rule engine dispatches all rules from one
// walk, so the count is 1 regardless of how many rules are enabled; the
// walk-count test pins that property against regressions back to
// rule-at-a-time re-walking.
func (c *Checker) CheckCounted(m *uml.Model) (*Report, int) {
	return c.check(m)
}

// check is the single-walk rule engine. Every enabled rule contributes a
// ruleVisitor; the engine traverses the model exactly once — model, then
// per diagram: diagram, nodes, edges — dispatching each element to every
// interested rule, and finally concatenates the per-rule diagnostic
// buffers in registration order (so reports are byte-identical to the
// historical engine that ran each rule as its own model walk).
func (c *Checker) check(m *uml.Model) (*Report, int) {
	shared := &walkShared{known: make(map[string]bool, len(wellKnownVars)+len(m.Variables()))}
	for v := range wellKnownVars {
		shared.known[v] = true
	}
	for _, v := range m.Variables() {
		shared.known[v.Name] = true
	}

	ctxs := make([]*ruleContext, 0, len(allRules))
	var onModel, onFinish []func()
	var onEnter, onLeave []func(*uml.Diagram)
	var onNode []func(*uml.Diagram, uml.Node)
	var onEdge []func(*uml.Diagram, *uml.Edge)
	for _, r := range allRules {
		if c.config.Disabled[r.name] {
			continue
		}
		sev := r.defaultSeverity
		if s, ok := c.config.Severities[r.name]; ok {
			sev = s
		}
		ctx := &ruleContext{
			model:    m,
			registry: c.registry,
			rule:     r.name,
			severity: sev,
			shared:   shared,
		}
		ctxs = append(ctxs, ctx)
		v := r.visit(ctx)
		if v.model != nil {
			mcb := v.model
			onModel = append(onModel, func() { mcb(m) })
		}
		if v.enterDiagram != nil {
			onEnter = append(onEnter, v.enterDiagram)
		}
		if v.node != nil {
			onNode = append(onNode, v.node)
		}
		if v.edge != nil {
			onEdge = append(onEdge, v.edge)
		}
		if v.leaveDiagram != nil {
			onLeave = append(onLeave, v.leaveDiagram)
		}
		if v.finish != nil {
			onFinish = append(onFinish, v.finish)
		}
	}

	walks := 1 // the one traversal below; per-rule re-walks would add here
	for _, cb := range onModel {
		cb()
	}
	for _, d := range m.Diagrams() {
		for _, cb := range onEnter {
			cb(d)
		}
		for _, n := range d.Nodes() {
			if lp, ok := n.(*uml.LoopNode); ok && lp.Var != "" {
				shared.known[lp.Var] = true
			}
			for _, cb := range onNode {
				cb(d, n)
			}
		}
		for _, e := range d.Edges() {
			for _, cb := range onEdge {
				cb(d, e)
			}
		}
		for _, cb := range onLeave {
			cb(d)
		}
	}
	for _, cb := range onFinish {
		cb()
	}

	rep := &Report{}
	total := 0
	for _, ctx := range ctxs {
		total += len(ctx.diags)
	}
	if total > 0 {
		rep.Diagnostics = make([]Diagnostic, 0, total)
		for _, ctx := range ctxs {
			rep.Diagnostics = append(rep.Diagnostics, ctx.diags...)
		}
	}
	return rep, walks
}

// walkShared is state the engine accumulates once per walk on behalf of
// every rule. known is the legal-variable-name set (declared variables,
// well-known names, and loop variables, which become complete only after
// every node has been visited — rules that need it read it in finish).
type walkShared struct {
	known map[string]bool
}

// ruleContext is handed to each rule implementation.
type ruleContext struct {
	model    *uml.Model
	registry *profile.Registry
	rule     string
	severity Severity
	shared   *walkShared
	diags    []Diagnostic
}

// add records a diagnostic against an element (which may be nil).
func (ctx *ruleContext) add(e uml.Element, format string, args ...interface{}) {
	id := ""
	if e != nil {
		id = e.ID()
	}
	ctx.diags = append(ctx.diags, Diagnostic{
		Rule:      ctx.rule,
		Severity:  ctx.severity,
		ElementID: id,
		Message:   fmt.Sprintf(format, args...),
	})
}

// rule couples a name with its fused-visitor factory and default severity.
// visit is called once per Check with the rule's private context and
// returns the callbacks the single-walk engine should dispatch to.
type rule struct {
	name            string
	doc             string
	defaultSeverity Severity
	visit           func(*ruleContext) ruleVisitor
}
