// Package checker implements Teuta's Model Checker: it verifies that a
// performance model conforms to the UML activity-diagram well-formedness
// rules and to the performance profile before the model is transformed
// (paper, Section 2.2: "The Model Checker is used to verify whether the
// model conforms to the UML specification").
//
// Which rules run, and with what severity, is configured by a Model
// Checking File (MCF) — an XML document, matching the MCF element of the
// paper's Figure 2 architecture. Without an MCF every rule runs at its
// default severity.
package checker

import (
	"fmt"
	"sort"

	"prophet/internal/profile"
	"prophet/internal/uml"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Info diagnostics are advisory.
	Info Severity = iota
	// Warning diagnostics indicate likely mistakes that do not block
	// transformation.
	Warning
	// Error diagnostics block transformation.
	Error
)

// String returns "info", "warning" or "error".
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// severityFromString parses a severity name; it reports false for unknown
// names.
func severityFromString(s string) (Severity, bool) {
	switch s {
	case "info":
		return Info, true
	case "warning":
		return Warning, true
	case "error":
		return Error, true
	}
	return Info, false
}

// Diagnostic is one finding of the checker.
type Diagnostic struct {
	Rule     string
	Severity Severity
	// ElementID locates the offending element; empty for model-level
	// findings.
	ElementID string
	Message   string
}

// String renders the diagnostic in compiler style:
// "error [rule-name] element e3: message".
func (d Diagnostic) String() string {
	loc := ""
	if d.ElementID != "" {
		loc = " element " + d.ElementID + ":"
	}
	return fmt.Sprintf("%s [%s]%s %s", d.Severity, d.Rule, loc, d.Message)
}

// Report is the outcome of checking one model.
type Report struct {
	Diagnostics []Diagnostic
}

// HasErrors reports whether any diagnostic is an Error.
func (r *Report) HasErrors() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// Count returns the number of diagnostics at the given severity.
func (r *Report) Count(s Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// ByRule returns the diagnostics produced by one rule.
func (r *Report) ByRule(rule string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Rule == rule {
			out = append(out, d)
		}
	}
	return out
}

// Checker runs a configured set of rules over models.
type Checker struct {
	registry *profile.Registry
	config   Config
}

// Config selects and grades rules. The zero value means "all rules at
// default severity".
type Config struct {
	// Disabled lists rule names to skip.
	Disabled map[string]bool
	// Severities overrides the default severity per rule name.
	Severities map[string]Severity
}

// New returns a checker using the standard profile registry and default
// configuration.
func New() *Checker {
	return NewWith(profile.NewRegistry(), Config{})
}

// NewWith returns a checker with an explicit profile registry and
// configuration.
func NewWith(reg *profile.Registry, cfg Config) *Checker {
	return &Checker{registry: reg, config: cfg}
}

// Rules returns the names of all known rules, sorted.
func Rules() []string {
	out := make([]string, 0, len(allRules))
	for _, r := range allRules {
		out = append(out, r.name)
	}
	sort.Strings(out)
	return out
}

// RuleDoc returns the one-line documentation of a rule.
func RuleDoc(name string) (string, bool) {
	for _, r := range allRules {
		if r.name == name {
			return r.doc, true
		}
	}
	return "", false
}

// Check runs every enabled rule over the model and returns the combined
// report. Diagnostics appear grouped by rule, in rule registration order.
func (c *Checker) Check(m *uml.Model) *Report {
	rep := &Report{}
	for _, r := range allRules {
		if c.config.Disabled[r.name] {
			continue
		}
		sev := r.defaultSeverity
		if s, ok := c.config.Severities[r.name]; ok {
			sev = s
		}
		ctx := &ruleContext{
			model:    m,
			registry: c.registry,
			rule:     r.name,
			severity: sev,
			report:   rep,
		}
		r.check(ctx)
	}
	return rep
}

// ruleContext is handed to each rule implementation.
type ruleContext struct {
	model    *uml.Model
	registry *profile.Registry
	rule     string
	severity Severity
	report   *Report
}

// add records a diagnostic against an element (which may be nil).
func (ctx *ruleContext) add(e uml.Element, format string, args ...interface{}) {
	id := ""
	if e != nil {
		id = e.ID()
	}
	ctx.report.Diagnostics = append(ctx.report.Diagnostics, Diagnostic{
		Rule:      ctx.rule,
		Severity:  ctx.severity,
		ElementID: id,
		Message:   fmt.Sprintf(format, args...),
	})
}

// rule couples a name with its implementation and default severity.
type rule struct {
	name            string
	doc             string
	defaultSeverity Severity
	check           func(*ruleContext)
}
