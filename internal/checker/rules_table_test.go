package checker

import (
	"strings"
	"testing"

	"prophet/internal/profile"
	"prophet/internal/uml"
)

// TestEveryRuleFires is the rule-regression table: one violating model per
// rule in allRules, asserting that exactly that rule fires with the
// expected severity and message. When a rule regresses, the failure names
// the rule that broke.
func TestEveryRuleFires(t *testing.T) {
	cases := []struct {
		rule     string
		severity Severity
		message  string // required substring of the diagnostic message
		build    func() *uml.Model
	}{
		{
			rule:     "single-initial",
			severity: Error,
			message:  `diagram "main" has no initial node`,
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				mustAction(t, m, d, "A")
				return m
			},
		},
		{
			rule:     "has-final",
			severity: Error,
			message:  `diagram "main" has no final node`,
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				a := mustAction(t, m, d, "A")
				d.Connect(ini.ID(), a.ID(), "")
				return m
			},
		},
		{
			rule:     "initial-edges",
			severity: Error,
			message:  "initial node has 2 outgoing edge(s), want 1",
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				a := mustAction(t, m, d, "A")
				b := mustAction(t, m, d, "B")
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), a.ID(), "")
				d.Connect(ini.ID(), b.ID(), "")
				d.Connect(a.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "final-edges",
			severity: Error,
			message:  "final node has 1 outgoing edge(s)",
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				a := mustAction(t, m, d, "A")
				d.Connect(ini.ID(), fin.ID(), "")
				d.Connect(fin.ID(), a.ID(), "")
				return m
			},
		},
		{
			rule:     "decision-guards",
			severity: Error,
			message:  "edge out of decision node has neither guard nor positive weight",
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				dec, _ := m.AddControl(d, "", uml.KindDecision)
				a := mustAction(t, m, d, "A")
				b := mustAction(t, m, d, "B")
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), dec.ID(), "")
				d.Connect(dec.ID(), a.ID(), "") // neither guard nor weight
				d.Connect(dec.ID(), b.ID(), "")
				d.Connect(a.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "weights-sum",
			severity: Info,
			message:  "branch weights sum to 0.5, not 1",
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				dec, _ := m.AddControl(d, "", uml.KindDecision)
				a := mustAction(t, m, d, "A")
				b := mustAction(t, m, d, "B")
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), dec.ID(), "")
				e1, _ := d.Connect(dec.ID(), a.ID(), "")
				e1.Weight = 0.3
				e2, _ := d.Connect(dec.ID(), b.ID(), "")
				e2.Weight = 0.2
				d.Connect(a.ID(), fin.ID(), "")
				d.Connect(b.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "single-successor",
			severity: Error,
			message:  "only decision and fork nodes may branch",
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				a := mustAction(t, m, d, "A")
				b := mustAction(t, m, d, "B")
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), a.ID(), "")
				d.Connect(a.ID(), b.ID(), "")
				d.Connect(a.ID(), fin.ID(), "")
				d.Connect(b.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "fork-join-arity",
			severity: Error,
			message:  "fork node has 1 outgoing edge(s), want >=2",
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				fork, _ := m.AddControl(d, "", uml.KindFork)
				a := mustAction(t, m, d, "A")
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), fork.ID(), "")
				d.Connect(fork.ID(), a.ID(), "")
				d.Connect(a.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "reachable",
			severity: Warning,
			message:  `node "Orphan" is unreachable from the initial node`,
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				mustAction(t, m, d, "Orphan")
				d.Connect(ini.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "body-exists",
			severity: Error,
			message:  `activity "SA" references unknown diagram "nowhere"`,
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				act, _ := m.AddActivity(d, "", "SA", "nowhere")
				act.SetStereotype(profile.ActivityPlus)
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), act.ID(), "")
				d.Connect(act.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "no-activity-cycles",
			severity: Error,
			message:  `diagram "main" participates in a cyclic activity nesting`,
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				act, _ := m.AddActivity(d, "", "Self", "main")
				act.SetStereotype(profile.ActivityPlus)
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), act.ID(), "")
				d.Connect(act.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "guards-parse",
			severity: Error,
			message:  `guard "((" does not parse`,
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				dec, _ := m.AddControl(d, "", uml.KindDecision)
				a := mustAction(t, m, d, "A")
				b := mustAction(t, m, d, "B")
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), dec.ID(), "")
				d.Connect(dec.ID(), a.ID(), "((")
				d.Connect(dec.ID(), b.ID(), "else")
				d.Connect(a.ID(), fin.ID(), "")
				d.Connect(b.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "cost-functions",
			severity: Error,
			message:  `cost function "Missing()" calls undefined function "Missing"`,
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				a := mustAction(t, m, d, "A")
				a.CostFunc = "Missing()"
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), a.ID(), "")
				d.Connect(a.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "profile-conformance",
			severity: Error,
			message:  `required tag "dest" of <<mpi_send>> is unset`,
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				send, _ := m.AddAction(d, "", "S")
				send.SetStereotype(profile.MPISend) // bypasses Apply's defaults
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), send.ID(), "")
				d.Connect(send.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "perf-element-names",
			severity: Error,
			message:  `performance element name "A" already used`,
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				a := mustAction(t, m, d, "A")
				dup, err := m.AddAction(d, "", "A")
				if err != nil {
					t.Fatal(err)
				}
				dup.SetStereotype(profile.ActionPlus)
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), a.ID(), "")
				d.Connect(a.ID(), dup.ID(), "")
				d.Connect(dup.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "mpi-pairing",
			severity: Warning,
			message:  "1 mpi_recv element(s) but no mpi_send",
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				recv, _ := m.AddAction(d, "", "R")
				recv.SetStereotype(profile.MPIRecv)
				recv.SetTag(profile.TagSrc, "0")
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), recv.ID(), "")
				d.Connect(recv.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "stochastic-tags",
			severity: Error,
			message:  `tag "count" of <<omp_parallel>> does not accept a distribution literal "normal(2, 1)"`,
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				body, _ := m.AddDiagram("body")
				bini, _ := m.AddControl(body, "", uml.KindInitial)
				ba := mustAction(t, m, body, "BA")
				bfin, _ := m.AddControl(body, "", uml.KindFinal)
				body.Connect(bini.ID(), ba.ID(), "")
				body.Connect(ba.ID(), bfin.ID(), "")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				par, _ := m.AddActivity(d, "", "Par", "body")
				par.SetStereotype(profile.OMPParallel)
				// A draw is not a thread count: omp_parallel's count tag is a
				// plain (non-stochastic) expression tag.
				par.SetTag(profile.TagCount, "normal(2, 1)")
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), par.ID(), "")
				d.Connect(par.ID(), fin.ID(), "")
				return m
			},
		},
		{
			rule:     "unannotated-actions",
			severity: Info,
			message:  `action "Bare" carries no stereotype`,
			build: func() *uml.Model {
				m := uml.NewModel("m")
				d, _ := m.AddDiagram("main")
				ini, _ := m.AddControl(d, "", uml.KindInitial)
				bare, _ := m.AddAction(d, "", "Bare")
				fin, _ := m.AddControl(d, "", uml.KindFinal)
				d.Connect(ini.ID(), bare.ID(), "")
				d.Connect(bare.ID(), fin.ID(), "")
				return m
			},
		},
	}

	// The table must stay in lockstep with the registry: a new rule needs
	// a new violating model here.
	if len(cases) != len(allRules) {
		t.Errorf("table covers %d rules, registry has %d", len(cases), len(allRules))
		covered := map[string]bool{}
		for _, c := range cases {
			covered[c.rule] = true
		}
		for _, r := range allRules {
			if !covered[r.name] {
				t.Errorf("rule %q has no table case", r.name)
			}
		}
	}

	for _, c := range cases {
		t.Run(c.rule, func(t *testing.T) {
			rep := New().Check(c.build())
			var fired []Diagnostic
			for _, diag := range rep.Diagnostics {
				if diag.Rule == c.rule {
					fired = append(fired, diag)
				}
			}
			if len(fired) == 0 {
				t.Fatalf("rule %q did not fire; got %v", c.rule, rep.Diagnostics)
			}
			found := false
			for _, diag := range fired {
				if diag.Severity != c.severity {
					t.Errorf("rule %q fired with severity %v, want %v", c.rule, diag.Severity, c.severity)
				}
				if strings.Contains(diag.Message, c.message) {
					found = true
				}
			}
			if !found {
				t.Errorf("rule %q fired but no message contains %q; got %v", c.rule, c.message, fired)
			}
		})
	}
}

// mustAction adds an <<action+>> node with a zero-cost function so the
// violating models trip only the rule under test.
func mustAction(t *testing.T, m *uml.Model, d *uml.Diagram, name string) *uml.ActionNode {
	t.Helper()
	a, err := m.AddAction(d, "", name)
	if err != nil {
		t.Fatal(err)
	}
	a.SetStereotype(profile.ActionPlus)
	return a
}
