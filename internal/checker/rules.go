package checker

import (
	"prophet/internal/expr"
	"prophet/internal/profile"
	"prophet/internal/uml"
)

// wellKnownVars are the names that are always bound during model
// evaluation, even though they are not declared as model variables: the
// execute() context parameters (paper, Figure 8b: uid, pid, tid) and the
// system parameters of the Performance Estimator (paper, Section 2.2: the
// number of computational nodes, processors per node, processes, threads).
var wellKnownVars = map[string]bool{
	"uid": true, "pid": true, "tid": true,
	"nodes": true, "processors": true, "processes": true, "threads": true,
}

// ruleVisitor is the per-element interface of a fused rule: the checker
// performs a single walk of the model (model, then per diagram: the
// diagram, its nodes, its edges) and dispatches each element to every
// enabled rule's callbacks. Any callback may be nil. finish runs after the
// walk completes, when shared state (e.g. the known-variable set, which
// accumulates loop variables during the walk) is final; rules whose
// diagnostics depend on it buffer elements during the walk and emit there.
type ruleVisitor struct {
	model        func(m *uml.Model)
	enterDiagram func(d *uml.Diagram)
	node         func(d *uml.Diagram, n uml.Node)
	edge         func(d *uml.Diagram, e *uml.Edge)
	leaveDiagram func(d *uml.Diagram)
	finish       func()
}

// allRules is the rule registry, in execution order. Diagnostics are
// buffered per rule and concatenated in this order, so the fused
// single-walk engine reports byte-identically to the historical
// rule-at-a-time engine.
var allRules = []rule{
	{
		name:            "single-initial",
		doc:             "every diagram has exactly one initial node",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			initials, nodes := 0, 0
			return ruleVisitor{
				enterDiagram: func(d *uml.Diagram) { initials, nodes = 0, 0 },
				node: func(d *uml.Diagram, n uml.Node) {
					nodes++
					if n.Kind() == uml.KindInitial {
						initials++
					}
				},
				leaveDiagram: func(d *uml.Diagram) {
					switch {
					case initials == 0 && nodes > 0:
						ctx.add(d, "diagram %q has no initial node", d.Name())
					case initials > 1:
						ctx.add(d, "diagram %q has %d initial nodes", d.Name(), initials)
					}
				},
			}
		},
	},
	{
		name:            "has-final",
		doc:             "every non-empty diagram has at least one final node",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			finals, nodes := 0, 0
			return ruleVisitor{
				enterDiagram: func(d *uml.Diagram) { finals, nodes = 0, 0 },
				node: func(d *uml.Diagram, n uml.Node) {
					nodes++
					if n.Kind() == uml.KindFinal {
						finals++
					}
				},
				leaveDiagram: func(d *uml.Diagram) {
					if nodes > 0 && finals == 0 {
						ctx.add(d, "diagram %q has no final node", d.Name())
					}
				},
			}
		},
	},
	{
		name:            "initial-edges",
		doc:             "initial nodes have no incoming and exactly one outgoing edge",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) {
					if n.Kind() != uml.KindInitial {
						return
					}
					if in := len(d.Incoming(n.ID())); in > 0 {
						ctx.add(n, "initial node has %d incoming edge(s)", in)
					}
					if out := len(d.Outgoing(n.ID())); out != 1 {
						ctx.add(n, "initial node has %d outgoing edge(s), want 1", out)
					}
				},
			}
		},
	},
	{
		name:            "final-edges",
		doc:             "final nodes have no outgoing edges",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) {
					if n.Kind() != uml.KindFinal {
						return
					}
					if out := len(d.Outgoing(n.ID())); out > 0 {
						ctx.add(n, "final node has %d outgoing edge(s)", out)
					}
				},
			}
		},
	},
	{
		name:            "decision-guards",
		doc:             "decision branches are either all guarded (<=1 'else') or all weighted (probabilistic)",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) {
					if n.Kind() != uml.KindDecision {
						return
					}
					out := d.Outgoing(n.ID())
					if len(out) < 2 {
						ctx.add(n, "decision node has %d outgoing edge(s), want >=2", len(out))
					}
					guarded, weighted := 0, 0
					elses := 0
					for _, e := range out {
						switch {
						case e.Guard != "":
							guarded++
							if e.IsElse() {
								elses++
							}
						case e.Weight > 0:
							weighted++
						default:
							ctx.add(e, "edge out of decision node has neither guard nor positive weight")
						}
					}
					if guarded > 0 && weighted > 0 {
						ctx.add(n, "decision node mixes guarded and weighted branches")
					}
					if elses > 1 {
						ctx.add(n, "decision node has %d 'else' branches, want at most 1", elses)
					}
				},
			}
		},
	},
	{
		name:            "weights-sum",
		doc:             "branch weights of a probabilistic decision should sum to 1 (they are normalized, but a different sum usually signals a typo)",
		defaultSeverity: Info,
		visit: func(ctx *ruleContext) ruleVisitor {
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) {
					if n.Kind() != uml.KindDecision {
						return
					}
					out := d.Outgoing(n.ID())
					if len(out) == 0 || out[0].Guard != "" || out[0].Weight <= 0 {
						return // guarded decision; decision-guards covers it
					}
					sum := 0.0
					allWeighted := true
					for _, e := range out {
						if e.Weight <= 0 || e.Guard != "" {
							allWeighted = false
							break
						}
						sum += e.Weight
					}
					if allWeighted && (sum < 0.999 || sum > 1.001) {
						ctx.add(n, "branch weights sum to %g, not 1 (they will be normalized)", sum)
					}
				},
			}
		},
	},
	{
		name:            "single-successor",
		doc:             "non-branching nodes have at most one outgoing edge",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) {
					switch n.Kind() {
					case uml.KindDecision, uml.KindFork, uml.KindFinal:
						return
					}
					if out := len(d.Outgoing(n.ID())); out > 1 {
						ctx.add(n, "%s %q has %d outgoing edges; only decision and fork nodes may branch",
							n.Kind(), n.Name(), out)
					}
				},
			}
		},
	},
	{
		name:            "fork-join-arity",
		doc:             "fork nodes have >=2 outgoing edges and join nodes >=2 incoming",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) {
					switch n.Kind() {
					case uml.KindFork:
						if out := len(d.Outgoing(n.ID())); out < 2 {
							ctx.add(n, "fork node has %d outgoing edge(s), want >=2", out)
						}
					case uml.KindJoin:
						if in := len(d.Incoming(n.ID())); in < 2 {
							ctx.add(n, "join node has %d incoming edge(s), want >=2", in)
						}
					}
				},
			}
		},
	},
	{
		name:            "reachable",
		doc:             "every node is reachable from its diagram's initial node",
		defaultSeverity: Warning,
		visit: func(ctx *ruleContext) ruleVisitor {
			return ruleVisitor{
				leaveDiagram: func(d *uml.Diagram) {
					ini := d.Initial()
					if ini == nil {
						return // single-initial already reports this
					}
					seen := make(map[string]bool, len(d.Nodes()))
					stack := []string{ini.ID()}
					for len(stack) > 0 {
						id := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						if seen[id] {
							continue
						}
						seen[id] = true
						for _, e := range d.Outgoing(id) {
							stack = append(stack, e.To())
						}
					}
					for _, n := range d.Nodes() {
						if !seen[n.ID()] {
							ctx.add(n, "node %q is unreachable from the initial node", n.Name())
						}
					}
				},
			}
		},
	},
	{
		name:            "body-exists",
		doc:             "activity and loop bodies reference existing diagrams",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) {
					switch x := n.(type) {
					case *uml.ActivityNode:
						if x.Body == "" {
							ctx.add(n, "activity %q has no body diagram", x.Name())
						} else if ctx.model.DiagramByName(x.Body) == nil {
							ctx.add(n, "activity %q references unknown diagram %q", x.Name(), x.Body)
						}
					case *uml.LoopNode:
						if x.Body == "" {
							ctx.add(n, "loop %q has no body diagram", x.Name())
						} else if ctx.model.DiagramByName(x.Body) == nil {
							ctx.add(n, "loop %q references unknown diagram %q", x.Name(), x.Body)
						}
					}
				},
			}
		},
	},
	{
		name:            "no-activity-cycles",
		doc:             "activity/loop nesting is acyclic (an activity may not, transitively, contain itself)",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			// Diagram -> referenced-diagram edges, collected during the walk.
			refs := map[string][]string{}
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) {
					switch x := n.(type) {
					case *uml.ActivityNode:
						if x.Body != "" {
							refs[d.Name()] = append(refs[d.Name()], x.Body)
						}
					case *uml.LoopNode:
						if x.Body != "" {
							refs[d.Name()] = append(refs[d.Name()], x.Body)
						}
					}
				},
				finish: func() {
					const (
						white = 0
						gray  = 1
						black = 2
					)
					var color map[string]int
					var visit func(name string) bool // returns true when a cycle is found
					visit = func(name string) bool {
						switch color[name] {
						case gray:
							return true
						case black:
							return false
						}
						color[name] = gray
						for _, next := range refs[name] {
							if visit(next) {
								color[name] = black
								return true
							}
						}
						color[name] = black
						return false
					}
					for _, d := range ctx.model.Diagrams() {
						color = map[string]int{}
						if visit(d.Name()) {
							ctx.add(d, "diagram %q participates in a cyclic activity nesting", d.Name())
						}
					}
				},
			}
		},
	},
	{
		name:            "guards-parse",
		doc:             "edge guards are valid expressions over declared names",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			// Guarded edges are buffered and checked at finish, once the
			// known-variable set has absorbed every loop variable.
			var guarded []*uml.Edge
			return ruleVisitor{
				edge: func(d *uml.Diagram, e *uml.Edge) {
					if e.Guard != "" && !e.IsElse() {
						guarded = append(guarded, e)
					}
				},
				finish: func() {
					known := ctx.shared.known
					for _, e := range guarded {
						n, err := expr.Parse(e.Guard)
						if err != nil {
							ctx.add(e, "guard %q does not parse: %v", e.Guard, err)
							continue
						}
						for _, v := range expr.Vars(n) {
							if !known[v] {
								ctx.add(e, "guard %q references undeclared variable %q", e.Guard, v)
							}
						}
					}
				},
			}
		},
	},
	{
		name:            "cost-functions",
		doc:             "cost-function expressions parse and reference defined functions",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			// Nodes carrying expressions are buffered and checked at finish,
			// for the same reason as guards-parse.
			var carriers []uml.Node
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) {
					switch x := n.(type) {
					case *uml.ActionNode:
						if x.CostFunc != "" {
							carriers = append(carriers, n)
						}
					case *uml.ActivityNode:
						if x.CostFunc != "" {
							carriers = append(carriers, n)
						}
					case *uml.LoopNode:
						if x.Count != "" {
							carriers = append(carriers, n)
						}
					}
				},
				finish: func() {
					known := ctx.shared.known
					// checkNode validates one expression AST's calls and vars.
					checkNode := func(e uml.Element, what, src string, n expr.Node, extraVars map[string]bool) {
						for _, name := range expr.Calls(n) {
							if expr.IsBuiltin(name) {
								continue
							}
							if _, ok := ctx.model.Function(name); !ok {
								ctx.add(e, "%s %q calls undefined function %q", what, src, name)
							}
						}
						for _, v := range expr.Vars(n) {
							if !known[v] && !extraVars[v] {
								ctx.add(e, "%s %q references undeclared variable %q", what, src, v)
							}
						}
					}
					// stochastic marks the sources that may be distribution
					// literals (costs and loop counts; see expr.ParseDist): for
					// those, a whole-source constructor call is not an undefined
					// function — its argument expressions are validated instead.
					checkExpr := func(e uml.Element, what, src string, extraVars map[string]bool, stochastic bool) {
						if src == "" {
							return
						}
						n, err := expr.Parse(src)
						if err != nil {
							ctx.add(e, "%s %q does not parse: %v", what, src, err)
							return
						}
						if stochastic {
							if name, args, ok := expr.DistCall(n); ok {
								if _, defined := ctx.model.Function(name); !defined {
									for _, a := range args {
										checkNode(e, what, src, a, extraVars)
									}
									return
								}
							}
						}
						checkNode(e, what, src, n, extraVars)
					}
					for _, node := range carriers {
						switch x := node.(type) {
						case *uml.ActionNode:
							checkExpr(node, "cost function", x.CostFunc, nil, true)
						case *uml.ActivityNode:
							checkExpr(node, "cost function", x.CostFunc, nil, true)
						case *uml.LoopNode:
							checkExpr(node, "loop count", x.Count, nil, true)
						}
					}
					for _, f := range ctx.model.Functions() {
						params := map[string]bool{}
						for _, p := range f.Params {
							params[p.Name] = true
						}
						// Attribute function-body findings to the model root: the
						// function is a model property, not a diagram element.
						checkExpr(ctx.model, "body of function "+f.Name, f.Body, params, false)
					}
				},
			}
		},
	},
	{
		name:            "profile-conformance",
		doc:             "stereotype applications conform to the profile (base class, tag types, constraints)",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			// The checker's walk order (model, then per diagram: diagram,
			// nodes, edges) matches uml.Walk, which this rule historically
			// ran itself.
			validate := func(e uml.Element) {
				for _, err := range ctx.registry.Validate(e) {
					ctx.add(e, "%v", err)
				}
			}
			return ruleVisitor{
				model:        func(m *uml.Model) { validate(m) },
				enterDiagram: func(d *uml.Diagram) { validate(d) },
				node:         func(d *uml.Diagram, n uml.Node) { validate(n) },
				edge:         func(d *uml.Diagram, e *uml.Edge) { validate(e) },
			}
		},
	},
	{
		name:            "stochastic-tags",
		doc:             "distribution literals appear only in expression tags that accept them",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			// A whole-source constructor call (normal(mu, sigma), uniform(lo,
			// hi), empirical(...)) denotes a random draw only where the tag
			// definition is marked Stochastic (costs, loop counts). In any
			// other expression tag it would evaluate as an ordinary —
			// undefined — function call at runtime; report it here with a
			// message that names the actual problem. exp(x) stays exempt:
			// outside stochastic tags it keeps its builtin e^x meaning.
			check := func(e uml.Element) {
				stName := e.Stereotype()
				if stName == "" || ctx.registry == nil {
					return
				}
				st, ok := ctx.registry.Lookup(stName)
				if !ok {
					return // profile-conformance reports unknown stereotypes
				}
				for _, td := range st.Tags {
					if td.Type != profile.TagExpr || td.Stochastic {
						continue
					}
					raw, set := e.Tag(td.Name)
					if !set {
						continue
					}
					n, err := expr.Parse(raw)
					if err != nil {
						continue // profile-conformance reports the parse error
					}
					name, _, isDist := expr.DistCall(n)
					if !isDist || expr.IsBuiltin(name) {
						continue
					}
					if _, defined := ctx.model.Function(name); defined {
						continue // a model-defined function shadows the constructor
					}
					ctx.add(e, "tag %q of <<%s>> does not accept a distribution literal %q (draws are only legal in stochastic tags such as %q)",
						td.Name, stName, raw, profile.TagTime)
				}
			}
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) { check(n) },
			}
		},
	},
	{
		name:            "perf-element-names",
		doc:             "performance modeling elements have unique non-empty names (they become C++ identifiers)",
		defaultSeverity: Error,
		visit: func(ctx *ruleContext) ruleVisitor {
			seen := map[string]uml.Element{}
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) {
					if !ctx.registry.IsPerformanceElement(n) {
						return
					}
					if n.Name() == "" {
						ctx.add(n, "performance modeling element has no name")
						return
					}
					if prev, dup := seen[n.Name()]; dup {
						ctx.add(n, "performance element name %q already used by element %s",
							n.Name(), prev.ID())
						return
					}
					seen[n.Name()] = n
				},
			}
		},
	},
	{
		name:            "mpi-pairing",
		doc:             "models with receives should have sends (and vice versa), or every receive will deadlock",
		defaultSeverity: Warning,
		visit: func(ctx *ruleContext) ruleVisitor {
			var sends, recvs []uml.Element
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) {
					switch n.Stereotype() {
					case "mpi_send":
						sends = append(sends, n)
					case "mpi_recv":
						recvs = append(recvs, n)
					case "mpi_sendrecv": // balanced by construction
						sends = append(sends, n)
						recvs = append(recvs, n)
					}
				},
				finish: func() {
					if len(recvs) > 0 && len(sends) == 0 {
						ctx.add(recvs[0], "model contains %d mpi_recv element(s) but no mpi_send: receives can never complete", len(recvs))
					}
					if len(sends) > 0 && len(recvs) == 0 {
						ctx.add(sends[0], "model contains %d mpi_send element(s) but no mpi_recv: messages are never consumed", len(sends))
					}
				},
			}
		},
	},
	{
		name:            "unannotated-actions",
		doc:             "actions without a stereotype do not contribute to the performance model",
		defaultSeverity: Info,
		visit: func(ctx *ruleContext) ruleVisitor {
			return ruleVisitor{
				node: func(d *uml.Diagram, n uml.Node) {
					if n.Kind() == uml.KindAction && n.Stereotype() == "" {
						ctx.add(n, "action %q carries no stereotype and will be ignored by the transformation", n.Name())
					}
				},
			}
		},
	},
}
