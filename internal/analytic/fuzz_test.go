package analytic_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"prophet/internal/analytic"
	"prophet/internal/builder"
	"prophet/internal/checker"
	"prophet/internal/interp"
	"prophet/internal/samples"
	"prophet/internal/sim"
	"prophet/internal/xmi"
)

// stochasticSeed is a small model exercising every distribution family
// plus a weighted decision, so the fuzzer starts from inputs where the
// solver actually takes the stochastic paths.
func stochasticSeed() string {
	b := builder.New("stochastic-seed")
	d := b.Diagram("main")
	d.Initial()
	d.Action("Fetch").Cost("exp(0.002)")
	d.Decision("D")
	d.Action("Fast").Cost("uniform(0.001, 0.003)")
	d.Action("Slow").Cost("normal(0.005, 0.002)")
	d.Merge("M")
	d.Action("Rpc").Cost("empirical(0.001, 0.004, 0.01)")
	d.Final()
	d.Flow("initial", "Fetch")
	d.Flow("Fetch", "D")
	d.FlowWeighted("D", "Fast", 0.7)
	d.FlowWeighted("D", "Slow", 0.3)
	d.Flow("Fast", "M")
	d.Flow("Slow", "M")
	d.Flow("M", "Rpc")
	d.Flow("Rpc", "final")
	s, err := xmi.EncodeString(builder.MustBuild(b))
	if err != nil {
		panic(err)
	}
	return s
}

// FuzzAnalyticAgreement is the differential oracle for the closed-form
// solver: on any checkable model the solver accepts, its mean must agree
// with simulation — exactly when the model is deterministic, and within
// a CLT envelope of a small Monte Carlo batch when it is stochastic.
func FuzzAnalyticAgreement(f *testing.F) {
	seed := func(s string, err error) {
		if err != nil {
			f.Fatal(err)
		}
		f.Add(s)
	}
	seed(xmi.EncodeString(samples.Sample()))
	seed(xmi.EncodeString(samples.Kernel6()))
	seed(xmi.EncodeString(samples.Jacobi()))
	f.Add(stochasticSeed())

	chk := checker.New()
	f.Fuzz(func(t *testing.T, doc string) {
		m, err := xmi.DecodeString(doc)
		if err != nil {
			t.Skip()
		}
		if rep := chk.Check(m); rep.HasErrors() {
			t.Skip()
		}
		res, err := analytic.Solve(m, analytic.Config{MaxSteps: 20000})
		if err != nil {
			t.Skip() // outside the closed-form class; nothing to compare
		}
		if math.IsNaN(res.Mean) || math.IsInf(res.Mean, 0) ||
			math.IsNaN(res.Variance) || math.IsInf(res.Variance, 0) {
			t.Skip() // degenerate arithmetic (inf/NaN costs) has no oracle
		}
		if res.Variance < 0 {
			t.Fatalf("negative variance %v", res.Variance)
		}
		pr, err := interp.Compile(m, nil)
		if err != nil {
			t.Skip()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		run := func(seed int64) (float64, bool) {
			r, rerr := pr.Run(interp.Config{MaxSteps: 20000, Seed: seed, Context: ctx, NoTrace: true})
			var ie *sim.InterruptError
			if errors.As(rerr, &ie) || errors.Is(rerr, context.DeadlineExceeded) {
				t.Skip()
			}
			if rerr != nil {
				return 0, false
			}
			return r.Makespan, true
		}
		if !res.Stochastic {
			mk, ok := run(1)
			if !ok {
				t.Skip() // runtime error (e.g. step budget) the walker's bound missed
			}
			if tol := 1e-9 * (1 + math.Abs(mk)); math.Abs(res.Mean-mk) > tol {
				t.Fatalf("deterministic model: analytic %v, simulated %v", res.Mean, mk)
			}
			return
		}
		const runs = 48
		var sum float64
		for s := int64(1); s <= runs; s++ {
			mk, ok := run(s)
			if !ok {
				t.Skip()
			}
			sum += mk
		}
		mcMean := sum / runs
		// 12 standard errors plus float slack: astronomically unlikely to
		// trip by chance, tight enough to catch a wrong mixture rule.
		tol := 12*math.Sqrt(res.Variance/runs) + 1e-6*(1+math.Abs(res.Mean))
		if math.Abs(res.Mean-mcMean) > tol {
			t.Fatalf("stochastic model: analytic mean %v, MC mean %v (tol %v)", res.Mean, mcMean, tol)
		}
	})
}
