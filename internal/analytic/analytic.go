// Package analytic predicts a model's expected makespan in closed form,
// with no simulation engine: it walks the flow graph the way the
// generated C++ program executes — guard chains in edge order, loop
// bodies repeated count times, fork branches summed (a single processor
// serializes them), code fragments applied before each element's
// execute() — and propagates the exact mean and variance of the elapsed
// time through every construct.
//
// Deterministic models solve to their exact makespan (the conformance
// analytic-agreement oracle pins this against the simulator to 1e-9).
// Stochastic constructs solve to closed-form moments:
//
//   - distribution-literal costs (expr.ParseDist) contribute their exact
//     mean and variance, including the truncation at zero of normal
//     draws (sim.Stream.Normal);
//   - weighted decisions become probability mixtures over their
//     branches: mean = Σ pᵢ·mᵢ, E[X²] = Σ pᵢ·(vᵢ+mᵢ²);
//   - independent sequential contributions add in both moments.
//
// Everything else — messaging and threading stereotypes, multi-process
// systems, distribution-valued loop counts, state mutation inside a
// weighted branch — is outside the closed-form class and returns an
// error, which mode=auto treats as "fall back to simulation".
//
// The solver answers in microseconds where a simulation run takes
// milliseconds (cmd/benchrunner records the ratio in BENCH_runner.json),
// which is what makes mode=analytic a serving-layer fast path.
package analytic

import (
	"fmt"
	"strings"

	"prophet/internal/expr"
	"prophet/internal/machine"
	"prophet/internal/profile"
	"prophet/internal/uml"
)

// Config parameterizes one solve, mirroring the simulation configuration
// so the two backends answer the same question.
type Config struct {
	// Params are the system parameters; the zero value means
	// machine.DefaultParams(). Only single-process single-processor
	// systems are in the analytic class.
	Params machine.SystemParams
	// Globals overrides/provides values for global model variables.
	Globals map[string]float64
	// MaxSteps bounds element executions (0 = the interpreter's 50e6
	// default), so a diverging cyclic model fails instead of hanging.
	MaxSteps int
}

// Result is the closed-form answer.
type Result struct {
	// Mean is the expected makespan. For a deterministic model it is the
	// exact makespan every simulation run produces.
	Mean float64
	// Variance is the exact variance of the makespan under the model's
	// distributions and branch weights (0 for deterministic models).
	Variance float64
	// Stochastic reports whether any stochastic construct (distribution
	// cost or weighted decision) contributed: if false, Mean is exact.
	Stochastic bool
	// Globals holds the final values of the global model variables after
	// the walk (branch-frozen, so identical across stochastic outcomes).
	Globals map[string]float64
	// Steps counts element executions, the same work measure the
	// interpreter's runaway guard uses.
	Steps int
}

// Eligible reports whether the model and system parameters are in the
// analytic class, by quick structural scan: a single process on a single
// processor, and only plain flow constructs (no messaging or threading
// stereotypes). Eligible is the mode=auto pre-filter; Solve itself may
// still reject (e.g. stochastic loop counts), which auto treats as a
// fallback to simulation.
func Eligible(m *uml.Model, sp machine.SystemParams) bool {
	if sp == (machine.SystemParams{}) {
		sp = machine.DefaultParams()
	}
	if sp.Processes != 1 || sp.Nodes != 1 || sp.ProcessorsPerNode != 1 {
		return false
	}
	for _, d := range m.Diagrams() {
		for _, n := range d.Nodes() {
			switch x := n.(type) {
			case *uml.ActionNode:
				if st := x.Stereotype(); st != "" && st != profile.ActionPlus {
					return false
				}
			case *uml.ActivityNode:
				if x.Stereotype() != profile.ActivityPlus {
					return false
				}
			}
		}
	}
	return true
}

// Solve computes the closed-form makespan moments of the model under the
// configuration.
func Solve(m *uml.Model, cfg Config) (*Result, error) {
	defs := make([]expr.Def, 0, len(m.Functions()))
	for _, f := range m.Functions() {
		d := expr.Def{Name: f.Name, Body: f.Body}
		for _, p := range f.Params {
			d.Params = append(d.Params, p.Name)
		}
		defs = append(defs, d)
	}
	lib, err := expr.NewLibrary(defs)
	if err != nil {
		return nil, fmt.Errorf("analytic: %w", err)
	}

	sp := cfg.Params
	if sp == (machine.SystemParams{}) {
		sp = machine.DefaultParams()
	}
	if sp.Processes != 1 || sp.Nodes != 1 || sp.ProcessorsPerNode != 1 {
		return nil, fmt.Errorf("analytic: system %+v is not single-process single-processor", sp)
	}

	w := &walker{
		model:   m,
		lib:     lib,
		sp:      sp.Env(),
		globals: map[string]float64{},
		locals:  map[string]float64{"pid": 0, "tid": 0, "uid": 0},
		// The same runaway guard the interpreter uses, so a cyclic model
		// that diverges fails identically on both backends.
		maxSteps: cfg.MaxSteps,
		exprs:    map[string]*expr.Compiled{},
		dists:    map[string]*expr.Dist{},
		profiles: map[string]*bodyProfile{},
	}
	if w.maxSteps <= 0 {
		w.maxSteps = 50_000_000
	}
	for _, v := range m.VariablesIn(uml.ScopeGlobal) {
		w.globals[v.Name] = 0
		if v.Init != "" {
			val, err := w.evalSrc(v.Init)
			if err != nil {
				return nil, fmt.Errorf("analytic: initialize %s: %w", v.Name, err)
			}
			w.globals[v.Name] = val
		}
	}
	for k, v := range cfg.Globals {
		w.globals[k] = v
	}
	for _, v := range m.VariablesIn(uml.ScopeLocal) {
		w.locals[v.Name] = 0
		if v.Init != "" {
			val, err := w.evalSrc(v.Init)
			if err == nil {
				w.locals[v.Name] = val
			}
		}
	}

	main := m.Main()
	if main == nil {
		return nil, fmt.Errorf("analytic: model %q has no main diagram", m.Name())
	}
	mom, err := w.walkDiagram(main)
	if err != nil {
		return nil, err
	}
	return &Result{
		Mean:       mom.mean,
		Variance:   mom.varv,
		Stochastic: w.stochastic,
		Globals:    w.globals,
		Steps:      w.steps,
	}, nil
}

// moments is an elapsed-time contribution: mean and variance of an
// independent additive term. Sequential composition adds both fields.
type moments struct {
	mean, varv float64
}

func (m *moments) add(o moments) {
	m.mean += o.mean
	m.varv += o.varv
}

// walker is the solver state: variable frames plus the moments
// accumulator threading through walk calls.
type walker struct {
	model    *uml.Model
	lib      *expr.Library
	sp       map[string]float64
	globals  map[string]float64
	locals   map[string]float64
	steps    int
	maxSteps int
	// stochastic latches once any distribution draw or weighted decision
	// contributes.
	stochastic bool
	// frozen > 0 while walking the branches of a weighted decision:
	// assignments there would make the mixture depend on which branch
	// ran, which is not closed-form, so they are an error.
	frozen int
	// exprs/dists memoize compilation per distinct source string.
	exprs map[string]*expr.Compiled
	dists map[string]*expr.Dist
	// flowIdx caches one dense flow index per diagram for convergence
	// queries (fork joins and weighted-branch merges).
	flowIdx map[*uml.Diagram]*uml.FlowIndex
	// profiles memoizes one read/write summary per diagram for the
	// loop-invariance collapse; fnVars is the lazy union of free
	// variables over every model-defined function body.
	profiles map[string]*bodyProfile
	fnVars   map[string]bool
}

// bodyProfile summarizes a diagram subtree for the loop-invariance
// collapse: whether it is free of code fragments (writes nothing) and
// which variable names its expressions can read.
type bodyProfile struct {
	pure bool
	vars map[string]bool
}

// functionVars returns the union of free variables across every
// model-defined function body — the over-approximation of what a call
// into the expression library can read.
func (w *walker) functionVars() map[string]bool {
	if w.fnVars != nil {
		return w.fnVars
	}
	w.fnVars = map[string]bool{}
	for _, f := range w.model.Functions() {
		if n, err := expr.Parse(f.Body); err == nil {
			for _, v := range expr.Vars(n) {
				w.fnVars[v] = true
			}
		}
	}
	return w.fnVars
}

// profileDiagram computes (and memoizes) the read/write summary of a
// diagram and everything it calls. A cyclic diagram reference sees the
// in-progress profile, which is harmless: a cyclic call graph fails
// during the walk long before any collapse could apply. Unparsable
// sources mark the profile impure so the walk surfaces the real error.
func (w *walker) profileDiagram(d *uml.Diagram) *bodyProfile {
	if p, ok := w.profiles[d.Name()]; ok {
		return p
	}
	p := &bodyProfile{pure: true, vars: map[string]bool{}}
	w.profiles[d.Name()] = p
	src := func(s string) {
		if s == "" {
			return
		}
		n, err := expr.Parse(s)
		if err != nil {
			p.pure = false
			return
		}
		for _, v := range expr.Vars(n) {
			p.vars[v] = true
		}
		for _, c := range expr.Calls(n) {
			if _, ok := w.model.Function(c); ok {
				for v := range w.functionVars() {
					p.vars[v] = true
				}
			}
		}
	}
	sub := func(name string) {
		body := w.model.DiagramByName(name)
		if body == nil {
			p.pure = false
			return
		}
		bp := w.profileDiagram(body)
		if !bp.pure {
			p.pure = false
		}
		for v := range bp.vars {
			p.vars[v] = true
		}
	}
	for _, n := range d.Nodes() {
		switch x := n.(type) {
		case *uml.ActionNode:
			if x.Code != "" {
				p.pure = false
			}
			src(x.CostFunc)
		case *uml.ActivityNode:
			if x.Code != "" {
				p.pure = false
			}
			src(x.CostFunc)
			sub(x.Body)
		case *uml.LoopNode:
			src(x.Count)
			sub(x.Body)
		}
	}
	for _, e := range d.Edges() {
		if !e.IsElse() {
			src(e.Guard)
		}
	}
	return p
}

// Var implements expr.Env variable lookup: locals shadow globals shadow
// system parameters, mirroring the generated program's scoping.
func (w *walker) Var(name string) (float64, bool) {
	if v, ok := w.locals[name]; ok {
		return v, true
	}
	if v, ok := w.globals[name]; ok {
		return v, true
	}
	v, ok := w.sp[name]
	return v, ok
}

func (w *walker) Func(string) (expr.Func, bool) { return nil, false }

func (w *walker) compileSrc(src string) (*expr.Compiled, error) {
	if c, ok := w.exprs[src]; ok {
		return c, nil
	}
	c, err := expr.CompileStringFolded(src)
	if err != nil {
		return nil, err
	}
	w.exprs[src] = c
	return c, nil
}

func (w *walker) evalSrc(src string) (float64, error) {
	c, err := w.compileSrc(src)
	if err != nil {
		return 0, err
	}
	return c.Eval(w.lib.Bind(w))
}

// parseDist recognizes src as a distribution literal, honoring
// model-defined function shadowing like interp.Compile.
func (w *walker) parseDist(src string) (*expr.Dist, bool) {
	if d, ok := w.dists[src]; ok {
		return d, d != nil
	}
	d, ok := expr.ParseDist(src)
	if ok {
		if _, defined := w.model.Function(d.Kind.String()); defined {
			d, ok = nil, false
		}
	}
	w.dists[src] = d
	return d, ok
}

func (w *walker) convergence(d *uml.Diagram, heads []string) uml.Node {
	if w.flowIdx == nil {
		w.flowIdx = map[*uml.Diagram]*uml.FlowIndex{}
	}
	ix, ok := w.flowIdx[d]
	if !ok {
		ix = uml.NewFlowIndex(d)
		w.flowIdx[d] = ix
	}
	return ix.Convergence(heads)
}

func (w *walker) assign(name string, val float64) error {
	if w.frozen > 0 {
		return fmt.Errorf("analytic: assignment to %q inside a weighted branch is not closed-form", name)
	}
	if _, ok := w.globals[name]; ok {
		w.globals[name] = val
		return nil
	}
	w.locals[name] = val
	return nil
}

func (w *walker) step(n uml.Node) error {
	w.steps++
	if w.steps > w.maxSteps {
		return fmt.Errorf("analytic: exceeded %d element executions at %q (unbounded loop?)", w.maxSteps, n.Name())
	}
	return nil
}

// walkDiagram evaluates a diagram from its initial node and returns the
// time moments it consumes. Empty diagrams take no time.
func (w *walker) walkDiagram(d *uml.Diagram) (moments, error) {
	ini := d.Initial()
	if ini == nil {
		if len(d.Nodes()) == 0 {
			return moments{}, nil
		}
		return moments{}, fmt.Errorf("analytic: diagram %q has no initial node", d.Name())
	}
	next, err := w.successor(d, ini)
	if err != nil {
		return moments{}, err
	}
	return w.walkSeq(d, next, nil)
}

// walkSeq accumulates moments from cur until a final node or stop
// (exclusive).
func (w *walker) walkSeq(d *uml.Diagram, cur uml.Node, stop uml.Node) (moments, error) {
	var total moments
	for cur != nil {
		if stop != nil && cur.ID() == stop.ID() {
			return total, nil
		}
		var err error
		switch n := cur.(type) {
		case *uml.ControlNode:
			switch n.Kind() {
			case uml.KindFinal:
				return total, nil
			case uml.KindMerge, uml.KindJoin:
				cur, err = w.successor(d, n)
			case uml.KindDecision:
				var dt moments
				dt, cur, err = w.branch(d, n)
				total.add(dt)
			case uml.KindFork:
				var dt moments
				dt, cur, err = w.fork(d, n)
				total.add(dt)
			default:
				return moments{}, fmt.Errorf("analytic: diagram %q: unexpected %v mid-flow", d.Name(), n.Kind())
			}
		case *uml.ActionNode:
			if err := w.step(n); err != nil {
				return moments{}, err
			}
			dt, aerr := w.action(n)
			if aerr != nil {
				return moments{}, aerr
			}
			total.add(dt)
			cur, err = w.successor(d, n)
		case *uml.ActivityNode:
			if err := w.step(n); err != nil {
				return moments{}, err
			}
			dt, aerr := w.activity(n)
			if aerr != nil {
				return moments{}, aerr
			}
			total.add(dt)
			cur, err = w.successor(d, n)
		case *uml.LoopNode:
			if err := w.step(n); err != nil {
				return moments{}, err
			}
			dt, lerr := w.loop(n)
			if lerr != nil {
				return moments{}, lerr
			}
			total.add(dt)
			cur, err = w.successor(d, n)
		default:
			return moments{}, fmt.Errorf("analytic: unknown node type %T", cur)
		}
		if err != nil {
			return moments{}, err
		}
	}
	return total, nil
}

func (w *walker) successor(d *uml.Diagram, n uml.Node) (uml.Node, error) {
	out := d.Outgoing(n.ID())
	switch len(out) {
	case 0:
		return nil, nil
	case 1:
		next := d.Node(out[0].To())
		if next == nil {
			return nil, fmt.Errorf("analytic: diagram %q: dangling edge from %q", d.Name(), n.Name())
		}
		return next, nil
	}
	return nil, fmt.Errorf("analytic: diagram %q: %v %q has %d successors", d.Name(), n.Kind(), n.Name(), len(out))
}

// branch evaluates a decision. A guarded decision follows the first true
// guard in edge order, falling back to the else edge — the generated
// if/else-if chain — contributing no time itself. A weighted decision
// becomes a closed-form probability mixture over its branches.
func (w *walker) branch(d *uml.Diagram, n *uml.ControlNode) (moments, uml.Node, error) {
	out := d.Outgoing(n.ID())
	if len(out) > 0 && out[0].Guard == "" && out[0].Weight > 0 {
		dt, next, err := w.weighted(d, n, out)
		return dt, next, err
	}
	var elseEdge *uml.Edge
	for _, e := range out {
		if e.IsElse() {
			elseEdge = e
			continue
		}
		if e.Guard == "" {
			return moments{}, nil, fmt.Errorf("analytic: diagram %q: decision %q mixes weighted and guarded branches", d.Name(), n.Name())
		}
		v, err := w.evalSrc(e.Guard)
		if err != nil {
			return moments{}, nil, fmt.Errorf("analytic: guard %q: %w", e.Guard, err)
		}
		if expr.Truthy(v) {
			return moments{}, d.Node(e.To()), nil
		}
	}
	if elseEdge != nil {
		return moments{}, d.Node(elseEdge.To()), nil
	}
	return moments{}, nil, fmt.Errorf("analytic: diagram %q: no guard of decision %q is true and there is no else branch", d.Name(), n.Name())
}

// weighted solves a probabilistic decision as a mixture: each branch is
// walked to the convergence node of all branch heads, and the mixture
// moments are mean = Σ pᵢ·mᵢ and Var = Σ pᵢ·(vᵢ+mᵢ²) − mean². Branches
// must not mutate model state (assignments are frozen), so the walk
// continues from the convergence in a state independent of the branch
// taken.
func (w *walker) weighted(d *uml.Diagram, n *uml.ControlNode, out []*uml.Edge) (moments, uml.Node, error) {
	var totalW float64
	for _, e := range out {
		if e.Guard != "" || e.Weight <= 0 {
			return moments{}, nil, fmt.Errorf("analytic: diagram %q: decision %q mixes weighted and guarded branches", d.Name(), n.Name())
		}
		totalW += e.Weight
	}
	w.stochastic = true
	heads := make([]string, len(out))
	for i, e := range out {
		heads[i] = e.To()
	}
	conv := w.convergence(d, heads)
	var mean, e2 float64
	w.frozen++
	for _, e := range out {
		head := d.Node(e.To())
		if head == nil {
			w.frozen--
			return moments{}, nil, fmt.Errorf("analytic: diagram %q: dangling decision edge", d.Name())
		}
		bm, err := w.walkSeq(d, head, conv)
		if err != nil {
			w.frozen--
			return moments{}, nil, err
		}
		p := e.Weight / totalW
		mean += p * bm.mean
		e2 += p * (bm.varv + bm.mean*bm.mean)
	}
	w.frozen--
	varv := e2 - mean*mean
	if varv < 0 {
		varv = 0
	}
	return moments{mean: mean, varv: varv}, conv, nil
}

// fork walks each branch to the common convergence node and sums the
// branch moments: on a single processor the parallel branches serialize,
// so elapsed time at the join equals the total compute regardless of
// interleaving. Returns the node to continue from after the convergence.
func (w *walker) fork(d *uml.Diagram, n *uml.ControlNode) (moments, uml.Node, error) {
	out := d.Outgoing(n.ID())
	if len(out) < 2 {
		return moments{}, nil, fmt.Errorf("analytic: diagram %q: fork %q has %d branch(es)", d.Name(), n.Name(), len(out))
	}
	heads := make([]string, len(out))
	for i, e := range out {
		heads[i] = e.To()
	}
	conv := w.convergence(d, heads)
	var total moments
	for _, e := range out {
		head := d.Node(e.To())
		if head == nil {
			return moments{}, nil, fmt.Errorf("analytic: diagram %q: dangling fork edge", d.Name())
		}
		dt, err := w.walkSeq(d, head, conv)
		if err != nil {
			return moments{}, nil, err
		}
		total.add(dt)
	}
	if conv != nil && conv.Kind() == uml.KindJoin {
		next, err := w.successor(d, conv)
		return total, next, err
	}
	return total, conv, nil
}

// action applies the element's code fragment, then charges its cost.
// Only plain <<action+>> elements are analytic; communication and
// threading stereotypes need the simulator.
func (w *walker) action(n *uml.ActionNode) (moments, error) {
	switch n.Stereotype() {
	case "":
		return moments{}, nil // not a performance modeling element
	case profile.ActionPlus:
	default:
		return moments{}, fmt.Errorf("analytic: element %q: stereotype <<%s>> is not analytic", n.Name(), n.Stereotype())
	}
	if err := w.applyCode(n.Code, n.Name()); err != nil {
		return moments{}, err
	}
	return w.cost(n.CostFunc, n)
}

func (w *walker) activity(n *uml.ActivityNode) (moments, error) {
	if st := n.Stereotype(); st != profile.ActivityPlus {
		return moments{}, fmt.Errorf("analytic: activity %q: stereotype <<%s>> is not analytic", n.Name(), st)
	}
	if err := w.applyCode(n.Code, n.Name()); err != nil {
		return moments{}, err
	}
	total, err := w.cost(n.CostFunc, n)
	if err != nil {
		return moments{}, err
	}
	body := w.model.DiagramByName(n.Body)
	if body == nil {
		return moments{}, fmt.Errorf("analytic: activity %q references unknown diagram %q", n.Name(), n.Body)
	}
	dt, err := w.walkDiagram(body)
	if err != nil {
		return moments{}, err
	}
	total.add(dt)
	return total, nil
}

// loop repeats the body count times. Iterations are walked one by one —
// loop-variable-dependent costs stay exact — and independent per-draw
// variances add across iterations. A distribution-valued count is not
// closed-form (the makespan becomes a random sum) and is rejected.
func (w *walker) loop(n *uml.LoopNode) (moments, error) {
	if _, ok := w.parseDist(n.Count); ok {
		return moments{}, fmt.Errorf("analytic: loop %q: stochastic count %q is not closed-form", n.Name(), n.Count)
	}
	v, err := w.evalSrc(n.Count)
	if err != nil {
		return moments{}, fmt.Errorf("analytic: loop %q count: %w", n.Name(), err)
	}
	count := int(v)
	body := w.model.DiagramByName(n.Body)
	if body == nil {
		return moments{}, fmt.Errorf("analytic: loop %q references unknown diagram %q", n.Name(), n.Body)
	}
	saved, hadSaved := 0.0, false
	if n.Var != "" {
		saved, hadSaved = w.locals[n.Var]
	}
	restore := func() {
		if n.Var != "" {
			if hadSaved {
				w.locals[n.Var] = saved
			} else {
				delete(w.locals, n.Var)
			}
		}
	}
	var total moments
	// Loop-invariance collapse: a body that writes nothing and never
	// reads the loop variable contributes identical, independent moments
	// every iteration, so one walk plus replaying that value count times
	// replaces count walks — the fast path that makes large batch loops
	// answer in microseconds. The replay keeps the accumulation order
	// (and hence every last float bit) identical to the full walk, and
	// the step budget is still charged for every iteration, so a count
	// big enough to trip the interpreter's runaway guard fails here too.
	if count > 1 {
		if p := w.profileDiagram(body); p.pure && (n.Var == "" || !p.vars[n.Var]) {
			if err := w.step(n); err != nil {
				return moments{}, err
			}
			if n.Var != "" {
				w.locals[n.Var] = 0
			}
			before := w.steps
			one, err := w.walkDiagram(body)
			restore()
			if err != nil {
				return moments{}, err
			}
			perIter := w.steps - before + 1 // body plus the loop node's own step
			rest := count - 1
			if rest > (w.maxSteps-w.steps)/perIter {
				return moments{}, fmt.Errorf("analytic: exceeded %d element executions at %q (unbounded loop?)", w.maxSteps, n.Name())
			}
			w.steps += rest * perIter
			for i := 0; i < count; i++ {
				total.add(one)
			}
			return total, nil
		}
	}
	for i := 0; i < count; i++ {
		if err := w.step(n); err != nil {
			return moments{}, err
		}
		if n.Var != "" {
			w.locals[n.Var] = float64(i)
		}
		dt, err := w.walkDiagram(body)
		if err != nil {
			return moments{}, err
		}
		total.add(dt)
	}
	restore()
	return total, nil
}

// applyCode runs the assignment subset of a code fragment — `name =
// expression` statements separated by ';' or newlines, anything else
// being opaque documentation — exactly as the inlined fragment of the
// generated C++ executes before execute().
func (w *walker) applyCode(code, name string) error {
	for _, stmt := range strings.FieldsFunc(code, func(r rune) bool { return r == ';' || r == '\n' }) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" || strings.HasPrefix(stmt, "//") {
			continue
		}
		eq := strings.IndexByte(stmt, '=')
		if eq <= 0 || eq+1 < len(stmt) && stmt[eq+1] == '=' ||
			stmt[eq-1] == '!' || stmt[eq-1] == '<' || stmt[eq-1] == '>' {
			continue
		}
		target := strings.TrimSpace(stmt[:eq])
		if !isIdentifier(target) {
			continue
		}
		c, err := w.compileSrc(strings.TrimSpace(stmt[eq+1:]))
		if err != nil {
			continue // non-expression right-hand sides are documentation
		}
		v, err := c.Eval(w.lib.Bind(w))
		if err != nil {
			return fmt.Errorf("analytic: code of %q: %w", name, err)
		}
		if err := w.assign(target, v); err != nil {
			return err
		}
	}
	return nil
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// cost evaluates the element's execution-time expression: the attached
// cost function, else the `time` tagged value, else zero. A distribution
// literal contributes its exact moments; anything else contributes its
// value with zero variance.
func (w *walker) cost(costFunc string, e uml.Element) (moments, error) {
	src := costFunc
	if src == "" {
		if raw, ok := e.Tag(profile.TagTime); ok {
			src = raw
		}
	}
	if src == "" {
		return moments{}, nil
	}
	if d, ok := w.parseDist(src); ok {
		w.stochastic = true
		mean, varv, err := d.Moments(w.lib.Bind(w))
		if err != nil {
			return moments{}, fmt.Errorf("analytic: cost of %q: %w", e.Name(), err)
		}
		return moments{mean: mean, varv: varv}, nil
	}
	v, err := w.evalSrc(src)
	if err != nil {
		return moments{}, fmt.Errorf("analytic: cost of %q: %w", e.Name(), err)
	}
	return moments{mean: v}, nil
}
