package analytic_test

import (
	"math"
	"strings"
	"testing"

	"prophet/internal/analytic"
	"prophet/internal/builder"
	"prophet/internal/interp"
	"prophet/internal/machine"
	"prophet/internal/samples"
	"prophet/internal/uml"
)

// near reports |a-b| within an absolute-plus-relative tolerance tight
// enough to be "equal up to float round-off" for these closed forms.
func near(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// Deterministic models are the degenerate case of the solver: the mean
// must equal the simulated makespan exactly (same arithmetic, different
// order of traversal bookkeeping only) and the variance must be zero.
func TestSolveMatchesInterpDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		m    *uml.Model
	}{
		{"sample", samples.Sample()},
		{"kernel6", samples.Kernel6()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := analytic.Solve(tc.m, analytic.Config{})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if res.Stochastic {
				t.Errorf("deterministic model reported Stochastic")
			}
			if res.Variance != 0 {
				t.Errorf("deterministic model variance = %v, want 0", res.Variance)
			}
			pr, err := interp.Compile(tc.m, nil)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			sim, err := pr.Run(interp.Config{})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !near(res.Mean, sim.Makespan) {
				t.Errorf("analytic mean %v != simulated makespan %v", res.Mean, sim.Makespan)
			}
			for name, v := range sim.Globals {
				if av, ok := res.Globals[name]; !ok || !near(av, v) {
					t.Errorf("global %q: analytic %v, simulated %v", name, av, v)
				}
			}
		})
	}
}

// A loop over a uniform draw: per-iteration mean (lo+hi)/2 and variance
// (hi-lo)²/12, and independent draws add across iterations.
func TestUniformLoopMoments(t *testing.T) {
	b := builder.New("uloop")
	d := b.Diagram("main")
	d.Initial()
	d.Loop("L", "4", "body").Var("i")
	d.Final()
	d.Chain("initial", "L", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("Work").Cost("uniform(1, 3)")
	body.Final()
	body.Chain("initial", "Work", "final")
	m := builder.MustBuild(b)

	res, err := analytic.Solve(m, analytic.Config{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Stochastic {
		t.Error("model with distribution cost not reported Stochastic")
	}
	if want := 4 * 2.0; !near(res.Mean, want) {
		t.Errorf("mean = %v, want %v", res.Mean, want)
	}
	if want := 4.0 / 3.0; !near(res.Variance, want) {
		t.Errorf("variance = %v, want %v", res.Variance, want)
	}
}

// A weighted decision is a closed-form mixture: mean Σ pᵢmᵢ and
// variance E[X²] − E[X]² over the branch moments.
func TestWeightedDecisionMixture(t *testing.T) {
	b := builder.New("wmix")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("D")
	d.Action("A").Cost("1")
	d.Action("B").Cost("3")
	d.Merge("M")
	d.Final()
	d.Flow("initial", "D")
	d.FlowWeighted("D", "A", 0.25)
	d.FlowWeighted("D", "B", 0.75)
	d.Flow("A", "M")
	d.Flow("B", "M")
	d.Flow("M", "final")
	m := builder.MustBuild(b)

	res, err := analytic.Solve(m, analytic.Config{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Stochastic {
		t.Error("weighted decision not reported Stochastic")
	}
	// mean = 0.25·1 + 0.75·3, E[X²] = 0.25·1 + 0.75·9, var = 7 − 2.5².
	if want := 2.5; !near(res.Mean, want) {
		t.Errorf("mean = %v, want %v", res.Mean, want)
	}
	if want := 0.75; !near(res.Variance, want) {
		t.Errorf("variance = %v, want %v", res.Variance, want)
	}
}

// Assignments inside a weighted branch would make downstream state
// random, which the mixture rule cannot represent; the solver must
// reject them rather than silently pick one branch's value.
func TestAssignmentInWeightedBranchRejected(t *testing.T) {
	b := builder.New("wassign")
	b.Global("x", "double")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("D")
	d.Action("A").Cost("1").Code("x = 1")
	d.Action("B").Cost("3")
	d.Merge("M")
	d.Final()
	d.Flow("initial", "D")
	d.FlowWeighted("D", "A", 0.5)
	d.FlowWeighted("D", "B", 0.5)
	d.Flow("A", "M")
	d.Flow("B", "M")
	d.Flow("M", "final")
	m := builder.MustBuild(b)

	_, err := analytic.Solve(m, analytic.Config{})
	if err == nil || !strings.Contains(err.Error(), "inside a weighted branch") {
		t.Fatalf("Solve error = %v, want weighted-branch assignment rejection", err)
	}
}

// A distribution-valued loop count is a random sum — outside the
// closed-form class — and must be rejected with a pointed message.
func TestStochasticLoopCountRejected(t *testing.T) {
	b := builder.New("dcount")
	d := b.Diagram("main")
	d.Initial()
	d.Loop("L", "empirical(2, 3)", "body").Var("i")
	d.Final()
	d.Chain("initial", "L", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("Work").Cost("0.5")
	body.Final()
	body.Chain("initial", "Work", "final")
	m := builder.MustBuild(b)

	_, err := analytic.Solve(m, analytic.Config{})
	if err == nil || !strings.Contains(err.Error(), "not closed-form") {
		t.Fatalf("Solve error = %v, want stochastic-count rejection", err)
	}
}

// Eligible is the mode=auto pre-filter: single-process single-processor
// systems with plain flow constructs only.
func TestEligible(t *testing.T) {
	m := samples.Sample()
	if !analytic.Eligible(m, machine.SystemParams{}) {
		t.Error("Sample with default params should be eligible")
	}
	multi := machine.DefaultParams()
	multi.Processes = 4
	if analytic.Eligible(m, multi) {
		t.Error("multi-process params should not be eligible")
	}
	if !analytic.Eligible(m, machine.DefaultParams()) {
		t.Error("explicit default params should be eligible")
	}
	if analytic.Eligible(samples.OmpRegion(), machine.SystemParams{}) {
		t.Error("omp_parallel model should not be eligible")
	}
}
