// Package xmi persists performance models as XML, the on-disk model format
// of Teuta ("Models (XML)" in the paper's Figure 2 architecture).
//
// The format is a compact XMI-flavored dialect: one <model> document owning
// <variable>, <function> and <diagram> elements; diagrams own <node> and
// <edge> elements; stereotype applications are stored as a stereotype
// attribute plus nested <tag> elements. Encode and Decode are exact
// inverses for every well-formed model (see the round-trip tests).
package xmi

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"
	"strings"

	"prophet/internal/uml"
)

// xmlModel is the document root.
type xmlModel struct {
	XMLName   xml.Name      `xml:"model"`
	Name      string        `xml:"name,attr"`
	Main      string        `xml:"main,attr,omitempty"`
	Variables []xmlVariable `xml:"variable"`
	Functions []xmlFunction `xml:"function"`
	Diagrams  []xmlDiagram  `xml:"diagram"`
}

type xmlVariable struct {
	Name  string `xml:"name,attr"`
	Type  string `xml:"type,attr"`
	Scope string `xml:"scope,attr"`
	Init  string `xml:"init,attr,omitempty"`
}

type xmlFunction struct {
	Name   string     `xml:"name,attr"`
	Type   string     `xml:"type,attr,omitempty"`
	Body   string     `xml:"body,attr"`
	Params []xmlParam `xml:"param"`
}

type xmlParam struct {
	Name string `xml:"name,attr"`
	Type string `xml:"type,attr,omitempty"`
}

type xmlDiagram struct {
	ID    string    `xml:"id,attr"`
	Name  string    `xml:"name,attr"`
	Nodes []xmlNode `xml:"node"`
	Edges []xmlEdge `xml:"edge"`
}

type xmlNode struct {
	ID         string   `xml:"id,attr"`
	Kind       string   `xml:"kind,attr"`
	Name       string   `xml:"name,attr,omitempty"`
	Stereotype string   `xml:"stereotype,attr,omitempty"`
	Body       string   `xml:"body,attr,omitempty"`  // activity/loop body diagram
	Count      string   `xml:"count,attr,omitempty"` // loop iteration count
	Var        string   `xml:"var,attr,omitempty"`   // loop variable
	CostFunc   string   `xml:"costfunc,attr,omitempty"`
	Code       string   `xml:"code,omitempty"`
	Tags       []xmlTag `xml:"tag"`
	Consts     []string `xml:"constraint"`
}

type xmlTag struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

type xmlEdge struct {
	From   string   `xml:"from,attr"`
	To     string   `xml:"to,attr"`
	Guard  string   `xml:"guard,attr,omitempty"`
	Weight float64  `xml:"weight,attr,omitempty"`
	Tags   []xmlTag `xml:"tag"`
	Consts []string `xml:"constraint"`
}

// Encode writes the model to w as indented XML.
func Encode(w io.Writer, m *uml.Model) error {
	doc := toXML(m)
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xmi: encode model %q: %w", m.Name(), err)
	}
	// Trailing newline for POSIX-friendly files.
	_, err := io.WriteString(w, "\n")
	return err
}

// EncodeString renders the model as an XML string.
func EncodeString(m *uml.Model) (string, error) {
	var sb strings.Builder
	if err := Encode(&sb, m); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// Save writes the model to a file.
func Save(path string, m *uml.Model) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("xmi: %w", err)
	}
	defer f.Close()
	if err := Encode(f, m); err != nil {
		return err
	}
	return f.Close()
}

// Decode reads a model from r. Documents in the dialect Encode emits are
// parsed by a hand-rolled scanner (fastDecode); anything it does not
// recognize — other XML constructs, malformed input — is retried through
// the stdlib decoder so observable behavior matches encoding/xml exactly.
func Decode(r io.Reader) (*uml.Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("xmi: decode: %w", err)
	}
	return decodeBytes(string(data))
}

// DecodeString parses a model from an XML string.
func DecodeString(s string) (*uml.Model, error) {
	return decodeBytes(s)
}

func decodeBytes(data string) (*uml.Model, error) {
	if doc, err := fastDecode(data); err == nil {
		return fromXML(doc)
	}
	var doc xmlModel
	dec := xml.NewDecoder(strings.NewReader(data))
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("xmi: decode: %w", err)
	}
	return fromXML(&doc)
}

// Load reads a model from a file.
func Load(path string) (*uml.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmi: %w", err)
	}
	defer f.Close()
	m, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("xmi: %s: %w", path, err)
	}
	return m, nil
}

// toXML converts the model tree to its document form.
func toXML(m *uml.Model) *xmlModel {
	doc := &xmlModel{Name: m.Name(), Main: m.MainName()}
	for _, v := range m.Variables() {
		doc.Variables = append(doc.Variables, xmlVariable{
			Name: v.Name, Type: v.Type, Scope: v.Scope.String(), Init: v.Init,
		})
	}
	for _, f := range m.Functions() {
		xf := xmlFunction{Name: f.Name, Type: f.Type, Body: f.Body}
		for _, p := range f.Params {
			xf.Params = append(xf.Params, xmlParam{Name: p.Name, Type: p.Type})
		}
		doc.Functions = append(doc.Functions, xf)
	}
	for _, d := range m.Diagrams() {
		xd := xmlDiagram{ID: d.ID(), Name: d.Name()}
		for _, n := range d.Nodes() {
			xn := xmlNode{
				ID:         n.ID(),
				Kind:       n.Kind().String(),
				Name:       n.Name(),
				Stereotype: n.Stereotype(),
				Consts:     n.Constraints(),
			}
			// Control nodes get synthetic names equal to their kind; do not
			// persist those.
			if xn.Name == n.Kind().String() && n.Kind().IsControl() {
				xn.Name = ""
			}
			for _, tv := range n.Tags() {
				xn.Tags = append(xn.Tags, xmlTag{Name: tv.Name, Value: tv.Value})
			}
			switch node := n.(type) {
			case *uml.ActionNode:
				xn.Code = node.Code
				xn.CostFunc = node.CostFunc
			case *uml.ActivityNode:
				xn.Body = node.Body
				xn.Code = node.Code
				xn.CostFunc = node.CostFunc
			case *uml.LoopNode:
				xn.Body = node.Body
				xn.Count = node.Count
				xn.Var = node.Var
			}
			xd.Nodes = append(xd.Nodes, xn)
		}
		for _, e := range d.Edges() {
			xe := xmlEdge{
				From: e.From(), To: e.To(), Guard: e.Guard, Weight: e.Weight,
				Consts: e.Constraints(),
			}
			for _, tv := range e.Tags() {
				xe.Tags = append(xe.Tags, xmlTag{Name: tv.Name, Value: tv.Value})
			}
			xd.Edges = append(xd.Edges, xe)
		}
		doc.Diagrams = append(doc.Diagrams, xd)
	}
	return doc
}

// sizeHint tallies the document's element counts so the model can be
// built with slab-allocated nodes and pre-sized containers instead of one
// heap allocation (plus incremental map growth) per element.
func sizeHint(doc *xmlModel) uml.SizeHint {
	h := uml.SizeHint{Diagrams: len(doc.Diagrams)}
	for i := range doc.Diagrams {
		xd := &doc.Diagrams[i]
		h.Edges += len(xd.Edges)
		for j := range xd.Nodes {
			switch uml.KindFromName(xd.Nodes[j].Kind) {
			case uml.KindAction:
				h.Actions++
			case uml.KindActivity:
				h.Activities++
			case uml.KindLoop:
				h.Loops++
			default:
				h.Controls++
			}
		}
	}
	return h
}

// fromXML rebuilds the model tree from its document form.
func fromXML(doc *xmlModel) (*uml.Model, error) {
	m := uml.NewModel(doc.Name)
	m.Preallocate(sizeHint(doc))
	for _, xv := range doc.Variables {
		scope := uml.ScopeGlobal
		switch xv.Scope {
		case "", "global":
		case "local":
			scope = uml.ScopeLocal
		default:
			return nil, fmt.Errorf("xmi: variable %q: unknown scope %q", xv.Name, xv.Scope)
		}
		if err := m.AddVariable(uml.Variable{Name: xv.Name, Type: xv.Type, Scope: scope, Init: xv.Init}); err != nil {
			return nil, fmt.Errorf("xmi: %w", err)
		}
	}
	for _, xf := range doc.Functions {
		f := uml.Function{Name: xf.Name, Type: xf.Type, Body: xf.Body}
		for _, p := range xf.Params {
			f.Params = append(f.Params, uml.Param{Name: p.Name, Type: p.Type})
		}
		if err := m.AddFunction(f); err != nil {
			return nil, fmt.Errorf("xmi: %w", err)
		}
	}
	for _, xd := range doc.Diagrams {
		d, err := m.AddDiagram(xd.Name)
		if err != nil {
			return nil, fmt.Errorf("xmi: %w", err)
		}
		d.Reserve(len(xd.Nodes), len(xd.Edges))
		for _, xn := range xd.Nodes {
			if err := addNode(m, d, xn); err != nil {
				return nil, err
			}
		}
		for _, xe := range xd.Edges {
			e, err := d.Connect(xe.From, xe.To, xe.Guard)
			if err != nil {
				return nil, fmt.Errorf("xmi: diagram %q: %w", xd.Name, err)
			}
			e.Weight = xe.Weight
			for _, tv := range xe.Tags {
				e.SetTag(tv.Name, tv.Value)
			}
			for _, c := range xe.Consts {
				e.AddConstraint(c)
			}
		}
	}
	if doc.Main != "" {
		if err := m.SetMain(doc.Main); err != nil {
			return nil, fmt.Errorf("xmi: %w", err)
		}
	}
	return m, nil
}

func addNode(m *uml.Model, d *uml.Diagram, xn xmlNode) error {
	kind := uml.KindFromName(xn.Kind)
	var (
		n   uml.Node
		err error
	)
	switch kind {
	case uml.KindAction:
		var a *uml.ActionNode
		a, err = m.AddAction(d, xn.ID, xn.Name)
		if err == nil {
			a.Code = xn.Code
			a.CostFunc = xn.CostFunc
			n = a
		}
	case uml.KindActivity:
		var a *uml.ActivityNode
		a, err = m.AddActivity(d, xn.ID, xn.Name, xn.Body)
		if err == nil {
			a.Code = xn.Code
			a.CostFunc = xn.CostFunc
			n = a
		}
	case uml.KindLoop:
		var l *uml.LoopNode
		l, err = m.AddLoop(d, xn.ID, xn.Name, xn.Count, xn.Body)
		if err == nil {
			l.Var = xn.Var
			n = l
		}
	case uml.KindInitial, uml.KindFinal, uml.KindDecision, uml.KindMerge,
		uml.KindFork, uml.KindJoin:
		var c *uml.ControlNode
		c, err = m.AddControl(d, xn.ID, kind)
		if err == nil {
			if xn.Name != "" {
				c.SetName(xn.Name)
			}
			n = c
		}
	default:
		return fmt.Errorf("xmi: node %q: unknown kind %q", xn.ID, xn.Kind)
	}
	if err != nil {
		return fmt.Errorf("xmi: %w", err)
	}
	n.SetStereotype(xn.Stereotype)
	for _, tv := range xn.Tags {
		n.SetTag(tv.Name, tv.Value)
	}
	for _, c := range xn.Consts {
		n.AddConstraint(c)
	}
	return nil
}
