package xmi

import (
	"testing"

	"prophet/internal/samples"
)

// FuzzDecode hardens the model decoder against arbitrary bytes: it must
// never panic, and any model it accepts must re-encode successfully.
func FuzzDecode(f *testing.F) {
	if s, err := EncodeString(samples.Sample()); err == nil {
		f.Add(s)
	}
	f.Add(`<model name="m"><diagram id="d1" name="main"/></model>`)
	f.Add(`<model name="m"><variable name="x" type="int"/></model>`)
	f.Add(`<model`)
	f.Add(``)
	f.Add(`<model name="m"><diagram id="d" name="n"><node id="a" kind="Action"/><edge from="a" to="a"/></diagram></model>`)
	f.Fuzz(func(t *testing.T, src string) {
		m, err := DecodeString(src)
		if err != nil {
			return
		}
		if _, err := EncodeString(m); err != nil {
			t.Fatalf("accepted model failed to re-encode: %v", err)
		}
	})
}
