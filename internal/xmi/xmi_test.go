package xmi

import (
	"path/filepath"
	"strings"
	"testing"

	"prophet/internal/uml"
)

// buildSample constructs the paper's Figure 7 sample model.
func buildSample(t *testing.T) *uml.Model {
	t.Helper()
	m := uml.NewModel("sample")
	m.AddVariable(uml.Variable{Name: "GV", Type: "double", Scope: uml.ScopeGlobal})
	m.AddVariable(uml.Variable{Name: "P", Type: "double", Scope: uml.ScopeGlobal})
	m.AddVariable(uml.Variable{Name: "tmp", Type: "int", Scope: uml.ScopeLocal, Init: "0"})
	m.AddFunction(uml.Function{Name: "FA1", Body: "2*P"})
	m.AddFunction(uml.Function{Name: "FSA2", Params: []uml.Param{{Name: "pid", Type: "int"}}, Body: "pid+1"})

	main, _ := m.AddDiagram("main")
	ini, _ := m.AddControl(main, "", uml.KindInitial)
	a1, _ := m.AddAction(main, "", "A1")
	a1.SetStereotype("action+")
	a1.CostFunc = "FA1()"
	a1.Code = "GV = 10;\nP = 4;"
	a1.SetTag("id", "1")
	a1.SetTag("type", "CPU")
	a1.AddConstraint("time >= 0")
	dec, _ := m.AddControl(main, "", uml.KindDecision)
	sa, _ := m.AddActivity(main, "", "SA", "SA")
	sa.SetStereotype("activity+")
	a2, _ := m.AddAction(main, "", "A2")
	a2.SetStereotype("action+")
	a2.CostFunc = "FA1()"
	fin, _ := m.AddControl(main, "", uml.KindFinal)
	main.Connect(ini.ID(), a1.ID(), "")
	main.Connect(a1.ID(), dec.ID(), "")
	e, _ := main.Connect(dec.ID(), sa.ID(), "GV > 0")
	e.Weight = 0.7
	e.SetTag("prob", "0.7")
	main.Connect(dec.ID(), a2.ID(), "else")
	main.Connect(sa.ID(), fin.ID(), "")
	main.Connect(a2.ID(), fin.ID(), "")

	sub, _ := m.AddDiagram("SA")
	si, _ := m.AddControl(sub, "", uml.KindInitial)
	sa2, _ := m.AddAction(sub, "", "SA2")
	sa2.SetStereotype("action+")
	sa2.CostFunc = "FSA2(pid)"
	lp, _ := m.AddLoop(sub, "", "L", "M", "SA") // self-referencing body for structure test
	lp.Var = "i"
	sf, _ := m.AddControl(sub, "", uml.KindFinal)
	sub.Connect(si.ID(), sa2.ID(), "")
	sub.Connect(sa2.ID(), lp.ID(), "")
	sub.Connect(lp.ID(), sf.ID(), "")
	return m
}

// modelsEquivalent compares two models structurally.
func modelsEquivalent(t *testing.T, a, b *uml.Model) {
	t.Helper()
	if a.Name() != b.Name() {
		t.Errorf("names differ: %q vs %q", a.Name(), b.Name())
	}
	if a.MainName() != b.MainName() {
		t.Errorf("main diagram differs: %q vs %q", a.MainName(), b.MainName())
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats(), b.Stats())
	}
	av, bv := a.Variables(), b.Variables()
	for i := range av {
		if av[i] != bv[i] {
			t.Errorf("variable %d differs: %+v vs %+v", i, av[i], bv[i])
		}
	}
	af, bf := a.Functions(), b.Functions()
	for i := range af {
		if af[i].Name != bf[i].Name || af[i].Body != bf[i].Body ||
			len(af[i].Params) != len(bf[i].Params) {
			t.Errorf("function %d differs", i)
		}
	}
	for di, ad := range a.Diagrams() {
		bd := b.Diagrams()[di]
		if ad.Name() != bd.Name() {
			t.Errorf("diagram %d name differs", di)
		}
		for ni, an := range ad.Nodes() {
			bn := bd.Nodes()[ni]
			if an.ID() != bn.ID() || an.Kind() != bn.Kind() ||
				an.Stereotype() != bn.Stereotype() {
				t.Errorf("node %s differs: %v/%v", an.ID(), an.Kind(), bn.Kind())
			}
			if len(an.Tags()) != len(bn.Tags()) {
				t.Errorf("node %s tag count differs", an.ID())
			} else {
				for i, tv := range an.Tags() {
					if bn.Tags()[i] != tv {
						t.Errorf("node %s tag %d differs", an.ID(), i)
					}
				}
			}
			if len(an.Constraints()) != len(bn.Constraints()) {
				t.Errorf("node %s constraints differ", an.ID())
			}
			switch x := an.(type) {
			case *uml.ActionNode:
				y := bn.(*uml.ActionNode)
				if x.Code != y.Code || x.CostFunc != y.CostFunc {
					t.Errorf("action %s payload differs: %q/%q %q/%q", x.ID(), x.Code, y.Code, x.CostFunc, y.CostFunc)
				}
			case *uml.ActivityNode:
				y := bn.(*uml.ActivityNode)
				if x.Body != y.Body {
					t.Errorf("activity %s body differs", x.ID())
				}
			case *uml.LoopNode:
				y := bn.(*uml.LoopNode)
				if x.Count != y.Count || x.Body != y.Body || x.Var != y.Var {
					t.Errorf("loop %s differs", x.ID())
				}
			}
		}
		for ei, ae := range ad.Edges() {
			be := bd.Edges()[ei]
			if ae.From() != be.From() || ae.To() != be.To() ||
				ae.Guard != be.Guard || ae.Weight != be.Weight {
				t.Errorf("edge %d differs", ei)
			}
		}
	}
}

func TestRoundTripString(t *testing.T) {
	m := buildSample(t)
	s, err := EncodeString(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(s, "<?xml") {
		t.Errorf("missing XML header")
	}
	got, err := DecodeString(s)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, s)
	}
	modelsEquivalent(t, m, got)
}

func TestRoundTripFile(t *testing.T) {
	m := buildSample(t)
	path := filepath.Join(t.TempDir(), "sample.xml")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	modelsEquivalent(t, m, got)
}

func TestEncodeIsDeterministic(t *testing.T) {
	m := buildSample(t)
	s1, _ := EncodeString(m)
	s2, _ := EncodeString(m)
	if s1 != s2 {
		t.Error("encoding the same model twice should be byte-identical")
	}
}

func TestDoubleRoundTripFixedPoint(t *testing.T) {
	m := buildSample(t)
	s1, err := EncodeString(m)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeString(s1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := EncodeString(m2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Errorf("encode/decode/encode is not a fixed point:\n%s\n----\n%s", s1, s2)
	}
}

func TestCodeFragmentSurvivesSpecialChars(t *testing.T) {
	m := uml.NewModel("x")
	d, _ := m.AddDiagram("main")
	a, _ := m.AddAction(d, "", "A")
	a.Code = "if (a < b && c > 0) { x = \"s\"; }\n\ttab"
	s, err := EncodeString(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	ga := got.Main().Nodes()[0].(*uml.ActionNode)
	if ga.Code != a.Code {
		t.Errorf("code fragment mangled: %q vs %q", ga.Code, a.Code)
	}
}

func TestGuardExpressionEscaping(t *testing.T) {
	m := uml.NewModel("x")
	d, _ := m.AddDiagram("main")
	a, _ := m.AddAction(d, "", "A")
	b, _ := m.AddAction(d, "", "B")
	d.Connect(a.ID(), b.ID(), `GV > 0 && P < 16`)
	s, _ := EncodeString(m)
	got, err := DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Main().Edges()[0].Guard != `GV > 0 && P < 16` {
		t.Errorf("guard mangled: %q", got.Main().Edges()[0].Guard)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":      "this is not xml",
		"unknown kind": `<model name="m"><diagram id="d1" name="main"><node id="n1" kind="Martian"/></diagram></model>`,
		"bad edge":     `<model name="m"><diagram id="d1" name="main"><node id="n1" kind="Action" name="A"/><edge from="n1" to="ghost"/></diagram></model>`,
		"dup diagram":  `<model name="m"><diagram id="d1" name="main"/><diagram id="d2" name="main"/></model>`,
		"dup node id":  `<model name="m"><diagram id="d1" name="main"><node id="n1" kind="Action" name="A"/><node id="n1" kind="Action" name="B"/></diagram></model>`,
		"bad main":     `<model name="m" main="ghost"><diagram id="d1" name="main"/></model>`,
		"bad scope":    `<model name="m"><variable name="x" type="double" scope="cosmic"/></model>`,
		"dup variable": `<model name="m"><variable name="x" type="double" scope="global"/><variable name="x" type="double" scope="global"/></model>`,
		"dup function": `<model name="m"><function name="f" body="1"/><function name="f" body="2"/></model>`,
	}
	for name, src := range cases {
		if _, err := DecodeString(src); err == nil {
			t.Errorf("%s: decode should fail", name)
		}
	}
}

func TestDecodeMinimal(t *testing.T) {
	m, err := DecodeString(`<model name="tiny"/>`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "tiny" || len(m.Diagrams()) != 0 {
		t.Errorf("minimal model wrong: %+v", m.Stats())
	}
}

func TestDecodeDefaultScopeIsGlobal(t *testing.T) {
	m, err := DecodeString(`<model name="m"><variable name="x" type="int"/></model>`)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := m.Variable("x")
	if !ok || v.Scope != uml.ScopeGlobal {
		t.Errorf("unspecified scope should default to global: %+v", v)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.xml")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestControlNodeNamesNotPersisted(t *testing.T) {
	m := uml.NewModel("m")
	d, _ := m.AddDiagram("main")
	m.AddControl(d, "", uml.KindInitial)
	s, _ := EncodeString(m)
	if strings.Contains(s, `name="InitialNode"`) {
		t.Errorf("synthetic control names should not be persisted:\n%s", s)
	}
	got, err := DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	if got.Main().Initial() == nil {
		t.Error("initial node lost in round trip")
	}
}
