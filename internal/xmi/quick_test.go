package xmi

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"prophet/internal/uml"
)

// randomModel builds a structurally valid model from a seeded RNG: a
// handful of diagrams with mixed node kinds, random (XML-safe) names,
// tags, guards and payloads. It exercises every field the XMI codec
// serializes.
func randomModel(r *rand.Rand) *uml.Model {
	alpha := func(n int) string {
		const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _<>&\"'"
		b := make([]byte, 1+r.Intn(n))
		for i := range b {
			b[i] = letters[r.Intn(len(letters))]
		}
		return string(b)
	}
	m := uml.NewModel("rnd-" + alpha(6))
	nVars := r.Intn(4)
	for i := 0; i < nVars; i++ {
		scope := uml.ScopeGlobal
		if r.Intn(2) == 0 {
			scope = uml.ScopeLocal
		}
		m.AddVariable(uml.Variable{
			Name:  fmt.Sprintf("v%d", i),
			Type:  []string{"double", "int"}[r.Intn(2)],
			Scope: scope,
			Init:  []string{"", "0", "1 + 2"}[r.Intn(3)],
		})
	}
	nFuncs := r.Intn(3)
	for i := 0; i < nFuncs; i++ {
		f := uml.Function{Name: fmt.Sprintf("F%d", i), Body: "1 + 2*3"}
		for p := 0; p < r.Intn(3); p++ {
			f.Params = append(f.Params, uml.Param{Name: fmt.Sprintf("p%d", p), Type: "double"})
		}
		m.AddFunction(f)
	}
	nDiagrams := 1 + r.Intn(3)
	for di := 0; di < nDiagrams; di++ {
		d, err := m.AddDiagram(fmt.Sprintf("d%d", di))
		if err != nil {
			panic(err)
		}
		var prev uml.Node
		nNodes := 1 + r.Intn(6)
		for ni := 0; ni < nNodes; ni++ {
			var n uml.Node
			switch r.Intn(5) {
			case 0:
				a, _ := m.AddAction(d, "", alpha(8))
				a.Code = alpha(20)
				a.CostFunc = []string{"", "F0()"}[r.Intn(2)]
				if a.CostFunc != "" && nFuncs == 0 {
					a.CostFunc = ""
				}
				n = a
			case 1:
				a, _ := m.AddActivity(d, "", alpha(8), fmt.Sprintf("d%d", r.Intn(nDiagrams)))
				n = a
			case 2:
				l, _ := m.AddLoop(d, "", alpha(8), "3", fmt.Sprintf("d%d", r.Intn(nDiagrams)))
				l.Var = "i"
				n = l
			default:
				kinds := []uml.Kind{uml.KindInitial, uml.KindFinal, uml.KindDecision,
					uml.KindMerge, uml.KindFork, uml.KindJoin}
				c, _ := m.AddControl(d, "", kinds[r.Intn(len(kinds))])
				n = c
			}
			if r.Intn(2) == 0 {
				n.SetStereotype([]string{"action+", "activity+", "custom+"}[r.Intn(3)])
			}
			for ti := 0; ti < r.Intn(3); ti++ {
				n.SetTag(fmt.Sprintf("t%d", ti), alpha(10))
			}
			if r.Intn(4) == 0 {
				n.AddConstraint(alpha(12))
			}
			if prev != nil && r.Intn(3) > 0 {
				e, _ := d.Connect(prev.ID(), n.ID(), []string{"", "else", "v0 > 0"}[r.Intn(3)])
				if e != nil && r.Intn(3) == 0 {
					e.Weight = float64(r.Intn(100)) / 100
					e.SetTag("w", "x")
				}
			}
			prev = n
		}
	}
	return m
}

// TestQuickRandomModelRoundTrip: for arbitrary structurally-valid models,
// encode -> decode -> encode is a fixed point and the decoded model has
// the same shape.
func TestQuickRandomModelRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		m := randomModel(rand.New(rand.NewSource(seed)))
		s1, err := EncodeString(m)
		if err != nil {
			t.Logf("seed %d: encode: %v", seed, err)
			return false
		}
		m2, err := DecodeString(s1)
		if err != nil {
			t.Logf("seed %d: decode: %v\n%s", seed, err, s1)
			return false
		}
		if m.Stats() != m2.Stats() {
			t.Logf("seed %d: stats %+v vs %+v", seed, m.Stats(), m2.Stats())
			return false
		}
		s2, err := EncodeString(m2)
		if err != nil {
			return false
		}
		if s1 != s2 {
			t.Logf("seed %d: not a fixed point", seed)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRandomModelPayloadFidelity: code fragments, cost functions and
// guards survive the trip byte-for-byte for arbitrary XML-hostile text.
func TestQuickRandomModelPayloadFidelity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomModel(r)
		s, err := EncodeString(m)
		if err != nil {
			return false
		}
		m2, err := DecodeString(s)
		if err != nil {
			return false
		}
		for di, d := range m.Diagrams() {
			d2 := m2.Diagrams()[di]
			for ni, n := range d.Nodes() {
				n2 := d2.Nodes()[ni]
				if a, ok := n.(*uml.ActionNode); ok {
					a2 := n2.(*uml.ActionNode)
					if a.Code != a2.Code || a.CostFunc != a2.CostFunc {
						return false
					}
				}
				if n.Name() != n2.Name() && !n.Kind().IsControl() {
					return false
				}
			}
			for ei, e := range d.Edges() {
				if d2.Edges()[ei].Guard != e.Guard {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
