package xmi

import (
	"crypto/sha256"
	"encoding/hex"

	"prophet/internal/uml"
)

// HashPrefix tags every content address produced by this package.
const HashPrefix = "sha256:"

// HashBytes returns the content address of an already-canonical XMI
// document: "sha256:" plus the hex SHA-256 of the bytes. Callers holding
// arbitrary (non-canonical) XMI text should Decode and use Hash instead,
// so that formatting differences normalize away.
func HashBytes(text []byte) string {
	sum := sha256.Sum256(text)
	return HashPrefix + hex.EncodeToString(sum[:])
}

// Hash canonicalizes m through Encode and returns the content address of
// the result. Two models with identical canonical XMI hash identically;
// any in-place mutation that changes the persisted form changes the hash.
// This is the shared cache key of the estimator's compiled-program cache
// and the serving layer's model store.
func Hash(m *uml.Model) (string, error) {
	s, err := EncodeString(m)
	if err != nil {
		return "", err
	}
	return HashBytes([]byte(s)), nil
}
