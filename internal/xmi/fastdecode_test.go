package xmi

import (
	"encoding/xml"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prophet/internal/diff"
	"prophet/internal/samples"
)

// stdlibDecode is the reference path: the reflection-based decoder the
// fast scanner must be observationally identical to.
func stdlibDecode(t *testing.T, src string) (*xmlModel, error) {
	t.Helper()
	var doc xmlModel
	if err := xml.NewDecoder(strings.NewReader(src)).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// TestFastDecodeMatchesStdlib runs the fast scanner and the stdlib decoder
// over every document we can get our hands on — samples, the committed
// corpus, and handwritten edge cases — and requires that whenever the fast
// path accepts, its model is structurally identical to the stdlib's.
func TestFastDecodeMatchesStdlib(t *testing.T) {
	var docs []string
	if s, err := EncodeString(samples.Sample()); err == nil {
		docs = append(docs, s)
	}
	if s, err := EncodeString(samples.Jacobi()); err == nil {
		docs = append(docs, s)
	}
	corpus, _ := filepath.Glob(filepath.Join("..", "..", "conformance", "corpus", "*.xmi"))
	for _, path := range corpus {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, string(b))
	}
	docs = append(docs,
		// Self-closing forms, single quotes, attribute order, escapes.
		`<model name="m" main="main"><diagram id="d" name="main"/></model>`,
		`<model name='m'><diagram name='n' id='d'><node kind='Action' id='a' name='A &amp; B'/></diagram></model>`,
		`<model name="m"><diagram id="d" name="n"><node id="a" kind="Action" name="x &lt; 1 &gt; 0 &quot;q&quot; &apos;a&apos;"/></diagram></model>`,
		`<model name="m"><diagram id="d" name="n"><node id="a" kind="Action" name="&#65;&#x42;"/></diagram></model>`,
		"<model name=\"m\">\r\n  <diagram id=\"d\" name=\"n\">\t</diagram>\r\n</model>",
		`<?xml version="1.0"?><!-- pre --><model name="m"></model>`,
		`<model name="m"><variable name="x" type="double" scope="global" init="0.5"></variable></model>`,
		`<model name="m"><function name="f" type="double" body="a+b"><param name="a" type="double"/><param name="b" type="double"/></function></model>`,
		`<model name="m"><diagram id="d" name="n"><node id="a" kind="Action"><code>x = x + 1;</code><tag name="time" value="3"/><constraint>x &gt; 0</constraint></node><edge from="a" to="a" guard="x &lt; 2" weight="0.25"><tag name="p" value="q"/><constraint>c1</constraint></edge></diagram></model>`,
		`<model name="m"><diagram id="d" name="n"><node id="a" kind="LoopNode" count="3" var="i" body="sub" stereotype="loop+" costfunc="c"/></diagram></model>`,
		`<model name="m"><diagram id="d" name="n"><node id="a" kind="Action"/><node id="b" kind="Action"/><edge from="a" to="b" weight="1e-3"/></diagram></model>`,
	)
	fastHits := 0
	for i, src := range docs {
		fast, ferr := fastDecode(src)
		ref, rerr := stdlibDecode(t, src)
		if ferr != nil {
			// Fast path declined: Decode falls back, so only the stdlib
			// result matters. Nothing to compare.
			continue
		}
		fastHits++
		if rerr != nil {
			t.Errorf("doc %d: fast path accepted a document the stdlib rejects: %v\n%s", i, rerr, src)
			continue
		}
		fm, err := fromXML(fast)
		if err != nil {
			t.Errorf("doc %d: fast fromXML: %v", i, err)
			continue
		}
		rm, err := fromXML(ref)
		if err != nil {
			t.Errorf("doc %d: stdlib fromXML: %v", i, err)
			continue
		}
		if changes := diff.Models(fm, rm); len(changes) > 0 {
			t.Errorf("doc %d: fast and stdlib decodes differ: %v\n%s", i, changes, src)
		}
		fe, err1 := EncodeString(fm)
		re, err2 := EncodeString(rm)
		if err1 != nil || err2 != nil || fe != re {
			t.Errorf("doc %d: re-encodings differ (err1=%v err2=%v)", i, err1, err2)
		}
	}
	// The whole point of the fast path is that it handles our own dialect:
	// every sample and corpus document must take it.
	if want := 2 + len(corpus); fastHits < want {
		t.Errorf("fast path handled %d/%d canonical documents; it must cover all of them", fastHits, want+9)
	}
}

// TestFastDecodeFallsBack lists constructs outside the fast subset; each
// must be declined (errFallback) so stdlib semantics govern, and each must
// still produce the stdlib outcome through the public Decode.
func TestFastDecodeFallsBack(t *testing.T) {
	cases := []string{
		`<model name="m" xmlns="urn:x"></model>`,              // namespace attr is unknown
		`<model name="m"><unknown/></model>`,                  // unknown element
		`<model name="m" extra="1"></model>`,                  // unknown attribute
		`<model name="m"><diagram id="d" name="n">text</diagram></model>`, // stray chardata
		`<model name="m"><![CDATA[x]]></model>`,               // CDATA
		`<model name="m"><diagram id="d" name="n"><node id="a" kind="Action"><code>a<!-- c -->b</code></node></diagram></model>`, // comment in text
		`<model name="m">&#1;</model>`,                        // invalid char ref
		`<model name="m">café</model>`,                        // non-ASCII bytes
		`<model name="m"></Model>`,                            // case-mismatched close
		`<model name="m"><diagram id="d" name="n"><edge from="a" to="b" weight="x"/></diagram></model>`, // bad float
		`<model`, // truncated
		``,       // empty
	}
	for i, src := range cases {
		if _, err := fastDecode(src); err == nil {
			t.Errorf("case %d: fast path accepted %q, want fallback", i, src)
		}
		// Public Decode must agree with the pure stdlib path on both
		// outcome and, when accepted, structure.
		pub, perr := DecodeString(src)
		ref, rerr := stdlibDecode(t, src)
		if (perr == nil) != (rerr == nil) {
			t.Errorf("case %d: Decode err=%v, stdlib err=%v", i, perr, rerr)
			continue
		}
		if perr == nil {
			rm, err := fromXML(ref)
			if err != nil {
				continue
			}
			if changes := diff.Models(pub, rm); len(changes) > 0 {
				t.Errorf("case %d: Decode differs from stdlib: %v", i, changes)
			}
		}
	}
}
