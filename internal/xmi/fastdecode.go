package xmi

import (
	"errors"
	"strconv"
)

// errFallback signals that the input uses an XML construct outside the
// subset the fast path handles; the caller falls back to the stdlib
// decoder, whose semantics are authoritative.
var errFallback = errors.New("xmi: fast decode fallback")

// fastDecode parses the compact XMI dialect produced by Encode with a
// hand-rolled byte scanner, avoiding encoding/xml's per-token overhead and
// reflection-driven field matching (about 10x on large documents). It is
// deliberately strict: documents using namespaces, DOCTYPE, CDATA,
// processing instructions beyond the XML declaration, unknown elements or
// unknown attributes return errFallback and are handled by the stdlib
// path instead, so observable decoding behavior never changes.
func fastDecode(data string) (*xmlModel, error) {
	for i := 0; i < len(data); i++ {
		c := data[i]
		// Printable ASCII plus tab/newline/CR only. Anything else —
		// multi-byte UTF-8, control bytes the stdlib tokenizer polices —
		// takes the slow path, which owns all edge-case semantics.
		if (c < 0x20 && c != '\t' && c != '\n' && c != '\r') || c >= 0x7F {
			return nil, errFallback
		}
	}
	p := fastParser{data: data}
	p.skipProlog()
	name, selfClose, err := p.openTag()
	if err != nil || name != "model" {
		return nil, errFallback
	}
	doc := &xmlModel{}
	for _, a := range p.attrs {
		switch a.name {
		case "name":
			doc.Name = a.value
		case "main":
			doc.Main = a.value
		default:
			return nil, errFallback
		}
	}
	if selfClose {
		return doc, nil
	}
	for {
		tag, close, selfClose, err := p.next()
		if err != nil {
			return nil, err
		}
		if close {
			if tag != "model" {
				return nil, errFallback
			}
			p.skipTrailer()
			if p.pos != len(p.data) {
				return nil, errFallback
			}
			return doc, nil
		}
		switch tag {
		case "variable":
			v := xmlVariable{}
			for _, a := range p.attrs {
				switch a.name {
				case "name":
					v.Name = a.value
				case "type":
					v.Type = a.value
				case "scope":
					v.Scope = a.value
				case "init":
					v.Init = a.value
				default:
					return nil, errFallback
				}
			}
			if !selfClose {
				if err := p.closeEmpty("variable"); err != nil {
					return nil, err
				}
			}
			doc.Variables = append(doc.Variables, v)
		case "function":
			f, err := p.function(selfClose)
			if err != nil {
				return nil, err
			}
			doc.Functions = append(doc.Functions, f)
		case "diagram":
			d, err := p.diagram(selfClose)
			if err != nil {
				return nil, err
			}
			doc.Diagrams = append(doc.Diagrams, d)
		default:
			return nil, errFallback
		}
	}
}

// attr is one parsed attribute.
type attr struct {
	name  string
	value string
}

// fastParser is a cursor over the document bytes. attrs is reused across
// openTag calls to avoid per-element allocation.
type fastParser struct {
	data  string
	pos   int
	attrs []attr
}

func (p *fastParser) function(selfClose bool) (xmlFunction, error) {
	f := xmlFunction{}
	for _, a := range p.attrs {
		switch a.name {
		case "name":
			f.Name = a.value
		case "type":
			f.Type = a.value
		case "body":
			f.Body = a.value
		default:
			return f, errFallback
		}
	}
	if selfClose {
		return f, nil
	}
	for {
		tag, close, selfClose, err := p.next()
		if err != nil {
			return f, err
		}
		if close {
			if tag != "function" {
				return f, errFallback
			}
			return f, nil
		}
		if tag != "param" {
			return f, errFallback
		}
		prm := xmlParam{}
		for _, a := range p.attrs {
			switch a.name {
			case "name":
				prm.Name = a.value
			case "type":
				prm.Type = a.value
			default:
				return f, errFallback
			}
		}
		if !selfClose {
			if err := p.closeEmpty("param"); err != nil {
				return f, err
			}
		}
		f.Params = append(f.Params, prm)
	}
}

func (p *fastParser) diagram(selfClose bool) (xmlDiagram, error) {
	d := xmlDiagram{}
	for _, a := range p.attrs {
		switch a.name {
		case "id":
			d.ID = a.value
		case "name":
			d.Name = a.value
		default:
			return d, errFallback
		}
	}
	if selfClose {
		return d, nil
	}
	for {
		tag, close, selfClose, err := p.next()
		if err != nil {
			return d, err
		}
		if close {
			if tag != "diagram" {
				return d, errFallback
			}
			return d, nil
		}
		switch tag {
		case "node":
			n, err := p.node(selfClose)
			if err != nil {
				return d, err
			}
			d.Nodes = append(d.Nodes, n)
		case "edge":
			e, err := p.edge(selfClose)
			if err != nil {
				return d, err
			}
			d.Edges = append(d.Edges, e)
		default:
			return d, errFallback
		}
	}
}

func (p *fastParser) node(selfClose bool) (xmlNode, error) {
	n := xmlNode{}
	for _, a := range p.attrs {
		switch a.name {
		case "id":
			n.ID = a.value
		case "kind":
			n.Kind = a.value
		case "name":
			n.Name = a.value
		case "stereotype":
			n.Stereotype = a.value
		case "body":
			n.Body = a.value
		case "count":
			n.Count = a.value
		case "var":
			n.Var = a.value
		case "costfunc":
			n.CostFunc = a.value
		default:
			return n, errFallback
		}
	}
	if selfClose {
		return n, nil
	}
	for {
		tag, close, selfClose, err := p.next()
		if err != nil {
			return n, err
		}
		if close {
			if tag != "node" {
				return n, errFallback
			}
			return n, nil
		}
		switch tag {
		case "code":
			text, err := p.textElement("code", selfClose)
			if err != nil {
				return n, err
			}
			n.Code = text
		case "tag":
			t, err := p.tagElement(selfClose)
			if err != nil {
				return n, err
			}
			n.Tags = append(n.Tags, t)
		case "constraint":
			text, err := p.textElement("constraint", selfClose)
			if err != nil {
				return n, err
			}
			n.Consts = append(n.Consts, text)
		default:
			return n, errFallback
		}
	}
}

func (p *fastParser) edge(selfClose bool) (xmlEdge, error) {
	e := xmlEdge{}
	for _, a := range p.attrs {
		switch a.name {
		case "from":
			e.From = a.value
		case "to":
			e.To = a.value
		case "guard":
			e.Guard = a.value
		case "weight":
			w, err := strconv.ParseFloat(a.value, 64)
			if err != nil {
				return e, errFallback
			}
			e.Weight = w
		default:
			return e, errFallback
		}
	}
	if selfClose {
		return e, nil
	}
	for {
		tag, close, selfClose, err := p.next()
		if err != nil {
			return e, err
		}
		if close {
			if tag != "edge" {
				return e, errFallback
			}
			return e, nil
		}
		switch tag {
		case "tag":
			t, err := p.tagElement(selfClose)
			if err != nil {
				return e, err
			}
			e.Tags = append(e.Tags, t)
		case "constraint":
			text, err := p.textElement("constraint", selfClose)
			if err != nil {
				return e, err
			}
			e.Consts = append(e.Consts, text)
		default:
			return e, errFallback
		}
	}
}

func (p *fastParser) tagElement(selfClose bool) (xmlTag, error) {
	t := xmlTag{}
	for _, a := range p.attrs {
		switch a.name {
		case "name":
			t.Name = a.value
		case "value":
			t.Value = a.value
		default:
			return t, errFallback
		}
	}
	if !selfClose {
		if err := p.closeEmpty("tag"); err != nil {
			return t, err
		}
	}
	return t, nil
}

// textElement reads the character data of an element like <code>...</code>
// up to its closing tag. Nested markup (including comments) falls back.
func (p *fastParser) textElement(name string, selfClose bool) (string, error) {
	if selfClose {
		return "", nil
	}
	start := p.pos
	for p.pos < len(p.data) && p.data[p.pos] != '<' {
		p.pos++
	}
	text, err := unescape(p.data[start:p.pos])
	if err != nil {
		return "", err
	}
	if err := p.closeTagNamed(name); err != nil {
		return "", err
	}
	return text, nil
}

// closeEmpty consumes whitespace chardata and the closing tag of an
// element that should have no children.
func (p *fastParser) closeEmpty(name string) error {
	p.skipSpace()
	return p.closeTagNamed(name)
}

func (p *fastParser) closeTagNamed(name string) error {
	if p.pos+1 >= len(p.data) || p.data[p.pos] != '<' || p.data[p.pos+1] != '/' {
		return errFallback
	}
	p.pos += 2
	tag := p.readName()
	if tag != name {
		return errFallback
	}
	p.skipSpace()
	if p.pos >= len(p.data) || p.data[p.pos] != '>' {
		return errFallback
	}
	p.pos++
	return nil
}

// next consumes intervening whitespace and returns the next opening or
// closing tag. Non-whitespace character data, comments, CDATA and
// processing instructions inside element bodies fall back (the stdlib
// decoder would skip some of these; falling back preserves its behavior
// exactly).
func (p *fastParser) next() (tag string, close, selfClose bool, err error) {
	p.skipSpace()
	if p.pos >= len(p.data) || p.data[p.pos] != '<' {
		return "", false, false, errFallback
	}
	if p.pos+1 < len(p.data) && p.data[p.pos+1] == '/' {
		p.pos += 2
		tag = p.readName()
		if tag == "" {
			return "", false, false, errFallback
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '>' {
			return "", false, false, errFallback
		}
		p.pos++
		return tag, true, false, nil
	}
	tag, selfClose, err = p.openTag()
	return tag, false, selfClose, err
}

// openTag parses "<name attr="v" ...>" or "<name .../>", filling p.attrs.
func (p *fastParser) openTag() (name string, selfClose bool, err error) {
	if p.pos >= len(p.data) || p.data[p.pos] != '<' {
		return "", false, errFallback
	}
	p.pos++
	name = p.readName()
	if name == "" {
		return "", false, errFallback
	}
	p.attrs = p.attrs[:0]
	for {
		p.skipSpace()
		if p.pos >= len(p.data) {
			return "", false, errFallback
		}
		switch p.data[p.pos] {
		case '>':
			p.pos++
			return name, false, nil
		case '/':
			if p.pos+1 >= len(p.data) || p.data[p.pos+1] != '>' {
				return "", false, errFallback
			}
			p.pos += 2
			return name, true, nil
		}
		an := p.readName()
		if an == "" {
			return "", false, errFallback
		}
		p.skipSpace()
		if p.pos >= len(p.data) || p.data[p.pos] != '=' {
			return "", false, errFallback
		}
		p.pos++
		p.skipSpace()
		if p.pos >= len(p.data) {
			return "", false, errFallback
		}
		quote := p.data[p.pos]
		if quote != '"' && quote != '\'' {
			return "", false, errFallback
		}
		p.pos++
		start := p.pos
		for p.pos < len(p.data) && p.data[p.pos] != quote {
			if p.data[p.pos] == '<' {
				return "", false, errFallback
			}
			p.pos++
		}
		if p.pos >= len(p.data) {
			return "", false, errFallback
		}
		av, uerr := unescape(p.data[start:p.pos])
		if uerr != nil {
			return "", false, uerr
		}
		p.pos++
		p.attrs = append(p.attrs, attr{name: an, value: av})
	}
}

// readName scans an XML name. Names containing ':' (namespaces) fall back
// by returning "" via the caller's empty-name check only when the first
// byte is invalid; a ':' anywhere makes the scan stop, and the caller's
// following-character check rejects the document.
func (p *fastParser) readName() string {
	start := p.pos
	for p.pos < len(p.data) {
		c := p.data[p.pos]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '_' || c == '-' || c == '.' {
			p.pos++
			continue
		}
		break
	}
	return p.data[start:p.pos]
}

func (p *fastParser) skipSpace() {
	for p.pos < len(p.data) {
		switch p.data[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// skipProlog consumes the optional BOM, XML declaration, and any
// whitespace or comments before the root element.
func (p *fastParser) skipProlog() {
	if len(p.data) >= 3 && p.data[0] == 0xEF && p.data[1] == 0xBB && p.data[2] == 0xBF {
		p.pos = 3
	}
	for {
		p.skipSpace()
		if p.pos+1 >= len(p.data) || p.data[p.pos] != '<' {
			return
		}
		switch p.data[p.pos+1] {
		case '?':
			end := indexFrom(p.data, p.pos+2, "?>")
			if end < 0 {
				return
			}
			p.pos = end + 2
		case '!':
			if hasAt(p.data, p.pos, "<!--") {
				end := indexFrom(p.data, p.pos+4, "-->")
				if end < 0 {
					return
				}
				p.pos = end + 3
			} else {
				return // DOCTYPE etc: let the stdlib path judge it
			}
		default:
			return
		}
	}
}

// skipTrailer consumes whitespace and comments after the root element.
func (p *fastParser) skipTrailer() {
	for {
		p.skipSpace()
		if hasAt(p.data, p.pos, "<!--") {
			end := indexFrom(p.data, p.pos+4, "-->")
			if end < 0 {
				return
			}
			p.pos = end + 3
			continue
		}
		return
	}
}

func hasAt(data string, pos int, s string) bool {
	if pos+len(s) > len(data) {
		return false
	}
	return data[pos:pos+len(s)] == s
}

func indexFrom(data string, pos int, s string) int {
	for i := pos; i+len(s) <= len(data); i++ {
		if data[i:i+len(s)] == s {
			return i
		}
	}
	return -1
}

// unescape resolves XML character and entity references. The common case
// — no '&' at all — is zero-copy.
func unescape(raw string) (string, error) {
	amp := -1
	for i := 0; i < len(raw); i++ {
		if raw[i] == '&' {
			amp = i
			break
		}
	}
	if amp < 0 {
		return raw, nil
	}
	out := make([]byte, 0, len(raw))
	out = append(out, raw[:amp]...)
	for i := amp; i < len(raw); {
		c := raw[i]
		if c != '&' {
			out = append(out, c)
			i++
			continue
		}
		semi := -1
		for j := i + 1; j < len(raw) && j-i <= 10; j++ {
			if raw[j] == ';' {
				semi = j
				break
			}
		}
		if semi < 0 {
			return "", errFallback
		}
		ent := raw[i+1 : semi]
		switch ent {
		case "lt":
			out = append(out, '<')
		case "gt":
			out = append(out, '>')
		case "amp":
			out = append(out, '&')
		case "quot":
			out = append(out, '"')
		case "apos":
			out = append(out, '\'')
		default:
			if len(ent) < 2 || ent[0] != '#' {
				return "", errFallback
			}
			var (
				r   uint64
				err error
			)
			if ent[1] == 'x' || ent[1] == 'X' {
				r, err = strconv.ParseUint(ent[2:], 16, 32)
			} else {
				r, err = strconv.ParseUint(ent[1:], 10, 32)
			}
			if err != nil || !validXMLChar(rune(r)) {
				return "", errFallback
			}
			out = appendRune(out, rune(r))
		}
		i = semi + 1
	}
	return string(out), nil
}

// appendRune is utf8.AppendRune without pulling selection logic into the
// hot loop's inliner budget.
func appendRune(out []byte, r rune) []byte {
	return append(out, string(r)...)
}

// validXMLChar reports whether r is a character XML 1.0 permits; the
// stdlib decoder rejects character references outside this set, so the
// fast path must too rather than silently accepting them.
func validXMLChar(r rune) bool {
	return r == 0x09 || r == 0x0A || r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}
