package xmi

import (
	"testing"

	"prophet/internal/diff"
	"prophet/internal/samples"
)

// FuzzRoundTrip strengthens FuzzDecode's accept-implies-encodable property
// to a full fixed point: any accepted model must survive
// encode → decode → encode with byte-identical text and an empty
// structural diff — the same contract the conformance harness enforces on
// the corpus, here extended to arbitrary decoder-accepted inputs.
func FuzzRoundTrip(f *testing.F) {
	if s, err := EncodeString(samples.Sample()); err == nil {
		f.Add(s)
	}
	if s, err := EncodeString(samples.Jacobi()); err == nil {
		f.Add(s)
	}
	f.Add(`<model name="m" main="main"><diagram id="d" name="main">` +
		`<node id="a" kind="Action" name="A" stereotype="action+">` +
		`<tag name="time" value="NaN"/><tag name="" value="x"/></node></diagram></model>`)
	f.Add(`<model name="m"><diagram id="d" name="n">` +
		`<node id="a" kind="MergeNode" name="m1"/><edge from="a" to="a" guard="1&lt;2"/></diagram></model>`)

	f.Fuzz(func(t *testing.T, src string) {
		m, err := DecodeString(src)
		if err != nil {
			return
		}
		enc1, err := EncodeString(m)
		if err != nil {
			t.Fatalf("accepted model failed to encode: %v", err)
		}
		m2, err := DecodeString(enc1)
		if err != nil {
			t.Fatalf("own encoding %q does not decode: %v", enc1, err)
		}
		enc2, err := EncodeString(m2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if enc1 != enc2 {
			t.Fatalf("encoding is not a fixed point:\nfirst:  %q\nsecond: %q", enc1, enc2)
		}
		if changes := diff.Models(m, m2); len(changes) > 0 {
			t.Fatalf("re-decoded model differs structurally: %v", changes)
		}
	})
}
