package diff

import (
	"strings"
	"testing"

	"prophet/internal/samples"
	"prophet/internal/uml"
)

func findChange(t *testing.T, changes []Change, op Op, pathPart string) Change {
	t.Helper()
	for _, c := range changes {
		if c.Op == op && strings.Contains(c.Path, pathPart) {
			return c
		}
	}
	t.Fatalf("no %s change with path containing %q in %v", op, pathPart, changes)
	return Change{}
}

func TestIdenticalModelsNoDiff(t *testing.T) {
	a := samples.Sample()
	b := uml.Clone(a)
	if changes := Models(a, b); len(changes) != 0 {
		t.Errorf("clone should diff clean, got %v", changes)
	}
	if got := Format(nil); !strings.Contains(got, "no differences") {
		t.Errorf("empty format = %q", got)
	}
}

func TestVariableChanges(t *testing.T) {
	a := samples.Sample()
	b := uml.Clone(a)
	b.AddVariable(uml.Variable{Name: "extra", Type: "int", Scope: uml.ScopeGlobal})
	changes := Models(a, b)
	findChange(t, changes, Added, "variable extra")

	// Removal is the reverse direction.
	changes = Models(b, a)
	findChange(t, changes, Removed, "variable extra")
}

func TestFunctionChanges(t *testing.T) {
	a := samples.Sample()
	b := uml.Clone(a)
	// Mutate FA1's body via re-registration: functions are value types, so
	// rebuild the model's function list through a fresh model.
	b2 := uml.NewModel(b.Name())
	for _, f := range b.Functions() {
		if f.Name == "FA1" {
			f.Body = "99"
		}
		b2.AddFunction(f)
	}
	changes := Models(a, b2)
	c := findChange(t, changes, Changed, "function FA1")
	if !strings.Contains(c.Detail, "99") {
		t.Errorf("detail should show new body: %s", c.Detail)
	}
	// Every diagram of a is "removed" relative to the gutted b2.
	findChange(t, changes, Removed, "diagram main")
}

func TestNodeChanges(t *testing.T) {
	a := samples.Sample()
	b := uml.Clone(a)
	a1 := b.Main().NodeByName("A1").(*uml.ActionNode)
	a1.CostFunc = "FA2()"
	a1.SetTag("id", "42")
	a1.SetTag("new", "x")
	a1.Code = "GV = 5;"
	changes := Models(a, b)
	var details []string
	for _, c := range changes {
		if strings.Contains(c.Path, "(A1)") {
			details = append(details, c.Detail)
		}
	}
	joined := strings.Join(details, "; ")
	for _, want := range []string{
		`cost function: "FA1()" -> "FA2()"`,
		`tag id: "1" -> "42"`,
		`tag new added ("x")`,
		"code fragment changed",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in %q", want, joined)
		}
	}
}

func TestEdgeChanges(t *testing.T) {
	a := samples.Sample()
	b := uml.Clone(a)
	for _, e := range b.Main().Edges() {
		if e.Guard == "GV > 0" {
			e.Guard = "GV >= 1"
		}
	}
	changes := Models(a, b)
	c := findChange(t, changes, Changed, "edge")
	if !strings.Contains(c.Detail, `"GV > 0" -> "GV >= 1"`) {
		t.Errorf("guard detail wrong: %s", c.Detail)
	}
}

func TestDiagramAddRemove(t *testing.T) {
	a := samples.Sample()
	b := uml.Clone(a)
	b.AddDiagram("brand-new")
	changes := Models(a, b)
	findChange(t, changes, Added, "diagram brand-new")
}

func TestKindChangeShortCircuits(t *testing.T) {
	a := uml.NewModel("m")
	da, _ := a.AddDiagram("main")
	a.AddAction(da, "n1", "X")
	b := uml.NewModel("m")
	db, _ := b.AddDiagram("main")
	b.AddActivity(db, "n1", "X", "main")
	changes := Models(a, b)
	c := findChange(t, changes, Changed, "node n1")
	if !strings.Contains(c.Detail, "kind") {
		t.Errorf("kind change not reported: %v", changes)
	}
}

func TestLoopFieldChanges(t *testing.T) {
	a := uml.NewModel("m")
	da, _ := a.AddDiagram("main")
	a.AddDiagram("body")
	la, _ := a.AddLoop(da, "l1", "L", "N", "body")
	la.Var = "i"
	b := uml.Clone(a)
	lb := b.Main().Node("l1").(*uml.LoopNode)
	lb.Count = "M"
	lb.Var = "j"
	changes := Models(a, b)
	var details []string
	for _, c := range changes {
		details = append(details, c.Detail)
	}
	joined := strings.Join(details, "; ")
	if !strings.Contains(joined, `count: "N" -> "M"`) || !strings.Contains(joined, `loop variable: "i" -> "j"`) {
		t.Errorf("loop changes missing: %s", joined)
	}
}

func TestModelLevelChanges(t *testing.T) {
	a := samples.Sample()
	b := uml.Clone(a)
	b.SetName("renamed")
	b.SetMain("SA")
	changes := Models(a, b)
	findChange(t, changes, Changed, "model")
	var sawMain bool
	for _, c := range changes {
		if strings.Contains(c.Detail, "main diagram") {
			sawMain = true
		}
	}
	if !sawMain {
		t.Errorf("main diagram change not reported: %v", changes)
	}
}

func TestFormat(t *testing.T) {
	out := Format([]Change{
		{Op: Added, Path: "function F"},
		{Op: Changed, Path: "node n1", Detail: "name changed"},
	})
	if !strings.Contains(out, "added function F") || !strings.Contains(out, "changed node n1: name changed") {
		t.Errorf("format output:\n%s", out)
	}
}
