// Package diff compares two performance models structurally and reports
// what changed: variables, cost functions, diagrams, nodes (including
// their stereotypes, tags, cost functions and code fragments) and edges.
// It supports the model-evolution workflow around Teuta's XML model files
// — reviewing what a colleague changed before re-running predictions.
//
// Elements are matched by ID within same-named diagrams, edges by their
// (from, to) endpoints.
package diff

import (
	"fmt"
	"sort"
	"strings"

	"prophet/internal/uml"
)

// Op classifies one change.
type Op string

const (
	// Added: present in the new model only.
	Added Op = "added"
	// Removed: present in the old model only.
	Removed Op = "removed"
	// Changed: present in both with different content.
	Changed Op = "changed"
)

// Change is one reported difference.
type Change struct {
	Op Op
	// Path locates the changed thing, e.g. "diagram main / node e3 (A1)".
	Path string
	// Detail describes the change, e.g. `cost function: "FA1()" -> "FB()"`.
	Detail string
}

// String renders "changed diagram main / node e3 (A1): cost ...".
func (c Change) String() string {
	if c.Detail == "" {
		return fmt.Sprintf("%s %s", c.Op, c.Path)
	}
	return fmt.Sprintf("%s %s: %s", c.Op, c.Path, c.Detail)
}

// Models compares old and new and returns the ordered change list (empty
// when the models are structurally identical).
func Models(oldM, newM *uml.Model) []Change {
	var out []Change
	add := func(op Op, path, detail string) {
		out = append(out, Change{Op: op, Path: path, Detail: detail})
	}

	if oldM.Name() != newM.Name() {
		add(Changed, "model", fmt.Sprintf("name: %q -> %q", oldM.Name(), newM.Name()))
	}
	if oldM.MainName() != newM.MainName() {
		add(Changed, "model", fmt.Sprintf("main diagram: %q -> %q", oldM.MainName(), newM.MainName()))
	}

	diffVariables(oldM, newM, add)
	diffFunctions(oldM, newM, add)
	diffDiagrams(oldM, newM, add)
	return out
}

func diffVariables(oldM, newM *uml.Model, add func(Op, string, string)) {
	type key struct {
		name  string
		scope uml.VarScope
	}
	oldV := map[key]uml.Variable{}
	for _, v := range oldM.Variables() {
		oldV[key{v.Name, v.Scope}] = v
	}
	newV := map[key]uml.Variable{}
	for _, v := range newM.Variables() {
		newV[key{v.Name, v.Scope}] = v
	}
	for _, v := range oldM.Variables() {
		k := key{v.Name, v.Scope}
		nv, ok := newV[k]
		path := fmt.Sprintf("%s variable %s", v.Scope, v.Name)
		if !ok {
			add(Removed, path, "")
			continue
		}
		if nv.Type != v.Type || nv.Init != v.Init {
			add(Changed, path, fmt.Sprintf("%s = %q -> %s = %q", v.Type, v.Init, nv.Type, nv.Init))
		}
	}
	for _, v := range newM.Variables() {
		if _, ok := oldV[key{v.Name, v.Scope}]; !ok {
			add(Added, fmt.Sprintf("%s variable %s", v.Scope, v.Name), "")
		}
	}
}

func diffFunctions(oldM, newM *uml.Model, add func(Op, string, string)) {
	sig := func(f uml.Function) string {
		params := make([]string, len(f.Params))
		for i, p := range f.Params {
			params[i] = p.Type + " " + p.Name
		}
		return fmt.Sprintf("%s(%s) = %s", f.ReturnType(), strings.Join(params, ", "), f.Body)
	}
	for _, f := range oldM.Functions() {
		nf, ok := newM.Function(f.Name)
		path := "function " + f.Name
		if !ok {
			add(Removed, path, "")
			continue
		}
		if sig(f) != sig(nf) {
			add(Changed, path, fmt.Sprintf("%s -> %s", sig(f), sig(nf)))
		}
	}
	for _, f := range newM.Functions() {
		if _, ok := oldM.Function(f.Name); !ok {
			add(Added, "function "+f.Name, "")
		}
	}
}

func diffDiagrams(oldM, newM *uml.Model, add func(Op, string, string)) {
	for _, od := range oldM.Diagrams() {
		nd := newM.DiagramByName(od.Name())
		if nd == nil {
			add(Removed, "diagram "+od.Name(), "")
			continue
		}
		diffNodes(od, nd, add)
		diffEdges(od, nd, add)
	}
	for _, nd := range newM.Diagrams() {
		if oldM.DiagramByName(nd.Name()) == nil {
			add(Added, "diagram "+nd.Name(), "")
		}
	}
}

func nodePath(d *uml.Diagram, n uml.Node) string {
	label := n.ID()
	if n.Name() != "" && n.Name() != n.Kind().String() {
		label += " (" + n.Name() + ")"
	}
	return fmt.Sprintf("diagram %s / node %s", d.Name(), label)
}

func diffNodes(od, nd *uml.Diagram, add func(Op, string, string)) {
	for _, on := range od.Nodes() {
		nn := nd.Node(on.ID())
		path := nodePath(od, on)
		if nn == nil {
			add(Removed, path, "")
			continue
		}
		for _, detail := range nodeChanges(on, nn) {
			add(Changed, path, detail)
		}
	}
	for _, nn := range nd.Nodes() {
		if od.Node(nn.ID()) == nil {
			add(Added, nodePath(nd, nn), "")
		}
	}
}

// nodeChanges lists human-readable differences between two same-ID nodes.
func nodeChanges(on, nn uml.Node) []string {
	var out []string
	if on.Kind() != nn.Kind() {
		out = append(out, fmt.Sprintf("kind: %v -> %v", on.Kind(), nn.Kind()))
		return out // payload comparison is meaningless across kinds
	}
	if on.Name() != nn.Name() {
		out = append(out, fmt.Sprintf("name: %q -> %q", on.Name(), nn.Name()))
	}
	if on.Stereotype() != nn.Stereotype() {
		out = append(out, fmt.Sprintf("stereotype: <<%s>> -> <<%s>>", on.Stereotype(), nn.Stereotype()))
	}
	out = append(out, tagChanges(on, nn)...)
	switch o := on.(type) {
	case *uml.ActionNode:
		n := nn.(*uml.ActionNode)
		if o.CostFunc != n.CostFunc {
			out = append(out, fmt.Sprintf("cost function: %q -> %q", o.CostFunc, n.CostFunc))
		}
		if o.Code != n.Code {
			out = append(out, "code fragment changed")
		}
	case *uml.ActivityNode:
		n := nn.(*uml.ActivityNode)
		if o.Body != n.Body {
			out = append(out, fmt.Sprintf("body: %q -> %q", o.Body, n.Body))
		}
		if o.CostFunc != n.CostFunc {
			out = append(out, fmt.Sprintf("cost function: %q -> %q", o.CostFunc, n.CostFunc))
		}
	case *uml.LoopNode:
		n := nn.(*uml.LoopNode)
		if o.Count != n.Count {
			out = append(out, fmt.Sprintf("count: %q -> %q", o.Count, n.Count))
		}
		if o.Body != n.Body {
			out = append(out, fmt.Sprintf("body: %q -> %q", o.Body, n.Body))
		}
		if o.Var != n.Var {
			out = append(out, fmt.Sprintf("loop variable: %q -> %q", o.Var, n.Var))
		}
	}
	return out
}

func tagChanges(on, nn uml.Element) []string {
	var out []string
	oldTags := map[string]string{}
	for _, tv := range on.Tags() {
		oldTags[tv.Name] = tv.Value
	}
	newTags := map[string]string{}
	for _, tv := range nn.Tags() {
		newTags[tv.Name] = tv.Value
	}
	var names []string
	for k := range oldTags {
		names = append(names, k)
	}
	for k := range newTags {
		if _, seen := oldTags[k]; !seen {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	for _, k := range names {
		ov, oOK := oldTags[k]
		nv, nOK := newTags[k]
		switch {
		case oOK && !nOK:
			out = append(out, fmt.Sprintf("tag %s removed (was %q)", k, ov))
		case !oOK && nOK:
			out = append(out, fmt.Sprintf("tag %s added (%q)", k, nv))
		case ov != nv:
			out = append(out, fmt.Sprintf("tag %s: %q -> %q", k, ov, nv))
		}
	}
	return out
}

func diffEdges(od, nd *uml.Diagram, add func(Op, string, string)) {
	type key struct{ from, to string }
	oldE := map[key]*uml.Edge{}
	for _, e := range od.Edges() {
		oldE[key{e.From(), e.To()}] = e
	}
	newE := map[key]*uml.Edge{}
	for _, e := range nd.Edges() {
		newE[key{e.From(), e.To()}] = e
	}
	edgePath := func(d *uml.Diagram, e *uml.Edge) string {
		return fmt.Sprintf("diagram %s / edge %s -> %s", d.Name(), e.From(), e.To())
	}
	for _, e := range od.Edges() {
		ne, ok := newE[key{e.From(), e.To()}]
		if !ok {
			add(Removed, edgePath(od, e), "")
			continue
		}
		if e.Guard != ne.Guard {
			add(Changed, edgePath(od, e), fmt.Sprintf("guard: %q -> %q", e.Guard, ne.Guard))
		}
		if e.Weight != ne.Weight {
			add(Changed, edgePath(od, e), fmt.Sprintf("weight: %g -> %g", e.Weight, ne.Weight))
		}
	}
	for _, e := range nd.Edges() {
		if _, ok := oldE[key{e.From(), e.To()}]; !ok {
			add(Added, edgePath(nd, e), "")
		}
	}
}

// Format renders a change list, one change per line; "(no differences)"
// when empty.
func Format(changes []Change) string {
	if len(changes) == 0 {
		return "(no differences)\n"
	}
	var sb strings.Builder
	for _, c := range changes {
		sb.WriteString(c.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
