package gogen

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"prophet/internal/builder"
	"prophet/internal/profile"
	"prophet/internal/samples"
	"prophet/internal/uml"
)

// mustParseGo asserts the generated source is syntactically valid Go.
func mustParseGo(t *testing.T, src string) {
	t.Helper()
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, "generated.go", src, 0); err != nil {
		t.Fatalf("generated Go does not parse: %v\n%s", err, src)
	}
}

func TestGenerateSampleIsValidGo(t *testing.T) {
	out, err := New().Generate(samples.Sample())
	if err != nil {
		t.Fatal(err)
	}
	mustParseGo(t, out)
	for _, want := range []string{
		"package main",
		"GV float64",
		"func FA1() float64",
		"func FSA2(pid float64) float64",
		"func BlockA1() {",
		"if GV > 0 {",
		"} else {",
		"BlockA2()",
		"BlockSA1()",
		"BlockA4()",
		"func main() {",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Code fragment carried as comment into the block body.
	if !strings.Contains(out, "// GV = 10;") {
		t.Errorf("code fragment comment missing:\n%s", out)
	}
}

func TestGenerateKernel6Loops(t *testing.T) {
	out, err := New().Generate(samples.Kernel6Detailed())
	if err != nil {
		t.Fatal(err)
	}
	mustParseGo(t, out)
	for _, want := range []string{
		"for L := 0; L < int(M); L++ {",
		"for iIdx := 0; iIdx < int(N - 1); iIdx++ {",
		"for k := 0; k < int(iIdx + 1); k++ {",
		"BlockW()",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateForkUsesGoroutines(t *testing.T) {
	b := builder.New("m")
	b.Function("F", nil, "1")
	d := b.Diagram("main")
	d.Initial()
	d.Fork("fork")
	d.Action("A").Cost("F()")
	d.Action("B").Cost("F()")
	d.Join("join")
	d.Final()
	d.Flow("initial", "fork")
	d.Flow("fork", "A")
	d.Flow("fork", "B")
	d.Flow("A", "join")
	d.Flow("B", "join")
	d.Flow("join", "final")
	m, _ := b.Build()
	out, err := New().Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	mustParseGo(t, out)
	for _, want := range []string{"var wg1 sync.WaitGroup", "go func() {", "wg1.Wait()"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateParallelRegion(t *testing.T) {
	b := builder.New("m")
	b.Function("F", nil, "1")
	d := b.Diagram("main")
	d.Initial()
	par := d.Activity("Par", "body")
	par.Node().SetStereotype(profile.OMPParallel)
	par.Tag("count", "threads")
	d.Final()
	d.Chain("initial", "Par", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("W").Cost("F()")
	body.Final()
	body.Chain("initial", "W", "final")
	m, _ := b.Build()
	// `threads` is a free identifier in generated Go; declare it as a
	// model global so the output compiles.
	m.AddVariable(uml.Variable{Name: "threads", Type: "double", Scope: uml.ScopeGlobal, Init: "4"})
	out, err := New().Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	mustParseGo(t, out)
	for _, want := range []string{"go func(tid int) {", "}(t)", "for t := 0; t < int(threads); t++ {"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateMPIShims(t *testing.T) {
	out, err := New().Generate(samples.Pipeline(2))
	if err != nil {
		t.Fatal(err)
	}
	mustParseGo(t, out)
	if !strings.Contains(out, "mpiSend(math.Mod(pid + 1, processes), 1024)") {
		t.Errorf("send call missing:\n%s", out)
	}
	if !strings.Contains(out, "func mpiSend(dest, size float64)") {
		t.Errorf("shim missing:\n%s", out)
	}
}

func TestWeightedDecisionGo(t *testing.T) {
	b := builder.New("w")
	b.Function("F", nil, "1")
	d := b.Diagram("main")
	d.Initial()
	d.Decision("dec")
	d.Action("A").Cost("F()")
	d.Action("B").Cost("F()")
	d.Merge("mrg")
	d.Final()
	d.Flow("initial", "dec")
	d.FlowWeighted("dec", "A", 0.7)
	d.FlowWeighted("dec", "B", 0.3)
	d.Chain("A", "mrg")
	d.Chain("B", "mrg", "final")
	m, _ := b.Build()
	out, err := New().Generate(m)
	if err != nil {
		t.Fatal(err)
	}
	mustParseGo(t, out)
	for _, want := range []string{
		"switch pmpR := prophetRand() * 1; { // weighted branch",
		"case pmpR < 0.7:",
		"default:",
		"func prophetRand() float64 {",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRenderGo(t *testing.T) {
	cases := map[string]string{
		"a % b":      "math.Mod(a, b)",
		"pow(2, 10)": "math.Pow(2, 10)",
		"sqrt(x)+1":  "math.Sqrt(x) + 1",
		"-x * 2":     "(-x) * 2",
		"!ok":        "!ok",
		"min(a, b)":  "math.Min(a, b)",
	}
	for in, want := range cases {
		got, err := renderGo(in)
		if err != nil {
			t.Errorf("renderGo(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("renderGo(%q) = %q, want %q", in, got, want)
		}
	}
	if _, err := renderGo("a ? b : c"); err == nil {
		t.Error("ternary should be rejected for Go output")
	}
	if _, err := renderGo("1 +"); err == nil {
		t.Error("malformed expression should fail")
	}
}

func TestFuncName(t *testing.T) {
	cases := map[string]string{
		"A1":      "BlockA1",
		"kernel6": "BlockKernel6",
		"x-y":     "BlockX_y",
		"":        "Block",
	}
	for in, want := range cases {
		if got := funcName(in); got != want {
			t.Errorf("funcName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestOptionsPackageAndNoMain(t *testing.T) {
	g := NewWith(profile.NewRegistry(), Options{Package: "kernels", EmitMain: false})
	out, err := g.Generate(samples.Kernel6())
	if err != nil {
		t.Fatal(err)
	}
	mustParseGo(t, out)
	if !strings.Contains(out, "package kernels") {
		t.Errorf("package option ignored")
	}
	if strings.Contains(out, "func main(") {
		t.Errorf("EmitMain=false ignored")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := New()
	a, _ := g.Generate(samples.Sample())
	b, _ := g.Generate(samples.Sample())
	if a != b {
		t.Error("generation not deterministic")
	}
}
