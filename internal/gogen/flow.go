package gogen

import (
	"fmt"
	"strings"

	"prophet/internal/profile"
	"prophet/internal/uml"
)

// goFlow walks a diagram and emits Go control flow, mirroring the C++
// generator's structured walk.
type goFlow struct {
	gen     *Generator
	model   *uml.Model
	w       *goWriter
	indent  int
	loopSeq int
	wgSeq   int
	active  []string
	// flowIdx caches one dense flow index per diagram for convergence
	// queries (see uml.FlowIndex).
	flowIdx map[*uml.Diagram]*uml.FlowIndex
}

// convergence answers a convergence query through the per-diagram index.
func (f *goFlow) convergence(d *uml.Diagram, heads []string) uml.Node {
	if f.flowIdx == nil {
		f.flowIdx = map[*uml.Diagram]*uml.FlowIndex{}
	}
	ix, ok := f.flowIdx[d]
	if !ok {
		ix = uml.NewFlowIndex(d)
		f.flowIdx[d] = ix
	}
	return ix.Convergence(heads)
}

func (f *goFlow) line(format string, args ...interface{}) {
	f.w.line(strings.Repeat("\t", f.indent)+format, args...)
}

func (f *goFlow) emitDiagram(d *uml.Diagram) error {
	for _, name := range f.active {
		if name == d.Name() {
			return fmt.Errorf("gogen: cyclic activity nesting through diagram %q", d.Name())
		}
	}
	f.active = append(f.active, d.Name())
	defer func() { f.active = f.active[:len(f.active)-1] }()

	ini := d.Initial()
	if ini == nil {
		if len(d.Nodes()) == 0 {
			return nil
		}
		return fmt.Errorf("gogen: diagram %q has no initial node", d.Name())
	}
	start, err := f.successor(d, ini)
	if err != nil {
		return err
	}
	return f.emitSeq(d, start, nil, map[string]bool{})
}

func (f *goFlow) emitSeq(d *uml.Diagram, cur uml.Node, stop uml.Node, onPath map[string]bool) error {
	for cur != nil {
		if stop != nil && cur.ID() == stop.ID() {
			return nil
		}
		if onPath[cur.ID()] {
			return fmt.Errorf("gogen: diagram %q: unstructured cycle through node %q", d.Name(), cur.Name())
		}
		onPath[cur.ID()] = true

		var err error
		switch n := cur.(type) {
		case *uml.ControlNode:
			switch n.Kind() {
			case uml.KindFinal:
				return nil
			case uml.KindMerge, uml.KindJoin:
				cur, err = f.successor(d, n)
			case uml.KindDecision:
				cur, err = f.emitDecision(d, n, onPath)
			case uml.KindFork:
				cur, err = f.emitFork(d, n, onPath)
			default:
				return fmt.Errorf("gogen: diagram %q: unexpected %v mid-flow", d.Name(), n.Kind())
			}
		case *uml.ActionNode:
			if err := f.emitAction(n); err != nil {
				return err
			}
			cur, err = f.successor(d, n)
		case *uml.ActivityNode:
			if err := f.emitActivity(n); err != nil {
				return err
			}
			cur, err = f.successor(d, n)
		case *uml.LoopNode:
			if err := f.emitLoop(n); err != nil {
				return err
			}
			cur, err = f.successor(d, n)
		default:
			return fmt.Errorf("gogen: unknown node type %T", cur)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (f *goFlow) successor(d *uml.Diagram, n uml.Node) (uml.Node, error) {
	out := d.Outgoing(n.ID())
	switch len(out) {
	case 0:
		return nil, nil
	case 1:
		next := d.Node(out[0].To())
		if next == nil {
			return nil, fmt.Errorf("gogen: diagram %q: dangling edge from %q", d.Name(), n.Name())
		}
		return next, nil
	}
	return nil, fmt.Errorf("gogen: diagram %q: %v %q has %d successors", d.Name(), n.Kind(), n.Name(), len(out))
}

func (f *goFlow) emitAction(n *uml.ActionNode) error {
	renderTag := func(tag string) (string, error) {
		raw, ok := n.Tag(tag)
		if !ok {
			return "0", nil
		}
		return renderGo(raw)
	}
	switch n.Stereotype() {
	case "":
		return nil
	case profile.ActionPlus, profile.OMPCritical:
		f.line("%s()", funcName(n.Name()))
	case profile.MPISend:
		dest, err := renderTag(profile.TagDest)
		if err != nil {
			return fmt.Errorf("gogen: %q dest: %w", n.Name(), err)
		}
		size, err := renderTag(profile.TagSize)
		if err != nil {
			return fmt.Errorf("gogen: %q size: %w", n.Name(), err)
		}
		f.line("mpiSend(%s, %s)", dest, size)
	case profile.MPIRecv:
		src, err := renderTag(profile.TagSrc)
		if err != nil {
			return fmt.Errorf("gogen: %q src: %w", n.Name(), err)
		}
		f.line("mpiRecv(%s)", src)
	case profile.MPISendrecv:
		dest, err := renderTag(profile.TagDest)
		if err != nil {
			return fmt.Errorf("gogen: %q dest: %w", n.Name(), err)
		}
		src, err := renderTag(profile.TagSrc)
		if err != nil {
			return fmt.Errorf("gogen: %q src: %w", n.Name(), err)
		}
		size, err := renderTag(profile.TagSize)
		if err != nil {
			return fmt.Errorf("gogen: %q size: %w", n.Name(), err)
		}
		f.line("mpiSendrecv(%s, %s, %s)", dest, src, size)
	case profile.MPIBarrier:
		f.line("mpiBarrier()")
	case profile.MPIBroadcast:
		root, err := renderTag(profile.TagRoot)
		if err != nil {
			return err
		}
		size, err := renderTag(profile.TagSize)
		if err != nil {
			return err
		}
		f.line("mpiBcast(%s, %s)", root, size)
	case profile.MPIReduce:
		root, err := renderTag(profile.TagRoot)
		if err != nil {
			return err
		}
		size, err := renderTag(profile.TagSize)
		if err != nil {
			return err
		}
		f.line("mpiReduce(%s, %s)", root, size)
	default:
		return fmt.Errorf("gogen: element %q: unsupported stereotype <<%s>>", n.Name(), n.Stereotype())
	}
	return nil
}

func (f *goFlow) emitActivity(n *uml.ActivityNode) error {
	f.line("// activity %s", n.Name())
	body := f.model.DiagramByName(n.Body)
	if body == nil {
		return fmt.Errorf("gogen: activity %q references unknown diagram %q", n.Name(), n.Body)
	}
	if n.Stereotype() == profile.OMPParallel {
		count := "int(1)"
		if raw, ok := n.Tag(profile.TagCount); ok {
			c, err := renderGo(raw)
			if err != nil {
				return fmt.Errorf("gogen: parallel region %q count: %w", n.Name(), err)
			}
			count = "int(" + c + ")"
		}
		f.wgSeq++
		wg := fmt.Sprintf("wg%d", f.wgSeq)
		f.line("var %s sync.WaitGroup", wg)
		f.line("for t := 0; t < %s; t++ {", count)
		f.indent++
		f.line("%s.Add(1)", wg)
		f.line("go func(tid int) {")
		f.indent++
		f.line("defer %s.Done()", wg)
		f.line("_ = tid")
		if err := f.emitDiagram(body); err != nil {
			return err
		}
		f.indent--
		f.line("}(t)")
		f.indent--
		f.line("}")
		f.line("%s.Wait()", wg)
		return nil
	}
	return f.emitDiagram(body)
}

func (f *goFlow) emitLoop(n *uml.LoopNode) error {
	count, err := renderGo(n.Count)
	if err != nil {
		return fmt.Errorf("gogen: loop %q count: %w", n.Name(), err)
	}
	v := n.Var
	if v == "" {
		f.loopSeq++
		v = fmt.Sprintf("it%d", f.loopSeq)
	}
	body := f.model.DiagramByName(n.Body)
	if body == nil {
		return fmt.Errorf("gogen: loop %q references unknown diagram %q", n.Name(), n.Body)
	}
	f.line("for %s := 0; %s < int(%s); %s++ { // loop %s", v, v, count, v, n.Name())
	f.indent++
	f.line("_ = %s", v)
	if err := f.emitDiagram(body); err != nil {
		return err
	}
	f.indent--
	f.line("}")
	return nil
}

func (f *goFlow) emitDecision(d *uml.Diagram, n *uml.ControlNode, onPath map[string]bool) (uml.Node, error) {
	out := d.Outgoing(n.ID())
	if len(out) > 0 && out[0].Guard == "" && out[0].Weight > 0 {
		return f.emitWeightedDecision(d, n, out, onPath)
	}
	var guarded []*uml.Edge
	var elseEdge *uml.Edge
	for _, e := range out {
		if e.IsElse() {
			elseEdge = e
			continue
		}
		if e.Guard == "" {
			return nil, fmt.Errorf("gogen: diagram %q: unguarded branch out of decision", d.Name())
		}
		guarded = append(guarded, e)
	}
	if len(guarded) == 0 {
		return nil, fmt.Errorf("gogen: diagram %q: decision %q needs at least one guarded branch", d.Name(), n.Name())
	}
	heads := make([]string, len(out))
	for i, e := range out {
		heads[i] = e.To()
	}
	conv := f.convergence(d, heads)

	emitBranch := func(head string) error {
		node := d.Node(head)
		if node == nil {
			return fmt.Errorf("gogen: diagram %q: dangling branch edge", d.Name())
		}
		f.indent++
		branchPath := make(map[string]bool, len(onPath))
		for id := range onPath {
			branchPath[id] = true
		}
		err := f.emitSeq(d, node, conv, branchPath)
		f.indent--
		return err
	}

	for i, e := range guarded {
		guard, err := renderGo(e.Guard)
		if err != nil {
			return nil, fmt.Errorf("gogen: guard %q: %w", e.Guard, err)
		}
		if i == 0 {
			f.line("if %s {", guard)
		} else {
			f.line("} else if %s {", guard)
		}
		if err := emitBranch(e.To()); err != nil {
			return nil, err
		}
	}
	if elseEdge != nil {
		f.line("} else {")
		if err := emitBranch(elseEdge.To()); err != nil {
			return nil, err
		}
	}
	f.line("}")
	return conv, nil
}

// emitWeightedDecision renders a probabilistic branch over prophetRand().
func (f *goFlow) emitWeightedDecision(d *uml.Diagram, n *uml.ControlNode, out []*uml.Edge, onPath map[string]bool) (uml.Node, error) {
	var total float64
	for _, e := range out {
		if e.Guard != "" || e.Weight <= 0 {
			return nil, fmt.Errorf("gogen: diagram %q: decision %q mixes weighted and guarded branches",
				d.Name(), n.Name())
		}
		total += e.Weight
	}
	heads := make([]string, len(out))
	for i, e := range out {
		heads[i] = e.To()
	}
	conv := f.convergence(d, heads)
	emitBranch := func(head string) error {
		node := d.Node(head)
		if node == nil {
			return fmt.Errorf("gogen: diagram %q: dangling branch edge", d.Name())
		}
		f.indent++
		branchPath := make(map[string]bool, len(onPath))
		for id := range onPath {
			branchPath[id] = true
		}
		err := f.emitSeq(d, node, conv, branchPath)
		f.indent--
		return err
	}
	f.line("switch pmpR := prophetRand() * %g; { // weighted branch", total)
	acc := 0.0
	for i, e := range out {
		acc += e.Weight
		if i == len(out)-1 {
			f.line("default:")
		} else {
			f.line("case pmpR < %g:", acc)
		}
		if err := emitBranch(e.To()); err != nil {
			return nil, err
		}
	}
	f.line("}")
	return conv, nil
}

func (f *goFlow) emitFork(d *uml.Diagram, n *uml.ControlNode, onPath map[string]bool) (uml.Node, error) {
	out := d.Outgoing(n.ID())
	if len(out) < 2 {
		return nil, fmt.Errorf("gogen: diagram %q: fork %q has %d branch(es)", d.Name(), n.Name(), len(out))
	}
	heads := make([]string, len(out))
	for i, e := range out {
		heads[i] = e.To()
	}
	conv := f.convergence(d, heads)
	f.wgSeq++
	wg := fmt.Sprintf("wg%d", f.wgSeq)
	f.line("var %s sync.WaitGroup // fork", wg)
	for _, e := range out {
		node := d.Node(e.To())
		if node == nil {
			return nil, fmt.Errorf("gogen: diagram %q: dangling fork edge", d.Name())
		}
		f.line("%s.Add(1)", wg)
		f.line("go func() {")
		f.indent++
		f.line("defer %s.Done()", wg)
		branchPath := make(map[string]bool, len(onPath))
		for id := range onPath {
			branchPath[id] = true
		}
		if err := f.emitSeq(d, node, conv, branchPath); err != nil {
			return nil, err
		}
		f.indent--
		f.line("}()")
	}
	f.line("%s.Wait() // join", wg)
	if conv != nil && conv.Kind() == uml.KindJoin {
		return f.successor(d, conv)
	}
	return conv, nil
}
