package gogen

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"prophet/internal/samples"
	"prophet/internal/uml"
)

// TestGeneratedGoCompiles builds the generated program skeletons with the
// real Go toolchain — the end-to-end proof of the future-work extension.
func TestGeneratedGoCompiles(t *testing.T) {
	if testing.Short() {
		t.Skip("compilation test skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}

	models := map[string]*uml.Model{
		"sample":           samples.Sample(),
		"kernel6":          samples.Kernel6(),
		"kernel6-detailed": samples.Kernel6Detailed(),
		"pipeline":         samples.Pipeline(3),
	}
	gen := New()
	for name, m := range models {
		name, m := name, m
		t.Run(name, func(t *testing.T) {
			src, err := gen.Generate(m)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module generated\n\ngo 1.22\n"), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
			cmd := exec.Command(goBin, "build", "-o", filepath.Join(dir, "bin"), ".")
			cmd.Dir = dir
			cmd.Env = append(os.Environ(), "GOFLAGS=-mod=mod", "GO111MODULE=on")
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("generated Go does not compile: %v\n%s\n--- source ---\n%s", err, out, src)
			}
			// The generated skeleton must also run (it only touches stubs).
			run := exec.Command(filepath.Join(dir, "bin"))
			if out, err := run.CombinedOutput(); err != nil {
				t.Fatalf("generated program failed to run: %v\n%s", err, out)
			}
		})
	}
}
