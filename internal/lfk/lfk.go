// Package lfk ports a representative subset of the Livermore Fortran
// Kernels (McMahon, UCRL-53745) to Go. Kernel 6 is the workload of the
// paper's Figure 3 ("This code block is known as kernel 6 of the Livermore
// Fortran kernels"); the others give the examples and benchmarks a variety
// of loop structures to model.
//
// Each kernel reports both a checksum (so the compiler cannot eliminate
// the work) and an analytic operation count; Time measures the real
// execution and Calibrate fits the per-operation cost c that the models'
// cost functions (e.g. FK6 = M * (N-1)*N/2 * c) need — the "measured
// execution time" annotation workflow of the paper's Section 2.1.
package lfk

import (
	"fmt"
	"time"
)

// Kernel is one Livermore kernel: a runnable workload plus its analytic
// cost model.
type Kernel struct {
	// ID is the Livermore kernel number.
	ID int
	// Name is a short label.
	Name string
	// Description summarizes the computation.
	Description string
	// Run executes the kernel with problem size n, repeated m times, and
	// returns a checksum.
	Run func(n, m int) float64
	// Ops returns the modeled number of innermost-statement executions.
	Ops func(n, m int) float64
}

// vector allocates a deterministic pseudo-random vector (no math/rand so
// results are stable across Go versions).
func vector(n int, seed float64) []float64 {
	v := make([]float64, n)
	x := seed
	for i := range v {
		// A small LCG in floating point keeps values in (0, 1).
		x = x*997.0 + 0.123456789
		x -= float64(int64(x))
		v[i] = 0.5 + 0.25*x
	}
	return v
}

func matrix(rows, cols int, seed float64) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = vector(cols, seed+float64(i))
	}
	return m
}

func checksum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// kernel1 — hydro fragment: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
func kernel1(n, m int) float64 {
	x := make([]float64, n)
	y := vector(n, 1)
	z := vector(n+11, 2)
	q, r, t := 0.05, 0.02, 0.01
	for l := 0; l < m; l++ {
		for k := 0; k < n; k++ {
			x[k] = q + y[k]*(r*z[k+10]+t*z[k+11])
		}
	}
	return checksum(x)
}

// kernel3 — inner product.
func kernel3(n, m int) float64 {
	x := vector(n, 3)
	z := vector(n, 4)
	var q float64
	for l := 0; l < m; l++ {
		q = 0
		for k := 0; k < n; k++ {
			q += z[k] * x[k]
		}
	}
	return q
}

// kernel5 — tri-diagonal elimination, below diagonal:
// x[i] = z[i]*(y[i] - x[i-1]).
func kernel5(n, m int) float64 {
	x := vector(n, 5)
	y := vector(n, 6)
	z := vector(n, 7)
	for l := 0; l < m; l++ {
		for i := 1; i < n; i++ {
			x[i] = z[i] * (y[i] - x[i-1])
		}
	}
	return checksum(x)
}

// kernel6 — general linear recurrence equations, the paper's Figure 3(a):
//
//	DO  L = 1, M
//	 DO  i = 2, N
//	  DO  k = 1, i-1
//	   W(i) = W(i) + B(i,k) * W(i-k)
//
// Indices follow the Fortran original (1-based); W and B use index 0 as
// padding. The values are rescaled every outer iteration to keep the
// recurrence from overflowing at large M.
func kernel6(n, m int) float64 {
	w := vector(n+1, 8)
	b := matrix(n+1, n+1, 9)
	for l := 1; l <= m; l++ {
		for i := 2; i <= n; i++ {
			for k := 1; k <= i-1; k++ {
				w[i] += 1e-6 * b[i][k] * w[i-k]
			}
		}
	}
	return checksum(w)
}

// kernel7 — equation of state fragment.
func kernel7(n, m int) float64 {
	x := make([]float64, n)
	y := vector(n+6, 10)
	z := vector(n+6, 11)
	u := vector(n+6, 12)
	q, r, t := 0.5, 0.2, 0.1
	for l := 0; l < m; l++ {
		for k := 0; k < n; k++ {
			x[k] = u[k] + r*(z[k]+r*y[k]) +
				t*(u[k+3]+r*(u[k+2]+r*u[k+1])+
					t*(u[k+6]+q*(u[k+5]+q*u[k+4])))
		}
	}
	return checksum(x)
}

// kernel11 — first sum (sequential prefix sum).
func kernel11(n, m int) float64 {
	x := make([]float64, n)
	y := vector(n, 13)
	for l := 0; l < m; l++ {
		x[0] = y[0]
		for k := 1; k < n; k++ {
			x[k] = x[k-1] + y[k]
		}
	}
	return checksum(x)
}

// kernel12 — first difference.
func kernel12(n, m int) float64 {
	x := make([]float64, n)
	y := vector(n+1, 14)
	for l := 0; l < m; l++ {
		for k := 0; k < n; k++ {
			x[k] = y[k+1] - y[k]
		}
	}
	return checksum(x)
}

// kernel9 — integrate predictors: a 13-term linear combination per row.
func kernel9(n, m int) float64 {
	px := matrix(n, 13, 18)
	const (
		dm22, dm23, dm24 = 0.2, 0.3, 0.4
		dm25, dm26, dm27 = 0.5, 0.6, 0.7
		dm28, c0         = 0.8, 1.1
	)
	for l := 0; l < m; l++ {
		for i := 0; i < n; i++ {
			px[i][0] = dm28*px[i][12] + dm27*px[i][11] + dm26*px[i][10] +
				dm25*px[i][9] + dm24*px[i][8] + dm23*px[i][7] +
				dm22*px[i][6] + c0*(px[i][4]+px[i][5]) + px[i][2]
		}
	}
	var s float64
	for i := 0; i < n; i++ {
		s += px[i][0]
	}
	return s
}

// kernel10 — difference predictors: a 9-deep difference chain per column.
func kernel10(n, m int) float64 {
	px := matrix(n, 13, 19)
	cx := matrix(n, 5, 20)
	for l := 0; l < m; l++ {
		for k := 0; k < n; k++ {
			ar := cx[k][4]
			br := ar - px[k][4]
			px[k][4] = ar
			cr := br - px[k][5]
			px[k][5] = br
			ar = cr - px[k][6]
			px[k][6] = cr
			br = ar - px[k][7]
			px[k][7] = ar
			cr = br - px[k][8]
			px[k][8] = br
			ar = cr - px[k][9]
			px[k][9] = cr
			br = ar - px[k][10]
			px[k][10] = ar
			cr = br - px[k][11]
			px[k][11] = br
			px[k][12] = cr
		}
	}
	var s float64
	for k := 0; k < n; k++ {
		s += px[k][12]
	}
	return s
}

// kernel22 — Planckian distribution.
func kernel22(n, m int) float64 {
	u := vector(n, 21)
	v := vector(n, 22)
	x := vector(n, 23)
	y := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] += 0.5 // keep y in a numerically pleasant range
	}
	for l := 0; l < m; l++ {
		for k := 0; k < n; k++ {
			y[k] = u[k] / v[k]
			w[k] = x[k] / (expApprox(y[k]) - 1)
		}
	}
	return checksum(w)
}

// expApprox matches math.Exp closely enough for a benchmark kernel while
// keeping the arithmetic profile fixed across Go versions.
func expApprox(x float64) float64 {
	// 8th-order Taylor around 0 is fine for x in (0, ~2).
	sum, term := 1.0, 1.0
	for i := 1; i <= 8; i++ {
		term *= x / float64(i)
		sum += term
	}
	return sum
}

// kernel24 — location of the first minimum of a vector.
func kernel24(n, m int) float64 {
	x := vector(n, 24)
	x[n*2/3] = -1 // plant the minimum
	loc := 0
	for l := 0; l < m; l++ {
		loc = 0
		for k := 1; k < n; k++ {
			if x[k] < x[loc] {
				loc = k
			}
		}
	}
	return float64(loc)
}

// kernel21 — matrix * matrix product (n/4 x n/4 blocks to keep the cubic
// cost in the same ballpark as the other kernels at equal n).
func kernel21(n, m int) float64 {
	d := n/4 + 1
	px := matrix(d, d, 15)
	vy := matrix(d, d, 16)
	cx := matrix(d, d, 17)
	for l := 0; l < m; l++ {
		for k := 0; k < d; k++ {
			for i := 0; i < d; i++ {
				for j := 0; j < d; j++ {
					px[j][i] += vy[k][i] * cx[j][k]
				}
			}
		}
	}
	var s float64
	for _, row := range px {
		s += checksum(row)
	}
	return s
}

// kernels is the registry, ordered by kernel number.
var kernels = []Kernel{
	{ID: 1, Name: "hydro", Description: "hydrodynamics fragment",
		Run: kernel1, Ops: func(n, m int) float64 { return float64(n) * float64(m) }},
	{ID: 3, Name: "inner", Description: "inner product",
		Run: kernel3, Ops: func(n, m int) float64 { return float64(n) * float64(m) }},
	{ID: 5, Name: "tridiag", Description: "tri-diagonal elimination",
		Run: kernel5, Ops: func(n, m int) float64 { return float64(n-1) * float64(m) }},
	{ID: 6, Name: "recurrence", Description: "general linear recurrence (paper, Figure 3)",
		Run: kernel6, Ops: func(n, m int) float64 { return float64(m) * float64(n-1) * float64(n) / 2 }},
	{ID: 7, Name: "state", Description: "equation of state fragment",
		Run: kernel7, Ops: func(n, m int) float64 { return float64(n) * float64(m) }},
	{ID: 9, Name: "intpredict", Description: "integrate predictors",
		Run: kernel9, Ops: func(n, m int) float64 { return float64(n) * float64(m) }},
	{ID: 10, Name: "diffpredict", Description: "difference predictors",
		Run: kernel10, Ops: func(n, m int) float64 { return float64(n) * float64(m) }},
	{ID: 11, Name: "firstsum", Description: "first sum (prefix sum)",
		Run: kernel11, Ops: func(n, m int) float64 { return float64(n-1) * float64(m) }},
	{ID: 12, Name: "firstdiff", Description: "first difference",
		Run: kernel12, Ops: func(n, m int) float64 { return float64(n) * float64(m) }},
	{ID: 21, Name: "matmul", Description: "matrix product (n/4 blocks)",
		Run: kernel21, Ops: func(n, m int) float64 { d := float64(n/4 + 1); return d * d * d * float64(m) }},
	{ID: 22, Name: "planckian", Description: "Planckian distribution",
		Run: kernel22, Ops: func(n, m int) float64 { return float64(n) * float64(m) }},
	{ID: 24, Name: "minloc", Description: "location of first minimum",
		Run: kernel24, Ops: func(n, m int) float64 { return float64(n-1) * float64(m) }},
}

// Kernels returns the registry, ordered by kernel number.
func Kernels() []Kernel {
	out := make([]Kernel, len(kernels))
	copy(out, kernels)
	return out
}

// ByID returns the kernel with the given Livermore number.
func ByID(id int) (Kernel, bool) {
	for _, k := range kernels {
		if k.ID == id {
			return k, true
		}
	}
	return Kernel{}, false
}

// Measurement is one timed kernel execution.
type Measurement struct {
	Kernel   int
	N, M     int
	Seconds  float64
	Ops      float64
	Checksum float64
}

// CostPerOp returns the measured cost of one modeled operation.
func (m Measurement) CostPerOp() float64 {
	if m.Ops == 0 {
		return 0
	}
	return m.Seconds / m.Ops
}

// Time measures one execution of the kernel.
func Time(k Kernel, n, m int) Measurement {
	start := time.Now()
	sum := k.Run(n, m)
	elapsed := time.Since(start).Seconds()
	return Measurement{Kernel: k.ID, N: n, M: m, Seconds: elapsed, Ops: k.Ops(n, m), Checksum: sum}
}

// TimeBest runs the kernel reps times and keeps the fastest run — the
// standard way to suppress scheduler and clock noise when calibrating on
// a shared machine.
func TimeBest(k Kernel, n, m, reps int) Measurement {
	if reps < 1 {
		reps = 1
	}
	best := Time(k, n, m)
	for i := 1; i < reps; i++ {
		if meas := Time(k, n, m); meas.Seconds < best.Seconds {
			best = meas
		}
	}
	return best
}

// Size is one (N, M) problem size.
type Size struct{ N, M int }

// Calibrate fits the per-operation cost c that minimizes the squared error
// of seconds ~= c * ops across the sample sizes (least squares through the
// origin: c = sum(t*ops) / sum(ops^2)). This is how the `c` global of the
// kernel-6 models is obtained from measurements.
func Calibrate(k Kernel, sizes []Size) (float64, []Measurement, error) {
	if len(sizes) == 0 {
		return 0, nil, fmt.Errorf("lfk: no calibration sizes")
	}
	var num, den float64
	var ms []Measurement
	for _, s := range sizes {
		meas := TimeBest(k, s.N, s.M, 3)
		ms = append(ms, meas)
		num += meas.Seconds * meas.Ops
		den += meas.Ops * meas.Ops
	}
	if den == 0 {
		return 0, ms, fmt.Errorf("lfk: zero operation count across samples")
	}
	return num / den, ms, nil
}

// Predict applies a calibrated cost to a problem size.
func Predict(k Kernel, c float64, n, m int) float64 {
	return c * k.Ops(n, m)
}
