package lfk

import (
	"math"
	"testing"
)

func TestRegistry(t *testing.T) {
	ks := Kernels()
	if len(ks) != 12 {
		t.Fatalf("kernels = %d, want 12", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i].ID <= ks[i-1].ID {
			t.Errorf("registry not sorted by kernel number at %d", i)
		}
	}
	for _, k := range ks {
		if k.Run == nil || k.Ops == nil || k.Name == "" {
			t.Errorf("kernel %d incomplete", k.ID)
		}
	}
	k6, ok := ByID(6)
	if !ok || k6.Name != "recurrence" {
		t.Errorf("ByID(6) = %+v, %v", k6, ok)
	}
	if _, ok := ByID(99); ok {
		t.Error("unknown kernel should report false")
	}
}

func TestKernelsDeterministic(t *testing.T) {
	for _, k := range Kernels() {
		a := k.Run(64, 2)
		b := k.Run(64, 2)
		if a != b {
			t.Errorf("kernel %d not deterministic: %v vs %v", k.ID, a, b)
		}
		if math.IsNaN(a) || math.IsInf(a, 0) || a == 0 {
			t.Errorf("kernel %d checksum degenerate: %v", k.ID, a)
		}
	}
}

func TestKernelsSensitiveToSize(t *testing.T) {
	for _, k := range Kernels() {
		small := k.Run(32, 1)
		large := k.Run(64, 1)
		if small == large {
			t.Errorf("kernel %d checksum identical across sizes", k.ID)
		}
	}
}

// TestKernel6OpsFormula verifies the trip count that the paper's cost
// function FK6 models: M * (N-1)*N/2 innermost executions.
func TestKernel6OpsFormula(t *testing.T) {
	k6, _ := ByID(6)
	cases := []struct {
		n, m int
		want float64
	}{
		{10, 1, 45},
		{10, 3, 135},
		{100, 2, 9900},
		{2, 5, 5},
	}
	for _, c := range cases {
		if got := k6.Ops(c.n, c.m); got != c.want {
			t.Errorf("Ops(%d, %d) = %v, want %v", c.n, c.m, got, c.want)
		}
	}
}

// TestKernel6TripCount cross-checks the analytic formula against an
// instrumented replica of the loop nest.
func TestKernel6TripCount(t *testing.T) {
	for _, c := range []struct{ n, m int }{{5, 1}, {10, 2}, {17, 3}} {
		trips := 0
		for l := 1; l <= c.m; l++ {
			for i := 2; i <= c.n; i++ {
				for k := 1; k <= i-1; k++ {
					trips++
				}
			}
		}
		k6, _ := ByID(6)
		if got := k6.Ops(c.n, c.m); got != float64(trips) {
			t.Errorf("Ops(%d, %d) = %v, counted %d", c.n, c.m, got, trips)
		}
	}
}

func TestOpsPositiveAndMonotonic(t *testing.T) {
	for _, k := range Kernels() {
		o1 := k.Ops(64, 1)
		o2 := k.Ops(64, 2)
		o3 := k.Ops(128, 2)
		if o1 <= 0 {
			t.Errorf("kernel %d: ops not positive", k.ID)
		}
		if o2 <= o1 || o3 <= o2 {
			t.Errorf("kernel %d: ops not monotonic (%v, %v, %v)", k.ID, o1, o2, o3)
		}
	}
}

func TestTimeMeasurement(t *testing.T) {
	k6, _ := ByID(6)
	m := Time(k6, 100, 2)
	if m.Seconds < 0 || m.Ops != 9900 || m.Kernel != 6 {
		t.Errorf("measurement = %+v", m)
	}
	if m.CostPerOp() < 0 {
		t.Errorf("cost per op negative")
	}
	if (Measurement{}).CostPerOp() != 0 {
		t.Errorf("zero-ops measurement should report 0 cost")
	}
}

func TestCalibrateAndPredict(t *testing.T) {
	k6, _ := ByID(6)
	c, ms, err := Calibrate(k6, []Size{{100, 2}, {150, 2}, {200, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if c <= 0 {
		t.Fatalf("calibrated cost = %v, want > 0", c)
	}
	if len(ms) != 3 {
		t.Fatalf("measurements = %d", len(ms))
	}
	// Prediction at a calibration point should be within 20x of the
	// measurement (loose: CI machines have noisy clocks at microsecond
	// scales; the model-shape tests below are the strict ones).
	pred := Predict(k6, c, 200, 2)
	if pred <= 0 {
		t.Errorf("prediction = %v", pred)
	}
	ratio := pred / ms[2].Seconds
	if ratio < 0.05 || ratio > 20 {
		t.Errorf("prediction %v wildly off measurement %v", pred, ms[2].Seconds)
	}
	// The prediction scales exactly with the op count.
	if got := Predict(k6, c, 400, 2) / Predict(k6, c, 200, 2); math.Abs(got-4.015) > 0.05 {
		// (399*400)/(199*200) = 4.015...
		t.Errorf("prediction scaling = %v, want ~4.015", got)
	}
}

func TestCalibrateErrors(t *testing.T) {
	k6, _ := ByID(6)
	if _, _, err := Calibrate(k6, nil); err == nil {
		t.Error("empty sizes should fail")
	}
}
