package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is one request's end-to-end story: a tree of wall-clock spans,
// each with a name, a duration and free-form string attributes, under a
// single trace ID. Where SpanRecorder answers "how long did each stage
// take, flat", a Trace answers "what happened inside THIS request, in
// what order, nested how" — the unit the serving layer stores, exports
// as JSON, and converts to Chrome trace format for traceview.
//
// Spans propagate through context.Context (ContextWithSpan / StartSpan),
// so the server, the estimator, the batch runner and the simulation all
// attach their spans to whichever request is running them without any
// of those layers knowing about each other. Every method is safe for
// concurrent use — parallel runner workers start children of the same
// parent — and every method is a no-op on a nil *TraceSpan, so
// instrumented code never checks whether tracing is on.
type Trace struct {
	id    string
	clock func() time.Time // test seam; nil means time.Now

	mu      sync.Mutex
	root    *TraceSpan
	spans   int // spans created, root included
	dropped int // children refused by the maxSpans cap
	max     int
}

// defaultMaxSpans bounds the spans retained per trace: a sweep that fans
// out thousands of points must not grow one request's trace without
// bound. Children beyond the cap are dropped (counted in the export).
const defaultMaxSpans = 4096

// TraceSpan is one node of a Trace: a named interval with attributes and
// children. Create children with StartChild (or StartSpan via context),
// close with End.
type TraceSpan struct {
	tr       *Trace
	name     string
	start    time.Time
	end      time.Time // zero while the span is open
	attrs    map[string]string
	children []*TraceSpan
}

// NewTrace creates a trace whose root span (named name) starts now.
func NewTrace(name string) (*Trace, *TraceSpan) {
	return newTrace(name, nil)
}

func newTrace(name string, clock func() time.Time) (*Trace, *TraceSpan) {
	t := &Trace{id: newTraceID(), clock: clock, max: defaultMaxSpans}
	t.root = &TraceSpan{tr: t, name: name, start: t.now()}
	t.spans = 1
	return t, t.root
}

// traceSeq de-duplicates IDs if crypto/rand ever fails.
var traceSeq atomic.Int64

func newTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := traceSeq.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

func (t *Trace) now() time.Time {
	if t.clock != nil {
		return t.clock()
	}
	return time.Now()
}

// ID returns the trace's identifier (hex, stable for its lifetime).
// Safe on a nil trace (returns "").
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span.
func (t *Trace) Root() *TraceSpan {
	if t == nil {
		return nil
	}
	return t.root
}

// Trace returns the trace a span belongs to; nil on a nil span.
func (s *TraceSpan) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// StartChild opens a child span. It returns nil (a valid no-op span)
// when the receiver is nil or the trace's span cap is reached.
func (s *TraceSpan) StartChild(name string) *TraceSpan {
	if s == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans >= t.max {
		t.dropped++
		return nil
	}
	c := &TraceSpan{tr: t, name: name, start: t.now()}
	s.children = append(s.children, c)
	t.spans++
	return c
}

// End closes the span. Ending an already-ended span is a no-op, so
// `defer span.End()` composes with an explicit early End.
func (s *TraceSpan) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	if s.end.IsZero() {
		s.end = t.now()
	}
	t.mu.Unlock()
}

// Annotate attaches (or overwrites) one string attribute.
func (s *TraceSpan) Annotate(key, value string) {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[key] = value
	t.mu.Unlock()
}

// ctxKey is the context key type for span propagation.
type ctxKey struct{}

// ContextWithSpan returns a context carrying the span; subsequent
// StartSpan calls create its children.
func ContextWithSpan(ctx context.Context, s *TraceSpan) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil (a no-op span)
// when ctx is nil or carries none.
func SpanFromContext(ctx context.Context) *TraceSpan {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*TraceSpan)
	return s
}

// StartSpan opens a child of the span carried by ctx and returns a
// derived context carrying the child. When ctx carries no span both
// returns degrade gracefully: the original ctx and a nil (no-op) span.
// The caller must End the returned span.
func StartSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	child := parent.StartChild(name)
	if child == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, child), child
}

// SpanNode is the exported form of one span: a JSON-friendly snapshot.
type SpanNode struct {
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	// Seconds is the span's wall-clock duration; for a span still open at
	// export time it is the duration so far and Unfinished is true.
	Seconds    float64           `json:"seconds"`
	Unfinished bool              `json:"unfinished,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanNode       `json:"children,omitempty"`
}

// TraceTree is the exported form of a whole trace: what /v1/traces/{id}
// serves and what trace.FromSpanTree converts for traceview.
type TraceTree struct {
	TraceID      string    `json:"trace_id"`
	Spans        int       `json:"spans"`
	DroppedSpans int       `json:"dropped_spans,omitempty"`
	Root         *SpanNode `json:"root"`
}

// Tree snapshots the trace as an exportable span tree. Safe to call at
// any time, including while spans are still being recorded.
func (t *Trace) Tree() TraceTree {
	if t == nil {
		return TraceTree{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	return TraceTree{
		TraceID:      t.id,
		Spans:        t.spans,
		DroppedSpans: t.dropped,
		Root:         t.root.export(now),
	}
}

// export copies a span subtree; call with the trace mutex held.
func (s *TraceSpan) export(now time.Time) *SpanNode {
	n := &SpanNode{Name: s.name, Start: s.start}
	if s.end.IsZero() {
		n.Seconds = now.Sub(s.start).Seconds()
		n.Unfinished = true
	} else {
		n.Seconds = s.end.Sub(s.start).Seconds()
	}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			n.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		n.Children = append(n.Children, c.export(now))
	}
	return n
}
