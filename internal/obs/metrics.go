// Package obs is the observability layer of the Prophet pipeline: a
// lock-cheap metrics registry (counters, gauges, fixed-bucket histograms,
// plus labeled variants), wall-clock pipeline spans, and exporters for
// JSON, CSV and an expvar-style text format.
//
// The package deliberately imports nothing else from this repository so
// that every layer — the sim engine, the estimator, the CLIs — can depend
// on it without cycles. Hot-path updates (Counter.Add, Gauge.Set,
// Histogram.Observe) are single atomic operations; registry locks are
// taken only on metric creation and snapshot.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta; negative deltas are ignored to preserve monotonicity.
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a floating-point metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta (compare-and-swap loop; gauges are
// updated rarely enough that contention is negligible).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) reset() { g.bits.Store(0) }

// Histogram counts observations into fixed buckets. Buckets are defined
// by their inclusive upper bounds in ascending order; an implicit +Inf
// bucket catches everything above the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Int64
	sumμ   atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumμ.Load()
		cur := math.Float64frombits(old)
		if h.sumμ.CompareAndSwap(old, math.Float64bits(cur+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumμ.Load()) }

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket observation counts; the last entry
// is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sumμ.Store(0)
}

// labelKey folds label values into a map key. The separator cannot occur
// in practice because label values in this codebase are identifiers.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// DefaultMaxLabelSets caps the distinct label-value sets one labeled
// metric may grow. Label values often echo request content (routes,
// status codes, stage names); without a cap, a misbehaving client could
// grow the registry — and every /metrics response — without bound.
// Observations beyond the cap fold into a single overflow series whose
// every label value is OverflowLabel.
const DefaultMaxLabelSets = 256

// OverflowLabel is the label value of the overflow series that absorbs
// observations past a vec's label-set cap.
const OverflowLabel = "other"

// overflowKey returns the map key of the overflow child for n labels.
func overflowKey(n int) string {
	values := make([]string, n)
	for i := range values {
		values[i] = OverflowLabel
	}
	return labelKey(values)
}

// vecKey resolves the key to store a missing child under, honouring the
// cardinality cap: at or beyond limit distinct label sets, new sets fold
// into the overflow key. Call with the vec's write lock held.
func vecKey(k string, keys []string, limit, labels int) string {
	if limit > 0 && len(keys) >= limit {
		return overflowKey(labels)
	}
	return k
}

// CounterVec is a family of counters partitioned by label values.
type CounterVec struct {
	name   string
	labels []string
	limit  int // max distinct label sets; 0 = unlimited
	mu     sync.RWMutex
	kids   map[string]*Counter
	keys   []string // insertion order for deterministic snapshots
}

// With returns (creating on first use) the child counter for the given
// label values; the number of values must match the label names. Past
// the registry's label-set cap, unseen label sets share one overflow
// child labeled OverflowLabel.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: counter %q expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	k := labelKey(values)
	v.mu.RLock()
	c := v.kids[k]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	k = vecKey(k, v.keys, v.limit, len(v.labels))
	if c = v.kids[k]; c == nil {
		c = &Counter{}
		v.kids[k] = c
		v.keys = append(v.keys, k)
	}
	return c
}

// GaugeVec is a family of gauges partitioned by label values.
type GaugeVec struct {
	name   string
	labels []string
	limit  int
	mu     sync.RWMutex
	kids   map[string]*Gauge
	keys   []string
}

// With returns (creating on first use) the child gauge for the values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: gauge %q expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	k := labelKey(values)
	v.mu.RLock()
	g := v.kids[k]
	v.mu.RUnlock()
	if g != nil {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	k = vecKey(k, v.keys, v.limit, len(v.labels))
	if g = v.kids[k]; g == nil {
		g = &Gauge{}
		v.kids[k] = g
		v.keys = append(v.keys, k)
	}
	return g
}

// HistogramVec is a family of histograms partitioned by label values.
type HistogramVec struct {
	name   string
	labels []string
	bounds []float64
	limit  int
	mu     sync.RWMutex
	kids   map[string]*Histogram
	keys   []string
}

// With returns (creating on first use) the child histogram for the values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: histogram %q expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	k := labelKey(values)
	v.mu.RLock()
	h := v.kids[k]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	k = vecKey(k, v.keys, v.limit, len(v.labels))
	if h = v.kids[k]; h == nil {
		h = newHistogram(v.bounds)
		v.kids[k] = h
		v.keys = append(v.keys, k)
	}
	return h
}

// Registry owns a namespace of metrics. Metric accessors are get-or-create
// and safe for concurrent use; creating the same name with a different
// metric type panics (a programming error, like expvar).
type Registry struct {
	mu    sync.RWMutex
	named map[string]any // *Counter | *Gauge | *Histogram | *CounterVec | *GaugeVec | *HistogramVec
	order []string
	help  map[string]string
	// maxLabelSets caps distinct label sets per labeled metric created
	// from this registry: 0 means DefaultMaxLabelSets, negative means
	// unlimited. Applied at vec creation time.
	maxLabelSets int
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{named: make(map[string]any)}
}

// SetMaxLabelSets caps how many distinct label sets each labeled metric
// created *after* this call may hold (overflow folds into a series
// labeled OverflowLabel). 0 restores DefaultMaxLabelSets; negative
// removes the cap.
func (r *Registry) SetMaxLabelSets(n int) {
	r.mu.Lock()
	r.maxLabelSets = n
	r.mu.Unlock()
}

// labelLimit resolves the effective cap for a new vec. It is called from
// lookup's create funcs, which already hold r.mu, so it must not lock.
func (r *Registry) labelLimit() int {
	switch n := r.maxLabelSets; {
	case n == 0:
		return DefaultMaxLabelSets
	case n < 0:
		return 0 // unlimited
	default:
		return n
	}
}

// Help attaches a help string to a metric name; WritePrometheus emits it
// as the metric's # HELP line.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	if r.help == nil {
		r.help = make(map[string]string)
	}
	r.help[name] = text
	r.mu.Unlock()
}

// helpFor returns the registered help string ("" when none).
func (r *Registry) helpFor(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}

func lookup[T any](r *Registry, name string, create func() T) T {
	r.mu.RLock()
	got, ok := r.named[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if got, ok = r.named[name]; !ok {
			got = create()
			r.named[name] = got
			r.order = append(r.order, name)
		}
		r.mu.Unlock()
	}
	t, ok := got.(T)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, got))
	}
	return t
}

// Counter returns the counter with the given name, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	return lookup(r, name, func() *Counter { return &Counter{} })
}

// Gauge returns the gauge with the given name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	return lookup(r, name, func() *Gauge { return &Gauge{} })
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket upper bounds if needed (the bounds of an existing
// histogram are kept).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return lookup(r, name, func() *Histogram { return newHistogram(bounds) })
}

// CounterVec returns the labeled counter family with the given name.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	return lookup(r, name, func() *CounterVec {
		return &CounterVec{name: name, labels: labels, limit: r.labelLimit(), kids: make(map[string]*Counter)}
	})
}

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name string, labels ...string) *GaugeVec {
	return lookup(r, name, func() *GaugeVec {
		return &GaugeVec{name: name, labels: labels, limit: r.labelLimit(), kids: make(map[string]*Gauge)}
	})
}

// HistogramVec returns the labeled histogram family with the given name.
func (r *Registry) HistogramVec(name string, bounds []float64, labels ...string) *HistogramVec {
	return lookup(r, name, func() *HistogramVec {
		return &HistogramVec{name: name, labels: labels, bounds: bounds, limit: r.labelLimit(), kids: make(map[string]*Histogram)}
	})
}

// Reset zeroes every metric in place (registrations and label children are
// kept, so held metric pointers stay valid).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.named {
		switch m := m.(type) {
		case *Counter:
			m.reset()
		case *Gauge:
			m.reset()
		case *Histogram:
			m.reset()
		case *CounterVec:
			m.mu.RLock()
			for _, c := range m.kids {
				c.reset()
			}
			m.mu.RUnlock()
		case *GaugeVec:
			m.mu.RLock()
			for _, g := range m.kids {
				g.reset()
			}
			m.mu.RUnlock()
		case *HistogramVec:
			m.mu.RLock()
			for _, h := range m.kids {
				h.reset()
			}
			m.mu.RUnlock()
		}
	}
}
