package obs

import "strings"

// LabelPair is one label name/value pair of a labeled metric.
type LabelPair struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// MetricSnapshot is the frozen state of one metric (or one child of a
// labeled family) at snapshot time.
type MetricSnapshot struct {
	Name   string      `json:"name"`
	Type   string      `json:"type"` // "counter", "gauge" or "histogram"
	Labels []LabelPair `json:"labels,omitempty"`

	// Value carries the counter count or the gauge level.
	Value float64 `json:"value"`

	// Histogram-only fields.
	Count   int64     `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every metric in a registry, ordered
// by registration then label-creation order (deterministic across runs).
type Snapshot struct {
	Metrics []MetricSnapshot `json:"metrics"`
}

func pairs(labels []string, key string) []LabelPair {
	values := strings.Split(key, "\x1f")
	out := make([]LabelPair, 0, len(labels))
	for i, l := range labels {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		out = append(out, LabelPair{Name: l, Value: v})
	}
	return out
}

func histSnap(name string, labels []LabelPair, h *Histogram) MetricSnapshot {
	return MetricSnapshot{
		Name:    name,
		Type:    "histogram",
		Labels:  labels,
		Count:   h.Count(),
		Sum:     h.Sum(),
		Bounds:  h.Bounds(),
		Buckets: h.BucketCounts(),
	}
}

// Snapshot freezes the current state of every metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var snap Snapshot
	for _, name := range r.order {
		switch m := r.named[name].(type) {
		case *Counter:
			snap.Metrics = append(snap.Metrics, MetricSnapshot{Name: name, Type: "counter", Value: float64(m.Value())})
		case *Gauge:
			snap.Metrics = append(snap.Metrics, MetricSnapshot{Name: name, Type: "gauge", Value: m.Value()})
		case *Histogram:
			snap.Metrics = append(snap.Metrics, histSnap(name, nil, m))
		case *CounterVec:
			m.mu.RLock()
			for _, k := range m.keys {
				snap.Metrics = append(snap.Metrics, MetricSnapshot{
					Name: name, Type: "counter", Labels: pairs(m.labels, k),
					Value: float64(m.kids[k].Value()),
				})
			}
			m.mu.RUnlock()
		case *GaugeVec:
			m.mu.RLock()
			for _, k := range m.keys {
				snap.Metrics = append(snap.Metrics, MetricSnapshot{
					Name: name, Type: "gauge", Labels: pairs(m.labels, k),
					Value: m.kids[k].Value(),
				})
			}
			m.mu.RUnlock()
		case *HistogramVec:
			m.mu.RLock()
			for _, k := range m.keys {
				snap.Metrics = append(snap.Metrics, histSnap(name, pairs(m.labels, k), m.kids[k]))
			}
			m.mu.RUnlock()
		}
	}
	return snap
}
