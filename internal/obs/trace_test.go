package obs

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step per reading, so span durations are
// deterministic.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestTraceNesting(t *testing.T) {
	tr, root := NewTrace("request")
	if tr.ID() == "" {
		t.Fatal("trace has empty ID")
	}
	root.Annotate("route", "estimate")
	child := root.StartChild("simulate")
	grand := child.StartChild("sim")
	grand.Annotate("events", "42")
	grand.End()
	child.End()
	root.End()

	tt := tr.Tree()
	if tt.TraceID != tr.ID() {
		t.Fatalf("tree trace ID = %q, want %q", tt.TraceID, tr.ID())
	}
	if tt.Spans != 3 {
		t.Fatalf("tree spans = %d, want 3", tt.Spans)
	}
	if tt.Root.Name != "request" || tt.Root.Attrs["route"] != "estimate" {
		t.Fatalf("bad root: %+v", tt.Root)
	}
	if len(tt.Root.Children) != 1 || tt.Root.Children[0].Name != "simulate" {
		t.Fatalf("bad children: %+v", tt.Root.Children)
	}
	g := tt.Root.Children[0].Children[0]
	if g.Name != "sim" || g.Attrs["events"] != "42" {
		t.Fatalf("bad grandchild: %+v", g)
	}
	if tt.Root.Unfinished || g.Unfinished {
		t.Fatal("ended spans marked unfinished")
	}
}

func TestTraceNilNoOp(t *testing.T) {
	// Every operation on a nil span (and nil trace) must be a silent no-op:
	// instrumented code never checks whether tracing is on.
	var s *TraceSpan
	s.Annotate("k", "v")
	s.End()
	if c := s.StartChild("x"); c != nil {
		t.Fatalf("nil.StartChild = %v, want nil", c)
	}
	if s.Trace() != nil {
		t.Fatal("nil span has a trace")
	}
	var tr *Trace
	if tr.ID() != "" || tr.Root() != nil {
		t.Fatal("nil trace not inert")
	}
	if tt := tr.Tree(); tt.Root != nil || tt.TraceID != "" {
		t.Fatalf("nil trace tree = %+v", tt)
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	ctx := context.Background()
	got, span := StartSpan(ctx, "stage")
	if span != nil {
		t.Fatalf("span = %v, want nil", span)
	}
	if got != ctx {
		t.Fatal("context was derived despite no trace")
	}
	// And nil contexts don't panic either.
	if s := SpanFromContext(nil); s != nil {
		t.Fatalf("SpanFromContext(nil) = %v", s)
	}
}

func TestStartSpanPropagation(t *testing.T) {
	tr, root := NewTrace("request")
	ctx := ContextWithSpan(context.Background(), root)
	ctx, s1 := StartSpan(ctx, "outer")
	_, s2 := StartSpan(ctx, "inner")
	s2.End()
	s1.End()
	root.End()
	tt := tr.Tree()
	if tt.Spans != 3 {
		t.Fatalf("spans = %d, want 3", tt.Spans)
	}
	if tt.Root.Children[0].Name != "outer" || tt.Root.Children[0].Children[0].Name != "inner" {
		t.Fatalf("wrong nesting: %+v", tt.Root)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr, root := NewTrace("request")
	for i := 0; i < defaultMaxSpans+10; i++ {
		c := root.StartChild("child")
		c.End()
	}
	tt := tr.Tree()
	if tt.Spans != defaultMaxSpans {
		t.Fatalf("spans = %d, want cap %d", tt.Spans, defaultMaxSpans)
	}
	// root + 11 dropped: 10 over the cap plus the one that hit it.
	if tt.DroppedSpans != 11 {
		t.Fatalf("dropped = %d, want 11", tt.DroppedSpans)
	}
}

func TestTraceTreeMidRecording(t *testing.T) {
	tr, root := newTrace("request", fakeClock(time.Millisecond))
	c := root.StartChild("open")
	tt := tr.Tree()
	if !tt.Root.Unfinished || !tt.Root.Children[0].Unfinished {
		t.Fatalf("open spans not marked unfinished: %+v", tt.Root)
	}
	if tt.Root.Children[0].Seconds <= 0 {
		t.Fatal("open span has no duration so far")
	}
	c.End()
	root.End()
	if tt := tr.Tree(); tt.Root.Unfinished {
		t.Fatal("ended root still unfinished")
	}
}

func TestTraceConcurrentChildren(t *testing.T) {
	// Parallel runner workers start children of the same parent and
	// annotate concurrently; run with -race to verify the locking.
	tr, root := NewTrace("request")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := root.StartChild("job")
				c.Annotate("job", strconv.Itoa(w*50+i))
				g := c.StartChild("sim")
				g.End()
				c.End()
				if i%10 == 0 {
					_ = tr.Tree() // snapshots race against recording
				}
			}
		}(w)
	}
	wg.Wait()
	root.End()
	tt := tr.Tree()
	if want := 1 + 8*50*2; tt.Spans != want {
		t.Fatalf("spans = %d, want %d", tt.Spans, want)
	}
}

func TestTraceRingEviction(t *testing.T) {
	ring := NewTraceRing(3)
	var ids []string
	for i := 0; i < 5; i++ {
		tr, root := NewTrace(fmt.Sprintf("t%d", i))
		root.End()
		ring.Add(tr)
		ids = append(ids, tr.ID())
	}
	if ring.Len() != 3 {
		t.Fatalf("len = %d, want 3", ring.Len())
	}
	// FIFO: the two oldest are gone, the three newest retained.
	for _, id := range ids[:2] {
		if _, ok := ring.Get(id); ok {
			t.Fatalf("trace %s should have been evicted", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := ring.Get(id); !ok {
			t.Fatalf("trace %s missing", id)
		}
	}
	// Recent returns newest first.
	recent := ring.Recent(2)
	if len(recent) != 2 || recent[0].ID() != ids[4] || recent[1].ID() != ids[3] {
		t.Fatalf("Recent(2) wrong order: %v", recent)
	}
	// Nil safety.
	var nilRing *TraceRing
	nilRing.Add(nil)
	if _, ok := nilRing.Get("x"); ok || nilRing.Len() != 0 || nilRing.Recent(1) != nil {
		t.Fatal("nil ring not inert")
	}
}
