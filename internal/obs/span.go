package obs

import (
	"sync"
	"time"
)

// Span is one completed wall-clock interval of the pipeline: a named
// stage (e.g. "check", "compile", "simulate") with its start time and
// duration. Spans answer "where does the time go inside an estimate?".
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	// Seconds duplicates Duration in float seconds so exported JSON is
	// readable without knowing Go's nanosecond Duration encoding.
	Seconds float64 `json:"seconds"`
}

// SpanRecorder collects spans. It is safe for concurrent use, and a nil
// *SpanRecorder is a valid no-op recorder — callers can instrument
// unconditionally:
//
//	done := rec.Start("compile") // rec may be nil
//	...
//	done()
type SpanRecorder struct {
	mu    sync.Mutex
	spans []Span
	clock func() time.Time // test seam; nil means time.Now
}

// NewSpanRecorder creates an empty recorder.
func NewSpanRecorder() *SpanRecorder { return &SpanRecorder{} }

func (r *SpanRecorder) now() time.Time {
	if r.clock != nil {
		return r.clock()
	}
	return time.Now()
}

// Start begins a span and returns the function that ends it. A nil
// recorder returns a no-op.
func (r *SpanRecorder) Start(name string) func() {
	if r == nil {
		return func() {}
	}
	start := r.now()
	return func() { r.Record(name, start, r.now().Sub(start)) }
}

// Time runs fn inside a span. A nil recorder just runs fn.
func (r *SpanRecorder) Time(name string, fn func()) {
	done := r.Start(name)
	defer done()
	fn()
}

// Record appends a completed span directly.
func (r *SpanRecorder) Record(name string, start time.Time, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, Span{Name: name, Start: start, Duration: d, Seconds: d.Seconds()})
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order. Safe on
// a nil recorder (returns nil).
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Reset drops all recorded spans.
func (r *SpanRecorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.mu.Unlock()
}

// Total returns the summed duration of every span with the given name
// ("" sums all spans).
func (r *SpanRecorder) Total(name string) time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var total time.Duration
	for _, s := range r.spans {
		if name == "" || s.Name == name {
			total += s.Duration
		}
	}
	return total
}
