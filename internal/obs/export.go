package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteJSON writes the snapshot as indented JSON.
func WriteJSON(w io.Writer, snap Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// formatValue renders numbers with the shortest round-tripping decimal,
// so 42 stays "42" and 0.1 stays "0.1".
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatLabels renders labels as `k="v"` pairs joined by commas, or ""
// when the metric is unlabeled.
func formatLabels(labels []LabelPair) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Name, l.Value)
	}
	return strings.Join(parts, ",")
}

// WriteCSV writes the snapshot as CSV with one row per scalar value:
//
//	type,name,labels,field,value
//
// Counters and gauges contribute one "value" row; histograms contribute
// "count", "sum" and one "bucket_le_<bound>" row per bucket.
func WriteCSV(w io.Writer, snap Snapshot) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"type", "name", "labels", "field", "value"}); err != nil {
		return err
	}
	for _, m := range snap.Metrics {
		labels := formatLabels(m.Labels)
		switch m.Type {
		case "histogram":
			rows := [][2]string{
				{"count", strconv.FormatInt(m.Count, 10)},
				{"sum", formatValue(m.Sum)},
			}
			for i, c := range m.Buckets {
				le := "+Inf"
				if i < len(m.Bounds) {
					le = formatValue(m.Bounds[i])
				}
				rows = append(rows, [2]string{"bucket_le_" + le, strconv.FormatInt(c, 10)})
			}
			for _, row := range rows {
				if err := cw.Write([]string{m.Type, m.Name, labels, row[0], row[1]}); err != nil {
					return err
				}
			}
		default:
			if err := cw.Write([]string{m.Type, m.Name, labels, "value", formatValue(m.Value)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per metric family (plus
// `# HELP` when Registry.Help registered one), `name{labels} value`
// samples, and histograms expanded into cumulative `_bucket{le="..."}`
// series (the final `le="+Inf"` bucket included) with `_sum` and
// `_count`. This is what prophetd serves on GET /metrics.
func WritePrometheus(w io.Writer, reg *Registry) error {
	snap := reg.Snapshot()
	var last string
	for _, m := range snap.Metrics {
		if m.Name != last {
			last = m.Name
			if help := reg.helpFor(m.Name); help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.Name, help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Type); err != nil {
				return err
			}
		}
		if err := writeTextMetric(w, m); err != nil {
			return err
		}
	}
	return nil
}

// WriteText writes the snapshot in an expvar/Prometheus-style plain-text
// form: one `name{labels} value` line per scalar, with histograms
// expanded into cumulative `_bucket{le="..."}` lines plus `_sum` and
// `_count`.
func WriteText(w io.Writer, snap Snapshot) error {
	for _, m := range snap.Metrics {
		if err := writeTextMetric(w, m); err != nil {
			return err
		}
	}
	return nil
}

// writeTextMetric writes one metric's sample lines (shared by WriteText
// and WritePrometheus — the sample syntax is identical, the Prometheus
// form just adds family headers).
func writeTextMetric(w io.Writer, m MetricSnapshot) error {
	line := func(name, labels string, value string) error {
		if labels != "" {
			_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
			return err
		}
		_, err := fmt.Fprintf(w, "%s %s\n", name, value)
		return err
	}
	joinLabels := func(base string, extra ...string) string {
		parts := append([]string{}, extra...)
		if base != "" {
			parts = append([]string{base}, extra...)
		}
		return strings.Join(parts, ",")
	}
	labels := formatLabels(m.Labels)
	switch m.Type {
	case "histogram":
		cum := int64(0)
		for i, c := range m.Buckets {
			cum += c
			le := "+Inf"
			if i < len(m.Bounds) {
				le = formatValue(m.Bounds[i])
			}
			ls := joinLabels(labels, fmt.Sprintf("le=%q", le))
			if err := line(m.Name+"_bucket", ls, strconv.FormatInt(cum, 10)); err != nil {
				return err
			}
		}
		if err := line(m.Name+"_sum", labels, formatValue(m.Sum)); err != nil {
			return err
		}
		return line(m.Name+"_count", labels, strconv.FormatInt(m.Count, 10))
	default:
		v := m.Value
		if math.IsNaN(v) {
			v = 0
		}
		return line(m.Name, labels, formatValue(v))
	}
}
