package obs

import "sync"

// TraceRing keeps the most recent completed traces in bounded memory so
// a trace can be fetched shortly after its request finished
// (GET /v1/traces/{id}) without the server ever growing without bound.
// When full, adding a trace evicts the oldest one (FIFO by insertion).
type TraceRing struct {
	mu   sync.Mutex
	cap  int
	byID map[string]*Trace
	ids  []string // insertion order; ids[0] is evicted next
}

// NewTraceRing creates a ring retaining at most n traces (n <= 0 means
// the default of 256).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 256
	}
	return &TraceRing{cap: n, byID: make(map[string]*Trace, n)}
}

// Add inserts a trace, evicting the oldest when the ring is full.
// Re-adding a trace already in the ring refreshes nothing (first
// insertion order is kept). Nil traces are ignored.
func (r *TraceRing) Add(t *Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	id := t.ID()
	if _, ok := r.byID[id]; ok {
		return
	}
	r.byID[id] = t
	r.ids = append(r.ids, id)
	for len(r.ids) > r.cap {
		delete(r.byID, r.ids[0])
		r.ids = r.ids[1:]
	}
}

// Get returns the trace with the given id, if it is still retained.
func (r *TraceRing) Get(id string) (*Trace, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byID[id]
	return t, ok
}

// Len returns the number of retained traces.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ids)
}

// Recent returns up to n retained traces, newest first (n <= 0 means
// all).
func (r *TraceRing) Recent(n int) []*Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > len(r.ids) {
		n = len(r.ids)
	}
	out := make([]*Trace, 0, n)
	for i := len(r.ids) - 1; i >= 0 && len(out) < n; i-- {
		out = append(out, r.byID[r.ids[i]])
	}
	return out
}
