package obs

import (
	"fmt"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("runs_total").Add(3)
	reg.Help("runs_total", "Total runs.")
	reg.GaugeVec("util", "node").With("0").Set(0.5)
	h := reg.HistogramVec("lat_seconds", []float64{0.1, 1}, "route")
	h.With("estimate").Observe(0.05)
	h.With("estimate").Observe(2)

	var b strings.Builder
	if err := WritePrometheus(&b, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP runs_total Total runs.",
		"# TYPE runs_total counter",
		"runs_total 3",
		"# TYPE util gauge",
		`util{node="0"} 0.5`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{route="estimate",le="0.1"} 1`,
		`lat_seconds_bucket{route="estimate",le="1"} 1`,
		`lat_seconds_bucket{route="estimate",le="+Inf"} 2`,
		`lat_seconds_sum{route="estimate"} 2.05`,
		`lat_seconds_count{route="estimate"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// TYPE headers appear exactly once per family.
	if n := strings.Count(out, "# TYPE lat_seconds "); n != 1 {
		t.Errorf("lat_seconds TYPE header appears %d times", n)
	}
}

func TestLabelCardinalityCap(t *testing.T) {
	reg := NewRegistry()
	reg.SetMaxLabelSets(3)
	vec := reg.CounterVec("reqs_total", "path")
	for i := 0; i < 10; i++ {
		vec.With(fmt.Sprintf("/p/%d", i)).Inc()
	}
	// The first 3 distinct label sets got their own series; the remaining
	// 7 folded into one overflow series labeled OverflowLabel.
	over := vec.With(OverflowLabel) // same child the fold-in used
	if got := over.Value(); got != 7 {
		t.Fatalf("overflow series = %d, want 7", got)
	}
	snap := reg.Snapshot()
	var series int
	var sum int64
	for _, m := range snap.Metrics {
		if m.Name != "reqs_total" {
			continue
		}
		series++
		sum += int64(m.Value)
	}
	// 3 real + 1 overflow; no observation was lost.
	if series != 4 || sum != 10 {
		t.Fatalf("series = %d (want 4), sum = %d (want 10)", series, sum)
	}
}

func TestLabelCapUnlimited(t *testing.T) {
	reg := NewRegistry()
	reg.SetMaxLabelSets(-1)
	vec := reg.CounterVec("c", "k")
	for i := 0; i < DefaultMaxLabelSets+5; i++ {
		vec.With(fmt.Sprintf("v%d", i)).Inc()
	}
	if got := vec.With(OverflowLabel).Value(); got != 0 {
		t.Fatalf("overflow series used despite unlimited cap: %d", got)
	}
}

func TestLabelCapDefaultApplied(t *testing.T) {
	reg := NewRegistry()
	vec := reg.HistogramVec("h", []float64{1}, "k")
	for i := 0; i < DefaultMaxLabelSets+10; i++ {
		vec.With(fmt.Sprintf("v%d", i)).Observe(0.5)
	}
	if got := vec.With(OverflowLabel).Count(); got != 10 {
		t.Fatalf("overflow histogram count = %d, want 10", got)
	}
}
