package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("sim_events_total").Add(42)
	r.Gauge("event_queue_depth").Set(3)
	r.Histogram("queue_length", []float64{1, 4, 16}).Observe(2)
	r.Histogram("queue_length", nil).Observe(5)
	r.CounterVec("facility_services", "facility").With("cpu.node0").Add(7)
	return r
}

const goldenJSON = `{
  "metrics": [
    {
      "name": "sim_events_total",
      "type": "counter",
      "value": 42
    },
    {
      "name": "event_queue_depth",
      "type": "gauge",
      "value": 3
    },
    {
      "name": "queue_length",
      "type": "histogram",
      "value": 0,
      "count": 2,
      "sum": 7,
      "bounds": [
        1,
        4,
        16
      ],
      "buckets": [
        0,
        1,
        1,
        0
      ]
    },
    {
      "name": "facility_services",
      "type": "counter",
      "labels": [
        {
          "name": "facility",
          "value": "cpu.node0"
        }
      ],
      "value": 7
    }
  ]
}
`

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != goldenJSON {
		t.Errorf("JSON mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), goldenJSON)
	}
	// And it must round-trip.
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(snap.Metrics) != 4 {
		t.Errorf("round-trip lost metrics: %+v", snap.Metrics)
	}
}

const goldenCSV = `type,name,labels,field,value
counter,sim_events_total,,value,42
gauge,event_queue_depth,,value,3
histogram,queue_length,,count,2
histogram,queue_length,,sum,7
histogram,queue_length,,bucket_le_1,0
histogram,queue_length,,bucket_le_4,1
histogram,queue_length,,bucket_le_16,1
histogram,queue_length,,bucket_le_+Inf,0
counter,facility_services,"facility=""cpu.node0""",value,7
`

func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != goldenCSV {
		t.Errorf("CSV mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), goldenCSV)
	}
}

const goldenText = `sim_events_total 42
event_queue_depth 3
queue_length_bucket{le="1"} 0
queue_length_bucket{le="4"} 1
queue_length_bucket{le="16"} 2
queue_length_bucket{le="+Inf"} 2
queue_length_sum 7
queue_length_count 2
facility_services{facility="cpu.node0"} 7
`

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, goldenRegistry().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if buf.String() != goldenText {
		t.Errorf("text mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), goldenText)
	}
}

func TestTextHistogramBucketsAreCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)
	var buf bytes.Buffer
	if err := WriteText(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	want := []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="2"} 2`,
		`h_bucket{le="+Inf"} 3`,
		`h_sum 11`,
		`h_count 3`,
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}
