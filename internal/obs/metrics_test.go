package obs

import (
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("events") != c {
		t.Error("same name should return the same counter")
	}
	r.Reset()
	if got := c.Value(); got != 0 {
		t.Errorf("after reset counter = %d, want 0", got)
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	tests := []struct {
		value  float64
		bucket int // index expected to receive the observation
	}{
		{0, 0},      // below first bound
		{1, 0},      // exactly on a bound lands in that bucket (inclusive upper)
		{1.0001, 1}, // just above a bound spills into the next
		{10, 1},
		{99.999, 2},
		{100, 2},
		{100.5, 3}, // above the last bound: +Inf bucket
	}
	for _, tt := range tests {
		before := h.BucketCounts()
		h.Observe(tt.value)
		after := h.BucketCounts()
		for i := range after {
			wantDelta := int64(0)
			if i == tt.bucket {
				wantDelta = 1
			}
			if after[i]-before[i] != wantDelta {
				t.Errorf("observe(%v): bucket %d delta = %d, want %d", tt.value, i, after[i]-before[i], wantDelta)
			}
		}
	}
	if h.Count() != int64(len(tests)) {
		t.Errorf("count = %d, want %d", h.Count(), len(tests))
	}
	wantSum := 0.0
	for _, tt := range tests {
		wantSum += tt.value
	}
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", []float64{100, 1, 10})
	got := h.Bounds()
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", got, want)
		}
	}
}

func TestConcurrentCounterIncrements(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("shared").Inc()
				r.CounterVec("byKind", "kind").With("a").Inc()
				r.Histogram("h", []float64{0.5}).Observe(1)
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("shared = %d, want %d", got, workers*perWorker)
	}
	if got := r.CounterVec("byKind", "kind").With("a").Value(); got != workers*perWorker {
		t.Errorf("byKind = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Errorf("gauge = %v, want %d", got, workers*perWorker)
	}
}

func TestLabeledVariants(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("calls", "facility")
	cv.With("cpu.node0").Add(2)
	cv.With("cpu.node1").Inc()
	gv := r.GaugeVec("util", "facility")
	gv.With("cpu.node0").Set(0.75)
	hv := r.HistogramVec("queue", []float64{1, 4}, "facility")
	hv.With("cpu.node0").Observe(2)

	snap := r.Snapshot()
	if len(snap.Metrics) != 4 {
		t.Fatalf("snapshot has %d metrics, want 4: %+v", len(snap.Metrics), snap.Metrics)
	}
	first := snap.Metrics[0]
	if first.Name != "calls" || first.Labels[0].Value != "cpu.node0" || first.Value != 2 {
		t.Errorf("first metric wrong: %+v", first)
	}
}

func TestMistypedMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestSpanRecorder(t *testing.T) {
	r := NewSpanRecorder()
	base := time.Unix(1000, 0)
	tick := 0
	r.clock = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * 10 * time.Millisecond)
	}
	done := r.Start("compile")
	done()
	r.Time("simulate", func() {})
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "compile" || spans[0].Duration != 10*time.Millisecond {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[0].Seconds != 0.01 {
		t.Errorf("seconds = %v, want 0.01", spans[0].Seconds)
	}
	if got := r.Total(""); got != 20*time.Millisecond {
		t.Errorf("total = %v, want 20ms", got)
	}
	if got := r.Total("simulate"); got != 10*time.Millisecond {
		t.Errorf("total(simulate) = %v, want 10ms", got)
	}
	r.Reset()
	if len(r.Spans()) != 0 {
		t.Error("reset should drop spans")
	}
}

func TestNilSpanRecorderIsSafe(t *testing.T) {
	var r *SpanRecorder
	r.Start("x")()
	r.Time("y", func() {})
	r.Record("z", time.Time{}, time.Second)
	r.Reset()
	if r.Spans() != nil || r.Total("") != 0 {
		t.Error("nil recorder should report nothing")
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewSpanRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Start("s")()
			}
		}()
	}
	wg.Wait()
	if got := len(r.Spans()); got != 800 {
		t.Errorf("got %d spans, want 800", got)
	}
}

func TestResetPreservesLabelChildren(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("v", "k").With("a")
	c.Inc()
	r.Reset()
	if c.Value() != 0 {
		t.Error("child not reset")
	}
	if r.CounterVec("v", "k").With("a") != c {
		t.Error("reset must keep label children identity")
	}
	var found bool
	for _, m := range r.Snapshot().Metrics {
		if m.Name == "v" {
			found = true
		}
	}
	if !found {
		t.Error("reset must keep registrations visible in snapshots")
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity should panic")
		}
	}()
	r := NewRegistry()
	r.CounterVec("v", "a", "b").With("only-one")
}

func TestSnapshotIsStable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Inc()
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if len(s1.Metrics) != 2 || s1.Metrics[0].Name != "b" || s2.Metrics[0].Name != "b" {
		t.Errorf("snapshots must preserve registration order: %+v", s1.Metrics)
	}
}
