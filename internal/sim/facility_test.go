package sim

import (
	"fmt"
	"math"
	"testing"
)

func TestFacilitySingleServerSerializes(t *testing.T) {
	e := New()
	f := e.NewFacility("cpu", 1)
	var finish []float64
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			f.Use(p, 10)
			finish = append(finish, p.Now())
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 30 {
		t.Errorf("3 jobs of 10 on 1 server should end at 30, got %v", end)
	}
	want := []float64{10, 20, 30}
	for i, w := range want {
		if finish[i] != w {
			t.Errorf("finish[%d] = %v, want %v", i, finish[i], w)
		}
	}
	if f.CompletedServices() != 3 {
		t.Errorf("services = %d", f.CompletedServices())
	}
	if u := f.Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Errorf("utilization = %v, want 1.0", u)
	}
}

func TestFacilityMultiServerParallel(t *testing.T) {
	e := New()
	f := e.NewFacility("cpus", 2)
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			f.Use(p, 10)
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 20 {
		t.Errorf("4 jobs of 10 on 2 servers should end at 20, got %v", end)
	}
}

func TestFacilityFCFSOrder(t *testing.T) {
	e := New()
	f := e.NewFacility("cpu", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			p.Hold(float64(i)) // arrive in index order
			f.Use(p, 100)
			order = append(order, i)
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("service order not FCFS: %v", order)
		}
	}
}

func TestFacilityUtilizationPartial(t *testing.T) {
	e := New()
	f := e.NewFacility("cpu", 1)
	e.Spawn("worker", func(p *Process) {
		f.Use(p, 5)
		p.Hold(5) // idle the facility
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 10 {
		t.Fatalf("end = %v", end)
	}
	if u := f.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestFacilityQueueLengthAndMeanQueueTime(t *testing.T) {
	e := New()
	f := e.NewFacility("cpu", 1)
	probe := 0
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			f.Use(p, 10)
		})
	}
	e.At(5, func() { probe = f.QueueLength() })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if probe != 2 {
		t.Errorf("queue length at t=5 = %d, want 2", probe)
	}
	// Waiters queued 10 and 20 time units; mean over 3 services = 10.
	if mq := f.MeanQueueTime(); math.Abs(mq-10) > 1e-9 {
		t.Errorf("mean queue time = %v, want 10", mq)
	}
}

func TestFacilityReleaseUnderflowPanics(t *testing.T) {
	e := New()
	f := e.NewFacility("cpu", 1)
	e.Spawn("bad", func(p *Process) {
		f.Release(p)
	})
	if _, err := e.Run(); err == nil {
		t.Fatal("release without acquire should fail the run")
	}
}

func TestNewFacilityValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("0 servers should panic")
		}
	}()
	New().NewFacility("bad", 0)
}

func TestFacilityHandoffKeepsServerBusy(t *testing.T) {
	// A released server granted to a waiter must not be double-counted.
	e := New()
	f := e.NewFacility("cpu", 1)
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			f.Use(p, 10)
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := f.Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Errorf("back-to-back handoff utilization = %v, want 1.0", u)
	}
}
