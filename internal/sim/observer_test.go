package sim

import (
	"testing"
)

// collectObserver retains everything it is handed, unfiltered.
type collectObserver struct {
	events  []string
	samples []Sample
}

func (c *collectObserver) Event(t float64, p *Process, what string) {
	c.events = append(c.events, what)
}
func (c *collectObserver) Sample(s Sample) { c.samples = append(c.samples, s) }

func TestObserverSamplesFacilityTelemetry(t *testing.T) {
	e := New()
	cpu := e.NewFacility("cpu", 1)
	mbox := e.NewMailbox("mbox")
	obs := &collectObserver{}
	e.SetObserver(obs, 0)

	for i := 0; i < 3; i++ {
		e.Spawn("worker", func(p *Process) {
			cpu.Use(p, 1)
		})
	}
	e.Spawn("sender", func(p *Process) {
		p.Hold(0.5)
		mbox.Send("hello")
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 3 {
		t.Fatalf("makespan = %v, want 3", end)
	}
	if len(obs.samples) == 0 {
		t.Fatal("no samples recorded")
	}
	var sawQueue, sawMail bool
	prev := -1.0
	for _, s := range obs.samples {
		if s.Time < prev {
			t.Errorf("sample times must be nondecreasing: %v after %v", s.Time, prev)
		}
		prev = s.Time
		if u := s.FacilityUtilization["cpu"]; u < 0 || u > 1 {
			t.Errorf("utilization out of range: %v", u)
		}
		if s.FacilityQueue["cpu"] > 0 {
			sawQueue = true
		}
		if s.MailboxDepth["mbox"] > 0 {
			sawMail = true
		}
	}
	if !sawQueue {
		t.Error("three jobs on one server should show a nonzero queue in some sample")
	}
	if !sawMail {
		t.Error("undelivered message should show a nonzero mailbox depth in some sample")
	}
	last := obs.samples[len(obs.samples)-1]
	if last.Time != end {
		t.Errorf("final sample at %v, want %v", last.Time, end)
	}
	if last.LiveProcesses != 0 || last.EventQueueLen != 0 {
		t.Errorf("final sample should see an idle engine: %+v", last)
	}
	if u := last.FacilityUtilization["cpu"]; u != 1 {
		t.Errorf("cpu was saturated the whole run, utilization = %v", u)
	}
}

func TestObserverAutoModeSamplesOncePerTimestamp(t *testing.T) {
	e := New()
	obs := &collectObserver{}
	e.SetObserver(obs, 0)
	// Three callbacks at the same instant, then one later.
	for i := 0; i < 3; i++ {
		e.At(1, func() {})
	}
	e.At(2, func() {})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	counts := map[float64]int{}
	for _, s := range obs.samples {
		counts[s.Time]++
	}
	if counts[1] != 1 {
		t.Errorf("auto mode sampled t=1 %d times, want 1", counts[1])
	}
	if counts[2] != 1 {
		t.Errorf("auto mode sampled t=2 %d times, want 1", counts[2])
	}
}

func TestObserverSamplingInterval(t *testing.T) {
	e := New()
	obs := &collectObserver{}
	e.SetObserver(obs, 2.5)
	e.Spawn("clock", func(p *Process) {
		for i := 0; i < 10; i++ {
			p.Hold(1)
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Threshold crossings at 0, 2.5, 5, 7.5, 10 → samples at 0, 3, 5, 8, 10.
	want := []float64{0, 3, 5, 8, 10}
	if len(obs.samples) != len(want) {
		t.Fatalf("got %d samples %+v, want times %v", len(obs.samples), obs.samples, want)
	}
	for i, s := range obs.samples {
		if s.Time != want[i] {
			t.Errorf("sample %d at t=%v, want %v", i, s.Time, want[i])
		}
	}
}

func TestSetTracerDelegatesToObserverPath(t *testing.T) {
	e := New()
	var events []string
	e.SetTracer(func(tm float64, p *Process, what string) {
		events = append(events, what)
	})
	if e.Observer() == nil {
		t.Fatal("SetTracer should install an adapter observer")
	}
	e.Spawn("p", func(p *Process) { p.Hold(1) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("tracer callback saw no events")
	}
	e.SetTracer(nil)
	if e.Observer() != nil {
		t.Error("SetTracer(nil) should remove the adapter")
	}
}

func TestSetTracerNilKeepsForeignObserver(t *testing.T) {
	e := New()
	obs := &collectObserver{}
	e.SetObserver(obs, 0)
	e.SetTracer(nil)
	if e.Observer() != obs {
		t.Error("SetTracer(nil) must not remove an observer it did not install")
	}
}

func TestRecorderDecimation(t *testing.T) {
	r := NewRecorder(16)
	const n = 10000
	for i := 0; i < n; i++ {
		r.Sample(Sample{Time: float64(i)})
	}
	got := r.Samples()
	if len(got) > 17 { // capacity + possibly the trailing live sample
		t.Errorf("decimation failed: %d samples retained", len(got))
	}
	prev := -1.0
	for _, s := range got {
		if s.Time <= prev {
			t.Errorf("retained series out of order: %v after %v", s.Time, prev)
		}
		prev = s.Time
	}
	if got[0].Time != 0 {
		t.Errorf("first sample dropped: %v", got[0].Time)
	}
	if got[len(got)-1].Time != n-1 {
		t.Errorf("latest sample must survive decimation, got %v", got[len(got)-1].Time)
	}
}

func TestRecorderEventCountsAndReset(t *testing.T) {
	e := New()
	r := NewRecorder(0)
	e.SetObserver(r, 0)
	e.Spawn("p", func(p *Process) { p.Hold(1) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	counts := r.EventCounts()
	for _, kind := range []string{"spawn", "run", "hold", "done"} {
		if counts[kind] == 0 {
			t.Errorf("event kind %q not counted: %v", kind, counts)
		}
	}
	r.Reset()
	if len(r.Samples()) != 0 || len(r.EventCounts()) != 0 {
		t.Error("reset should clear recorder state")
	}
}

func TestEngineIntrospection(t *testing.T) {
	e := New()
	e.At(5, func() {})
	e.Spawn("p", func(p *Process) {})
	if got := e.EventQueueLen(); got != 2 {
		t.Errorf("EventQueueLen = %d, want 2 (callback + spawn wake)", got)
	}
	if got := e.LiveProcesses(); got != 1 {
		t.Errorf("LiveProcesses = %d, want 1", got)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := e.LiveProcesses(); got != 0 {
		t.Errorf("after run LiveProcesses = %d, want 0", got)
	}
}
