package sim

import "fmt"

// Barrier synchronizes a fixed-size group of processes: each participant
// blocks in Wait until all parties have arrived, then all resume at the
// same simulated time. It is cyclic: after releasing a generation it
// resets for the next one. The estimator uses it for mpi_barrier and for
// the implicit join of parallel regions.
type Barrier struct {
	eng     *Engine
	name    string
	parties int
	arrived int
	waiting []*Process
	cycles  int
}

// NewBarrier creates a barrier for the given number of parties
// (parties >= 1).
func (e *Engine) NewBarrier(name string, parties int) *Barrier {
	if parties < 1 {
		panic(fmt.Sprintf("sim: barrier %q needs at least 1 party", name))
	}
	return &Barrier{eng: e, name: name, parties: parties}
}

// Name returns the barrier name.
func (b *Barrier) Name() string { return b.name }

// Wait blocks until all parties have arrived.
func (b *Barrier) Wait(p *Process) {
	b.arrived++
	if b.arrived < b.parties {
		b.waiting = append(b.waiting, p)
		p.block()
		return
	}
	// Last arriver releases the generation.
	for _, w := range b.waiting {
		w.unblock()
	}
	b.waiting = b.waiting[:0]
	b.arrived = 0
	b.cycles++
}

// Cycles returns the number of completed barrier generations.
func (b *Barrier) Cycles() int { return b.cycles }

// Event is a CSIM-style state event: processes wait until it is set.
// Setting wakes every waiter; the event stays set (new waiters pass
// through) until Reset.
type Event struct {
	eng     *Engine
	name    string
	set     bool
	waiting []*Process
}

// NewEvent creates an unset event.
func (e *Engine) NewEvent(name string) *Event {
	return &Event{eng: e, name: name}
}

// Name returns the event name.
func (ev *Event) Name() string { return ev.name }

// IsSet reports whether the event is currently set.
func (ev *Event) IsSet() bool { return ev.set }

// Wait blocks the process until the event is set.
func (ev *Event) Wait(p *Process) {
	if ev.set {
		return
	}
	ev.waiting = append(ev.waiting, p)
	p.block()
}

// Set marks the event and wakes every waiter. Safe to call from scheduler
// callbacks.
func (ev *Event) Set() {
	if ev.set {
		return
	}
	ev.set = true
	for _, w := range ev.waiting {
		w.unblock()
	}
	ev.waiting = ev.waiting[:0]
}

// Reset clears the event so future waiters block again.
func (ev *Event) Reset() { ev.set = false }

// Counter is a countdown latch: Wait blocks until Done has been called n
// times. Used to implement joins over dynamically spawned workers.
type Counter struct {
	eng     *Engine
	name    string
	n       int
	waiting []*Process
}

// NewCounter creates a countdown latch expecting n Done calls.
func (e *Engine) NewCounter(name string, n int) *Counter {
	return &Counter{eng: e, name: name, n: n}
}

// Done decrements the counter, waking waiters when it reaches zero.
func (c *Counter) Done() {
	c.n--
	if c.n <= 0 {
		for _, w := range c.waiting {
			w.unblock()
		}
		c.waiting = c.waiting[:0]
	}
}

// Wait blocks until the counter has reached zero.
func (c *Counter) Wait(p *Process) {
	if c.n <= 0 {
		return
	}
	c.waiting = append(c.waiting, p)
	p.block()
}
