// Package sim is a process-oriented discrete-event simulation engine: the
// stand-in for the commercial CSIM engine at the bottom of the paper's
// Figure 2 architecture ("CSIM Simulation Engine").
//
// The feature set mirrors what the Performance Estimator needs from CSIM:
//
//   - processes: independent threads of simulated control (Spawn), which
//     advance simulated time by holding (Process.Hold)
//   - facilities: servers with FCFS queueing and utilization statistics
//     (Facility), modeling processors and interconnect links
//   - mailboxes: typed FIFO message channels with blocking receive
//     (Mailbox), modeling point-to-point communication
//   - barriers and events for collective synchronization
//
// Processes are backed by goroutines, but exactly one goroutine — either
// the scheduler or a single process — runs at any instant; control is
// handed over explicitly through channels. Together with a deterministic
// (time, sequence)-ordered event queue this makes every simulation run
// bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Engine is one simulation instance. The zero value is not usable; call
// New.
type Engine struct {
	now    float64
	events eventQueue
	seq    uint64
	// executed counts events dispatched by Run/RunUntil — the engine's
	// unit of work, reported by EventsExecuted for request telemetry.
	executed int64

	yield chan struct{} // processes hand control back on this channel
	alive []*Process
	done  int // processes in alive that have reached stateDone
	err   error

	// interrupted carries an external stop request (Interrupt). It is the
	// only engine field touched from outside the scheduler goroutine, so
	// it is atomic; the scheduler loop checks it between events.
	interrupted atomic.Pointer[interruptCause]

	// free is the event free-list: events popped from the queue are
	// recycled through schedule instead of being reallocated, so a
	// steady-state simulation schedules with zero allocations.
	free *event

	// obs, when non-nil, receives lifecycle events and telemetry samples
	// (see Observer in observer.go).
	obs         Observer
	sampleEvery float64 // sampling interval in simulated time; 0 = every time change
	nextSample  float64 // next simulated time at which to sample
	lastSampled float64 // time of the last emitted sample (-1: none yet)

	// registries of resources created on this engine, for telemetry.
	facilities   []*Facility
	psFacilities []*PSFacility
	mailboxes    []*Mailbox
}

// New creates an empty simulation. The event queue and process table are
// preallocated so short-lived engines (parameter sweeps create one per
// run) don't grow them from zero.
func New() *Engine {
	return &Engine{
		yield:       make(chan struct{}),
		lastSampled: -1,
		events:      make(eventQueue, 0, 128),
		alive:       make([]*Process, 0, 16),
	}
}

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// EventsExecuted returns how many events Run/RunUntil have dispatched so
// far — a cheap proxy for how much simulation work a run cost. Read it
// after the run returns (the scheduler goroutine owns the counter).
func (e *Engine) EventsExecuted() int64 { return e.executed }

// SetTracer installs a callback observing process lifecycle transitions
// ("spawn", "run", "hold", "block", "done"). Pass nil to remove it.
//
// Deprecated: SetTracer predates the Observer interface and survives as a
// thin adapter over it — the callback is wrapped into an Observer whose
// Sample method is a no-op, so installing a tracer replaces any observer
// set via SetObserver (and vice versa). New code should implement
// Observer and call SetObserver, which additionally delivers telemetry
// samples (facility utilization, queue lengths, event-queue depth).
func (e *Engine) SetTracer(f func(t float64, p *Process, what string)) {
	if f == nil {
		if _, ok := e.obs.(tracerAdapter); ok {
			e.obs = nil
		}
		return
	}
	e.SetObserver(tracerAdapter{fn: f}, 0)
}

func (e *Engine) trace(p *Process, what string) {
	if e.obs != nil {
		e.obs.Event(e.now, p, what)
	}
}

// event is a scheduled occurrence: resume a process or run a callback.
type event struct {
	time float64
	seq  uint64
	p    *Process
	fn   func()
	next *event // free-list link; nil while the event is queued
}

// eventQueue is a binary min-heap ordered by (time, seq): ties resolve in
// schedule order, which keeps runs deterministic.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// schedule enqueues an event at absolute time t, reusing a recycled
// event when one is available.
func (e *Engine) schedule(t float64, p *Process, fn func()) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	ev := e.free
	if ev != nil {
		e.free = ev.next
		ev.time, ev.seq, ev.p, ev.fn, ev.next = t, e.seq, p, fn, nil
	} else {
		ev = &event{time: t, seq: e.seq, p: p, fn: fn}
	}
	heap.Push(&e.events, ev)
}

// release returns a popped event to the free-list. The event must no
// longer be referenced by the queue.
func (e *Engine) release(ev *event) {
	ev.p, ev.fn = nil, nil
	ev.next = e.free
	e.free = ev
}

// At schedules fn to run at absolute simulated time t (>= now). The
// callback runs in scheduler context: it must not block, but it may spawn
// processes and signal synchronization objects.
func (e *Engine) At(t float64, fn func()) { e.schedule(t, nil, fn) }

// After schedules fn to run dt time units from now.
func (e *Engine) After(dt float64, fn func()) { e.At(e.now+dt, fn) }

// Spawn creates a process executing fn. The process starts at the current
// simulated time, after the caller yields control back to the scheduler.
func (e *Engine) Spawn(name string, fn func(*Process)) *Process {
	p := &Process{
		eng:   e,
		name:  name,
		wake:  make(chan struct{}),
		state: stateReady,
	}
	e.alive = append(e.alive, p)
	e.trace(p, "spawn")
	go func() {
		<-p.wake // first dispatch
		defer func() {
			if r := recover(); r != nil {
				if r == errPoisoned {
					// Shutdown path: swallow and hand control back.
					p.state = stateDone
					e.yield <- struct{}{}
					return
				}
				if e.err == nil {
					if f, ok := r.(failure); ok {
						// A cooperative abort via Process.Fail: keep the
						// error chain intact so callers can errors.Is/As
						// through it.
						e.err = &ProcessError{Process: p.name, Err: f.err}
					} else {
						e.err = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
					}
				}
			}
			p.state = stateDone
			e.trace(p, "done")
			e.yield <- struct{}{}
		}()
		if p.poisoned {
			panic(errPoisoned)
		}
		p.state = stateRunning
		fn(p)
	}()
	e.schedule(e.now, p, nil)
	return p
}

// Run executes the simulation until no events remain or an error occurs.
// It returns the final simulated time. A simulation that ends with
// processes still blocked on a facility, mailbox, barrier or event reports
// a DeadlockError.
func (e *Engine) Run() (float64, error) {
	defer e.shutdown()
	for len(e.events) > 0 {
		if c := e.interrupted.Load(); c != nil {
			return e.now, &InterruptError{Time: e.now, Cause: c.err}
		}
		ev := heap.Pop(&e.events).(*event)
		e.executed++
		e.now = ev.time
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.p != nil:
			if ev.p.state == stateDone {
				break // stale wakeup for a finished process
			}
			e.dispatch(ev.p)
			if ev.p.state == stateDone {
				e.done++
			}
		}
		e.release(ev)
		if e.err != nil {
			return e.now, e.err
		}
		e.compactAlive()
		e.maybeSample()
	}
	e.finalSample()
	if blocked := e.blockedProcesses(); len(blocked) > 0 {
		return e.now, &DeadlockError{Time: e.now, Processes: blocked}
	}
	return e.now, nil
}

// RunUntil executes the simulation up to (and including) time limit.
// Remaining events stay queued. Like Run, it closes the telemetry series
// with a final sample, so a partial run keeps the tail of its series.
func (e *Engine) RunUntil(limit float64) (float64, error) {
	defer e.shutdown()
	for len(e.events) > 0 && e.events[0].time <= limit {
		if c := e.interrupted.Load(); c != nil {
			return e.now, &InterruptError{Time: e.now, Cause: c.err}
		}
		ev := heap.Pop(&e.events).(*event)
		e.executed++
		e.now = ev.time
		switch {
		case ev.fn != nil:
			ev.fn()
		case ev.p != nil:
			if ev.p.state == stateDone {
				break
			}
			e.dispatch(ev.p)
			if ev.p.state == stateDone {
				e.done++
			}
		}
		e.release(ev)
		if e.err != nil {
			return e.now, e.err
		}
		e.compactAlive()
		e.maybeSample()
	}
	e.finalSample()
	return e.now, nil
}

// dispatch hands control to a process and waits until it yields back.
func (e *Engine) dispatch(p *Process) {
	p.state = stateRunning
	e.trace(p, "run")
	p.wake <- struct{}{}
	<-e.yield
}

// compactAlive drops finished processes from the process table once they
// outnumber the live ones, filtering in place so the backing array is
// reused. Long runs that spawn transient processes (forks, parallel
// regions inside loops) would otherwise grow alive without bound and pay
// for it on every telemetry sample.
func (e *Engine) compactAlive() {
	if e.done <= 32 || e.done <= len(e.alive)/2 {
		return
	}
	live := e.alive[:0]
	for _, p := range e.alive {
		if p.state != stateDone {
			live = append(live, p)
		}
	}
	// Clear the tail so finished processes are collectable.
	for i := len(live); i < len(e.alive); i++ {
		e.alive[i] = nil
	}
	e.alive = live
	e.done = 0
}

// blockedProcesses returns the names of processes stuck on a
// synchronization object, sorted.
func (e *Engine) blockedProcesses() []string {
	var out []string
	for _, p := range e.alive {
		if p.state == stateBlocked {
			out = append(out, p.name)
		}
	}
	sort.Strings(out)
	return out
}

// shutdown unwinds every goroutine that is still parked so that Run never
// leaks OS resources, even after a deadlock or error.
func (e *Engine) shutdown() {
	for _, p := range e.alive {
		switch p.state {
		case stateBlocked, stateHolding, stateReady:
			p.poisoned = true
			p.wake <- struct{}{}
			<-e.yield
		}
	}
	e.alive = nil
	e.done = 0
}

// interruptCause boxes the Interrupt cause so it fits an atomic.Pointer.
type interruptCause struct{ err error }

// Interrupt requests that the running simulation stop: the scheduler
// checks between events, unwinds every parked process, and Run/RunUntil
// return an *InterruptError wrapping cause. Unlike every other Engine
// method, Interrupt is safe to call from any goroutine — it is how a
// caller plumbs context cancellation into a run without polling. Calling
// it on an engine that is not running makes the next Run return
// immediately; later calls keep the first cause.
func (e *Engine) Interrupt(cause error) {
	if cause == nil {
		cause = fmt.Errorf("sim: interrupted")
	}
	e.interrupted.CompareAndSwap(nil, &interruptCause{err: cause})
}

// InterruptError reports a run stopped by Engine.Interrupt. It unwraps to
// the interrupt cause, so errors.Is(err, context.DeadlineExceeded) and
// friends see through it.
type InterruptError struct {
	Time  float64
	Cause error
}

func (e *InterruptError) Error() string {
	return fmt.Sprintf("sim: run interrupted at t=%g: %v", e.Time, e.Cause)
}

func (e *InterruptError) Unwrap() error { return e.Cause }

// ProcessError reports a simulation process that aborted the run through
// Process.Fail: the typed alternative to panicking with an error, which
// would flatten the chain into a string. It unwraps to the process's
// error, so callers can errors.Is/As through a failed run (for example to
// distinguish an expression-evaluation failure from a DeadlockError).
type ProcessError struct {
	Process string
	Err     error
}

func (p *ProcessError) Error() string {
	return fmt.Sprintf("sim: process %q failed: %v", p.Process, p.Err)
}

func (p *ProcessError) Unwrap() error { return p.Err }

// DeadlockError reports a simulation that ended with blocked processes.
type DeadlockError struct {
	Time      float64
	Processes []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%g: blocked processes: %s",
		d.Time, strings.Join(d.Processes, ", "))
}
