package sim

import (
	"math"
	"testing"
)

// TestMM1AgainstAnalytics validates the engine against closed-form
// queueing theory: an M/M/1 queue with arrival rate lambda and service
// rate mu has
//
//	utilization      rho = lambda/mu
//	mean time in system W = 1/(mu-lambda)
//
// A discrete-event engine that gets FCFS queueing, clock advance or
// event ordering wrong cannot reproduce these numbers, so this is the
// engine's end-to-end correctness certificate.
func TestMM1AgainstAnalytics(t *testing.T) {
	const (
		lambda  = 0.5
		mu      = 1.0
		jobs    = 60000
		warmup  = 5000
		seedArr = 11
		seedSvc = 23
	)
	e := New()
	f := e.NewFacility("server", 1)
	arrivals := NewStream(seedArr)
	services := NewStream(seedSvc)

	var totalTime float64
	var measured int

	// Open arrival process: spawn one job process per arrival.
	var spawnArrivals func()
	jobIndex := 0
	spawnArrivals = func() {
		if jobIndex >= jobs {
			return
		}
		idx := jobIndex
		jobIndex++
		e.Spawn("job", func(p *Process) {
			start := p.Now()
			f.Use(p, services.Exponential(1/mu))
			if idx >= warmup {
				totalTime += p.Now() - start
				measured++
			}
		})
		e.After(arrivals.Exponential(1/lambda), spawnArrivals)
	}
	e.After(arrivals.Exponential(1/lambda), spawnArrivals)

	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}

	gotW := totalTime / float64(measured)
	wantW := 1 / (mu - lambda)
	if rel := math.Abs(gotW-wantW) / wantW; rel > 0.1 {
		t.Errorf("M/M/1 mean time in system = %.4f, analytic %.4f (rel err %.1f%%)",
			gotW, wantW, rel*100)
	}
	gotRho := f.Utilization()
	if math.Abs(gotRho-lambda/mu) > 0.03 {
		t.Errorf("utilization = %.4f, want ~%.2f", gotRho, lambda/mu)
	}
}

// TestMM2Utilization spot-checks the multi-server facility: an M/M/2
// queue with offered load rho = lambda/(2 mu) has per-server utilization
// rho.
func TestMM2Utilization(t *testing.T) {
	const (
		lambda = 1.2
		mu     = 1.0
		jobs   = 40000
	)
	e := New()
	f := e.NewFacility("servers", 2)
	arrivals := NewStream(5)
	services := NewStream(7)

	jobIndex := 0
	var spawnArrivals func()
	spawnArrivals = func() {
		if jobIndex >= jobs {
			return
		}
		jobIndex++
		e.Spawn("job", func(p *Process) {
			f.Use(p, services.Exponential(1/mu))
		})
		e.After(arrivals.Exponential(1/lambda), spawnArrivals)
	}
	e.After(arrivals.Exponential(1/lambda), spawnArrivals)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := lambda / (2 * mu)
	if got := f.Utilization(); math.Abs(got-want) > 0.03 {
		t.Errorf("per-server utilization = %.4f, want ~%.2f", got, want)
	}
}

// TestLittlesLawPS validates the processor-sharing facility with Little's
// law: in an M/G/1-PS queue the mean number in system depends only on
// rho: L = rho/(1-rho), and by Little's law W = L/lambda.
// PS is insensitive to the service distribution, so this must hold even
// with deterministic service times.
func TestLittlesLawPS(t *testing.T) {
	const (
		lambda = 0.5
		mu     = 1.0 // deterministic service of 1/mu
		jobs   = 40000
		warmup = 4000
	)
	e := New()
	f := e.NewPSFacility("cpu", 1)
	arrivals := NewStream(3)

	var totalTime float64
	var measured int
	jobIndex := 0
	var spawnArrivals func()
	spawnArrivals = func() {
		if jobIndex >= jobs {
			return
		}
		idx := jobIndex
		jobIndex++
		e.Spawn("job", func(p *Process) {
			start := p.Now()
			f.Use(p, 1/mu)
			if idx >= warmup {
				totalTime += p.Now() - start
				measured++
			}
		})
		e.After(arrivals.Exponential(1/lambda), spawnArrivals)
	}
	e.After(arrivals.Exponential(1/lambda), spawnArrivals)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	rho := lambda / mu
	wantW := (rho / (1 - rho)) / lambda // Little: W = L / lambda = 2
	gotW := totalTime / float64(measured)
	if rel := math.Abs(gotW-wantW) / wantW; rel > 0.1 {
		t.Errorf("M/D/1-PS mean time in system = %.4f, analytic %.4f (rel err %.1f%%)",
			gotW, wantW, rel*100)
	}
}
