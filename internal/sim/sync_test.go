package sim

import (
	"fmt"
	"testing"
)

func TestMailboxBufferedDelivery(t *testing.T) {
	e := New()
	mb := e.NewMailbox("mb")
	var got []interface{}
	e.Spawn("sender", func(p *Process) {
		mb.Send(1)
		mb.Send(2)
		p.Hold(5)
		mb.Send(3)
	})
	e.Spawn("receiver", func(p *Process) {
		p.Hold(1)
		got = append(got, mb.Receive(p)) // buffered
		got = append(got, mb.Receive(p)) // buffered
		got = append(got, mb.Receive(p)) // blocks until t=5
		if p.Now() != 5 {
			t.Errorf("third receive should complete at t=5, got %v", p.Now())
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("messages = %v", got)
	}
}

func TestMailboxFIFOReceivers(t *testing.T) {
	e := New()
	mb := e.NewMailbox("mb")
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			p.Hold(float64(i)) // become a waiter in index order
			mb.Receive(p)
			order = append(order, i)
		})
	}
	e.Spawn("sender", func(p *Process) {
		p.Hold(10)
		for i := 0; i < 3; i++ {
			mb.Send(i)
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("receivers not served FIFO: %v", order)
		}
	}
}

func TestMailboxTryReceive(t *testing.T) {
	e := New()
	mb := e.NewMailbox("mb")
	if _, ok := mb.TryReceive(); ok {
		t.Error("empty TryReceive should fail")
	}
	mb.Send("x")
	if mb.Pending() != 1 {
		t.Errorf("pending = %d", mb.Pending())
	}
	msg, ok := mb.TryReceive()
	if !ok || msg != "x" {
		t.Errorf("TryReceive = %v, %v", msg, ok)
	}
	if mb.Pending() != 0 {
		t.Errorf("pending after receive = %d", mb.Pending())
	}
}

func TestMailboxSendFromCallback(t *testing.T) {
	e := New()
	mb := e.NewMailbox("mb")
	var at float64
	e.Spawn("receiver", func(p *Process) {
		mb.Receive(p)
		at = p.Now()
	})
	e.At(7, func() { mb.Send("wake") })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7 {
		t.Errorf("receive completed at %v, want 7", at)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	e := New()
	b := e.NewBarrier("bar", 3)
	var release []float64
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			p.Hold(float64(i * 10)) // arrive at 0, 10, 20
			b.Wait(p)
			release = append(release, p.Now())
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range release {
		if r != 20 {
			t.Errorf("release times = %v, want all 20", release)
		}
	}
	if b.Cycles() != 1 {
		t.Errorf("cycles = %d", b.Cycles())
	}
}

func TestBarrierIsCyclic(t *testing.T) {
	e := New()
	b := e.NewBarrier("bar", 2)
	rounds := 3
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			for r := 0; r < rounds; r++ {
				p.Hold(float64(i + 1))
				b.Wait(p)
			}
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Cycles() != rounds {
		t.Errorf("cycles = %d, want %d", b.Cycles(), rounds)
	}
}

func TestBarrierValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("0 parties should panic")
		}
	}()
	New().NewBarrier("bad", 0)
}

func TestEventSetWakesAll(t *testing.T) {
	e := New()
	ev := e.NewEvent("go")
	woke := 0
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			ev.Wait(p)
			woke++
			if p.Now() != 3 {
				t.Errorf("woke at %v, want 3", p.Now())
			}
		})
	}
	e.At(3, ev.Set)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 4 {
		t.Errorf("woke = %d, want 4", woke)
	}
}

func TestEventSetIsSticky(t *testing.T) {
	e := New()
	ev := e.NewEvent("go")
	passed := false
	e.Spawn("late", func(p *Process) {
		p.Hold(10)
		ev.Wait(p) // already set: pass through without blocking
		passed = true
		if p.Now() != 10 {
			t.Errorf("late waiter delayed: %v", p.Now())
		}
	})
	e.At(1, ev.Set)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !passed {
		t.Error("late waiter never passed")
	}
	if !ev.IsSet() {
		t.Error("event should remain set")
	}
	ev.Reset()
	if ev.IsSet() {
		t.Error("reset should clear")
	}
}

func TestEventDoubleSetHarmless(t *testing.T) {
	e := New()
	ev := e.NewEvent("go")
	ev.Set()
	ev.Set()
	if !ev.IsSet() {
		t.Error("double set broke the event")
	}
}

func TestCounterJoin(t *testing.T) {
	e := New()
	c := e.NewCounter("join", 3)
	var joined float64
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			p.Hold(float64((i + 1) * 5)) // finish at 5, 10, 15
			c.Done()
		})
	}
	e.Spawn("main", func(p *Process) {
		c.Wait(p)
		joined = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if joined != 15 {
		t.Errorf("join completed at %v, want 15", joined)
	}
}

func TestCounterAlreadyDone(t *testing.T) {
	e := New()
	c := e.NewCounter("join", 0)
	ok := false
	e.Spawn("main", func(p *Process) {
		c.Wait(p) // passes immediately
		ok = true
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("zero counter should not block")
	}
}
