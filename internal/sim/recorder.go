package sim

// Recorder is a ready-made Observer that accumulates telemetry samples in
// bounded memory and counts lifecycle events by kind. When the sample
// buffer fills it decimates: every other retained sample is dropped and
// only every 2nd (then 4th, 8th, ...) subsequent sample is kept, so
// arbitrarily long simulations keep an evenly thinned series instead of
// growing without bound. The most recent sample is always reported by
// Samples, so the end-of-run state is never lost to decimation.
type Recorder struct {
	maxSamples  int
	stride      int // keep every stride-th offered sample
	offered     int
	samples     []Sample
	last        Sample
	hasLast     bool
	eventCounts map[string]int64
}

// NewRecorder creates a recorder retaining at most maxSamples points
// (default 2048 when maxSamples <= 0).
func NewRecorder(maxSamples int) *Recorder {
	if maxSamples <= 0 {
		maxSamples = 2048
	}
	if maxSamples < 2 {
		maxSamples = 2
	}
	return &Recorder{
		maxSamples:  maxSamples,
		stride:      1,
		eventCounts: make(map[string]int64),
	}
}

// Event counts one lifecycle transition.
func (r *Recorder) Event(t float64, p *Process, what string) {
	r.eventCounts[what]++
}

// Sample retains the sample subject to the decimation policy.
func (r *Recorder) Sample(s Sample) {
	r.last, r.hasLast = s, true
	keep := r.offered%r.stride == 0
	r.offered++
	if !keep {
		return
	}
	if len(r.samples) >= r.maxSamples {
		kept := r.samples[:0]
		for i, smp := range r.samples {
			if i%2 == 0 {
				kept = append(kept, smp)
			}
		}
		r.samples = kept
		r.stride *= 2
	}
	r.samples = append(r.samples, s)
}

// Samples returns the retained series in time order, always including the
// most recent sample.
func (r *Recorder) Samples() []Sample {
	out := append([]Sample(nil), r.samples...)
	if r.hasLast && (len(out) == 0 || out[len(out)-1].Time < r.last.Time) {
		out = append(out, r.last)
	}
	return out
}

// EventCounts returns a copy of the per-kind lifecycle event counts
// ("spawn", "run", "hold", "block", "done").
func (r *Recorder) EventCounts() map[string]int64 {
	out := make(map[string]int64, len(r.eventCounts))
	for k, v := range r.eventCounts {
		out[k] = v
	}
	return out
}

// Reset clears all recorded state, keeping the configured capacity.
func (r *Recorder) Reset() {
	r.samples = r.samples[:0]
	r.stride = 1
	r.offered = 0
	r.hasLast = false
	r.eventCounts = make(map[string]int64)
}
