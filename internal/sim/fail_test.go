package sim

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// A process aborting via Fail must surface as a typed *ProcessError that
// unwraps to the original error — errors.Is/As work through a failed run.
func TestProcessFailKeepsErrorChain(t *testing.T) {
	sentinel := errors.New("guard evaluation failed")
	e := New()
	e.Spawn("worker", func(p *Process) {
		p.Hold(1)
		p.Fail(errors.New("flow: " + sentinel.Error()))
	})
	e.Spawn("wrapped", func(p *Process) {
		p.Hold(2)
		p.Fail(sentinel)
	})
	_, err := e.Run()
	if err == nil {
		t.Fatal("failed process did not fail the run")
	}
	var pe *ProcessError
	if !errors.As(err, &pe) {
		t.Fatalf("want *ProcessError, got %T: %v", err, err)
	}
	if pe.Process != "worker" {
		t.Errorf("failure attributed to %q, want the first failing process", pe.Process)
	}
	if strings.Contains(err.Error(), "panicked") {
		t.Errorf("cooperative failure reported as a panic: %v", err)
	}
}

func TestProcessFailUnwraps(t *testing.T) {
	sentinel := errors.New("inner cause")
	e := New()
	e.Spawn("p", func(p *Process) { p.Fail(sentinel) })
	_, err := e.Run()
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is lost the cause through the run: %v", err)
	}
}

func TestProcessFailNilError(t *testing.T) {
	e := New()
	e.Spawn("p", func(p *Process) { p.Fail(nil) })
	_, err := e.Run()
	var pe *ProcessError
	if !errors.As(err, &pe) || pe.Err == nil {
		t.Fatalf("Fail(nil) should still produce a ProcessError with a non-nil cause, got %v", err)
	}
}

// True panics must keep being reported as panics, not typed failures.
func TestTruePanicStillReportedAsPanic(t *testing.T) {
	e := New()
	e.Spawn("p", func(p *Process) { panic("boom") })
	_, err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("true panic not reported as panic: %v", err)
	}
	var pe *ProcessError
	if errors.As(err, &pe) {
		t.Errorf("true panic must not masquerade as a ProcessError: %v", err)
	}
}

// Interrupt stops the run between events and the cause survives the
// unwrap chain.
func TestInterruptStopsRun(t *testing.T) {
	cause := context.DeadlineExceeded
	e := New()
	e.Spawn("busy", func(p *Process) {
		for i := 0; i < 1_000_000; i++ {
			p.Hold(1)
		}
	})
	e.At(10, func() { e.Interrupt(cause) })
	now, err := e.Run()
	var ie *InterruptError
	if !errors.As(err, &ie) {
		t.Fatalf("want *InterruptError, got %T: %v", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("interrupt cause lost: %v", err)
	}
	if now > 11 {
		t.Errorf("run kept going past the interrupt: t=%g", now)
	}
}

func TestInterruptBeforeRun(t *testing.T) {
	cause := errors.New("stop before start")
	e := New()
	ran := false
	e.Spawn("p", func(p *Process) { ran = true })
	e.Interrupt(cause)
	_, err := e.Run()
	if !errors.Is(err, cause) {
		t.Fatalf("pre-run interrupt ignored: %v", err)
	}
	if ran {
		t.Error("process ran despite pre-run interrupt")
	}
}

func TestInterruptKeepsFirstCause(t *testing.T) {
	first := errors.New("first")
	e := New()
	e.Spawn("p", func(p *Process) { p.Hold(1) })
	e.Interrupt(first)
	e.Interrupt(errors.New("second"))
	_, err := e.Run()
	if !errors.Is(err, first) {
		t.Fatalf("later Interrupt overwrote the first cause: %v", err)
	}
}

// RunUntil honors interrupts the same way Run does.
func TestInterruptStopsRunUntil(t *testing.T) {
	cause := errors.New("enough")
	e := New()
	e.Spawn("busy", func(p *Process) {
		for i := 0; i < 1000; i++ {
			p.Hold(1)
		}
	})
	e.At(5, func() { e.Interrupt(cause) })
	_, err := e.RunUntil(500)
	if !errors.Is(err, cause) {
		t.Fatalf("RunUntil ignored the interrupt: %v", err)
	}
}
