package sim

// Mailbox is a CSIM-style message queue: unbounded FIFO buffering with
// blocking receive. The estimator's point-to-point communication (mpi_send
// / mpi_recv) is built on mailboxes, one per receiving process.
type Mailbox struct {
	eng      *Engine
	name     string
	messages []interface{}
	waiting  []*Process
}

// NewMailbox creates an empty mailbox.
func (e *Engine) NewMailbox(name string) *Mailbox {
	m := &Mailbox{eng: e, name: name}
	e.mailboxes = append(e.mailboxes, m)
	return m
}

// Name returns the mailbox name.
func (m *Mailbox) Name() string { return m.name }

// Send deposits a message. If receivers are waiting, the longest-waiting
// one is handed the message and scheduled to resume at the current time.
// Send never blocks; it is safe to call from scheduler callbacks as well
// as from processes.
func (m *Mailbox) Send(msg interface{}) {
	if len(m.waiting) > 0 {
		p := m.waiting[0]
		m.waiting = m.waiting[1:]
		p.msg = msg
		p.unblock()
		return
	}
	m.messages = append(m.messages, msg)
}

// Receive returns the next message, blocking the process until one
// arrives.
func (m *Mailbox) Receive(p *Process) interface{} {
	if len(m.messages) > 0 {
		msg := m.messages[0]
		m.messages = m.messages[1:]
		return msg
	}
	m.waiting = append(m.waiting, p)
	p.block()
	msg := p.msg
	p.msg = nil
	return msg
}

// TryReceive returns the next message without blocking; ok is false when
// the mailbox is empty.
func (m *Mailbox) TryReceive() (msg interface{}, ok bool) {
	if len(m.messages) == 0 {
		return nil, false
	}
	msg = m.messages[0]
	m.messages = m.messages[1:]
	return msg, true
}

// Pending returns the number of buffered messages.
func (m *Mailbox) Pending() int { return len(m.messages) }
