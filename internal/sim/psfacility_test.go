package sim

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// timeAfter wraps time.After with seconds for readability in the
// livelock regression test.
func timeAfter(seconds int) <-chan time.Time {
	return time.After(time.Duration(seconds) * time.Second)
}

func TestPSFairSharing(t *testing.T) {
	// Two jobs of 10 on one shared server: both progress at rate 1/2 and
	// finish together at t=20 (FCFS would finish them at 10 and 20).
	e := New()
	f := e.NewPSFacility("cpu", 1)
	var finish []float64
	for i := 0; i < 2; i++ {
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			f.Use(p, 10)
			finish = append(finish, p.Now())
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 20 {
		t.Errorf("end = %v, want 20", end)
	}
	for _, ft := range finish {
		if math.Abs(ft-20) > 1e-9 {
			t.Errorf("finish times = %v, want both 20", finish)
		}
	}
	if f.CompletedServices() != 2 {
		t.Errorf("services = %d", f.CompletedServices())
	}
}

func TestPSVsFCFSCompletionPattern(t *testing.T) {
	runFCFS := func() []float64 {
		e := New()
		f := e.NewFacility("cpu", 1)
		var finish []float64
		for i := 0; i < 3; i++ {
			e.Spawn(fmt.Sprint(i), func(p *Process) {
				f.Use(p, 6)
				finish = append(finish, p.Now())
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return finish
	}
	runPS := func() []float64 {
		e := New()
		f := e.NewPSFacility("cpu", 1)
		var finish []float64
		for i := 0; i < 3; i++ {
			e.Spawn(fmt.Sprint(i), func(p *Process) {
				f.Use(p, 6)
				finish = append(finish, p.Now())
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return finish
	}
	fcfs, ps := runFCFS(), runPS()
	// Same total work, same last completion.
	if fcfs[2] != 18 || math.Abs(ps[2]-18) > 1e-9 {
		t.Errorf("last completions: fcfs %v, ps %v, want 18", fcfs[2], ps[2])
	}
	// FCFS staggered; PS simultaneous.
	if fcfs[0] != 6 || fcfs[1] != 12 {
		t.Errorf("fcfs completions = %v", fcfs)
	}
	if math.Abs(ps[0]-18) > 1e-9 || math.Abs(ps[1]-18) > 1e-9 {
		t.Errorf("ps completions = %v, want all 18", ps)
	}
}

func TestPSStaggeredArrivals(t *testing.T) {
	// Job A (work 10) starts at 0; job B (work 5) arrives at 5.
	// 0-5: A alone, rate 1, A has 5 left.
	// 5-15: both share, rate 1/2 each: A finishes its 5 at t=15; B
	// finishes its 5 at t=15 too.
	e := New()
	f := e.NewPSFacility("cpu", 1)
	var aEnd, bEnd float64
	e.Spawn("a", func(p *Process) {
		f.Use(p, 10)
		aEnd = p.Now()
	})
	e.Spawn("b", func(p *Process) {
		p.Hold(5)
		f.Use(p, 5)
		bEnd = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(aEnd-15) > 1e-9 || math.Abs(bEnd-15) > 1e-9 {
		t.Errorf("aEnd = %v, bEnd = %v, want both 15", aEnd, bEnd)
	}
}

func TestPSShortJobBenefits(t *testing.T) {
	// The key PS property: a short job arriving alongside a long one
	// finishes before the long one (no head-of-line blocking).
	e := New()
	f := e.NewPSFacility("cpu", 1)
	var shortEnd, longEnd float64
	e.Spawn("long", func(p *Process) {
		f.Use(p, 100)
		longEnd = p.Now()
	})
	e.Spawn("short", func(p *Process) {
		f.Use(p, 1)
		shortEnd = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if shortEnd >= longEnd {
		t.Errorf("short (%v) should finish before long (%v)", shortEnd, longEnd)
	}
	if math.Abs(shortEnd-2) > 1e-9 { // 1 unit of work at rate 1/2
		t.Errorf("shortEnd = %v, want 2", shortEnd)
	}
	if math.Abs(longEnd-101) > 1e-9 { // 2 + remaining 99 at rate 1
		t.Errorf("longEnd = %v, want 101", longEnd)
	}
}

func TestPSMultiServer(t *testing.T) {
	// 4 jobs of 10 on 2 servers: rate 1/2 each, all done at 20.
	e := New()
	f := e.NewPSFacility("cpu", 2)
	for i := 0; i < 4; i++ {
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			f.Use(p, 10)
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-20) > 1e-9 {
		t.Errorf("end = %v, want 20", end)
	}
	// Under-loaded: 1 job on 2 servers runs at rate 1 (a job cannot use
	// more than one server).
	e2 := New()
	f2 := e2.NewPSFacility("cpu", 2)
	e2.Spawn("solo", func(p *Process) { f2.Use(p, 10) })
	end2, err := e2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(end2-10) > 1e-9 {
		t.Errorf("solo end = %v, want 10", end2)
	}
}

func TestPSUtilization(t *testing.T) {
	e := New()
	f := e.NewPSFacility("cpu", 2)
	// One job of 10: only half the capacity is used while it runs.
	e.Spawn("solo", func(p *Process) { f.Use(p, 10) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := f.Utilization(); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestPSZeroWorkFree(t *testing.T) {
	e := New()
	f := e.NewPSFacility("cpu", 1)
	e.Spawn("p", func(p *Process) {
		f.Use(p, 0)
		f.Use(p, -1)
	})
	end, err := e.Run()
	if err != nil || end != 0 {
		t.Errorf("zero work should be free: %v, %v", end, err)
	}
}

func TestPSValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("0 servers should panic")
		}
	}()
	New().NewPSFacility("bad", 0)
}

// TestPSClockResolutionLivelock is the regression test for a livelock
// found by the M/M/1 validation: at large clock values, a job whose
// remaining work maps to a wakeup below the clock's float64 resolution
// would fire at the same timestamp forever (advance() saw dt == 0). The
// facility now pads the wakeup past the clock's ULP and treats
// sub-resolution work as complete.
func TestPSClockResolutionLivelock(t *testing.T) {
	e := New()
	f := e.NewPSFacility("cpu", 1)
	// Drive the clock to a large value, then run two sharing jobs whose
	// staggered start leaves one with a tiny remaining at the other's
	// completion — the float-drift scenario from the Poisson workload.
	e.Spawn("driver", func(p *Process) {
		p.Hold(1.2e4)
		e.Spawn("a", func(pa *Process) {
			f.Use(pa, 1.0/3.0)
		})
		p.Hold(1e-13) // below clock resolution at t=12000
		e.Spawn("b", func(pb *Process) {
			f.Use(pb, 1.0/3.0)
		})
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := e.Run(); err != nil {
			t.Errorf("run: %v", err)
		}
	}()
	select {
	case <-done:
	case <-timeAfter(10):
		t.Fatal("PS facility livelocked (clock-resolution regression)")
	}
	if f.CompletedServices() != 2 {
		t.Errorf("services = %d, want 2", f.CompletedServices())
	}
}

func TestPSActiveJobsProbe(t *testing.T) {
	e := New()
	f := e.NewPSFacility("cpu", 1)
	probe := -1
	for i := 0; i < 3; i++ {
		e.Spawn(fmt.Sprint(i), func(p *Process) { f.Use(p, 10) })
	}
	e.At(5, func() { probe = f.ActiveJobs() })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if probe != 3 {
		t.Errorf("active jobs at t=5 = %d, want 3", probe)
	}
}
