package sim

import "fmt"

// Facility is a CSIM-style service facility: a set of identical servers
// with a single FCFS queue. The Performance Estimator uses facilities to
// model contended resources — processors of a node, interconnect links,
// critical sections.
type Facility struct {
	eng     *Engine
	name    string
	servers int
	busy    int
	waiting []*Process

	// statistics
	busyIntegral float64 // sum over time of (busy servers) dt
	lastChange   float64
	services     int
	queueTimeSum float64
	enqueueTime  map[*Process]float64
}

// NewFacility creates a facility with the given number of servers
// (servers >= 1).
func (e *Engine) NewFacility(name string, servers int) *Facility {
	if servers < 1 {
		panic(fmt.Sprintf("sim: facility %q needs at least 1 server", name))
	}
	f := &Facility{
		eng:         e,
		name:        name,
		servers:     servers,
		enqueueTime: make(map[*Process]float64),
	}
	e.facilities = append(e.facilities, f)
	return f
}

// Name returns the facility name.
func (f *Facility) Name() string { return f.name }

// Servers returns the number of servers.
func (f *Facility) Servers() int { return f.servers }

// account integrates busy-server time up to now.
func (f *Facility) account() {
	now := f.eng.now
	f.busyIntegral += float64(f.busy) * (now - f.lastChange)
	f.lastChange = now
}

// Acquire takes one server, blocking FCFS while all servers are busy.
func (f *Facility) Acquire(p *Process) {
	if f.busy < f.servers && len(f.waiting) == 0 {
		f.account()
		f.busy++
		return
	}
	f.enqueueTime[p] = f.eng.now
	f.waiting = append(f.waiting, p)
	p.block()
	// Woken by Release: the releasing side already transferred the server
	// to us and recorded the queue time.
}

// Release returns one server and hands it to the longest-waiting process,
// if any.
func (f *Facility) Release(p *Process) {
	if f.busy == 0 {
		panic(fmt.Sprintf("sim: facility %q released more than acquired", f.name))
	}
	if len(f.waiting) > 0 {
		next := f.waiting[0]
		f.waiting = f.waiting[1:]
		f.queueTimeSum += f.eng.now - f.enqueueTime[next]
		delete(f.enqueueTime, next)
		// The server passes directly to next: busy count is unchanged.
		next.unblock()
		return
	}
	f.account()
	f.busy--
}

// Use models one complete service: acquire a server, hold for
// serviceTime, release.
func (f *Facility) Use(p *Process, serviceTime float64) {
	f.Acquire(p)
	p.Hold(serviceTime)
	f.Release(p)
	f.services++
}

// QueueLength returns the number of processes currently waiting.
func (f *Facility) QueueLength() int { return len(f.waiting) }

// Utilization returns the time-average fraction of busy servers over the
// interval [0, now].
func (f *Facility) Utilization() float64 {
	f.account()
	if f.eng.now == 0 {
		return 0
	}
	return f.busyIntegral / (f.eng.now * float64(f.servers))
}

// CompletedServices returns the number of Use calls that finished.
func (f *Facility) CompletedServices() int { return f.services }

// MeanQueueTime returns the average time completed waiters spent queued
// (0 when nothing ever queued).
func (f *Facility) MeanQueueTime() float64 {
	dequeued := f.services // approximation: services that had to queue are a subset
	if f.queueTimeSum == 0 || dequeued == 0 {
		return 0
	}
	return f.queueTimeSum / float64(dequeued)
}
