package sim

import (
	"testing"
)

// TestRunUntilEmitsFinalSample locks the satellite fix: a partial run
// must close its telemetry series with the end-of-run state, exactly
// like Run does, so the tail of the series is not lost.
func TestRunUntilEmitsFinalSample(t *testing.T) {
	e := New()
	obs := &collectObserver{}
	// A large interval means no periodic sample fires during the run:
	// every retained point must come from the final-sample path.
	e.SetObserver(obs, 100)
	e.Spawn("p", func(p *Process) {
		for i := 0; i < 10; i++ {
			p.Hold(1)
		}
	})
	if _, err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	if len(obs.samples) == 0 {
		t.Fatal("RunUntil emitted no final sample")
	}
	last := obs.samples[len(obs.samples)-1]
	if last.Time != 5 {
		t.Errorf("final sample at t=%v, want 5", last.Time)
	}
}

// TestRunUntilDoesNotDuplicateFinalSample: when the stop time was
// already sampled by the periodic path, the final sample is skipped.
func TestRunUntilDoesNotDuplicateFinalSample(t *testing.T) {
	e := New()
	obs := &collectObserver{}
	e.SetObserver(obs, 0) // auto mode: sample at every distinct time
	e.Spawn("p", func(p *Process) {
		for i := 0; i < 10; i++ {
			p.Hold(1)
		}
	})
	if _, err := e.RunUntil(5); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(obs.samples); i++ {
		if obs.samples[i].Time == obs.samples[i-1].Time {
			t.Errorf("duplicate sample at t=%v", obs.samples[i].Time)
		}
	}
}

// TestEventFreeListRecycles exercises schedule/release through a long
// hold chain and checks the queue still orders correctly — the free-list
// must be invisible to simulation semantics.
func TestEventFreeListRecycles(t *testing.T) {
	e := New()
	var order []float64
	for i := 0; i < 50; i++ {
		e.Spawn("p", func(p *Process) {
			for j := 0; j < 20; j++ {
				p.Hold(1)
			}
			order = append(order, p.Now())
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 20 {
		t.Errorf("end = %v, want 20", end)
	}
	if len(order) != 50 {
		t.Errorf("finished = %d, want 50", len(order))
	}
}

// TestAliveCompaction spawns far more transient processes than the
// compaction threshold and checks the table shrinks while live processes
// survive.
func TestAliveCompaction(t *testing.T) {
	e := New()
	e.Spawn("spawner", func(p *Process) {
		for i := 0; i < 500; i++ {
			e.Spawn("transient", func(q *Process) {
				q.Hold(0.5)
			})
			p.Hold(1)
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// After Run, shutdown clears alive entirely; the property under test
	// is mid-run table size, observed via a callback.
	e2 := New()
	var tableAtEnd int
	e2.Spawn("spawner", func(p *Process) {
		for i := 0; i < 500; i++ {
			e2.Spawn("transient", func(q *Process) {
				q.Hold(0.5)
			})
			p.Hold(1)
		}
		tableAtEnd = len(e2.alive)
	})
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if tableAtEnd > 100 {
		t.Errorf("alive table grew to %d entries despite compaction (want well under 100)", tableAtEnd)
	}
}

// BenchmarkEventScheduling measures the engine's event hot path — one
// process holding repeatedly, i.e. pure schedule/pop traffic. The event
// free-list should keep allocs/op near zero once the queue is warm.
func BenchmarkEventScheduling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		e.Spawn("p", func(p *Process) {
			for j := 0; j < 1000; j++ {
				p.Hold(1)
			}
		})
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEventSchedulingFanout stresses the queue with many concurrent
// processes so pops interleave across producers.
func BenchmarkEventSchedulingFanout(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for p := 0; p < 64; p++ {
			e.Spawn("p", func(pr *Process) {
				for j := 0; j < 100; j++ {
					pr.Hold(1)
				}
			})
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFacilityContention measures the facility queue path under
// contention: 8 processes sharing a 2-server facility.
func BenchmarkFacilityContention(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		f := e.NewFacility("cpu", 2)
		for p := 0; p < 8; p++ {
			e.Spawn("p", func(pr *Process) {
				for j := 0; j < 100; j++ {
					f.Use(pr, 1)
				}
			})
		}
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
