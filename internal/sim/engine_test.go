package sim

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestHoldAdvancesTime(t *testing.T) {
	e := New()
	var at float64
	e.Spawn("p", func(p *Process) {
		p.Hold(5)
		p.Hold(2.5)
		at = p.Now()
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if at != 7.5 || end != 7.5 {
		t.Errorf("time = %v / %v, want 7.5", at, end)
	}
}

func TestNegativeHoldClamped(t *testing.T) {
	e := New()
	e.Spawn("p", func(p *Process) { p.Hold(-3) })
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 0 {
		t.Errorf("negative hold should not move time backwards: %v", end)
	}
}

func TestProcessInterleaving(t *testing.T) {
	e := New()
	var order []string
	log := func(s string) { order = append(order, s) }
	e.Spawn("a", func(p *Process) {
		log("a0")
		p.Hold(10)
		log("a10")
	})
	e.Spawn("b", func(p *Process) {
		log("b0")
		p.Hold(5)
		log("b5")
		p.Hold(10)
		log("b15")
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a0", "b0", "b5", "a10", "b15"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	// Events at the same timestamp run in schedule order.
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			p.Hold(1)
			order = append(order, i)
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time ordering not FIFO: %v", order)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		e := New()
		var log []string
		s := NewStream(42)
		for i := 0; i < 5; i++ {
			i := i
			e.Spawn(fmt.Sprint(i), func(p *Process) {
				for j := 0; j < 3; j++ {
					p.Hold(s.Exponential(2))
					log = append(log, fmt.Sprintf("%d@%.9f", i, p.Now()))
				}
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if strings.Join(a, ";") != strings.Join(b, ";") {
		t.Error("two identical runs diverged")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	e := New()
	var childTime float64
	e.Spawn("parent", func(p *Process) {
		p.Hold(3)
		e.Spawn("child", func(c *Process) {
			c.Hold(4)
			childTime = c.Now()
		})
		p.Hold(1)
	})
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if childTime != 7 {
		t.Errorf("child finished at %v, want 7", childTime)
	}
	if end != 7 {
		t.Errorf("end = %v", end)
	}
}

func TestAtAndAfterCallbacks(t *testing.T) {
	e := New()
	var fired []float64
	e.At(5, func() { fired = append(fired, e.Now()) })
	e.Spawn("p", func(p *Process) {
		p.Hold(2)
		e.After(1, func() { fired = append(fired, e.Now()) })
		p.Hold(10)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 5 {
		t.Errorf("callbacks fired at %v, want [3 5]", fired)
	}
}

func TestPanicPropagates(t *testing.T) {
	e := New()
	e.Spawn("boom", func(p *Process) {
		p.Hold(1)
		panic("kaboom")
	})
	_, err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic should surface as error: %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := New()
	mb := e.NewMailbox("never")
	e.Spawn("waiter", func(p *Process) {
		mb.Receive(p) // nobody sends
	})
	_, err := e.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(dl.Processes) != 1 || dl.Processes[0] != "waiter" {
		t.Errorf("deadlock report wrong: %+v", dl)
	}
	if !strings.Contains(dl.Error(), "waiter") {
		t.Errorf("deadlock message should name the process")
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	steps := 0
	e.Spawn("p", func(p *Process) {
		for i := 0; i < 100; i++ {
			p.Hold(1)
			steps++
		}
	})
	end, err := e.RunUntil(10)
	if err != nil {
		t.Fatal(err)
	}
	if end != 10 || steps != 10 {
		t.Errorf("RunUntil stopped at %v after %d steps, want 10/10", end, steps)
	}
}

func TestRunWithNoEvents(t *testing.T) {
	e := New()
	end, err := e.Run()
	if err != nil || end != 0 {
		t.Errorf("empty run: %v, %v", end, err)
	}
}

func TestTracerObservesLifecycle(t *testing.T) {
	e := New()
	var events []string
	e.SetTracer(func(tm float64, p *Process, what string) {
		events = append(events, fmt.Sprintf("%s:%s", p.Name(), what))
	})
	e.Spawn("p", func(p *Process) { p.Hold(1) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(events, ",")
	for _, want := range []string{"p:spawn", "p:run", "p:hold", "p:done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("tracer missed %q: %v", want, events)
		}
	}
}

func TestYield(t *testing.T) {
	e := New()
	var order []string
	e.Spawn("a", func(p *Process) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Spawn("b", func(p *Process) {
		order = append(order, "b1")
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "a1,b1,a2"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("yield order = %s, want %s", got, want)
	}
}

func TestManyProcessesNoLeak(t *testing.T) {
	// Shutdown must unwind every parked goroutine, including ones that
	// never ran and ones left blocked after a deadlock.
	e := New()
	mb := e.NewMailbox("mb")
	for i := 0; i < 100; i++ {
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			mb.Receive(p)
		})
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("expected deadlock")
	}
	// The engine has been shut down; a fresh run on a new engine still
	// works (nothing global leaked or corrupted).
	e2 := New()
	e2.Spawn("ok", func(p *Process) { p.Hold(1) })
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestClockNeverMovesBackwards(t *testing.T) {
	e := New()
	last := -1.0
	s := NewStream(7)
	for i := 0; i < 20; i++ {
		e.Spawn(fmt.Sprint(i), func(p *Process) {
			for j := 0; j < 50; j++ {
				p.Hold(s.Uniform(0, 3))
				if p.Now() < last {
					t.Errorf("clock went backwards: %v after %v", p.Now(), last)
				}
				last = p.Now()
			}
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDistributions(t *testing.T) {
	s := NewStream(123)
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := s.Exponential(4)
		if v < 0 {
			t.Fatal("exponential produced negative value")
		}
		sum += v
	}
	mean := sum / float64(n)
	if math.Abs(mean-4) > 0.2 {
		t.Errorf("exponential mean = %v, want ~4", mean)
	}

	sum = 0
	for i := 0; i < n; i++ {
		v := s.Uniform(2, 6)
		if v < 2 || v >= 6 {
			t.Fatalf("uniform out of range: %v", v)
		}
		sum += v
	}
	mean = sum / float64(n)
	if math.Abs(mean-4) > 0.1 {
		t.Errorf("uniform mean = %v, want ~4", mean)
	}

	for i := 0; i < 1000; i++ {
		if s.Normal(1, 10) < 0 {
			t.Fatal("normal should be truncated at 0")
		}
	}
	if v := s.Intn(5); v < 0 || v >= 5 {
		t.Errorf("Intn out of range: %d", v)
	}
	if v := s.Float64(); v < 0 || v >= 1 {
		t.Errorf("Float64 out of range: %v", v)
	}
}

func TestStreamsReproducible(t *testing.T) {
	a, b := NewStream(9), NewStream(9)
	for i := 0; i < 100; i++ {
		if a.Exponential(1) != b.Exponential(1) {
			t.Fatal("equal seeds should yield equal streams")
		}
	}
}
