package sim_test

import (
	"fmt"

	"prophet/internal/sim"
)

// Example shows the CSIM-style process model: two processes contend for a
// single-server facility, so the second waits for the first.
func Example() {
	e := sim.New()
	cpu := e.NewFacility("cpu", 1)
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn(fmt.Sprintf("job%d", i), func(p *sim.Process) {
			cpu.Use(p, 10)
			fmt.Printf("job%d done at t=%v\n", i, p.Now())
		})
	}
	end, err := e.Run()
	if err != nil {
		panic(err)
	}
	fmt.Println("simulation ended at", end)
	// Output:
	// job0 done at t=10
	// job1 done at t=20
	// simulation ended at 20
}

// Example_messaging shows blocking point-to-point communication.
func Example_messaging() {
	e := sim.New()
	mb := e.NewMailbox("inbox")
	e.Spawn("producer", func(p *sim.Process) {
		p.Hold(5)
		mb.Send("result")
	})
	e.Spawn("consumer", func(p *sim.Process) {
		msg := mb.Receive(p) // blocks until t=5
		fmt.Printf("received %q at t=%v\n", msg, p.Now())
	})
	if _, err := e.Run(); err != nil {
		panic(err)
	}
	// Output: received "result" at t=5
}
