package sim

import (
	"math"
	"math/rand"
)

// Stream is a reproducible random-number stream for stochastic workload
// and machine models. Distinct streams (e.g. one per process) keep
// variance reduction intact when parameters change.
type Stream struct {
	rng *rand.Rand
}

// NewStream creates a stream from a seed. Equal seeds yield equal
// sequences.
func NewStream(seed int64) *Stream {
	return &Stream{rng: rand.New(rand.NewSource(seed))}
}

// Uniform returns a sample from U[a, b).
func (s *Stream) Uniform(a, b float64) float64 {
	return a + (b-a)*s.rng.Float64()
}

// Exponential returns a sample from Exp with the given mean.
func (s *Stream) Exponential(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// Normal returns a sample from N(mean, sd), truncated at zero (negative
// service times are meaningless).
func (s *Stream) Normal(mean, sd float64) float64 {
	v := mean + sd*s.rng.NormFloat64()
	return math.Max(0, v)
}

// Intn returns a uniform integer in [0, n).
func (s *Stream) Intn(n int) int { return s.rng.Intn(n) }

// Float64 returns a uniform sample in [0, 1).
func (s *Stream) Float64() float64 { return s.rng.Float64() }
