package sim

import "errors"

// errPoisoned unwinds parked process goroutines at engine shutdown.
var errPoisoned = errors.New("sim: engine shut down")

// procState tracks where a process is in its lifecycle.
type procState int

const (
	// stateReady: spawned, not yet dispatched for the first time.
	stateReady procState = iota
	// stateRunning: currently executing (at most one process at a time).
	stateRunning
	// stateHolding: waiting for a scheduled timer (Hold).
	stateHolding
	// stateBlocked: waiting on a facility, mailbox, barrier or event.
	stateBlocked
	// stateDone: finished.
	stateDone
)

// Process is one simulated thread of control. All methods must be called
// from within the process's own function; calling them from another
// goroutine corrupts the simulation.
type Process struct {
	eng      *Engine
	name     string
	wake     chan struct{}
	state    procState
	poisoned bool

	// msg carries a mailbox delivery to a woken receiver.
	msg interface{}
}

// failure carries an error raised by Process.Fail through the panic
// unwind, letting the engine distinguish a cooperative abort (wrapped as
// *ProcessError, chain preserved) from a true panic (reported as such).
type failure struct{ err error }

// Fail aborts the simulation with err: the run's Run/RunUntil call
// returns a *ProcessError that wraps err, keeping the error chain intact
// for errors.Is/As. Fail does not return. A nil err is replaced by a
// generic failure error.
func (p *Process) Fail(err error) {
	if err == nil {
		err = errors.New("sim: process failed")
	}
	panic(failure{err: err})
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Process) Now() float64 { return p.eng.now }

// pause yields control to the scheduler and parks until woken.
func (p *Process) pause() {
	p.eng.yield <- struct{}{}
	<-p.wake
	if p.poisoned {
		panic(errPoisoned)
	}
	p.state = stateRunning
}

// Hold advances the process's local time by dt: the process is suspended
// and resumes after dt simulated time units. This is CSIM's hold(): it is
// how an ActionPlus element charges its cost-function time to the clock.
func (p *Process) Hold(dt float64) {
	if dt < 0 {
		dt = 0
	}
	p.state = stateHolding
	p.eng.trace(p, "hold")
	p.eng.schedule(p.eng.now+dt, p, nil)
	p.pause()
}

// block parks the process with no scheduled wakeup; some synchronization
// object is responsible for scheduling its resume.
func (p *Process) block() {
	p.state = stateBlocked
	p.eng.trace(p, "block")
	p.pause()
}

// unblock schedules the process to resume at the current time.
func (p *Process) unblock() {
	p.eng.schedule(p.eng.now, p, nil)
}

// Yield lets other ready processes run at the same simulated time
// (equivalent to Hold(0)).
func (p *Process) Yield() { p.Hold(0) }
