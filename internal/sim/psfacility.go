package sim

import (
	"fmt"
	"math"
)

// PSFacility is a processor-sharing service center: the facility's
// servers are shared equally among all in-service jobs, so with j active
// jobs on s servers each job progresses at rate min(1, s/j). This is the
// classic model of a timeslicing operating-system scheduler, and the
// alternative to the Facility's non-preemptive FCFS discipline for
// modeling oversubscribed processors (ablation: BenchmarkContention).
type PSFacility struct {
	eng     *Engine
	name    string
	servers int

	jobs       map[*psJob]struct{}
	lastUpdate float64
	generation uint64 // invalidates stale completion callbacks

	busyIntegral float64
	services     int
}

type psJob struct {
	remaining float64
	proc      *Process
}

// NewPSFacility creates a processor-sharing facility.
func (e *Engine) NewPSFacility(name string, servers int) *PSFacility {
	if servers < 1 {
		panic(fmt.Sprintf("sim: PS facility %q needs at least 1 server", name))
	}
	f := &PSFacility{
		eng:     e,
		name:    name,
		servers: servers,
		jobs:    make(map[*psJob]struct{}),
	}
	e.psFacilities = append(e.psFacilities, f)
	return f
}

// Name returns the facility name.
func (f *PSFacility) Name() string { return f.name }

// Servers returns the server count.
func (f *PSFacility) Servers() int { return f.servers }

// rate returns the current per-job progress rate.
func (f *PSFacility) rate() float64 {
	j := len(f.jobs)
	if j == 0 {
		return 0
	}
	return math.Min(1, float64(f.servers)/float64(j))
}

// advance applies elapsed progress to every active job.
func (f *PSFacility) advance() {
	now := f.eng.now
	dt := now - f.lastUpdate
	if dt > 0 && len(f.jobs) > 0 {
		r := f.rate()
		for job := range f.jobs {
			job.remaining -= r * dt
		}
		f.busyIntegral += math.Min(float64(len(f.jobs)), float64(f.servers)) * dt
	}
	f.lastUpdate = now
}

// clockTick returns the resolution of the simulation clock at its current
// value: the smallest dt for which now+dt > now in float64.
func (f *PSFacility) clockTick() float64 {
	now := f.eng.now
	tick := math.Nextafter(now, math.Inf(1)) - now
	if tick <= 0 { // now == 0
		tick = 5e-324
	}
	return tick
}

// reschedule plans the next completion callback.
func (f *PSFacility) reschedule() {
	f.generation++
	if len(f.jobs) == 0 {
		return
	}
	r := f.rate()
	next := math.Inf(1)
	for job := range f.jobs {
		if t := job.remaining / r; t < next {
			next = t
		}
	}
	if next < 0 {
		next = 0
	}
	// Clock-resolution guard: a wakeup below the clock's ULP would fire
	// at the *same* timestamp, advance() would see dt == 0, and the
	// facility would loop forever without progress. Pad the delay so the
	// clock moves; complete() treats the overshoot as done work.
	if tick := f.clockTick(); next < 2*tick {
		next = 2 * tick
	}
	gen := f.generation
	f.eng.After(next, func() { f.complete(gen) })
}

// complete finishes every job whose remaining work reached zero.
func (f *PSFacility) complete(gen uint64) {
	if gen != f.generation {
		return // a later arrival/departure superseded this callback
	}
	f.advance()
	// Absolute epsilon for float drift, plus a clock-resolution epsilon:
	// work below rate * ulp(now) can never advance the clock again.
	eps := math.Max(1e-12, 4*f.rate()*f.clockTick())
	for job := range f.jobs {
		if job.remaining <= eps {
			delete(f.jobs, job)
			f.services++
			job.proc.unblock()
		}
	}
	f.reschedule()
}

// Use runs one job of the given service demand to completion under
// processor sharing; the calling process blocks until its job finishes.
func (f *PSFacility) Use(p *Process, serviceTime float64) {
	if serviceTime <= 0 {
		return
	}
	f.advance()
	job := &psJob{remaining: serviceTime, proc: p}
	f.jobs[job] = struct{}{}
	f.reschedule()
	p.block()
}

// ActiveJobs returns the number of jobs currently in service.
func (f *PSFacility) ActiveJobs() int { return len(f.jobs) }

// CompletedServices returns the number of finished jobs.
func (f *PSFacility) CompletedServices() int { return f.services }

// Utilization returns the time-average fraction of busy servers.
func (f *PSFacility) Utilization() float64 {
	f.advance()
	if f.eng.now == 0 {
		return 0
	}
	return f.busyIntegral / (f.eng.now * float64(f.servers))
}
