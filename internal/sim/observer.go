package sim

import "math"

// nextAfterNow returns the smallest float64 strictly greater than t.
func nextAfterNow(t float64) float64 {
	return math.Nextafter(t, math.Inf(1))
}

// Sample is one point of the engine's simulated-time telemetry series: a
// consistent snapshot of every registered facility, mailbox and the
// scheduler itself at simulated time Time.
type Sample struct {
	// Time is the simulated time of the snapshot.
	Time float64 `json:"t"`
	// FacilityUtilization maps facility name to the time-average fraction
	// of busy servers over [0, Time] (FCFS and processor-sharing alike).
	FacilityUtilization map[string]float64 `json:"facility_utilization,omitempty"`
	// FacilityQueue maps facility name to the instantaneous queue length:
	// waiting processes for FCFS facilities, active jobs for PS facilities.
	FacilityQueue map[string]int `json:"facility_queue,omitempty"`
	// MailboxDepth maps mailbox name to the number of buffered messages.
	MailboxDepth map[string]int `json:"mailbox_depth,omitempty"`
	// EventQueueLen is the number of pending events in the scheduler heap.
	EventQueueLen int `json:"event_queue_len"`
	// LiveProcesses is the number of spawned processes not yet done.
	LiveProcesses int `json:"live_processes"`
}

// Observer receives the engine's telemetry: discrete process lifecycle
// events and periodic state samples. Implementations run inside the
// simulation loop and must not call back into the engine.
//
// Observer generalizes the legacy SetTracer callback: Event carries the
// same (time, process, transition) triples the tracer saw, while Sample
// adds the time-series view that a single callback could not express.
type Observer interface {
	// Event reports one process lifecycle transition: "spawn", "run",
	// "hold", "block" or "done".
	Event(t float64, p *Process, what string)
	// Sample reports one telemetry snapshot. Samples are emitted in
	// nondecreasing time order.
	Sample(s Sample)
}

// tracerAdapter lifts a legacy tracer func into an Observer that ignores
// samples.
type tracerAdapter struct {
	fn func(t float64, p *Process, what string)
}

func (a tracerAdapter) Event(t float64, p *Process, what string) { a.fn(t, p, what) }
func (a tracerAdapter) Sample(Sample)                            {}

// SetObserver installs an observer and its sampling interval in simulated
// time units. An interval of 0 samples whenever simulated time advances
// (at most one sample per distinct timestamp); a positive interval
// samples at most once per interval. Pass nil to remove the observer.
//
// Run additionally emits one final sample at the end of the simulation so
// short runs always produce at least one point.
func (e *Engine) SetObserver(o Observer, interval float64) {
	e.obs = o
	if interval < 0 {
		interval = 0
	}
	e.sampleEvery = interval
	e.nextSample = 0
	e.lastSampled = -1
}

// Observer returns the installed observer, or nil.
func (e *Engine) Observer() Observer { return e.obs }

// EventQueueLen returns the number of pending events in the scheduler
// heap.
func (e *Engine) EventQueueLen() int { return len(e.events) }

// LiveProcesses returns the number of spawned processes that have not yet
// finished.
func (e *Engine) LiveProcesses() int {
	n := 0
	for _, p := range e.alive {
		if p.state != stateDone {
			n++
		}
	}
	return n
}

// maybeSample emits a telemetry sample when the sampling threshold has
// been crossed. It is called from the run loop after each event executes,
// so samples see the post-event state of the simulation.
func (e *Engine) maybeSample() {
	if e.obs == nil || e.now < e.nextSample {
		return
	}
	e.sample()
	if e.sampleEvery > 0 {
		for e.nextSample <= e.now {
			e.nextSample += e.sampleEvery
		}
	} else {
		// Auto mode: once per distinct timestamp. Any strictly later time
		// crosses the threshold again.
		e.nextSample = nextAfterNow(e.now)
	}
}

// finalSample emits the end-of-run sample unless the final time was
// already sampled.
func (e *Engine) finalSample() {
	if e.obs == nil || e.lastSampled == e.now {
		return
	}
	e.sample()
}

// sample captures the current engine state and hands it to the observer.
func (e *Engine) sample() {
	s := Sample{
		Time:          e.now,
		EventQueueLen: len(e.events),
		LiveProcesses: e.LiveProcesses(),
	}
	if len(e.facilities) > 0 || len(e.psFacilities) > 0 {
		s.FacilityUtilization = make(map[string]float64, len(e.facilities)+len(e.psFacilities))
		s.FacilityQueue = make(map[string]int, len(e.facilities)+len(e.psFacilities))
		for _, f := range e.facilities {
			s.FacilityUtilization[f.name] = f.Utilization()
			s.FacilityQueue[f.name] = f.QueueLength()
		}
		for _, f := range e.psFacilities {
			s.FacilityUtilization[f.name] = f.Utilization()
			s.FacilityQueue[f.name] = f.ActiveJobs()
		}
	}
	if len(e.mailboxes) > 0 {
		s.MailboxDepth = make(map[string]int, len(e.mailboxes))
		for _, m := range e.mailboxes {
			s.MailboxDepth[m.name] = m.Pending()
		}
	}
	e.lastSampled = e.now
	e.obs.Sample(s)
}
