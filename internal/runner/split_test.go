package runner

import (
	"reflect"
	"testing"
)

func TestSplitCoversInOrder(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for parts := -1; parts <= 8; parts++ {
			ranges := Split(n, parts)
			if n == 0 {
				if ranges != nil {
					t.Fatalf("Split(0,%d) = %v, want nil", parts, ranges)
				}
				continue
			}
			want := parts
			if want < 1 {
				want = 1
			}
			if want > n {
				want = n
			}
			if len(ranges) != want {
				t.Fatalf("Split(%d,%d) has %d ranges, want %d", n, parts, len(ranges), want)
			}
			lo := 0
			for i, r := range ranges {
				if r.Lo != lo {
					t.Fatalf("Split(%d,%d)[%d] starts at %d, want %d", n, parts, i, r.Lo, lo)
				}
				if r.Len() < 1 {
					t.Fatalf("Split(%d,%d)[%d] is empty", n, parts, i)
				}
				lo = r.Hi
			}
			if lo != n {
				t.Fatalf("Split(%d,%d) covers [0,%d), want [0,%d)", n, parts, lo, n)
			}
			// Even sizing: no range more than one job bigger than another.
			min, max := n, 0
			for _, r := range ranges {
				if r.Len() < min {
					min = r.Len()
				}
				if r.Len() > max {
					max = r.Len()
				}
			}
			if max-min > 1 {
				t.Fatalf("Split(%d,%d) uneven: sizes range %d..%d", n, parts, min, max)
			}
		}
	}
}

// The decomposition contract: splitting a seed sequence at any range
// boundary and re-deriving each sub-range from SubSeed reproduces the
// original sequence exactly — including the seed-0-means-1 normalization.
func TestSubSeedReproducesSeeds(t *testing.T) {
	for _, base := range []int64{0, 1, 7, 1 << 40} {
		const n = 11
		want := Seeds(base, n)
		for _, parts := range []int{1, 2, 3, 4, 11} {
			var got []int64
			for _, r := range Split(n, parts) {
				got = append(got, Seeds(SubSeed(base, r.Lo), r.Len())...)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("base %d parts %d: sharded seeds %v != %v", base, parts, got, want)
			}
		}
	}
	if SubSeed(0, 3) != SubSeed(1, 3) {
		t.Error("SubSeed must normalize base 0 to 1")
	}
}
