// Package runner is the batch-evaluation runtime of the Performance
// Estimator: it fans a set of independent simulation runs — Monte Carlo
// seeds, sensitivity perturbations, sweep points, design comparisons —
// across a bounded pool of workers.
//
// The contract that makes the fan-out safe to use for performance
// prediction is determinism: results are keyed by job index, never by
// completion order, so a batch evaluated at any worker count produces
// bit-identical output. Each simulation run is already reproducible on
// its own (the sim engine orders events by (time, sequence)); the runner
// preserves that property across runs by keeping aggregation order fixed
// and by deriving per-job seeds from the job index, not from scheduling.
//
// Error handling is fail-fast and equally deterministic: the first
// failure cancels the batch context so queued jobs never start, in-flight
// jobs finish, and the error returned is always the one of the
// lowest-index failed job — the same error a sequential loop would have
// reported.
package runner

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync"
	"time"

	"prophet/internal/obs"
)

// casualty reports whether a job error is a side effect of ctx's own
// cancellation (the job observed — possibly wrapped — Canceled or
// DeadlineExceeded after the batch was cancelled) rather than a failure
// of the job itself. Casualties are not reported as job errors; the
// batch reports the cancellation cause instead.
func casualty(ctx context.Context, err error) bool {
	if ctx.Err() == nil {
		return false
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Options configures one batch.
type Options struct {
	// Workers bounds the number of concurrently running jobs.
	// 0 (or negative) means runtime.GOMAXPROCS(0); 1 runs the batch
	// sequentially on the calling goroutine's schedule.
	Workers int
	// Label names the batch in spans and metrics ("" = "job").
	Label string
	// Spans, when non-nil, receives one span per job (named Label),
	// measuring the job's wall-clock execution time.
	Spans *obs.SpanRecorder
	// Metrics, when non-nil, is updated with the pool's gauges and
	// counters: runner_workers, runner_jobs_total, runner_jobs_failed_total
	// and the runner_job_seconds histogram.
	Metrics *obs.Registry
}

// workers resolves the effective pool size for n jobs.
func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) label() string {
	if o.Label == "" {
		return "job"
	}
	return o.Label
}

// jobError pairs a failure with its job index so the batch can report the
// lowest-index error deterministically.
type jobError struct {
	index int
	err   error
}

// Map runs fn(ctx, i) for every i in [0, n) on a bounded worker pool and
// returns the results in job-index order. On failure it returns the error
// of the lowest-index failed job; remaining queued jobs are skipped via
// context cancellation, and Map does not return until every started job
// has finished (no goroutine outlives the call).
//
// A nil ctx means context.Background(). If ctx is cancelled before or
// during the batch, Map returns ctx's error unless a lower-index job
// already failed with its own.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.workers(n)
	label := opts.label()

	var jobsTotal, jobsFailed *obs.Counter
	var jobSeconds *obs.Histogram
	if reg := opts.Metrics; reg != nil {
		reg.Gauge("runner_workers").Set(float64(workers))
		jobsTotal = reg.Counter("runner_jobs_total")
		jobsFailed = reg.Counter("runner_jobs_failed_total")
		jobSeconds = reg.Histogram("runner_job_seconds",
			[]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10})
	}

	out := make([]T, n)
	runOne := func(ctx context.Context, i int) error {
		// When the batch context carries a request trace, each job gets its
		// own child span — workers start children of the same parent
		// concurrently, which obs.Trace serializes internally.
		jctx, ts := obs.StartSpan(ctx, label)
		ts.Annotate("job", strconv.Itoa(i))
		done := opts.Spans.Start(label) // nil-safe
		start := time.Now()
		v, err := fn(jctx, i)
		done()
		if err != nil {
			ts.Annotate("error", err.Error())
		}
		ts.End()
		if jobSeconds != nil {
			jobSeconds.Observe(time.Since(start).Seconds())
		}
		if jobsTotal != nil {
			jobsTotal.Inc()
		}
		if err != nil {
			if jobsFailed != nil {
				jobsFailed.Inc()
			}
			return err
		}
		out[i] = v
		return nil
	}

	if workers == 1 {
		// Sequential fast path: no goroutines, same semantics.
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				// Report the cancellation cause, not the bare Canceled
				// sentinel, so a caller that cancelled with
				// context.CancelCauseFunc sees its own error.
				return nil, context.Cause(ctx)
			}
			if err := runOne(ctx, i); err != nil {
				if casualty(ctx, err) {
					return nil, context.Cause(ctx)
				}
				return nil, err
			}
		}
		return out, nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// first records the lowest-index failure. The guarantee that Map
	// reports the SAME error a sequential loop would have needs more than
	// picking the minimum of the errors that happened to occur: after a
	// high-index job fails and cancels the batch, jobs with LOWER indices
	// — which a sequential loop would have run before ever reaching the
	// failure — must still run, against the parent context, so their own
	// outcome can claim the batch error. Only jobs above the current
	// lowest failure are skipped.
	var errMu sync.Mutex
	var first *jobError
	fail := func(i int, err error) {
		errMu.Lock()
		if first == nil || i < first.index {
			first = &jobError{index: i, err: err}
		}
		errMu.Unlock()
		cancel()
	}
	skip := func(i int) bool {
		errMu.Lock()
		defer errMu.Unlock()
		return first != nil && i > first.index
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				if parent.Err() != nil || skip(i) {
					// The caller cancelled, or the batch failed at a lower
					// index: drain without running so the feeder can finish.
					continue
				}
				jctx := ctx
				if ctx.Err() != nil {
					// The batch is tearing down after a higher-index
					// failure, but sequential order would have run this job
					// first — run it undisturbed by the teardown.
					jctx = parent
				}
				if err := runOne(jctx, i); err != nil {
					if casualty(jctx, err) {
						// The batch is already being torn down; this
						// job's error is cancellation echoing back, not
						// a failure to report.
						continue
					}
					fail(i, err)
				}
			}
		}()
	}

	// Feed jobs in index order so low indices start first; stop feeding as
	// soon as the batch is cancelled. Every job below a failing index has
	// already been fed by then (sends happen in index order), which is what
	// lets the workers above finish the lower-index work.
feed:
	for i := 0; i < n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if first != nil {
		return nil, first.err
	}
	// With no job error, the derived ctx can only be done because the
	// parent is: report the parent's cancellation cause. context.Cause
	// sees through wrapping, so a deadline reports DeadlineExceeded and a
	// CancelCauseFunc reports the caller's own error — never a bare
	// Canceled misreported as (or mistaken for) a job failure.
	if parent.Err() != nil {
		return nil, context.Cause(parent)
	}
	return out, nil
}

// Seeds derives n per-job random seeds from a base seed: base, base+1, …
// A base of 0 means 1, matching the sim engine's convention that seed 0
// falls back to the default stream. The derivation is pure — equal
// (base, n) always yields the same slice — which is what keeps stochastic
// batches reproducible at any worker count.
func Seeds(base int64, n int) []int64 {
	if base == 0 {
		base = 1
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}
