package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// A parent cancelled with a custom cause must surface that cause, not a
// bare context.Canceled — and never be misreported as a job failure.
func TestMapReportsCancellationCause(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprint("workers=", workers), func(t *testing.T) {
			cause := errors.New("shedding load")
			ctx, cancel := context.WithCancelCause(context.Background())
			cancel(cause)
			_, err := Map(ctx, 10, Options{Workers: workers},
				func(ctx context.Context, i int) (int, error) { return i, nil })
			if !errors.Is(err, cause) {
				t.Fatalf("want the cancellation cause, got %v", err)
			}
		})
	}
}

func TestMapReportsDeadlineCause(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var block sync.WaitGroup
	block.Add(1)
	done := make(chan error, 1)
	go func() {
		_, err := Map(ctx, 50, Options{Workers: 2},
			func(ctx context.Context, i int) (int, error) {
				if i < 2 {
					block.Wait()
					// Mid-job cancellation surfaces as a wrapped context
					// error, the shape interp produces when its engine is
					// interrupted.
					if ctx.Err() != nil {
						return 0, fmt.Errorf("run interrupted: %w", context.Cause(ctx))
					}
				}
				return i, nil
			})
		done <- err
	}()
	cancel()
	block.Done()
	err := <-done
	if err == nil {
		t.Fatal("cancelled batch returned nil")
	}
	// The wrapped Canceled from the in-flight jobs is a casualty of the
	// batch cancellation, not a job failure: the batch must report the
	// cancellation itself.
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want a cancellation error, got %v", err)
	}
}

// A job error that merely wraps context.Canceled while the batch is NOT
// cancelled is a genuine failure and must be reported as such.
func TestMapWrappedCanceledJobErrorWithoutCancellation(t *testing.T) {
	jobErr := fmt.Errorf("job 3 gave up: %w", context.Canceled)
	_, err := Map(context.Background(), 8, Options{Workers: 2},
		func(ctx context.Context, i int) (int, error) {
			if i == 3 {
				return 0, jobErr
			}
			return i, nil
		})
	if !errors.Is(err, jobErr) {
		t.Fatalf("want the job's own error, got %v", err)
	}
}

func TestMapSequentialCancellationCause(t *testing.T) {
	cause := errors.New("custom cause")
	ctx, cancel := context.WithCancelCause(context.Background())
	ran := 0
	_, err := Map(ctx, 10, Options{Workers: 1},
		func(ctx context.Context, i int) (int, error) {
			ran++
			if i == 2 {
				cancel(cause)
				return 0, fmt.Errorf("wrapped: %w", context.Cause(ctx))
			}
			return i, nil
		})
	if !errors.Is(err, cause) {
		t.Fatalf("sequential path lost the cause: %v", err)
	}
	if ran > 3 {
		t.Errorf("%d jobs ran after cancellation", ran)
	}
}
