package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"prophet/internal/obs"
)

func TestMapOrdersResultsByJobIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(context.Background(), 100, Options{Workers: workers},
			func(ctx context.Context, i int) (int, error) {
				return i * i, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroJobs(t *testing.T) {
	out, err := Map(context.Background(), 0, Options{},
		func(ctx context.Context, i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), 50, Options{Workers: workers},
		func(ctx context.Context, i int) (struct{}, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds worker bound %d", p, workers)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Jobs 3 and 7 fail; whatever the completion order, the batch must
	// report job 3's error.
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(context.Background(), 10, Options{Workers: workers},
			func(ctx context.Context, i int) (int, error) {
				if i == 3 || i == 7 {
					return 0, fmt.Errorf("job %d failed", i)
				}
				return i, nil
			})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("workers=%d: err = %v, want job 3's error", workers, err)
		}
	}
}

func TestMapFailFastSkipsQueuedJobs(t *testing.T) {
	var started atomic.Int64
	boom := errors.New("boom")
	_, err := Map(context.Background(), 1000, Options{Workers: 2},
		func(ctx context.Context, i int) (int, error) {
			started.Add(1)
			if i == 0 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// With 2 workers and job 0 failing immediately, the vast majority of
	// the 1000 jobs must never start.
	if n := started.Load(); n > 100 {
		t.Errorf("%d jobs started after fail-fast, want only a handful", n)
	}
}

func TestMapNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	boom := errors.New("boom")
	for i := 0; i < 20; i++ {
		_, err := Map(context.Background(), 100, Options{Workers: 8},
			func(ctx context.Context, j int) (int, error) {
				if j == 5 {
					return 0, boom
				}
				return j, nil
			})
		if !errors.Is(err, boom) {
			t.Fatal(err)
		}
	}
	// Workers are joined before Map returns; allow scheduler jitter.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew from %d to %d — worker leak", before, after)
	}
}

func TestMapHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var block sync.WaitGroup
	block.Add(1)
	done := make(chan error, 1)
	go func() {
		_, err := Map(ctx, 100, Options{Workers: 2},
			func(ctx context.Context, i int) (int, error) {
				if i < 2 {
					block.Wait() // park the first jobs until cancelled
				}
				return i, nil
			})
		done <- err
	}()
	cancel()
	block.Done()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled batch returned nil error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled batch did not return promptly")
	}
}

func TestMapPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := Map(ctx, 10, Options{Workers: 4},
		func(ctx context.Context, i int) (int, error) {
			ran.Add(1)
			return i, nil
		})
	if err == nil {
		t.Fatal("pre-cancelled batch returned nil error")
	}
	if n := ran.Load(); n > 8 {
		t.Errorf("%d jobs ran under a pre-cancelled context", n)
	}
}

func TestMapSequentialPathMatchesParallel(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := Map(context.Background(), 64, Options{Workers: workers},
			func(ctx context.Context, i int) (float64, error) {
				return float64(i) * 1.5, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := run(1)
	for _, w := range []int{4, 16} {
		par := run(w)
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: out[%d] differs", w, i)
			}
		}
	}
}

func TestMapPublishesMetricsAndSpans(t *testing.T) {
	reg := obs.NewRegistry()
	spans := obs.NewSpanRecorder()
	_, err := Map(context.Background(), 10,
		Options{Workers: 2, Label: "unit", Metrics: reg, Spans: spans},
		func(ctx context.Context, i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("runner_jobs_total").Value(); n != 10 {
		t.Errorf("runner_jobs_total = %d, want 10", n)
	}
	if w := reg.Gauge("runner_workers").Value(); w != 2 {
		t.Errorf("runner_workers = %v, want 2", w)
	}
	got := spans.Spans()
	if len(got) != 10 {
		t.Fatalf("spans = %d, want 10", len(got))
	}
	for _, s := range got {
		if s.Name != "unit" {
			t.Errorf("span name %q, want unit", s.Name)
		}
	}
}

func TestSeeds(t *testing.T) {
	got := Seeds(0, 4)
	want := []int64{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Seeds(0,4) = %v, want %v", got, want)
		}
	}
	got = Seeds(100, 3)
	want = []int64{100, 101, 102}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Seeds(100,3) = %v, want %v", got, want)
		}
	}
}

func TestOptionsWorkerResolution(t *testing.T) {
	if w := (Options{}).workers(100); w != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS", w)
	}
	if w := (Options{Workers: 8}).workers(3); w != 3 {
		t.Errorf("workers capped at jobs: got %d, want 3", w)
	}
	if w := (Options{Workers: -1}).workers(5); w < 1 {
		t.Errorf("negative workers resolved to %d", w)
	}
}
