package runner

// Range is one contiguous, half-open sub-range [Lo, Hi) of a batch of
// jobs. Ranges are how the serving layer decomposes a sweep or Monte
// Carlo batch into shard jobs: each shard evaluates its sub-range
// independently, and the coordinator concatenates results in range order,
// which reproduces the single-node job order exactly.
type Range struct {
	Lo, Hi int
}

// Len returns the number of jobs in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions n jobs into at most parts contiguous ranges covering
// [0, n) in order, each non-empty, sized as evenly as possible (the first
// n%parts ranges get the extra job). parts < 1 is treated as 1; parts > n
// yields n single-job ranges. The partition is a pure function of (n,
// parts), so every node of a sharded deployment computes the same plan.
func Split(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	base, extra := n/parts, n%parts
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + base
		if i < extra {
			hi++
		}
		out = append(out, Range{Lo: lo, Hi: hi})
		lo = hi
	}
	return out
}

// SubSeed returns the seed base of the sub-range starting at job lo, such
// that Seeds(SubSeed(base, lo), k) == Seeds(base, n)[lo : lo+k]. The base
// is normalized the way Seeds normalizes it (0 means 1), so decomposing a
// batch whose request carried seed 0 still reproduces the single-node
// seed sequence.
func SubSeed(base int64, lo int) int64 {
	if base == 0 {
		base = 1
	}
	return base + int64(lo)
}
