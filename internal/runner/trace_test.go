package runner

import (
	"context"
	"errors"
	"testing"

	"prophet/internal/obs"
)

// TestMapTraceSpans verifies that a traced batch records one child span
// per job under the request's span — with parallel workers attaching
// children concurrently, which -race must find clean — and that the
// derived per-job context reaches fn.
func TestMapTraceSpans(t *testing.T) {
	tr, root := obs.NewTrace("request")
	ctx := obs.ContextWithSpan(context.Background(), root)
	const n = 64
	_, err := Map(ctx, n, Options{Workers: 8, Label: "point"},
		func(ctx context.Context, i int) (int, error) {
			// Each job's context must carry its own span, not the parent.
			span := obs.SpanFromContext(ctx)
			if span == root {
				t.Error("job context carries the parent span, not a child")
			}
			_, inner := obs.StartSpan(ctx, "sim")
			inner.End()
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	tt := tr.Tree()
	if want := 1 + 2*n; tt.Spans != want {
		t.Fatalf("spans = %d, want %d", tt.Spans, want)
	}
	if len(tt.Root.Children) != n {
		t.Fatalf("root has %d children, want %d", len(tt.Root.Children), n)
	}
	seen := map[string]bool{}
	for _, c := range tt.Root.Children {
		if c.Name != "point" {
			t.Fatalf("child named %q, want \"point\"", c.Name)
		}
		if len(c.Children) != 1 || c.Children[0].Name != "sim" {
			t.Fatalf("job span children wrong: %+v", c.Children)
		}
		if c.Unfinished {
			t.Fatal("job span not ended")
		}
		seen[c.Attrs["job"]] = true
	}
	if len(seen) != n {
		t.Fatalf("distinct job annotations = %d, want %d", len(seen), n)
	}
}

// TestMapTraceErrorAnnotated verifies a failing job's span records the
// error.
func TestMapTraceErrorAnnotated(t *testing.T) {
	tr, root := obs.NewTrace("request")
	ctx := obs.ContextWithSpan(context.Background(), root)
	boom := errors.New("boom")
	_, err := Map(ctx, 1, Options{Workers: 1, Label: "job"},
		func(ctx context.Context, i int) (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	root.End()
	c := tr.Tree().Root.Children[0]
	if c.Attrs["error"] != "boom" {
		t.Fatalf("error annotation = %q", c.Attrs["error"])
	}
}

// TestMapUntracedNoSpans verifies the no-trace path stays a no-op: no
// context derivation, no spans, no allocation of trace machinery.
func TestMapUntracedNoSpans(t *testing.T) {
	base := context.Background()
	_, err := Map(base, 4, Options{Workers: 2},
		func(ctx context.Context, i int) (int, error) {
			if obs.SpanFromContext(ctx) != nil {
				t.Error("untraced batch grew a span")
			}
			return i, nil
		})
	if err != nil {
		t.Fatal(err)
	}
}
