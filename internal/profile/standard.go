package profile

import "prophet/internal/uml"

// Stereotype names of the standard profile. The core pair, <<action+>> and
// <<activity+>>, is taken directly from the paper; the message-passing and
// shared-memory building blocks reproduce the UML extension of the authors'
// earlier work that the paper builds on (references [17,18]): send, recv,
// barrier, broadcast, reduce (MPI concepts) and parallel regions / critical
// sections (OpenMP concepts).
const (
	ActionPlus   = "action+"
	ActivityPlus = "activity+"
	LoopPlus     = "loop+"

	MPISend      = "mpi_send"
	MPIRecv      = "mpi_recv"
	MPISendrecv  = "mpi_sendrecv"
	MPIBarrier   = "mpi_barrier"
	MPIBroadcast = "mpi_bcast"
	MPIReduce    = "mpi_reduce"

	OMPParallel = "omp_parallel"
	OMPCritical = "omp_critical"
)

// Common tag names.
const (
	TagID   = "id"
	TagKind = "type"
	TagTime = "time"

	TagDest  = "dest"  // destination process rank expression
	TagSrc   = "src"   // source process rank expression
	TagSize  = "size"  // message size in bytes (expression)
	TagRoot  = "root"  // root rank of a collective (expression)
	TagCount = "count" // iteration/thread count expression
)

// standardProfile builds the stereotype definitions of the standard
// performance profile.
func standardProfile() []*Stereotype {
	idTag := TagDef{Name: TagID, Type: TagInteger}
	typeTag := TagDef{Name: TagKind, Type: TagString}
	// time is stochastic: a service time may be a distribution literal
	// (the stochastic model class; see expr.ParseDist).
	timeTag := TagDef{Name: TagTime, Type: TagExpr, Stochastic: true}

	return []*Stereotype{
		{
			// Figure 1(a): stereotype <<action+>> based on the UML
			// metaclass Action, with tags id : Integer, type : String,
			// time : Double. time is declared as an expression here so the
			// measured constant of the paper's example ("time = 10")
			// remains valid while parameterized times are possible too.
			Name: ActionPlus,
			Base: uml.KindAction,
			Tags: []TagDef{idTag, typeTag, timeTag},
			Doc:  "single-entry single-exit code region",
		},
		{
			Name: ActivityPlus,
			Base: uml.KindActivity,
			Tags: []TagDef{idTag, typeTag, timeTag},
			Doc:  "composite region described by its own activity diagram",
		},
		{
			Name: LoopPlus,
			Base: uml.KindLoop,
			// count is stochastic: a repetition count may be drawn from a
			// distribution (rounded down to an integer at run time).
			Tags: []TagDef{idTag, typeTag, {Name: TagCount, Type: TagExpr, Stochastic: true}},
			Doc:  "counted repetition of a body diagram",
		},
		{
			Name: MPISend,
			Base: uml.KindAction,
			Tags: []TagDef{
				idTag, typeTag,
				{Name: TagDest, Type: TagExpr, Required: true},
				{Name: TagSize, Type: TagExpr, Required: true},
			},
			Doc: "blocking point-to-point message send",
		},
		{
			Name: MPIRecv,
			Base: uml.KindAction,
			Tags: []TagDef{
				idTag, typeTag,
				{Name: TagSrc, Type: TagExpr, Required: true},
			},
			Doc: "blocking point-to-point message receive",
		},
		{
			// The combined exchange of MPI_Sendrecv: send to dest and
			// receive from src in one element, the natural primitive for
			// halo exchanges (deadlock-free by construction).
			Name: MPISendrecv,
			Base: uml.KindAction,
			Tags: []TagDef{
				idTag, typeTag,
				{Name: TagDest, Type: TagExpr, Required: true},
				{Name: TagSrc, Type: TagExpr, Required: true},
				{Name: TagSize, Type: TagExpr, Required: true},
			},
			Doc: "combined blocking send to dest and receive from src",
		},
		{
			Name: MPIBarrier,
			Base: uml.KindAction,
			Tags: []TagDef{idTag, typeTag},
			Doc:  "synchronization barrier across all processes",
		},
		{
			Name: MPIBroadcast,
			Base: uml.KindAction,
			Tags: []TagDef{
				idTag, typeTag,
				{Name: TagRoot, Type: TagExpr, Default: "0"},
				{Name: TagSize, Type: TagExpr, Required: true},
			},
			Doc: "one-to-all broadcast from root",
		},
		{
			Name: MPIReduce,
			Base: uml.KindAction,
			Tags: []TagDef{
				idTag, typeTag,
				{Name: TagRoot, Type: TagExpr, Default: "0"},
				{Name: TagSize, Type: TagExpr, Required: true},
			},
			Doc: "all-to-one reduction to root",
		},
		{
			Name: OMPParallel,
			Base: uml.KindActivity,
			Tags: []TagDef{
				idTag, typeTag,
				{Name: TagCount, Type: TagExpr, Default: "threads"},
			},
			Doc: "fork/join parallel region executed by a team of threads",
		},
		{
			Name: OMPCritical,
			Base: uml.KindAction,
			Tags: []TagDef{idTag, typeTag, timeTag},
			Doc:  "mutually exclusive code region",
		},
	}
}
