package profile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prophet/internal/uml"
)

const sampleConstructs = `<?xml version="1.0"?>
<constructs>
  <stereotype name="gpu_kernel" base="Action" doc="CUDA kernel launch">
    <tag name="blocks" type="Expression" required="true"/>
    <tag name="time" type="Expression"/>
    <tag name="device" type="Integer" default="0"/>
    <constraint>device &gt;= 0</constraint>
  </stereotype>
  <stereotype name="io_phase" base="Activity">
    <tag name="bytes" type="Double"/>
  </stereotype>
</constructs>`

func TestParseConstructs(t *testing.T) {
	defs, err := ParseConstructs(strings.NewReader(sampleConstructs))
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 2 {
		t.Fatalf("defs = %d", len(defs))
	}
	gpu := defs[0]
	if gpu.Name != "gpu_kernel" || gpu.Base != uml.KindAction || gpu.Doc == "" {
		t.Errorf("gpu def wrong: %+v", gpu)
	}
	blocks, ok := gpu.TagDef("blocks")
	if !ok || blocks.Type != TagExpr || !blocks.Required {
		t.Errorf("blocks tag wrong: %+v", blocks)
	}
	dev, _ := gpu.TagDef("device")
	if dev.Type != TagInteger || dev.Default != "0" {
		t.Errorf("device tag wrong: %+v", dev)
	}
	if len(gpu.Constraints) != 1 {
		t.Errorf("constraints = %v", gpu.Constraints)
	}
	if defs[1].Base != uml.KindActivity {
		t.Errorf("io_phase base wrong")
	}
}

func TestParseConstructsErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":      "junk",
		"empty name":   `<constructs><stereotype base="Action"/></constructs>`,
		"bad base":     `<constructs><stereotype name="x" base="Martian"/></constructs>`,
		"empty tag":    `<constructs><stereotype name="x" base="Action"><tag/></stereotype></constructs>`,
		"bad tag type": `<constructs><stereotype name="x" base="Action"><tag name="t" type="Blob"/></stereotype></constructs>`,
	}
	for name, src := range cases {
		if _, err := ParseConstructs(strings.NewReader(src)); err == nil {
			t.Errorf("%s: should fail", name)
		}
	}
}

func TestLoadConstructsIntoRegistry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "constructs.xml")
	if err := os.WriteFile(path, []byte(sampleConstructs), 0o644); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if err := r.LoadConstructs(path); err != nil {
		t.Fatal(err)
	}
	s, ok := r.Lookup("gpu_kernel")
	if !ok {
		t.Fatal("gpu_kernel not registered")
	}

	// Apply + validate like a built-in.
	m := uml.NewModel("m")
	d, _ := m.AddDiagram("main")
	a, _ := m.AddAction(d, "", "Launch")
	if err := r.Apply(a, "gpu_kernel"); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.Tag("device"); v != "0" {
		t.Errorf("default tag not applied: %q", v)
	}
	errs := r.Validate(a)
	if len(errs) != 1 { // blocks required
		t.Errorf("want missing-blocks error, got %v", errs)
	}
	a.SetTag("blocks", "n / 256")
	if errs := r.Validate(a); len(errs) != 0 {
		t.Errorf("valid usage should pass: %v", errs)
	}
	// The loaded stereotype is performance-relevant (Action base).
	if !r.IsPerformanceElement(a) {
		t.Errorf("gpu_kernel should count as performance element")
	}
	_ = s
}

func TestLoadConstructsDuplicate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "constructs.xml")
	dup := `<constructs><stereotype name="action+" base="Action"/></constructs>`
	if err := os.WriteFile(path, []byte(dup), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := NewRegistry().LoadConstructs(path); err == nil {
		t.Error("redefining a built-in stereotype should fail")
	}
}

func TestLoadConstructsMissingFile(t *testing.T) {
	if err := NewRegistry().LoadConstructs(filepath.Join(t.TempDir(), "none.xml")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestWriteConstructsRoundTrip(t *testing.T) {
	defs, err := ParseConstructs(strings.NewReader(sampleConstructs))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteConstructs(&sb, defs); err != nil {
		t.Fatal(err)
	}
	got, err := ParseConstructs(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, sb.String())
	}
	if len(got) != len(defs) {
		t.Fatalf("round trip lost stereotypes")
	}
	for i := range defs {
		if got[i].Name != defs[i].Name || got[i].Base != defs[i].Base ||
			len(got[i].Tags) != len(defs[i].Tags) {
			t.Errorf("stereotype %d differs", i)
		}
	}
}
