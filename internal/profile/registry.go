package profile

import (
	"fmt"
	"sort"

	"prophet/internal/uml"
)

// Registry holds the stereotype definitions known to a model-processing
// session. It is initialized with the standard performance profile and may
// be extended with user-defined stereotypes.
type Registry struct {
	byName map[string]*Stereotype
	order  []string
}

// NewRegistry returns a registry pre-loaded with the standard profile.
func NewRegistry() *Registry {
	r := &Registry{byName: make(map[string]*Stereotype)}
	for _, s := range standardProfile() {
		// The standard profile is well-formed by construction.
		if err := r.Register(s); err != nil {
			panic("profile: standard profile: " + err.Error())
		}
	}
	return r
}

// Register adds a stereotype definition. Re-registering an existing name is
// an error.
func (r *Registry) Register(s *Stereotype) error {
	if s.Name == "" {
		return fmt.Errorf("profile: stereotype with empty name")
	}
	if _, dup := r.byName[s.Name]; dup {
		return fmt.Errorf("profile: stereotype %q already registered", s.Name)
	}
	r.byName[s.Name] = s
	r.order = append(r.order, s.Name)
	return nil
}

// Lookup returns the stereotype definition for a name.
func (r *Registry) Lookup(name string) (*Stereotype, bool) {
	s, ok := r.byName[name]
	return s, ok
}

// Names returns all registered stereotype names in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// Apply applies a stereotype to an element: it checks the element's
// metaclass against the stereotype's base class and fills in tag defaults.
func (r *Registry) Apply(e uml.Element, name string) error {
	s, ok := r.byName[name]
	if !ok {
		return fmt.Errorf("profile: unknown stereotype <<%s>>", name)
	}
	if e.Kind() != s.Base {
		return fmt.Errorf("profile: <<%s>> extends %v, cannot apply to %v element %q",
			name, s.Base, e.Kind(), e.Name())
	}
	e.SetStereotype(name)
	for _, td := range s.Tags {
		if td.Default == "" {
			continue
		}
		if _, set := e.Tag(td.Name); !set {
			e.SetTag(td.Name, td.Default)
		}
	}
	return nil
}

// Validate checks one element's stereotype application (if any) against the
// registry: the stereotype must be known, its base class must match, and
// the tagged values must satisfy the tag definitions and constraints.
func (r *Registry) Validate(e uml.Element) []error {
	name := e.Stereotype()
	if name == "" {
		return nil
	}
	s, ok := r.byName[name]
	if !ok {
		return []error{fmt.Errorf("element %q: unknown stereotype <<%s>>", e.Name(), name)}
	}
	var errs []error
	if e.Kind() != s.Base {
		errs = append(errs, fmt.Errorf("element %q: <<%s>> extends %v but element is %v",
			e.Name(), name, s.Base, e.Kind()))
	}
	errs = append(errs, s.ValidateTags(e)...)
	return errs
}

// PerformanceStereotypes returns the names of the stereotypes that mark
// performance-relevant modeling elements, i.e. the selection set of the
// transformation algorithm's first phase (paper, Figure 5 lines 1-8).
func (r *Registry) PerformanceStereotypes() []string {
	var out []string
	for _, name := range r.order {
		s := r.byName[name]
		if s.Base == uml.KindAction || s.Base == uml.KindActivity || s.Base == uml.KindLoop {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// IsPerformanceElement reports whether the element carries a stereotype
// that marks it performance-relevant.
func (r *Registry) IsPerformanceElement(e uml.Element) bool {
	name := e.Stereotype()
	if name == "" {
		return false
	}
	s, ok := r.byName[name]
	if !ok {
		return false
	}
	return s.Base == uml.KindAction || s.Base == uml.KindActivity || s.Base == uml.KindLoop
}
