package profile

import (
	"strings"
	"testing"

	"prophet/internal/uml"
)

func newActionElem(t *testing.T) (*uml.Model, *uml.ActionNode) {
	t.Helper()
	m := uml.NewModel("m")
	d, err := m.AddDiagram("main")
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.AddAction(d, "", "SampleAction")
	if err != nil {
		t.Fatal(err)
	}
	return m, a
}

func TestStandardProfileRegistered(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{
		ActionPlus, ActivityPlus, LoopPlus,
		MPISend, MPIRecv, MPIBarrier, MPIBroadcast, MPIReduce,
		OMPParallel, OMPCritical,
	} {
		if _, ok := r.Lookup(name); !ok {
			t.Errorf("standard stereotype %q missing", name)
		}
	}
}

// TestFigure1Definition reproduces the paper's Figure 1(a): <<action+>> is
// based on metaclass Action with tags id : Integer, type : String and
// time (expression-typed here; Double values remain valid).
func TestFigure1Definition(t *testing.T) {
	r := NewRegistry()
	s, ok := r.Lookup(ActionPlus)
	if !ok {
		t.Fatal("action+ not registered")
	}
	if s.Base != uml.KindAction {
		t.Errorf("action+ base = %v, want Action", s.Base)
	}
	id, ok := s.TagDef("id")
	if !ok || id.Type != TagInteger {
		t.Errorf("tag id should be Integer, got %+v", id)
	}
	typ, ok := s.TagDef("type")
	if !ok || typ.Type != TagString {
		t.Errorf("tag type should be String, got %+v", typ)
	}
	if _, ok := s.TagDef("time"); !ok {
		t.Errorf("tag time missing")
	}
	if _, ok := s.TagDef("bogus"); ok {
		t.Errorf("TagDef should not find undeclared tags")
	}
}

// TestFigure1Usage reproduces Figure 1(b): SampleAction with
// {id = 1, type = SAMPLE, time = 10}.
func TestFigure1Usage(t *testing.T) {
	r := NewRegistry()
	_, a := newActionElem(t)
	if err := r.Apply(a, ActionPlus); err != nil {
		t.Fatal(err)
	}
	a.SetTag("id", "1")
	a.SetTag("type", "SAMPLE")
	a.SetTag("time", "10")

	s, _ := r.Lookup(ActionPlus)
	got := s.Notation(a)
	want := "<<action+>> {id = 1, type = SAMPLE, time = 10}"
	if got != want {
		t.Errorf("Notation = %q, want %q", got, want)
	}
	if errs := r.Validate(a); len(errs) != 0 {
		t.Errorf("valid usage should produce no errors: %v", errs)
	}
}

func TestNotationWithoutTags(t *testing.T) {
	r := NewRegistry()
	_, a := newActionElem(t)
	r.Apply(a, ActionPlus)
	s, _ := r.Lookup(ActionPlus)
	if got := s.Notation(a); got != "<<action+>>" {
		t.Errorf("Notation = %q", got)
	}
}

func TestNotationExtraTagsSorted(t *testing.T) {
	r := NewRegistry()
	_, a := newActionElem(t)
	r.Apply(a, ActionPlus)
	a.SetTag("id", "1")
	a.SetTag("zzz", "1")
	a.SetTag("aaa", "2")
	s, _ := r.Lookup(ActionPlus)
	got := s.Notation(a)
	if got != "<<action+>> {id = 1, aaa = 2, zzz = 1}" {
		t.Errorf("Notation = %q", got)
	}
}

func TestApplyWrongBaseClass(t *testing.T) {
	r := NewRegistry()
	m := uml.NewModel("m")
	d, _ := m.AddDiagram("main")
	act, _ := m.AddActivity(d, "", "SA", "SA")
	if err := r.Apply(act, ActionPlus); err == nil {
		t.Error("applying action+ to an Activity should fail")
	}
	if err := r.Apply(act, ActivityPlus); err != nil {
		t.Errorf("activity+ on Activity should succeed: %v", err)
	}
}

func TestApplyUnknownStereotype(t *testing.T) {
	r := NewRegistry()
	_, a := newActionElem(t)
	if err := r.Apply(a, "nope+"); err == nil {
		t.Error("unknown stereotype should fail")
	}
}

func TestApplySetsDefaults(t *testing.T) {
	r := NewRegistry()
	_, a := newActionElem(t)
	a.SetTag("size", "1024")
	if err := r.Apply(a, MPIBroadcast); err != nil {
		t.Fatal(err)
	}
	if v, ok := a.Tag("root"); !ok || v != "0" {
		t.Errorf("default root tag not applied: %q, %v", v, ok)
	}
	// Defaults must not overwrite user values.
	_, b := newActionElem(t)
	b.SetTag("root", "3")
	b.SetTag("size", "8")
	r.Apply(b, MPIBroadcast)
	if v, _ := b.Tag("root"); v != "3" {
		t.Errorf("default overwrote explicit tag: %q", v)
	}
}

func TestValidateTagTypes(t *testing.T) {
	r := NewRegistry()
	_, a := newActionElem(t)
	r.Apply(a, ActionPlus)
	a.SetTag("id", "not-an-int")
	a.SetTag("time", "1 +") // malformed expression
	errs := r.Validate(a)
	if len(errs) != 2 {
		t.Fatalf("want 2 validation errors, got %d: %v", len(errs), errs)
	}
	joined := errs[0].Error() + errs[1].Error()
	if !strings.Contains(joined, "Integer") || !strings.Contains(joined, "expression") {
		t.Errorf("error text unhelpful: %v", errs)
	}
}

func TestValidateRequiredTags(t *testing.T) {
	r := NewRegistry()
	_, a := newActionElem(t)
	r.Apply(a, MPISend)
	errs := r.Validate(a)
	if len(errs) != 2 { // dest and size required
		t.Fatalf("want 2 missing-tag errors, got %d: %v", len(errs), errs)
	}
	a.SetTag("dest", "pid + 1")
	a.SetTag("size", "1024 * 8")
	if errs := r.Validate(a); len(errs) != 0 {
		t.Errorf("all required tags set, want no errors: %v", errs)
	}
}

func TestValidateConstraints(t *testing.T) {
	r := NewRegistry()
	custom := &Stereotype{
		Name:        "timed+",
		Base:        uml.KindAction,
		Tags:        []TagDef{{Name: "time", Type: TagDouble}},
		Constraints: []string{"time >= 0"},
	}
	if err := r.Register(custom); err != nil {
		t.Fatal(err)
	}
	_, a := newActionElem(t)
	r.Apply(a, "timed+")
	a.SetTag("time", "-1")
	errs := r.Validate(a)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "constraint") {
		t.Fatalf("violated constraint should error: %v", errs)
	}
	a.SetTag("time", "5")
	if errs := r.Validate(a); len(errs) != 0 {
		t.Errorf("satisfied constraint should pass: %v", errs)
	}
	// Unset tag: the constraint is skipped (unset is reported only when
	// the tag is declared Required).
	a.DeleteTag("time")
	if errs := r.Validate(a); len(errs) != 0 {
		t.Errorf("constraint over unset tag should be skipped: %v", errs)
	}
}

func TestValidateUnknownStereotype(t *testing.T) {
	r := NewRegistry()
	_, a := newActionElem(t)
	a.SetStereotype("martian+")
	errs := r.Validate(a)
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "unknown stereotype") {
		t.Errorf("unknown stereotype should be reported: %v", errs)
	}
}

func TestValidateNoStereotype(t *testing.T) {
	r := NewRegistry()
	_, a := newActionElem(t)
	if errs := r.Validate(a); errs != nil {
		t.Errorf("unstereotyped element should validate clean: %v", errs)
	}
}

func TestValidateBaseClassMismatch(t *testing.T) {
	r := NewRegistry()
	_, a := newActionElem(t)
	a.SetStereotype(ActivityPlus) // bypass Apply's check
	errs := r.Validate(a)
	if len(errs) == 0 {
		t.Error("base-class mismatch should be reported")
	}
}

func TestRegisterErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&Stereotype{Name: ""}); err == nil {
		t.Error("empty name should be rejected")
	}
	if err := r.Register(&Stereotype{Name: ActionPlus}); err == nil {
		t.Error("duplicate name should be rejected")
	}
}

func TestPerformanceStereotypes(t *testing.T) {
	r := NewRegistry()
	perf := r.PerformanceStereotypes()
	want := map[string]bool{
		ActionPlus: true, ActivityPlus: true, LoopPlus: true,
		MPISend: true, MPIRecv: true, MPISendrecv: true, MPIBarrier: true,
		MPIBroadcast: true, MPIReduce: true,
		OMPParallel: true, OMPCritical: true,
	}
	if len(perf) != len(want) {
		t.Errorf("PerformanceStereotypes = %v", perf)
	}
	for _, name := range perf {
		if !want[name] {
			t.Errorf("unexpected performance stereotype %q", name)
		}
	}
}

func TestIsPerformanceElement(t *testing.T) {
	r := NewRegistry()
	_, a := newActionElem(t)
	if r.IsPerformanceElement(a) {
		t.Error("unstereotyped element is not performance-relevant")
	}
	r.Apply(a, ActionPlus)
	if !r.IsPerformanceElement(a) {
		t.Error("action+ element is performance-relevant")
	}
	a.SetStereotype("martian+")
	if r.IsPerformanceElement(a) {
		t.Error("unknown stereotype is not performance-relevant")
	}
}

func TestTagTypeString(t *testing.T) {
	if TagInteger.String() != "Integer" || TagDouble.String() != "Double" ||
		TagString.String() != "String" || TagExpr.String() != "Expression" {
		t.Error("TagType.String wrong")
	}
}

func TestRegistryNamesOrder(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) == 0 || names[0] != ActionPlus {
		t.Errorf("Names should start with action+: %v", names)
	}
}
