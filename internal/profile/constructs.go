package profile

import (
	"encoding/xml"
	"fmt"
	"io"
	"os"

	"prophet/internal/uml"
)

// The Constructs file is the XML document that extends the profile with
// user-defined stereotypes — the "Constructs (XML)" configuration element
// of the paper's Figure 2 architecture. Example:
//
//	<constructs>
//	  <stereotype name="gpu_kernel" base="Action" doc="CUDA kernel launch">
//	    <tag name="blocks" type="Expression" required="true"/>
//	    <tag name="time" type="Expression"/>
//	    <constraint>blocks &gt; 0</constraint>
//	  </stereotype>
//	</constructs>
//
// Loaded stereotypes participate in checking and validation like the
// built-ins; mapping them onto C++ classes or simulation behavior is the
// ContentHandler-extension step the paper describes.

type constructsDoc struct {
	XMLName     xml.Name         `xml:"constructs"`
	Stereotypes []constructEntry `xml:"stereotype"`
}

type constructEntry struct {
	Name        string         `xml:"name,attr"`
	Base        string         `xml:"base,attr"`
	Doc         string         `xml:"doc,attr,omitempty"`
	Tags        []constructTag `xml:"tag"`
	Constraints []string       `xml:"constraint"`
}

type constructTag struct {
	Name     string `xml:"name,attr"`
	Type     string `xml:"type,attr,omitempty"`
	Required bool   `xml:"required,attr,omitempty"`
	Default  string `xml:"default,attr,omitempty"`
}

// ParseConstructs reads stereotype definitions from a Constructs XML
// document.
func ParseConstructs(r io.Reader) ([]*Stereotype, error) {
	var doc constructsDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("profile: parse constructs: %w", err)
	}
	var out []*Stereotype
	for _, e := range doc.Stereotypes {
		if e.Name == "" {
			return nil, fmt.Errorf("profile: constructs: stereotype with empty name")
		}
		base := uml.KindFromName(e.Base)
		if base == uml.KindInvalid {
			return nil, fmt.Errorf("profile: constructs: stereotype %q: unknown base metaclass %q",
				e.Name, e.Base)
		}
		s := &Stereotype{Name: e.Name, Base: base, Doc: e.Doc, Constraints: e.Constraints}
		for _, t := range e.Tags {
			if t.Name == "" {
				return nil, fmt.Errorf("profile: constructs: stereotype %q: tag with empty name", e.Name)
			}
			var typ TagType
			switch t.Type {
			case "", "String":
				typ = TagString
			case "Integer":
				typ = TagInteger
			case "Double":
				typ = TagDouble
			case "Expression":
				typ = TagExpr
			default:
				return nil, fmt.Errorf("profile: constructs: stereotype %q tag %q: unknown type %q",
					e.Name, t.Name, t.Type)
			}
			s.Tags = append(s.Tags, TagDef{
				Name: t.Name, Type: typ, Required: t.Required, Default: t.Default,
			})
		}
		out = append(out, s)
	}
	return out, nil
}

// LoadConstructs reads a Constructs file and registers every stereotype
// it defines into the registry.
func (r *Registry) LoadConstructs(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("profile: %w", err)
	}
	defer f.Close()
	defs, err := ParseConstructs(f)
	if err != nil {
		return fmt.Errorf("profile: %s: %w", path, err)
	}
	for _, s := range defs {
		if err := r.Register(s); err != nil {
			return fmt.Errorf("profile: %s: %w", path, err)
		}
	}
	return nil
}

// WriteConstructs renders stereotype definitions as a Constructs XML
// document (for bootstrapping a project's extension file).
func WriteConstructs(w io.Writer, defs []*Stereotype) error {
	doc := constructsDoc{}
	for _, s := range defs {
		e := constructEntry{Name: s.Name, Base: s.Base.String(), Doc: s.Doc, Constraints: s.Constraints}
		for _, t := range s.Tags {
			e.Tags = append(e.Tags, constructTag{
				Name: t.Name, Type: t.Type.String(), Required: t.Required, Default: t.Default,
			})
		}
		doc.Stereotypes = append(doc.Stereotypes, e)
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("profile: write constructs: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}
