// Package profile defines the UML extension for performance-oriented
// parallel and distributed programs used by Performance Prophet (paper,
// Section 2.1 and references [17,18]).
//
// A Stereotype is defined as a subclass of an existing UML metaclass with
// associated tag definitions (metaattributes) and constraints. The package
// provides the standard profile — <<action+>>, <<activity+>>, <<loop+>> and
// the message-passing / shared-memory building blocks — plus a registry so
// models can carry additional, user-defined stereotypes, because "the set
// of tag definitions ... can be arbitrarily extended to meet the modeling
// objective" (paper, Section 2.1).
package profile

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"prophet/internal/expr"
	"prophet/internal/uml"
)

// TagType is the declared type of a tag definition.
type TagType int

const (
	// TagString accepts any text.
	TagString TagType = iota
	// TagInteger requires a base-10 integer.
	TagInteger
	// TagDouble requires a floating point number.
	TagDouble
	// TagExpr requires a parsable cost-function expression.
	TagExpr
)

// String returns the UML-style type name (as in Figure 1a: "id : Integer").
func (t TagType) String() string {
	switch t {
	case TagInteger:
		return "Integer"
	case TagDouble:
		return "Double"
	case TagExpr:
		return "Expression"
	default:
		return "String"
	}
}

// TagDef is a tag definition (metaattribute) of a stereotype.
type TagDef struct {
	Name     string
	Type     TagType
	Required bool
	// Default, when non-empty, is applied to the element when the
	// stereotype is applied and the tag is unset.
	Default string
	// Stochastic marks an expression tag whose value may be a
	// distribution literal (exp/normal/uniform/empirical; see
	// expr.ParseDist). Distribution literals anywhere else are a
	// checker error.
	Stochastic bool
}

// Stereotype is a stereotype definition: a named specialization of a UML
// metaclass with tag definitions and constraints.
type Stereotype struct {
	// Name without guillemets, e.g. "action+".
	Name string
	// Base is the metaclass kind the stereotype extends; applying the
	// stereotype to an element of a different kind is an error.
	Base uml.Kind
	// Tags are the tag definitions, in declaration order.
	Tags []TagDef
	// Constraints are informal constraint expressions evaluated over tag
	// values (each tag name is a variable; string tags are not visible).
	Constraints []string
	// Doc is a one-line description used by the CLI's describe output.
	Doc string
}

// TagDef returns the tag definition with the given name.
func (s *Stereotype) TagDef(name string) (TagDef, bool) {
	for _, td := range s.Tags {
		if td.Name == name {
			return td, true
		}
	}
	return TagDef{}, false
}

// Notation renders the stereotype application on an element in the paper's
// Figure 1(b) notation: `<<action+>> {id = 1, type = SAMPLE, time = 10}`.
// Tags are rendered in definition order, then extra tags alphabetically.
func (s *Stereotype) Notation(e uml.Element) string {
	var parts []string
	seen := make(map[string]bool)
	for _, td := range s.Tags {
		if v, ok := e.Tag(td.Name); ok {
			parts = append(parts, fmt.Sprintf("%s = %s", td.Name, v))
			seen[td.Name] = true
		}
	}
	var extra []string
	for _, tv := range e.Tags() {
		if !seen[tv.Name] {
			extra = append(extra, fmt.Sprintf("%s = %s", tv.Name, tv.Value))
		}
	}
	sort.Strings(extra)
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return fmt.Sprintf("<<%s>>", s.Name)
	}
	return fmt.Sprintf("<<%s>> {%s}", s.Name, strings.Join(parts, ", "))
}

// ValidateTags checks an element's tagged values against the stereotype's
// tag definitions and constraints. It returns one error per violation.
func (s *Stereotype) ValidateTags(e uml.Element) []error {
	var errs []error
	env := expr.NewMapEnv()
	for _, td := range s.Tags {
		raw, ok := e.Tag(td.Name)
		if !ok {
			if td.Required {
				errs = append(errs, fmt.Errorf("element %q: required tag %q of <<%s>> is unset",
					e.Name(), td.Name, s.Name))
			}
			continue
		}
		switch td.Type {
		case TagInteger:
			v, err := strconv.Atoi(raw)
			if err != nil {
				errs = append(errs, fmt.Errorf("element %q: tag %q must be an Integer, got %q",
					e.Name(), td.Name, raw))
				continue
			}
			env.Set(td.Name, float64(v))
		case TagDouble:
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				errs = append(errs, fmt.Errorf("element %q: tag %q must be a Double, got %q",
					e.Name(), td.Name, raw))
				continue
			}
			env.Set(td.Name, v)
		case TagExpr:
			if _, err := expr.Parse(raw); err != nil {
				errs = append(errs, fmt.Errorf("element %q: tag %q must be an expression: %v",
					e.Name(), td.Name, err))
			}
		}
	}
	for _, c := range s.Constraints {
		v, err := expr.Eval(c, expr.Chain{env, expr.Builtins})
		if err != nil {
			// A constraint over unset/non-numeric tags is not checkable;
			// skip silently, required-tag errors already cover the gap.
			var ue *expr.UndefinedError
			if errors.As(err, &ue) {
				continue
			}
			errs = append(errs, fmt.Errorf("element %q: constraint %q: %v", e.Name(), c, err))
			continue
		}
		if !expr.Truthy(v) {
			errs = append(errs, fmt.Errorf("element %q: constraint %q violated", e.Name(), c))
		}
	}
	return errs
}
