package machine

import (
	"fmt"
	"math"
	"testing"

	"prophet/internal/sim"
)

func newMachine(t *testing.T, e *sim.Engine, sp SystemParams, net NetParams) *Machine {
	t.Helper()
	m, err := New(e, sp, net)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestValidate(t *testing.T) {
	ok := SystemParams{Nodes: 2, ProcessorsPerNode: 4, Processes: 8, Threads: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []SystemParams{
		{Nodes: 0, ProcessorsPerNode: 1, Processes: 1, Threads: 1},
		{Nodes: 1, ProcessorsPerNode: 0, Processes: 1, Threads: 1},
		{Nodes: 1, ProcessorsPerNode: 1, Processes: 0, Threads: 1},
		{Nodes: 1, ProcessorsPerNode: 1, Processes: 1, Threads: 0},
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("case %d should fail: %+v", i, sp)
		}
	}
	if _, err := New(sim.New(), bad[0], DefaultNet()); err == nil {
		t.Error("New should propagate validation errors")
	}
}

func TestEnvBindings(t *testing.T) {
	sp := SystemParams{Nodes: 2, ProcessorsPerNode: 4, Processes: 8, Threads: 3}
	env := sp.Env()
	if env["nodes"] != 2 || env["processors"] != 4 || env["processes"] != 8 || env["threads"] != 3 {
		t.Errorf("env = %v", env)
	}
}

func TestNodePlacement(t *testing.T) {
	e := sim.New()
	m := newMachine(t, e, SystemParams{Nodes: 3, ProcessorsPerNode: 1, Processes: 7, Threads: 1}, DefaultNet())
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for pid, node := range want {
		if m.NodeOf(pid) != node {
			t.Errorf("NodeOf(%d) = %d, want %d", pid, m.NodeOf(pid), node)
		}
	}
}

func TestComputeContention(t *testing.T) {
	// 4 processes of 10s work on 1 node with 2 processors: 20s wall clock.
	e := sim.New()
	m := newMachine(t, e, SystemParams{Nodes: 1, ProcessorsPerNode: 2, Processes: 4, Threads: 1}, DefaultNet())
	for pid := 0; pid < 4; pid++ {
		pid := pid
		e.Spawn(fmt.Sprint(pid), func(p *sim.Process) {
			m.Compute(p, pid, 10)
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 20 {
		t.Errorf("wall clock = %v, want 20 (2x oversubscription)", end)
	}
}

func TestComputeNoContentionAcrossNodes(t *testing.T) {
	// Same load spread over 2 nodes x 2 processors: 10s.
	e := sim.New()
	m := newMachine(t, e, SystemParams{Nodes: 2, ProcessorsPerNode: 2, Processes: 4, Threads: 1}, DefaultNet())
	for pid := 0; pid < 4; pid++ {
		pid := pid
		e.Spawn(fmt.Sprint(pid), func(p *sim.Process) {
			m.Compute(p, pid, 10)
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 10 {
		t.Errorf("wall clock = %v, want 10", end)
	}
}

func TestComputeZeroOrNegative(t *testing.T) {
	e := sim.New()
	m := newMachine(t, e, DefaultParams(), DefaultNet())
	e.Spawn("p", func(p *sim.Process) {
		m.Compute(p, 0, 0)
		m.Compute(p, 0, -5)
	})
	end, err := e.Run()
	if err != nil || end != 0 {
		t.Errorf("zero compute should be free: %v, %v", end, err)
	}
}

func TestSendRecvTiming(t *testing.T) {
	// Inter-node message: latency 50us + 1MB / 1GB/s = 50e-6 + 1e-3.
	e := sim.New()
	net := DefaultNet()
	m := newMachine(t, e, SystemParams{Nodes: 2, ProcessorsPerNode: 1, Processes: 2, Threads: 1}, net)
	var recvAt float64
	var msg Message
	e.Spawn("sender", func(p *sim.Process) {
		if err := m.Send(p, 0, 1, 1e6); err != nil {
			t.Error(err)
		}
	})
	e.Spawn("receiver", func(p *sim.Process) {
		var err error
		msg, err = m.Recv(p, 1, 0)
		if err != nil {
			t.Error(err)
		}
		recvAt = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := net.LatencyInter + 1e6/net.BandwidthInter
	if math.Abs(recvAt-want) > 1e-12 {
		t.Errorf("message delivered at %v, want %v", recvAt, want)
	}
	if msg.From != 0 || msg.To != 1 || msg.Size != 1e6 {
		t.Errorf("message = %+v", msg)
	}
}

func TestIntraNodeFasterThanInter(t *testing.T) {
	run := func(nodes int) float64 {
		e := sim.New()
		m := newMachine(t, e, SystemParams{Nodes: nodes, ProcessorsPerNode: 2, Processes: 2, Threads: 1}, DefaultNet())
		e.Spawn("s", func(p *sim.Process) { m.Send(p, 0, 1, 1e6) })
		e.Spawn("r", func(p *sim.Process) { m.Recv(p, 1, 0) })
		end, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return end
	}
	intra, inter := run(1), run(2)
	if intra >= inter {
		t.Errorf("intra-node (%v) should beat inter-node (%v)", intra, inter)
	}
}

func TestNICSerializesSends(t *testing.T) {
	// Two sends back-to-back from the same node serialize on the NIC.
	e := sim.New()
	net := NetParams{LatencyInter: 0, BandwidthInter: 1, LatencyIntra: 0, BandwidthIntra: 1}
	m := newMachine(t, e, SystemParams{Nodes: 2, ProcessorsPerNode: 2, Processes: 3, Threads: 1}, net)
	// pids 0 and 2 are on node 0; pid 1 on node 1. Both senders push 10
	// bytes (10s serialization at bw=1).
	e.Spawn("s0", func(p *sim.Process) { m.Send(p, 0, 1, 10) })
	e.Spawn("s2", func(p *sim.Process) { m.Send(p, 2, 1, 10) })
	var last float64
	e.Spawn("r", func(p *sim.Process) {
		m.Recv(p, 1, -1)
		m.Recv(p, 1, -1)
		last = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if last != 20 {
		t.Errorf("second delivery at %v, want 20 (NIC serialized)", last)
	}
}

func TestSelectiveReceive(t *testing.T) {
	e := sim.New()
	net := NetParams{} // zero latency/infinite-free bandwidth? bw=0 means ser=0
	m := newMachine(t, e, SystemParams{Nodes: 1, ProcessorsPerNode: 4, Processes: 3, Threads: 1}, net)
	var order []int
	e.Spawn("s1", func(p *sim.Process) { m.Send(p, 1, 0, 1) })
	e.Spawn("s2", func(p *sim.Process) { p.Hold(1); m.Send(p, 2, 0, 1) })
	e.Spawn("r", func(p *sim.Process) {
		// Wait specifically for rank 2 first, then rank 1 (stashed).
		msg, err := m.Recv(p, 0, 2)
		if err != nil {
			t.Error(err)
		}
		order = append(order, msg.From)
		msg, err = m.Recv(p, 0, 1)
		if err != nil {
			t.Error(err)
		}
		order = append(order, msg.From)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Errorf("selective receive order = %v, want [2 1]", order)
	}
}

func TestSendRecvValidation(t *testing.T) {
	e := sim.New()
	m := newMachine(t, e, DefaultParams(), DefaultNet())
	e.Spawn("p", func(p *sim.Process) {
		if err := m.Send(p, 0, 5, 1); err == nil {
			t.Error("send to out-of-range rank should fail")
		}
		if _, err := m.Recv(p, 9, -1); err == nil {
			t.Error("recv on out-of-range rank should fail")
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e := sim.New()
	m := newMachine(t, e, SystemParams{Nodes: 1, ProcessorsPerNode: 4, Processes: 3, Threads: 1}, DefaultNet())
	var after []float64
	for pid := 0; pid < 3; pid++ {
		pid := pid
		e.Spawn(fmt.Sprint(pid), func(p *sim.Process) {
			p.Hold(float64(pid * 5))
			m.Barrier(p)
			after = append(after, p.Now())
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, a := range after {
		if a != 10 {
			t.Errorf("barrier exit times = %v, want all 10", after)
		}
	}
}

func TestBarrierSingleProcessNoop(t *testing.T) {
	e := sim.New()
	m := newMachine(t, e, DefaultParams(), DefaultNet())
	e.Spawn("p", func(p *sim.Process) { m.Barrier(p) })
	if _, err := e.Run(); err != nil {
		t.Fatalf("single-process barrier must not deadlock: %v", err)
	}
}

func TestCollectiveTimeShape(t *testing.T) {
	e := sim.New()
	net := DefaultNet()
	mk := func(procs, nodes int) *Machine {
		return newMachine(t, sim.New(), SystemParams{Nodes: nodes, ProcessorsPerNode: 8, Processes: procs, Threads: 1}, net)
	}
	_ = e
	if mk(1, 1).CollectiveTime(1e6) != 0 {
		t.Error("single process collective should be free")
	}
	// log2 scaling: 8 procs needs 3 rounds, 4 procs needs 2.
	t8 := mk(8, 2).CollectiveTime(1e6)
	t4 := mk(4, 2).CollectiveTime(1e6)
	if math.Abs(t8/t4-1.5) > 1e-9 {
		t.Errorf("tree rounds wrong: t8/t4 = %v, want 1.5", t8/t4)
	}
	// Multi-node collectives use the slower interconnect.
	if mk(4, 2).CollectiveTime(1e6) <= mk(4, 1).CollectiveTime(1e6) {
		t.Error("inter-node collective should cost more")
	}
}

func TestBroadcastAndReduce(t *testing.T) {
	e := sim.New()
	m := newMachine(t, e, SystemParams{Nodes: 2, ProcessorsPerNode: 2, Processes: 4, Threads: 1}, DefaultNet())
	var done []float64
	for pid := 0; pid < 4; pid++ {
		e.Spawn(fmt.Sprint(pid), func(p *sim.Process) {
			m.Broadcast(p, 1e6)
			m.Reduce(p, 8)
			done = append(done, p.Now())
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := m.CollectiveTime(1e6) + m.CollectiveTime(8)
	for _, d := range done {
		if math.Abs(d-want) > 1e-12 {
			t.Errorf("collective completion = %v, want %v", d, want)
		}
	}
}

func TestPolicyPS(t *testing.T) {
	// 4 processes of 10s on 1 node x 2 processors under PS: all share
	// fairly and finish together at 20s (FCFS finishes pairs at 10 and 20).
	e := sim.New()
	m, err := NewWithPolicy(e,
		SystemParams{Nodes: 1, ProcessorsPerNode: 2, Processes: 4, Threads: 1},
		DefaultNet(), PolicyPS)
	if err != nil {
		t.Fatal(err)
	}
	var finish []float64
	for pid := 0; pid < 4; pid++ {
		pid := pid
		e.Spawn(fmt.Sprint(pid), func(p *sim.Process) {
			m.Compute(p, pid, 10)
			finish = append(finish, p.Now())
		})
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(end-20) > 1e-9 {
		t.Errorf("end = %v, want 20", end)
	}
	for _, ft := range finish {
		if math.Abs(ft-20) > 1e-9 {
			t.Errorf("PS finishes should be simultaneous: %v", finish)
		}
	}
	if m.Policy() != PolicyPS {
		t.Errorf("policy = %v", m.Policy())
	}
	if m.CPU(0) != nil {
		t.Errorf("FCFS facility accessor should be nil under PS")
	}
	if u := m.CPUUtilization(0); math.Abs(u-1) > 1e-9 {
		t.Errorf("PS utilization = %v, want 1", u)
	}
}

func TestPolicyStrings(t *testing.T) {
	if PolicyFCFS.String() != "fcfs" || PolicyPS.String() != "processor-sharing" {
		t.Error("policy names wrong")
	}
}

func TestCPUUtilizationReporting(t *testing.T) {
	e := sim.New()
	m := newMachine(t, e, SystemParams{Nodes: 1, ProcessorsPerNode: 2, Processes: 2, Threads: 1}, DefaultNet())
	for pid := 0; pid < 2; pid++ {
		pid := pid
		e.Spawn(fmt.Sprint(pid), func(p *sim.Process) {
			m.Compute(p, pid, 10)
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := m.CPU(0).Utilization(); math.Abs(u-1.0) > 1e-9 {
		t.Errorf("cpu utilization = %v, want 1.0", u)
	}
}
