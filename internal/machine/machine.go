// Package machine implements the Machine Elements of the Performance
// Estimator (paper, Figure 2): the model of the computing system that the
// program model is integrated with.
//
// "The Performance Estimator generates automatically the machine model
// based on the specified architectural parameters" (paper, Section 2.2) —
// the architectural parameters are the System Parameters (SP): the number
// of computational nodes, the number of processors per node, the number of
// processes, and the number of threads.
//
// The generated machine consists of:
//
//   - one CPU facility per node with processors-per-node servers: compute
//     work contends for processors FCFS, so oversubscribed nodes slow down
//   - one NIC facility per node serializing outgoing messages
//   - an interconnect with separate latency/bandwidth for intra-node and
//     inter-node communication (Hockney-style alpha-beta cost)
//   - one point-to-point mailbox per process and a global barrier
//
// Collectives (broadcast, reduce) are modeled with the standard binomial
// tree cost: after synchronizing, every participant is charged
// ceil(log2 P) * (alpha + size*beta).
package machine

import (
	"fmt"
	"math"

	"prophet/internal/sim"
)

// SystemParams are the SP of the paper's Figure 2: the parameters of the
// system whose performance is estimated.
type SystemParams struct {
	// Nodes is the number of computational nodes.
	Nodes int
	// ProcessorsPerNode is the number of processors on each node.
	ProcessorsPerNode int
	// Processes is the number of processes of the program model.
	Processes int
	// Threads is the number of threads per process (the default team size
	// of parallel regions).
	Threads int
}

// DefaultParams is a single-process, single-node configuration.
func DefaultParams() SystemParams {
	return SystemParams{Nodes: 1, ProcessorsPerNode: 1, Processes: 1, Threads: 1}
}

// Validate checks the parameters for consistency.
func (sp SystemParams) Validate() error {
	if sp.Nodes < 1 {
		return fmt.Errorf("machine: nodes = %d, want >= 1", sp.Nodes)
	}
	if sp.ProcessorsPerNode < 1 {
		return fmt.Errorf("machine: processors per node = %d, want >= 1", sp.ProcessorsPerNode)
	}
	if sp.Processes < 1 {
		return fmt.Errorf("machine: processes = %d, want >= 1", sp.Processes)
	}
	if sp.Threads < 1 {
		return fmt.Errorf("machine: threads = %d, want >= 1", sp.Threads)
	}
	return nil
}

// Env returns the parameter bindings visible to model expressions (the
// well-known variables of the checker).
func (sp SystemParams) Env() map[string]float64 {
	return map[string]float64{
		"nodes":      float64(sp.Nodes),
		"processors": float64(sp.ProcessorsPerNode),
		"processes":  float64(sp.Processes),
		"threads":    float64(sp.Threads),
	}
}

// NetParams parameterize the interconnect: alpha-beta (latency-bandwidth)
// costs, split by whether the endpoints share a node.
type NetParams struct {
	// LatencyIntra/Inter in simulated time units per message.
	LatencyIntra float64
	LatencyInter float64
	// BandwidthIntra/Inter in bytes per simulated time unit.
	BandwidthIntra float64
	BandwidthInter float64
}

// DefaultNet is a generic commodity-cluster interconnect: 1 us / 10 GB/s
// within a node, 50 us / 1 GB/s between nodes (time unit: seconds).
func DefaultNet() NetParams {
	return NetParams{
		LatencyIntra:   1e-6,
		BandwidthIntra: 10e9,
		LatencyInter:   50e-6,
		BandwidthInter: 1e9,
	}
}

// Message is a point-to-point payload in flight.
type Message struct {
	From int
	To   int
	Size float64
	// SendTime is the simulated time the send was issued.
	SendTime float64
}

// Policy selects the processor-contention discipline of the machine's
// CPU model.
type Policy int

const (
	// PolicyFCFS: non-preemptive first-come-first-served processors
	// (CSIM's default facility discipline). Jobs run to completion; an
	// oversubscribed node completes work in arrival order.
	PolicyFCFS Policy = iota
	// PolicyPS: processor sharing — an oversubscribed node timeslices,
	// so concurrent jobs stretch uniformly. Closer to a real OS
	// scheduler; see the BenchmarkContention ablation.
	PolicyPS
)

// String names the policy.
func (p Policy) String() string {
	if p == PolicyPS {
		return "processor-sharing"
	}
	return "fcfs"
}

// Machine is the generated machine model bound to one simulation engine.
type Machine struct {
	eng    *sim.Engine
	sp     SystemParams
	net    NetParams
	policy Policy

	cpus   []*sim.Facility   // per node (FCFS policy)
	psCpus []*sim.PSFacility // per node (PS policy)
	nics   []*sim.Facility   // per node
	mbox   []*sim.Mailbox    // per process
	// pending holds selectively-received messages per process (messages
	// received while waiting for a specific source).
	pending [][]Message
	barrier *sim.Barrier
}

// New builds the machine model from system parameters — the automatic
// machine-model generation step of the paper's Section 2.2 — with the
// default FCFS processor discipline.
func New(eng *sim.Engine, sp SystemParams, net NetParams) (*Machine, error) {
	return NewWithPolicy(eng, sp, net, PolicyFCFS)
}

// NewWithPolicy builds the machine model with an explicit processor
// contention policy.
func NewWithPolicy(eng *sim.Engine, sp SystemParams, net NetParams, policy Policy) (*Machine, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{eng: eng, sp: sp, net: net, policy: policy}
	for n := 0; n < sp.Nodes; n++ {
		if policy == PolicyPS {
			m.psCpus = append(m.psCpus, eng.NewPSFacility(fmt.Sprintf("cpu.node%d", n), sp.ProcessorsPerNode))
		} else {
			m.cpus = append(m.cpus, eng.NewFacility(fmt.Sprintf("cpu.node%d", n), sp.ProcessorsPerNode))
		}
		m.nics = append(m.nics, eng.NewFacility(fmt.Sprintf("nic.node%d", n), 1))
	}
	for p := 0; p < sp.Processes; p++ {
		m.mbox = append(m.mbox, eng.NewMailbox(fmt.Sprintf("mbox.p%d", p)))
	}
	m.pending = make([][]Message, sp.Processes)
	m.barrier = eng.NewBarrier("mpi_barrier", sp.Processes)
	return m, nil
}

// Params returns the system parameters the machine was built from.
func (m *Machine) Params() SystemParams { return m.sp }

// Net returns the interconnect parameters.
func (m *Machine) Net() NetParams { return m.net }

// NodeOf maps a process rank onto its node (round-robin placement).
func (m *Machine) NodeOf(pid int) int { return pid % m.sp.Nodes }

// Policy returns the processor-contention discipline in effect.
func (m *Machine) Policy() Policy { return m.policy }

// CPU returns the FCFS CPU facility of a node (nil under PolicyPS).
func (m *Machine) CPU(node int) *sim.Facility {
	if m.policy == PolicyPS {
		return nil
	}
	return m.cpus[node]
}

// CPUUtilization returns the node's processor utilization regardless of
// policy.
func (m *Machine) CPUUtilization(node int) float64 {
	if m.policy == PolicyPS {
		return m.psCpus[node].Utilization()
	}
	return m.cpus[node].Utilization()
}

// Compute charges dt time units of processor work to pid's node under the
// configured discipline. Oversubscription (more runnable work than
// processors) stretches wall-clock time either in completion order (FCFS)
// or uniformly (PS) — exactly the contention effect the estimator must
// capture.
func (m *Machine) Compute(p *sim.Process, pid int, dt float64) {
	if dt <= 0 {
		return
	}
	node := m.NodeOf(pid)
	if m.policy == PolicyPS {
		m.psCpus[node].Use(p, dt)
		return
	}
	m.cpus[node].Use(p, dt)
}

// transferCost returns (serialization, total delivery delay) for a message
// between two ranks.
func (m *Machine) transferCost(from, to int, size float64) (ser, delay float64) {
	intra := m.NodeOf(from) == m.NodeOf(to)
	var lat, bw float64
	if intra {
		lat, bw = m.net.LatencyIntra, m.net.BandwidthIntra
	} else {
		lat, bw = m.net.LatencyInter, m.net.BandwidthInter
	}
	ser = 0
	if bw > 0 {
		ser = size / bw
	}
	return ser, lat + ser
}

// Send transmits size bytes from rank `from` to rank `to`. The sender
// occupies its node's NIC for the serialization time (back-to-back sends
// from one node queue up), and the message is delivered to the receiver's
// mailbox after the full latency + serialization delay.
func (m *Machine) Send(p *sim.Process, from, to int, size float64) error {
	if to < 0 || to >= m.sp.Processes {
		return fmt.Errorf("machine: send to rank %d outside 0..%d", to, m.sp.Processes-1)
	}
	ser, delay := m.transferCost(from, to, size)
	nic := m.nics[m.NodeOf(from)]
	nic.Use(p, ser)
	msg := Message{From: from, To: to, Size: size, SendTime: m.eng.Now()}
	dest := m.mbox[to]
	remaining := delay - ser
	if remaining < 0 {
		remaining = 0
	}
	m.eng.After(remaining, func() { dest.Send(msg) })
	return nil
}

// Recv blocks until a message from rank `src` arrives at rank `to`.
// src < 0 receives from any source. Messages from other sources that
// arrive in the meantime are buffered and matched by later Recv calls.
func (m *Machine) Recv(p *sim.Process, to, src int) (Message, error) {
	if to < 0 || to >= m.sp.Processes {
		return Message{}, fmt.Errorf("machine: recv on rank %d outside 0..%d", to, m.sp.Processes-1)
	}
	// Check stashed messages first.
	for i, msg := range m.pending[to] {
		if src < 0 || msg.From == src {
			m.pending[to] = append(m.pending[to][:i], m.pending[to][i+1:]...)
			return msg, nil
		}
	}
	for {
		raw := m.mbox[to].Receive(p)
		msg, ok := raw.(Message)
		if !ok {
			return Message{}, fmt.Errorf("machine: rank %d received non-message %T", to, raw)
		}
		if src < 0 || msg.From == src {
			return msg, nil
		}
		m.pending[to] = append(m.pending[to], msg)
	}
}

// Barrier blocks until every process has arrived.
func (m *Machine) Barrier(p *sim.Process) {
	if m.sp.Processes == 1 {
		return
	}
	m.barrier.Wait(p)
}

// collectiveTime is the binomial-tree cost of moving size bytes across the
// whole job: ceil(log2 P) rounds of (latency + size/bandwidth), using
// inter-node parameters when the job spans nodes.
func (m *Machine) collectiveTime(size float64) float64 {
	p := m.sp.Processes
	if p <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(p)))
	var lat, bw float64
	if m.sp.Nodes > 1 {
		lat, bw = m.net.LatencyInter, m.net.BandwidthInter
	} else {
		lat, bw = m.net.LatencyIntra, m.net.BandwidthIntra
	}
	per := lat
	if bw > 0 {
		per += size / bw
	}
	return rounds * per
}

// Broadcast models a one-to-all broadcast of size bytes rooted anywhere:
// participants synchronize, then every rank is charged the binomial tree
// time.
func (m *Machine) Broadcast(p *sim.Process, size float64) {
	m.Barrier(p)
	p.Hold(m.collectiveTime(size))
}

// Reduce models an all-to-one reduction; cost shape equals the broadcast
// tree.
func (m *Machine) Reduce(p *sim.Process, size float64) {
	m.Barrier(p)
	p.Hold(m.collectiveTime(size))
}

// CollectiveTime exposes the analytic collective cost for tests and
// benchmark reporting.
func (m *Machine) CollectiveTime(size float64) float64 { return m.collectiveTime(size) }
