package core

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"prophet/internal/builder"
	"prophet/internal/machine"
	"prophet/internal/samples"
	"prophet/internal/trace"
)

func TestEndToEndPipeline(t *testing.T) {
	p := New()
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "sample.xml")
	tracePath := filepath.Join(dir, "sample.trace")

	// Teuta side: build the Figure 7 model and persist it as XML.
	if err := p.SaveModel(modelPath, samples.Sample()); err != nil {
		t.Fatal(err)
	}

	res, err := p.RunPipeline(modelPath, tracePath,
		machine.SystemParams{Nodes: 1, ProcessorsPerNode: 1, Processes: 1, Threads: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.HasErrors() {
		t.Fatalf("sample model should check clean: %v", res.Report.Diagnostics)
	}
	// The C++ representation carries the Figure 8 structure.
	for _, want := range []string{"double GV;", "a1.execute(uid, pid, tid, FA1());", "if (GV > 0) {"} {
		if !strings.Contains(res.Cpp, want) {
			t.Errorf("C++ missing %q", want)
		}
	}
	// The prediction matches the hand computation.
	want := 8.5 + 5 + 0.1 + 5
	if math.Abs(res.Estimate.Makespan-want) > 1e-12 {
		t.Errorf("makespan = %v, want %v", res.Estimate.Makespan, want)
	}
	// The trace file landed on disk.
	tr, err := trace.Load(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) == 0 {
		t.Error("trace file empty")
	}
	// Visualization renders.
	if g := p.Gantt(tr, 40); !strings.Contains(g, "pid   0") {
		t.Errorf("gantt broken:\n%s", g)
	}
}

func TestPipelineRejectsBrokenModel(t *testing.T) {
	p := New()
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "broken.xml")
	b := builder.New("broken")
	d := b.Diagram("main")
	d.Action("A").Cost("Missing()")
	m, _ := b.Build()
	if err := p.SaveModel(modelPath, m); err != nil {
		t.Fatal(err)
	}
	res, err := p.RunPipeline(modelPath, "", machine.SystemParams{}, nil)
	if err == nil {
		t.Fatal("broken model should fail the pipeline")
	}
	if res == nil || res.Report == nil || !res.Report.HasErrors() {
		t.Error("pipeline should return the checker report on failure")
	}
}

func TestPipelineMissingFile(t *testing.T) {
	p := New()
	if _, err := p.RunPipeline(filepath.Join(t.TempDir(), "nope.xml"), "", machine.SystemParams{}, nil); err == nil {
		t.Error("missing model file should fail")
	}
}

func TestTransformCppChecksFirst(t *testing.T) {
	p := New()
	b := builder.New("broken")
	d := b.Diagram("main")
	d.Action("A").Cost("Missing()")
	m, _ := b.Build()
	if _, err := p.TransformCpp(m); err == nil {
		t.Error("TransformCpp should run the checker")
	}
	if _, err := p.TransformGo(m); err == nil {
		t.Error("TransformGo should run the checker")
	}
}

func TestTransformDotSkipsCheck(t *testing.T) {
	p := New()
	b := builder.New("broken")
	d := b.Diagram("main")
	d.Action("A").Cost("Missing()")
	m, _ := b.Build()
	out, err := p.TransformDot(m)
	if err != nil || !strings.Contains(out, "digraph") {
		t.Errorf("DOT of a broken model should still render: %v", err)
	}
}

func TestModelToXMLRoundTrip(t *testing.T) {
	p := New()
	s, err := p.ModelToXML(samples.Kernel6())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, `name="kernel6"`) {
		t.Errorf("XML missing model name:\n%s", s)
	}
}

func TestSweepsThroughFacade(t *testing.T) {
	p := New()
	req := Request{
		Model:   samples.Kernel6(),
		Globals: map[string]float64{"N": 10, "M": 1, "c": 0.1},
	}
	pts, err := p.SweepProcesses(req, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Errorf("points = %d", len(pts))
	}
	gpts, err := p.SweepGlobal(req, "N", []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(gpts) != 2 || gpts[1].Makespan <= gpts[0].Makespan {
		t.Errorf("global sweep wrong: %+v", gpts)
	}
}

func TestRegistryExposed(t *testing.T) {
	p := New()
	if _, ok := p.Registry().Lookup("action+"); !ok {
		t.Error("registry should carry the standard profile")
	}
}
