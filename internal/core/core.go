// Package core assembles the full Performance Prophet pipeline of the
// paper's Figure 2: model I/O (XML), model checking (MCF-configured),
// automatic transformation to the C++ representation (the paper's core
// contribution), alternative representations (DOT, generated Go program
// code), and model evaluation by simulation (Performance Estimator +
// trace file).
//
// It is the one-stop API that the command-line tools, the examples and the
// public root package build on:
//
//	p := core.New()
//	m, _ := p.LoadModel("model.xml")
//	if rep := p.Check(m); rep.HasErrors() { ... }
//	cpp, _ := p.TransformCpp(m)         // Figure 5 algorithm
//	est, _ := p.Estimate(core.Request{Model: m, Params: sp})
package core

import (
	"fmt"

	"prophet/internal/checker"
	"prophet/internal/cppgen"
	"prophet/internal/dot"
	"prophet/internal/estimator"
	"prophet/internal/gogen"
	"prophet/internal/machine"
	"prophet/internal/mdgen"
	"prophet/internal/profile"
	"prophet/internal/trace"
	"prophet/internal/uml"
	"prophet/internal/xmi"
)

// Request re-exports the estimator request type.
type Request = estimator.Request

// Estimate re-exports the estimator result type.
type Estimate = estimator.Estimate

// SystemParams re-exports the machine system parameters (SP).
type SystemParams = machine.SystemParams

// NetParams re-exports the interconnect parameters.
type NetParams = machine.NetParams

// Prophet is the assembled modeling-and-prediction system.
type Prophet struct {
	registry  *profile.Registry
	checker   *checker.Checker
	estimator *estimator.Estimator
	cpp       *cppgen.Generator
	gogen     *gogen.Generator
}

// Options configure the pipeline.
type Options struct {
	// CheckerConfig selects/grades model-checking rules (the MCF).
	CheckerConfig checker.Config
	// CppOptions adjust the generated C++.
	CppOptions cppgen.Options
	// GoOptions adjust the generated Go program code.
	GoOptions gogen.Options
}

// New assembles a pipeline with the standard profile and defaults.
func New() *Prophet {
	return NewWith(Options{
		CppOptions: cppgen.DefaultOptions(),
		GoOptions:  gogen.DefaultOptions(),
	})
}

// NewWith assembles a pipeline with explicit options.
func NewWith(opts Options) *Prophet {
	reg := profile.NewRegistry()
	return &Prophet{
		registry:  reg,
		checker:   checker.NewWith(reg, opts.CheckerConfig),
		estimator: estimator.NewWith(reg, opts.CheckerConfig),
		cpp:       cppgen.NewWith(reg, opts.CppOptions),
		gogen:     gogen.NewWith(reg, opts.GoOptions),
	}
}

// Registry exposes the profile registry (for registering user-defined
// stereotypes).
func (p *Prophet) Registry() *profile.Registry { return p.registry }

// LoadModel reads a model from an XML file.
func (p *Prophet) LoadModel(path string) (*uml.Model, error) {
	return xmi.Load(path)
}

// SaveModel writes a model to an XML file.
func (p *Prophet) SaveModel(path string, m *uml.Model) error {
	return xmi.Save(path, m)
}

// ModelToXML renders a model as XML text.
func (p *Prophet) ModelToXML(m *uml.Model) (string, error) {
	return xmi.EncodeString(m)
}

// Check runs the Model Checker.
func (p *Prophet) Check(m *uml.Model) *checker.Report {
	return p.checker.Check(m)
}

// TransformCpp checks the model and, if it is well-formed, transforms it
// to its C++ representation — the automatic transformation of the paper's
// title.
func (p *Prophet) TransformCpp(m *uml.Model) (string, error) {
	if rep := p.checker.Check(m); rep.HasErrors() {
		return "", &estimator.CheckError{Model: m.Name(), Report: rep}
	}
	return p.cpp.Generate(m)
}

// TransformGo checks the model and generates the Go program skeleton
// (the paper's stated future-work extension).
func (p *Prophet) TransformGo(m *uml.Model) (string, error) {
	if rep := p.checker.Check(m); rep.HasErrors() {
		return "", &estimator.CheckError{Model: m.Name(), Report: rep}
	}
	return p.gogen.Generate(m)
}

// TransformDot renders the model as Graphviz DOT (no checking required —
// visualization helps debug broken models).
func (p *Prophet) TransformDot(m *uml.Model) (string, error) {
	return dot.Render(m)
}

// TransformMarkdown renders the model as markdown documentation.
func (p *Prophet) TransformMarkdown(m *uml.Model) (string, error) {
	return mdgen.Render(m)
}

// Estimate evaluates the model by simulation and returns the prediction.
func (p *Prophet) Estimate(req Request) (*Estimate, error) {
	return p.estimator.Estimate(req)
}

// SweepProcesses evaluates the model across process counts.
func (p *Prophet) SweepProcesses(req Request, counts []int) ([]estimator.SweepPoint, error) {
	return p.estimator.SweepProcesses(req, counts)
}

// SweepGlobal evaluates the model across values of a global variable.
func (p *Prophet) SweepGlobal(req Request, name string, values []float64) ([]estimator.GlobalPoint, error) {
	return p.estimator.SweepGlobal(req, name, values)
}

// Sensitivity reports the makespan elasticity of each named global,
// plus the variables that had to be skipped (see estimator.Sensitivity).
func (p *Prophet) Sensitivity(req Request, names []string, delta float64) (*estimator.SensitivityResult, error) {
	return p.estimator.Sensitivity(req, names, delta)
}

// MonteCarlo evaluates a stochastic model across seeds (see
// estimator.MonteCarlo).
func (p *Prophet) MonteCarlo(req Request, runs int) (*estimator.MonteCarloResult, error) {
	return p.estimator.MonteCarlo(req, runs)
}

// Gantt renders a trace as an ASCII timeline.
func (p *Prophet) Gantt(tr *trace.Trace, width int) string {
	return trace.Gantt(tr, width)
}

// Pipeline is a convenience that mirrors the end-to-end flow of Figure 2
// in one call: load a model from XML, check it, emit its C++
// representation, evaluate it, and write the trace file.
type PipelineResult struct {
	Model    *uml.Model
	Report   *checker.Report
	Cpp      string
	Estimate *Estimate
}

// RunPipeline executes load -> check -> transform -> estimate.
func (p *Prophet) RunPipeline(modelPath, tracePath string, params SystemParams, globals map[string]float64) (*PipelineResult, error) {
	m, err := p.LoadModel(modelPath)
	if err != nil {
		return nil, err
	}
	rep := p.Check(m)
	if rep.HasErrors() {
		return &PipelineResult{Model: m, Report: rep},
			fmt.Errorf("core: model %q failed checking with %d error(s)", m.Name(), rep.Count(checker.Error))
	}
	cpp, err := p.cpp.Generate(m)
	if err != nil {
		return nil, err
	}
	est, err := p.Estimate(Request{
		Model: m, Params: params, Globals: globals,
		TracePath: tracePath, SkipCheck: true,
	})
	if err != nil {
		return nil, err
	}
	return &PipelineResult{Model: m, Report: rep, Cpp: cpp, Estimate: est}, nil
}
