package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"prophet/internal/builder"
	"prophet/internal/cppgen"
	"prophet/internal/estimator"
	"prophet/internal/gogen"
	"prophet/internal/uml"

	goparser "go/parser"
	gotoken "go/token"
)

// modelGen builds random, structurally valid performance models: properly
// nested sequences, decisions (guarded + else, joined at a merge), loops
// and activities with their own body diagrams. Every backend must accept
// every generated model — the cross-backend consistency property.
type modelGen struct {
	r    *rand.Rand
	b    *builder.ModelBuilder
	seq  int
	subs int
}

func (g *modelGen) name(prefix string) string {
	g.seq++
	return fmt.Sprintf("%s%d", prefix, g.seq)
}

// chain emits a random block sequence into diagram d between two fresh
// node names and returns (first, last).
func (g *modelGen) chain(d *builder.DiagramBuilder, depth int) (string, string) {
	blocks := 1 + g.r.Intn(3)
	var first, prev string
	for i := 0; i < blocks; i++ {
		entry, exit := g.block(d, depth)
		if first == "" {
			first = entry
		} else {
			d.Flow(prev, entry)
		}
		prev = exit
	}
	return first, prev
}

// block emits one block and returns its entry and exit node names.
func (g *modelGen) block(d *builder.DiagramBuilder, depth int) (string, string) {
	kind := g.r.Intn(4)
	if depth <= 0 {
		kind = 0
	}
	switch kind {
	case 1: // decision
		dec := g.name("dec")
		mrg := g.name("mrg")
		d.Decision(dec)
		d.Merge(mrg)
		branches := 2 + g.r.Intn(2)
		for bi := 0; bi < branches; bi++ {
			guard := fmt.Sprintf("GV > %d", bi)
			if bi == branches-1 {
				guard = "else"
			}
			entry, exit := g.chain(d, depth-1)
			d.FlowIf(dec, entry, guard)
			d.Flow(exit, mrg)
		}
		return dec, mrg
	case 2: // loop with body diagram
		g.subs++
		body := fmt.Sprintf("body%d", g.subs)
		lp := g.name("loop")
		d.Loop(lp, fmt.Sprintf("%d", 1+g.r.Intn(3)), body).Var(g.name("i"))
		g.diagram(body, depth-1)
		return lp, lp
	case 3: // activity with body diagram
		g.subs++
		body := fmt.Sprintf("sub%d", g.subs)
		act := g.name("act")
		d.Activity(act, body)
		g.diagram(body, depth-1)
		return act, act
	default: // action
		a := g.name("a")
		d.Action(a).Cost(fmt.Sprintf("%d", 1+g.r.Intn(5))).Tag("id", fmt.Sprint(g.seq))
		return a, a
	}
}

func (g *modelGen) diagram(name string, depth int) {
	d := g.b.Diagram(name)
	d.Initial()
	d.Final()
	first, last := g.chain(d, depth)
	d.Flow("initial", first)
	d.Flow(last, "final")
}

func randomStructuredModel(seed int64) (*uml.Model, error) {
	g := &modelGen{r: rand.New(rand.NewSource(seed)), b: builder.New(fmt.Sprintf("fuzz%d", seed))}
	g.b.Global("GV", "double")
	g.diagram("main", 3)
	return g.b.Build()
}

// TestQuickAllBackendsAcceptStructuredModels: for arbitrary structured
// models, the checker passes, the C++ generator emits structurally valid
// output, the Go generator emits parsable Go, and the simulator runs to a
// finite non-negative makespan.
func TestQuickAllBackendsAcceptStructuredModels(t *testing.T) {
	p := New()
	goGen := gogen.New()
	f := func(seed int64) bool {
		m, err := randomStructuredModel(seed)
		if err != nil {
			t.Logf("seed %d: generator: %v", seed, err)
			return false
		}
		if rep := p.Check(m); rep.HasErrors() {
			t.Logf("seed %d: checker: %v", seed, rep.Diagnostics)
			return false
		}
		cpp, err := p.TransformCpp(m)
		if err != nil {
			t.Logf("seed %d: cppgen: %v", seed, err)
			return false
		}
		if err := cppgen.ValidateStructure(cpp); err != nil {
			t.Logf("seed %d: cpp structure: %v", seed, err)
			return false
		}
		src, err := goGen.Generate(m)
		if err != nil {
			t.Logf("seed %d: gogen: %v", seed, err)
			return false
		}
		if _, err := goparser.ParseFile(gotoken.NewFileSet(), "f.go", src, 0); err != nil {
			t.Logf("seed %d: generated Go unparsable: %v", seed, err)
			return false
		}
		est, err := p.Estimate(Request{
			Model:     m,
			Globals:   map[string]float64{"GV": float64(seed % 5)},
			SkipCheck: true,
		})
		if err != nil {
			t.Logf("seed %d: estimate: %v", seed, err)
			return false
		}
		if est.Makespan < 0 || est.Makespan != est.Makespan {
			t.Logf("seed %d: bad makespan %v", seed, est.Makespan)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickCppEstimatorAgreement: for single-process structured models
// with constant costs, the sum of executed element costs in the trace
// equals the makespan (there is exactly one processor and no blocking, so
// no idle time exists).
func TestQuickCppEstimatorAgreement(t *testing.T) {
	est := estimator.New()
	f := func(seed int64) bool {
		m, err := randomStructuredModel(seed)
		if err != nil {
			return false
		}
		e, err := est.Estimate(estimator.Request{
			Model:   m,
			Globals: map[string]float64{"GV": float64(seed % 4)},
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		// Sum of per-element times at action level equals the makespan.
		bd := estimator.BreakdownOf(m, e.Summary)
		diff := e.Makespan - bd.Compute
		if diff < 0 {
			diff = -diff
		}
		if diff > 1e-9 {
			t.Logf("seed %d: makespan %v vs action total %v", seed, e.Makespan, bd.Compute)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
