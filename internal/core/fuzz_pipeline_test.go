package core

import (
	"testing"

	"prophet/internal/samples"
	"prophet/internal/xmi"
)

// FuzzPipeline hardens the whole pipeline against arbitrary model XML:
// whatever the decoder accepts must flow through the checker, both code
// generators and the simulator without panicking. Models the checker
// rejects stop there (rejection is the correct outcome, not a bug); the
// committed seeds under testdata/fuzz/FuzzPipeline cover malformed tags,
// cyclic flows and NaN/Inf execution times.
func FuzzPipeline(f *testing.F) {
	if s, err := xmi.EncodeString(samples.Sample()); err == nil {
		f.Add(s)
	}
	f.Add(`<model name="m" main="main"><diagram id="d" name="main">` +
		`<node id="a" kind="InitialNode" name="initial"/>` +
		`<node id="b" kind="Action" name="A" stereotype="action+"><tag name="time" value="1e309"/></node>` +
		`<node id="c" kind="FinalNode" name="final"/>` +
		`<edge from="a" to="b"/><edge from="b" to="c"/></diagram></model>`)
	f.Add(`<model name="m" main="main"><diagram id="d" name="main">` +
		`<node id="a" kind="Action" name="A" stereotype="action+"/>` +
		`<edge from="a" to="a"/></diagram></model>`)
	f.Add(`<model name="m"><diagram id="d" name="main">` +
		`<node id="a" kind="LoopNode" name="L" body="main" count="processes"/></diagram></model>`)

	f.Fuzz(func(t *testing.T, src string) {
		m, err := xmi.DecodeString(src)
		if err != nil {
			return
		}
		p := New()
		rep := p.Check(m)
		if rep.HasErrors() {
			return
		}
		// Generators may still refuse (e.g. unstructured cycles); they just
		// must not panic, and what they emit must be well-formed.
		if _, err := p.TransformCpp(m); err == nil {
			if _, err := p.TransformGo(m); err != nil {
				t.Logf("cppgen accepted but gogen refused: %v", err)
			}
		}
		// Simulate with a tight execution bound so runaway loops fail fast
		// instead of timing out the fuzzer.
		_, _ = p.Estimate(Request{Model: m, MaxSteps: 2000, SkipCheck: true})
	})
}
