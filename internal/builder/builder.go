// Package builder provides a fluent API for assembling UML performance
// models. It wraps the low-level constructors of internal/uml so that
// models read like the diagrams they describe:
//
//	b := builder.New("app")
//	b.Global("P", "double").Function("F", nil, "2*P")
//	d := b.Diagram("main")
//	d.Initial()
//	d.Action("Work").Cost("F()")
//	d.Final()
//	d.Chain("initial", "Work", "final")
//	m, err := b.Build()
//
// Nodes are referenced by name, not ID: flow statements may mention nodes
// that have not been created yet, because edges are resolved when Build is
// called. The builder applies the standard performance-profile stereotypes
// automatically (<<action+>> to actions, <<activity+>> to activities,
// <<loop+>> to loops), filling in the profile's tag defaults.
//
// The builder records the first error it encounters (duplicate names,
// unresolved flow endpoints, ...) and reports it from Build; intermediate
// calls never fail, which keeps model definitions free of error plumbing.
package builder

import (
	"fmt"

	"prophet/internal/profile"
	"prophet/internal/uml"
)

// ModelBuilder accumulates the parts of a model: variables, cost
// functions and diagrams. Create one with New, populate it, then call
// Build (or MustBuild for test fixtures).
type ModelBuilder struct {
	model    *uml.Model
	reg      *profile.Registry
	diagrams []*DiagramBuilder
	errs     []error
}

// New starts a fresh model builder.
func New(name string) *ModelBuilder {
	return &ModelBuilder{
		model: uml.NewModel(name),
		reg:   profile.NewRegistry(),
	}
}

// MustBuild finalizes the model and panics on error. It is intended for
// sample models and tests where a build failure is a programming bug.
func MustBuild(b *ModelBuilder) *uml.Model {
	m, err := b.Build()
	if err != nil {
		panic("builder: " + err.Error())
	}
	return m
}

func (b *ModelBuilder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// Global declares a global (shared) variable.
func (b *ModelBuilder) Global(name, typ string) *ModelBuilder {
	return b.GlobalInit(name, typ, "")
}

// GlobalInit declares a global variable with an initializer expression.
func (b *ModelBuilder) GlobalInit(name, typ, init string) *ModelBuilder {
	if err := b.model.AddVariable(uml.Variable{Name: name, Type: typ, Scope: uml.ScopeGlobal, Init: init}); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// Local declares a process-local variable.
func (b *ModelBuilder) Local(name, typ string) *ModelBuilder {
	return b.LocalInit(name, typ, "")
}

// LocalInit declares a process-local variable with an initializer.
func (b *ModelBuilder) LocalInit(name, typ, init string) *ModelBuilder {
	if err := b.model.AddVariable(uml.Variable{Name: name, Type: typ, Scope: uml.ScopeLocal, Init: init}); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// Function defines a cost function with the given parameter names and body
// expression (paper, Figure 8a).
func (b *ModelBuilder) Function(name string, params []string, body string) *ModelBuilder {
	f := uml.Function{Name: name, Body: body}
	for _, p := range params {
		f.Params = append(f.Params, uml.Param{Name: p, Type: "double"})
	}
	if err := b.model.AddFunction(f); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// SetMain designates the main diagram; by default the first diagram added
// is the main one.
func (b *ModelBuilder) SetMain(name string) *ModelBuilder {
	if err := b.model.SetMain(name); err != nil {
		b.errs = append(b.errs, err)
	}
	return b
}

// Diagram starts (or in error cases records) a new activity diagram and
// returns its builder.
func (b *ModelBuilder) Diagram(name string) *DiagramBuilder {
	d, err := b.model.AddDiagram(name)
	if err != nil {
		b.errs = append(b.errs, err)
	}
	db := &DiagramBuilder{b: b, d: d}
	b.diagrams = append(b.diagrams, db)
	return db
}

// Build resolves all deferred flows and returns the finished model. The
// model is returned even when an error occurred, so callers inspecting a
// partially built model still can; MustBuild enforces success.
func (b *ModelBuilder) Build() (*uml.Model, error) {
	for _, db := range b.diagrams {
		db.connect()
	}
	if len(b.errs) > 0 {
		return b.model, b.errs[0]
	}
	return b.model, nil
}

// pendingEdge is a flow recorded by name, resolved at Build time so that
// flows may reference nodes created later.
type pendingEdge struct {
	from, to string
	guard    string
	weight   float64
	weighted bool
}

// DiagramBuilder assembles one activity diagram.
type DiagramBuilder struct {
	b     *ModelBuilder
	d     *uml.Diagram // nil when the diagram itself failed to create
	edges []pendingEdge
	done  bool
}

// Name returns the diagram name, or "" for a failed diagram.
func (db *DiagramBuilder) Name() string {
	if db.d == nil {
		return ""
	}
	return db.d.Name()
}

func (db *DiagramBuilder) nodeBuilder(n uml.Node) *NodeBuilder {
	return &NodeBuilder{db: db, n: n}
}

// control adds a control node with an explicit user-visible name.
func (db *DiagramBuilder) control(name string, kind uml.Kind) *NodeBuilder {
	if db.d == nil {
		return db.nodeBuilder(nil)
	}
	n, err := db.b.model.AddControl(db.d, "", kind)
	if err != nil {
		db.b.errs = append(db.b.errs, err)
		return db.nodeBuilder(nil)
	}
	n.SetName(name)
	return db.nodeBuilder(n)
}

// Initial adds the diagram's initial node, named "initial" for flows.
func (db *DiagramBuilder) Initial() *NodeBuilder { return db.control("initial", uml.KindInitial) }

// Final adds a final node, named "final" for flows.
func (db *DiagramBuilder) Final() *NodeBuilder { return db.control("final", uml.KindFinal) }

// Decision adds a decision node with the given name.
func (db *DiagramBuilder) Decision(name string) *NodeBuilder {
	return db.control(name, uml.KindDecision)
}

// Merge adds a merge node with the given name.
func (db *DiagramBuilder) Merge(name string) *NodeBuilder { return db.control(name, uml.KindMerge) }

// Fork adds a fork node with the given name.
func (db *DiagramBuilder) Fork(name string) *NodeBuilder { return db.control(name, uml.KindFork) }

// Join adds a join node with the given name.
func (db *DiagramBuilder) Join(name string) *NodeBuilder { return db.control(name, uml.KindJoin) }

// Action adds an <<action+>>-stereotyped action node.
func (db *DiagramBuilder) Action(name string) *NodeBuilder {
	if db.d == nil {
		return db.nodeBuilder(nil)
	}
	n, err := db.b.model.AddAction(db.d, "", name)
	if err != nil {
		db.b.errs = append(db.b.errs, err)
		return db.nodeBuilder(nil)
	}
	db.apply(n, profile.ActionPlus)
	return db.nodeBuilder(n)
}

// Activity adds an <<activity+>>-stereotyped activity node whose content is
// the diagram named body.
func (db *DiagramBuilder) Activity(name, body string) *NodeBuilder {
	if db.d == nil {
		return db.nodeBuilder(nil)
	}
	n, err := db.b.model.AddActivity(db.d, "", name, body)
	if err != nil {
		db.b.errs = append(db.b.errs, err)
		return db.nodeBuilder(nil)
	}
	db.apply(n, profile.ActivityPlus)
	return db.nodeBuilder(n)
}

// Loop adds a <<loop+>>-stereotyped loop node repeating the diagram named
// body count times; count is an expression in the model environment.
func (db *DiagramBuilder) Loop(name, count, body string) *NodeBuilder {
	if db.d == nil {
		return db.nodeBuilder(nil)
	}
	n, err := db.b.model.AddLoop(db.d, "", name, count, body)
	if err != nil {
		db.b.errs = append(db.b.errs, err)
		return db.nodeBuilder(nil)
	}
	db.apply(n, profile.LoopPlus)
	return db.nodeBuilder(n)
}

// MPI adds an action node carrying one of the communication stereotypes
// (mpi_send, mpi_recv, omp_critical, ...); the profile's tag defaults are
// filled in.
func (db *DiagramBuilder) MPI(name, stereotype string) *NodeBuilder {
	if db.d == nil {
		return db.nodeBuilder(nil)
	}
	n, err := db.b.model.AddAction(db.d, "", name)
	if err != nil {
		db.b.errs = append(db.b.errs, err)
		return db.nodeBuilder(nil)
	}
	db.apply(n, stereotype)
	return db.nodeBuilder(n)
}

// apply stereotypes a node via the profile registry (filling defaults).
func (db *DiagramBuilder) apply(n uml.Node, stereotype string) {
	if err := db.b.reg.Apply(n, stereotype); err != nil {
		db.b.errs = append(db.b.errs, err)
	}
}

// Flow records an unconditional control flow between two nodes by name.
func (db *DiagramBuilder) Flow(from, to string) *DiagramBuilder {
	db.edges = append(db.edges, pendingEdge{from: from, to: to})
	return db
}

// FlowIf records a guarded control flow; the distinguished guard "else"
// marks the default branch out of a decision.
func (db *DiagramBuilder) FlowIf(from, to, guard string) *DiagramBuilder {
	db.edges = append(db.edges, pendingEdge{from: from, to: to, guard: guard})
	return db
}

// FlowWeighted records a probabilistically weighted flow out of a decision
// node, used when the model is evaluated stochastically.
func (db *DiagramBuilder) FlowWeighted(from, to string, weight float64) *DiagramBuilder {
	db.edges = append(db.edges, pendingEdge{from: from, to: to, weight: weight, weighted: true})
	return db
}

// Chain records unconditional flows between each consecutive pair of the
// named nodes.
func (db *DiagramBuilder) Chain(names ...string) *DiagramBuilder {
	for i := 0; i+1 < len(names); i++ {
		db.Flow(names[i], names[i+1])
	}
	return db
}

// connect resolves the diagram's deferred flows; called once by Build.
func (db *DiagramBuilder) connect() {
	if db.d == nil || db.done {
		return
	}
	db.done = true
	for _, pe := range db.edges {
		if pe.weighted && !(pe.weight > 0) {
			db.b.errf("builder: diagram %q: flow %s -> %s: weight must be positive, got %v",
				db.d.Name(), pe.from, pe.to, pe.weight)
			continue
		}
		from := db.d.NodeByName(pe.from)
		if from == nil {
			db.b.errf("builder: diagram %q: flow source %q not found", db.d.Name(), pe.from)
			continue
		}
		to := db.d.NodeByName(pe.to)
		if to == nil {
			db.b.errf("builder: diagram %q: flow target %q not found", db.d.Name(), pe.to)
			continue
		}
		e, err := db.d.Connect(from.ID(), to.ID(), pe.guard)
		if err != nil {
			db.b.errs = append(db.b.errs, err)
			continue
		}
		e.Weight = pe.weight
	}
}

// NodeBuilder decorates one freshly created node. All methods are no-ops
// on a failed node so chained calls stay safe.
type NodeBuilder struct {
	db *DiagramBuilder
	n  uml.Node
}

// Node returns the underlying UML node (nil if creation failed), for
// direct manipulation beyond the builder surface.
func (nb *NodeBuilder) Node() uml.Node { return nb.n }

// Cost sets the node's cost-function call expression, e.g. "FA1()".
func (nb *NodeBuilder) Cost(expr string) *NodeBuilder {
	switch n := nb.n.(type) {
	case *uml.ActionNode:
		n.CostFunc = expr
	case *uml.ActivityNode:
		n.CostFunc = expr
	case nil:
	default:
		nb.db.b.errf("builder: node %q (%v) cannot carry a cost function", nb.n.Name(), nb.n.Kind())
	}
	return nb
}

// Code attaches a code fragment to the node (paper, Figure 7b).
func (nb *NodeBuilder) Code(src string) *NodeBuilder {
	switch n := nb.n.(type) {
	case *uml.ActionNode:
		n.Code = src
	case *uml.ActivityNode:
		n.Code = src
	case nil:
	default:
		nb.db.b.errf("builder: node %q (%v) cannot carry a code fragment", nb.n.Name(), nb.n.Kind())
	}
	return nb
}

// Tag sets a tagged value on the node.
func (nb *NodeBuilder) Tag(name, value string) *NodeBuilder {
	if nb.n != nil {
		nb.n.SetTag(name, value)
	}
	return nb
}

// Var sets the loop variable name on a loop node.
func (nb *NodeBuilder) Var(name string) *NodeBuilder {
	switch n := nb.n.(type) {
	case *uml.LoopNode:
		n.Var = name
	case nil:
	default:
		nb.db.b.errf("builder: node %q (%v) is not a loop", nb.n.Name(), nb.n.Kind())
	}
	return nb
}
