package conformance

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"prophet/internal/obs"
)

// Options configure one harness invocation.
type Options struct {
	// CorpusDir holds the committed XML corpus models (default:
	// <repo>/testdata/corpus).
	CorpusDir string
	// GoldenDir holds the golden artifacts (default: <repo>/testdata/golden).
	GoldenDir string
	// Update regenerates golden artifacts instead of comparing.
	Update bool
	// Only restricts the run to the named entries (empty = all).
	Only []string
	// SkipOracles runs only the golden comparison (used by `diff`).
	SkipOracles bool
	// Log, when non-nil, receives per-entry progress lines.
	Log io.Writer
}

// EntryResult is the full outcome for one corpus entry.
type EntryResult struct {
	Entry  string `json:"entry"`
	Source string `json:"source"`
	// Error is a pipeline failure that prevented artifact generation.
	Error   string         `json:"error,omitempty"`
	Drifts  []Drift        `json:"drifts,omitempty"`
	Oracles []OracleResult `json:"oracles,omitempty"`
}

// Passed reports whether the entry is fully conformant.
func (r EntryResult) Passed() bool {
	if r.Error != "" || len(r.Drifts) > 0 {
		return false
	}
	for _, o := range r.Oracles {
		if !o.Passed {
			return false
		}
	}
	return true
}

// Report is the JSON document the harness emits: per-entry outcomes plus
// the run's metrics snapshot.
type Report struct {
	// Mode is "run", "update" or "diff".
	Mode    string        `json:"mode"`
	Entries []EntryResult `json:"entries"`
	// StaleGolden lists golden directories without a corpus entry.
	StaleGolden []string `json:"stale_golden,omitempty"`
	// Passed is the bottom line: no errors, no drift, no oracle failures.
	Passed bool `json:"passed"`
	// Metrics is the harness's own obs snapshot (entry/artifact/oracle
	// counters), the same schema the estimator exports.
	Metrics obs.Snapshot `json:"metrics"`
}

// Run executes the conformance harness over the corpus and returns the
// report. Update mode rewrites goldens (and prunes stale ones) instead of
// comparing; oracles run in both modes unless SkipOracles is set.
func Run(opts Options) (*Report, error) {
	if opts.CorpusDir == "" || opts.GoldenDir == "" {
		corpus, golden, err := DefaultDirs()
		if err != nil {
			return nil, err
		}
		if opts.CorpusDir == "" {
			opts.CorpusDir = corpus
		}
		if opts.GoldenDir == "" {
			opts.GoldenDir = golden
		}
	}
	entries, err := Corpus(opts.CorpusDir)
	if err != nil {
		return nil, err
	}
	if len(opts.Only) > 0 {
		only := map[string]bool{}
		for _, n := range opts.Only {
			only[n] = true
		}
		var kept []Entry
		for _, e := range entries {
			if only[e.Name] {
				kept = append(kept, e)
				delete(only, e.Name)
			}
		}
		if len(only) > 0 {
			missing := make([]string, 0, len(only))
			for n := range only {
				missing = append(missing, n)
			}
			sort.Strings(missing)
			return nil, fmt.Errorf("conformance: unknown entries %v", missing)
		}
		entries = kept
	}

	mode := "run"
	if opts.Update {
		mode = "update"
	} else if opts.SkipOracles {
		mode = "diff"
	}
	metrics := obs.NewRegistry()
	rep := &Report{Mode: mode, Passed: true}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	for _, e := range entries {
		start := time.Now()
		res := EntryResult{Entry: e.Name, Source: e.Source}
		metrics.Counter("conformance_entries_total").Inc()

		arts, err := Artifacts(e)
		if err != nil {
			res.Error = err.Error()
			metrics.Counter("conformance_pipeline_errors_total").Inc()
		} else if opts.Update {
			if err := UpdateGolden(opts.GoldenDir, e, arts); err != nil {
				return nil, err
			}
		} else {
			res.Drifts = CompareGolden(opts.GoldenDir, e, arts)
			metrics.Counter("conformance_drifts_total").Add(int64(len(res.Drifts)))
		}

		if res.Error == "" && !opts.SkipOracles {
			res.Oracles = RunOracles(e)
			for _, o := range res.Oracles {
				if o.Passed {
					metrics.CounterVec("conformance_oracle_passes_total", "oracle").With(o.Oracle).Inc()
				} else {
					metrics.CounterVec("conformance_oracle_failures_total", "oracle").With(o.Oracle).Inc()
				}
			}
		}

		if !res.Passed() {
			rep.Passed = false
		}
		status := "ok"
		if !res.Passed() {
			status = "FAIL"
		}
		logf("%-20s %-6s %d drift(s), %d oracle(s), %s",
			e.Name, status, len(res.Drifts), len(res.Oracles), time.Since(start).Round(time.Millisecond))
		rep.Entries = append(rep.Entries, res)
	}

	if opts.Update && len(opts.Only) == 0 {
		// Pruning is only safe against the full corpus: under -only the
		// entry list is filtered, and every unfiltered entry's golden
		// directory would look stale and be deleted.
		pruned, err := PruneGoldenDirs(opts.GoldenDir, entries)
		if err != nil {
			return nil, err
		}
		for _, name := range pruned {
			logf("pruned stale golden dir %s", name)
		}
	} else if len(opts.Only) == 0 {
		rep.StaleGolden = StaleGoldenDirs(opts.GoldenDir, entries)
		if len(rep.StaleGolden) > 0 {
			rep.Passed = false
		}
	}

	rep.Metrics = metrics.Snapshot()
	return rep, nil
}

// WriteJSON emits the report as indented JSON (the CI artifact).
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Summary renders a human-readable bottom line.
func (rep *Report) Summary() string {
	failed := 0
	for _, r := range rep.Entries {
		if !r.Passed() {
			failed++
		}
	}
	if rep.Passed {
		return fmt.Sprintf("conformance: %d entries passed (%s mode)", len(rep.Entries), rep.Mode)
	}
	return fmt.Sprintf("conformance: %d of %d entries failed (%s mode); %d stale golden dir(s)",
		failed, len(rep.Entries), rep.Mode, len(rep.StaleGolden))
}
