// Package conformance locks the whole Performance Prophet pipeline —
// XML/XMI parse → model check → C++/Go generation → simulation → trace →
// summary — against a committed corpus of models, following the
// transformation-contest methodology of validating model transformations
// against a fixed case set (TTC; see PAPERS.md).
//
// Two mechanisms guard the pipeline:
//
//   - Golden artifacts: every corpus model is driven through every stage
//     and each stage's normalized output (canonical XML, checker report,
//     generated C++, generated Go, trace file, run summary) is compared
//     byte-for-byte against files committed under testdata/golden/. An
//     update mode regenerates them deterministically.
//
//   - Differential oracles: independent evaluations of the same model
//     must agree — the simulated makespan against an analytic flow walk
//     (the generated-C++ flow semantics re-implemented without the
//     simulator), the trace against the reported makespan, sequential
//     against parallel batch evaluation (bit-identical), Run against
//     RunUntil(∞) (identical traces), and parse→serialize→parse
//     round-trips (fixed point, empty structural diff).
//
// The harness runs both as `go test ./internal/conformance` (tier-1
// catches drift) and as the cmd/conformance CLI (CI artifact + local
// golden-update workflow). See docs/TESTING.md for the workflow.
package conformance

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"prophet/internal/checker"
	"prophet/internal/core"
	"prophet/internal/cppgen"
	"prophet/internal/machine"
	"prophet/internal/trace"
	"prophet/internal/uml"
)

// EvalConfig fixes the evaluation parameters of one corpus entry so the
// golden artifacts are reproducible.
type EvalConfig struct {
	// Params are the system parameters the model is evaluated under.
	// The zero value means machine.DefaultParams().
	Params machine.SystemParams
	// Globals assigns the model's global variables.
	Globals map[string]float64
	// Seed drives weighted-branch selection and distribution draws.
	// Seed 0 means seed 1 — the one normalization shared by the sim
	// engine, runner.Seeds, and prophetd's request key.
	Seed int64
	// MaxSteps bounds element executions per process (0 = default);
	// corpus models with flow cycles set it as a runaway guard.
	MaxSteps int
}

// Entry is one corpus model plus its fixed evaluation configuration.
type Entry struct {
	// Name identifies the entry; golden artifacts live under
	// <golden>/<Name>/.
	Name string
	// Source records where the model came from: "builtin" or the corpus
	// file path.
	Source string
	// Model is the performance model.
	Model *uml.Model
	// Config fixes the evaluation.
	Config EvalConfig
	// Analytic marks models whose makespan the independent analytic flow
	// walker can predict exactly: single process on one processor,
	// guard-only decisions, no messaging or threading elements.
	Analytic bool
	// DigestGolden stores each golden artifact as its sha256 content
	// address instead of the full bytes. Generated scalability entries
	// (tens of thousands of nodes) use this: the comparison is still
	// byte-exact, but megabytes of generated C++ and trace text stay out
	// of the repository.
	DigestGolden bool
}

// Artifact names, in pipeline-stage order.
const (
	ArtModelXML = "model.xml"   // canonical serialization (parse stage)
	ArtCheck    = "check.txt"   // model-checker report
	ArtCpp      = "model.cpp"   // generated C++ representation
	ArtGo       = "model_go.txt" // generated Go program skeleton
	ArtTrace    = "run.trace"   // simulation trace file (TF)
	ArtSummary  = "summary.txt" // trace summary + final globals + utilization
)

// ArtifactNames lists every artifact the harness produces, in stage order.
func ArtifactNames() []string {
	return []string{ArtModelXML, ArtCheck, ArtCpp, ArtGo, ArtTrace, ArtSummary}
}

// Request builds the estimator request for an entry.
func (e Entry) Request() core.Request {
	return core.Request{
		Model:    e.Model,
		Params:   e.Config.Params,
		Globals:  e.Config.Globals,
		Seed:     e.Config.Seed,
		MaxSteps: e.Config.MaxSteps,
	}
}

// Artifacts drives the entry through the full pipeline and returns the
// normalized per-stage outputs keyed by artifact name. Every stage must
// succeed; a stage error aborts with a message naming the stage.
func Artifacts(e Entry) (map[string]string, error) {
	p := core.New()
	arts := make(map[string]string, 6)

	xml, err := p.ModelToXML(e.Model)
	if err != nil {
		return nil, fmt.Errorf("conformance: %s: serialize: %w", e.Name, err)
	}
	arts[ArtModelXML] = normalize(xml)

	rep := p.Check(e.Model)
	arts[ArtCheck] = normalize(checkText(rep.Diagnostics))
	if rep.HasErrors() {
		return nil, fmt.Errorf("conformance: %s: model fails checking: %s", e.Name, arts[ArtCheck])
	}

	// A code generator may deterministically reject a model the simulator
	// accepts (cppgen requires structured loops, so flow-graph cycles are
	// refused). The rejection is pipeline behavior too: it becomes the
	// artifact content, and the golden file pins the exact message.
	if cpp, err := p.TransformCpp(e.Model); err != nil {
		arts[ArtCpp] = normalize("(generation refused)\n" + err.Error())
	} else if err := cppgen.ValidateStructure(cpp); err != nil {
		return nil, fmt.Errorf("conformance: %s: generated C++ structure: %w", e.Name, err)
	} else {
		arts[ArtCpp] = normalize(cpp)
	}

	if gosrc, err := p.TransformGo(e.Model); err != nil {
		arts[ArtGo] = normalize("(generation refused)\n" + err.Error())
	} else if _, err := parser.ParseFile(token.NewFileSet(), e.Name+".go", gosrc, 0); err != nil {
		return nil, fmt.Errorf("conformance: %s: generated Go does not parse: %w", e.Name, err)
	} else {
		arts[ArtGo] = normalize(gosrc)
	}

	est, err := p.Estimate(e.Request())
	if err != nil {
		return nil, fmt.Errorf("conformance: %s: estimate: %w", e.Name, err)
	}
	var tb strings.Builder
	if err := trace.Write(&tb, est.Trace); err != nil {
		return nil, fmt.Errorf("conformance: %s: trace: %w", e.Name, err)
	}
	arts[ArtTrace] = normalize(tb.String())
	arts[ArtSummary] = normalize(summaryText(est))
	return arts, nil
}

// checkText renders a checker report one diagnostic per line.
func checkText(diags []checker.Diagnostic) string {
	if len(diags) == 0 {
		return "(no diagnostics)\n"
	}
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// summaryText renders the evaluation outcome: the trace summary table,
// the per-node CPU utilization and the final global-variable values, all
// with shortest-round-trip float formatting so the text is stable across
// runs.
func summaryText(est *core.Estimate) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "makespan-exact: %s\n", formatFloat(est.Makespan))
	sb.WriteString(est.Summary.Report())
	for node, u := range est.CPUUtilization {
		fmt.Fprintf(&sb, "cpu node %d: %s\n", node, formatFloat(u))
	}
	names := make([]string, 0, len(est.Globals))
	for name := range est.Globals {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "global %s: %s\n", name, formatFloat(est.Globals[name]))
	}
	return sb.String()
}

// formatFloat renders the shortest decimal that round-trips to the same
// float64, so golden files stay minimal and exact.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// normalize canonicalizes an artifact for comparison: CRLF to LF and a
// single trailing newline.
func normalize(s string) string {
	s = strings.ReplaceAll(s, "\r\n", "\n")
	s = strings.TrimRight(s, "\n")
	if s == "" {
		return "(empty)\n"
	}
	return s + "\n"
}

// FindRepoRoot walks up from dir (or the working directory when dir is
// empty) to the nearest directory containing go.mod, which is where
// testdata/corpus and testdata/golden live.
func FindRepoRoot(dir string) (string, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = wd
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("conformance: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// DefaultDirs resolves the conventional corpus and golden directories
// relative to the repository root.
func DefaultDirs() (corpus, golden string, err error) {
	root, err := FindRepoRoot("")
	if err != nil {
		return "", "", err
	}
	return filepath.Join(root, "testdata", "corpus"), filepath.Join(root, "testdata", "golden"), nil
}
