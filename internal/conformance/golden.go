package conformance

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"prophet/internal/xmi"
)

// Drift is one disagreement between a produced artifact and its golden
// counterpart.
type Drift struct {
	Entry    string `json:"entry"`
	Artifact string `json:"artifact"`
	// Kind is "changed", "missing" (no golden committed) or "stale" (a
	// golden file with no corpus counterpart).
	Kind   string `json:"kind"`
	Detail string `json:"detail,omitempty"`
}

func (d Drift) String() string {
	return fmt.Sprintf("%s/%s: %s: %s", d.Entry, d.Artifact, d.Kind, d.Detail)
}

// CompareGolden checks an entry's produced artifacts against the files
// under <goldenDir>/<entry>/. Every expected artifact must exist and
// match; unexpected files under the entry's directory are stale.
func CompareGolden(goldenDir string, e Entry, arts map[string]string) []Drift {
	var drifts []Drift
	dir := filepath.Join(goldenDir, e.Name)
	for _, name := range ArtifactNames() {
		want, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			drifts = append(drifts, Drift{Entry: e.Name, Artifact: name, Kind: "missing",
				Detail: "no golden file committed; run with -update"})
			continue
		}
		if err != nil {
			drifts = append(drifts, Drift{Entry: e.Name, Artifact: name, Kind: "missing", Detail: err.Error()})
			continue
		}
		got := arts[name]
		if e.DigestGolden {
			// Digest goldens hold the artifact's content address, one
			// line; the comparison is still byte-exact, since any byte
			// change moves the sha256.
			wantDigest := strings.TrimSpace(string(want))
			if gotDigest := xmi.HashBytes([]byte(got)); gotDigest != wantDigest {
				drifts = append(drifts, Drift{Entry: e.Name, Artifact: name, Kind: "changed",
					Detail: fmt.Sprintf("content digest %s != golden %s", gotDigest, wantDigest)})
			}
			continue
		}
		if got != normalize(string(want)) {
			drifts = append(drifts, Drift{Entry: e.Name, Artifact: name, Kind: "changed",
				Detail: firstDiffLine(normalize(string(want)), got)})
		}
	}
	known := map[string]bool{}
	for _, name := range ArtifactNames() {
		known[name] = true
	}
	if des, err := os.ReadDir(dir); err == nil {
		for _, de := range des {
			if !known[de.Name()] {
				drifts = append(drifts, Drift{Entry: e.Name, Artifact: de.Name(), Kind: "stale",
					Detail: "file is not a produced artifact; delete it or run -update"})
			}
		}
	}
	return drifts
}

// UpdateGolden (re)writes an entry's golden directory from its produced
// artifacts, deleting files that are no longer produced, so two
// consecutive updates are a no-op.
func UpdateGolden(goldenDir string, e Entry, arts map[string]string) error {
	dir := filepath.Join(goldenDir, e.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	known := map[string]bool{}
	for _, name := range ArtifactNames() {
		known[name] = true
		content := arts[name]
		if e.DigestGolden {
			content = xmi.HashBytes([]byte(content)) + "\n"
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, de := range des {
		if !known[de.Name()] {
			if err := os.RemoveAll(filepath.Join(dir, de.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

// StaleGoldenDirs lists golden subdirectories with no corpus entry —
// left-overs of renamed or removed models.
func StaleGoldenDirs(goldenDir string, entries []Entry) []string {
	names := map[string]bool{}
	for _, e := range entries {
		names[e.Name] = true
	}
	var stale []string
	if des, err := os.ReadDir(goldenDir); err == nil {
		for _, de := range des {
			if de.IsDir() && !names[de.Name()] {
				stale = append(stale, de.Name())
			}
		}
	}
	sort.Strings(stale)
	return stale
}

// PruneGoldenDirs removes golden subdirectories with no corpus entry
// (update mode's counterpart to StaleGoldenDirs).
func PruneGoldenDirs(goldenDir string, entries []Entry) ([]string, error) {
	stale := StaleGoldenDirs(goldenDir, entries)
	for _, name := range stale {
		if err := os.RemoveAll(filepath.Join(goldenDir, name)); err != nil {
			return stale, err
		}
	}
	return stale, nil
}
