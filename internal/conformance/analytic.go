package conformance

import (
	"fmt"

	"prophet/internal/analytic"
)

// AnalyticMakespan predicts an entry's makespan with the closed-form
// solver in internal/analytic — the flow walker that started life here
// as the independent half of the interp/sim agreement oracle and was
// promoted to a first-class backend. It deliberately shares no code with
// internal/interp.
//
// This wrapper keeps the exact-agreement oracle's contract: it only
// answers for deterministic entries, where the solved mean IS the
// makespan every simulation run produces. A model with stochastic
// constructs (distribution costs, weighted decisions) solves to
// distribution moments, not a per-run value, so it returns an error
// here; the stochastic corpus is covered by the CLT-tolerance
// analytic-agreement-stochastic oracle instead.
func AnalyticMakespan(e Entry) (float64, error) {
	res, err := analytic.Solve(e.Model, analytic.Config{
		Params:   e.Config.Params,
		Globals:  e.Config.Globals,
		MaxSteps: e.Config.MaxSteps,
	})
	if err != nil {
		return 0, err
	}
	if res.Stochastic {
		return 0, fmt.Errorf("analytic: entry %s is stochastic; the exact-agreement oracle does not apply", e.Name)
	}
	return res.Mean, nil
}
