package conformance

import (
	"fmt"
	"strings"

	"prophet/internal/expr"
	"prophet/internal/machine"
	"prophet/internal/profile"
	"prophet/internal/uml"
)

// AnalyticMakespan predicts an entry's makespan by walking the flow graph
// the way the generated C++ program does — guard chains in edge order,
// loop bodies repeated count times, fork branches summed (a single
// processor serializes them), code fragments applied before each
// element's execute() — but without the simulation engine. It is the
// independent half of the interp/sim agreement oracle, deliberately
// sharing no code with internal/interp.
//
// It only covers entries marked Analytic: a single process on one
// processor, guard-only decisions, and no messaging or threading
// stereotypes. Anything outside that subset returns an error.
func AnalyticMakespan(e Entry) (float64, error) {
	m := e.Model
	defs := make([]expr.Def, 0, len(m.Functions()))
	for _, f := range m.Functions() {
		d := expr.Def{Name: f.Name, Body: f.Body}
		for _, p := range f.Params {
			d.Params = append(d.Params, p.Name)
		}
		defs = append(defs, d)
	}
	lib, err := expr.NewLibrary(defs)
	if err != nil {
		return 0, fmt.Errorf("analytic: %w", err)
	}

	sp := e.Config.Params
	if sp == (machine.SystemParams{}) {
		sp = machine.DefaultParams()
	}
	if sp.Processes != 1 || sp.Nodes != 1 || sp.ProcessorsPerNode != 1 {
		return 0, fmt.Errorf("analytic: entry %s: system %+v is not single-process single-processor", e.Name, sp)
	}

	w := &walker{
		model:   m,
		lib:     lib,
		sp:      sp.Env(),
		globals: map[string]float64{},
		locals:  map[string]float64{"pid": 0, "tid": 0, "uid": 0},
		// The same runaway guard the interpreter uses, so a cyclic model
		// that diverges fails identically on both sides of the oracle.
		maxSteps: e.Config.MaxSteps,
	}
	if w.maxSteps <= 0 {
		w.maxSteps = 50_000_000
	}
	for _, v := range m.VariablesIn(uml.ScopeGlobal) {
		w.globals[v.Name] = 0
		if v.Init != "" {
			val, err := w.evalSrc(v.Init)
			if err != nil {
				return 0, fmt.Errorf("analytic: initialize %s: %w", v.Name, err)
			}
			w.globals[v.Name] = val
		}
	}
	for k, v := range e.Config.Globals {
		w.globals[k] = v
	}
	for _, v := range m.VariablesIn(uml.ScopeLocal) {
		w.locals[v.Name] = 0
		if v.Init != "" {
			val, err := w.evalSrc(v.Init)
			if err == nil {
				w.locals[v.Name] = val
			}
		}
	}

	main := m.Main()
	if main == nil {
		return 0, fmt.Errorf("analytic: model %q has no main diagram", m.Name())
	}
	return w.walkDiagram(main)
}

// walker is the analytic evaluation state: variable frames plus the
// elapsed-time accumulator threading through walk calls.
type walker struct {
	model    *uml.Model
	lib      *expr.Library
	sp       map[string]float64
	globals  map[string]float64
	locals   map[string]float64
	steps    int
	maxSteps int
}

// Var implements expr.Env variable lookup: locals shadow globals shadow
// system parameters, mirroring the generated program's scoping.
func (w *walker) Var(name string) (float64, bool) {
	if v, ok := w.locals[name]; ok {
		return v, true
	}
	if v, ok := w.globals[name]; ok {
		return v, true
	}
	v, ok := w.sp[name]
	return v, ok
}

func (w *walker) Func(string) (expr.Func, bool) { return nil, false }

func (w *walker) evalSrc(src string) (float64, error) {
	c, err := expr.CompileStringFolded(src)
	if err != nil {
		return 0, err
	}
	return c.Eval(w.lib.Bind(w))
}

func (w *walker) assign(name string, val float64) {
	if _, ok := w.globals[name]; ok {
		w.globals[name] = val
		return
	}
	w.locals[name] = val
}

func (w *walker) step(n uml.Node) error {
	w.steps++
	if w.steps > w.maxSteps {
		return fmt.Errorf("analytic: exceeded %d element executions at %q (unbounded loop?)", w.maxSteps, n.Name())
	}
	return nil
}

// walkDiagram evaluates a diagram from its initial node and returns the
// time it consumes. Empty diagrams take no time.
func (w *walker) walkDiagram(d *uml.Diagram) (float64, error) {
	ini := d.Initial()
	if ini == nil {
		if len(d.Nodes()) == 0 {
			return 0, nil
		}
		return 0, fmt.Errorf("analytic: diagram %q has no initial node", d.Name())
	}
	next, err := w.successor(d, ini)
	if err != nil {
		return 0, err
	}
	return w.walkSeq(d, next, nil)
}

// walkSeq accumulates time from cur until a final node or stop (exclusive).
func (w *walker) walkSeq(d *uml.Diagram, cur uml.Node, stop uml.Node) (float64, error) {
	total := 0.0
	for cur != nil {
		if stop != nil && cur.ID() == stop.ID() {
			return total, nil
		}
		var err error
		switch n := cur.(type) {
		case *uml.ControlNode:
			switch n.Kind() {
			case uml.KindFinal:
				return total, nil
			case uml.KindMerge, uml.KindJoin:
				cur, err = w.successor(d, n)
			case uml.KindDecision:
				cur, err = w.branch(d, n)
			case uml.KindFork:
				var dt float64
				dt, cur, err = w.fork(d, n)
				total += dt
			default:
				return 0, fmt.Errorf("analytic: diagram %q: unexpected %v mid-flow", d.Name(), n.Kind())
			}
		case *uml.ActionNode:
			if err := w.step(n); err != nil {
				return 0, err
			}
			dt, aerr := w.action(n)
			if aerr != nil {
				return 0, aerr
			}
			total += dt
			cur, err = w.successor(d, n)
		case *uml.ActivityNode:
			if err := w.step(n); err != nil {
				return 0, err
			}
			dt, err := w.activity(n)
			if err != nil {
				return 0, err
			}
			total += dt
			cur, err = w.successor(d, n)
		case *uml.LoopNode:
			if err := w.step(n); err != nil {
				return 0, err
			}
			dt, err := w.loop(n)
			if err != nil {
				return 0, err
			}
			total += dt
			cur, err = w.successor(d, n)
		default:
			return 0, fmt.Errorf("analytic: unknown node type %T", cur)
		}
		if err != nil {
			return 0, err
		}
	}
	return total, nil
}

func (w *walker) successor(d *uml.Diagram, n uml.Node) (uml.Node, error) {
	out := d.Outgoing(n.ID())
	switch len(out) {
	case 0:
		return nil, nil
	case 1:
		next := d.Node(out[0].To())
		if next == nil {
			return nil, fmt.Errorf("analytic: diagram %q: dangling edge from %q", d.Name(), n.Name())
		}
		return next, nil
	}
	return nil, fmt.Errorf("analytic: diagram %q: %v %q has %d successors", d.Name(), n.Kind(), n.Name(), len(out))
}

// branch follows the first true guard in edge order, falling back to the
// else edge — the generated if/else-if chain. Weighted decisions are
// outside the analytic subset.
func (w *walker) branch(d *uml.Diagram, n *uml.ControlNode) (uml.Node, error) {
	out := d.Outgoing(n.ID())
	var elseEdge *uml.Edge
	for _, e := range out {
		if e.IsElse() {
			elseEdge = e
			continue
		}
		if e.Guard == "" {
			return nil, fmt.Errorf("analytic: diagram %q: decision %q has a weighted branch; not analytic", d.Name(), n.Name())
		}
		v, err := w.evalSrc(e.Guard)
		if err != nil {
			return nil, fmt.Errorf("analytic: guard %q: %w", e.Guard, err)
		}
		if expr.Truthy(v) {
			return d.Node(e.To()), nil
		}
	}
	if elseEdge != nil {
		return d.Node(elseEdge.To()), nil
	}
	return nil, fmt.Errorf("analytic: diagram %q: no guard of decision %q is true and there is no else branch", d.Name(), n.Name())
}

// fork walks each branch to the common convergence node and sums the
// branch times: on a single processor the parallel branches serialize, so
// elapsed time at the join equals the total compute regardless of
// interleaving. Returns the node to continue from after the convergence.
func (w *walker) fork(d *uml.Diagram, n *uml.ControlNode) (float64, uml.Node, error) {
	out := d.Outgoing(n.ID())
	if len(out) < 2 {
		return 0, nil, fmt.Errorf("analytic: diagram %q: fork %q has %d branch(es)", d.Name(), n.Name(), len(out))
	}
	heads := make([]string, len(out))
	for i, e := range out {
		heads[i] = e.To()
	}
	conv := uml.Convergence(d, heads)
	total := 0.0
	for _, e := range out {
		head := d.Node(e.To())
		if head == nil {
			return 0, nil, fmt.Errorf("analytic: diagram %q: dangling fork edge", d.Name())
		}
		dt, err := w.walkSeq(d, head, conv)
		if err != nil {
			return 0, nil, err
		}
		total += dt
	}
	if conv != nil && conv.Kind() == uml.KindJoin {
		next, err := w.successor(d, conv)
		return total, next, err
	}
	return total, conv, nil
}

// action applies the element's code fragment, then charges its cost. Only
// plain <<action+>> elements are analytic; communication and threading
// stereotypes need the simulator.
func (w *walker) action(n *uml.ActionNode) (float64, error) {
	switch n.Stereotype() {
	case "":
		return 0, nil // not a performance modeling element
	case profile.ActionPlus:
	default:
		return 0, fmt.Errorf("analytic: element %q: stereotype <<%s>> is not analytic", n.Name(), n.Stereotype())
	}
	if err := w.applyCode(n.Code, n.Name()); err != nil {
		return 0, err
	}
	return w.cost(n.CostFunc, n)
}

func (w *walker) activity(n *uml.ActivityNode) (float64, error) {
	if st := n.Stereotype(); st != profile.ActivityPlus {
		return 0, fmt.Errorf("analytic: activity %q: stereotype <<%s>> is not analytic", n.Name(), st)
	}
	if err := w.applyCode(n.Code, n.Name()); err != nil {
		return 0, err
	}
	total, err := w.cost(n.CostFunc, n)
	if err != nil {
		return 0, err
	}
	body := w.model.DiagramByName(n.Body)
	if body == nil {
		return 0, fmt.Errorf("analytic: activity %q references unknown diagram %q", n.Name(), n.Body)
	}
	dt, err := w.walkDiagram(body)
	if err != nil {
		return 0, err
	}
	return total + dt, nil
}

func (w *walker) loop(n *uml.LoopNode) (float64, error) {
	v, err := w.evalSrc(n.Count)
	if err != nil {
		return 0, fmt.Errorf("analytic: loop %q count: %w", n.Name(), err)
	}
	count := int(v)
	body := w.model.DiagramByName(n.Body)
	if body == nil {
		return 0, fmt.Errorf("analytic: loop %q references unknown diagram %q", n.Name(), n.Body)
	}
	saved, hadSaved := 0.0, false
	if n.Var != "" {
		saved, hadSaved = w.locals[n.Var]
	}
	total := 0.0
	for i := 0; i < count; i++ {
		if err := w.step(n); err != nil {
			return 0, err
		}
		if n.Var != "" {
			w.locals[n.Var] = float64(i)
		}
		dt, err := w.walkDiagram(body)
		if err != nil {
			return 0, err
		}
		total += dt
	}
	if n.Var != "" {
		if hadSaved {
			w.locals[n.Var] = saved
		} else {
			delete(w.locals, n.Var)
		}
	}
	return total, nil
}

// applyCode runs the assignment subset of a code fragment — `name =
// expression` statements separated by ';' or newlines, anything else
// being opaque documentation — exactly as the inlined fragment of the
// generated C++ executes before execute(). The parser is intentionally a
// fresh implementation, not a call into internal/interp.
func (w *walker) applyCode(code, name string) error {
	for _, stmt := range strings.FieldsFunc(code, func(r rune) bool { return r == ';' || r == '\n' }) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" || strings.HasPrefix(stmt, "//") {
			continue
		}
		eq := strings.IndexByte(stmt, '=')
		if eq <= 0 || eq+1 < len(stmt) && stmt[eq+1] == '=' ||
			stmt[eq-1] == '!' || stmt[eq-1] == '<' || stmt[eq-1] == '>' {
			continue
		}
		target := strings.TrimSpace(stmt[:eq])
		if !isIdentifier(target) {
			continue
		}
		c, err := expr.CompileStringFolded(strings.TrimSpace(stmt[eq+1:]))
		if err != nil {
			continue // non-expression right-hand sides are documentation
		}
		v, err := c.Eval(w.lib.Bind(w))
		if err != nil {
			return fmt.Errorf("analytic: code of %q: %w", name, err)
		}
		w.assign(target, v)
	}
	return nil
}

func isIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// cost evaluates the element's execution-time expression: the attached
// cost function, else the `time` tagged value, else zero.
func (w *walker) cost(costFunc string, e uml.Element) (float64, error) {
	src := costFunc
	if src == "" {
		if raw, ok := e.Tag(profile.TagTime); ok {
			src = raw
		}
	}
	if src == "" {
		return 0, nil
	}
	v, err := w.evalSrc(src)
	if err != nil {
		return 0, fmt.Errorf("analytic: cost of %q: %w", e.Name(), err)
	}
	return v, nil
}
