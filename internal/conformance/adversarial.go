package conformance

import (
	"prophet/internal/builder"
	"prophet/internal/machine"
	"prophet/internal/profile"
	"prophet/internal/uml"
)

// The adversarial corpus models stress the structural edge cases that the
// paper's well-formed examples never reach: cyclic flow graphs (back
// edges through a merge), fork/join with zero-time branches, loops that
// iterate zero times, activities with empty body diagrams, and degenerate
// machine configurations (heavy oversubscription, zero-size collectives).
//
// The committed XML files under testdata/corpus/ are the canonical form
// of these models; the constructors here regenerate them (cmd/conformance
// gen-corpus) and a test pins the two representations to each other.

// CyclicRetry models a retry loop as a real flow-graph cycle: a merge
// node re-enters the Try action until the attempt counter — incremented
// by Try's code fragment — satisfies the exit guard. Four attempts run,
// with a linearly growing backoff between them.
func CyclicRetry() *uml.Model {
	b := builder.New("cyclic-retry")
	b.Global("attempts", "double").
		Function("FTry", nil, "0.25").
		Function("FBackoff", nil, "0.05*attempts")
	d := b.Diagram("main")
	d.Initial()
	d.Merge("again")
	d.Action("Try").Cost("FTry()").Code("attempts = attempts + 1").Tag("id", "1")
	d.Decision("ok")
	d.Action("Backoff").Cost("FBackoff()").Tag("id", "2")
	d.Final()
	d.Flow("initial", "again").
		Flow("again", "Try").
		Flow("Try", "ok").
		FlowIf("ok", "final", "attempts >= 4").
		FlowIf("ok", "Backoff", "else").
		Flow("Backoff", "again") // the back edge closing the cycle
	return builder.MustBuild(b)
}

// ZeroTime models a program in which no element consumes time: a fork
// whose three branches hold zero-cost actions, a loop that iterates zero
// times, and an activity whose body diagram is completely empty. The
// whole pipeline must survive a zero-length makespan.
func ZeroTime() *uml.Model {
	b := builder.New("zero-time")
	b.Global("eps", "double").
		Function("FZero", nil, "0")
	d := b.Diagram("main")
	d.Initial()
	d.Fork("split")
	d.Action("A").Cost("FZero()").Tag("id", "1")
	d.Action("B1").Cost("0").Tag("id", "2")
	d.Action("B2").Cost("eps").Tag("id", "3")
	d.Loop("Never", "0", "skipped").Tag("id", "4")
	d.Join("meet")
	d.Activity("Nop", "empty").Tag("id", "5")
	d.Final()
	d.Flow("initial", "split").
		Flow("split", "A").
		Flow("split", "B1").
		Flow("B1", "B2").
		Flow("split", "Never").
		Flow("A", "meet").
		Flow("B2", "meet").
		Flow("Never", "meet").
		Flow("meet", "Nop").
		Flow("Nop", "final")

	s := b.Diagram("skipped")
	s.Initial()
	s.Action("Unreached").Cost("1e9").Tag("id", "6")
	s.Final()
	s.Chain("initial", "Unreached", "final")

	b.Diagram("empty") // an activity body with no nodes at all

	return builder.MustBuild(b)
}

// DegenerateMachine models a collective-heavy program meant to run under
// a pathological system configuration (five processes time-sharing one
// processor, a thread count exceeding the process count): per-rank skewed
// compute, a full barrier, a zero-byte broadcast, and a zero-cost tail.
func DegenerateMachine() *uml.Model {
	b := builder.New("degenerate-machine")
	b.Global("w", "double")
	d := b.Diagram("main")
	d.Initial()
	d.Action("Skew").Cost("w*(pid+1)").Tag("id", "1")
	d.MPI("Sync", profile.MPIBarrier).Tag("id", "2")
	d.MPI("Share", profile.MPIBroadcast).Tag(profile.TagSize, "0").Tag("id", "3")
	d.Action("Wrap").Cost("0").Tag("id", "4")
	d.Final()
	d.Chain("initial", "Skew", "Sync", "Share", "Wrap", "final")
	return builder.MustBuild(b)
}

// AdversarialEntries returns the adversarial corpus models with their
// fixed evaluation configurations. The XML files under testdata/corpus/
// are generated from exactly these entries.
func AdversarialEntries() []Entry {
	return []Entry{
		{
			Name:   "cyclic-retry",
			Model:  CyclicRetry(),
			Config: EvalConfig{MaxSteps: 100000},
			// Cycles are exactly what the analytic walker must agree on.
			Analytic: true,
		},
		{
			Name:     "zero-time",
			Model:    ZeroTime(),
			Config:   EvalConfig{Globals: map[string]float64{"eps": 0}},
			Analytic: true,
		},
		{
			Name:  "degenerate-machine",
			Model: DegenerateMachine(),
			Config: EvalConfig{
				Params:  machine.SystemParams{Nodes: 1, ProcessorsPerNode: 1, Processes: 5, Threads: 3},
				Globals: map[string]float64{"w": 0.01},
			},
		},
	}
}
