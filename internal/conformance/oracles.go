package conformance

import (
	"fmt"
	"math"
	"reflect"
	"strings"

	"prophet/internal/analytic"
	"prophet/internal/core"
	"prophet/internal/diff"
	"prophet/internal/estimator"
	"prophet/internal/interp"
	"prophet/internal/lower"
	"prophet/internal/runner"
	"prophet/internal/trace"
	"prophet/internal/uml"
	"prophet/internal/xmi"
)

// AgreementTolerance is the relative tolerance of the analytic/simulation
// agreement oracle. The two evaluations perform the same float additions
// in different orders, so they may differ by accumulated rounding, never
// by more than a few ulps per element.
const AgreementTolerance = 1e-9

// OracleResult is the outcome of one differential oracle on one entry.
type OracleResult struct {
	Entry  string `json:"entry"`
	Oracle string `json:"oracle"`
	Passed bool   `json:"passed"`
	// Detail explains a failure, or summarizes what was compared.
	Detail string `json:"detail,omitempty"`
}

// OracleNames lists the differential oracles in execution order.
func OracleNames() []string {
	return []string{
		"trace-makespan",
		"analytic-agreement",
		"analytic-agreement-stochastic",
		"parallel-identity",
		"run-vs-rununtil",
		"round-trip",
		"lowered-equivalence",
		"sharded-determinism",
	}
}

// RunOracles executes every differential oracle against an entry. Oracles
// that do not apply (analytic-agreement on non-analytic entries) report
// passed with an explanatory detail, so the matrix stays complete.
func RunOracles(e Entry) []OracleResult {
	return []OracleResult{
		traceMakespanOracle(e),
		analyticOracle(e),
		analyticStochasticOracle(e),
		parallelIdentityOracle(e),
		runUntilOracle(e),
		roundTripOracle(e),
		loweredEquivalenceOracle(e),
		shardedDeterminismOracle(e),
	}
}

func fail(e Entry, oracle, format string, args ...any) OracleResult {
	return OracleResult{Entry: e.Name, Oracle: oracle, Passed: false, Detail: fmt.Sprintf(format, args...)}
}

func pass(e Entry, oracle, format string, args ...any) OracleResult {
	return OracleResult{Entry: e.Name, Oracle: oracle, Passed: true, Detail: fmt.Sprintf(format, args...)}
}

// traceMakespanOracle checks that the reported makespan equals the time of
// the last trace event: the trace and the scalar prediction are two views
// of the same run and may not drift apart.
func traceMakespanOracle(e Entry) OracleResult {
	const name = "trace-makespan"
	est, err := core.New().Estimate(e.Request())
	if err != nil {
		return fail(e, name, "estimate: %v", err)
	}
	last := 0.0
	for _, ev := range est.Trace.Events {
		if ev.T > last {
			last = ev.T
		}
	}
	if last != est.Makespan {
		return fail(e, name, "last trace event at %g but makespan %g", last, est.Makespan)
	}
	return pass(e, name, "makespan %g matches trace", est.Makespan)
}

// analyticOracle compares the simulated makespan against the independent
// analytic flow walk for entries in the analytic subset.
func analyticOracle(e Entry) OracleResult {
	const name = "analytic-agreement"
	if !e.Analytic {
		return pass(e, name, "not in the analytic subset (skipped)")
	}
	want, err := AnalyticMakespan(e)
	if err != nil {
		return fail(e, name, "analytic walk: %v", err)
	}
	est, err := core.New().Estimate(e.Request())
	if err != nil {
		return fail(e, name, "estimate: %v", err)
	}
	if !withinTolerance(want, est.Makespan, AgreementTolerance) {
		return fail(e, name, "analytic %g vs simulated %g (rel tol %g)", want, est.Makespan, AgreementTolerance)
	}
	return pass(e, name, "analytic %g ≈ simulated %g", want, est.Makespan)
}

// analyticStochasticOracle compares the closed-form solver's makespan
// expectation against a Monte Carlo mean for entries in the analytic
// class with stochastic constructs (distribution costs, weighted
// decisions). The solver also gives the exact makespan variance, so the
// tolerance is CLT-derived: the MC sample mean over N seeds is
// approximately normal with std sqrt(Var/N), and five of those cover the
// fixed-seed estimate with margin to spare (the seeds never change, so a
// pass is deterministic).
func analyticStochasticOracle(e Entry) OracleResult {
	const name = "analytic-agreement-stochastic"
	res, err := analytic.Solve(e.Model, analytic.Config{
		Params:   e.Config.Params,
		Globals:  e.Config.Globals,
		MaxSteps: e.Config.MaxSteps,
	})
	if err != nil {
		return pass(e, name, "not in the closed-form class (skipped): %v", err)
	}
	if !res.Stochastic {
		return pass(e, name, "deterministic; covered by analytic-agreement (skipped)")
	}
	const runs = 400
	ms, err := estimator.New().MonteCarloMakespans(e.Request(), runs)
	if err != nil {
		return fail(e, name, "monte carlo: %v", err)
	}
	var sum float64
	for _, m := range ms {
		sum += m
	}
	mcMean := sum / float64(len(ms))
	tol := 5*math.Sqrt(res.Variance/float64(runs)) +
		AgreementTolerance*math.Max(math.Abs(mcMean), math.Abs(res.Mean))
	if math.Abs(mcMean-res.Mean) > tol {
		return fail(e, name, "analytic mean %g vs MC mean %g over %d runs (CLT tol %g, analytic var %g)",
			res.Mean, mcMean, runs, tol, res.Variance)
	}
	return pass(e, name, "analytic mean %g ≈ MC mean %g over %d runs (CLT tol %g)",
		res.Mean, mcMean, runs, tol)
}

// withinTolerance reports |a-b| <= tol * max(|a|,|b|), with exact equality
// required at zero.
func withinTolerance(a, b, tol float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= tol*scale
}

// parallelIdentityOracle runs a small Monte Carlo batch sequentially and
// with four workers: the distribution must be bit-identical, the
// determinism contract of the batch runner.
func parallelIdentityOracle(e Entry) OracleResult {
	const name = "parallel-identity"
	const runs = 6
	p := core.New()

	seq := e.Request()
	seq.Parallel = 1
	a, err := p.MonteCarlo(seq, runs)
	if err != nil {
		return fail(e, name, "sequential batch: %v", err)
	}
	par := e.Request()
	par.Parallel = 4
	b, err := p.MonteCarlo(par, runs)
	if err != nil {
		return fail(e, name, "parallel batch: %v", err)
	}
	if a.Mean != b.Mean || a.Std != b.Std || a.Min != b.Min || a.Max != b.Max {
		return fail(e, name, "sequential {mean %g std %g min %g max %g} != parallel {mean %g std %g min %g max %g}",
			a.Mean, a.Std, a.Min, a.Max, b.Mean, b.Std, b.Min, b.Max)
	}
	return pass(e, name, "%d runs bit-identical at 1 and 4 workers", runs)
}

// runUntilOracle simulates the entry once through Engine.Run and once
// through Engine.RunUntil(+Inf): draining the same event set through the
// bounded-run path must produce an identical trace and makespan.
func runUntilOracle(e Entry) OracleResult {
	const name = "run-vs-rununtil"
	prog, err := interp.Compile(e.Model, nil)
	if err != nil {
		return fail(e, name, "compile: %v", err)
	}
	base := interp.Config{
		Params:   e.Config.Params,
		Globals:  e.Config.Globals,
		Seed:     e.Config.Seed,
		MaxSteps: e.Config.MaxSteps,
	}
	run, err := prog.Run(base)
	if err != nil {
		return fail(e, name, "Run: %v", err)
	}
	bounded := base
	bounded.RunLimit = math.Inf(1)
	until, err := prog.Run(bounded)
	if err != nil {
		return fail(e, name, "RunUntil(+Inf): %v", err)
	}
	if run.Makespan != until.Makespan {
		return fail(e, name, "makespan %g (Run) != %g (RunUntil)", run.Makespan, until.Makespan)
	}
	at, bt := renderTrace(run.Trace), renderTrace(until.Trace)
	if at != bt {
		return fail(e, name, "traces differ:\n%s", firstDiffLine(at, bt))
	}
	return pass(e, name, "identical traces (%d events)", len(run.Trace.Events))
}

// loweredEquivalenceOracle runs the entry once on the tree-walking
// interpreter and once on the flat lowered program (internal/lower): the
// two backends must be bit-identical in every observable — makespan,
// trace bytes, final globals, per-node CPU utilization, and the derived
// summary. This is the contract that lets the estimator default to the
// lowered backend while keeping the interpreter as the reference
// semantics.
func loweredEquivalenceOracle(e Entry) OracleResult {
	const name = "lowered-equivalence"
	prog, err := interp.Compile(e.Model, nil)
	if err != nil {
		return fail(e, name, "compile: %v", err)
	}
	cfg := interp.Config{
		Params:   e.Config.Params,
		Globals:  e.Config.Globals,
		Seed:     e.Config.Seed,
		MaxSteps: e.Config.MaxSteps,
	}
	want, err := prog.Run(cfg)
	if err != nil {
		return fail(e, name, "interp run: %v", err)
	}
	got, err := lower.Lower(prog).Run(cfg)
	if err != nil {
		return fail(e, name, "lowered run: %v", err)
	}
	if want.Makespan != got.Makespan {
		return fail(e, name, "makespan %g (interp) != %g (lowered)", want.Makespan, got.Makespan)
	}
	at, bt := renderTrace(want.Trace), renderTrace(got.Trace)
	if at != bt {
		return fail(e, name, "traces differ:\n%s", firstDiffLine(at, bt))
	}
	if !reflect.DeepEqual(want.Globals, got.Globals) {
		return fail(e, name, "globals %v (interp) != %v (lowered)", want.Globals, got.Globals)
	}
	if !reflect.DeepEqual(want.CPUUtilization, got.CPUUtilization) {
		return fail(e, name, "cpu utilization %v (interp) != %v (lowered)", want.CPUUtilization, got.CPUUtilization)
	}
	ws, err := trace.Summarize(want.Trace)
	if err != nil {
		return fail(e, name, "summarize interp trace: %v", err)
	}
	gs, err := trace.Summarize(got.Trace)
	if err != nil {
		return fail(e, name, "summarize lowered trace: %v", err)
	}
	if !reflect.DeepEqual(ws, gs) {
		return fail(e, name, "summaries differ")
	}
	return pass(e, name, "backends bit-identical (%d events)", len(want.Trace.Events))
}

// roundTripOracle serializes the model, parses it back, and serializes
// again: the texts must reach a fixed point after one cycle and the
// structural diff between original and re-parsed model must be empty.
// Clone is held to the same standard, since diff and golden updates both
// rely on it.
func roundTripOracle(e Entry) OracleResult {
	const name = "round-trip"
	enc1, err := xmi.EncodeString(e.Model)
	if err != nil {
		return fail(e, name, "encode: %v", err)
	}
	decoded, err := xmi.Decode(strings.NewReader(enc1))
	if err != nil {
		return fail(e, name, "decode: %v", err)
	}
	enc2, err := xmi.EncodeString(decoded)
	if err != nil {
		return fail(e, name, "re-encode: %v", err)
	}
	if enc1 != enc2 {
		return fail(e, name, "serialization is not a fixed point:\n%s", firstDiffLine(enc1, enc2))
	}
	if changes := diff.Models(e.Model, decoded); len(changes) > 0 {
		return fail(e, name, "re-parsed model differs structurally:\n%s", diff.Format(changes))
	}
	if changes := diff.Models(e.Model, uml.Clone(e.Model)); len(changes) > 0 {
		return fail(e, name, "clone differs structurally:\n%s", diff.Format(changes))
	}
	return pass(e, name, "fixed point after one encode/decode cycle")
}

// shardedDeterminismOracle checks the decomposition contract a sharded
// prophetd deployment rests on: a Monte Carlo batch or a process sweep
// split into sub-ranges (runner.Split), evaluated with per-sub-range seed
// bases (runner.SubSeed), merged in range order, and folded once by the
// shared derivation must be bit-identical to the single-node evaluation —
// at shard counts 1, 2, and 4.
func shardedDeterminismOracle(e Entry) OracleResult {
	const name = "sharded-determinism"
	const runs = 6
	sweepCounts := []int{1, 2, 3, 4}
	est := estimator.New()

	req := e.Request()
	req.Parallel = 1
	wantMS, err := est.MonteCarloMakespans(req, runs)
	if err != nil {
		return fail(e, name, "single-node monte carlo: %v", err)
	}
	wantSum := estimator.SummarizeMakespans(wantMS)
	wantPts, err := est.SweepProcesses(req, sweepCounts)
	if err != nil {
		return fail(e, name, "single-node sweep: %v", err)
	}

	for _, shards := range []int{1, 2, 4} {
		merged := make([]float64, 0, runs)
		for _, rg := range runner.Split(runs, shards) {
			sub := req
			sub.Seed = runner.SubSeed(req.Seed, rg.Lo)
			ms, err := est.MonteCarloMakespans(sub, rg.Len())
			if err != nil {
				return fail(e, name, "%d-shard monte carlo range [%d,%d): %v", shards, rg.Lo, rg.Hi, err)
			}
			merged = append(merged, ms...)
		}
		if !reflect.DeepEqual(wantMS, merged) {
			return fail(e, name, "%d-shard makespans %v != single-node %v", shards, merged, wantMS)
		}
		if got := estimator.SummarizeMakespans(merged); *got != *wantSum {
			return fail(e, name, "%d-shard summary %+v != single-node %+v", shards, *got, *wantSum)
		}

		mergedPts := make([]estimator.SweepPoint, 0, len(sweepCounts))
		for _, rg := range runner.Split(len(sweepCounts), shards) {
			pts, err := est.SweepProcesses(req, sweepCounts[rg.Lo:rg.Hi])
			if err != nil {
				return fail(e, name, "%d-shard sweep range [%d,%d): %v", shards, rg.Lo, rg.Hi, err)
			}
			mergedPts = append(mergedPts, pts...)
		}
		estimator.DeriveSweepStats(mergedPts)
		if !reflect.DeepEqual(wantPts, mergedPts) {
			return fail(e, name, "%d-shard sweep %+v != single-node %+v", shards, mergedPts, wantPts)
		}
	}
	return pass(e, name, "%d MC runs and %d-point sweep bit-identical at 1/2/4 shards", runs, len(sweepCounts))
}

// renderTrace renders a trace to its file format, the exact representation
// the bit-identity contracts compare.
func renderTrace(tr *trace.Trace) string {
	var sb strings.Builder
	if err := trace.Write(&sb, tr); err != nil {
		return "unrenderable trace: " + err.Error()
	}
	return sb.String()
}

// firstDiffLine locates the first line where two texts diverge, for
// failure messages that point at the drift instead of dumping both texts.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  - %s\n  + %s", i+1, al[i], bl[i])
		}
	}
	if len(al) != len(bl) {
		return fmt.Sprintf("line counts differ: %d vs %d", len(al), len(bl))
	}
	return "texts are equal"
}
