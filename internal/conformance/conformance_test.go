package conformance

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"prophet/internal/xmi"
)

// TestCorpusCoverage pins the acceptance floor: at least 8 models, at
// least 3 of them from the adversarial XML corpus.
func TestCorpusCoverage(t *testing.T) {
	corpusDir, _, err := DefaultDirs()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := Corpus(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 8 {
		t.Errorf("corpus has %d entries, want >= 8", len(entries))
	}
	fromFiles := 0
	for _, e := range entries {
		if e.Source != "builtin" {
			fromFiles++
		}
	}
	if fromFiles < 3 {
		t.Errorf("corpus has %d file-based (adversarial) entries, want >= 3", fromFiles)
	}
}

// TestConformance is the tier-1 drift catcher: the full harness — golden
// comparison plus every differential oracle — over the committed corpus.
func TestConformance(t *testing.T) {
	rep, err := Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Entries {
		if r.Passed() {
			continue
		}
		if r.Error != "" {
			t.Errorf("%s: pipeline error: %s", r.Entry, r.Error)
		}
		for _, d := range r.Drifts {
			t.Errorf("golden drift: %s", d)
		}
		for _, o := range r.Oracles {
			if !o.Passed {
				t.Errorf("oracle %s/%s: %s", o.Entry, o.Oracle, o.Detail)
			}
		}
	}
	for _, name := range rep.StaleGolden {
		t.Errorf("stale golden dir %s has no corpus entry", name)
	}
	if want := len(OracleNames()); len(rep.Entries) > 0 {
		for _, r := range rep.Entries {
			if r.Error == "" && len(r.Oracles) != want {
				t.Errorf("%s: ran %d oracles, want %d", r.Entry, len(r.Oracles), want)
			}
		}
	}
}

// TestAdversarialCorpusPinned keeps the committed XML corpus and the
// in-code constructors in lockstep: regenerating an adversarial model must
// reproduce the committed file byte for byte.
func TestAdversarialCorpusPinned(t *testing.T) {
	corpusDir, _, err := DefaultDirs()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range AdversarialEntries() {
		var sb strings.Builder
		if err := xmi.Encode(&sb, e.Model); err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		committed, err := os.ReadFile(filepath.Join(corpusDir, e.Name+".xml"))
		if err != nil {
			t.Fatalf("%s: %v (run `go run ./cmd/conformance gen-corpus`)", e.Name, err)
		}
		if normalize(sb.String()) != string(committed) {
			t.Errorf("%s: committed XML differs from constructor output; run `go run ./cmd/conformance gen-corpus`", e.Name)
		}

		wantSC, err := json.Marshal(sidecarFor(e.Config, e.Analytic))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(filepath.Join(corpusDir, e.Name+".config.json"))
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		var got, want any
		if err := json.Unmarshal(raw, &got); err != nil {
			t.Fatalf("%s sidecar: %v", e.Name, err)
		}
		if err := json.Unmarshal(wantSC, &want); err != nil {
			t.Fatal(err)
		}
		var gb, wb bytes.Buffer
		json.NewEncoder(&gb).Encode(got)
		json.NewEncoder(&wb).Encode(want)
		if gb.String() != wb.String() {
			t.Errorf("%s: committed sidecar %s differs from constructor config %s", e.Name, gb.String(), wb.String())
		}
	}
}

// TestUpdateDeterministic regenerates goldens twice into a scratch
// directory: the second update must change nothing.
func TestUpdateDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every golden twice")
	}
	corpusDir, _, err := DefaultDirs()
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()
	opts := Options{CorpusDir: corpusDir, GoldenDir: scratch, Update: true, SkipOracles: true}
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	first := snapshotTree(t, scratch)
	if _, err := Run(opts); err != nil {
		t.Fatal(err)
	}
	second := snapshotTree(t, scratch)
	if len(first) == 0 {
		t.Fatal("update produced no files")
	}
	for path, a := range first {
		if b, ok := second[path]; !ok {
			t.Errorf("%s vanished on second update", path)
		} else if a != b {
			t.Errorf("%s changed on second update", path)
		}
	}
	for path := range second {
		if _, ok := first[path]; !ok {
			t.Errorf("%s appeared on second update", path)
		}
	}
}

func snapshotTree(t *testing.T, root string) map[string]string {
	t.Helper()
	files := map[string]string{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		files[rel] = string(raw)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestAnalyticWalker checks the walker against a hand-computed makespan of
// the paper's sample model: A1 sets GV=10 and P=4 before charging
// FA1()=0.5+2*4, the decision takes the GV>0 branch into SA
// (FSA1=5, FSA2=0.1*(pid+1) with pid 0), then A4 charges 1+P.
func TestAnalyticWalker(t *testing.T) {
	for _, e := range Builtins() {
		if e.Name != "sample" {
			continue
		}
		got, err := AnalyticMakespan(e)
		if err != nil {
			t.Fatal(err)
		}
		want := 8.5 + 5 + 0.1 + 5
		if !withinTolerance(got, want, AgreementTolerance) {
			t.Errorf("analytic makespan of sample = %g, want %g", got, want)
		}
		return
	}
	t.Fatal("sample entry not found")
}

// TestRunOnlyFilter exercises the -only selection including the
// unknown-name error path.
func TestRunOnlyFilter(t *testing.T) {
	rep, err := Run(Options{Only: []string{"kernel6"}, SkipOracles: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 1 || rep.Entries[0].Entry != "kernel6" {
		t.Fatalf("Only filter returned %d entries, want exactly kernel6", len(rep.Entries))
	}
	if _, err := Run(Options{Only: []string{"no-such-model"}}); err == nil {
		t.Fatal("unknown entry name did not error")
	}
}

// TestNormalize pins the artifact canonicalization rules.
func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a\r\nb", "a\nb\n"},
		{"a\n\n\n", "a\n"},
		{"", "(empty)\n"},
		{"x", "x\n"},
	}
	for _, c := range cases {
		if got := normalize(c.in); got != c.want {
			t.Errorf("normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
