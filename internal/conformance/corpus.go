package conformance

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"prophet/internal/builder"
	"prophet/internal/machine"
	"prophet/internal/modelgen"
	"prophet/internal/samples"
	"prophet/internal/uml"
	"prophet/internal/xmi"
)

// Builtins returns the corpus entries built from the models the repository
// already ships — the paper's sample program, the Livermore kernel 6 pair,
// a synthetic transformation-benchmark model, and the example programs —
// each with a fixed, golden-friendly evaluation configuration (small
// problem sizes keep the committed traces small).
func Builtins() []Entry {
	entries := []Entry{
		{
			Name:  "sample",
			Model: samples.Sample(),
			// The paper's Figure 7/8 model: GV and P are set by A1's code
			// fragment, so no globals are needed.
			Analytic: true,
		},
		{
			Name:     "kernel6",
			Model:    samples.Kernel6(),
			Config:   EvalConfig{Globals: map[string]float64{"N": 64, "M": 4, "c": 1e-6}},
			Analytic: true,
		},
		{
			Name:     "kernel6-detailed",
			Model:    samples.Kernel6Detailed(),
			Config:   EvalConfig{Globals: map[string]float64{"N": 8, "M": 2, "c": 1e-6}},
			Analytic: true,
		},
		{
			Name:     "synthetic-3x4",
			Model:    samples.Synthetic(3, 4),
			Config:   EvalConfig{Globals: map[string]float64{"P": 1}},
			Analytic: true,
		},
		{
			Name:  "jacobi",
			Model: samples.Jacobi(),
			Config: EvalConfig{
				Params:  machine.SystemParams{Nodes: 2, ProcessorsPerNode: 2, Processes: 4, Threads: 1},
				Globals: map[string]float64{"n": 64, "iters": 3, "flop": 1e-8},
			},
		},
		{
			Name:  "omp-region",
			Model: samples.OmpRegion(),
			Config: EvalConfig{
				Params:  machine.SystemParams{Nodes: 1, ProcessorsPerNode: 4, Processes: 1, Threads: 4},
				Globals: map[string]float64{"work": 1, "critical": 0.1},
			},
		},
		{
			Name:  "pipeline-4",
			Model: samples.Pipeline(4),
			Config: EvalConfig{
				Params:  machine.SystemParams{Nodes: 2, ProcessorsPerNode: 1, Processes: 2, Threads: 1},
				Globals: map[string]float64{"work": 0.5},
			},
		},
		{
			Name:   "query-mix",
			Model:  QueryMix(50),
			Config: EvalConfig{Globals: map[string]float64{"hitCost": 100e-6, "missCost": 10e-3}, Seed: 7},
		},
		{
			Name:   "stochastic-service",
			Model:  StochasticService(20),
			Config: EvalConfig{Globals: map[string]float64{"scale": 1}, Seed: 11},
		},
		{
			Name:   "stochastic-batch",
			Model:  StochasticBatch(),
			Config: EvalConfig{Seed: 13},
		},
	}
	for i := range entries {
		entries[i].Source = "builtin"
	}
	return entries
}

// QueryMix builds the weighted-branch model of examples/stochastic: a
// query loop where each lookup hits a fast cache with probability 0.85 and
// falls through to slow storage otherwise. The decision carries branch
// weights, so evaluation is seed-dependent — the corpus pins the seed.
func QueryMix(queries int) *uml.Model {
	b := builder.New("query-mix")
	b.Global("hitCost", "double").
		Global("missCost", "double")

	d := b.Diagram("main")
	d.Initial()
	d.Loop("Queries", fmt.Sprint(queries), "one").Var("q").Tag("id", "1")
	d.Final()
	d.Chain("initial", "Queries", "final")

	one := b.Diagram("one")
	one.Initial()
	one.Decision("cache")
	one.Action("Hit").Cost("hitCost").Tag("id", "2")
	one.Action("Miss").Cost("missCost").Tag("id", "3")
	one.Merge("done")
	one.Final()
	one.Flow("initial", "cache").
		FlowWeighted("cache", "Hit", 0.85).
		FlowWeighted("cache", "Miss", 0.15).
		Flow("Hit", "done").
		Flow("Miss", "done").
		Flow("done", "final")

	return builder.MustBuild(b)
}

// StochasticService builds the distribution-literal model of the
// stochastic tagged-value extension: a job loop where each job draws its
// stage costs from all four distribution families — exponential fetch,
// zero-truncated normal processing, uniform write-back, and an empirical
// RPC latency mix. Every draw consumes the engine's seed stream, so the
// corpus pins the seed; the analytic solver predicts the exact makespan
// mean and variance, which the analytic-agreement-stochastic oracle
// checks against the Monte Carlo mean.
func StochasticService(jobs int) *uml.Model {
	b := builder.New("stochastic-service")
	b.Global("scale", "double")

	d := b.Diagram("main")
	d.Initial()
	d.Loop("Jobs", fmt.Sprint(jobs), "job").Var("j").Tag("id", "1")
	d.Final()
	d.Chain("initial", "Jobs", "final")

	job := b.Diagram("job")
	job.Initial()
	job.Action("Fetch").Cost("exp(0.002*scale)").Tag("id", "2")
	// mu/sigma = 2.5: the truncation at zero carries real probability
	// mass, so the censored-moment formulas are actually exercised.
	job.Action("Process").Cost("normal(0.005, 0.002)").Tag("id", "3")
	job.Action("Write").Cost("uniform(0.001, 0.003)").Tag("id", "4")
	job.Action("Rpc").Cost("empirical(0.001, 0.004, 0.01)").Tag("id", "5")
	job.Final()
	job.Chain("initial", "Fetch", "Process", "Write", "Rpc", "final")

	return builder.MustBuild(b)
}

// StochasticBatch builds a model whose loop count itself is a draw
// (empirical batch sizes): outside the closed-form analytic class — a
// random sum — but exactly reproducible on both simulation backends,
// which is what the lowered-equivalence oracle pins.
func StochasticBatch() *uml.Model {
	b := builder.New("stochastic-batch")

	d := b.Diagram("main")
	d.Initial()
	d.Loop("Batch", "empirical(3, 5, 8)", "item").Var("i").Tag("id", "1")
	d.Final()
	d.Chain("initial", "Batch", "final")

	item := b.Diagram("item")
	item.Initial()
	item.Action("Work").Cost("exp(0.01)").Tag("id", "2")
	item.Final()
	item.Chain("initial", "Work", "final")

	return builder.MustBuild(b)
}

// fileConfig is the JSON sidecar (<model>.config.json) that fixes the
// evaluation of an XML corpus model.
type fileConfig struct {
	Nodes             int                `json:"nodes,omitempty"`
	ProcessorsPerNode int                `json:"processorsPerNode,omitempty"`
	Processes         int                `json:"processes,omitempty"`
	Threads           int                `json:"threads,omitempty"`
	Globals           map[string]float64 `json:"globals,omitempty"`
	Seed              int64              `json:"seed,omitempty"`
	MaxSteps          int                `json:"maxSteps,omitempty"`
	Analytic          bool               `json:"analytic,omitempty"`
}

func (fc fileConfig) eval() EvalConfig {
	return EvalConfig{
		Params: machine.SystemParams{
			Nodes:             fc.Nodes,
			ProcessorsPerNode: fc.ProcessorsPerNode,
			Processes:         fc.Processes,
			Threads:           fc.Threads,
		},
		Globals:  fc.Globals,
		Seed:     fc.Seed,
		MaxSteps: fc.MaxSteps,
	}
}

func sidecarFor(cfg EvalConfig, analytic bool) fileConfig {
	return fileConfig{
		Nodes:             cfg.Params.Nodes,
		ProcessorsPerNode: cfg.Params.ProcessorsPerNode,
		Processes:         cfg.Params.Processes,
		Threads:           cfg.Params.Threads,
		Globals:           cfg.Globals,
		Seed:              cfg.Seed,
		MaxSteps:          cfg.MaxSteps,
		Analytic:          analytic,
	}
}

// genConfig is the JSON sidecar (<name>.gen.json) that commits a corpus
// entry as its modelgen parameters instead of raw XMI. The generator is
// deterministic per seed, so the few-line sidecar pins the same model a
// multi-megabyte XML file would, which is how the scalability-regime
// entries (≥10⁴ nodes) stay reviewable. Entries loaded this way always
// use digest goldens (see Entry.DigestGolden).
type genConfig struct {
	Gen    modelgen.Params `json:"gen"`
	Config fileConfig      `json:"config"`
}

// LoadCorpusDir reads every *.xml model under dir (XMI documents), pairing
// each with its optional <base>.config.json sidecar, plus every
// *.gen.json generated-model sidecar. A missing directory yields an empty
// corpus, not an error, so fresh checkouts work before gen-corpus has
// run.
func LoadCorpusDir(dir string) ([]Entry, error) {
	names, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("conformance: corpus dir: %w", err)
	}
	var entries []Entry
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		if strings.HasSuffix(de.Name(), ".gen.json") {
			path := filepath.Join(dir, de.Name())
			raw, err := os.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("conformance: %s: %w", path, err)
			}
			var gc genConfig
			if err := json.Unmarshal(raw, &gc); err != nil {
				return nil, fmt.Errorf("conformance: %s: %w", path, err)
			}
			m, err := modelgen.Generate(gc.Gen)
			if err != nil {
				return nil, fmt.Errorf("conformance: %s: %w", path, err)
			}
			entries = append(entries, Entry{
				Name:         strings.TrimSuffix(de.Name(), ".gen.json"),
				Source:       path,
				Model:        m,
				Config:       gc.Config.eval(),
				Analytic:     gc.Config.Analytic,
				DigestGolden: true,
			})
			continue
		}
		if !strings.HasSuffix(de.Name(), ".xml") {
			continue
		}
		path := filepath.Join(dir, de.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", path, err)
		}
		m, err := xmi.Decode(strings.NewReader(string(raw)))
		if err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", path, err)
		}
		e := Entry{
			Name:   strings.TrimSuffix(de.Name(), ".xml"),
			Source: path,
			Model:  m,
		}
		scPath := strings.TrimSuffix(path, ".xml") + ".config.json"
		if sc, err := os.ReadFile(scPath); err == nil {
			var fc fileConfig
			if err := json.Unmarshal(sc, &fc); err != nil {
				return nil, fmt.Errorf("conformance: %s: %w", scPath, err)
			}
			e.Config = fc.eval()
			e.Analytic = fc.Analytic
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("conformance: %s: %w", scPath, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Corpus returns the full conformance corpus: the built-in entries plus
// every model committed under corpusDir, sorted by name. File entries
// shadow built-ins of the same name so a committed model can pin down a
// built-in's serialized form.
func Corpus(corpusDir string) ([]Entry, error) {
	fromFiles, err := LoadCorpusDir(corpusDir)
	if err != nil {
		return nil, err
	}
	byName := map[string]Entry{}
	for _, e := range Builtins() {
		byName[e.Name] = e
	}
	for _, e := range fromFiles {
		byName[e.Name] = e
	}
	entries := make([]Entry, 0, len(byName))
	for _, e := range byName {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	return entries, nil
}

// WriteCorpusEntry serializes an entry's model and evaluation sidecar into
// dir, producing <name>.xml and <name>.config.json. Used by gen-corpus to
// materialize the adversarial models.
func WriteCorpusEntry(dir string, e Entry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var sb strings.Builder
	if err := xmi.Encode(&sb, e.Model); err != nil {
		return fmt.Errorf("conformance: encode %s: %w", e.Name, err)
	}
	if err := os.WriteFile(filepath.Join(dir, e.Name+".xml"), []byte(normalize(sb.String())), 0o644); err != nil {
		return err
	}
	sc, err := json.MarshalIndent(sidecarFor(e.Config, e.Analytic), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, e.Name+".config.json"), append(sc, '\n'), 0o644)
}
