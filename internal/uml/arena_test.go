package uml

import (
	"strconv"
	"testing"
)

// buildSized populates a model with hint-many elements through the public
// factories, exactly as xmi decode does.
func buildSized(t *testing.T, m *Model, actions, edges int) *Diagram {
	t.Helper()
	d, err := m.AddDiagram("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddControl(d, "", KindInitial); err != nil {
		t.Fatal(err)
	}
	prev := "e1"
	for i := 0; i < actions; i++ {
		a, err := m.AddAction(d, "", "A"+strconv.Itoa(i))
		if err != nil {
			t.Fatal(err)
		}
		a.SetStereotype("action+")
		if edges > 0 {
			if _, err := d.Connect(prev, a.ID(), ""); err != nil {
				t.Fatal(err)
			}
			edges--
		}
		prev = a.ID()
	}
	return d
}

func TestPreallocateSlabAllocation(t *testing.T) {
	m := NewModel("slab")
	m.Preallocate(SizeHint{Diagrams: 1, Actions: 8, Controls: 1, Edges: 8})
	d := buildSized(t, m, 8, 8)

	// All eight actions must live in one contiguous slab: handing out
	// &slab[i] pointers means consecutive nodes are exactly one element
	// apart in memory, and addNode must have registered those same
	// pointers (no copies).
	if got := len(m.arena.actions); got != 8 {
		t.Fatalf("slab holds %d actions, want 8", got)
	}
	for i := range m.arena.actions {
		want := &m.arena.actions[i]
		if got := d.Node(want.ID()); got != Node(want) {
			t.Fatalf("action %d: diagram holds %p, slab holds %p", i, got, want)
		}
	}
}

func TestArenaFallbackPastCapacity(t *testing.T) {
	m := NewModel("overflow")
	m.Preallocate(SizeHint{Diagrams: 1, Actions: 2, Controls: 1, Edges: 2})
	d := buildSized(t, m, 6, 2) // four actions past the slab cap

	if got := len(m.arena.actions); got != 2 {
		t.Fatalf("slab grew to %d, want it pinned at cap 2", got)
	}
	if got := len(d.Nodes()); got != 7 {
		t.Fatalf("diagram has %d nodes, want 7", got)
	}
	// Slab pointers must not have moved when the overflow happened.
	if got := d.Node(m.arena.actions[0].ID()); got != Node(&m.arena.actions[0]) {
		t.Fatal("slab pointer invalidated by overflow allocation")
	}
}

func TestUnpreallocatedModelStillWorks(t *testing.T) {
	m := NewModel("plain")
	d := buildSized(t, m, 4, 4)
	if got := len(d.Nodes()); got != 5 {
		t.Fatalf("got %d nodes, want 5", got)
	}
	if m.arena != nil {
		t.Fatal("arena materialized without Preallocate")
	}
}

func TestDiagramByNameIndexSurvivesRename(t *testing.T) {
	m := NewModel("renames")
	d1, err := m.AddDiagram("first")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddDiagram("second"); err != nil {
		t.Fatal(err)
	}
	if got := m.DiagramByName("first"); got != d1 {
		t.Fatal("indexed lookup missed first")
	}
	d1.SetName("renamed")
	if got := m.DiagramByName("first"); got != nil {
		t.Fatalf("stale index returned %q for old name", got.Name())
	}
	if got := m.DiagramByName("renamed"); got != d1 {
		t.Fatal("fallback scan missed renamed diagram")
	}
	// The repaired index must answer again without a scan being needed.
	if got := m.byName["renamed"]; got != d1 {
		t.Fatal("fallback did not repair the index")
	}
}

func TestReserveKeepsExistingElements(t *testing.T) {
	m := NewModel("reserve")
	d, err := m.AddDiagram("main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddControl(d, "", KindInitial); err != nil {
		t.Fatal(err)
	}
	d.Reserve(100, 100)
	if got := len(d.Nodes()); got != 1 {
		t.Fatalf("Reserve dropped nodes: %d, want 1", got)
	}
	if cap(d.nodes) < 101 {
		t.Fatalf("node capacity %d, want >= 101", cap(d.nodes))
	}
}
