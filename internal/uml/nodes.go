package uml

// Node is a node of an activity diagram. Every node belongs to exactly one
// diagram.
type Node interface {
	Element
	// Diagram returns the diagram that owns the node.
	Diagram() *Diagram
	setDiagram(*Diagram)
}

// nodeBase implements the Node bookkeeping shared by all node types.
type nodeBase struct {
	base
	diagram *Diagram
}

func (n *nodeBase) Diagram() *Diagram     { return n.diagram }
func (n *nodeBase) setDiagram(d *Diagram) { n.diagram = d }

// ActionNode models a single-entry single-exit code region (paper,
// Section 2.1: "We are using <<action+>> to model various types of
// single-entry single-exit code regions"). An action is not further
// decomposed into other elements.
type ActionNode struct {
	nodeBase
	// Code is the code fragment associated with the element (paper,
	// Figure 7b). It is inlined verbatim into the generated C++ before the
	// element's execute() call.
	Code string
	// CostFunc is the cost-function call expression associated with the
	// element (paper, Figure 7c), e.g. "FA1()" or "FSA2(pid)". It models
	// the execution time of the represented code block.
	CostFunc string
}

// ActivityNode models a composite code region: while an action is not
// further decomposed, an activity contains a set of elements described by a
// separate activity diagram (paper, Section 4, activity SA).
type ActivityNode struct {
	nodeBase
	// Body is the name of the diagram that describes the activity content.
	Body string
	// Code and CostFunc play the same role as on ActionNode: an activity
	// may carry its own associated fragment or aggregate cost function.
	Code     string
	CostFunc string
}

// ControlNode is a pure routing node: initial, final, decision, merge, fork
// or join. Its Kind discriminates the variant.
type ControlNode struct {
	nodeBase
}

// LoopNode models a counted repetition of a body diagram. It corresponds to
// the loop annotations of the paper's Figure 3b ([L = 1,M] etc.): the body
// is executed Count times. Count is an expression evaluated in the model
// environment.
type LoopNode struct {
	nodeBase
	// Count is the iteration-count expression, e.g. "M" or "N-1".
	Count string
	// Body is the name of the diagram holding the loop body.
	Body string
	// Var is the optional loop variable name made visible to the body.
	Var string
}

// Edge is a control flow between two nodes of the same diagram. Guard is an
// optional boolean expression; the distinguished guard "else" marks the
// default branch out of a decision node (mapped to the trailing `else` of
// the generated if/else-if chain, paper Figure 8b).
type Edge struct {
	base
	from  string // node ID
	to    string // node ID
	Guard string
	// Weight optionally biases probabilistic branch selection when the
	// model is evaluated without concrete variable values.
	Weight  float64
	diagram *Diagram
}

// From returns the source node ID.
func (e *Edge) From() string { return e.from }

// To returns the target node ID.
func (e *Edge) To() string { return e.to }

// Diagram returns the diagram that owns the edge.
func (e *Edge) Diagram() *Diagram { return e.diagram }

// IsElse reports whether the edge carries the distinguished "else" guard.
func (e *Edge) IsElse() bool { return e.Guard == "else" }
