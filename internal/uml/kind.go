package uml

import "fmt"

// Kind classifies a model element. The set of kinds covers the activity
// diagram subset of UML 2.0 that the performance profile builds on: action
// and structured-activity nodes, the control nodes (initial, final,
// decision, merge, fork, join), loop nodes (expansion regions in the paper's
// Figure 3b), control-flow edges, diagrams and the model root itself.
type Kind int

const (
	KindInvalid Kind = iota
	KindModel
	KindDiagram
	KindAction
	KindActivity
	KindInitial
	KindFinal
	KindDecision
	KindMerge
	KindFork
	KindJoin
	KindLoop
	KindEdge
)

var kindNames = [...]string{
	KindInvalid:  "Invalid",
	KindModel:    "Model",
	KindDiagram:  "Diagram",
	KindAction:   "Action",
	KindActivity: "Activity",
	KindInitial:  "InitialNode",
	KindFinal:    "FinalNode",
	KindDecision: "DecisionNode",
	KindMerge:    "MergeNode",
	KindFork:     "ForkNode",
	KindJoin:     "JoinNode",
	KindLoop:     "LoopNode",
	KindEdge:     "ControlFlow",
}

// String returns the UML metaclass-style name of the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// KindFromName is the inverse of Kind.String. It returns KindInvalid for
// unknown names.
func KindFromName(name string) Kind {
	for k, n := range kindNames {
		if n == name && Kind(k) != KindInvalid {
			return Kind(k)
		}
	}
	return KindInvalid
}

// IsNode reports whether the kind is an activity-diagram node (as opposed to
// an edge, diagram or the model root).
func (k Kind) IsNode() bool {
	switch k {
	case KindAction, KindActivity, KindInitial, KindFinal, KindDecision,
		KindMerge, KindFork, KindJoin, KindLoop:
		return true
	}
	return false
}

// IsControl reports whether the kind is a pure control node: it routes the
// flow of execution but does not itself consume simulated time.
func (k Kind) IsControl() bool {
	switch k {
	case KindInitial, KindFinal, KindDecision, KindMerge, KindFork, KindJoin:
		return true
	}
	return false
}
