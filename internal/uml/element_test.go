package uml

import (
	"testing"
	"testing/quick"
)

func TestTaggedValues(t *testing.T) {
	m := NewModel("s")
	d, _ := m.AddDiagram("main")
	a, _ := m.AddAction(d, "", "A1")

	if _, ok := a.Tag("id"); ok {
		t.Errorf("unset tag should not exist")
	}
	a.SetTag("type", "SAMPLE")
	a.SetTag("id", "1")
	a.SetTag("time", "10")
	if v, ok := a.Tag("type"); !ok || v != "SAMPLE" {
		t.Errorf("Tag(type) = %q, %v", v, ok)
	}

	tags := a.Tags()
	if len(tags) != 3 {
		t.Fatalf("Tags() len = %d, want 3", len(tags))
	}
	// sorted by name: id, time, type
	if tags[0].Name != "id" || tags[1].Name != "time" || tags[2].Name != "type" {
		t.Errorf("Tags() not sorted: %v", tags)
	}

	a.DeleteTag("type")
	if _, ok := a.Tag("type"); ok {
		t.Errorf("DeleteTag did not remove tag")
	}
	a.DeleteTag("never-set") // must not panic
}

func TestTypedTagAccessors(t *testing.T) {
	m := NewModel("s")
	d, _ := m.AddDiagram("main")
	a, _ := m.AddAction(d, "", "A1")

	SetTagFloat(a, "time", 10.5)
	if v, ok := TagFloat(a, "time"); !ok || v != 10.5 {
		t.Errorf("TagFloat = %v, %v", v, ok)
	}
	SetTagInt(a, "id", 7)
	if v, ok := TagInt(a, "id"); !ok || v != 7 {
		t.Errorf("TagInt = %v, %v", v, ok)
	}
	if _, ok := TagFloat(a, "missing"); ok {
		t.Errorf("TagFloat on missing tag should report false")
	}
	a.SetTag("junk", "not-a-number")
	if _, ok := TagFloat(a, "junk"); ok {
		t.Errorf("TagFloat on non-numeric tag should report false")
	}
	if _, ok := TagInt(a, "junk"); ok {
		t.Errorf("TagInt on non-numeric tag should report false")
	}
}

func TestConstraints(t *testing.T) {
	m := NewModel("s")
	d, _ := m.AddDiagram("main")
	a, _ := m.AddAction(d, "", "A1")
	if len(a.Constraints()) != 0 {
		t.Errorf("new element should have no constraints")
	}
	a.AddConstraint("time >= 0")
	a.AddConstraint("id > 0")
	cs := a.Constraints()
	if len(cs) != 2 || cs[0] != "time >= 0" {
		t.Errorf("Constraints = %v", cs)
	}
	// The returned slice is a copy: mutating it must not affect the element.
	cs[0] = "mutated"
	if a.Constraints()[0] != "time >= 0" {
		t.Errorf("Constraints() must return a defensive copy")
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	kinds := []Kind{KindModel, KindDiagram, KindAction, KindActivity,
		KindInitial, KindFinal, KindDecision, KindMerge, KindFork,
		KindJoin, KindLoop, KindEdge}
	for _, k := range kinds {
		if got := KindFromName(k.String()); got != k {
			t.Errorf("KindFromName(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if KindFromName("Bogus") != KindInvalid {
		t.Errorf("unknown kind name should map to KindInvalid")
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("out-of-range Kind.String = %q", got)
	}
}

func TestKindPredicates(t *testing.T) {
	if !KindAction.IsNode() || !KindLoop.IsNode() {
		t.Errorf("actions and loops are nodes")
	}
	if KindEdge.IsNode() || KindDiagram.IsNode() || KindModel.IsNode() {
		t.Errorf("edges, diagrams and models are not nodes")
	}
	if !KindDecision.IsControl() || !KindInitial.IsControl() {
		t.Errorf("decision and initial are control nodes")
	}
	if KindAction.IsControl() || KindActivity.IsControl() {
		t.Errorf("actions and activities are not control nodes")
	}
}

// Property: SetTag/Tag behaves like a map for arbitrary key/value strings.
func TestQuickTagRoundTrip(t *testing.T) {
	m := NewModel("s")
	d, _ := m.AddDiagram("main")
	a, _ := m.AddAction(d, "", "A1")
	f := func(key, value string) bool {
		a.SetTag(key, value)
		got, ok := a.Tag(key)
		return ok && got == value
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SetTagFloat/TagFloat round-trips every finite float64.
func TestQuickTagFloatRoundTrip(t *testing.T) {
	m := NewModel("s")
	d, _ := m.AddDiagram("main")
	a, _ := m.AddAction(d, "", "A1")
	f := func(v float64) bool {
		if v != v { // NaN never round-trips by ==; skip
			return true
		}
		SetTagFloat(a, "t", v)
		got, ok := TagFloat(a, "t")
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
