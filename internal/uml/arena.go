package uml

// SizeHint tells a model how many elements of each kind it is about to
// receive so containers can be sized once and nodes handed out from
// contiguous slabs instead of individual heap allocations. Decoding a
// 100k-node XMI document without a hint performs one allocation per node
// plus repeated map and slice growth; with a hint the element table, the
// diagram list, and the per-kind slabs are allocated exactly once.
type SizeHint struct {
	Diagrams   int
	Actions    int
	Activities int
	Loops      int
	Controls   int
	Edges      int
}

// nodes returns the total node count implied by the hint.
func (h SizeHint) nodes() int {
	return h.Actions + h.Activities + h.Loops + h.Controls
}

// arena hands out elements from fixed-capacity slabs. Each alloc extends a
// slab only while len < cap — an append within capacity never moves the
// backing array, so previously returned pointers stay valid — and falls
// back to individual allocation once a slab is exhausted. A nil arena is
// valid and always falls back.
type arena struct {
	actions    []ActionNode
	activities []ActivityNode
	loops      []LoopNode
	controls   []ControlNode
	edges      []Edge
}

func (a *arena) action() *ActionNode {
	if a != nil && len(a.actions) < cap(a.actions) {
		a.actions = a.actions[:len(a.actions)+1]
		return &a.actions[len(a.actions)-1]
	}
	return &ActionNode{}
}

func (a *arena) activity() *ActivityNode {
	if a != nil && len(a.activities) < cap(a.activities) {
		a.activities = a.activities[:len(a.activities)+1]
		return &a.activities[len(a.activities)-1]
	}
	return &ActivityNode{}
}

func (a *arena) loop() *LoopNode {
	if a != nil && len(a.loops) < cap(a.loops) {
		a.loops = a.loops[:len(a.loops)+1]
		return &a.loops[len(a.loops)-1]
	}
	return &LoopNode{}
}

func (a *arena) control() *ControlNode {
	if a != nil && len(a.controls) < cap(a.controls) {
		a.controls = a.controls[:len(a.controls)+1]
		return &a.controls[len(a.controls)-1]
	}
	return &ControlNode{}
}

func (a *arena) edge() *Edge {
	if a != nil && len(a.edges) < cap(a.edges) {
		a.edges = a.edges[:len(a.edges)+1]
		return &a.edges[len(a.edges)-1]
	}
	return &Edge{}
}

// Preallocate prepares the model for the given element counts: per-kind
// node slabs, a pre-sized element table, and diagram-list capacity. It is
// cheap to call on a fresh model (existing elements are preserved) and
// undercounting is safe — exhausted slabs fall back to one-off allocation.
func (m *Model) Preallocate(h SizeHint) {
	m.arena = &arena{
		actions:    make([]ActionNode, 0, h.Actions),
		activities: make([]ActivityNode, 0, h.Activities),
		loops:      make([]LoopNode, 0, h.Loops),
		controls:   make([]ControlNode, 0, h.Controls),
		edges:      make([]Edge, 0, h.Edges),
	}
	total := 1 + h.Diagrams + h.nodes() + h.Edges
	if total > len(m.byID) {
		byID := make(map[string]Element, total)
		for k, v := range m.byID {
			byID[k] = v
		}
		m.byID = byID
	}
	if m.byName == nil {
		m.byName = make(map[string]*Diagram, h.Diagrams)
	}
	if free := cap(m.diagrams) - len(m.diagrams); free < h.Diagrams {
		grown := make([]*Diagram, len(m.diagrams), len(m.diagrams)+h.Diagrams)
		copy(grown, m.diagrams)
		m.diagrams = grown
	}
}

// Reserve sizes the diagram's node and edge containers for the given
// counts, avoiding incremental map and slice growth while the diagram is
// populated. Like Preallocate, undercounting is safe.
func (d *Diagram) Reserve(nodes, edges int) {
	if nodes > 0 {
		if d.nodesByID == nil {
			d.nodesByID = make(map[string]Node, nodes)
		}
		if free := cap(d.nodes) - len(d.nodes); free < nodes {
			grown := make([]Node, len(d.nodes), len(d.nodes)+nodes)
			copy(grown, d.nodes)
			d.nodes = grown
		}
	}
	if edges > 0 {
		if d.outgoing == nil {
			d.outgoing = make(map[string][]*Edge, nodes)
			d.incoming = make(map[string][]*Edge, nodes)
		}
		if free := cap(d.edges) - len(d.edges); free < edges {
			grown := make([]*Edge, len(d.edges), len(d.edges)+edges)
			copy(grown, d.edges)
			d.edges = grown
		}
	}
}
