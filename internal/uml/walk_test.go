package uml

import (
	"errors"
	"testing"
)

// buildSampleModel constructs the paper's sample model (Figure 7a): a main
// activity with A1, a decision on GV leading to either activity SA (with
// SA1, SA2) or action A2, merging into A4.
func buildSampleModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel("sample")
	m.AddVariable(Variable{Name: "GV", Type: "double", Scope: ScopeGlobal})
	m.AddVariable(Variable{Name: "P", Type: "double", Scope: ScopeGlobal})
	m.AddFunction(Function{Name: "FA1", Body: "2*P"})
	m.AddFunction(Function{Name: "FA2", Body: "3*P"})
	m.AddFunction(Function{Name: "FA4", Body: "P"})
	m.AddFunction(Function{Name: "FSA1", Body: "5"})
	m.AddFunction(Function{Name: "FSA2", Params: []Param{{Name: "pid", Type: "int"}}, Body: "pid+1"})

	main, err := m.AddDiagram("main")
	if err != nil {
		t.Fatal(err)
	}
	ini, _ := m.AddControl(main, "", KindInitial)
	a1, _ := m.AddAction(main, "", "A1")
	a1.SetStereotype("action+")
	a1.CostFunc = "FA1()"
	dec, _ := m.AddControl(main, "", KindDecision)
	sa, _ := m.AddActivity(main, "", "SA", "SA")
	sa.SetStereotype("activity+")
	a2, _ := m.AddAction(main, "", "A2")
	a2.SetStereotype("action+")
	a2.CostFunc = "FA2()"
	mer, _ := m.AddControl(main, "", KindMerge)
	a4, _ := m.AddAction(main, "", "A4")
	a4.SetStereotype("action+")
	a4.CostFunc = "FA4()"
	fin, _ := m.AddControl(main, "", KindFinal)
	main.Connect(ini.ID(), a1.ID(), "")
	main.Connect(a1.ID(), dec.ID(), "")
	main.Connect(dec.ID(), sa.ID(), "GV > 0")
	main.Connect(dec.ID(), a2.ID(), "else")
	main.Connect(sa.ID(), mer.ID(), "")
	main.Connect(a2.ID(), mer.ID(), "")
	main.Connect(mer.ID(), a4.ID(), "")
	main.Connect(a4.ID(), fin.ID(), "")

	sub, err := m.AddDiagram("SA")
	if err != nil {
		t.Fatal(err)
	}
	si, _ := m.AddControl(sub, "", KindInitial)
	sa1, _ := m.AddAction(sub, "", "SA1")
	sa1.SetStereotype("action+")
	sa1.CostFunc = "FSA1()"
	sa2, _ := m.AddAction(sub, "", "SA2")
	sa2.SetStereotype("action+")
	sa2.CostFunc = "FSA2(pid)"
	sf, _ := m.AddControl(sub, "", KindFinal)
	sub.Connect(si.ID(), sa1.ID(), "")
	sub.Connect(sa1.ID(), sa2.ID(), "")
	sub.Connect(sa2.ID(), sf.ID(), "")
	return m
}

func TestWalkVisitsEverything(t *testing.T) {
	m := buildSampleModel(t)
	var kinds = map[Kind]int{}
	count := 0
	err := Walk(m, func(e Element) error {
		kinds[e.Kind()]++
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	want := 1 + s.Diagrams + s.Nodes + s.Edges
	if count != want {
		t.Errorf("Walk visited %d elements, want %d", count, want)
	}
	if kinds[KindModel] != 1 {
		t.Errorf("model visited %d times", kinds[KindModel])
	}
	if kinds[KindAction] != 5 {
		t.Errorf("actions visited %d times, want 5 (A1,A2,A4,SA1,SA2)", kinds[KindAction])
	}
	if kinds[KindActivity] != 1 {
		t.Errorf("activities visited %d times, want 1 (SA)", kinds[KindActivity])
	}
}

func TestWalkStopsOnError(t *testing.T) {
	m := buildSampleModel(t)
	sentinel := errors.New("stop")
	count := 0
	err := Walk(m, func(e Element) error {
		count++
		if count == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Walk should propagate callback error, got %v", err)
	}
	if count != 3 {
		t.Errorf("Walk continued after error: %d visits", count)
	}
}

func TestActionsAndActivities(t *testing.T) {
	m := buildSampleModel(t)
	acts := Actions(m)
	if len(acts) != 5 {
		t.Fatalf("Actions = %d, want 5", len(acts))
	}
	names := map[string]bool{}
	for _, a := range acts {
		names[a.Name()] = true
	}
	for _, want := range []string{"A1", "A2", "A4", "SA1", "SA2"} {
		if !names[want] {
			t.Errorf("missing action %s", want)
		}
	}
	avs := Activities(m)
	if len(avs) != 1 || avs[0].Name() != "SA" {
		t.Errorf("Activities = %v", avs)
	}
}

func TestConvergence(t *testing.T) {
	m := buildSampleModel(t)
	d := m.Main()
	dec := d.NodeByName("DecisionNode")
	if dec == nil {
		// control nodes are named by kind
		for _, n := range d.Nodes() {
			if n.Kind() == KindDecision {
				dec = n
			}
		}
	}
	out := d.Outgoing(dec.ID())
	heads := []string{out[0].To(), out[1].To()}
	conv := Convergence(d, heads)
	if conv == nil || conv.Kind() != KindMerge {
		t.Fatalf("branches of the sample decision converge at the merge, got %v", conv)
	}
	// Degenerate inputs.
	if Convergence(d, nil) != nil {
		t.Error("no heads -> no convergence")
	}
	if got := Convergence(d, []string{heads[0]}); got == nil || got.ID() != heads[0] {
		t.Error("single head converges at itself")
	}
}

func TestConvergenceNonConverging(t *testing.T) {
	m := NewModel("m")
	d, _ := m.AddDiagram("main")
	dec, _ := m.AddControl(d, "", KindDecision)
	a, _ := m.AddAction(d, "", "A")
	b, _ := m.AddAction(d, "", "B")
	fa, _ := m.AddControl(d, "", KindFinal)
	fb, _ := m.AddControl(d, "", KindFinal)
	d.Connect(dec.ID(), a.ID(), "x > 0")
	d.Connect(dec.ID(), b.ID(), "else")
	d.Connect(a.ID(), fa.ID(), "")
	d.Connect(b.ID(), fb.ID(), "")
	if got := Convergence(d, []string{a.ID(), b.ID()}); got != nil {
		t.Errorf("distinct finals should not converge, got %v", got.ID())
	}
}

func TestConvergenceNested(t *testing.T) {
	// Outer decision whose true-branch contains an inner decision; both
	// inner arms rejoin before the outer merge. Convergence from the
	// outer heads must be the outer merge, not the inner one.
	m := NewModel("m")
	d, _ := m.AddDiagram("main")
	outer, _ := m.AddControl(d, "", KindDecision)
	inner, _ := m.AddControl(d, "", KindDecision)
	x, _ := m.AddAction(d, "", "X")
	y, _ := m.AddAction(d, "", "Y")
	innerMerge, _ := m.AddControl(d, "", KindMerge)
	elseAct, _ := m.AddAction(d, "", "E")
	outerMerge, _ := m.AddControl(d, "", KindMerge)
	fin, _ := m.AddControl(d, "", KindFinal)
	d.Connect(outer.ID(), inner.ID(), "a > 0")
	d.Connect(outer.ID(), elseAct.ID(), "else")
	d.Connect(inner.ID(), x.ID(), "b > 0")
	d.Connect(inner.ID(), y.ID(), "else")
	d.Connect(x.ID(), innerMerge.ID(), "")
	d.Connect(y.ID(), innerMerge.ID(), "")
	d.Connect(innerMerge.ID(), outerMerge.ID(), "")
	d.Connect(elseAct.ID(), outerMerge.ID(), "")
	d.Connect(outerMerge.ID(), fin.ID(), "")
	got := Convergence(d, []string{inner.ID(), elseAct.ID()})
	if got == nil || got.ID() != outerMerge.ID() {
		t.Errorf("outer convergence = %v, want outer merge %s", got, outerMerge.ID())
	}
	gotInner := Convergence(d, []string{x.ID(), y.ID()})
	if gotInner == nil || gotInner.ID() != innerMerge.ID() {
		t.Errorf("inner convergence = %v, want inner merge", gotInner)
	}
}

func TestElementsWithStereotype(t *testing.T) {
	m := buildSampleModel(t)
	actions := ElementsWithStereotype(m, "action+")
	if len(actions) != 5 {
		t.Errorf("action+ elements = %d, want 5", len(actions))
	}
	activities := ElementsWithStereotype(m, "activity+")
	if len(activities) != 1 {
		t.Errorf("activity+ elements = %d, want 1", len(activities))
	}
	if got := ElementsWithStereotype(m, "nothing"); len(got) != 0 {
		t.Errorf("unknown stereotype should select nothing, got %d", len(got))
	}
}
