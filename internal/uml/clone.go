package uml

// Clone returns a deep copy of the model. The copy shares no mutable state
// with the original: diagrams, nodes, edges, tags and constraints are all
// duplicated. Element IDs are preserved, so cross-references (activity
// bodies, edge endpoints) remain valid in the copy.
func Clone(m *Model) *Model {
	out := NewModel(m.Name())
	out.stereotype = m.stereotype
	cloneBaseInto(&out.base, &m.base)
	out.seq = m.seq
	for _, v := range m.variables {
		out.variables = append(out.variables, v)
	}
	for _, f := range m.functions {
		nf := f
		nf.Params = append([]Param(nil), f.Params...)
		out.functions = append(out.functions, nf)
	}
	for _, d := range m.diagrams {
		nd, err := out.AddDiagram(d.Name())
		if err != nil {
			// Diagram names are unique in the source model by construction.
			panic("uml: Clone: " + err.Error())
		}
		cloneBaseInto(&nd.base, &d.base)
		for _, n := range d.Nodes() {
			var cp Node
			switch src := n.(type) {
			case *ActionNode:
				cp = &ActionNode{
					nodeBase: nodeBase{base: newBase(src.ID(), src.Name(), src.Kind())},
					Code:     src.Code,
					CostFunc: src.CostFunc,
				}
			case *ActivityNode:
				cp = &ActivityNode{
					nodeBase: nodeBase{base: newBase(src.ID(), src.Name(), src.Kind())},
					Body:     src.Body,
					Code:     src.Code,
					CostFunc: src.CostFunc,
				}
			case *LoopNode:
				cp = &LoopNode{
					nodeBase: nodeBase{base: newBase(src.ID(), src.Name(), src.Kind())},
					Count:    src.Count,
					Body:     src.Body,
					Var:      src.Var,
				}
			case *ControlNode:
				cp = &ControlNode{nodeBase: nodeBase{base: newBase(src.ID(), src.Name(), src.Kind())}}
			default:
				panic("uml: Clone: unknown node type")
			}
			copyAnnotations(cp, n)
			if err := nd.addNode(cp); err != nil {
				panic("uml: Clone: " + err.Error())
			}
		}
		for _, e := range d.Edges() {
			ne, err := nd.Connect(e.From(), e.To(), e.Guard)
			if err != nil {
				panic("uml: Clone: " + err.Error())
			}
			ne.Weight = e.Weight
			copyAnnotations(ne, e)
		}
	}
	out.main = m.main
	return out
}

// cloneBaseInto copies annotations (tags, constraints, stereotype) from one
// base to another, preserving the destination's identity fields.
func cloneBaseInto(dst, src *base) {
	dst.stereotype = src.stereotype
	if src.tags != nil {
		dst.tags = make(map[string]string, len(src.tags))
		for k, v := range src.tags {
			dst.tags[k] = v
		}
	}
	dst.constraints = append([]string(nil), src.constraints...)
}

// copyAnnotations copies stereotype, tags and constraints between elements.
func copyAnnotations(dst, src Element) {
	dst.SetStereotype(src.Stereotype())
	for _, tv := range src.Tags() {
		dst.SetTag(tv.Name, tv.Value)
	}
	for _, c := range src.Constraints() {
		dst.AddConstraint(c)
	}
}
