package uml

import (
	"fmt"
	"sort"
	"strconv"
)

// TaggedValue is a UML tagged value: the value of a tag definition attached
// to a stereotyped element (paper, Figure 1: id, type, time).
type TaggedValue struct {
	Name  string
	Value string
}

// Element is the common interface of every modeling element in the tree.
// It corresponds to the paper's notion of "modeling element" whose
// properties the Model Traverser reads while generating representations.
type Element interface {
	// ID returns the element identifier, unique within its model.
	ID() string
	// Name returns the user-visible element name (e.g. "Kernel6").
	Name() string
	// SetName renames the element.
	SetName(string)
	// Kind returns the metaclass kind of the element.
	Kind() Kind
	// Stereotype returns the applied stereotype name without guillemets
	// (e.g. "action+"), or "" when no stereotype is applied.
	Stereotype() string
	// SetStereotype applies a stereotype by name.
	SetStereotype(string)
	// Tag returns the raw tagged value for name.
	Tag(name string) (string, bool)
	// SetTag sets a tagged value.
	SetTag(name, value string)
	// DeleteTag removes a tagged value; it is a no-op if absent.
	DeleteTag(name string)
	// Tags returns all tagged values sorted by name.
	Tags() []TaggedValue
	// Constraints returns the constraint expressions attached to the element.
	Constraints() []string
	// AddConstraint attaches a constraint expression.
	AddConstraint(string)
	// Owner returns the owning element (nil for the model root).
	Owner() Element
	// setOwner is used internally when the element is added to the tree.
	setOwner(Element)
}

// base carries the state shared by every element implementation.
type base struct {
	id          string
	name        string
	kind        Kind
	stereotype  string
	tags        map[string]string
	constraints []string
	owner       Element
}

func newBase(id, name string, kind Kind) base {
	return base{id: id, name: name, kind: kind}
}

func (b *base) ID() string             { return b.id }
func (b *base) Name() string           { return b.name }
func (b *base) SetName(n string)       { b.name = n }
func (b *base) Kind() Kind             { return b.kind }
func (b *base) Stereotype() string     { return b.stereotype }
func (b *base) SetStereotype(s string) { b.stereotype = s }

func (b *base) Tag(name string) (string, bool) {
	v, ok := b.tags[name]
	return v, ok
}

func (b *base) SetTag(name, value string) {
	if b.tags == nil {
		b.tags = make(map[string]string)
	}
	b.tags[name] = value
}

func (b *base) DeleteTag(name string) { delete(b.tags, name) }

func (b *base) Tags() []TaggedValue {
	out := make([]TaggedValue, 0, len(b.tags))
	for k, v := range b.tags {
		out = append(out, TaggedValue{Name: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (b *base) Constraints() []string {
	out := make([]string, len(b.constraints))
	copy(out, b.constraints)
	return out
}

func (b *base) AddConstraint(c string) { b.constraints = append(b.constraints, c) }

func (b *base) Owner() Element     { return b.owner }
func (b *base) setOwner(o Element) { b.owner = o }

// TagFloat returns the tagged value for name parsed as float64.
// It returns (0, false) when the tag is absent or not numeric.
func TagFloat(e Element, name string) (float64, bool) {
	raw, ok := e.Tag(name)
	if !ok {
		return 0, false
	}
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}

// TagInt returns the tagged value for name parsed as int.
func TagInt(e Element, name string) (int, bool) {
	raw, ok := e.Tag(name)
	if !ok {
		return 0, false
	}
	i, err := strconv.Atoi(raw)
	if err != nil {
		return 0, false
	}
	return i, true
}

// SetTagFloat stores a float64 tagged value using the shortest decimal
// representation that round-trips.
func SetTagFloat(e Element, name string, v float64) {
	e.SetTag(name, strconv.FormatFloat(v, 'g', -1, 64))
}

// SetTagInt stores an int tagged value.
func SetTagInt(e Element, name string, v int) {
	e.SetTag(name, strconv.Itoa(v))
}

// DisplayName returns the element name decorated with its stereotype in
// guillemet notation, matching the graphical notation of the paper
// (e.g. `Kernel6 <<action+>>`).
func DisplayName(e Element) string {
	if s := e.Stereotype(); s != "" {
		return fmt.Sprintf("%s <<%s>>", e.Name(), s)
	}
	return e.Name()
}
