package uml

// Walk performs a depth-first visit of the whole element tree: the model,
// then each diagram, then each node and each edge of the diagram, in
// insertion order. It stops early and returns the callback's error if the
// callback returns a non-nil error.
//
// Walk is a convenience for simple consumers; the transformation pipeline
// uses the richer Traverser/Navigator/ContentHandler machinery of package
// traverse, which follows the paper's Figure 6.
func Walk(m *Model, visit func(Element) error) error {
	if err := visit(m); err != nil {
		return err
	}
	for _, d := range m.Diagrams() {
		if err := visit(d); err != nil {
			return err
		}
		for _, n := range d.Nodes() {
			if err := visit(n); err != nil {
				return err
			}
		}
		for _, e := range d.Edges() {
			if err := visit(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// Actions returns every ActionNode in the model, across all diagrams, in
// walk order.
func Actions(m *Model) []*ActionNode {
	var out []*ActionNode
	for _, d := range m.Diagrams() {
		for _, n := range d.Nodes() {
			if a, ok := n.(*ActionNode); ok {
				out = append(out, a)
			}
		}
	}
	return out
}

// Activities returns every ActivityNode in the model, in walk order.
func Activities(m *Model) []*ActivityNode {
	var out []*ActivityNode
	for _, d := range m.Diagrams() {
		for _, n := range d.Nodes() {
			if a, ok := n.(*ActivityNode); ok {
				out = append(out, a)
			}
		}
	}
	return out
}

// Convergence finds the node where several forward paths meet again: the
// first node, in breadth-first order from the first head, that is
// reachable from every head. It returns nil when the paths never converge
// (e.g. all branches run to distinct final nodes). Both the C++ generator
// (to close if/else and fork/join regions) and the model interpreter (to
// find the join of a fork) rely on this.
func Convergence(d *Diagram, heads []string) Node {
	if len(heads) == 0 {
		return nil
	}
	reach := func(start string) ([]string, map[string]bool) {
		var order []string
		seen := map[string]bool{}
		queue := []string{start}
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			if seen[id] {
				continue
			}
			seen[id] = true
			order = append(order, id)
			for _, e := range d.Outgoing(id) {
				queue = append(queue, e.To())
			}
		}
		return order, seen
	}
	firstOrder, _ := reach(heads[0])
	sets := make([]map[string]bool, 0, len(heads)-1)
	for _, h := range heads[1:] {
		_, s := reach(h)
		sets = append(sets, s)
	}
	for _, id := range firstOrder {
		common := true
		for _, s := range sets {
			if !s[id] {
				common = false
				break
			}
		}
		if common {
			return d.Node(id)
		}
	}
	return nil
}

// ElementsWithStereotype returns every element in the model carrying the
// given stereotype, in walk order. This is the selection criterion of the
// transformation algorithm's first phase (paper, Figure 5 lines 1-8:
// "Performance relevant modeling elements of the UML model are identified
// based on the stereotype name").
func ElementsWithStereotype(m *Model, stereotype string) []Element {
	var out []Element
	_ = Walk(m, func(e Element) error {
		if e.Stereotype() == stereotype {
			out = append(out, e)
		}
		return nil
	})
	return out
}
