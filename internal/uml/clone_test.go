package uml

import (
	"testing"
)

func TestCloneIsDeep(t *testing.T) {
	orig := buildSampleModel(t)
	cp := Clone(orig)

	// Same shape.
	if cp.Stats() != orig.Stats() {
		t.Fatalf("clone stats %+v != original %+v", cp.Stats(), orig.Stats())
	}
	if cp.MainName() != orig.MainName() {
		t.Errorf("main diagram name not preserved")
	}

	// IDs preserved, so cross-references stay valid.
	for _, d := range orig.Diagrams() {
		cd := cp.DiagramByName(d.Name())
		if cd == nil {
			t.Fatalf("clone missing diagram %q", d.Name())
		}
		for _, n := range d.Nodes() {
			cn := cd.Node(n.ID())
			if cn == nil {
				t.Fatalf("clone missing node %q", n.ID())
			}
			if cn.Name() != n.Name() || cn.Kind() != n.Kind() || cn.Stereotype() != n.Stereotype() {
				t.Errorf("node %q not faithfully cloned", n.ID())
			}
		}
		if len(cd.Edges()) != len(d.Edges()) {
			t.Errorf("diagram %q: edge count differs", d.Name())
		}
	}

	// Mutating the clone must not affect the original.
	cd := cp.Main()
	a1 := cd.NodeByName("A1").(*ActionNode)
	a1.SetName("renamed")
	a1.SetTag("time", "42")
	a1.CostFunc = "FX()"
	oa1 := orig.Main().NodeByName("A1")
	if oa1 == nil {
		t.Fatal("original lost its A1 after clone mutation")
	}
	if _, ok := oa1.Tag("time"); ok {
		t.Errorf("tag mutation leaked into original")
	}
	if oa1.(*ActionNode).CostFunc != "FA1()" {
		t.Errorf("cost function mutation leaked into original")
	}

	// Variables and functions copied.
	if len(cp.Variables()) != len(orig.Variables()) {
		t.Errorf("variables not copied")
	}
	if len(cp.Functions()) != len(orig.Functions()) {
		t.Errorf("functions not copied")
	}
}

func TestClonePreservesActivityBodiesAndLoops(t *testing.T) {
	m := NewModel("loops")
	main, _ := m.AddDiagram("main")
	body, _ := m.AddDiagram("body")
	lp, _ := m.AddLoop(main, "", "L", "M", "body")
	lp.Var = "i"
	lp.SetStereotype("loop+")
	k, _ := m.AddAction(body, "", "K")
	k.Code = "W(i) = W(i) + B(i,k)*W(i-k)"

	cp := Clone(m)
	cl := cp.Main().NodeByName("L").(*LoopNode)
	if cl.Count != "M" || cl.Body != "body" || cl.Var != "i" {
		t.Errorf("loop fields not cloned: %+v", cl)
	}
	if cl.Stereotype() != "loop+" {
		t.Errorf("loop stereotype not cloned")
	}
	ck := cp.DiagramByName("body").NodeByName("K").(*ActionNode)
	if ck.Code != k.Code {
		t.Errorf("action code not cloned")
	}
}

func TestClonePreservesEdgeAnnotations(t *testing.T) {
	m := NewModel("edges")
	d, _ := m.AddDiagram("main")
	a, _ := m.AddAction(d, "", "A")
	b, _ := m.AddAction(d, "", "B")
	e, _ := d.Connect(a.ID(), b.ID(), "GV > 0")
	e.Weight = 0.25
	e.SetTag("prob", "0.25")

	cp := Clone(m)
	ce := cp.Main().Edges()[0]
	if ce.Guard != "GV > 0" || ce.Weight != 0.25 {
		t.Errorf("edge guard/weight not cloned: %+v", ce)
	}
	if v, ok := ce.Tag("prob"); !ok || v != "0.25" {
		t.Errorf("edge tags not cloned")
	}
}
