package uml_test

import (
	"testing"

	"prophet/internal/modelgen"
	"prophet/internal/uml"
)

// TestFlowIndexMatchesConvergence is the differential property test for
// the dense convergence index: over generated models, every decision and
// fork head-set must produce the identical convergence node through
// FlowIndex.Convergence and the string-keyed uml.Convergence, including
// repeated queries against one shared index (the cached-scratch path).
func TestFlowIndexMatchesConvergence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		m := modelgen.MustGenerate(modelgen.Params{Seed: seed, Nodes: 400 + int(seed)*211})
		queries := 0
		for _, d := range m.Diagrams() {
			ix := uml.NewFlowIndex(d)
			for _, n := range d.Nodes() {
				if k := n.Kind(); k != uml.KindDecision && k != uml.KindFork {
					continue
				}
				out := d.Outgoing(n.ID())
				heads := make([]string, len(out))
				for i, e := range out {
					heads[i] = e.To()
				}
				want := uml.Convergence(d, heads)
				got := ix.Convergence(heads)
				if got != want {
					t.Fatalf("seed %d diagram %s node %s: FlowIndex=%v Convergence=%v",
						seed, d.Name(), n.ID(), id(got), id(want))
				}
				queries++
			}
		}
		if queries == 0 {
			t.Fatalf("seed %d: no decisions or forks generated", seed)
		}
	}
}

// TestFlowIndexEdgeCases pins the corner semantics the string-keyed search
// defines: empty head sets, single heads, non-converging branches, and
// dangling edge targets.
func TestFlowIndexEdgeCases(t *testing.T) {
	m := uml.NewModel("m")
	d, err := m.AddDiagram("main")
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.AddAction(d, "", "A")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.AddAction(d, "", "B")
	if err != nil {
		t.Fatal(err)
	}
	j, err := m.AddControl(d, "", uml.KindMerge)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Connect(a.ID(), j.ID(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Connect(b.ID(), j.ID(), ""); err != nil {
		t.Fatal(err)
	}
	ix := uml.NewFlowIndex(d)

	if got := ix.Convergence(nil); got != nil {
		t.Errorf("empty heads: got %v, want nil", id(got))
	}
	if got := ix.Convergence([]string{a.ID()}); got != a {
		t.Errorf("single head: got %v, want the head itself", id(got))
	}
	if got := ix.Convergence([]string{a.ID(), b.ID()}); got != j {
		t.Errorf("two branches: got %v, want the merge", id(got))
	}
	// A head the diagram has no node for: never converges with a real one.
	if got := ix.Convergence([]string{a.ID(), "ghost"}); got != nil {
		t.Errorf("dangling head: got %v, want nil", id(got))
	}
	if want := uml.Convergence(d, []string{a.ID(), "ghost"}); want != nil {
		t.Errorf("string-keyed search disagrees on dangling head: %v", id(want))
	}
	// Re-query after the dangling head grew the virtual space.
	if got := ix.Convergence([]string{a.ID(), b.ID()}); got != j {
		t.Errorf("re-query after virtual growth: got %v, want the merge", id(got))
	}
}

func id(n uml.Node) string {
	if n == nil {
		return "<nil>"
	}
	return n.ID()
}
