package uml

import (
	"fmt"
	"strconv"
)

// Model is the root of the element tree: it owns the diagrams, the global
// and local variables, and the cost-function definitions of a performance
// model. A model together with its diagrams and modeling elements "forms a
// tree data structure" (paper, Section 3) which the Model Traverser walks.
type Model struct {
	base
	diagrams  []*Diagram
	variables []Variable
	functions []Function

	main   string // name of the main diagram, defaults to the first added
	byID   map[string]Element
	byName map[string]*Diagram // diagram lookup; verified on hit, names can change
	seq    int
	arena  *arena // slab allocator primed by Preallocate; nil falls back to new
}

// NewModel creates an empty model with the given name.
func NewModel(name string) *Model {
	m := &Model{base: newBase("model", name, KindModel)}
	m.byID = map[string]Element{"model": m}
	return m
}

// NewID allocates a fresh element ID of the form "e<N>", unique within the
// model.
func (m *Model) NewID() string {
	for {
		m.seq++
		id := "e" + strconv.Itoa(m.seq)
		if _, taken := m.byID[id]; !taken {
			return id
		}
	}
}

// AddDiagram creates and attaches a new, empty activity diagram. The first
// diagram added becomes the main diagram unless SetMain overrides it.
func (m *Model) AddDiagram(name string) (*Diagram, error) {
	if m.DiagramByName(name) != nil {
		return nil, fmt.Errorf("uml: duplicate diagram name %q", name)
	}
	id := "d" + strconv.Itoa(len(m.diagrams)+1)
	if _, taken := m.byID[id]; taken {
		id = m.NewID()
	}
	d := &Diagram{base: newBase(id, name, KindDiagram), model: m}
	d.setOwner(m)
	m.diagrams = append(m.diagrams, d)
	m.byID[id] = d
	if m.byName == nil {
		m.byName = make(map[string]*Diagram)
	}
	m.byName[name] = d
	if m.main == "" {
		m.main = name
	}
	return d, nil
}

// Diagrams returns the model's diagrams in insertion order.
func (m *Model) Diagrams() []*Diagram { return m.diagrams }

// DiagramByName returns the diagram with the given name, or nil. Lookups
// are indexed; because SetName can change a diagram's name behind the
// index, a hit is verified and a miss falls back to a scan that repairs
// the index entry.
func (m *Model) DiagramByName(name string) *Diagram {
	if d, ok := m.byName[name]; ok && d.Name() == name {
		return d
	}
	for _, d := range m.diagrams {
		if d.Name() == name {
			if m.byName == nil {
				m.byName = make(map[string]*Diagram)
			}
			m.byName[name] = d
			return d
		}
	}
	return nil
}

// SetMain designates the main diagram, i.e. the one whose flow the generated
// program body executes (paper, Figure 7a "main activity diagram").
func (m *Model) SetMain(name string) error {
	if m.DiagramByName(name) == nil {
		return fmt.Errorf("uml: no diagram named %q", name)
	}
	m.main = name
	return nil
}

// Main returns the main diagram, or nil for an empty model.
func (m *Model) Main() *Diagram { return m.DiagramByName(m.main) }

// MainName returns the name of the main diagram.
func (m *Model) MainName() string { return m.main }

// Element returns the element with the given ID anywhere in the model tree,
// or nil.
func (m *Model) Element(id string) Element { return m.byID[id] }

// AddVariable declares a model variable. Redeclaring a name within the same
// scope is an error.
func (m *Model) AddVariable(v Variable) error {
	if v.Name == "" {
		return fmt.Errorf("uml: variable with empty name")
	}
	for _, have := range m.variables {
		if have.Name == v.Name && have.Scope == v.Scope {
			return fmt.Errorf("uml: duplicate %s variable %q", v.Scope, v.Name)
		}
	}
	if v.Type == "" {
		v.Type = "double"
	}
	m.variables = append(m.variables, v)
	return nil
}

// Variables returns every model variable in declaration order.
func (m *Model) Variables() []Variable { return m.variables }

// VariablesIn returns the variables of one scope, in declaration order.
func (m *Model) VariablesIn(scope VarScope) []Variable {
	var out []Variable
	for _, v := range m.variables {
		if v.Scope == scope {
			out = append(out, v)
		}
	}
	return out
}

// Variable returns the variable with the given name (searching globals then
// locals) and whether it exists.
func (m *Model) Variable(name string) (Variable, bool) {
	for _, scope := range []VarScope{ScopeGlobal, ScopeLocal} {
		for _, v := range m.variables {
			if v.Name == name && v.Scope == scope {
				return v, true
			}
		}
	}
	return Variable{}, false
}

// AddFunction attaches a cost-function definition to the model.
func (m *Model) AddFunction(f Function) error {
	if f.Name == "" {
		return fmt.Errorf("uml: function with empty name")
	}
	if _, dup := m.Function(f.Name); dup {
		return fmt.Errorf("uml: duplicate function %q", f.Name)
	}
	m.functions = append(m.functions, f)
	return nil
}

// Functions returns every cost-function definition in declaration order.
func (m *Model) Functions() []Function { return m.functions }

// Function returns the cost function with the given name and whether it
// exists.
func (m *Model) Function(name string) (Function, bool) {
	for _, f := range m.functions {
		if f.Name == name {
			return f, true
		}
	}
	return Function{}, false
}

// node factory helpers ------------------------------------------------------

// AddAction creates an ActionNode in the diagram. An empty id asks the model
// to allocate one.
func (m *Model) AddAction(d *Diagram, id, name string) (*ActionNode, error) {
	if id == "" {
		id = m.NewID()
	}
	n := m.arena.action()
	n.nodeBase = nodeBase{base: newBase(id, name, KindAction)}
	if err := d.addNode(n); err != nil {
		return nil, err
	}
	return n, nil
}

// AddActivity creates an ActivityNode whose content is the diagram named
// body.
func (m *Model) AddActivity(d *Diagram, id, name, body string) (*ActivityNode, error) {
	if id == "" {
		id = m.NewID()
	}
	n := m.arena.activity()
	n.nodeBase = nodeBase{base: newBase(id, name, KindActivity)}
	n.Body = body
	if err := d.addNode(n); err != nil {
		return nil, err
	}
	return n, nil
}

// AddControl creates a control node of the given kind (initial, final,
// decision, merge, fork or join).
func (m *Model) AddControl(d *Diagram, id string, kind Kind) (*ControlNode, error) {
	if !kind.IsControl() {
		return nil, fmt.Errorf("uml: %v is not a control-node kind", kind)
	}
	if id == "" {
		id = m.NewID()
	}
	n := m.arena.control()
	n.nodeBase = nodeBase{base: newBase(id, kind.String(), kind)}
	if err := d.addNode(n); err != nil {
		return nil, err
	}
	return n, nil
}

// AddLoop creates a LoopNode repeating the diagram named body count times.
func (m *Model) AddLoop(d *Diagram, id, name, count, body string) (*LoopNode, error) {
	if id == "" {
		id = m.NewID()
	}
	n := m.arena.loop()
	n.nodeBase = nodeBase{base: newBase(id, name, KindLoop)}
	n.Count = count
	n.Body = body
	if err := d.addNode(n); err != nil {
		return nil, err
	}
	return n, nil
}

// Stats summarizes the size of a model; it is used by benchmarks and the
// CLI's describe output.
type Stats struct {
	Diagrams  int
	Nodes     int
	Edges     int
	Actions   int
	Variables int
	Functions int
}

// Stats computes model size statistics.
func (m *Model) Stats() Stats {
	s := Stats{Diagrams: len(m.diagrams), Variables: len(m.variables), Functions: len(m.functions)}
	for _, d := range m.diagrams {
		s.Nodes += len(d.nodes)
		s.Edges += len(d.edges)
		for _, n := range d.nodes {
			if n.Kind() == KindAction {
				s.Actions++
			}
		}
	}
	return s
}
