// Package uml implements the subset of the UML 2.0 metamodel that the
// Performance Prophet methodology relies on: models, activity diagrams,
// activity nodes and edges, and the UML extension mechanisms (stereotypes,
// tagged values and constraints) described in Section 2.1 of the paper.
//
// The metamodel is deliberately small: the paper models scientific
// imperative programs with one or more activity diagrams whose nodes carry
// performance-relevant annotations. Every element of the model is part of a
// single ownership tree (Model -> Diagram -> Node/Edge), which is what the
// Model Traverser walks during transformation (paper, Figure 6).
//
// Elements are identified by string IDs that are unique within a model.
// Tagged values are stored as strings, mirroring the way UML tools persist
// metaattributes; typed accessors are provided for the common cases.
package uml
