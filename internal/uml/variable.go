package uml

// VarScope distinguishes global model variables from variables local to the
// generated program body (paper, Figure 8a lines 24-25 vs Figure 5 lines
// 20-23).
type VarScope int

const (
	// ScopeGlobal variables are emitted before the cost functions so that
	// cost functions and guards may reference them (e.g. GV, P in the
	// sample model).
	ScopeGlobal VarScope = iota
	// ScopeLocal variables are emitted inside the generated program body.
	ScopeLocal
)

// String returns "global" or "local".
func (s VarScope) String() string {
	if s == ScopeLocal {
		return "local"
	}
	return "global"
}

// Variable is a model variable. Name and Type are the properties the user
// specifies in the model's property list (paper, Figure 7a bottom-right);
// Init is an optional initializer expression.
type Variable struct {
	Name  string
	Type  string // C++ type spelling: "double", "int", ...
	Scope VarScope
	Init  string // optional initializer expression, "" for none
}

// Param is a formal parameter of a cost function.
type Param struct {
	Name string
	Type string
}

// Function is a cost-function definition attached to the model. Body is an
// expression in the cost-function language (package expr); the generated C++
// returns its value. Cost functions may be composed of other cost functions
// (paper, Section 4: "a cost function may be composed using other functions
// that are defined in the performance model").
type Function struct {
	Name   string
	Params []Param
	Type   string // return type, defaults to "double"
	Body   string
}

// ReturnType returns the declared return type, defaulting to "double" as in
// the paper's generated code (e.g. `double FA1(){...}`).
func (f Function) ReturnType() string {
	if f.Type == "" {
		return "double"
	}
	return f.Type
}
