package uml

import (
	"strings"
	"testing"
)

func mustDiagram(t *testing.T, m *Model, name string) *Diagram {
	t.Helper()
	d, err := m.AddDiagram(name)
	if err != nil {
		t.Fatalf("AddDiagram(%q): %v", name, err)
	}
	return d
}

func TestNewModelBasics(t *testing.T) {
	m := NewModel("sample")
	if m.Name() != "sample" {
		t.Errorf("Name = %q, want sample", m.Name())
	}
	if m.Kind() != KindModel {
		t.Errorf("Kind = %v, want KindModel", m.Kind())
	}
	if m.Main() != nil {
		t.Errorf("Main of empty model should be nil")
	}
	if got := m.Element("model"); got != Element(m) {
		t.Errorf("Element(model) should return the model root")
	}
}

func TestAddDiagramSetsMain(t *testing.T) {
	m := NewModel("s")
	d1 := mustDiagram(t, m, "main")
	mustDiagram(t, m, "SA")
	if m.Main() != d1 {
		t.Errorf("first diagram should become main")
	}
	if err := m.SetMain("SA"); err != nil {
		t.Fatalf("SetMain: %v", err)
	}
	if m.Main().Name() != "SA" {
		t.Errorf("SetMain did not take effect")
	}
	if err := m.SetMain("nope"); err == nil {
		t.Errorf("SetMain with unknown diagram should fail")
	}
}

func TestDuplicateDiagramName(t *testing.T) {
	m := NewModel("s")
	mustDiagram(t, m, "main")
	if _, err := m.AddDiagram("main"); err == nil {
		t.Fatal("duplicate diagram name should be rejected")
	}
}

func TestAddActionAndLookup(t *testing.T) {
	m := NewModel("s")
	d := mustDiagram(t, m, "main")
	a, err := m.AddAction(d, "a1", "A1")
	if err != nil {
		t.Fatalf("AddAction: %v", err)
	}
	if a.ID() != "a1" || a.Name() != "A1" || a.Kind() != KindAction {
		t.Errorf("action fields wrong: %+v", a)
	}
	if d.Node("a1") != Node(a) {
		t.Errorf("diagram lookup by ID failed")
	}
	if d.NodeByName("A1") != Node(a) {
		t.Errorf("diagram lookup by name failed")
	}
	if m.Element("a1") != Element(a) {
		t.Errorf("model-wide lookup failed")
	}
	if a.Diagram() != d {
		t.Errorf("node should know its diagram")
	}
	if a.Owner() != Element(d) {
		t.Errorf("node owner should be its diagram")
	}
}

func TestDuplicateNodeID(t *testing.T) {
	m := NewModel("s")
	d := mustDiagram(t, m, "main")
	if _, err := m.AddAction(d, "a1", "A1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddAction(d, "a1", "A1bis"); err == nil {
		t.Fatal("duplicate node ID should be rejected")
	}
	d2 := mustDiagram(t, m, "other")
	if _, err := m.AddAction(d2, "a1", "A1ter"); err == nil {
		t.Fatal("node IDs must be unique model-wide, not per-diagram")
	}
}

func TestNewIDUnique(t *testing.T) {
	m := NewModel("s")
	d := mustDiagram(t, m, "main")
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		a, err := m.AddAction(d, "", "X")
		if err != nil {
			t.Fatal(err)
		}
		if seen[a.ID()] {
			t.Fatalf("NewID produced duplicate %q", a.ID())
		}
		seen[a.ID()] = true
	}
}

func TestNewIDSkipsTakenIDs(t *testing.T) {
	m := NewModel("s")
	d := mustDiagram(t, m, "main")
	if _, err := m.AddAction(d, "e1", "X"); err != nil {
		t.Fatal(err)
	}
	id := m.NewID()
	if id == "e1" {
		t.Fatal("NewID returned an ID already in use")
	}
}

func TestConnectAndAdjacency(t *testing.T) {
	m := NewModel("s")
	d := mustDiagram(t, m, "main")
	ini, _ := m.AddControl(d, "i", KindInitial)
	a, _ := m.AddAction(d, "a1", "A1")
	fin, _ := m.AddControl(d, "f", KindFinal)
	e1, err := d.Connect(ini.ID(), a.ID(), "")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	e2, err := d.Connect(a.ID(), fin.ID(), "GV > 0")
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	if e1.From() != "i" || e1.To() != "a1" {
		t.Errorf("edge endpoints wrong: %s -> %s", e1.From(), e1.To())
	}
	if got := d.Outgoing("a1"); len(got) != 1 || got[0] != e2 {
		t.Errorf("Outgoing(a1) wrong: %v", got)
	}
	if got := d.Incoming("a1"); len(got) != 1 || got[0] != e1 {
		t.Errorf("Incoming(a1) wrong: %v", got)
	}
	if e2.Guard != "GV > 0" {
		t.Errorf("guard not preserved")
	}
	if e2.IsElse() {
		t.Errorf("non-else edge reported as else")
	}
	e2.Guard = "else"
	if !e2.IsElse() {
		t.Errorf("else edge not recognized")
	}
}

func TestConnectUnknownEndpoint(t *testing.T) {
	m := NewModel("s")
	d := mustDiagram(t, m, "main")
	if _, err := m.AddAction(d, "a1", "A1"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Connect("a1", "ghost", ""); err == nil {
		t.Fatal("connecting to an unknown node should fail")
	}
	if _, err := d.Connect("ghost", "a1", ""); err == nil {
		t.Fatal("connecting from an unknown node should fail")
	}
}

func TestInitialAndFinals(t *testing.T) {
	m := NewModel("s")
	d := mustDiagram(t, m, "main")
	if d.Initial() != nil {
		t.Errorf("empty diagram should have no initial node")
	}
	ini, _ := m.AddControl(d, "", KindInitial)
	m.AddControl(d, "", KindFinal)
	m.AddControl(d, "", KindFinal)
	if d.Initial() != Node(ini) {
		t.Errorf("Initial() wrong")
	}
	if got := len(d.Finals()); got != 2 {
		t.Errorf("Finals() = %d, want 2", got)
	}
}

func TestAddControlRejectsNonControlKind(t *testing.T) {
	m := NewModel("s")
	d := mustDiagram(t, m, "main")
	if _, err := m.AddControl(d, "", KindAction); err == nil {
		t.Fatal("AddControl should reject non-control kinds")
	}
}

func TestVariables(t *testing.T) {
	m := NewModel("s")
	if err := m.AddVariable(Variable{Name: "GV", Type: "double", Scope: ScopeGlobal}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddVariable(Variable{Name: "P", Scope: ScopeGlobal}); err != nil {
		t.Fatal(err)
	}
	if err := m.AddVariable(Variable{Name: "GV", Scope: ScopeGlobal}); err == nil {
		t.Fatal("duplicate global should be rejected")
	}
	if err := m.AddVariable(Variable{Name: "GV", Scope: ScopeLocal}); err != nil {
		t.Fatalf("same name in different scope should be allowed: %v", err)
	}
	if err := m.AddVariable(Variable{Scope: ScopeGlobal}); err == nil {
		t.Fatal("empty variable name should be rejected")
	}
	v, ok := m.Variable("P")
	if !ok || v.Type != "double" {
		t.Errorf("Variable(P) = %+v, %v; want default double type", v, ok)
	}
	if got := len(m.VariablesIn(ScopeGlobal)); got != 2 {
		t.Errorf("globals = %d, want 2", got)
	}
	if got := len(m.VariablesIn(ScopeLocal)); got != 1 {
		t.Errorf("locals = %d, want 1", got)
	}
}

func TestFunctions(t *testing.T) {
	m := NewModel("s")
	f := Function{Name: "FA1", Params: []Param{{Name: "p", Type: "double"}}, Body: "2*p"}
	if err := m.AddFunction(f); err != nil {
		t.Fatal(err)
	}
	if err := m.AddFunction(Function{Name: "FA1"}); err == nil {
		t.Fatal("duplicate function should be rejected")
	}
	if err := m.AddFunction(Function{}); err == nil {
		t.Fatal("empty function name should be rejected")
	}
	got, ok := m.Function("FA1")
	if !ok || got.Body != "2*p" {
		t.Errorf("Function(FA1) = %+v, %v", got, ok)
	}
	if got.ReturnType() != "double" {
		t.Errorf("default return type should be double")
	}
	if (Function{Type: "int"}).ReturnType() != "int" {
		t.Errorf("explicit return type should be preserved")
	}
}

func TestActivityAndLoopNodes(t *testing.T) {
	m := NewModel("s")
	d := mustDiagram(t, m, "main")
	sa, err := m.AddActivity(d, "", "SA", "SA")
	if err != nil {
		t.Fatal(err)
	}
	if sa.Body != "SA" || sa.Kind() != KindActivity {
		t.Errorf("activity node wrong: %+v", sa)
	}
	lp, err := m.AddLoop(d, "", "L", "M", "body")
	if err != nil {
		t.Fatal(err)
	}
	if lp.Count != "M" || lp.Body != "body" || lp.Kind() != KindLoop {
		t.Errorf("loop node wrong: %+v", lp)
	}
}

func TestStats(t *testing.T) {
	m := NewModel("s")
	d := mustDiagram(t, m, "main")
	m.AddControl(d, "", KindInitial)
	m.AddAction(d, "", "A1")
	m.AddAction(d, "", "A2")
	m.AddControl(d, "", KindFinal)
	nodes := d.Nodes()
	d.Connect(nodes[0].ID(), nodes[1].ID(), "")
	d.Connect(nodes[1].ID(), nodes[2].ID(), "")
	d.Connect(nodes[2].ID(), nodes[3].ID(), "")
	m.AddVariable(Variable{Name: "GV", Scope: ScopeGlobal})
	m.AddFunction(Function{Name: "F", Body: "1"})
	s := m.Stats()
	want := Stats{Diagrams: 1, Nodes: 4, Edges: 3, Actions: 2, Variables: 1, Functions: 1}
	if s != want {
		t.Errorf("Stats = %+v, want %+v", s, want)
	}
}

func TestDisplayName(t *testing.T) {
	m := NewModel("s")
	d := mustDiagram(t, m, "main")
	a, _ := m.AddAction(d, "", "Kernel6")
	if got := DisplayName(a); got != "Kernel6" {
		t.Errorf("DisplayName = %q", got)
	}
	a.SetStereotype("action+")
	if got := DisplayName(a); !strings.Contains(got, "<<action+>>") {
		t.Errorf("DisplayName = %q, want guillemet notation", got)
	}
}
