package uml

import (
	"fmt"
	"strconv"
)

// Diagram is a UML activity diagram: an ordered collection of nodes and
// control-flow edges. The paper models a scientific program with one or
// more activity diagrams (Section 3); the content of an <<activity+>>
// element is itself described by a diagram (Section 4).
type Diagram struct {
	base
	model *Model
	nodes []Node
	edges []*Edge

	nodesByID map[string]Node
	outgoing  map[string][]*Edge
	incoming  map[string][]*Edge
}

// Model returns the owning model.
func (d *Diagram) Model() *Model { return d.model }

// Nodes returns the diagram's nodes in insertion order. The returned slice
// must not be modified.
func (d *Diagram) Nodes() []Node { return d.nodes }

// Edges returns the diagram's edges in insertion order. The returned slice
// must not be modified.
func (d *Diagram) Edges() []*Edge { return d.edges }

// addNode wires a node into the diagram.
func (d *Diagram) addNode(n Node) error {
	id := n.ID()
	if id == "" {
		return fmt.Errorf("uml: node %q has empty ID", n.Name())
	}
	if d.model != nil {
		if _, dup := d.model.byID[id]; dup {
			return fmt.Errorf("uml: duplicate element ID %q", id)
		}
		d.model.byID[id] = n
	}
	if d.nodesByID == nil {
		d.nodesByID = make(map[string]Node)
	}
	d.nodesByID[id] = n
	d.nodes = append(d.nodes, n)
	n.setDiagram(d)
	n.setOwner(d)
	return nil
}

// Node returns the node with the given ID, or nil if the diagram has none.
func (d *Diagram) Node(id string) Node {
	return d.nodesByID[id]
}

// NodeByName returns the first node with the given name, or nil.
func (d *Diagram) NodeByName(name string) Node {
	for _, n := range d.nodes {
		if n.Name() == name {
			return n
		}
	}
	return nil
}

// Connect adds a control-flow edge from one node to another, identified by
// ID. An empty guard means the edge is unconditional.
func (d *Diagram) Connect(fromID, toID, guard string) (*Edge, error) {
	from := d.Node(fromID)
	if from == nil {
		return nil, fmt.Errorf("uml: diagram %q: edge source %q not found", d.Name(), fromID)
	}
	to := d.Node(toID)
	if to == nil {
		return nil, fmt.Errorf("uml: diagram %q: edge target %q not found", d.Name(), toID)
	}
	id := d.ID() + ".e" + strconv.Itoa(len(d.edges)+1)
	var e *Edge
	if d.model != nil {
		e = d.model.arena.edge()
	} else {
		e = &Edge{}
	}
	e.base = newBase(id, "", KindEdge)
	e.from = fromID
	e.to = toID
	e.Guard = guard
	e.diagram = d
	e.setOwner(d)
	d.edges = append(d.edges, e)
	if d.outgoing == nil {
		d.outgoing = make(map[string][]*Edge)
		d.incoming = make(map[string][]*Edge)
	}
	d.outgoing[fromID] = append(d.outgoing[fromID], e)
	d.incoming[toID] = append(d.incoming[toID], e)
	if d.model != nil {
		d.model.byID[id] = e
	}
	return e, nil
}

// Outgoing returns the edges leaving the node with the given ID, in
// insertion order.
func (d *Diagram) Outgoing(nodeID string) []*Edge { return d.outgoing[nodeID] }

// Incoming returns the edges entering the node with the given ID, in
// insertion order.
func (d *Diagram) Incoming(nodeID string) []*Edge { return d.incoming[nodeID] }

// Initial returns the diagram's initial node, or nil when absent.
func (d *Diagram) Initial() Node {
	for _, n := range d.nodes {
		if n.Kind() == KindInitial {
			return n
		}
	}
	return nil
}

// Finals returns every final node of the diagram.
func (d *Diagram) Finals() []Node {
	var out []Node
	for _, n := range d.nodes {
		if n.Kind() == KindFinal {
			out = append(out, n)
		}
	}
	return out
}
