package uml

// FlowIndex is a dense integer view of one diagram's flow graph, built
// once and then queried repeatedly. Convergence search from every decision
// and fork of a diagram is quadratic in the diagram when each query
// re-walks string-keyed adjacency maps; an index makes each query pure
// integer BFS. The index is a snapshot: mutating the diagram after
// building it leaves the index describing the old shape, so build it after
// the diagram is complete (the generators and the lowerer index each
// diagram they emit).
type FlowIndex struct {
	d   *Diagram
	idx map[string]int32
	// nodes[i] is the node at dense position i; positions past the
	// diagram's real nodes are "virtual" targets of dangling edges (nil
	// node), kept so convergence semantics match the string-keyed search
	// exactly.
	nodes []Node
	adj   [][]int32

	// scratch reused across queries; a FlowIndex is therefore NOT safe for
	// concurrent queries. seen holds the visit id of the last head BFS
	// that reached a position, hits counts distinct heads of the current
	// query that reached it.
	seen    []int64
	hits    []int32
	queue   []int32
	counter int64
}

// NewFlowIndex builds the dense view of d's current nodes and edges.
func NewFlowIndex(d *Diagram) *FlowIndex {
	nodes := d.Nodes()
	ix := &FlowIndex{
		d:     d,
		idx:   make(map[string]int32, len(nodes)),
		nodes: make([]Node, len(nodes), len(nodes)+4),
	}
	for i, n := range nodes {
		ix.nodes[i] = n
		ix.idx[n.ID()] = int32(i)
	}
	ix.adj = make([][]int32, len(nodes), cap(ix.nodes))
	for _, e := range d.Edges() {
		fi, ok := ix.idx[e.From()]
		if !ok {
			// Edge from a node the diagram does not contain: unreachable
			// through any flow walk, matching d.Outgoing of real nodes.
			continue
		}
		ix.adj[fi] = append(ix.adj[fi], ix.pos(e.To()))
	}
	ix.seen = make([]int64, len(ix.nodes), cap(ix.nodes))
	ix.hits = make([]int32, len(ix.nodes), cap(ix.nodes))
	return ix
}

// pos returns the dense position for id, creating a virtual position for
// ids the diagram has no node for.
func (ix *FlowIndex) pos(id string) int32 {
	if i, ok := ix.idx[id]; ok {
		return i
	}
	i := int32(len(ix.nodes))
	ix.idx[id] = i
	ix.nodes = append(ix.nodes, nil)
	ix.adj = append(ix.adj, nil)
	ix.seen = append(ix.seen, 0)
	ix.hits = append(ix.hits, 0)
	return i
}

// Convergence finds the node where the forward paths from heads meet
// again: the first node, in breadth-first order from the first head, that
// is reachable from every head. Identical to the package-level Convergence
// but without per-query map traffic.
func (ix *FlowIndex) Convergence(heads []string) Node {
	if len(heads) == 0 {
		return nil
	}
	// Resolve heads first: each may create a virtual position, and the
	// scratch slices must not grow mid-search.
	hp := make([]int32, len(heads))
	for i, h := range heads {
		hp[i] = ix.pos(h)
	}
	// base separates this query from everything earlier: seen[p] >= base
	// means an earlier head of THIS query reached p; seen[p] == vid means
	// the current head already did.
	base := ix.counter + 1
	var order []int32
	for i, h := range hp {
		ix.counter++
		vid := ix.counter
		ix.queue = append(ix.queue[:0], h)
		for len(ix.queue) > 0 {
			p := ix.queue[0]
			ix.queue = ix.queue[1:]
			if ix.seen[p] == vid {
				continue
			}
			if ix.seen[p] >= base {
				ix.hits[p]++
			} else {
				ix.hits[p] = 1
			}
			ix.seen[p] = vid
			if i == 0 {
				order = append(order, p)
			}
			ix.queue = append(ix.queue, ix.adj[p]...)
		}
	}
	want := int32(len(hp))
	for _, p := range order {
		if ix.hits[p] == want {
			// A virtual position common to all heads returns nil, exactly
			// as the string-keyed search's d.Node(id) does.
			return ix.nodes[p]
		}
	}
	return nil
}
