package lower

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"prophet/internal/builder"
	"prophet/internal/checker"
	"prophet/internal/expr"
	"prophet/internal/interp"
	"prophet/internal/samples"
	"prophet/internal/sim"
	"prophet/internal/trace"
	"prophet/internal/uml"
	"prophet/internal/xmi"
)

// stepCounted reports whether a node charges the per-process step budget
// when executed (actions, activities and loops do; control nodes do not).
func stepCounted(n uml.Node) bool {
	switch n.(type) {
	case *uml.ActionNode, *uml.ActivityNode, *uml.LoopNode:
		return true
	}
	return false
}

// hangable reports whether the model can defeat every termination bound
// both backends share, so differential fuzzing must skip it — there is no
// reference behavior to compare against. Three shapes qualify:
//   - an in-diagram flow cycle holding a fork (each spawned branch gets a
//     fresh MaxSteps budget) or holding no step-counted node (spins
//     without ever charging the budget);
//   - a cyclic diagram call graph (recursion through activity/loop/
//     parallel bodies composes with forks the same way);
//   - an <<omp_parallel>> whose team size is not a small constant (the
//     team spawns before any member charges a step).
func hangable(m *uml.Model) bool {
	if cyclicCallGraph(m) {
		return true
	}
	for _, d := range m.Diagrams() {
		for _, n := range d.Nodes() {
			if n.Stereotype() != "omp_parallel" {
				continue
			}
			tag, ok := n.Tag("count")
			if !ok {
				continue // team size comes from SystemParams, which the harness fixes
			}
			c, err := expr.CompileString(tag)
			if err != nil {
				continue // compile fails identically in both backends
			}
			v, err := c.Eval(expr.Builtins)
			if err != nil || v != v || v > 64 {
				return true
			}
		}
	}
	return inDiagramHang(m)
}

// cyclicCallGraph walks body references (activity, loop, parallel) between
// diagrams and reports any cycle.
func cyclicCallGraph(m *uml.Model) bool {
	refs := map[string][]string{}
	for _, d := range m.Diagrams() {
		for _, n := range d.Nodes() {
			switch x := n.(type) {
			case *uml.ActivityNode:
				refs[d.Name()] = append(refs[d.Name()], x.Body)
			case *uml.LoopNode:
				refs[d.Name()] = append(refs[d.Name()], x.Body)
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(name string) bool
	visit = func(name string) bool {
		color[name] = gray
		for _, to := range refs[name] {
			switch color[to] {
			case white:
				if visit(to) {
					return true
				}
			case gray:
				return true
			}
		}
		color[name] = black
		return false
	}
	for name := range refs {
		if color[name] == white && visit(name) {
			return true
		}
	}
	return false
}

func inDiagramHang(m *uml.Model) bool {
	for _, d := range m.Diagrams() {
		// Iterative DFS three-coloring: a back edge closes a cycle; walk
		// the cycle from the stack to classify its members.
		const (
			white = 0
			gray  = 1
			black = 2
		)
		color := map[string]int{}
		var stack []string
		var visit func(id string) bool
		visit = func(id string) bool {
			color[id] = gray
			stack = append(stack, id)
			for _, e := range d.Outgoing(id) {
				to := e.To()
				if d.Node(to) == nil {
					continue
				}
				switch color[to] {
				case white:
					if visit(to) {
						return true
					}
				case gray:
					// Cycle: stack suffix from `to` to the top.
					cycleHasFork, cycleHasStep := false, false
					seen := false
					for _, id := range stack {
						if id == to {
							seen = true
						}
						if !seen {
							continue
						}
						n := d.Node(id)
						if n == nil {
							continue
						}
						if n.Kind() == uml.KindFork {
							cycleHasFork = true
						}
						if stepCounted(n) {
							cycleHasStep = true
						}
					}
					if cycleHasFork || !cycleHasStep {
						return true
					}
				}
			}
			stack = stack[:len(stack)-1]
			color[id] = black
			return false
		}
		for _, n := range d.Nodes() {
			if color[n.ID()] == white {
				if visit(n.ID()) {
					return true
				}
			}
		}
	}
	return false
}

// FuzzLoweredEquivalence feeds arbitrary XMI documents through both
// backends and requires identical observable behavior: same error text
// (modulo backend prefix) or same makespan, trace, globals and CPU
// utilization. Inputs that fail to decode, fail the checker, or contain
// flow cycles neither backend can terminate on are skipped.
func FuzzLoweredEquivalence(f *testing.F) {
	seed := func(m *uml.Model) {
		s, err := xmi.EncodeString(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(s)
	}
	seed(samples.Sample())
	seed(samples.Kernel6())
	seed(samples.Jacobi())
	seed(samples.OmpRegion())
	seed(samples.Pipeline(4))

	chk := checker.New()
	f.Fuzz(func(t *testing.T, doc string) {
		m, err := xmi.DecodeString(doc)
		if err != nil {
			t.Skip()
		}
		if rep := chk.Check(m); rep.HasErrors() {
			t.Skip()
		}
		if hangable(m) {
			t.Skip()
		}
		pr, err := interp.Compile(m, nil)
		if err != nil {
			t.Skip()
		}
		// Wall-clock bailout behind the structural screens: a model that
		// is merely expensive (deep body nesting multiplies fresh step
		// budgets) gets interrupted, and an interrupted run has no
		// comparable reference behavior.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		cfg := interp.Config{MaxSteps: 20000, Seed: 5, Context: ctx}
		want, werr := pr.Run(cfg)
		got, gerr := Lower(pr).Run(cfg)
		var ie *sim.InterruptError
		if errors.As(werr, &ie) || errors.As(gerr, &ie) ||
			errors.Is(werr, context.DeadlineExceeded) || errors.Is(gerr, context.DeadlineExceeded) {
			t.Skip()
		}
		wn := strings.ReplaceAll(errString(werr), "interp:", "X:")
		gn := strings.ReplaceAll(errString(gerr), "lower:", "X:")
		if wn != gn {
			t.Fatalf("error mismatch:\n  interp:  %v\n  lowered: %v", werr, gerr)
		}
		if werr != nil {
			return
		}
		if want.Makespan != got.Makespan {
			t.Fatalf("makespan: interp %v, lowered %v", want.Makespan, got.Makespan)
		}
		var wt, gt strings.Builder
		if err := trace.Write(&wt, want.Trace); err != nil {
			t.Fatal(err)
		}
		if err := trace.Write(&gt, got.Trace); err != nil {
			t.Fatal(err)
		}
		if wt.String() != gt.String() {
			t.Fatalf("trace mismatch:\n--- interp ---\n%s\n--- lowered ---\n%s", wt.String(), gt.String())
		}
		for k, w := range want.Globals {
			if g, ok := got.Globals[k]; !ok || (w != g && !(w != w && g != g)) {
				t.Fatalf("global %q: interp %v, lowered %v (present %v)", k, w, g, ok)
			}
		}
		if len(want.Globals) != len(got.Globals) {
			t.Fatalf("globals arity: interp %v, lowered %v", want.Globals, got.Globals)
		}
	})
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// TestHangableScreen pins the pre-screen itself: legal cyclic flows pass,
// fork cycles and step-free cycles are rejected.
func TestHangableScreen(t *testing.T) {
	legal := func() *uml.Model {
		b := builder.New("legal")
		b.Global("n", "double")
		d := b.Diagram("main")
		d.Initial()
		d.Merge("top")
		d.Action("Tick").Cost("1").Code("n = n + 1")
		d.Decision("check")
		d.Final()
		d.Flow("initial", "top").
			Flow("top", "Tick").
			Flow("Tick", "check").
			FlowIf("check", "top", "n < 5").
			FlowIf("check", "final", "else")
		return builder.MustBuild(b)
	}
	if hangable(legal()) {
		t.Error("action-bearing cycle wrongly screened out")
	}
	if hangable(samples.Sample()) {
		t.Error("sample model has no cycles, must not screen out")
	}

	stepFree := func() *uml.Model {
		b := builder.New("stepfree")
		d := b.Diagram("main")
		d.Initial()
		d.Merge("m1")
		d.Decision("d1")
		d.Final()
		d.Flow("initial", "m1").
			Flow("m1", "d1").
			FlowIf("d1", "m1", "1 == 1").
			FlowIf("d1", "final", "else")
		return builder.MustBuild(b)
	}
	if !hangable(stepFree()) {
		t.Error("step-free cycle not screened out")
	}
}
