// Package lower transforms a checked, compiled interp.Program into a flat
// executable program: the model's activity diagrams become contiguous op
// arrays whose successor and branch targets are integer indices, every
// cost/guard/count/tag expression is re-lowered against a slot layout
// (expr.Slotted), and model variables live in slot-indexed frames resolved
// here, ahead of time. The simulation inner loop (exec.go) therefore does
// zero map lookups and zero string keying per executed element — it is the
// in-process analogue of the paper's generated C++: a fixed program,
// produced once from the model, driven by the CSIM-style engine.
//
// Lowering is semantics-preserving by construction and verified by
// differential testing: the conformance corpus requires bit-identical
// traces, summaries and metrics between the lowered and tree-walking
// backends, and FuzzLoweredEquivalence extends that to generated models.
package lower

import (
	"fmt"

	"prophet/internal/expr"
	"prophet/internal/interp"
	"prophet/internal/profile"
	"prophet/internal/uml"
)

// opKind discriminates the flat program's instruction set.
type opKind uint8

const (
	opError opKind = iota // baked static error: executing it fails the flow
	opAction
	opActivity
	opParallel // <<omp_parallel>> activity
	opLoop
	opBranch   // guarded decision
	opWeighted // probabilistic decision
	opFork
	opNop // unconditional jump: closes a cycle through a merge/join
)

// actKind discriminates action stereotypes (opAction.act).
type actKind uint8

const (
	actPlain    actKind = iota // no stereotype: counts a step, nothing else
	actCompute                 // <<action+>>
	actCritical                // <<omp_critical>>
	actSend
	actRecv
	actSendrecv
	actBarrier
	actBroadcast
	actReduce
)

// assignKind classifies a code-fragment assignment target.
type assignKind uint8

const (
	asgGlobal   assignKind = iota // declared global: Globals[slot]
	asgLocal                      // static local slot (pid/tid/uid/declared local)
	asgLocalDyn                   // dynamic local slot, tracks Defined
)

// assign is one pre-resolved code-fragment statement. Targets that are not
// declared globals still check the run's extras map (config-injected
// globals with no declaration) first, mirroring the interpreter's
// globals-if-present assignment rule.
type assign struct {
	name  string
	kind  assignKind
	slot  int
	value *expr.Slotted
}

// guardArm is one guarded edge out of a decision. err is set for an
// unguarded non-else edge: the error fires only if evaluation reaches the
// arm, exactly like the interpreter's in-order guard walk.
type guardArm struct {
	guard  *expr.Slotted
	src    string // guard source text, for error messages
	target int
	err    error
}

// lvar is a loop's iteration variable, pre-resolved to its slot.
type lvar struct {
	name string
	slot int
	dyn  bool // SlotLocalDyn: maintain the Defined bit
}

// op is one flat instruction. A single struct covers all kinds; unused
// fields stay zero. pc -1 always means "flow ends here".
type op struct {
	kind opKind
	act  actKind
	next int // pc after this op

	id, name string // element identity for traces, process names, errors

	code []assign
	cost *expr.Slotted // <<action+>>/<<omp_critical>>/activity cost (nil = none)

	// Stochastic forms: a distribution-literal cost/count samples one
	// draw from the run's seed stream instead of evaluating cost/count.
	costDist  *expr.SlotDist
	countDist *expr.SlotDist

	dest, src, size, count *expr.Slotted // stereotype tag expressions

	// opBranch
	arms    []guardArm
	elsePC  int
	hasElse bool
	noMatch error // "no guard ... is true and there is no else branch"
	// opWeighted
	weights []float64
	targets []int
	total   float64

	// opFork
	branches  []int // branch body segments
	forkTotal int   // total outgoing edges (join counter size)

	// opLoop / opActivity / opParallel
	body    int   // body segment (-1 when bodyErr is set)
	bodyErr error // static body-resolution error
	loopVar lvar

	// opError / opFork dangling edge
	err error
}

// segment is one linearized flow region: a whole diagram, or a fork branch
// (entry up to, exclusive, the convergence node). entry -1 is the empty
// flow.
type segment struct {
	entry int
	ops   []op
}

// layout assigns every model variable a slot. Local slot order: pid, tid,
// uid, then declared scope-local variables (always defined), then dynamic
// locals (loop variables and code-assignment targets, defined only once
// written). Global slots follow declaration order.
type layout struct {
	localNames []string
	localIdx   map[string]int
	numStatic  int // slots < numStatic are always defined

	globalNames []string
	globalIdx   map[string]int

	rules map[string]expr.SlotRule

	pidSlot, tidSlot, uidSlot int
}

// rule is the resolver handed to expr.Resolve.
func (l *layout) rule(name string) expr.SlotRule {
	if r, ok := l.rules[name]; ok {
		return r
	}
	return expr.SlotRule{Kind: expr.SlotDynamic, Local: -1, Global: -1}
}

// Program is the flat, executable form of a compiled model. Create with
// Lower, run with Run. A Program is immutable and safe for concurrent runs.
type Program struct {
	parts interp.Parts
	lay   *layout
	segs  []segment

	mainSeg int // segment of the main diagram (-1 with mainErr set)
	mainErr error

	// globalInits parallels lay.globalNames (nil = no initializer).
	globalInits []*expr.Compiled

	// engineOnly marks programs whose ops need the event engine even for a
	// single process (fork, omp_parallel, MPI point-to-point).
	engineOnly bool
}

// lowerer is the whole-program lowering state.
type lowerer struct {
	parts   interp.Parts
	lay     *layout
	prog    *Program
	diagSeg map[string]int // diagram name -> segment index
	regions map[regionKey]int

	// resolved memoizes Compiled→Slotted re-lowering. The layout is fixed
	// for the whole program and both forms are immutable, so every op
	// holding the same compiled expression can share one slotted instance
	// (interp.Compile already dedupes identical sources).
	resolved map[*expr.Compiled]*expr.Slotted

	// resolvedDist is the same memo for distribution literals.
	resolvedDist map[*expr.Dist]*expr.SlotDist

	// flowIdx caches one dense flow index per diagram for fork
	// convergence queries (see uml.FlowIndex).
	flowIdx map[*uml.Diagram]*uml.FlowIndex
}

// convergence answers a convergence query through the per-diagram index.
func (l *lowerer) convergence(d *uml.Diagram, heads []string) uml.Node {
	if l.flowIdx == nil {
		l.flowIdx = map[*uml.Diagram]*uml.FlowIndex{}
	}
	ix, ok := l.flowIdx[d]
	if !ok {
		ix = uml.NewFlowIndex(d)
		l.flowIdx[d] = ix
	}
	return ix.Convergence(heads)
}

// regionKey memoizes fork-branch segments so cyclic flows that re-reach a
// fork re-use the already-reserved segment instead of recursing forever.
type regionKey struct {
	diagram string
	head    string
	stop    string
}

// Lower flattens a compiled program. It never fails: model defects the
// interpreter would report at run time are baked in as error ops that fire
// if (and only if) execution reaches them, preserving the interpreter's
// error-visibility semantics.
func Lower(pr *interp.Program) *Program {
	parts := pr.Parts()
	l := &lowerer{
		parts:    parts,
		lay:      buildLayout(parts),
		prog:     &Program{parts: parts},
		diagSeg:      map[string]int{},
		regions:      map[regionKey]int{},
		resolved:     map[*expr.Compiled]*expr.Slotted{},
		resolvedDist: map[*expr.Dist]*expr.SlotDist{},
	}
	l.prog.lay = l.lay

	diagrams := parts.Model.Diagrams()
	l.prog.segs = make([]segment, len(diagrams))
	for i, d := range diagrams {
		l.diagSeg[d.Name()] = i
	}
	for i, d := range diagrams {
		l.prog.segs[i] = l.lowerDiagram(d)
	}

	l.prog.mainSeg = -1
	if main := parts.Model.Main(); main != nil {
		l.prog.mainSeg = l.diagSeg[main.Name()]
	} else {
		l.prog.mainErr = fmt.Errorf("lower: model %q has no main diagram", parts.Model.Name())
	}

	l.prog.globalInits = make([]*expr.Compiled, len(l.lay.globalNames))
	for i, name := range l.lay.globalNames {
		l.prog.globalInits[i] = parts.Inits[name]
	}

	for _, seg := range l.prog.segs {
		for _, o := range seg.ops {
			switch o.kind {
			case opFork, opParallel:
				l.prog.engineOnly = true
			case opAction:
				switch o.act {
				case actSend, actRecv, actSendrecv:
					l.prog.engineOnly = true
				}
			}
		}
	}
	return l.prog
}

// buildLayout computes the slot layout from the model's declarations plus
// every name the flows can write (loop variables, assignment targets).
func buildLayout(parts interp.Parts) *layout {
	m := parts.Model
	l := &layout{
		localIdx:  map[string]int{},
		globalIdx: map[string]int{},
		rules:     map[string]expr.SlotRule{},
	}
	addLocal := func(name string) int {
		if i, ok := l.localIdx[name]; ok {
			return i
		}
		i := len(l.localNames)
		l.localNames = append(l.localNames, name)
		l.localIdx[name] = i
		return i
	}
	l.pidSlot = addLocal("pid")
	l.tidSlot = addLocal("tid")
	l.uidSlot = addLocal("uid")
	for _, v := range m.VariablesIn(uml.ScopeLocal) {
		addLocal(v.Name)
	}
	l.numStatic = len(l.localNames)

	for _, v := range m.VariablesIn(uml.ScopeGlobal) {
		if _, ok := l.globalIdx[v.Name]; ok {
			continue
		}
		l.globalIdx[v.Name] = len(l.globalNames)
		l.globalNames = append(l.globalNames, v.Name)
	}

	// Dynamic locals: names the flows write that are not static locals.
	// Loop variables shadow even declared globals (the interpreter writes
	// them straight into the locals frame); assignment targets only become
	// locals when the name is not a declared global.
	addDyn := func(name string) {
		if i, ok := l.localIdx[name]; ok && i < l.numStatic {
			return
		}
		addLocal(name)
	}
	for _, d := range m.Diagrams() {
		for _, n := range d.Nodes() {
			if ln, ok := n.(*uml.LoopNode); ok && ln.Var != "" {
				addDyn(ln.Var)
			}
		}
	}
	for _, as := range parts.Code {
		for _, a := range as {
			if _, ok := l.globalIdx[a.Name]; ok {
				continue
			}
			addDyn(a.Name)
		}
	}

	for i, name := range l.localNames {
		if i < l.numStatic {
			l.rules[name] = expr.SlotRule{Kind: expr.SlotLocal, Local: i, Global: -1}
			continue
		}
		gi := -1
		if g, ok := l.globalIdx[name]; ok {
			gi = g
		}
		l.rules[name] = expr.SlotRule{Kind: expr.SlotLocalDyn, Local: i, Global: gi}
	}
	for i, name := range l.globalNames {
		if _, ok := l.rules[name]; ok {
			continue // shadowed by a local slot
		}
		l.rules[name] = expr.SlotRule{Kind: expr.SlotGlobal, Local: -1, Global: i}
	}
	return l
}

// resolve re-lowers a compiled expression against the layout (nil-safe,
// memoized per compiled instance).
func (l *lowerer) resolve(c *expr.Compiled) *expr.Slotted {
	if c == nil {
		return nil
	}
	if s, ok := l.resolved[c]; ok {
		return s
	}
	s := c.Resolve(l.lay.rule)
	l.resolved[c] = s
	return s
}

// resolveDist re-lowers a distribution literal's argument expressions
// against the layout (nil-safe, memoized per instance).
func (l *lowerer) resolveDist(d *expr.Dist) *expr.SlotDist {
	if d == nil {
		return nil
	}
	if s, ok := l.resolvedDist[d]; ok {
		return s
	}
	s := d.Resolve(l.lay.rule)
	l.resolvedDist[d] = s
	return s
}

// lowerCode pre-resolves a node's code fragment.
func (l *lowerer) lowerCode(nodeID string) []assign {
	stmts := l.parts.Code[nodeID]
	if len(stmts) == 0 {
		return nil
	}
	out := make([]assign, len(stmts))
	for i, a := range stmts {
		r := l.lay.rule(a.Name)
		as := assign{name: a.Name, value: l.resolve(a.Value)}
		switch {
		case r.Kind == expr.SlotGlobal:
			as.kind, as.slot = asgGlobal, r.Global
		case r.Kind == expr.SlotLocal:
			as.kind, as.slot = asgLocal, r.Local
		case r.Kind == expr.SlotLocalDyn && r.Global >= 0:
			// Declared global shadowed by a loop-variable slot: assignment
			// still writes the global, as the interpreter's assign does.
			as.kind, as.slot = asgGlobal, r.Global
		default:
			as.kind, as.slot = asgLocalDyn, r.Local
		}
		out[i] = as
	}
	return out
}

// lowerDiagram flattens a whole diagram with runDiagram semantics.
func (l *lowerer) lowerDiagram(d *uml.Diagram) segment {
	ini := d.Initial()
	if ini == nil {
		if len(d.Nodes()) == 0 {
			return segment{entry: -1}
		}
		b := &segBuilder{l: l, d: d, pcs: map[string]int{}}
		return segment{
			entry: b.errOp(fmt.Errorf("lower: diagram %q has no initial node", d.Name())),
			ops:   b.ops,
		}
	}
	b := &segBuilder{l: l, d: d,
		pcs: make(map[string]int, len(d.Nodes())),
		ops: make([]op, 0, len(d.Nodes()))}
	entry := b.succPC(ini)
	return segment{entry: entry, ops: b.ops}
}

// lowerRegion flattens a fork branch: from head up to (exclusive) stop.
func (l *lowerer) lowerRegion(d *uml.Diagram, head uml.Node, stop string) int {
	key := regionKey{diagram: d.Name(), head: head.ID(), stop: stop}
	if idx, ok := l.regions[key]; ok {
		return idx
	}
	idx := len(l.prog.segs)
	l.prog.segs = append(l.prog.segs, segment{})
	l.regions[key] = idx
	// Branch regions are typically a handful of nodes; do not pre-size to
	// the diagram, it would multiply across every fork branch.
	b := &segBuilder{l: l, d: d, stop: stop, pcs: map[string]int{}}
	entry := b.pcFor(head)
	l.prog.segs[idx] = segment{entry: entry, ops: b.ops}
	return idx
}

// segBuilder linearizes one region of one diagram.
type segBuilder struct {
	l    *lowerer
	d    *uml.Diagram
	stop string // node ID execution halts at ("" = none)
	pcs  map[string]int
	ops  []op
}

// inProgress marks a pass-through node currently being resolved; hitting
// it again means a control-flow cycle back into the node, which closes
// through a reserved jump slot patched once resolution completes.
const inProgress = -2

// reserve allocates the node's pc before lowering its successors, so
// cyclic flows resolve to the already-reserved index.
func (b *segBuilder) reserve(id string) int {
	pc := len(b.ops)
	b.ops = append(b.ops, op{})
	b.pcs[id] = pc
	return pc
}

// errOp appends a baked error instruction.
func (b *segBuilder) errOp(err error) int {
	pc := len(b.ops)
	b.ops = append(b.ops, op{kind: opError, err: err, next: -1})
	return pc
}

// pcFor returns the pc where execution of node n begins, lowering on first
// visit. nil or the region's stop node end the flow (-1).
func (b *segBuilder) pcFor(n uml.Node) int {
	if n == nil {
		return -1
	}
	if b.stop != "" && n.ID() == b.stop {
		return -1
	}
	if pc, ok := b.pcs[n.ID()]; ok {
		if pc == inProgress {
			// A cycle re-entered a merge/join while it is being
			// flattened away: reserve a jump slot the in-progress
			// resolution will patch with the real target.
			return b.reserve(n.ID())
		}
		return pc
	}
	switch x := n.(type) {
	case *uml.ControlNode:
		switch x.Kind() {
		case uml.KindFinal:
			return -1
		case uml.KindMerge, uml.KindJoin:
			// Pure pass-through: flattened away entirely when acyclic.
			b.pcs[x.ID()] = inProgress
			pc := b.succPC(x)
			if slot := b.pcs[x.ID()]; slot != inProgress {
				// A cycle reserved a jump slot for this node while its
				// successor lowered; close the loop through it.
				b.ops[slot] = op{kind: opNop, next: pc}
				return pc
			}
			b.pcs[x.ID()] = pc
			return pc
		case uml.KindDecision:
			return b.lowerDecision(x)
		case uml.KindFork:
			return b.lowerFork(x)
		default:
			return b.errOp(fmt.Errorf("lower: diagram %q: unexpected %v mid-flow", b.d.Name(), x.Kind()))
		}
	case *uml.ActionNode:
		return b.lowerAction(x)
	case *uml.ActivityNode:
		return b.lowerActivity(x)
	case *uml.LoopNode:
		return b.lowerLoop(x)
	}
	return b.errOp(fmt.Errorf("lower: unknown node type %T", n))
}

// succPC resolves a node's single successor with the interpreter's
// successor() rules: none ends the flow, a dangling or ambiguous edge is
// an error.
func (b *segBuilder) succPC(n uml.Node) int {
	out := b.d.Outgoing(n.ID())
	switch len(out) {
	case 0:
		return -1
	case 1:
		next := b.d.Node(out[0].To())
		if next == nil {
			return b.errOp(fmt.Errorf("lower: diagram %q: dangling edge from %q", b.d.Name(), n.Name()))
		}
		return b.pcFor(next)
	}
	return b.errOp(fmt.Errorf("lower: diagram %q: %v %q has %d successors",
		b.d.Name(), n.Kind(), n.Name(), len(out)))
}

// branchTarget resolves a decision edge's target: a dangling target
// silently ends the flow, as the interpreter's d.Node(e.To()) == nil does.
func (b *segBuilder) branchTarget(e *uml.Edge) int {
	return b.pcFor(b.d.Node(e.To()))
}

func (b *segBuilder) lowerDecision(n *uml.ControlNode) int {
	out := b.d.Outgoing(n.ID())
	pc := b.reserve(n.ID())
	if len(out) > 0 && out[0].Guard == "" && out[0].Weight > 0 {
		o := op{kind: opWeighted, id: n.ID(), name: n.Name(), next: -1}
		for _, e := range out {
			if e.Guard != "" || e.Weight <= 0 {
				b.ops[pc] = op{kind: opError, next: -1, err: fmt.Errorf(
					"lower: diagram %q: decision %q mixes weighted and guarded branches",
					b.d.Name(), n.Name())}
				return pc
			}
			o.total += e.Weight
		}
		for _, e := range out {
			o.weights = append(o.weights, e.Weight)
			o.targets = append(o.targets, b.branchTarget(e))
		}
		b.ops[pc] = o
		return pc
	}
	o := op{kind: opBranch, id: n.ID(), name: n.Name(), next: -1, elsePC: -1}
	o.noMatch = fmt.Errorf("lower: diagram %q: no guard of decision %q is true and there is no else branch",
		b.d.Name(), n.Name())
	for _, e := range out {
		if e.IsElse() {
			// The interpreter keeps the last else edge it sees.
			o.elsePC = b.branchTarget(e)
			o.hasElse = true
			continue
		}
		g, ok := b.l.parts.Guards[e.ID()]
		if !ok {
			o.arms = append(o.arms, guardArm{err: fmt.Errorf(
				"lower: diagram %q: unguarded branch out of decision", b.d.Name())})
			continue
		}
		o.arms = append(o.arms, guardArm{
			guard:  b.l.resolve(g),
			src:    e.Guard,
			target: b.branchTarget(e),
		})
	}
	b.ops[pc] = o
	return pc
}

func (b *segBuilder) lowerFork(n *uml.ControlNode) int {
	out := b.d.Outgoing(n.ID())
	pc := b.reserve(n.ID())
	if len(out) < 2 {
		b.ops[pc] = op{kind: opError, next: -1, err: fmt.Errorf(
			"lower: diagram %q: fork %q has %d branch(es)", b.d.Name(), n.Name(), len(out))}
		return pc
	}
	heads := make([]string, len(out))
	for i, e := range out {
		heads[i] = e.To()
	}
	conv := b.l.convergence(b.d, heads)
	stop := ""
	if conv != nil {
		stop = conv.ID()
	}
	o := op{kind: opFork, id: n.ID(), name: n.Name(), forkTotal: len(out), next: -1}
	for _, e := range out {
		head := b.d.Node(e.To())
		if head == nil {
			// The interpreter spawns the earlier branches, then fails
			// without waiting on the join.
			o.err = fmt.Errorf("lower: diagram %q: dangling fork edge", b.d.Name())
			break
		}
		o.branches = append(o.branches, b.l.lowerRegion(b.d, head, stop))
	}
	b.ops[pc] = o
	if o.err == nil {
		// Continuation after the branches rejoin: past the join node, or
		// at the convergence node itself when it is executable.
		if conv != nil && conv.Kind() == uml.KindJoin {
			b.ops[pc].next = b.succPC(conv)
		} else if conv != nil {
			b.ops[pc].next = b.pcFor(conv)
		}
	}
	return pc
}

func (b *segBuilder) lowerAction(n *uml.ActionNode) int {
	pc := b.reserve(n.ID())
	o := op{kind: opAction, id: n.ID(), name: n.Name(), next: -1}
	switch st := n.Stereotype(); st {
	case "":
		o.act = actPlain
	case profile.ActionPlus:
		o.act = actCompute
	case profile.OMPCritical:
		o.act = actCritical
	case profile.MPISend:
		o.act = actSend
	case profile.MPIRecv:
		o.act = actRecv
	case profile.MPISendrecv:
		o.act = actSendrecv
	case profile.MPIBarrier:
		o.act = actBarrier
	case profile.MPIBroadcast:
		o.act = actBroadcast
	case profile.MPIReduce:
		o.act = actReduce
	default:
		// Unsupported stereotypes still run their code fragment and emit
		// Enter before failing, like execAction; since the whole run is
		// discarded on error, a bare error op preserves observable
		// behavior.
		b.ops[pc] = op{kind: opError, next: -1, err: fmt.Errorf(
			"lower: element %q: unsupported stereotype <<%s>>", n.Name(), st)}
		return pc
	}
	o.code = b.l.lowerCode(n.ID())
	o.cost = b.l.resolve(b.l.parts.Costs[n.ID()])
	o.costDist = b.l.resolveDist(b.l.parts.DistCosts[n.ID()])
	tags := b.l.parts.Tags[n.ID()]
	o.dest = b.l.resolve(tags[profile.TagDest])
	o.src = b.l.resolve(tags[profile.TagSrc])
	o.size = b.l.resolve(tags[profile.TagSize])
	b.ops[pc] = o
	b.ops[pc].next = b.succPC(n)
	return pc
}

func (b *segBuilder) lowerActivity(n *uml.ActivityNode) int {
	pc := b.reserve(n.ID())
	o := op{kind: opActivity, id: n.ID(), name: n.Name(), next: -1, body: -1}
	o.code = b.l.lowerCode(n.ID())
	o.cost = b.l.resolve(b.l.parts.Costs[n.ID()])
	o.costDist = b.l.resolveDist(b.l.parts.DistCosts[n.ID()])
	if n.Stereotype() == profile.OMPParallel {
		o.kind = opParallel
		o.count = b.l.resolve(b.l.parts.Tags[n.ID()][profile.TagCount])
		if idx, ok := b.l.diagSeg[n.Body]; ok && b.l.parts.Model.DiagramByName(n.Body) != nil {
			o.body = idx
		} else {
			o.bodyErr = fmt.Errorf("lower: parallel region %q references unknown diagram %q", n.Name(), n.Body)
		}
	} else if idx, ok := b.l.diagSeg[n.Body]; ok && b.l.parts.Model.DiagramByName(n.Body) != nil {
		o.body = idx
	} else {
		o.bodyErr = fmt.Errorf("lower: activity %q references unknown diagram %q", n.Name(), n.Body)
	}
	b.ops[pc] = o
	b.ops[pc].next = b.succPC(n)
	return pc
}

func (b *segBuilder) lowerLoop(n *uml.LoopNode) int {
	pc := b.reserve(n.ID())
	o := op{kind: opLoop, id: n.ID(), name: n.Name(), next: -1, body: -1}
	o.count = b.l.resolve(b.l.parts.Counts[n.ID()])
	o.countDist = b.l.resolveDist(b.l.parts.DistCounts[n.ID()])
	if idx, ok := b.l.diagSeg[n.Body]; ok {
		o.body = idx
	} else {
		o.bodyErr = fmt.Errorf("lower: loop %q references unknown diagram %q", n.Name(), n.Body)
	}
	if n.Var != "" {
		r := b.l.lay.rule(n.Var)
		o.loopVar = lvar{name: n.Var, slot: r.Local, dyn: r.Kind == expr.SlotLocalDyn}
	}
	b.ops[pc] = o
	b.ops[pc].next = b.succPC(n)
	return pc
}
