package lower

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"prophet/internal/builder"
	"prophet/internal/interp"
	"prophet/internal/machine"
	"prophet/internal/sim"
	"prophet/internal/trace"
	"prophet/internal/uml"
)

// renderTrace serializes a trace for exact comparison.
func renderTrace(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	var sb strings.Builder
	if err := trace.Write(&sb, tr); err != nil {
		t.Fatalf("render trace: %v", err)
	}
	return sb.String()
}

// normalize maps backend error prefixes to a common form so messages can
// be compared verbatim across backends.
func normalize(err error) string {
	if err == nil {
		return ""
	}
	return strings.ReplaceAll(err.Error(), "lower:", "interp:")
}

// assertIdentical runs the model under both backends and requires
// bit-identical results: same error text (modulo prefix), same makespan
// bits, same trace bytes, same globals, same per-node CPU utilization.
func assertIdentical(t *testing.T, m *uml.Model, cfg interp.Config) {
	t.Helper()
	pr, err := interp.Compile(m, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want, werr := pr.Run(cfg)
	got, gerr := Lower(pr).Run(cfg)
	if (werr == nil) != (gerr == nil) {
		t.Fatalf("error mismatch:\n  interp:  %v\n  lowered: %v", werr, gerr)
	}
	if werr != nil {
		if normalize(werr) != normalize(gerr) {
			t.Fatalf("error text mismatch:\n  interp:  %v\n  lowered: %v", werr, gerr)
		}
		return
	}
	if w, g := want.Makespan, got.Makespan; w != g && !(math.IsNaN(w) && math.IsNaN(g)) {
		t.Errorf("makespan: interp %v, lowered %v", w, g)
	}
	if w, g := renderTrace(t, want.Trace), renderTrace(t, got.Trace); w != g {
		t.Errorf("trace mismatch:\n--- interp ---\n%s\n--- lowered ---\n%s", w, g)
	}
	if len(want.CPUUtilization) != len(got.CPUUtilization) {
		t.Fatalf("cpu utilization arity: %d vs %d", len(want.CPUUtilization), len(got.CPUUtilization))
	}
	for i := range want.CPUUtilization {
		if w, g := want.CPUUtilization[i], got.CPUUtilization[i]; w != g && !(math.IsNaN(w) && math.IsNaN(g)) {
			t.Errorf("cpu[%d]: interp %v, lowered %v", i, w, g)
		}
	}
	if len(want.Globals) != len(got.Globals) {
		t.Errorf("globals arity: interp %v, lowered %v", want.Globals, got.Globals)
	}
	for k, w := range want.Globals {
		g, ok := got.Globals[k]
		if !ok {
			t.Errorf("global %q missing from lowered result", k)
			continue
		}
		if w != g && !(math.IsNaN(w) && math.IsNaN(g)) {
			t.Errorf("global %q: interp %v, lowered %v", k, w, g)
		}
	}
}

// TestLowerNodeKinds covers every lowerable node kind against the
// interpreter, in both trivial and composed flows.
func TestLowerNodeKinds(t *testing.T) {
	cases := []struct {
		name  string
		model func() *uml.Model
		cfg   interp.Config
	}{
		{
			name: "plain-action-no-stereotype",
			model: func() *uml.Model {
				b := builder.New("plain")
				d := b.Diagram("main")
				d.Initial()
				n := d.Action("NotPerf")
				n.Node().SetStereotype("") // plain UML action: no cost, no trace
				d.Final()
				d.Chain("initial", "NotPerf", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "action-cost",
			model: func() *uml.Model {
				b := builder.New("cost")
				d := b.Diagram("main")
				d.Initial()
				d.Action("Work").Cost("2.5")
				d.Final()
				d.Chain("initial", "Work", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "action-code-assignments",
			model: func() *uml.Model {
				b := builder.New("code")
				b.Global("GV", "double").Local("LV", "double")
				d := b.Diagram("main")
				d.Initial()
				d.Action("Set").Code("GV = 10; LV = GV * 2; fresh = LV + 1").Cost("GV + LV + fresh")
				d.Final()
				d.Chain("initial", "Set", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "activity-nesting-with-cost",
			model: func() *uml.Model {
				b := builder.New("nest")
				d := b.Diagram("main")
				d.Initial()
				d.Activity("Outer", "inner").Cost("1")
				d.Final()
				d.Chain("initial", "Outer", "final")
				in := b.Diagram("inner")
				in.Initial()
				in.Action("Leaf").Cost("0.5")
				in.Final()
				in.Chain("initial", "Leaf", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "loop-with-iteration-variable",
			model: func() *uml.Model {
				b := builder.New("loop")
				b.Global("acc", "double")
				d := b.Diagram("main")
				d.Initial()
				d.Loop("Reps", "4", "body").Var("i")
				d.Final()
				d.Chain("initial", "Reps", "final")
				body := b.Diagram("body")
				body.Initial()
				body.Action("Step").Cost("i + 1").Code("acc = acc + i")
				body.Final()
				body.Chain("initial", "Step", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "loop-var-shadows-global",
			model: func() *uml.Model {
				b := builder.New("shadow")
				b.GlobalInit("i", "double", "100")
				d := b.Diagram("main")
				d.Initial()
				d.Action("Before").Cost("i") // reads the global
				d.Loop("Reps", "3", "body").Var("i")
				d.Action("After").Cost("i") // global is restored after the loop
				d.Final()
				d.Chain("initial", "Before", "Reps", "After", "final")
				body := b.Diagram("body")
				body.Initial()
				body.Action("Step").Cost("i") // reads the iteration index
				body.Final()
				body.Chain("initial", "Step", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "decision-guarded-with-else",
			model: func() *uml.Model {
				b := builder.New("guard")
				b.GlobalInit("x", "double", "5")
				d := b.Diagram("main")
				d.Initial()
				d.Decision("pick")
				d.Action("Low").Cost("1")
				d.Action("High").Cost("2")
				d.Merge("m")
				d.Final()
				d.Flow("initial", "pick").
					FlowIf("pick", "Low", "x < 3").
					FlowIf("pick", "High", "else").
					Flow("Low", "m").
					Flow("High", "m").
					Flow("m", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "decision-weighted",
			model: func() *uml.Model {
				b := builder.New("weighted")
				d := b.Diagram("main")
				d.Initial()
				d.Loop("Draws", "20", "one")
				d.Final()
				d.Chain("initial", "Draws", "final")
				one := b.Diagram("one")
				one.Initial()
				one.Decision("coin")
				one.Action("Heads").Cost("1")
				one.Action("Tails").Cost("10")
				one.Merge("m")
				one.Final()
				one.Flow("initial", "coin").
					FlowWeighted("coin", "Heads", 0.7).
					FlowWeighted("coin", "Tails", 0.3).
					Flow("Heads", "m").
					Flow("Tails", "m").
					Flow("m", "final")
				return builder.MustBuild(b)
			},
			cfg: interp.Config{Seed: 42},
		},
		{
			name: "fork-join",
			model: func() *uml.Model {
				b := builder.New("forkjoin")
				d := b.Diagram("main")
				d.Initial()
				d.Fork("split")
				d.Action("A").Cost("1")
				d.Action("B").Cost("2")
				d.Join("meet")
				d.Action("After").Cost("0.5")
				d.Final()
				d.Flow("initial", "split").
					Flow("split", "A").
					Flow("split", "B").
					Flow("A", "meet").
					Flow("B", "meet").
					Flow("meet", "After").
					Flow("After", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "parallel-region-with-critical",
			model: func() *uml.Model {
				b := builder.New("omp")
				d := b.Diagram("main")
				d.Initial()
				par := d.Activity("Par", "body")
				par.Node().SetStereotype("omp_parallel")
				d.Final()
				d.Chain("initial", "Par", "final")
				body := b.Diagram("body")
				body.Initial()
				body.Action("Work").Cost("tid + 1")
				crit := body.Action("Lock").Cost("0.25")
				crit.Node().SetStereotype("omp_critical")
				body.Final()
				body.Chain("initial", "Work", "Lock", "final")
				return builder.MustBuild(b)
			},
			cfg: interp.Config{Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 4, Processes: 1, Threads: 4}},
		},
		{
			name: "mpi-ring-sendrecv",
			model: func() *uml.Model {
				b := builder.New("ring")
				d := b.Diagram("main")
				d.Initial()
				n := d.MPI("Shift", "mpi_sendrecv")
				n.Tag("dest", "(pid + 1) % processes").
					Tag("src", "(pid + processes - 1) % processes").
					Tag("size", "1024")
				d.Final()
				d.Chain("initial", "Shift", "final")
				return builder.MustBuild(b)
			},
			cfg: interp.Config{Params: machine.SystemParams{Nodes: 2, ProcessorsPerNode: 1, Processes: 4, Threads: 1}},
		},
		{
			name: "mpi-send-recv-pair",
			model: func() *uml.Model {
				b := builder.New("pair")
				d := b.Diagram("main")
				d.Initial()
				d.Decision("rank")
				s := d.MPI("Tx", "mpi_send")
				s.Tag("dest", "1").Tag("size", "4096")
				r := d.MPI("Rx", "mpi_recv")
				r.Tag("src", "0")
				d.Merge("m")
				d.Final()
				d.Flow("initial", "rank").
					FlowIf("rank", "Tx", "pid == 0").
					FlowIf("rank", "Rx", "else").
					Flow("Tx", "m").
					Flow("Rx", "m").
					Flow("m", "final")
				return builder.MustBuild(b)
			},
			cfg: interp.Config{Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 2, Processes: 2, Threads: 1}},
		},
		{
			name: "mpi-collectives",
			model: func() *uml.Model {
				b := builder.New("coll")
				d := b.Diagram("main")
				d.Initial()
				d.Action("Work").Cost("pid + 1")
				bar := d.MPI("Sync", "mpi_barrier")
				_ = bar
				bc := d.MPI("Share", "mpi_bcast")
				bc.Tag("size", "512")
				rd := d.MPI("Sum", "mpi_reduce")
				rd.Tag("size", "512")
				d.Final()
				d.Chain("initial", "Work", "Sync", "Share", "Sum", "final")
				return builder.MustBuild(b)
			},
			cfg: interp.Config{Params: machine.SystemParams{Nodes: 2, ProcessorsPerNode: 1, Processes: 4, Threads: 1}},
		},
		{
			name: "collectives-single-process-direct",
			model: func() *uml.Model {
				b := builder.New("coll1")
				d := b.Diagram("main")
				d.Initial()
				d.Action("Work").Cost("3")
				d.MPI("Sync", "mpi_barrier")
				bc := d.MPI("Share", "mpi_bcast")
				bc.Tag("size", "512")
				d.Final()
				d.Chain("initial", "Work", "Sync", "Share", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "functions-and-local-inits",
			model: func() *uml.Model {
				b := builder.New("funcs")
				b.Function("F", []string{"n"}, "n * base + offset").
					GlobalInit("base", "double", "2").
					LocalInit("offset", "double", "base + pid")
				d := b.Diagram("main")
				d.Initial()
				d.Action("Work").Cost("F(3)")
				d.Final()
				d.Chain("initial", "Work", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "global-init-chain",
			model: func() *uml.Model {
				b := builder.New("chain")
				b.GlobalInit("a", "double", "2").
					GlobalInit("b", "double", "a * 3").
					GlobalInit("c", "double", "b + processes")
				d := b.Diagram("main")
				d.Initial()
				d.Action("Work").Cost("c")
				d.Final()
				d.Chain("initial", "Work", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "config-extras-assignment",
			model: func() *uml.Model {
				b := builder.New("extras")
				d := b.Diagram("main")
				d.Initial()
				// "knob" is only provided via Config.Globals: assignments
				// must update the injected value, not create a local.
				d.Action("Bump").Code("knob = knob + 1").Cost("knob")
				d.Final()
				d.Chain("initial", "Bump", "final")
				return builder.MustBuild(b)
			},
			cfg: interp.Config{Globals: map[string]float64{"knob": 10}},
		},
		{
			name: "cyclic-flow-with-merge",
			model: func() *uml.Model {
				b := builder.New("cycle")
				b.Global("n", "double")
				d := b.Diagram("main")
				d.Initial()
				d.Merge("top")
				d.Action("Tick").Cost("1").Code("n = n + 1")
				d.Decision("check")
				d.Final()
				d.Flow("initial", "top").
					Flow("top", "Tick").
					Flow("Tick", "check").
					FlowIf("check", "top", "n < 5").
					FlowIf("check", "final", "else")
				return builder.MustBuild(b)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertIdentical(t, tc.model(), tc.cfg)
		})
	}
}

// TestLowerStaticErrors: malformed flows must fail with the interpreter's
// message, and only when execution actually reaches the defect.
func TestLowerStaticErrors(t *testing.T) {
	cases := []struct {
		name  string
		model func() *uml.Model
	}{
		{
			name: "no-initial-node",
			model: func() *uml.Model {
				b := builder.New("noinit")
				d := b.Diagram("main")
				d.Action("Orphan").Cost("1")
				return builder.MustBuild(b)
			},
		},
		{
			name: "multiple-successors",
			model: func() *uml.Model {
				b := builder.New("multi")
				d := b.Diagram("main")
				d.Initial()
				d.Action("A").Cost("1")
				d.Action("B").Cost("1")
				d.Action("C").Cost("1")
				d.Final()
				d.Flow("initial", "A").
					Flow("A", "B").
					Flow("A", "C").
					Flow("B", "final").
					Flow("C", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "fork-single-branch",
			model: func() *uml.Model {
				b := builder.New("fork1")
				d := b.Diagram("main")
				d.Initial()
				d.Fork("split")
				d.Action("A").Cost("1")
				d.Final()
				d.Flow("initial", "split").
					Flow("split", "A").
					Flow("A", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "unsupported-stereotype",
			model: func() *uml.Model {
				b := builder.New("stereo")
				d := b.Diagram("main")
				d.Initial()
				n := d.Action("Odd")
				n.Node().SetStereotype("mystery")
				d.Final()
				d.Chain("initial", "Odd", "final")
				return builder.MustBuild(b)
			},
		},
		{
			name: "unreached-defect-stays-silent",
			model: func() *uml.Model {
				b := builder.New("dormant")
				d := b.Diagram("main")
				d.Initial()
				d.Decision("pick")
				d.Action("Good").Cost("1")
				n := d.Action("Bad")
				n.Node().SetStereotype("mystery")
				d.Merge("m")
				d.Final()
				d.Flow("initial", "pick").
					FlowIf("pick", "Good", "1 == 1").
					FlowIf("pick", "Bad", "else").
					Flow("Good", "m").
					Flow("Bad", "m").
					Flow("m", "final")
				return builder.MustBuild(b)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			assertIdentical(t, tc.model(), interp.Config{})
		})
	}
}

// runawayModel loops forever: a counted loop whose count never ends the
// flow because the guard always routes back.
func runawayModel() *uml.Model {
	b := builder.New("runaway")
	d := b.Diagram("main")
	d.Initial()
	d.Loop("Spin", "1000000000000", "body")
	d.Final()
	d.Chain("initial", "Spin", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("Tick").Cost("0")
	body.Final()
	body.Chain("initial", "Tick", "final")
	return builder.MustBuild(b)
}

func TestLowerRunawayGuard(t *testing.T) {
	cfg := interp.Config{MaxSteps: 5000}
	assertIdentical(t, runawayModel(), cfg)

	pr, err := interp.Compile(runawayModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_, rerr := Lower(pr).Run(cfg)
	if rerr == nil || !strings.Contains(rerr.Error(), "exceeded 5000 element executions") {
		t.Fatalf("expected runaway-guard error, got %v", rerr)
	}
	var perr *sim.ProcessError
	if !errors.As(rerr, &perr) {
		t.Fatalf("runaway error should chain through *sim.ProcessError, got %T: %v", rerr, rerr)
	}
}

// spinModel loops effectively forever with nonzero per-iteration cost, so
// engine-mode processes yield between holds and stay interruptible.
func spinModel() *uml.Model {
	b := builder.New("spin")
	d := b.Diagram("main")
	d.Initial()
	d.Loop("Spin", "1000000000000", "body")
	d.Final()
	d.Chain("initial", "Spin", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("Tick").Cost("1")
	body.Final()
	body.Chain("initial", "Tick", "final")
	return builder.MustBuild(b)
}

// TestLowerInterrupt cancels a run mid-simulation in both execution modes
// and requires the interpreter's interrupt semantics: a *sim.InterruptError
// wrapping the context cause.
func TestLowerInterrupt(t *testing.T) {
	modes := []struct {
		name string
		cfg  func(ctx context.Context) interp.Config
	}{
		{
			name: "direct",
			cfg: func(ctx context.Context) interp.Config {
				return interp.Config{Context: ctx, NoTrace: true}
			},
		},
		{
			name: "engine",
			cfg: func(ctx context.Context) interp.Config {
				// A second process forces engine mode.
				return interp.Config{
					Context: ctx, NoTrace: true,
					Params: machine.SystemParams{Nodes: 1, ProcessorsPerNode: 1, Processes: 2, Threads: 1},
				}
			},
		},
	}
	for _, mode := range modes {
		t.Run(mode.name, func(t *testing.T) {
			pr, err := interp.Compile(spinModel(), nil)
			if err != nil {
				t.Fatal(err)
			}
			lp := Lower(pr)
			cause := errors.New("test says stop")
			ctx, cancel := context.WithCancelCause(context.Background())
			go func() {
				time.Sleep(5 * time.Millisecond)
				cancel(cause)
			}()
			cfg := mode.cfg(ctx)
			cfg.MaxSteps = 1 << 30
			_, rerr := lp.Run(cfg)
			if rerr == nil {
				t.Fatal("expected interrupt error")
			}
			var ie *sim.InterruptError
			if !errors.As(rerr, &ie) {
				t.Fatalf("expected *sim.InterruptError in chain, got %v", rerr)
			}
			if !errors.Is(rerr, cause) {
				t.Fatalf("interrupt should wrap the context cause, got %v", rerr)
			}
		})
	}
}

// TestLowerPreCancelled: an already-done context refuses to start.
func TestLowerPreCancelled(t *testing.T) {
	pr, err := interp.Compile(runawayModel(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, rerr := Lower(pr).Run(interp.Config{Context: ctx}); !errors.Is(rerr, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", rerr)
	}
}

// TestDirectModeSelection: the engine-free path is used exactly when the
// program and config allow it.
func TestDirectModeSelection(t *testing.T) {
	single := func() *uml.Model {
		b := builder.New("single")
		d := b.Diagram("main")
		d.Initial()
		d.Action("Work").Cost("1")
		d.Final()
		d.Chain("initial", "Work", "final")
		return builder.MustBuild(b)
	}
	pr, err := interp.Compile(single(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lp := Lower(pr)
	if lp.engineOnly {
		t.Fatal("single-action program should not be engine-only")
	}
	if !lp.direct(interp.Config{}, machine.DefaultParams()) {
		t.Error("default config should run direct")
	}
	if lp.direct(interp.Config{}, machine.SystemParams{Nodes: 1, ProcessorsPerNode: 1, Processes: 2, Threads: 1}) {
		t.Error("multi-process must use the engine")
	}
	if lp.direct(interp.Config{Policy: machine.PolicyPS}, machine.DefaultParams()) {
		t.Error("processor sharing must use the engine")
	}
	if lp.direct(interp.Config{RunLimit: 10}, machine.DefaultParams()) {
		t.Error("run limits must use the engine")
	}

	forked := func() *uml.Model {
		b := builder.New("forked")
		d := b.Diagram("main")
		d.Initial()
		d.Fork("split")
		d.Action("A").Cost("1")
		d.Action("B").Cost("1")
		d.Join("meet")
		d.Final()
		d.Flow("initial", "split").
			Flow("split", "A").
			Flow("split", "B").
			Flow("A", "meet").
			Flow("B", "meet").
			Flow("meet", "final")
		return builder.MustBuild(b)
	}
	fpr, err := interp.Compile(forked(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !Lower(fpr).engineOnly {
		t.Error("fork requires the engine even with one process")
	}
}

// TestDirectVsEngineIdentity: for an engine-eligible program, forcing
// engine mode (via RunLimit) must give the exact same result as direct
// mode — the two lowered paths agree with each other, not just with the
// interpreter.
func TestDirectVsEngineIdentity(t *testing.T) {
	b := builder.New("both")
	b.GlobalInit("acc", "double", "0")
	d := b.Diagram("main")
	d.Initial()
	d.Loop("Reps", "10", "body").Var("i")
	d.Final()
	d.Chain("initial", "Reps", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Action("Step").Cost("0.125 * (i + 1)").Code("acc = acc + i")
	body.Final()
	body.Chain("initial", "Step", "final")
	m := builder.MustBuild(b)

	pr, err := interp.Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	lp := Lower(pr)
	direct, err := lp.Run(interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := lp.Run(interp.Config{RunLimit: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Makespan != engine.Makespan {
		t.Errorf("makespan: direct %v, engine %v", direct.Makespan, engine.Makespan)
	}
	if w, g := renderTrace(t, direct.Trace), renderTrace(t, engine.Trace); w != g {
		t.Errorf("trace mismatch between direct and engine modes")
	}
	if fmt.Sprint(direct.CPUUtilization) != fmt.Sprint(engine.CPUUtilization) {
		t.Errorf("cpu utilization: direct %v, engine %v", direct.CPUUtilization, engine.CPUUtilization)
	}
	if fmt.Sprint(direct.Globals) != fmt.Sprint(engine.Globals) {
		t.Errorf("globals: direct %v, engine %v", direct.Globals, engine.Globals)
	}
}

// TestLowerReusable: one lowered program supports many concurrent runs.
func TestLowerReusable(t *testing.T) {
	b := builder.New("reuse")
	b.Global("n", "double")
	d := b.Diagram("main")
	d.Initial()
	d.Action("Work").Cost("n").Code("n = n * 2")
	d.Final()
	d.Chain("initial", "Work", "final")
	m := builder.MustBuild(b)
	pr, err := interp.Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	lp := Lower(pr)
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		i := i
		go func() {
			// Code runs before the cost expression, so the makespan
			// observes the doubled value.
			res, err := lp.Run(interp.Config{Globals: map[string]float64{"n": float64(i)}, NoTrace: true})
			if err == nil && res.Makespan != float64(2*i) {
				err = fmt.Errorf("run %d: makespan %v", i, res.Makespan)
			}
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
