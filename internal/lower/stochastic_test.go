package lower

import (
	"strings"
	"testing"

	"prophet/internal/builder"
	"prophet/internal/interp"
	"prophet/internal/trace"
	"prophet/internal/uml"
)

// stochasticModel exercises every distribution family plus a weighted
// decision: the shapes whose draws must consume the seed stream
// identically in both backends.
func stochasticModel() *uml.Model {
	b := builder.New("stochastic")
	b.Global("scale", "double")
	d := b.Diagram("main")
	d.Initial()
	d.Loop("Jobs", "5", "job").Var("j")
	d.Final()
	d.Chain("initial", "Jobs", "final")
	job := b.Diagram("job")
	job.Initial()
	job.Action("Fetch").Cost("exp(0.002 * (scale + 1))")
	job.Decision("D")
	job.Action("Fast").Cost("uniform(0.001, 0.003)")
	job.Action("Slow").Cost("normal(0.005, 0.002)")
	job.Merge("M")
	job.Action("Rpc").Cost("empirical(0.001, 0.004, 0.01)")
	job.Final()
	job.Flow("initial", "Fetch")
	job.Flow("Fetch", "D")
	job.FlowWeighted("D", "Fast", 0.7)
	job.FlowWeighted("D", "Slow", 0.3)
	job.Flow("Fast", "M")
	job.Flow("Slow", "M")
	job.Flow("M", "Rpc")
	job.Flow("Rpc", "final")
	return builder.MustBuild(b)
}

func traceText(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	var sb strings.Builder
	if err := trace.Write(&sb, tr); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// With stochastic tagged values, both backends must draw the same values
// in the same order: equal seeds give bit-identical makespans and
// traces across backends, repeated runs are reproducible, and distinct
// seeds actually change the outcome.
func TestStochasticCrossBackendDeterminism(t *testing.T) {
	m := stochasticModel()
	pr, err := interp.Compile(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	lp := Lower(pr)
	makespans := map[int64]float64{}
	for _, seed := range []int64{1, 2, 9} {
		cfg := interp.Config{Seed: seed}
		want, err := pr.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d interp: %v", seed, err)
		}
		got, err := lp.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d lowered: %v", seed, err)
		}
		if want.Makespan != got.Makespan {
			t.Errorf("seed %d: interp makespan %v, lowered %v", seed, want.Makespan, got.Makespan)
		}
		if wt, gt := traceText(t, want.Trace), traceText(t, got.Trace); wt != gt {
			t.Errorf("seed %d: traces diverge\n--- interp ---\n%s\n--- lowered ---\n%s", seed, wt, gt)
		}
		again, err := lp.Run(cfg)
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if again.Makespan != got.Makespan {
			t.Errorf("seed %d: lowered rerun makespan %v != %v", seed, again.Makespan, got.Makespan)
		}
		makespans[seed] = got.Makespan
	}
	if makespans[1] == makespans[2] && makespans[2] == makespans[9] {
		t.Error("all seeds produced the same makespan; draws are not actually stochastic")
	}
}
