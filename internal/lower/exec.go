package lower

import (
	"context"
	"fmt"
	"strconv"

	"prophet/internal/expr"
	"prophet/internal/interp"
	"prophet/internal/machine"
	"prophet/internal/obs"
	"prophet/internal/sim"
	"prophet/internal/trace"
	"prophet/internal/uml"
)

// Run executes the flat program under the interpreter's configuration and
// produces a Result bit-identical to interp.Program.Run on the same model
// and config. Single-process models with no engine-dependent ops run in
// direct mode — a plain loop over the op array with a local clock, no
// event queue at all; everything else replays the interpreter's engine
// choreography (same process names, counters and facilities, so the event
// order and therefore the trace are identical).
func (pr *Program) Run(cfg interp.Config) (*interp.Result, error) {
	sp := cfg.Params
	if sp == (machine.SystemParams{}) {
		sp = machine.DefaultParams()
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 50_000_000
	}
	if pr.direct(cfg, sp) {
		return pr.runDirect(cfg, sp, maxSteps)
	}
	return pr.runEngine(cfg, sp, maxSteps)
}

// direct reports whether the run can skip the event engine entirely: one
// process, FCFS, no engine-only ops, and no feature that observes engine
// internals (telemetry, run limits).
func (pr *Program) direct(cfg interp.Config, sp machine.SystemParams) bool {
	return !pr.engineOnly &&
		sp.Processes == 1 &&
		cfg.Observer == nil &&
		cfg.RunLimit <= 0 &&
		cfg.Policy == machine.PolicyFCFS
}

// runtimeState is the state shared by all frames of one run.
type runtimeState struct {
	prog     *Program
	eng      *sim.Engine      // nil in direct mode
	mach     *machine.Machine // nil in direct mode
	sp       map[string]float64
	globals  []float64
	extras   map[string]float64 // config globals with no declaration
	trace    *trace.Trace
	uid      int
	maxSteps int
	crits    map[string]*sim.Facility
	rng      *sim.Stream
	noTrace  bool
	finished float64

	// Direct mode: the event queue degenerates to a clock accumulator and
	// a CPU busy integral (the single process is the only facility user,
	// so utilization is busy time over total time).
	direct   bool
	clock    float64
	cpuBusy  float64
	ops      int64
	ctx      context.Context
	ctxCheck int
}

func (rt *runtimeState) now() float64 {
	if rt.direct {
		return rt.clock
	}
	return rt.eng.Now()
}

// critical returns (creating on first use) the 1-server facility guarding
// an omp_critical element within one process.
func (rt *runtimeState) critical(pid int, elemID string) *sim.Facility {
	key := fmt.Sprintf("%d/%s", pid, elemID)
	if f, ok := rt.crits[key]; ok {
		return f
	}
	f := rt.eng.NewFacility("critical:"+key, 1)
	rt.crits[key] = f
	return f
}

// frame is the per-(process, thread) execution context: the slot-backed
// variable frame plus the step counter.
type frame struct {
	rt    *runtimeState
	p     *sim.Process
	pid   int
	tid   int
	env   expr.SlotEnv
	steps int
}

// dynEnv is a frame's fallback environment: it resolves slot-mapped names
// for the benefit of user-function bodies (which evaluate free variables
// through the Env chain), then config-injected globals, then system
// parameters — the exact varsEnv shadowing order.
type dynEnv struct{ fr *frame }

func (d *dynEnv) Var(name string) (float64, bool) {
	fr := d.fr
	rt := fr.rt
	if r, ok := rt.prog.lay.rules[name]; ok {
		switch r.Kind {
		case expr.SlotLocal:
			return fr.env.Locals[r.Local], true
		case expr.SlotLocalDyn:
			if fr.env.Defined[r.Local] {
				return fr.env.Locals[r.Local], true
			}
			if r.Global >= 0 {
				return rt.globals[r.Global], true
			}
		case expr.SlotGlobal:
			return rt.globals[r.Global], true
		}
	}
	if v, ok := rt.extras[name]; ok {
		return v, true
	}
	v, ok := rt.sp[name]
	return v, ok
}

func (d *dynEnv) Func(string) (expr.Func, bool) { return nil, false }

// newFrame builds a process's root frame, replicating newFlowCtx: pid/tid
// seeded, uid 0, then scope-local initializers evaluated in declaration
// order with progressively visible earlier locals; initializer errors are
// ignored (the variable stays 0), as in the interpreter.
func (rt *runtimeState) newFrame(p *sim.Process, pid, tid int) *frame {
	lay := rt.prog.lay
	fr := &frame{rt: rt, p: p, pid: pid, tid: tid}
	fr.env = expr.SlotEnv{
		Locals:  make([]float64, len(lay.localNames)),
		Defined: make([]bool, len(lay.localNames)),
		Globals: rt.globals,
	}
	fr.env.Fallback = rt.prog.parts.Lib.Bind(&dynEnv{fr: fr})

	vis := map[string]float64{"pid": float64(pid), "tid": float64(tid), "uid": 0}
	fr.env.Locals[lay.pidSlot] = float64(pid)
	fr.env.Locals[lay.tidSlot] = float64(tid)
	initEnv := rt.prog.parts.Lib.Bind(&localInitEnv{rt: rt, vis: vis})
	for _, v := range rt.prog.parts.Model.VariablesIn(uml.ScopeLocal) {
		slot := lay.localIdx[v.Name]
		fr.env.Locals[slot] = 0
		vis[v.Name] = 0
		if init, ok := rt.prog.parts.Inits[v.Name]; ok {
			if val, err := init.Eval(initEnv); err == nil {
				fr.env.Locals[slot] = val
				vis[v.Name] = val
			}
		}
	}
	return fr
}

// localInitEnv is the environment scope-local initializers see: the
// already-initialized locals, then globals (declared and extras), then
// system parameters.
type localInitEnv struct {
	rt  *runtimeState
	vis map[string]float64
}

func (e *localInitEnv) Var(name string) (float64, bool) {
	if v, ok := e.vis[name]; ok {
		return v, true
	}
	if gi, ok := e.rt.prog.lay.globalIdx[name]; ok {
		return e.rt.globals[gi], true
	}
	if v, ok := e.rt.extras[name]; ok {
		return v, true
	}
	v, ok := e.rt.sp[name]
	return v, ok
}

func (e *localInitEnv) Func(string) (expr.Func, bool) { return nil, false }

// globalInitEnv is what global initializers see: the globals declared
// before them (the interpreter zero-fills and fills the map as it walks
// the declarations), then system parameters.
type globalInitEnv struct {
	rt      *runtimeState
	visible int
}

func (e *globalInitEnv) Var(name string) (float64, bool) {
	if gi, ok := e.rt.prog.lay.globalIdx[name]; ok && gi < e.visible {
		return e.rt.globals[gi], true
	}
	v, ok := e.rt.sp[name]
	return v, ok
}

func (e *globalInitEnv) Func(string) (expr.Func, bool) { return nil, false }

// initGlobals runs declared initializers in order, then config overrides.
func (rt *runtimeState) initGlobals(cfg interp.Config) error {
	prog := rt.prog
	gie := &globalInitEnv{rt: rt}
	env := prog.parts.Lib.Bind(gie)
	for i, init := range prog.globalInits {
		gie.visible = i + 1 // the variable itself is visible as 0
		if init == nil {
			continue
		}
		val, err := init.Eval(env)
		if err != nil {
			return fmt.Errorf("lower: initialize %s: %w", prog.lay.globalNames[i], err)
		}
		rt.globals[i] = val
	}
	for k, v := range cfg.Globals {
		if gi, ok := prog.lay.globalIdx[k]; ok {
			rt.globals[gi] = v
			continue
		}
		rt.extras[k] = v
	}
	return nil
}

// child clones the frame for a forked branch or parallel-region thread.
func (fr *frame) child(tid int) *frame {
	nc := &frame{rt: fr.rt, pid: fr.pid, tid: tid}
	nc.env = expr.SlotEnv{
		Locals:  append([]float64(nil), fr.env.Locals...),
		Defined: append([]bool(nil), fr.env.Defined...),
		Globals: fr.rt.globals,
	}
	nc.env.Fallback = fr.rt.prog.parts.Lib.Bind(&dynEnv{fr: nc})
	nc.env.Locals[fr.rt.prog.lay.tidSlot] = float64(tid)
	return nc
}

// runAssign applies one pre-resolved code statement. Non-global targets
// still check the extras map first: the interpreter writes any name
// present in its globals map, which includes config-injected globals that
// were never declared.
func (fr *frame) runAssign(a *assign, v float64) {
	rt := fr.rt
	switch a.kind {
	case asgGlobal:
		rt.globals[a.slot] = v
	case asgLocal:
		if _, ok := rt.extras[a.name]; ok {
			rt.extras[a.name] = v
			return
		}
		fr.env.Locals[a.slot] = v
	case asgLocalDyn:
		if _, ok := rt.extras[a.name]; ok {
			rt.extras[a.name] = v
			return
		}
		fr.env.Locals[a.slot] = v
		fr.env.Defined[a.slot] = true
	}
}

func (fr *frame) runCode(o *op) error {
	for i := range o.code {
		a := &o.code[i]
		v, err := a.value.Eval(&fr.env)
		if err != nil {
			return fmt.Errorf("lower: code of %q: %w", o.name, err)
		}
		fr.runAssign(a, v)
	}
	return nil
}

func (fr *frame) nextUID() {
	fr.rt.uid++
	fr.env.Locals[fr.rt.prog.lay.uidSlot] = float64(fr.rt.uid)
}

func (fr *frame) emit(kind trace.Kind, o *op) {
	if fr.rt.noTrace {
		return
	}
	fr.rt.trace.Append(trace.Event{
		T: fr.rt.now(), PID: fr.pid, TID: fr.tid,
		Kind: kind, Elem: o.id, Name: o.name,
	})
}

// step counts an element execution against the runaway guard.
func (fr *frame) step(name string) error {
	fr.steps++
	if fr.steps > fr.rt.maxSteps {
		return fmt.Errorf("lower: process %d exceeded %d element executions at %q (unbounded loop?)",
			fr.pid, fr.rt.maxSteps, name)
	}
	return nil
}

// hold advances time by dt with sim.Process.Hold semantics (negative
// clamps to zero; the engine's schedule clamp keeps NaN sticky).
func (fr *frame) hold(dt float64) {
	rt := fr.rt
	if !rt.direct {
		fr.p.Hold(dt)
		return
	}
	if dt < 0 {
		dt = 0
	}
	t := rt.clock + dt
	if t < rt.clock {
		t = rt.clock
	}
	rt.clock = t
}

// compute charges dt to the process's CPU. In direct mode the single
// process owns the facility, so service time is the hold and the busy
// integral grows by exactly the time advanced — the same float ops the
// facility's account() performs.
func (fr *frame) compute(dt float64) {
	rt := fr.rt
	if !rt.direct {
		rt.mach.Compute(fr.p, fr.pid, dt)
		return
	}
	if dt <= 0 {
		return
	}
	start := rt.clock
	end := start + dt
	if end < start {
		end = start
	}
	rt.cpuBusy += end - start
	rt.clock = end
}

// evalTag evaluates an optional stereotype tag expression.
func (fr *frame) evalTag(c *expr.Slotted, dflt float64) (float64, error) {
	if c == nil {
		return dflt, nil
	}
	return c.Eval(&fr.env)
}

// run executes one segment to completion.
func (fr *frame) run(segIdx int) error {
	rt := fr.rt
	if segIdx < 0 {
		return nil
	}
	seg := &rt.prog.segs[segIdx]
	pc := seg.entry
	for pc >= 0 {
		rt.ops++
		if rt.direct && rt.ctx != nil {
			// The engine checks for interruption between events; direct
			// mode has no events, so poll the context every few ops.
			if rt.ctxCheck++; rt.ctxCheck&63 == 0 && rt.ctx.Err() != nil {
				return &sim.InterruptError{Time: rt.clock, Cause: context.Cause(rt.ctx)}
			}
		}
		o := &seg.ops[pc]
		switch o.kind {
		case opError:
			return o.err

		case opAction:
			if err := fr.step(o.name); err != nil {
				return err
			}
			if o.act == actPlain {
				pc = o.next
				continue
			}
			// Code runs before execute(), as in the generated C++.
			if err := fr.runCode(o); err != nil {
				return err
			}
			fr.nextUID()
			fr.emit(trace.Enter, o)
			err := fr.execAct(o)
			fr.emit(trace.Leave, o)
			if err != nil {
				return err
			}
			pc = o.next

		case opActivity, opParallel:
			if err := fr.step(o.name); err != nil {
				return err
			}
			fr.nextUID()
			fr.emit(trace.Enter, o)
			err := fr.execActivity(o)
			fr.emit(trace.Leave, o)
			if err != nil {
				return err
			}
			pc = o.next

		case opLoop:
			if err := fr.step(o.name); err != nil {
				return err
			}
			if err := fr.execLoop(o); err != nil {
				return err
			}
			pc = o.next

		case opBranch:
			next, err := fr.execBranch(o)
			if err != nil {
				return err
			}
			pc = next

		case opWeighted:
			r := rt.rng.Float64() * o.total
			var acc float64
			next := o.targets[len(o.targets)-1]
			for i, w := range o.weights {
				acc += w
				if r < acc {
					next = o.targets[i]
					break
				}
			}
			pc = next

		case opFork:
			next, err := fr.execFork(o)
			if err != nil {
				return err
			}
			pc = next

		case opNop:
			pc = o.next
		}
	}
	return nil
}

func (fr *frame) execBranch(o *op) (int, error) {
	for i := range o.arms {
		arm := &o.arms[i]
		if arm.err != nil {
			return 0, arm.err
		}
		v, err := arm.guard.Eval(&fr.env)
		if err != nil {
			return 0, fmt.Errorf("lower: guard %q: %w", arm.src, err)
		}
		if expr.Truthy(v) {
			return arm.target, nil
		}
	}
	if o.hasElse {
		return o.elsePC, nil
	}
	return 0, o.noMatch
}

// costOf resolves an op's cost: a slot-resolved evaluation, or — for a
// distribution-literal cost — one draw from the run's seed stream, at the
// same logical point the interpreter draws so traces stay bit-identical.
// ok is false when the op carries no cost.
func (fr *frame) costOf(o *op) (v float64, ok bool, err error) {
	if o.costDist != nil {
		v, err = o.costDist.Sample(&fr.env, fr.rt.rng)
		return v, true, err
	}
	if o.cost != nil {
		v, err = o.cost.Eval(&fr.env)
		return v, true, err
	}
	return 0, false, nil
}

func (fr *frame) execAct(o *op) error {
	rt := fr.rt
	switch o.act {
	case actCompute:
		cost, _, err := fr.costOf(o)
		if err != nil {
			return fmt.Errorf("lower: cost of %q: %w", o.name, err)
		}
		fr.compute(cost)
	case actCritical:
		cost, _, err := fr.costOf(o)
		if err != nil {
			return fmt.Errorf("lower: cost of %q: %w", o.name, err)
		}
		if rt.direct {
			// One process, one thread: the facility is always free, so
			// Use degenerates to the hold.
			fr.hold(cost)
		} else {
			rt.critical(fr.pid, o.id).Use(fr.p, cost)
		}
	case actSend:
		dest, err := fr.evalTag(o.dest, 0)
		if err != nil {
			return fmt.Errorf("lower: %q dest: %w", o.name, err)
		}
		size, err := fr.evalTag(o.size, 0)
		if err != nil {
			return fmt.Errorf("lower: %q size: %w", o.name, err)
		}
		if err := rt.mach.Send(fr.p, fr.pid, int(dest), size); err != nil {
			return fmt.Errorf("lower: %q: %w", o.name, err)
		}
		fr.emit(trace.Send, o)
	case actRecv:
		src, err := fr.evalTag(o.src, -1)
		if err != nil {
			return fmt.Errorf("lower: %q src: %w", o.name, err)
		}
		if _, err := rt.mach.Recv(fr.p, fr.pid, int(src)); err != nil {
			return fmt.Errorf("lower: %q: %w", o.name, err)
		}
		fr.emit(trace.Recv, o)
	case actSendrecv:
		dest, err := fr.evalTag(o.dest, 0)
		if err != nil {
			return fmt.Errorf("lower: %q dest: %w", o.name, err)
		}
		src, err := fr.evalTag(o.src, -1)
		if err != nil {
			return fmt.Errorf("lower: %q src: %w", o.name, err)
		}
		size, err := fr.evalTag(o.size, 0)
		if err != nil {
			return fmt.Errorf("lower: %q size: %w", o.name, err)
		}
		if err := rt.mach.Send(fr.p, fr.pid, int(dest), size); err != nil {
			return fmt.Errorf("lower: %q: %w", o.name, err)
		}
		if _, err := rt.mach.Recv(fr.p, fr.pid, int(src)); err != nil {
			return fmt.Errorf("lower: %q: %w", o.name, err)
		}
	case actBarrier:
		if !rt.direct {
			rt.mach.Barrier(fr.p)
		}
		// One process: Barrier is a no-op.
	case actBroadcast:
		size, err := fr.evalTag(o.size, 0)
		if err != nil {
			return fmt.Errorf("lower: %q size: %w", o.name, err)
		}
		if rt.direct {
			fr.hold(0) // collectiveTime is 0 with one process
		} else {
			rt.mach.Broadcast(fr.p, size)
		}
	case actReduce:
		size, err := fr.evalTag(o.size, 0)
		if err != nil {
			return fmt.Errorf("lower: %q size: %w", o.name, err)
		}
		if rt.direct {
			fr.hold(0)
		} else {
			rt.mach.Reduce(fr.p, size)
		}
	}
	return nil
}

func (fr *frame) execActivity(o *op) error {
	if err := fr.runCode(o); err != nil {
		return err
	}
	if v, ok, err := fr.costOf(o); err != nil {
		return fmt.Errorf("lower: cost of %q: %w", o.name, err)
	} else if ok {
		fr.compute(v)
	}
	if o.kind == opParallel {
		return fr.execParallel(o)
	}
	if o.body < 0 {
		return o.bodyErr
	}
	return fr.run(o.body)
}

func (fr *frame) execParallel(o *op) error {
	rt := fr.rt
	team := rt.sp["threads"]
	if o.count != nil {
		v, err := o.count.Eval(&fr.env)
		if err != nil {
			return fmt.Errorf("lower: parallel region %q count: %w", o.name, err)
		}
		team = v
	}
	t := int(team)
	if t < 1 {
		t = 1
	}
	if o.body < 0 {
		return o.bodyErr
	}
	join := rt.eng.NewCounter("omp:"+o.id, t)
	var firstErr error
	for tid := 0; tid < t; tid++ {
		worker := fr.child(tid)
		rt.eng.Spawn(fmt.Sprintf("p%d.omp%s.t%d", fr.pid, o.id, tid), func(p *sim.Process) {
			worker.p = p
			defer join.Done()
			if err := worker.run(o.body); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	join.Wait(fr.p)
	return firstErr
}

func (fr *frame) execFork(o *op) (int, error) {
	rt := fr.rt
	join := rt.eng.NewCounter("join:"+o.id, o.forkTotal)
	var firstErr error
	for i, br := range o.branches {
		branch := fr.child(fr.tid)
		br := br
		rt.eng.Spawn(fmt.Sprintf("p%d.fork%s.%d", fr.pid, o.id, i), func(p *sim.Process) {
			branch.p = p
			defer join.Done()
			if err := branch.run(br); err != nil && firstErr == nil {
				firstErr = err
			}
		})
	}
	if o.err != nil {
		// Dangling fork edge: fail after spawning the earlier branches,
		// without waiting on the join — execution order matches fork().
		return 0, o.err
	}
	join.Wait(fr.p)
	if firstErr != nil {
		return 0, firstErr
	}
	return o.next, nil
}

func (fr *frame) execLoop(o *op) error {
	var v float64
	var err error
	if o.countDist != nil {
		// Stochastic repetition count: one draw per loop entry, rounded
		// down to an integer (matching the interpreter).
		v, err = o.countDist.Sample(&fr.env, fr.rt.rng)
	} else {
		v, err = o.count.Eval(&fr.env)
	}
	if err != nil {
		return fmt.Errorf("lower: loop %q count: %w", o.name, err)
	}
	count := int(v)
	if o.body < 0 {
		return o.bodyErr
	}
	lv := o.loopVar
	var saved float64
	var hadSaved bool
	if lv.name != "" {
		saved = fr.env.Locals[lv.slot]
		hadSaved = !lv.dyn || fr.env.Defined[lv.slot]
	}
	for i := 0; i < count; i++ {
		if err := fr.step(o.name); err != nil {
			return err
		}
		if lv.name != "" {
			fr.env.Locals[lv.slot] = float64(i)
			if lv.dyn {
				fr.env.Defined[lv.slot] = true
			}
		}
		if err := fr.run(o.body); err != nil {
			return err
		}
	}
	if lv.name != "" {
		if hadSaved {
			fr.env.Locals[lv.slot] = saved
		} else {
			fr.env.Defined[lv.slot] = false
		}
	}
	return nil
}

// newRuntime builds run state common to both modes.
func (pr *Program) newRuntime(cfg interp.Config, sp machine.SystemParams, maxSteps int, direct bool) *runtimeState {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rt := &runtimeState{
		prog:     pr,
		sp:       sp.Env(),
		globals:  make([]float64, len(pr.lay.globalNames)),
		extras:   map[string]float64{},
		trace:    &trace.Trace{Model: pr.parts.Model.Name()},
		noTrace:  cfg.NoTrace,
		maxSteps: maxSteps,
		crits:    map[string]*sim.Facility{},
		rng:      sim.NewStream(seed),
		direct:   direct,
		ctx:      cfg.Context,
	}
	rt.trace.SetMeta("nodes", fmt.Sprint(sp.Nodes))
	rt.trace.SetMeta("processors", fmt.Sprint(sp.ProcessorsPerNode))
	rt.trace.SetMeta("processes", fmt.Sprint(sp.Processes))
	rt.trace.SetMeta("threads", fmt.Sprint(sp.Threads))
	return rt
}

// result assembles the run outcome; utilization is supplied per mode.
func (rt *runtimeState) result(sp machine.SystemParams, util func(node int) float64) *interp.Result {
	globals := make(map[string]float64, len(rt.globals)+len(rt.extras))
	for i, name := range rt.prog.lay.globalNames {
		globals[name] = rt.globals[i]
	}
	for k, v := range rt.extras {
		globals[k] = v
	}
	res := &interp.Result{
		Trace:    rt.trace,
		Makespan: rt.finished,
		Globals:  globals,
	}
	for n := 0; n < sp.Nodes; n++ {
		res.CPUUtilization = append(res.CPUUtilization, util(n))
	}
	return res
}

// runDirect executes a single-process program without the event engine.
func (pr *Program) runDirect(cfg interp.Config, sp machine.SystemParams, maxSteps int) (*interp.Result, error) {
	if ctx := cfg.Context; ctx != nil && ctx.Err() != nil {
		return nil, fmt.Errorf("lower: %w", context.Cause(ctx))
	}
	if err := sp.Validate(); err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	rt := pr.newRuntime(cfg, sp, maxSteps, true)
	if err := rt.initGlobals(cfg); err != nil {
		return nil, err
	}
	if pr.mainSeg < 0 {
		return nil, pr.mainErr
	}

	_, span := obs.StartSpan(cfg.Context, "sim")
	fr := rt.newFrame(nil, 0, 0)
	err := fr.run(pr.mainSeg)
	span.Annotate("events", strconv.FormatInt(rt.ops, 10))
	span.Annotate("sim_time", strconv.FormatFloat(rt.clock, 'g', -1, 64))
	span.Annotate("processes", strconv.Itoa(sp.Processes))
	span.Annotate("backend", "lowered")
	span.Annotate("mode", "direct")
	span.End()
	if err != nil {
		if _, ok := err.(*sim.InterruptError); !ok {
			err = &sim.ProcessError{Process: "p0", Err: err}
		}
		return nil, fmt.Errorf("lower: %w", err)
	}
	if rt.clock > rt.finished {
		rt.finished = rt.clock
	}
	return rt.result(sp, func(n int) float64 {
		if n != 0 || rt.clock == 0 {
			return 0
		}
		return rt.cpuBusy / (rt.clock * float64(sp.ProcessorsPerNode))
	}), nil
}

// runEngine replays the interpreter's engine choreography for the flat
// program: identical process names, counters and facilities yield an
// identical (time, seq) event order, and therefore an identical trace.
func (pr *Program) runEngine(cfg interp.Config, sp machine.SystemParams, maxSteps int) (*interp.Result, error) {
	eng := sim.New()
	if cfg.Observer != nil {
		eng.SetObserver(cfg.Observer, cfg.SampleInterval)
	}
	if ctx := cfg.Context; ctx != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("lower: %w", context.Cause(ctx))
		}
		stop := make(chan struct{})
		watched := make(chan struct{})
		go func() {
			defer close(watched)
			select {
			case <-ctx.Done():
				eng.Interrupt(context.Cause(ctx))
			case <-stop:
			}
		}()
		defer func() { close(stop); <-watched }()
	}
	net := machine.DefaultNet()
	if cfg.Net != nil {
		net = *cfg.Net
	}
	mach, err := machine.NewWithPolicy(eng, sp, net, cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}

	rt := pr.newRuntime(cfg, sp, maxSteps, false)
	rt.eng = eng
	rt.mach = mach
	if err := rt.initGlobals(cfg); err != nil {
		return nil, err
	}
	if pr.mainSeg < 0 {
		return nil, pr.mainErr
	}

	for pid := 0; pid < sp.Processes; pid++ {
		pid := pid
		eng.Spawn(fmt.Sprintf("p%d", pid), func(p *sim.Process) {
			fr := rt.newFrame(p, pid, 0)
			if err := fr.run(pr.mainSeg); err != nil {
				p.Fail(err)
			}
			if now := eng.Now(); now > rt.finished {
				rt.finished = now
			}
		})
	}

	_, span := obs.StartSpan(cfg.Context, "sim")
	annotate := func() {
		span.Annotate("events", strconv.FormatInt(eng.EventsExecuted(), 10))
		span.Annotate("sim_time", strconv.FormatFloat(eng.Now(), 'g', -1, 64))
		span.Annotate("processes", strconv.Itoa(sp.Processes))
		span.Annotate("backend", "lowered")
		span.Annotate("mode", "engine")
		span.End()
	}
	if cfg.RunLimit > 0 {
		if _, err := eng.RunUntil(cfg.RunLimit); err != nil {
			annotate()
			return nil, fmt.Errorf("lower: %w", err)
		}
	} else if _, err := eng.Run(); err != nil {
		annotate()
		return nil, fmt.Errorf("lower: %w", err)
	}
	annotate()

	return rt.result(sp, mach.CPUUtilization), nil
}
