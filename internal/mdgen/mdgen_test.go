package mdgen

import (
	"strings"
	"testing"

	"prophet/internal/builder"
	"prophet/internal/samples"
	"prophet/internal/traverse"
)

func TestRenderSample(t *testing.T) {
	out, err := Render(samples.Sample())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# Performance model: sample",
		"Main diagram: **main**",
		"## Variables",
		"| GV | double | global |",
		"## Cost functions",
		"| FSA2 | double pid | `0.1*(pid+1)` |",
		"## Diagram main",
		"| A1 | Action | «action+» |",
		"T = `FA1()`",
		"has code fragment",
		"content: SA",
		"A1 → decision",
		"[GV > 0]",
		"[else]",
		"## Diagram SA",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestRenderLoopsAndWeights(t *testing.T) {
	b := builder.New("m")
	d := b.Diagram("main")
	d.Initial()
	d.Loop("L", "N", "body").Var("i")
	d.Decision("dec")
	d.Action("A").Cost("1")
	d.Action("B").Cost("2")
	d.Merge("mrg")
	d.Final()
	d.Flow("initial", "L")
	d.Flow("L", "dec")
	d.FlowWeighted("dec", "A", 0.25)
	d.FlowWeighted("dec", "B", 0.75)
	d.Flow("A", "mrg")
	d.Flow("B", "mrg")
	d.Flow("mrg", "final")
	body := b.Diagram("body")
	body.Initial()
	body.Final()
	body.Chain("initial", "final")
	b.Global("N", "double")
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	out, err := Render(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"repeats body × `N`",
		"variable `i`",
		"(p=0.25)",
		"(p=0.75)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestHandlerNavigatorAgnostic(t *testing.T) {
	m := samples.Kernel6Detailed()
	outs := make([]string, 0, 2)
	for _, nav := range []traverse.Navigator{
		traverse.NewRecursiveNavigator(), traverse.NewStackNavigator(),
	} {
		h := NewHandler()
		if err := traverse.NewTraverser().Traverse(m, nav, h); err != nil {
			t.Fatal(err)
		}
		out, done := h.Output()
		if !done {
			t.Fatal("handler incomplete")
		}
		outs = append(outs, out)
	}
	if outs[0] != outs[1] {
		t.Error("markdown should not depend on the navigator")
	}
}

func TestHandlerReusable(t *testing.T) {
	h := NewHandler()
	traverse.Run(samples.Kernel6(), h)
	first, _ := h.Output()
	traverse.Run(samples.Kernel6(), h)
	second, _ := h.Output()
	if first != second {
		t.Error("handler should reset between runs")
	}
}

func TestEmptyModel(t *testing.T) {
	b := builder.New("empty")
	m, _ := b.Build()
	out, err := Render(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# Performance model: empty") {
		t.Errorf("header missing:\n%s", out)
	}
	if strings.Contains(out, "## Variables") {
		t.Errorf("empty sections should be omitted:\n%s", out)
	}
}
