// Package mdgen renders a performance model as markdown documentation: a
// third ContentHandler implementation behind the Figure 6 traversal
// machinery (after C++ and DOT), generating the reference page a team
// would commit next to its model XML.
//
// The output lists the model's variables, cost functions, and per diagram
// the performance modeling elements with their stereotypes, cost
// functions and flows.
package mdgen

import (
	"fmt"
	"strings"

	"prophet/internal/traverse"
	"prophet/internal/uml"
)

// Handler accumulates the markdown during a traversal.
type Handler struct {
	sb      strings.Builder
	model   *uml.Model
	current *uml.Diagram
	// edges buffers the current diagram's edges so the flow list renders
	// after the node table closes.
	edges []*uml.Edge
	done  bool
}

// NewHandler returns a fresh markdown ContentHandler.
func NewHandler() *Handler { return &Handler{} }

// Visit implements traverse.ContentHandler.
func (h *Handler) Visit(ev traverse.Event) error {
	switch ev.Phase {
	case traverse.EnterModel:
		m, ok := ev.Element.(*uml.Model)
		if !ok {
			return fmt.Errorf("mdgen: EnterModel with %T", ev.Element)
		}
		h.sb.Reset()
		h.done = false
		h.model = m
		fmt.Fprintf(&h.sb, "# Performance model: %s\n\n", m.Name())
		if m.MainName() != "" {
			fmt.Fprintf(&h.sb, "Main diagram: **%s**\n\n", m.MainName())
		}
		h.emitVariables(m)
		h.emitFunctions(m)
	case traverse.EnterDiagram:
		d := ev.Element.(*uml.Diagram)
		h.current = d
		fmt.Fprintf(&h.sb, "## Diagram %s\n\n", d.Name())
		h.sb.WriteString("| element | kind | stereotype | details |\n")
		h.sb.WriteString("|---|---|---|---|\n")
	case traverse.VisitNode:
		h.emitNode(ev.Element.(uml.Node))
	case traverse.VisitEdge:
		// Buffered: emitting here would interleave with the node table.
		h.edges = append(h.edges, ev.Element.(*uml.Edge))
	case traverse.LeaveDiagram:
		h.emitEdges()
		h.current = nil
	case traverse.LeaveModel:
		h.done = true
	}
	return nil
}

func (h *Handler) emitVariables(m *uml.Model) {
	vars := m.Variables()
	if len(vars) == 0 {
		return
	}
	h.sb.WriteString("## Variables\n\n| name | type | scope | initializer |\n|---|---|---|---|\n")
	for _, v := range vars {
		init := v.Init
		if init == "" {
			init = "—"
		}
		fmt.Fprintf(&h.sb, "| %s | %s | %s | %s |\n", v.Name, v.Type, v.Scope, code(init))
	}
	h.sb.WriteString("\n")
}

func (h *Handler) emitFunctions(m *uml.Model) {
	funcs := m.Functions()
	if len(funcs) == 0 {
		return
	}
	h.sb.WriteString("## Cost functions\n\n| name | parameters | body |\n|---|---|---|\n")
	for _, f := range funcs {
		params := make([]string, len(f.Params))
		for i, p := range f.Params {
			params[i] = p.Type + " " + p.Name
		}
		ps := strings.Join(params, ", ")
		if ps == "" {
			ps = "—"
		}
		fmt.Fprintf(&h.sb, "| %s | %s | %s |\n", f.Name, ps, code(f.Body))
	}
	h.sb.WriteString("\n")
}

func (h *Handler) emitNode(n uml.Node) {
	name := n.Name()
	if name == "" || name == n.Kind().String() {
		name = "·"
	}
	st := n.Stereotype()
	if st != "" {
		st = "«" + st + "»"
	} else {
		st = "—"
	}
	details := "—"
	switch x := n.(type) {
	case *uml.ActionNode:
		var parts []string
		if x.CostFunc != "" {
			parts = append(parts, "T = "+code(x.CostFunc))
		}
		if x.Code != "" {
			parts = append(parts, "has code fragment")
		}
		for _, tv := range n.Tags() {
			if tv.Name != "id" && tv.Name != "type" {
				parts = append(parts, tv.Name+" = "+code(tv.Value))
			}
		}
		if len(parts) > 0 {
			details = strings.Join(parts, ", ")
		}
	case *uml.ActivityNode:
		details = "content: " + x.Body
		if x.CostFunc != "" {
			details += ", T = " + code(x.CostFunc)
		}
	case *uml.LoopNode:
		details = fmt.Sprintf("repeats %s × %s", x.Body, code(x.Count))
		if x.Var != "" {
			details += ", variable " + code(x.Var)
		}
	}
	fmt.Fprintf(&h.sb, "| %s | %s | %s | %s |\n", name, n.Kind(), st, details)
}

func (h *Handler) emitEdges() {
	if len(h.edges) == 0 {
		h.sb.WriteString("\n")
		return
	}
	h.sb.WriteString("\nFlows: ")
	parts := make([]string, 0, len(h.edges))
	for _, e := range h.edges {
		from := h.nodeLabel(e.From())
		to := h.nodeLabel(e.To())
		label := ""
		switch {
		case e.Guard != "":
			label = " [" + e.Guard + "]"
		case e.Weight > 0:
			label = fmt.Sprintf(" (p=%g)", e.Weight)
		}
		parts = append(parts, fmt.Sprintf("%s → %s%s", from, to, label))
	}
	h.sb.WriteString(strings.Join(parts, "; "))
	h.sb.WriteString("\n\n")
	h.edges = h.edges[:0]
}

func (h *Handler) nodeLabel(id string) string {
	if h.current == nil {
		return id
	}
	n := h.current.Node(id)
	if n == nil {
		return id
	}
	if n.Name() != "" && n.Name() != n.Kind().String() {
		return n.Name()
	}
	switch n.Kind() {
	case uml.KindInitial:
		return "●"
	case uml.KindFinal:
		return "◉"
	case uml.KindDecision:
		return "◇"
	case uml.KindMerge:
		return "◇m"
	case uml.KindFork:
		return "⎮f"
	case uml.KindJoin:
		return "⎮j"
	}
	return id
}

func code(s string) string {
	return "`" + s + "`"
}

// Output returns the markdown and whether the traversal completed.
func (h *Handler) Output() (string, bool) { return h.sb.String(), h.done }

// Render documents a model in one call.
func Render(m *uml.Model) (string, error) {
	h := NewHandler()
	if err := traverse.Run(m, h); err != nil {
		return "", err
	}
	out, done := h.Output()
	if !done {
		return "", fmt.Errorf("mdgen: traversal did not complete")
	}
	return out, nil
}
