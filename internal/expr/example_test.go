package expr_test

import (
	"fmt"

	"prophet/internal/expr"
)

func ExampleEval() {
	env := expr.NewMapEnv()
	env.Set("N", 1000)
	env.Set("M", 10)
	env.Set("c", 1e-9)
	v, err := expr.Eval("M * (N-1) * N / 2 * c", expr.Chain{env, expr.Builtins})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.6f\n", v)
	// Output: 0.004995
}

func ExampleCompile() {
	n := expr.MustParse("base + work / processes")
	compiled := expr.Compile(n)
	env := expr.NewMapEnv()
	env.Set("base", 1)
	env.Set("work", 12)
	for _, p := range []float64{1, 2, 4} {
		env.Set("processes", p)
		v, _ := compiled.Eval(env)
		fmt.Println(v)
	}
	// Output:
	// 13
	// 7
	// 4
}

func ExampleNewLibrary() {
	lib, err := expr.NewLibrary([]expr.Def{
		{Name: "FBlock", Params: []string{"n"}, Body: "n * cost"},
		{Name: "FTotal", Body: "FBlock(rows) + FBlock(cols)"},
	})
	if err != nil {
		panic(err)
	}
	outer := expr.NewMapEnv()
	outer.Set("cost", 2)
	outer.Set("rows", 3)
	outer.Set("cols", 4)
	v, _ := expr.Eval("FTotal()", lib.Bind(outer))
	fmt.Println(v)
	// Output: 14
}

func ExampleFold() {
	n := expr.MustParse("8 * 1024 * n + pow(2, 10)")
	fmt.Println(expr.Fold(n))
	// Output: (8192 * n) + 1024
}
