package expr

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func evalOK(t *testing.T, src string, env Env) float64 {
	t.Helper()
	v, err := Eval(src, env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestEvalArithmetic(t *testing.T) {
	env := NewMapEnv()
	env.Set("x", 4)
	env.Set("y", 3)
	cases := []struct {
		src  string
		want float64
	}{
		{"1+2", 3},
		{"2*3+4", 10},
		{"2*(3+4)", 14},
		{"10/4", 2.5},
		{"7%3", 1},
		{"7.5 % 2", 1.5},
		{"-x", -4},
		{"x-y", 1},
		{"x*y - y", 9},
		{"1e2 + 1", 101},
		{"x == 4", 1},
		{"x != 4", 0},
		{"x < y", 0},
		{"x > y", 1},
		{"x >= 4", 1},
		{"x <= 3.9", 0},
		{"x > 0 && y > 0", 1},
		{"x > 5 || y > 0", 1},
		{"x > 5 && y > 0", 0},
		{"!(x > 5)", 1},
		{"!x", 0},
		{"!0", 1},
		{"x > y ? 100 : 200", 100},
		{"x < y ? 100 : 200", 200},
	}
	for _, c := range cases {
		if got := evalOK(t, c.src, env); got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalBuiltins(t *testing.T) {
	env := Chain{Builtins}
	cases := []struct {
		src  string
		want float64
	}{
		{"sqrt(9)", 3},
		{"abs(-2.5)", 2.5},
		{"pow(2, 10)", 1024},
		{"min(3, 1, 2)", 1},
		{"max(3, 1, 2)", 3},
		{"floor(1.9)", 1},
		{"ceil(1.1)", 2},
		{"round(1.5)", 2},
		{"log(exp(1))", 1},
		{"log2(8)", 3},
		{"log10(1000)", 3},
		{"cbrt(27)", 3},
	}
	for _, c := range cases {
		got := evalOK(t, c.src, env)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
	if v := evalOK(t, "sin(0) + cos(0) + tan(0)", env); math.Abs(v-1) > 1e-12 {
		t.Errorf("trig identities broken: %v", v)
	}
}

func TestEvalErrors(t *testing.T) {
	env := NewMapEnv()
	env.Set("x", 1)

	_, err := Eval("y + 1", env)
	var ue *UndefinedError
	if !errors.As(err, &ue) || ue.Kind != "variable" || ue.Name != "y" {
		t.Errorf("undefined variable error wrong: %v", err)
	}

	_, err = Eval("nope(1)", env)
	if !errors.As(err, &ue) || ue.Kind != "function" {
		t.Errorf("undefined function error wrong: %v", err)
	}

	if _, err := Eval("1/0", env); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("division by zero should error, got %v", err)
	}
	if _, err := Eval("1%0", env); err == nil {
		t.Errorf("remainder by zero should error")
	}
	if _, err := Eval("x/(x-1)", env); err == nil {
		t.Errorf("runtime division by zero should error")
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right operand of && / || must not be evaluated when the left
	// operand decides the result; otherwise this would hit an undefined
	// variable.
	env := NewMapEnv()
	env.Set("x", 0)
	if v := evalOK(t, "x && undefined_var", env); v != 0 {
		t.Errorf("short-circuit && = %v, want 0", v)
	}
	env.Set("x", 1)
	if v := evalOK(t, "x || undefined_var", env); v != 1 {
		t.Errorf("short-circuit || = %v, want 1", v)
	}
}

func TestBuiltinArityChecks(t *testing.T) {
	env := Chain{Builtins}
	for _, src := range []string{"sqrt()", "sqrt(1,2)", "pow(1)", "min()", "max()"} {
		if _, err := Eval(src, env); err == nil {
			t.Errorf("Eval(%q) should fail with arity error", src)
		}
	}
}

func TestCompiledMatchesInterpreted(t *testing.T) {
	env := NewMapEnv()
	env.Funcs = map[string]Func{}
	for name, f := range builtinFuncs {
		env.Funcs[name] = f
	}
	sources := []string{
		"1 + 2*x - y/3",
		"x > y ? sqrt(x) : pow(y, 2)",
		"min(x, y) + max(x, y)",
		"x && y || !x",
		"x % (y + 1)",
	}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		env.Set("x", x)
		env.Set("y", y)
		for _, src := range sources {
			n := MustParse(src)
			iv, ierr := n.Eval(env)
			cv, cerr := Compile(n).Eval(env)
			if (ierr == nil) != (cerr == nil) {
				return false
			}
			if ierr == nil && iv != cv && !(math.IsNaN(iv) && math.IsNaN(cv)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompiledString(t *testing.T) {
	c, err := CompileString("1 +  2")
	if err != nil {
		t.Fatal(err)
	}
	if c.String() != "1 + 2" {
		t.Errorf("Compiled.String = %q", c.String())
	}
	if _, err := CompileString("1 +"); err == nil {
		t.Errorf("CompileString should propagate parse errors")
	}
}

func TestChainEnvOrder(t *testing.T) {
	inner := NewMapEnv()
	inner.Set("x", 1)
	outer := NewMapEnv()
	outer.Set("x", 2)
	outer.Set("y", 3)
	env := Chain{inner, outer, nil, Builtins}
	if v, _ := env.Var("x"); v != 1 {
		t.Errorf("Chain should prefer earlier envs: x = %v", v)
	}
	if v, _ := env.Var("y"); v != 3 {
		t.Errorf("Chain should fall through: y = %v", v)
	}
	if _, ok := env.Var("z"); ok {
		t.Errorf("unbound name should not resolve")
	}
	if _, ok := env.Func("sqrt"); !ok {
		t.Errorf("Chain should find builtin functions")
	}
}

func TestTruthy(t *testing.T) {
	if Truthy(0) {
		t.Error("0 is false")
	}
	if !Truthy(1) || !Truthy(-0.5) {
		t.Error("non-zero is true")
	}
}

func TestBuiltinNames(t *testing.T) {
	names := BuiltinNames()
	if len(names) != len(builtinFuncs) {
		t.Errorf("BuiltinNames len = %d, want %d", len(names), len(builtinFuncs))
	}
	if !IsBuiltin("sqrt") || IsBuiltin("FA1") {
		t.Errorf("IsBuiltin misclassifies")
	}
}
