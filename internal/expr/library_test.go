package expr

import (
	"strings"
	"testing"
)

func TestLibraryBasics(t *testing.T) {
	lib, err := NewLibrary([]Def{
		{Name: "FA1", Body: "2*P"},
		{Name: "FSA2", Params: []string{"pid"}, Body: "pid + 1"},
		{Name: "FK6", Params: []string{"n", "m"}, Body: "m * n * (n-1) / 2 * c"},
	})
	if err != nil {
		t.Fatal(err)
	}

	outer := NewMapEnv()
	outer.Set("P", 8)
	outer.Set("c", 1e-9)
	env := lib.Bind(outer)

	if v := evalOK(t, "FA1()", env); v != 16 {
		t.Errorf("FA1() = %v, want 16", v)
	}
	if v := evalOK(t, "FSA2(3)", env); v != 4 {
		t.Errorf("FSA2(3) = %v, want 4", v)
	}
	// n=1000, m=10: 10 * 1000*999/2 * 1e-9
	want := 10 * 1000.0 * 999.0 / 2 * 1e-9
	if v := evalOK(t, "FK6(1000, 10)", env); v != want {
		t.Errorf("FK6 = %v, want %v", v, want)
	}
}

func TestLibraryComposition(t *testing.T) {
	// "A cost function may be composed using other functions that are
	// defined in the performance model" (paper, Section 4).
	lib, err := NewLibrary([]Def{
		{Name: "base", Params: []string{"x"}, Body: "x * 2"},
		{Name: "comp", Params: []string{"x"}, Body: "base(x) + base(x+1) + sqrt(x)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	env := lib.Bind(nil)
	if v := evalOK(t, "comp(4)", env); v != 8+10+2 {
		t.Errorf("comp(4) = %v, want 20", v)
	}
}

func TestLibraryParamShadowsOuter(t *testing.T) {
	lib, err := NewLibrary([]Def{{Name: "f", Params: []string{"P"}, Body: "P * 10"}})
	if err != nil {
		t.Fatal(err)
	}
	outer := NewMapEnv()
	outer.Set("P", 999)
	env := lib.Bind(outer)
	if v := evalOK(t, "f(2)", env); v != 20 {
		t.Errorf("parameter should shadow outer variable: f(2) = %v", v)
	}
	// Outside a call, P still resolves to the outer binding.
	if v := evalOK(t, "P", env); v != 999 {
		t.Errorf("outer variable lost: P = %v", v)
	}
}

func TestLibraryErrors(t *testing.T) {
	if _, err := NewLibrary([]Def{{Name: "", Body: "1"}}); err == nil {
		t.Error("empty name should be rejected")
	}
	if _, err := NewLibrary([]Def{{Name: "f", Body: "1"}, {Name: "f", Body: "2"}}); err == nil {
		t.Error("duplicate name should be rejected")
	}
	if _, err := NewLibrary([]Def{{Name: "sqrt", Body: "1"}}); err == nil {
		t.Error("shadowing a builtin should be rejected")
	}
	if _, err := NewLibrary([]Def{{Name: "f", Body: "1 +"}}); err == nil {
		t.Error("malformed body should be rejected at load time")
	}
}

func TestLibraryArity(t *testing.T) {
	lib, _ := NewLibrary([]Def{{Name: "f", Params: []string{"a", "b"}, Body: "a+b"}})
	env := lib.Bind(nil)
	if _, err := Eval("f(1)", env); err == nil || !strings.Contains(err.Error(), "2 argument") {
		t.Errorf("arity mismatch should error, got %v", err)
	}
}

func TestLibraryRecursionGuard(t *testing.T) {
	lib, err := NewLibrary([]Def{
		{Name: "inf", Params: []string{"x"}, Body: "inf(x)"},
	})
	if err != nil {
		t.Fatal(err)
	}
	env := lib.Bind(nil)
	_, err = Eval("inf(1)", env)
	if err == nil || !strings.Contains(err.Error(), "call depth") {
		t.Errorf("recursive cost function should hit depth guard, got %v", err)
	}
}

func TestLibraryMutualRecursionGuard(t *testing.T) {
	lib, err := NewLibrary([]Def{
		{Name: "a", Body: "b()"},
		{Name: "b", Body: "a()"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Eval("a()", lib.Bind(nil)); err == nil {
		t.Error("mutual recursion should hit depth guard")
	}
}

func TestLibraryNamesAndDef(t *testing.T) {
	lib, _ := NewLibrary([]Def{
		{Name: "f1", Body: "1"},
		{Name: "f2", Body: "2"},
	})
	names := lib.Names()
	if len(names) != 2 || names[0] != "f1" || names[1] != "f2" {
		t.Errorf("Names = %v", names)
	}
	d, ok := lib.Def("f2")
	if !ok || d.Body != "2" {
		t.Errorf("Def(f2) = %+v, %v", d, ok)
	}
	if _, ok := lib.Def("nope"); ok {
		t.Errorf("Def of unknown name should report false")
	}
}

func TestLibraryDeepCompositionWithinLimit(t *testing.T) {
	// A non-recursive chain of depth 10 must evaluate fine.
	defs := []Def{{Name: "g0", Body: "1"}}
	for i := 1; i <= 10; i++ {
		defs = append(defs, Def{
			Name: "g" + string(rune('0'+i/10)) + string(rune('0'+i%10)),
		})
	}
	// Build the chain explicitly: g01 calls g0, g02 calls g01, ...
	defs = []Def{{Name: "g0", Body: "1"}}
	prev := "g0"
	for i := 1; i <= 10; i++ {
		name := prev + "x"
		defs = append(defs, Def{Name: name, Body: prev + "() + 1"})
		prev = name
	}
	lib, err := NewLibrary(defs)
	if err != nil {
		t.Fatal(err)
	}
	if v := evalOK(t, prev+"()", lib.Bind(nil)); v != 11 {
		t.Errorf("chain eval = %v, want 11", v)
	}
}
