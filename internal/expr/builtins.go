package expr

import (
	"fmt"
	"math"
)

// Builtins is the environment of builtin math functions available to every
// cost function. It binds no variables.
//
// The set mirrors what the paper's generated C++ would have available from
// <cmath>, plus min/max which cost models use for piecewise behavior.
var Builtins Env = builtinEnv{}

type builtinEnv struct{}

func (builtinEnv) Var(string) (float64, bool) { return 0, false }

func (builtinEnv) Func(name string) (Func, bool) {
	f, ok := builtinFuncs[name]
	return f, ok
}

// fixedArity wraps a fixed-arity function with an argument-count check.
func fixedArity(name string, n int, f func([]float64) float64) Func {
	return func(args []float64) (float64, error) {
		if len(args) != n {
			return 0, fmt.Errorf("expr: %s expects %d argument(s), got %d", name, n, len(args))
		}
		return f(args), nil
	}
}

func unary1(name string, f func(float64) float64) Func {
	return fixedArity(name, 1, func(a []float64) float64 { return f(a[0]) })
}

func binary2(name string, f func(a, b float64) float64) Func {
	return fixedArity(name, 2, func(a []float64) float64 { return f(a[0], a[1]) })
}

var builtinFuncs = map[string]Func{
	"abs":   unary1("abs", math.Abs),
	"sqrt":  unary1("sqrt", math.Sqrt),
	"cbrt":  unary1("cbrt", math.Cbrt),
	"exp":   unary1("exp", math.Exp),
	"log":   unary1("log", math.Log),
	"log2":  unary1("log2", math.Log2),
	"log10": unary1("log10", math.Log10),
	"sin":   unary1("sin", math.Sin),
	"cos":   unary1("cos", math.Cos),
	"tan":   unary1("tan", math.Tan),
	"floor": unary1("floor", math.Floor),
	"ceil":  unary1("ceil", math.Ceil),
	"round": unary1("round", math.Round),
	"pow":   binary2("pow", math.Pow),
	"min": func(args []float64) (float64, error) {
		if len(args) == 0 {
			return 0, fmt.Errorf("expr: min expects at least 1 argument")
		}
		m := args[0]
		for _, v := range args[1:] {
			m = math.Min(m, v)
		}
		return m, nil
	},
	"max": func(args []float64) (float64, error) {
		if len(args) == 0 {
			return 0, fmt.Errorf("expr: max expects at least 1 argument")
		}
		m := args[0]
		for _, v := range args[1:] {
			m = math.Max(m, v)
		}
		return m, nil
	},
}

// BuiltinNames returns the names of all builtin functions (unordered).
func BuiltinNames() []string {
	out := make([]string, 0, len(builtinFuncs))
	for name := range builtinFuncs {
		out = append(out, name)
	}
	return out
}

// IsBuiltin reports whether name is a builtin function.
func IsBuiltin(name string) bool {
	_, ok := builtinFuncs[name]
	return ok
}
