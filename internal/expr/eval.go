package expr

import (
	"fmt"
	"math"
)

// Truthy reports whether a value is true under the language's C semantics.
func Truthy(v float64) bool { return v != 0 }

func boolVal(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Eval implements Node.
func (n *Num) Eval(Env) (float64, error) { return n.Value, nil }

// Eval implements Node.
func (n *Var) Eval(env Env) (float64, error) {
	v, ok := env.Var(n.Name)
	if !ok {
		return 0, &UndefinedError{Kind: "variable", Name: n.Name}
	}
	return v, nil
}

// Eval implements Node.
func (n *Call) Eval(env Env) (float64, error) {
	f, ok := env.Func(n.Name)
	if !ok {
		return 0, &UndefinedError{Kind: "function", Name: n.Name}
	}
	args := make([]float64, len(n.Args))
	for i, a := range n.Args {
		v, err := a.Eval(env)
		if err != nil {
			return 0, err
		}
		args[i] = v
	}
	return f(args)
}

// Eval implements Node.
func (n *Unary) Eval(env Env) (float64, error) {
	x, err := n.X.Eval(env)
	if err != nil {
		return 0, err
	}
	return applyUnary(n.Op, x)
}

func applyUnary(op string, x float64) (float64, error) {
	switch op {
	case "-":
		return -x, nil
	case "!":
		return boolVal(!Truthy(x)), nil
	}
	return 0, fmt.Errorf("expr: unknown unary operator %q", op)
}

// Eval implements Node.
func (n *Binary) Eval(env Env) (float64, error) {
	l, err := n.L.Eval(env)
	if err != nil {
		return 0, err
	}
	// Short-circuit logic operators.
	switch n.Op {
	case "&&":
		if !Truthy(l) {
			return 0, nil
		}
		r, err := n.R.Eval(env)
		if err != nil {
			return 0, err
		}
		return boolVal(Truthy(r)), nil
	case "||":
		if Truthy(l) {
			return 1, nil
		}
		r, err := n.R.Eval(env)
		if err != nil {
			return 0, err
		}
		return boolVal(Truthy(r)), nil
	}
	r, err := n.R.Eval(env)
	if err != nil {
		return 0, err
	}
	return applyBinary(n.Op, l, r)
}

func applyBinary(op string, l, r float64) (float64, error) {
	switch op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("expr: division by zero")
		}
		return l / r, nil
	case "%":
		if r == 0 {
			return 0, fmt.Errorf("expr: remainder by zero")
		}
		return math.Mod(l, r), nil
	case "==":
		return boolVal(l == r), nil
	case "!=":
		return boolVal(l != r), nil
	case "<":
		return boolVal(l < r), nil
	case "<=":
		return boolVal(l <= r), nil
	case ">":
		return boolVal(l > r), nil
	case ">=":
		return boolVal(l >= r), nil
	}
	return 0, fmt.Errorf("expr: unknown binary operator %q", op)
}

// Eval implements Node.
func (n *Cond) Eval(env Env) (float64, error) {
	c, err := n.C.Eval(env)
	if err != nil {
		return 0, err
	}
	if Truthy(c) {
		return n.A.Eval(env)
	}
	return n.B.Eval(env)
}

// Eval parses and evaluates src in one step. Prefer Parse + Node.Eval (or
// Compile) when the same expression is evaluated repeatedly.
func Eval(src string, env Env) (float64, error) {
	n, err := Parse(src)
	if err != nil {
		return 0, err
	}
	return n.Eval(env)
}
