package expr

import (
	"fmt"
	"strconv"
	"strings"
)

// Node is a parsed expression node. Nodes are immutable after parsing and
// safe for concurrent evaluation against different environments.
type Node interface {
	// Eval evaluates the node in env.
	Eval(env Env) (float64, error)
	// String renders the node back to (normalized) source text.
	String() string
	// compile lowers the node to a closure for repeated evaluation.
	compile() compiled
}

// compiled is the closure form produced by Compile.
type compiled func(env Env) (float64, error)

// Num is a numeric literal.
type Num struct{ Value float64 }

// Var is a variable reference.
type Var struct{ Name string }

// Call is a function application.
type Call struct {
	Name string
	Args []Node
}

// Unary is a prefix operation: "-" or "!".
type Unary struct {
	Op string
	X  Node
}

// Binary is an infix operation.
type Binary struct {
	Op   string
	L, R Node
}

// Cond is the conditional operator c ? a : b.
type Cond struct {
	C, A, B Node
}

func (n *Num) String() string { return strconv.FormatFloat(n.Value, 'g', -1, 64) }
func (n *Var) String() string { return n.Name }

func (n *Call) String() string {
	args := make([]string, len(n.Args))
	for i, a := range n.Args {
		args[i] = a.String()
	}
	return n.Name + "(" + strings.Join(args, ", ") + ")"
}

func (n *Unary) String() string { return n.Op + paren(n.X) }

func (n *Binary) String() string {
	return fmt.Sprintf("%s %s %s", paren(n.L), n.Op, paren(n.R))
}

func (n *Cond) String() string {
	return fmt.Sprintf("%s ? %s : %s", paren(n.C), paren(n.A), paren(n.B))
}

// paren wraps composite operands in parentheses so the rendered text
// re-parses to the same tree regardless of operator precedence.
func paren(n Node) string {
	switch n.(type) {
	case *Num, *Var, *Call:
		return n.String()
	}
	return "(" + n.String() + ")"
}

// Vars returns the set of free variable names referenced anywhere in the
// expression, in first-occurrence order.
func Vars(n Node) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Var:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
		case *Call:
			for _, a := range x.Args {
				walk(a)
			}
		case *Unary:
			walk(x.X)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Cond:
			walk(x.C)
			walk(x.A)
			walk(x.B)
		}
	}
	walk(n)
	return out
}

// Calls returns the set of function names invoked anywhere in the
// expression, in first-occurrence order. The transformation pipeline uses
// this to detect cost-function composition and to validate that every
// referenced function is defined in the model.
func Calls(n Node) []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Call:
			if !seen[x.Name] {
				seen[x.Name] = true
				out = append(out, x.Name)
			}
			for _, a := range x.Args {
				walk(a)
			}
		case *Unary:
			walk(x.X)
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Cond:
			walk(x.C)
			walk(x.A)
			walk(x.B)
		}
	}
	walk(n)
	return out
}
