package expr

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// slotRandomExpr builds a random expression over one always-defined local
// (x), one conditionally-defined local with a global shadow (y), one pure
// global (g) and one fallback-resolved name (p).
func slotRandomExpr(r *rand.Rand, depth int) string {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(5) {
		case 0:
			return fmt.Sprintf("%d", r.Intn(20))
		case 1:
			return "x"
		case 2:
			return "y"
		case 3:
			return "g"
		default:
			return "p"
		}
	}
	ops := []string{"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||"}
	op := ops[r.Intn(len(ops))]
	l := slotRandomExpr(r, depth-1)
	rr := slotRandomExpr(r, depth-1)
	switch r.Intn(6) {
	case 0:
		return fmt.Sprintf("-(%s)", l)
	case 1:
		return fmt.Sprintf("!(%s)", l)
	case 2:
		return fmt.Sprintf("(%s) ? (%s) : (%s)", l, rr, slotRandomExpr(r, depth-2))
	case 3:
		return fmt.Sprintf("max((%s), (%s))", l, rr)
	default:
		return fmt.Sprintf("(%s) %s (%s)", l, op, rr)
	}
}

// TestQuickSlotEquivalence: slot-resolved evaluation computes exactly what
// map-chain evaluation computes, for arbitrary expressions, values, and
// defined/undefined states of the conditional local.
func TestQuickSlotEquivalence(t *testing.T) {
	rules := map[string]SlotRule{
		"x": {Kind: SlotLocal, Local: 0, Global: -1},
		"y": {Kind: SlotLocalDyn, Local: 1, Global: 1},
		"g": {Kind: SlotGlobal, Local: -1, Global: 0},
	}
	rule := func(name string) SlotRule {
		if r, ok := rules[name]; ok {
			return r
		}
		return SlotRule{Kind: SlotDynamic, Local: -1, Global: -1}
	}

	f := func(seed int64, x, y, g, yg, p float64, yDefined bool) bool {
		for _, v := range []float64{x, y, g, yg, p} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		r := rand.New(rand.NewSource(seed))
		src := slotRandomExpr(r, 4)
		c, err := CompileString(src)
		if err != nil {
			t.Logf("generator produced unparsable %q", src)
			return false
		}

		// Reference: the interpreter's locals -> globals -> params chain.
		locals := NewMapEnv()
		locals.Set("x", x)
		if yDefined {
			locals.Set("y", y)
		}
		globals := NewMapEnv()
		globals.Set("g", g)
		globals.Set("y", yg)
		params := NewMapEnv()
		params.Set("p", p)
		ref := Chain{locals, globals, params, Builtins}

		se := &SlotEnv{
			Locals:   []float64{x, 0},
			Defined:  []bool{false, false},
			Globals:  []float64{g, yg},
			Fallback: Chain{params, Builtins},
		}
		if yDefined {
			se.Locals[1] = y
			se.Defined[1] = true
		}

		v1, err1 := c.Eval(ref)
		v2, err2 := c.Resolve(rule).Eval(se)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("%q: error mismatch: %v vs %v", src, err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		if v1 != v2 && !(math.IsNaN(v1) && math.IsNaN(v2)) {
			t.Logf("%q: %v vs %v (yDefined=%v)", src, v1, v2, yDefined)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSlotDynFallthrough(t *testing.T) {
	c, err := CompileString("y + 1")
	if err != nil {
		t.Fatal(err)
	}
	s := c.Resolve(func(name string) SlotRule {
		if name == "y" {
			return SlotRule{Kind: SlotLocalDyn, Local: 0, Global: 0}
		}
		return SlotRule{Kind: SlotDynamic, Local: -1, Global: -1}
	})
	se := &SlotEnv{Locals: []float64{7}, Defined: []bool{false}, Globals: []float64{40}}
	if v, err := s.Eval(se); err != nil || v != 41 {
		t.Fatalf("undefined local should read global shadow: got %v, %v", v, err)
	}
	se.Defined[0] = true
	if v, err := s.Eval(se); err != nil || v != 8 {
		t.Fatalf("defined local should shadow global: got %v, %v", v, err)
	}
}

func TestSlotUndefinedWithoutFallback(t *testing.T) {
	c, err := CompileString("missing * 2")
	if err != nil {
		t.Fatal(err)
	}
	s := c.Resolve(func(string) SlotRule { return SlotRule{Kind: SlotDynamic, Local: -1, Global: -1} })
	if _, err := s.Eval(&SlotEnv{}); err == nil {
		t.Fatal("expected undefined-variable error")
	}
}

// benchSrc is shaped like a real model cost expression: locals, a global,
// and a system parameter mixed in one arithmetic tree.
const benchSrc = "base + i*scale + (n / processes) + tid"

// BenchmarkEvalMapChain is the interpreter's evaluation path: each
// variable reference walks the locals -> globals -> params map chain.
func BenchmarkEvalMapChain(b *testing.B) {
	c, err := CompileString(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	locals := NewMapEnv()
	locals.Set("i", 3)
	locals.Set("tid", 1)
	globals := NewMapEnv()
	globals.Set("base", 100)
	globals.Set("scale", 2.5)
	globals.Set("n", 4096)
	params := NewMapEnv()
	params.Set("processes", 4)
	env := Chain{locals, globals, params, Builtins}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Eval(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalSlotted is the lowered backend's path: the same expression
// with every variable pre-resolved to a slot index.
func BenchmarkEvalSlotted(b *testing.B) {
	c, err := CompileString(benchSrc)
	if err != nil {
		b.Fatal(err)
	}
	rules := map[string]SlotRule{
		"i":         {Kind: SlotLocalDyn, Local: 0, Global: -1},
		"tid":       {Kind: SlotLocal, Local: 1, Global: -1},
		"base":      {Kind: SlotGlobal, Local: -1, Global: 0},
		"scale":     {Kind: SlotGlobal, Local: -1, Global: 1},
		"n":         {Kind: SlotGlobal, Local: -1, Global: 2},
		"processes": {Kind: SlotGlobal, Local: -1, Global: 3},
	}
	s := c.Resolve(func(name string) SlotRule {
		if r, ok := rules[name]; ok {
			return r
		}
		return SlotRule{Kind: SlotDynamic, Local: -1, Global: -1}
	})
	se := &SlotEnv{
		Locals:  []float64{3, 1},
		Defined: []bool{true, true},
		Globals: []float64{100, 2.5, 4096, 4},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Eval(se); err != nil {
			b.Fatal(err)
		}
	}
}
