package expr

import "fmt"

// Func is a callable cost function: builtin math functions and user-defined
// model functions share this shape.
type Func func(args []float64) (float64, error)

// Env resolves variable and function names during evaluation.
type Env interface {
	// Var returns the value bound to a variable name.
	Var(name string) (float64, bool)
	// Func returns the function bound to a name.
	Func(name string) (Func, bool)
}

// UndefinedError reports a reference to a name the environment does not
// bind.
type UndefinedError struct {
	Kind string // "variable" or "function"
	Name string
}

func (e *UndefinedError) Error() string {
	return fmt.Sprintf("expr: undefined %s %q", e.Kind, e.Name)
}

// MapEnv is a simple mutable Env backed by maps. The zero value is usable.
type MapEnv struct {
	Vars  map[string]float64
	Funcs map[string]Func
}

// NewMapEnv returns an empty MapEnv.
func NewMapEnv() *MapEnv {
	return &MapEnv{Vars: make(map[string]float64), Funcs: make(map[string]Func)}
}

// Var implements Env.
func (m *MapEnv) Var(name string) (float64, bool) {
	v, ok := m.Vars[name]
	return v, ok
}

// Func implements Env.
func (m *MapEnv) Func(name string) (Func, bool) {
	f, ok := m.Funcs[name]
	return f, ok
}

// Set binds a variable, allocating the map if needed.
func (m *MapEnv) Set(name string, v float64) {
	if m.Vars == nil {
		m.Vars = make(map[string]float64)
	}
	m.Vars[name] = v
}

// SetFunc binds a function, allocating the map if needed.
func (m *MapEnv) SetFunc(name string, f Func) {
	if m.Funcs == nil {
		m.Funcs = make(map[string]Func)
	}
	m.Funcs[name] = f
}

// Chain is an Env that consults a sequence of environments in order,
// returning the first binding found. It implements lexical layering:
// loop variables over locals over globals over builtins.
type Chain []Env

// Var implements Env.
func (c Chain) Var(name string) (float64, bool) {
	for _, e := range c {
		if e == nil {
			continue
		}
		if v, ok := e.Var(name); ok {
			return v, true
		}
	}
	return 0, false
}

// Func implements Env.
func (c Chain) Func(name string) (Func, bool) {
	for _, e := range c {
		if e == nil {
			continue
		}
		if f, ok := e.Func(name); ok {
			return f, true
		}
	}
	return nil, false
}
