package expr

import (
	"math"
	"testing"
)

// fuzzEnv binds a handful of variables, including non-finite values, so
// evaluation exercises the NaN/Inf paths of every operator.
type fuzzEnv struct{}

func (fuzzEnv) Var(name string) (float64, bool) {
	switch name {
	case "x":
		return 2.5, true
	case "zero":
		return 0, true
	case "inf":
		return math.Inf(1), true
	case "nan":
		return math.NaN(), true
	}
	return 0, false
}

func (fuzzEnv) Func(name string) (Func, bool) { return Builtins.Func(name) }

// FuzzEval hardens compilation and evaluation: whatever parses must
// compile and evaluate without panicking (NaN/Inf results are legal —
// models carry measured times, and measurements go bad), evaluation must
// be deterministic, and constant folding must not change the value.
func FuzzEval(f *testing.F) {
	for _, seed := range []string{
		"x + 1",
		"1/zero",
		"0/0",
		"inf - inf",
		"nan == nan",
		"1e309 * 2",
		"-1 % 0",
		"sqrt(-1)",
		"log(zero)",
		"x > 0 ? inf : nan",
		"min(nan, 1) + max(inf, 2)",
		"pow(0, -1)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		c, err := CompileString(src)
		if err != nil {
			return
		}
		v1, err1 := c.Eval(fuzzEnv{})
		v2, err2 := c.Eval(fuzzEnv{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("evaluation not deterministic: %v vs %v", err1, err2)
		}
		if err1 == nil && !sameFloat(v1, v2) {
			t.Fatalf("evaluation not deterministic: %g vs %g", v1, v2)
		}
		// Folding happens on constant subtrees only, so it must preserve
		// both the outcome and the value bit for bit.
		folded := Compile(Fold(n))
		v3, err3 := folded.Eval(fuzzEnv{})
		if (err1 == nil) != (err3 == nil) {
			t.Fatalf("folding changed the outcome of %q: %v vs %v", src, err1, err3)
		}
		if err1 == nil && !sameFloat(v1, v3) {
			t.Fatalf("folding changed the value of %q: %g vs %g", src, v1, v3)
		}
	})
}

// sameFloat treats two NaNs as equal and otherwise compares bit for bit.
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}
