package expr

import "fmt"

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokNumber
	tokIdent
	tokLParen
	tokRParen
	tokComma
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokPercent
	tokLT
	tokLE
	tokGT
	tokGE
	tokEQ
	tokNE
	tokAnd
	tokOr
	tokNot
	tokQuestion
	tokColon
)

var tokenNames = map[tokenKind]string{
	tokEOF:      "end of expression",
	tokNumber:   "number",
	tokIdent:    "identifier",
	tokLParen:   "'('",
	tokRParen:   "')'",
	tokComma:    "','",
	tokPlus:     "'+'",
	tokMinus:    "'-'",
	tokStar:     "'*'",
	tokSlash:    "'/'",
	tokPercent:  "'%'",
	tokLT:       "'<'",
	tokLE:       "'<='",
	tokGT:       "'>'",
	tokGE:       "'>='",
	tokEQ:       "'=='",
	tokNE:       "'!='",
	tokAnd:      "'&&'",
	tokOr:       "'||'",
	tokNot:      "'!'",
	tokQuestion: "'?'",
	tokColon:    "':'",
}

func (k tokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is a lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	num  float64
	pos  int
}

// SyntaxError describes a lexical or syntactic error with its position in
// the expression source.
type SyntaxError struct {
	Expr string
	Pos  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: %s at offset %d in %q", e.Msg, e.Pos, e.Expr)
}
