package expr

import (
	"errors"
	"strings"
	"testing"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		src  string
		want string // normalized String() form
	}{
		{"1", "1"},
		{"1.5", "1.5"},
		{"1e3", "1000"},
		{"2.5e-2", "0.025"},
		{"x", "x"},
		{"_under", "_under"},
		{"x1y2", "x1y2"},
		{"1+2", "1 + 2"},
		{"1+2*3", "1 + (2 * 3)"},
		{"(1+2)*3", "(1 + 2) * 3"},
		{"-x", "-x"},
		{"--x", "-(-x)"},
		{"!x", "!x"},
		{"a-b-c", "(a - b) - c"}, // left associative
		{"a/b/c", "(a / b) / c"},
		{"a%b", "a % b"},
		{"f()", "f()"},
		{"f(1)", "f(1)"},
		{"f(1, 2, 3)", "f(1, 2, 3)"},
		{"FA1(P)", "FA1(P)"},
		{"FSA2(pid)", "FSA2(pid)"},
		{"f(g(x), h(y)+1)", "f(g(x), h(y) + 1)"},
		{"a < b", "a < b"},
		{"a <= b", "a <= b"},
		{"a == b", "a == b"},
		{"a != b", "a != b"},
		{"a >= b", "a >= b"},
		{"GV > 0", "GV > 0"},
		{"a && b || c", "(a && b) || c"},
		{"!a && b", "(!a) && b"},
		{"a<b && c>d", "(a < b) && (c > d)"},
		{"a ? b : c", "a ? b : c"},
		{"a ? b : c ? d : e", "a ? b : (c ? d : e)"}, // right associative
		{"a+b ? c*d : e-f", "(a + b) ? (c * d) : (e - f)"},
		{"  1 +\t2 \n", "1 + 2"},
	}
	for _, c := range cases {
		n, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := n.String(); got != c.want {
			t.Errorf("Parse(%q).String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseNormalizedFormReparses(t *testing.T) {
	// Property: rendering and re-parsing is a fixed point.
	sources := []string{
		"1+2*3", "(1+2)*3", "a && b || !c", "f(g(x), 1/2)",
		"a ? b+1 : c*2", "-x % 3", "GV > 0 && P <= 16",
	}
	for _, src := range sources {
		n1 := MustParse(src)
		n2, err := Parse(n1.String())
		if err != nil {
			t.Fatalf("re-parse of %q (%q): %v", src, n1.String(), err)
		}
		if n1.String() != n2.String() {
			t.Errorf("not a fixed point: %q -> %q -> %q", src, n1.String(), n2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", "1 +", "(1", "1)", "f(", "f(1,", "f(1 2)", "* 3", "1 ? 2",
		"1 ? 2 : ", "a = b", "a & b", "a | b", "@", "1..2", "a +* b",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSyntaxErrorDetails(t *testing.T) {
	_, err := Parse("1 + @")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("want *SyntaxError, got %T: %v", err, err)
	}
	if se.Pos != 4 {
		t.Errorf("error Pos = %d, want 4", se.Pos)
	}
	if !strings.Contains(se.Error(), "offset 4") {
		t.Errorf("error message should include offset: %q", se.Error())
	}
}

func TestMustParsePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on invalid input")
		}
	}()
	MustParse("1 +")
}

func TestVars(t *testing.T) {
	n := MustParse("a + f(b, a) * c ? d : a")
	got := Vars(n)
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
	if vs := Vars(MustParse("1 + 2")); len(vs) != 0 {
		t.Errorf("constant expression should have no vars, got %v", vs)
	}
}

func TestCalls(t *testing.T) {
	n := MustParse("f(g(x)) + h(1) + f(2)")
	got := Calls(n)
	want := []string{"f", "g", "h"}
	if len(got) != len(want) {
		t.Fatalf("Calls = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Calls = %v, want %v", got, want)
		}
	}
}
