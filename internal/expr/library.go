package expr

import (
	"fmt"
)

// maxCallDepth bounds user-function call nesting so that accidentally
// (mutually) recursive cost-function definitions fail with a clear error
// instead of overflowing the stack.
const maxCallDepth = 64

// Def is a user cost-function definition: a named, parameterized expression
// body. It is the expression-level view of a uml.Function.
type Def struct {
	Name   string
	Params []string
	Body   string
}

// Library holds the compiled user cost functions of one model. Functions in
// a library may call each other ("a cost function may be composed using
// other functions that are defined in the performance model", paper
// Section 4) and may read variables from the evaluation environment.
type Library struct {
	defs  map[string]*libFunc
	order []string
}

type libFunc struct {
	def  Def
	body *Compiled
}

// NewLibrary compiles a set of definitions. Bodies are parsed eagerly so
// that malformed cost functions are reported at model-load time, not in the
// middle of a simulation.
func NewLibrary(defs []Def) (*Library, error) {
	lib := &Library{defs: make(map[string]*libFunc, len(defs))}
	for _, d := range defs {
		if d.Name == "" {
			return nil, fmt.Errorf("expr: function definition with empty name")
		}
		if _, dup := lib.defs[d.Name]; dup {
			return nil, fmt.Errorf("expr: duplicate function %q", d.Name)
		}
		if IsBuiltin(d.Name) {
			return nil, fmt.Errorf("expr: function %q shadows a builtin", d.Name)
		}
		body, err := CompileString(d.Body)
		if err != nil {
			return nil, fmt.Errorf("expr: function %q: %w", d.Name, err)
		}
		lib.defs[d.Name] = &libFunc{def: d, body: body}
		lib.order = append(lib.order, d.Name)
	}
	return lib, nil
}

// Names returns the defined function names in definition order.
func (l *Library) Names() []string {
	out := make([]string, len(l.order))
	copy(out, l.order)
	return out
}

// Def returns the definition of a function and whether it exists.
func (l *Library) Def(name string) (Def, bool) {
	f, ok := l.defs[name]
	if !ok {
		return Def{}, false
	}
	return f.def, true
}

// Bind returns an Env that resolves the library's functions on top of the
// builtins, with free variables (and functions not defined here) resolved
// through outer. Each user-function call evaluates its body in an
// environment where the formal parameters shadow outer bindings.
func (l *Library) Bind(outer Env) Env {
	return &boundLibrary{lib: l, outer: outer}
}

type boundLibrary struct {
	lib   *Library
	outer Env
	depth int
}

func (b *boundLibrary) Var(name string) (float64, bool) {
	if b.outer == nil {
		return 0, false
	}
	return b.outer.Var(name)
}

func (b *boundLibrary) Func(name string) (Func, bool) {
	if f, ok := b.lib.defs[name]; ok {
		return b.call(f), true
	}
	if f, ok := Builtins.Func(name); ok {
		return f, true
	}
	if b.outer != nil {
		return b.outer.Func(name)
	}
	return nil, false
}

// call produces the Func that evaluates a user function's body with its
// parameters bound.
func (b *boundLibrary) call(f *libFunc) Func {
	return func(args []float64) (float64, error) {
		if len(args) != len(f.def.Params) {
			return 0, fmt.Errorf("expr: %s expects %d argument(s), got %d",
				f.def.Name, len(f.def.Params), len(args))
		}
		if b.depth >= maxCallDepth {
			return 0, fmt.Errorf("expr: call depth exceeds %d (recursive cost function %q?)",
				maxCallDepth, f.def.Name)
		}
		frame := &paramFrame{
			names:  f.def.Params,
			values: args,
			next:   &boundLibrary{lib: b.lib, outer: b.outer, depth: b.depth + 1},
		}
		return f.body.Eval(frame)
	}
}

// paramFrame binds a function's formal parameters in front of the library
// environment.
type paramFrame struct {
	names  []string
	values []float64
	next   Env
}

func (p *paramFrame) Var(name string) (float64, bool) {
	for i, n := range p.names {
		if n == name {
			return p.values[i], true
		}
	}
	return p.next.Var(name)
}

func (p *paramFrame) Func(name string) (Func, bool) { return p.next.Func(name) }
