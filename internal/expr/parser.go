package expr

import "fmt"

// Parse parses an expression string into an AST. The grammar, lowest to
// highest precedence:
//
//	cond   = or [ '?' cond ':' cond ]
//	or     = and   { '||' and }
//	and    = cmp   { '&&' cmp }
//	cmp    = add   { ('=='|'!='|'<'|'<='|'>'|'>=') add }
//	add    = mul   { ('+'|'-') mul }
//	mul    = unary { ('*'|'/'|'%') unary }
//	unary  = ('-'|'!') unary | primary
//	primary= number | ident | ident '(' [cond {',' cond}] ')' | '(' cond ')'
func Parse(src string) (Node, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	n, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s", p.tok.kind)
	}
	return n, nil
}

// MustParse is Parse for expressions known to be valid at compile time;
// it panics on error. Intended for tests and package-internal constants.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...interface{}) error {
	return &SyntaxError{Expr: p.lex.src, Pos: p.tok.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) error {
	if p.tok.kind != k {
		return p.errf("expected %s, found %s", k, p.tok.kind)
	}
	return p.advance()
}

func (p *parser) parseCond() (Node, error) {
	c, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokQuestion {
		return c, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	a, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokColon); err != nil {
		return nil, err
	}
	b, err := p.parseCond()
	if err != nil {
		return nil, err
	}
	return &Cond{C: c, A: a, B: b}, nil
}

func (p *parser) parseOr() (Node, error) {
	return p.parseBinary(p.parseAnd, map[tokenKind]string{tokOr: "||"}, p.parseAnd)
}

func (p *parser) parseAnd() (Node, error) {
	return p.parseBinary(p.parseCmp, map[tokenKind]string{tokAnd: "&&"}, p.parseCmp)
}

func (p *parser) parseCmp() (Node, error) {
	ops := map[tokenKind]string{
		tokEQ: "==", tokNE: "!=", tokLT: "<", tokLE: "<=", tokGT: ">", tokGE: ">=",
	}
	return p.parseBinary(p.parseAdd, ops, p.parseAdd)
}

func (p *parser) parseAdd() (Node, error) {
	return p.parseBinary(p.parseMul, map[tokenKind]string{tokPlus: "+", tokMinus: "-"}, p.parseMul)
}

func (p *parser) parseMul() (Node, error) {
	ops := map[tokenKind]string{tokStar: "*", tokSlash: "/", tokPercent: "%"}
	return p.parseBinary(p.parseUnary, ops, p.parseUnary)
}

// parseBinary parses a left-associative binary level with the given
// operand parsers and operator set.
func (p *parser) parseBinary(first func() (Node, error), ops map[tokenKind]string, rest func() (Node, error)) (Node, error) {
	l, err := first()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := ops[p.tok.kind]
		if !ok {
			return l, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := rest()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Node, error) {
	switch p.tok.kind {
	case tokMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	case tokNot:
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "!", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	switch p.tok.kind {
	case tokNumber:
		n := &Num{Value: p.tok.num}
		return n, p.advance()
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return &Var{Name: name}, nil
		}
		if err := p.advance(); err != nil { // consume '('
			return nil, err
		}
		var args []Node
		if p.tok.kind != tokRParen {
			for {
				a, err := p.parseCond()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &Call{Name: name, Args: args}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return n, nil
	}
	return nil, p.errf("expected operand, found %s", p.tok.kind)
}
