package expr

import (
	"strconv"
	"unicode"
	"unicode/utf8"
)

// lexer turns an expression string into tokens.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, msg string) error {
	return &SyntaxError{Expr: l.src, Pos: pos, Msg: msg}
}

// next returns the next token, skipping whitespace.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		return l.lexNumber()
	case isIdentStart(rune(c)) || c >= utf8.RuneSelf:
		return l.lexIdent()
	}
	l.pos++
	two := func(k tokenKind) (token, error) {
		l.pos++
		return token{kind: k, text: l.src[start:l.pos], pos: start}, nil
	}
	one := func(k tokenKind) (token, error) {
		return token{kind: k, text: l.src[start:l.pos], pos: start}, nil
	}
	peek := byte(0)
	if l.pos < len(l.src) {
		peek = l.src[l.pos]
	}
	switch c {
	case '(':
		return one(tokLParen)
	case ')':
		return one(tokRParen)
	case ',':
		return one(tokComma)
	case '+':
		return one(tokPlus)
	case '-':
		return one(tokMinus)
	case '*':
		return one(tokStar)
	case '/':
		return one(tokSlash)
	case '%':
		return one(tokPercent)
	case '?':
		return one(tokQuestion)
	case ':':
		return one(tokColon)
	case '<':
		if peek == '=' {
			return two(tokLE)
		}
		return one(tokLT)
	case '>':
		if peek == '=' {
			return two(tokGE)
		}
		return one(tokGT)
	case '=':
		if peek == '=' {
			return two(tokEQ)
		}
		return token{}, l.errf(start, "'=' is not an operator (use '==')")
	case '!':
		if peek == '=' {
			return two(tokNE)
		}
		return one(tokNot)
	case '&':
		if peek == '&' {
			return two(tokAnd)
		}
		return token{}, l.errf(start, "'&' is not an operator (use '&&')")
	case '|':
		if peek == '|' {
			return two(tokOr)
		}
		return token{}, l.errf(start, "'|' is not an operator (use '||')")
	}
	return token{}, l.errf(start, "unexpected character "+strconv.QuoteRune(rune(c)))
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errf(start, "malformed number "+strconv.Quote(text))
	}
	return token{kind: tokNumber, text: text, num: f, pos: start}, nil
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.pos += size
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
