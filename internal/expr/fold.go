package expr

// Fold performs constant folding: subtrees whose value does not depend on
// the environment are evaluated once at compile time. Model expressions
// are full of literal arithmetic (`8 * n`, `1024 * 1024`, guard constants)
// that the simulator would otherwise recompute on every element execution;
// interp compiles folded trees (ablation: BenchmarkExpr/folded).
//
// Only total operations fold: division/remainder by a constant zero is
// left in place so evaluation reports the error with its environment, and
// short-circuit operators fold only when their outcome is decided by the
// left operand or both sides are constant.
func Fold(n Node) Node {
	folded, _ := fold(n)
	return folded
}

// fold returns the folded node and whether it is a constant.
func fold(n Node) (Node, bool) {
	switch x := n.(type) {
	case *Num:
		return x, true
	case *Var:
		return x, false
	case *Call:
		args := make([]Node, len(x.Args))
		allConst := true
		for i, a := range x.Args {
			fa, c := fold(a)
			args[i] = fa
			allConst = allConst && c
		}
		out := &Call{Name: x.Name, Args: args}
		// Builtins are pure; user functions may be redefined per model,
		// so only builtins fold.
		if allConst && IsBuiltin(x.Name) {
			if v, err := out.Eval(Builtins); err == nil {
				return &Num{Value: v}, true
			}
		}
		return out, false
	case *Unary:
		fx, c := fold(x.X)
		out := &Unary{Op: x.Op, X: fx}
		if c {
			if v, err := out.Eval(nil); err == nil {
				return &Num{Value: v}, true
			}
		}
		return out, false
	case *Binary:
		fl, cl := fold(x.L)
		fr, cr := fold(x.R)
		out := &Binary{Op: x.Op, L: fl, R: fr}
		switch x.Op {
		case "&&":
			if cl {
				lv := fl.(*Num).Value
				if !Truthy(lv) {
					return &Num{Value: 0}, true
				}
				if cr {
					return &Num{Value: boolVal(Truthy(fr.(*Num).Value))}, true
				}
			}
			return out, false
		case "||":
			if cl {
				lv := fl.(*Num).Value
				if Truthy(lv) {
					return &Num{Value: 1}, true
				}
				if cr {
					return &Num{Value: boolVal(Truthy(fr.(*Num).Value))}, true
				}
			}
			return out, false
		case "/", "%":
			// Fold only when the divisor is a non-zero constant, so the
			// division-by-zero error surfaces at eval time, not silently
			// at fold time.
			if cl && cr && fr.(*Num).Value != 0 {
				if v, err := out.Eval(nil); err == nil {
					return &Num{Value: v}, true
				}
			}
			return out, false
		}
		if cl && cr {
			if v, err := out.Eval(nil); err == nil {
				return &Num{Value: v}, true
			}
		}
		return out, false
	case *Cond:
		fc, cc := fold(x.C)
		fa, ca := fold(x.A)
		fb, cb := fold(x.B)
		if cc {
			if Truthy(fc.(*Num).Value) {
				return fa, ca
			}
			return fb, cb
		}
		return &Cond{C: fc, A: fa, B: fb}, false
	default:
		return n, false
	}
}
