package expr

import "testing"

// FuzzParse hardens the lexer/parser against arbitrary input: it must
// never panic, and when it accepts an input, the rendered normal form
// must re-parse to the same normal form (printing round-trip).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"1 + 2*3",
		"FK6(N, M) / processes",
		"a ? b : c",
		"GV > 0 && P <= 16",
		"-x % (y + 1)",
		"min(1,2,3) + max(4)",
		"((((((1))))))",
		"1e309",
		"!",
		"())(",
		"\x00\xff",
		"𝛼 + 1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return
		}
		rendered := n.String()
		n2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("normal form %q (of %q) does not re-parse: %v", rendered, src, err)
		}
		if got := n2.String(); got != rendered {
			t.Fatalf("printing not a fixed point: %q -> %q -> %q", src, rendered, got)
		}
		// Folding must also be panic-free and re-parsable.
		folded := Fold(n).String()
		if _, err := Parse(folded); err != nil {
			t.Fatalf("folded form %q does not parse: %v", folded, err)
		}
	})
}
